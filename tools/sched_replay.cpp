/// \file sched_replay.cpp
/// \brief Deterministic replay of recorded run manifests.
///
/// Reads JSONL manifests (written by `cdd_solve --manifest` or a
/// SolverService configured with ServiceConfig::manifest_path),
/// re-executes every record through the same engine registry and verifies
/// the outcome *bit-identically*: equal best cost, equal evaluation
/// count, equal trajectory digest, and an instance hash that matches the
/// recorded data.  Exit status is the contract — 0 only when every record
/// reproduces — so CI can pin the determinism invariant with one call:
///
///   sched_replay results/golden_manifest.jsonl
///   sched_replay run1.jsonl run2.jsonl --quiet
///
/// A failing replay means one of three things, all worth stopping a merge
/// for: an algorithm changed without its goldens being re-derived, an RNG
/// stream moved, or the manifest itself was corrupted.

#include <fstream>
#include <iostream>
#include <sstream>

#include "benchutil/cli.hpp"
#include "serve/replay.hpp"

int main(int argc, char** argv) {
  using namespace cdd;
  const benchutil::Args args(argc, argv);
  if (args.GetBool("help") || args.positional().empty()) {
    std::cout
        << "sched_replay — re-execute run manifests and verify outcomes\n\n"
           "  sched_replay MANIFEST.jsonl [MORE.jsonl ...] [--quiet]\n\n"
           "Each line of each file is one recorded solve; every record is\n"
           "re-run through the engine registry and must reproduce its\n"
           "best_cost, evaluation count and trajectory digest exactly.\n"
           "Exits 0 only when every record replays bit-identically.\n";
    return args.GetBool("help") ? 0 : 2;
  }
  const bool quiet = args.GetBool("quiet");

  serve::ReplaySummary total;
  for (const std::string& path : args.positional()) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "error: cannot open " << path << "\n";
      return 2;
    }
    std::ostringstream log;
    const serve::ReplaySummary summary = serve::ReplayStream(in, log);
    if (!quiet || summary.failed > 0) {
      std::cout << path << ":\n" << log.str();
    }
    total.total += summary.total;
    total.passed += summary.passed;
    total.failed += summary.failed;
  }

  std::cout << "replayed " << total.total << " record(s): " << total.passed
            << " ok, " << total.failed << " failed\n";
  if (total.total == 0) {
    std::cerr << "error: no manifest records found\n";
    return 2;
  }
  return total.failed == 0 ? 0 : 1;
}

/// \file cdd_solve.cpp
/// \brief Command-line solver: the library as a tool.
///
/// Solve a benchmark or user-supplied instance with any of the engines in
/// the serve::EngineRegistry and inspect the schedule.
///
///   cdd_solve --generate 50 --h 0.6 --algo psa --gens 1000 --gantt
///   cdd_solve --file sch50.txt --index 3 --h 0.4 --algo host --chains 32
///   cdd_solve --generate 20 --problem ucddcp --algo pdpso --profile
///
/// The --algo names are exactly the registry's names — the same set the
/// sched_serve service accepts — so scripts move between the one-shot CLI
/// and the serving front-end without translation.  Unknown algorithms and
/// malformed numeric flags are hard errors (nonzero exit), never silently
/// replaced by defaults.

#include <fstream>
#include <iostream>
#include <sstream>

#include "benchutil/cli.hpp"
#include "benchutil/table.hpp"
#include "core/eval_cdd.hpp"
#include "core/eval_ucddcp.hpp"
#include "core/schedule.hpp"
#include "cudasim/device.hpp"
#include "orlib/biskup_feldmann.hpp"
#include "orlib/schfile.hpp"
#include "serve/engine_registry.hpp"
#include "serve/replay.hpp"
#include "serve/request.hpp"
#include "trace/manifest.hpp"
#include "trace/tracer.hpp"

namespace {

std::string JoinNames(const std::vector<std::string>& names) {
  std::ostringstream out;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out << "|";
    out << names[i];
  }
  return out.str();
}

void PrintUsage() {
  const std::string algos =
      JoinNames(cdd::serve::EngineRegistry::Default().Names());
  std::cout <<
      "cdd_solve — scheduling against a common due date\n\n"
      "Instance selection:\n"
      "  --generate N         Biskup-Feldmann benchmark instance with N jobs\n"
      "  --index K            instance index (default 0)\n"
      "  --file PATH          read an OR-library sch file instead\n"
      "  --problem cdd|ucddcp problem variant (default cdd)\n"
      "  --h H                restrictiveness factor for CDD (default 0.6)\n"
      "  --machines M         parallel identical machines (default 1; CDD\n"
      "                       only; m > 1 supported by --algo sa|ta)\n"
      "  --objective O        total-penalty|early-work (default\n"
      "                       total-penalty; early-work is CDD only,\n"
      "                       supported by --algo sa|ta)\n"
      "  --seed S             generator / algorithm seed (default 1)\n\n"
      "Algorithm:\n"
      "  --algo " << algos << "   (default psa)\n"
      "  --gens G             generations / iterations (default 1000)\n"
      "  --ensemble N --block B   parallel launch geometry (default 768/192)\n"
      "  --chains N           host-ensemble chains (default 64)\n"
      "  --vshape-init        seed ensembles with the V-shape heuristic\n"
      "  --portfolio A,B,C    race contenders for --algo race (default\n"
      "                       CDD_RACE_PORTFOLIO, then the bandit prior's\n"
      "                       top three)\n"
      "  --race-slice N       Step units per race scheduling round\n"
      "                       (default CDD_RACE_SLICE, then 64); part of\n"
      "                       the race's deterministic identity\n"
      "  --exec-backend B     block execution on the simulated device:\n"
      "                       serial|host-parallel (default\n"
      "                       CDD_EXEC_BACKEND, then serial); never\n"
      "                       changes results or modeled times\n\n"
      "Output:\n"
      "  --gantt              ASCII Gantt chart of the best schedule\n"
      "  --schedule           per-job schedule table\n"
      "  --profile            simulated-GPU profiler report\n\n"
      "Telemetry:\n"
      "  --trajectory FILE    CSV of (iteration, best-so-far cost)\n"
      "  --trajectory-stride N  sampling stride (default 10)\n"
      "  --manifest FILE      append a JSONL run manifest (sched_replay\n"
      "                       re-executes and verifies it bit-identically)\n"
      "  --trace FILE         Chrome trace JSON (chrome://tracing, Perfetto)\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cdd;
  const benchutil::Args args(argc, argv);
  if (args.GetBool("help") || argc == 1) {
    PrintUsage();
    return 0;
  }

  try {
    // --- resolve the engine first: fail fast on a typo'd name -------------
    const serve::EngineRegistry& registry = serve::EngineRegistry::Default();
    const std::string algo = args.GetString("algo", "psa");
    const serve::EngineFn* engine = registry.Find(algo);
    if (engine == nullptr) {
      std::cerr << "error: unknown --algo '" << algo << "' (expected one of "
                << JoinNames(registry.Names()) << ")\n";
      return 1;
    }

    // --- build the instance -----------------------------------------------
    const bool ucddcp = args.GetString("problem", "cdd") == "ucddcp";
    const auto seed = static_cast<std::uint64_t>(args.GetInt("seed", 1));
    const auto index =
        static_cast<std::uint32_t>(args.GetInt("index", 0));
    const double h = args.GetDouble("h", 0.6);

    Instance instance(Problem::kCdd, 1, {1}, {0}, {0});
    const std::string file = args.GetString("file", "");
    if (!file.empty()) {
      // LoadCddFile/LoadUcddcpFile report unreadable, malformed and
      // truncated files as SchParseError with "path:line" context; the
      // catch below prints exactly that.
      const auto tables = ucddcp ? orlib::LoadUcddcpFile(file)
                                 : orlib::LoadCddFile(file);
      if (index >= tables.size()) {
        std::cerr << "error: file holds " << tables.size()
                  << " instances, index " << index << " out of range\n";
        return 1;
      }
      instance = ucddcp ? orlib::MakeUcddcpInstance(tables[index])
                        : orlib::MakeCddInstance(tables[index], h);
    } else {
      const auto n =
          static_cast<std::uint32_t>(args.GetInt("generate", 20));
      const orlib::BiskupFeldmannGenerator gen(seed);
      instance = ucddcp ? gen.Ucddcp(n, index) : gen.Cdd(n, index, h);
    }
    // Problem-variant flags: parallel identical machines and the
    // early-work objective (CDD only; Instance::Validate enforces the
    // combinations).
    const auto machines =
        static_cast<std::int32_t>(args.GetInt("machines", 1));
    if (machines != 1) instance = instance.with_machines(machines);
    const std::string objective =
        args.GetString("objective", "total-penalty");
    if (objective == "early-work") {
      instance = instance.with_objective(ScheduleObjective::kEarlyWork);
    } else if (objective != "total-penalty") {
      std::cerr << "error: unknown --objective '" << objective
                << "' (total-penalty|early-work)\n";
      return 1;
    }
    // Evaluator preconditions are hard errors before any engine runs: a
    // cost computed under a violated precondition is worse than no answer.
    if (const std::string diagnostic =
            serve::ValidateRequestInstance(instance);
        !diagnostic.empty()) {
      std::cerr << "error: " << diagnostic << "\n";
      return 1;
    }
    if (const std::string diagnostic =
            serve::EngineSupportDiagnostic(algo, instance);
        !diagnostic.empty()) {
      std::cerr << "error: " << diagnostic << "\n";
      return 1;
    }
    instance.Validate();
    std::cout << "instance: " << instance.Summary() << "\n";

    // --- run the selected engine ------------------------------------------
    sim::Device gpu(sim::GeForceGT560M());
    const std::string exec_backend = args.GetString("exec-backend", "");
    if (!exec_backend.empty()) {
      sim::exec::ExecBackend parsed = sim::exec::ExecBackend::kSerial;
      if (!sim::exec::ParseExecBackend(exec_backend, &parsed)) {
        std::cerr << "error: unknown --exec-backend '" << exec_backend
                  << "' (serial|host-parallel)\n";
        return 1;
      }
      gpu.set_exec_backend(parsed);
    }
    serve::EngineOptions options;
    if (!exec_backend.empty()) options.exec_backend = gpu.exec_backend();
    options.generations =
        static_cast<std::uint64_t>(args.GetInt("gens", 1000));
    options.seed = seed;
    options.ensemble =
        static_cast<std::uint32_t>(args.GetInt("ensemble", 768));
    options.block = static_cast<std::uint32_t>(args.GetInt("block", 192));
    options.chains = static_cast<std::uint32_t>(args.GetInt("chains", 64));
    options.vshape_init = args.GetBool("vshape-init");
    options.portfolio = args.GetString("portfolio", "");
    options.race_slice =
        static_cast<std::uint64_t>(args.GetInt("race-slice", 0));
    // Bake an env-pinned contender list into the options so a recorded
    // manifest stays replayable without CDD_RACE_PORTFOLIO set.
    if (algo == "race") serve::MaterializeRacePortfolio(options);
    options.device = &gpu;  // so --profile sees the kernel launches

    const std::string trajectory_file = args.GetString("trajectory", "");
    const auto trajectory_stride =
        static_cast<std::uint32_t>(args.GetInt("trajectory-stride", 10));
    if (!trajectory_file.empty()) {
      options.trajectory_stride = trajectory_stride;
    }
    const std::string trace_file = args.GetString("trace", "");
    if (!trace_file.empty()) trace::SetEnabled(true);

    const serve::EngineRun run = (*engine)(instance, options);

    if (!trajectory_file.empty()) {
      std::ofstream out(trajectory_file);
      if (!out) {
        std::cerr << "error: cannot write " << trajectory_file << "\n";
        return 1;
      }
      out << "iteration,best_cost\n";
      for (std::size_t k = 0; k < run.result.trajectory.size(); ++k) {
        out << k * trajectory_stride << "," << run.result.trajectory[k]
            << "\n";
      }
      std::cout << "trajectory: " << run.result.trajectory.size()
                << " samples (stride " << trajectory_stride << ") -> "
                << trajectory_file << "\n";
    }

    const std::string manifest_file = args.GetString("manifest", "");
    if (!manifest_file.empty()) {
      if (run.result.stopped) {
        std::cerr << "error: refusing to record a manifest of a truncated "
                     "run\n";
        return 1;
      }
      if (algo == "race" && !serve::RacePortfolioPinned(options)) {
        // Same rule as the serve layer: a bandit-resolved portfolio is
        // not replayable, so it must never enter a manifest.
        std::cerr << "error: --manifest with --algo race needs a pinned "
                     "portfolio (--portfolio or CDD_RACE_PORTFOLIO)\n";
        return 1;
      }
      std::ofstream out(manifest_file, std::ios::app);
      if (!out) {
        std::cerr << "error: cannot append to " << manifest_file << "\n";
        return 1;
      }
      out << trace::WriteManifestLine(serve::MakeManifestRecord(
                 instance, algo, options, run.result))
          << "\n";
      std::cout << "manifest: appended to " << manifest_file << "\n";
    }

    if (run.device_seconds > 0.0) {
      std::cout << "modeled GT 560M time: " << run.device_seconds
                << " s over " << run.result.evaluations
                << " evaluations\n";
    }
    std::cout << "best cost: " << run.result.best_cost << "\n";
    if (!run.result.best_splits.empty()) {
      std::cout << "machine splits:";
      for (const std::int32_t s : run.result.best_splits) {
        std::cout << " " << s;
      }
      std::cout << "\n";
    }
    const Sequence& best = run.result.best;

    // --- schedule output ----------------------------------------------------
    const bool variant = instance.machines() > 1 ||
                         instance.objective() == ScheduleObjective::kEarlyWork;
    Schedule schedule;
    if (variant) {
      schedule = BuildMachineSchedule(instance, best,
                                      run.result.best_splits);
    } else if (ucddcp) {
      schedule = UcddcpEvaluator(instance).BuildSchedule(best);
    } else {
      schedule = CddEvaluator(instance).BuildSchedule(best);
    }
    if (args.GetBool("gantt")) {
      if (instance.machines() > 1) {
        // One lane per machine: slice the flat schedule at the machine
        // boundaries and render each slice on its own timeline.
        for (std::int32_t mk = 0; mk < instance.machines(); ++mk) {
          Schedule lane;
          for (std::size_t k = 0; k < schedule.size(); ++k) {
            if (schedule.machine_of(k) != mk) continue;
            lane.order.push_back(schedule.order[k]);
            lane.completion.push_back(schedule.completion[k]);
            lane.compression.push_back(
                schedule.compression.empty() ? Time{0}
                                             : schedule.compression[k]);
          }
          std::cout << "machine " << mk << ":\n";
          std::cout << (lane.size() == 0 ? std::string("(idle)\n")
                                         : RenderGantt(instance, lane));
        }
      } else {
        std::cout << RenderGantt(instance, schedule);
      }
    }
    if (args.GetBool("schedule")) {
      const bool show_machine = instance.machines() > 1;
      std::vector<std::string> header = {"slot",  "job",   "start", "done",
                                         "early", "tardy", "X"};
      if (show_machine) header.insert(header.begin() + 1, "m");
      benchutil::TextTable table(header);
      for (std::size_t k = 0; k < schedule.size(); ++k) {
        const Time c = schedule.completion[k];
        const Time d = instance.due_date();
        std::vector<std::string> row = {
            std::to_string(k), std::to_string(schedule.order[k]),
            std::to_string(StartTime(instance, schedule, k)),
            std::to_string(c), std::to_string(std::max<Time>(0, d - c)),
            std::to_string(std::max<Time>(0, c - d)),
            std::to_string(schedule.compression.empty()
                               ? 0
                               : schedule.compression[k])};
        if (show_machine) {
          row.insert(row.begin() + 1,
                     std::to_string(schedule.machine_of(k)));
        }
        table.AddRow(row);
      }
      std::cout << table.ToString();
    }
    if (args.GetBool("profile")) {
      std::cout << gpu.profiler().Report();
    }
    if (!trace_file.empty()) {
      if (!trace::ExportChromeTraceFile(trace_file)) {
        std::cerr << "error: cannot write " << trace_file << "\n";
        return 1;
      }
      std::cout << "trace: " << trace::EventCount() << " events ("
                << trace::DroppedTotal() << " dropped) -> " << trace_file
                << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

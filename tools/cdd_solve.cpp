/// \file cdd_solve.cpp
/// \brief Command-line solver: the library as a tool.
///
/// Solve a benchmark or user-supplied instance with any of the seven
/// algorithms in the library and inspect the schedule.
///
///   cdd_solve --generate 50 --h 0.6 --algo psa --gens 1000 --gantt
///   cdd_solve --file sch50.txt --index 3 --h 0.4 --algo host --chains 32
///   cdd_solve --generate 20 --problem ucddcp --algo pdpso --profile
///
/// Algorithms: psa (parallel SA, default), pdpso (parallel DPSO),
/// psa-sync (synchronous parallel SA), sa, dpso, ta, es (serial),
/// host (multi-threaded CPU ensemble).

#include <fstream>
#include <iostream>

#include "benchutil/cli.hpp"
#include "benchutil/table.hpp"
#include "core/eval_cdd.hpp"
#include "core/eval_ucddcp.hpp"
#include "core/schedule.hpp"
#include "cudasim/device.hpp"
#include "meta/dpso.hpp"
#include "meta/evostrategy.hpp"
#include "meta/host_ensemble.hpp"
#include "meta/sa.hpp"
#include "meta/threshold.hpp"
#include "orlib/biskup_feldmann.hpp"
#include "orlib/schfile.hpp"
#include "parallel/parallel_dpso.hpp"
#include "parallel/parallel_sa.hpp"
#include "parallel/parallel_sa_sync.hpp"

namespace {

void PrintUsage() {
  std::cout <<
      "cdd_solve — scheduling against a common due date\n\n"
      "Instance selection:\n"
      "  --generate N         Biskup-Feldmann benchmark instance with N jobs\n"
      "  --index K            instance index (default 0)\n"
      "  --file PATH          read an OR-library sch file instead\n"
      "  --problem cdd|ucddcp problem variant (default cdd)\n"
      "  --h H                restrictiveness factor for CDD (default 0.6)\n"
      "  --seed S             generator / algorithm seed (default 1)\n\n"
      "Algorithm:\n"
      "  --algo psa|pdpso|psa-sync|sa|dpso|ta|es|host   (default psa)\n"
      "  --gens G             generations / iterations (default 1000)\n"
      "  --ensemble N --block B   parallel launch geometry (default 768/192)\n"
      "  --chains N           host-ensemble chains (default 64)\n"
      "  --vshape-init        seed ensembles with the V-shape heuristic\n\n"
      "Output:\n"
      "  --gantt              ASCII Gantt chart of the best schedule\n"
      "  --schedule           per-job schedule table\n"
      "  --profile            simulated-GPU profiler report\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cdd;
  const benchutil::Args args(argc, argv);
  if (args.GetBool("help") || argc == 1) {
    PrintUsage();
    return 0;
  }

  try {
    // --- build the instance -----------------------------------------------
    const bool ucddcp = args.GetString("problem", "cdd") == "ucddcp";
    const auto seed = static_cast<std::uint64_t>(args.GetInt("seed", 1));
    const auto index =
        static_cast<std::uint32_t>(args.GetInt("index", 0));
    const double h = args.GetDouble("h", 0.6);

    Instance instance(Problem::kCdd, 1, {1}, {0}, {0});
    const std::string file = args.GetString("file", "");
    if (!file.empty()) {
      std::ifstream in(file);
      if (!in) {
        std::cerr << "error: cannot open " << file << "\n";
        return 1;
      }
      const auto tables = ucddcp ? orlib::ParseUcddcpFile(in)
                                 : orlib::ParseCddFile(in);
      if (index >= tables.size()) {
        std::cerr << "error: file holds " << tables.size()
                  << " instances, index " << index << " out of range\n";
        return 1;
      }
      instance = ucddcp ? orlib::MakeUcddcpInstance(tables[index])
                        : orlib::MakeCddInstance(tables[index], h);
    } else {
      const auto n =
          static_cast<std::uint32_t>(args.GetInt("generate", 20));
      const orlib::BiskupFeldmannGenerator gen(seed);
      instance = ucddcp ? gen.Ucddcp(n, index) : gen.Cdd(n, index, h);
    }
    instance.Validate();
    std::cout << "instance: " << instance.Summary() << "\n";

    // --- run the selected algorithm ----------------------------------------
    const std::string algo = args.GetString("algo", "psa");
    const auto gens = static_cast<std::uint64_t>(args.GetInt("gens", 1000));
    const auto ensemble =
        static_cast<std::uint32_t>(args.GetInt("ensemble", 768));
    const auto block =
        static_cast<std::uint32_t>(args.GetInt("block", 192));

    Sequence best;
    Cost best_cost = kInfiniteCost;
    sim::Device gpu(sim::GeForceGT560M());
    const meta::Objective objective =
        meta::Objective::ForInstance(instance);

    if (algo == "psa" || algo == "pdpso" || algo == "psa-sync") {
      if (algo == "psa") {
        par::ParallelSaParams params;
        params.config = par::LaunchConfig::ForEnsemble(ensemble, block);
        params.generations = gens;
        params.seed = seed;
        params.vshape_init = args.GetBool("vshape-init");
        const auto result = par::RunParallelSa(gpu, instance, params);
        best = result.best;
        best_cost = result.best_cost;
        std::cout << "modeled GT 560M time: " << result.device_seconds
                  << " s over " << result.evaluations << " evaluations\n";
      } else if (algo == "pdpso") {
        par::ParallelDpsoParams params;
        params.config = par::LaunchConfig::ForEnsemble(ensemble, block);
        params.generations = gens;
        params.seed = seed;
        params.vshape_init = args.GetBool("vshape-init");
        const auto result = par::RunParallelDpso(gpu, instance, params);
        best = result.best;
        best_cost = result.best_cost;
        std::cout << "modeled GT 560M time: " << result.device_seconds
                  << " s over " << result.evaluations << " evaluations\n";
      } else {
        par::ParallelSaSyncParams params;
        params.config = par::LaunchConfig::ForEnsemble(ensemble, block);
        params.temperature_levels =
            static_cast<std::uint32_t>(gens / params.chain_length);
        params.seed = seed;
        const auto result = par::RunParallelSaSync(gpu, instance, params);
        best = result.best;
        best_cost = result.best_cost;
        std::cout << "modeled GT 560M time: " << result.device_seconds
                  << " s over " << result.evaluations << " evaluations\n";
      }
    } else if (algo == "sa") {
      meta::SaParams params;
      params.iterations = gens;
      params.seed = seed;
      const auto result = meta::RunSerialSa(objective, params);
      best = result.best;
      best_cost = result.best_cost;
    } else if (algo == "dpso") {
      meta::DpsoParams params;
      params.iterations = gens;
      params.seed = seed;
      const auto result = meta::RunSerialDpso(objective, params);
      best = result.best;
      best_cost = result.best_cost;
    } else if (algo == "ta") {
      meta::TaParams params;
      params.iterations = gens;
      params.seed = seed;
      const auto result = meta::RunThresholdAccepting(objective, params);
      best = result.best;
      best_cost = result.best_cost;
    } else if (algo == "es") {
      meta::EsParams params;
      params.generations = gens;
      params.seed = seed;
      const auto result = meta::RunEvolutionStrategy(objective, params);
      best = result.best;
      best_cost = result.best_cost;
    } else if (algo == "host") {
      meta::HostEnsembleParams params;
      params.chains =
          static_cast<std::uint32_t>(args.GetInt("chains", 64));
      params.chain.iterations = gens;
      params.chain.seed = seed;
      const auto result = meta::RunHostEnsembleSa(objective, params);
      best = result.best;
      best_cost = result.best_cost;
    } else {
      std::cerr << "error: unknown --algo '" << algo << "'\n";
      return 1;
    }

    std::cout << "best cost: " << best_cost << "\n";

    // --- schedule output ----------------------------------------------------
    Schedule schedule;
    if (ucddcp) {
      schedule = UcddcpEvaluator(instance).BuildSchedule(best);
    } else {
      schedule = CddEvaluator(instance).BuildSchedule(best);
    }
    if (args.GetBool("gantt")) {
      std::cout << RenderGantt(instance, schedule);
    }
    if (args.GetBool("schedule")) {
      benchutil::TextTable table(
          {"slot", "job", "start", "done", "early", "tardy", "X"});
      for (std::size_t k = 0; k < schedule.size(); ++k) {
        const Time c = schedule.completion[k];
        const Time d = instance.due_date();
        table.AddRow({std::to_string(k), std::to_string(schedule.order[k]),
                      std::to_string(StartTime(instance, schedule, k)),
                      std::to_string(c),
                      std::to_string(std::max<Time>(0, d - c)),
                      std::to_string(std::max<Time>(0, c - d)),
                      std::to_string(schedule.compression.empty()
                                         ? 0
                                         : schedule.compression[k])});
      }
      std::cout << table.ToString();
    }
    if (args.GetBool("profile")) {
      std::cout << gpu.profiler().Report();
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

#!/usr/bin/env python3
"""Documentation consistency gate (CI `docs` job).

Three checks, all mechanical so the docs cannot silently rot:

1. Every relative markdown link in the documentation set resolves to an
   existing file (anchors and external http/mailto links are skipped).
2. Every environment variable the source tree actually reads — any
   `getenv("CDD_...")` in src/ — is documented in docs/CONFIGURATION.md,
   so a new knob cannot land without its reference entry.
3. Bidirectional flag gate: every `--flag` and CDD_* variable that the
   built binaries print in their --help output must appear in
   docs/CONFIGURATION.md.  This direction catches a flag added to a tool
   but never documented; it runs only when the binaries are built
   (pass --bin-dir or have ./build present), so the pure-docs checks
   still run in a source-only checkout.

Exits nonzero with one line per violation.  No dependencies beyond the
standard library; run from anywhere inside the repository:

    python3 tools/check_docs.py [--bin-dir build]
"""

import os
import re
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# The documentation set whose links must resolve.
DOC_FILES = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "docs/ARCHITECTURE.md",
    "docs/CONFIGURATION.md",
    "docs/WORKLOADS.md",
]

# Binaries whose --help output defines the user-facing flag surface,
# relative to the build directory.
HELP_BINARIES = [
    "tools/cdd_solve",
    "tools/sched_serve",
    "tools/sched_replay",
]

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
GETENV_RE = re.compile(r"getenv\(\s*\"(CDD_[A-Z0-9_]+)\"")
HELP_FLAG_RE = re.compile(r"(?<![-\w])--([a-z][a-z0-9-]*)")
HELP_ENV_RE = re.compile(r"\b(CDD_[A-Z0-9_]+)\b")


def check_links():
    errors = []
    for rel in DOC_FILES:
        path = os.path.join(REPO, rel)
        if not os.path.isfile(path):
            errors.append(f"{rel}: listed in check_docs.py but missing")
            continue
        with open(path, encoding="utf-8") as f:
            text = f.read()
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            target = target.split("#", 1)[0]
            if not target:  # pure in-page anchor
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), target))
            if not os.path.exists(resolved):
                line = text[: match.start()].count("\n") + 1
                errors.append(f"{rel}:{line}: broken link -> {target}")
    return errors


def read_configuration():
    config = os.path.join(REPO, "docs", "CONFIGURATION.md")
    with open(config, encoding="utf-8") as f:
        return f.read()


def check_env_vars(documented):
    read_vars = set()
    src = os.path.join(REPO, "src")
    for dirpath, _dirnames, filenames in os.walk(src):
        for name in filenames:
            if not name.endswith((".cpp", ".hpp", ".h", ".cc")):
                continue
            with open(os.path.join(dirpath, name), encoding="utf-8") as f:
                read_vars.update(GETENV_RE.findall(f.read()))
    errors = []
    for var in sorted(read_vars):
        if var not in documented:
            errors.append(
                f"src/ reads {var} but docs/CONFIGURATION.md never "
                f"mentions it")
    if not read_vars:
        errors.append("no getenv(\"CDD_...\") found in src/ — "
                      "check_docs.py pattern is stale")
    return errors


def find_bin_dir(argv):
    """Binary directory from --bin-dir, else ./build when present."""
    for i, arg in enumerate(argv):
        if arg == "--bin-dir" and i + 1 < len(argv):
            return os.path.join(REPO, argv[i + 1])
        if arg.startswith("--bin-dir="):
            return os.path.join(REPO, arg.split("=", 1)[1])
    default = os.path.join(REPO, "build")
    return default if os.path.isdir(default) else None


def check_help_surface(documented, bin_dir):
    """Reverse gate: --help flags and CDD_* vars must be documented."""
    errors = []
    checked = 0
    for rel in HELP_BINARIES:
        binary = os.path.join(bin_dir, rel)
        if not os.path.isfile(binary) or not os.access(binary, os.X_OK):
            continue  # not built in this configuration — skip gracefully
        try:
            proc = subprocess.run(
                [binary, "--help"], capture_output=True, text=True,
                timeout=60)
        except (OSError, subprocess.TimeoutExpired) as e:
            errors.append(f"{rel} --help failed to run: {e}")
            continue
        checked += 1
        help_text = proc.stdout + proc.stderr
        name = os.path.basename(rel)
        for flag in sorted(set(HELP_FLAG_RE.findall(help_text))):
            if f"--{flag}" not in documented:
                errors.append(
                    f"{name} --help offers --{flag} but "
                    f"docs/CONFIGURATION.md never mentions it")
        for var in sorted(set(HELP_ENV_RE.findall(help_text))):
            if var not in documented:
                errors.append(
                    f"{name} --help references {var} but "
                    f"docs/CONFIGURATION.md never mentions it")
    if checked == 0:
        print("check_docs: note: no built binaries found, "
              "--help flag gate skipped")
    return errors


def main():
    documented = read_configuration()
    errors = check_links() + check_env_vars(documented)
    bin_dir = find_bin_dir(sys.argv[1:])
    if bin_dir is not None:
        errors += check_help_surface(documented, bin_dir)
    else:
        print("check_docs: note: no build directory, "
              "--help flag gate skipped")
    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"check_docs: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    print("check_docs: all links resolve, all CDD_* env vars documented, "
          "all --help flags documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())

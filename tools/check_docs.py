#!/usr/bin/env python3
"""Documentation consistency gate (CI `docs` job).

Two checks, both mechanical so the docs cannot silently rot:

1. Every relative markdown link in the documentation set resolves to an
   existing file (anchors and external http/mailto links are skipped).
2. Every environment variable the source tree actually reads — any
   `getenv("CDD_...")` in src/ — is documented in docs/CONFIGURATION.md,
   so a new knob cannot land without its reference entry.

Exits nonzero with one line per violation.  No dependencies beyond the
standard library; run from anywhere inside the repository:

    python3 tools/check_docs.py
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# The documentation set whose links must resolve.
DOC_FILES = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "docs/ARCHITECTURE.md",
    "docs/CONFIGURATION.md",
]

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
GETENV_RE = re.compile(r"getenv\(\s*\"(CDD_[A-Z0-9_]+)\"")


def check_links():
    errors = []
    for rel in DOC_FILES:
        path = os.path.join(REPO, rel)
        if not os.path.isfile(path):
            errors.append(f"{rel}: listed in check_docs.py but missing")
            continue
        with open(path, encoding="utf-8") as f:
            text = f.read()
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            target = target.split("#", 1)[0]
            if not target:  # pure in-page anchor
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), target))
            if not os.path.exists(resolved):
                line = text[: match.start()].count("\n") + 1
                errors.append(f"{rel}:{line}: broken link -> {target}")
    return errors


def check_env_vars():
    read_vars = set()
    src = os.path.join(REPO, "src")
    for dirpath, _dirnames, filenames in os.walk(src):
        for name in filenames:
            if not name.endswith((".cpp", ".hpp", ".h", ".cc")):
                continue
            with open(os.path.join(dirpath, name), encoding="utf-8") as f:
                read_vars.update(GETENV_RE.findall(f.read()))
    config = os.path.join(REPO, "docs", "CONFIGURATION.md")
    with open(config, encoding="utf-8") as f:
        documented = f.read()
    errors = []
    for var in sorted(read_vars):
        if var not in documented:
            errors.append(
                f"src/ reads {var} but docs/CONFIGURATION.md never "
                f"mentions it")
    if not read_vars:
        errors.append("no getenv(\"CDD_...\") found in src/ — "
                      "check_docs.py pattern is stale")
    return errors


def main():
    errors = check_links() + check_env_vars()
    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"check_docs: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    print("check_docs: all links resolve, all CDD_* env vars documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())

/// \file sched_serve.cpp
/// \brief Batch solver server: drive the SolverService end to end.
///
/// Feeds the service a workload of solve requests — synthetic (mixed
/// CDD/UCDDCP Biskup-Feldmann instances with a controlled duplicate
/// fraction) or read from a request file — waits for every response, and
/// reports per-status counts, cache effectiveness and the metrics JSON.
///
///   sched_serve --requests 1000 --dup-frac 0.25 --workers 8
///   sched_serve --requests 500 --engines sa,ta,es --deadline-ms 50
///   sched_serve --file requests.txt --metrics
///   sched_serve --requests 200 --listen 0 --clients 8  # full wire path
///
/// Request-file format: one request per line,
///   engine problem n index h gens seed deadline_ms [priority]
/// e.g. "sa cdd 50 3 0.6 1000 1 250"; '#' starts a comment; the optional
/// trailing priority (default 0) dequeues higher values first and, with
/// --preempt-slice, preempts lower-priority runs at Step boundaries.
/// A malformed priority field is a hard error with a path:line diagnostic
/// — a typo must not silently run at priority 0.
///
/// With --listen the tool starts the epoll socket front-end on loopback
/// and drives the same workload through keep-alive wire-protocol
/// connections (--clients of them), exercising framing, parsing and the
/// callback delivery path end to end.
///
/// A rejected submission (bounded queue full) is retried with backoff
/// until admitted, so the run terminates with zero lost requests by
/// construction — backpressure slows the feeder down instead of dropping
/// work on the floor.  Shed and deadline-infeasible responses (admission
/// control; see --watermarks) are terminal outcomes, reported per status.

#include <atomic>
#include <charconv>
#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "benchutil/cli.hpp"
#include "benchutil/table.hpp"
#include "orlib/biskup_feldmann.hpp"
#include "rng/philox.hpp"
#include "serve/net/client.hpp"
#include "serve/net/front_end.hpp"
#include "serve/service.hpp"

namespace {

using namespace cdd;

void PrintUsage() {
  std::cout <<
      "sched_serve — concurrent solver service, batch front-end\n\n"
      "Workload (synthetic):\n"
      "  --requests N        total requests (default 1000)\n"
      "  --dup-frac F        fraction of duplicate requests (default 0.25)\n"
      "  --ucddcp-frac F     fraction of UCDDCP instances (default 0.25)\n"
      "  --sizes LIST        instance sizes to mix (default 20,50)\n"
      "  --engines LIST      engine names to mix (default sa,ta,es)\n"
      "  --gens G            per-request search budget (default 200)\n"
      "  --deadline-ms D     per-request deadline, 0 = none (default 0)\n"
      "  --seed S            workload seed (default 1)\n"
      "  --priorities L      request priority levels 0..L-1, sampled\n"
      "                      uniformly (default 1: all equal, plain FIFO)\n"
      "  --machines M        parallel identical machines per CDD instance\n"
      "                      (default 1; m > 1 needs --engines from sa,ta\n"
      "                      and --ucddcp-frac 0)\n"
      "  --objective O       total-penalty|early-work (default\n"
      "                      total-penalty; early-work needs --engines\n"
      "                      from sa,ta and --ucddcp-frac 0)\n"
      "Workload (file):\n"
      "  --file PATH         one request per line:\n"
      "                      engine problem n index h gens seed deadline_ms\n"
      "Service:\n"
      "  --workers W         solver threads (default hardware)\n"
      "  --queue Q           admission queue capacity (default 128)\n"
      "  --cache C           result cache entries, 0 = off (default 4096)\n"
      "  --preempt-slice N   Step units between preemption checks; 0 =\n"
      "                      run-to-completion (default 0); slicing never\n"
      "                      changes results, only who waits\n"
      "  --pool-backend B    request-pool placement: host|pinned|device|\n"
      "                      numa (default CDD_POOL_BACKEND, then host)\n"
      "  --exec-backend B    block execution for device engines:\n"
      "                      serial|host-parallel (default\n"
      "                      CDD_EXEC_BACKEND with an oversubscription\n"
      "                      guard; results are backend-invariant)\n"
      "  --watermarks L:H    admission-control queue-depth watermarks\n"
      "                      (default CDD_SERVE_WATERMARKS, else off)\n"
      "  --manifest PATH     append a JSONL run manifest of every\n"
      "                      completed solve (replayable, bit-identical)\n"
      "Socket front-end:\n"
      "  --listen PORT       serve the workload through the epoll socket\n"
      "                      front-end on 127.0.0.1:PORT (0 = ephemeral)\n"
      "  --max-conns N       connection cap of the listener (default 256)\n"
      "  --clients C         wire-protocol client connections (default 8)\n"
      "Output:\n"
      "  --metrics           print the metrics JSON snapshot\n"
      "  --quiet             suppress the per-run summary table\n";
}

struct WorkloadStats {
  std::size_t submitted = 0;
  std::size_t retries = 0;
};

/// Submits with retry-on-backpressure so no request is ever lost.
std::future<serve::SolveResponse> SubmitReliably(
    serve::SolverService& service, serve::SolveRequest request,
    WorkloadStats& stats) {
  ++stats.submitted;
  for (;;) {
    std::future<serve::SolveResponse> future =
        service.Submit(request);
    // Rejections resolve immediately; anything pending was admitted.
    if (future.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready) {
      return future;
    }
    serve::SolveResponse response = future.get();
    if (response.status != serve::SolveStatus::kRejectedQueueFull) {
      // Terminal (cache hit, unknown engine, ...): hand it back as-is.
      std::promise<serve::SolveResponse> done;
      done.set_value(std::move(response));
      return done.get_future();
    }
    ++stats.retries;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

std::vector<serve::SolveRequest> LoadRequestFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::vector<serve::SolveRequest> requests;
  std::string line;
  std::uint64_t id = 0;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;  // blank or comment-only line
    }
    std::istringstream fields(line);
    std::string engine, problem;
    std::uint32_t n = 0, index = 0;
    double h = 0.6;
    std::uint64_t gens = 0, seed = 1;
    std::int64_t deadline_ms = 0;
    if (!(fields >> engine >> problem >> n >> index >> h >> gens >> seed >>
          deadline_ms)) {
      // A non-empty line that doesn't parse is a typo, not a request to
      // silently drop.
      throw std::runtime_error(path + ":" + std::to_string(line_no) +
                               ": malformed request line '" + line + "'");
    }
    int priority = 0;
    if (std::string priority_text; fields >> priority_text) {
      // Strict: the trailing field, when present, must be a whole
      // integer.  A typo ("1O", "high") must fail loudly, not silently
      // schedule the request at priority 0.
      const char* first = priority_text.data();
      const char* last = first + priority_text.size();
      const auto [ptr, ec] = std::from_chars(first, last, priority);
      if (ec != std::errc() || ptr != last) {
        throw std::runtime_error(
            path + ":" + std::to_string(line_no) +
            ": malformed priority '" + priority_text + "' in '" + line +
            "'");
      }
      if (std::string extra; fields >> extra) {
        throw std::runtime_error(path + ":" + std::to_string(line_no) +
                                 ": trailing field '" + extra + "' in '" +
                                 line + "'");
      }
    }
    if (problem != "cdd" && problem != "ucddcp") {
      throw std::runtime_error("bad problem '" + problem + "' in " + path);
    }
    const orlib::BiskupFeldmannGenerator gen(seed);
    serve::SolveRequest request;
    request.id = id++;
    request.instance = problem == "ucddcp" ? gen.Ucddcp(n, index)
                                           : gen.Cdd(n, index, h);
    request.engine = engine;
    request.options.generations = gens;
    request.options.seed = seed;
    request.priority = priority;
    request.deadline = std::chrono::milliseconds(deadline_ms);
    requests.push_back(std::move(request));
  }
  return requests;
}

std::vector<std::string> SplitNames(const std::string& csv) {
  std::vector<std::string> names;
  std::string token;
  std::istringstream in(csv);
  while (std::getline(in, token, ',')) {
    if (!token.empty()) names.push_back(token);
  }
  return names;
}

std::vector<serve::SolveRequest> SyntheticWorkload(
    const benchutil::Args& args) {
  const auto total =
      static_cast<std::size_t>(args.GetInt("requests", 1000));
  const double dup_frac = args.GetDouble("dup-frac", 0.25);
  const double ucddcp_frac = args.GetDouble("ucddcp-frac", 0.25);
  const std::vector<std::uint32_t> sizes =
      args.GetUintList("sizes", {20, 50});
  const std::vector<std::string> engines =
      SplitNames(args.GetString("engines", "sa,ta,es"));
  const auto gens = static_cast<std::uint64_t>(args.GetInt("gens", 200));
  const auto deadline_ms = args.GetInt("deadline-ms", 0);
  const auto seed = static_cast<std::uint64_t>(args.GetInt("seed", 1));
  const auto priority_levels =
      static_cast<std::uint32_t>(args.GetInt("priorities", 1));
  const auto machines =
      static_cast<std::int32_t>(args.GetInt("machines", 1));
  const std::string objective_name =
      args.GetString("objective", "total-penalty");
  if (objective_name != "total-penalty" && objective_name != "early-work") {
    throw std::runtime_error("--objective must be total-penalty|early-work");
  }
  const bool variant_workload =
      machines > 1 || objective_name == "early-work";

  if (engines.empty()) throw std::runtime_error("--engines is empty");
  if (priority_levels == 0) {
    throw std::runtime_error("--priorities must be >= 1");
  }
  if (variant_workload) {
    // Fail the whole run up front instead of filling the summary table
    // with rejected_invalid_instance rows.
    if (ucddcp_frac > 0.0) {
      throw std::runtime_error(
          "--machines/--objective early-work apply to CDD instances only; "
          "set --ucddcp-frac 0");
    }
    for (const std::string& engine : engines) {
      if (engine != "sa" && engine != "ta") {
        throw std::runtime_error(
            "engine '" + engine +
            "' does not support --machines/--objective early-work; use "
            "--engines from sa,ta");
      }
    }
  }
  if (total == 0) return {};
  const auto uniques = static_cast<std::size_t>(
      std::max(1.0, static_cast<double>(total) * (1.0 - dup_frac)));

  rng::Philox4x32 rng(seed, /*stream=*/0x5e72eULL);
  const orlib::BiskupFeldmannGenerator gen(seed);

  // The unique request pool: distinct (instance, engine, params) tuples.
  std::vector<serve::SolveRequest> pool;
  pool.reserve(uniques);
  for (std::size_t u = 0; u < uniques; ++u) {
    const bool ucddcp =
        rng.NextUniform() < ucddcp_frac;
    const std::uint32_t n = sizes[u % sizes.size()];
    const auto index = static_cast<std::uint32_t>(u);
    serve::SolveRequest request;
    request.instance = ucddcp
                           ? gen.Ucddcp(n, index)
                           : gen.Cdd(n, index, 0.2 + 0.2 * (u % 4));
    if (machines > 1) {
      request.instance = request.instance.with_machines(machines);
    }
    if (objective_name == "early-work") {
      request.instance = request.instance.with_objective(
          ScheduleObjective::kEarlyWork);
    }
    request.engine = engines[u % engines.size()];
    request.options.generations = gens;
    request.options.seed = seed;
    // Priority is scheduling-only (never part of the cache key), so
    // duplicates inheriting the original's level is harmless.
    request.priority = priority_levels > 1
                           ? static_cast<int>(UniformBelow(
                                 rng, priority_levels))
                           : 0;
    request.deadline = std::chrono::milliseconds(deadline_ms);
    pool.push_back(std::move(request));
  }

  // Fill to `total` by re-sampling the pool (the duplicates), then shuffle
  // so duplicates interleave with first occurrences.
  std::vector<serve::SolveRequest> workload = pool;
  workload.reserve(total);
  while (workload.size() < total) {
    workload.push_back(pool[UniformBelow(
        rng, static_cast<std::uint32_t>(pool.size()))]);
  }
  for (std::size_t i = workload.size(); i > 1; --i) {
    const std::uint32_t j =
        UniformBelow(rng, static_cast<std::uint32_t>(i));
    std::swap(workload[i - 1], workload[j]);
  }
  for (std::size_t i = 0; i < workload.size(); ++i) workload[i].id = i;
  return workload;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cdd;
  const benchutil::Args args(argc, argv);
  if (args.GetBool("help")) {
    PrintUsage();
    return 0;
  }

  try {
    std::vector<serve::SolveRequest> workload;
    const std::string file = args.GetString("file", "");
    if (!file.empty()) {
      workload = LoadRequestFile(file);
    } else {
      workload = SyntheticWorkload(args);
    }

    serve::ServiceConfig config;
    const unsigned hardware = std::thread::hardware_concurrency();
    config.workers = static_cast<unsigned>(
        args.GetInt("workers", hardware == 0 ? 4 : hardware));
    config.queue_capacity =
        static_cast<std::size_t>(args.GetInt("queue", 128));
    config.cache_capacity =
        static_cast<std::size_t>(args.GetInt("cache", 4096));
    config.preempt_slice =
        static_cast<std::uint64_t>(args.GetInt("preempt-slice", 0));
    config.pool_backend = args.GetString("pool-backend", "");
    if (!config.pool_backend.empty()) {
      core::PoolBackend parsed = core::PoolBackend::kHost;
      if (!core::ParsePoolBackend(config.pool_backend, &parsed)) {
        std::cerr << "error: unknown --pool-backend '"
                  << config.pool_backend
                  << "' (host|pinned|device|numa)\n";
        return 1;
      }
    }
    config.exec_backend = args.GetString("exec-backend", "");
    if (!config.exec_backend.empty()) {
      sim::exec::ExecBackend parsed = sim::exec::ExecBackend::kSerial;
      if (!sim::exec::ParseExecBackend(config.exec_backend, &parsed)) {
        std::cerr << "error: unknown --exec-backend '"
                  << config.exec_backend << "' (serial|host-parallel)\n";
        return 1;
      }
    }
    config.manifest_path = args.GetString("manifest", "");
    if (const std::string watermarks = args.GetString("watermarks", "");
        !watermarks.empty()) {
      std::size_t low = 0;
      std::size_t high = 0;
      const char* first = watermarks.data();
      const char* last = first + watermarks.size();
      const auto low_end = std::from_chars(first, last, low);
      if (low_end.ec != std::errc() || low_end.ptr == last ||
          *low_end.ptr != ':' ||
          std::from_chars(low_end.ptr + 1, last, high).ptr != last ||
          high == 0) {
        std::cerr << "error: --watermarks wants LOW:HIGH depths, got '"
                  << watermarks << "'\n";
        return 1;
      }
      config.shed_low_watermark = low;
      config.shed_high_watermark = high;
    }
    serve::SolverService service(config);

    std::cout << "sched_serve: " << workload.size() << " requests, "
              << config.workers << " workers, queue "
              << config.queue_capacity << ", cache "
              << config.cache_capacity << ", pool "
              << core::ToString(service.pool_backend()) << ", exec "
              << sim::exec::ToString(service.exec_backend()) << "\n";

    std::optional<serve::net::FrontEnd> front_end;
    if (args.Has("listen")) {
      serve::net::FrontEndConfig net_config;
      net_config.port =
          static_cast<std::uint16_t>(args.GetInt("listen", 0));
      net_config.max_conns =
          static_cast<std::size_t>(args.GetInt("max-conns", 256));
      front_end.emplace(net_config, service);
      std::cout << "listening on 127.0.0.1:" << front_end->port()
                << " (max-conns " << net_config.max_conns << ")\n";
    }

    const std::size_t total_requests = workload.size();
    const auto t_start = std::chrono::steady_clock::now();
    WorkloadStats stats;
    std::map<std::string, std::size_t> by_status;
    std::size_t resolved = 0;
    Cost cost_sum = 0;

    if (front_end) {
      // Wire path: closed-loop clients over keep-alive connections, each
      // retrying its own backpressure rejections — the socket equivalent
      // of SubmitReliably.
      const auto clients = static_cast<std::size_t>(
          std::max<std::int64_t>(args.GetInt("clients", 8), 1));
      std::atomic<std::size_t> next{0};
      std::atomic<std::size_t> retries{0};
      std::mutex aggregate_mutex;
      const auto client_loop = [&] {
        serve::net::BlockingClient client("127.0.0.1",
                                          front_end->port());
        for (;;) {
          const std::size_t k = next.fetch_add(1);
          if (k >= workload.size()) break;
          serve::SolveResponse response;
          for (;;) {
            response = client.Call(workload[k]);
            if (response.status !=
                serve::SolveStatus::kRejectedQueueFull) {
              break;
            }
            retries.fetch_add(1);
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          }
          const std::scoped_lock lock(aggregate_mutex);
          ++resolved;
          ++by_status[std::string(serve::ToString(response.status))];
          if (response.ok()) cost_sum += response.result.best_cost;
        }
      };
      std::vector<std::thread> threads;
      for (std::size_t c = 0; c < clients; ++c) {
        threads.emplace_back(client_loop);
      }
      for (std::thread& t : threads) t.join();
      stats.submitted = total_requests;
      stats.retries = retries.load();
      front_end->Stop();
    } else {
      std::vector<std::future<serve::SolveResponse>> futures;
      futures.reserve(workload.size());
      for (serve::SolveRequest& request : workload) {
        futures.push_back(
            SubmitReliably(service, std::move(request), stats));
      }
      for (auto& future : futures) {
        serve::SolveResponse response = future.get();
        ++resolved;
        ++by_status[std::string(serve::ToString(response.status))];
        if (response.ok()) cost_sum += response.result.best_cost;
      }
    }
    service.Shutdown();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t_start)
            .count();

    const serve::CacheStats cache = service.cache().stats();
    const double hit_rate =
        cache.hits + cache.misses == 0
            ? 0.0
            : static_cast<double>(cache.hits) /
                  static_cast<double>(cache.hits + cache.misses);

    if (!args.GetBool("quiet")) {
      benchutil::TextTable table({"outcome", "requests"});
      for (const auto& [status, count] : by_status) {
        table.AddRow({status, std::to_string(count)});
      }
      std::cout << table.ToString();
      std::cout << "resolved " << resolved << "/" << total_requests
                << " requests in " << wall << " s ("
                << static_cast<double>(resolved) / wall
                << " req/s), retries " << stats.retries
                << ", cache hit rate " << 100.0 * hit_rate << "%\n";
    }
    if (args.GetBool("metrics")) {
      std::cout << service.metrics().SnapshotJson() << "\n";
    }

    const bool lost = resolved != total_requests;
    const bool failed = by_status.count("failed") > 0 ||
                        by_status.count("rejected_unknown_engine") > 0;
    if (lost) std::cerr << "error: lost requests\n";
    if (failed) std::cerr << "error: failed requests\n";
    return lost || failed ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

/// \file bnb_gap_gate.cpp
/// \brief CI optimality-gap gate: every registered engine vs pinned
/// branch-and-bound optima.
///
/// results/golden_bnb.jsonl pins a set of Biskup-Feldmann benchmark
/// instances (regenerated deterministically from (n, k, h) — nothing but
/// the optimum and tolerance is stored) together with the cost the exact
/// tier proved optimal.  The gate re-proves each pinned optimum with
/// BranchAndBound, then runs every engine in the default registry with a
/// fixed budget and fails when any engine's cost lands outside
/// [optimum, optimum * (1 + tolerance_pct/100)].  A cost *below* the
/// pinned optimum is just as fatal as one above the tolerance: it means
/// an evaluator or the exact tier regressed.
///
///   bnb_gap_gate [--manifest results/golden_bnb.jsonl]
///                [--generations 1000] [--seed 1]
///   bnb_gap_gate --pin [--tolerance 25]   # emit fresh jsonl on stdout
///
/// Record format (one JSON object per line):
///   {"schema":1,"key":"cdd-n10-k0-h0.40","problem":"cdd","n":10,"k":0,
///    "h":0.4,"optimum":1936,"tolerance_pct":25.0}

#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "benchutil/cli.hpp"
#include "benchutil/table.hpp"
#include "core/instance.hpp"
#include "exact/bnb.hpp"
#include "orlib/biskup_feldmann.hpp"
#include "serve/engine_registry.hpp"
#include "trace/json.hpp"

namespace {

using namespace cdd;

struct GoldenRecord {
  std::string key;
  std::string problem;  // "cdd" | "ucddcp"
  std::uint32_t n = 0;
  std::uint32_t k = 0;
  double h = 0;  // unused for ucddcp
  Cost optimum = 0;
  double tolerance_pct = 0;
};

Instance Regenerate(const GoldenRecord& record) {
  const orlib::BiskupFeldmannGenerator generator;
  return record.problem == "ucddcp"
             ? generator.Ucddcp(record.n, record.k)
             : generator.Cdd(record.n, record.k, record.h);
}

GoldenRecord ParseRecord(const std::string& line, std::size_t line_no) {
  const trace::JsonValue value = trace::JsonValue::Parse(line);
  if (value.At("schema").AsInt() != 1) {
    throw std::runtime_error("line " + std::to_string(line_no) +
                             ": unsupported schema");
  }
  GoldenRecord record;
  record.key = value.At("key").AsString();
  record.problem = value.At("problem").AsString();
  record.n = static_cast<std::uint32_t>(value.At("n").AsUint());
  record.k = static_cast<std::uint32_t>(value.At("k").AsUint());
  if (const trace::JsonValue* h = value.Find("h")) record.h = h->AsDouble();
  record.optimum = value.At("optimum").AsInt();
  record.tolerance_pct = value.At("tolerance_pct").AsDouble();
  return record;
}

/// The pinned instance set: small enough that the exact tier proves each
/// optimum in milliseconds, spread over restrictiveness and both
/// problems so every engine's evaluator path is exercised.
std::vector<GoldenRecord> PinSet(double tolerance_pct) {
  std::vector<GoldenRecord> records;
  const auto add_cdd = [&](std::uint32_t n, std::uint32_t k, double h) {
    GoldenRecord r;
    r.key = orlib::CddKey(n, k, h);
    r.problem = "cdd";
    r.n = n;
    r.k = k;
    r.h = h;
    r.tolerance_pct = tolerance_pct;
    records.push_back(r);
  };
  const auto add_ucddcp = [&](std::uint32_t n, std::uint32_t k) {
    GoldenRecord r;
    r.key = orlib::UcddcpKey(n, k);
    r.problem = "ucddcp";
    r.n = n;
    r.k = k;
    r.tolerance_pct = tolerance_pct;
    records.push_back(r);
  };
  add_cdd(10, 0, 0.4);
  add_cdd(10, 1, 0.6);
  add_cdd(10, 2, 0.8);
  add_cdd(14, 0, 0.6);
  add_ucddcp(10, 0);
  add_ucddcp(10, 1);
  add_ucddcp(12, 0);
  return records;
}

Cost ProveOptimum(const Instance& instance) {
  exact::BnbParams params;
  params.workers = 1;
  const exact::BnbResult result = exact::BranchAndBound(instance, params);
  if (!result.proven_optimal) {
    throw std::runtime_error("branch-and-bound failed to prove optimality");
  }
  return result.cost;
}

}  // namespace

int main(int argc, char** argv) {
  const benchutil::Args args(argc, argv);
  if (args.GetBool("help")) {
    std::cout
        << "Optimality-gap gate: every registry engine vs pinned "
           "branch-and-bound optima.\nFlags: --manifest PATH "
           "--generations G --seed S | --pin [--tolerance PCT]\n";
    return 0;
  }

  if (args.GetBool("pin")) {
    const double tolerance = args.GetDouble("tolerance", 25.0);
    for (const GoldenRecord& record : PinSet(tolerance)) {
      const Cost optimum = ProveOptimum(Regenerate(record));
      std::cout << "{\"schema\":1,\"key\":\"" << record.key
                << "\",\"problem\":\"" << record.problem
                << "\",\"n\":" << record.n << ",\"k\":" << record.k;
      if (record.problem == "cdd") {
        std::ostringstream h;
        h << record.h;
        std::cout << ",\"h\":" << h.str();
      }
      std::cout << ",\"optimum\":" << optimum << ",\"tolerance_pct\":"
                << record.tolerance_pct << "}\n";
    }
    return 0;
  }

  const std::string manifest_path =
      args.GetString("manifest", "results/golden_bnb.jsonl");
  const auto generations =
      static_cast<std::uint64_t>(args.GetInt("generations", 1000));
  const auto seed = static_cast<std::uint64_t>(args.GetInt("seed", 1));

  std::ifstream manifest(manifest_path);
  if (!manifest) {
    std::cerr << "error: cannot read " << manifest_path << "\n";
    return 1;
  }

  std::vector<GoldenRecord> records;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(manifest, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      records.push_back(ParseRecord(line, line_no));
    } catch (const std::exception& e) {
      std::cerr << "error: " << manifest_path << " line " << line_no
                << ": " << e.what() << "\n";
      return 1;
    }
  }
  if (records.empty()) {
    std::cerr << "error: " << manifest_path << " holds no records\n";
    return 1;
  }

  const serve::EngineRegistry& registry = serve::EngineRegistry::Default();
  const std::vector<std::string> engines = registry.Names();
  std::cout << "=== Optimality-gap gate: " << engines.size()
            << " engines x " << records.size() << " pinned instances "
            << "(generations=" << generations << ", seed=" << seed
            << ") ===\n";

  benchutil::TextTable table({"instance", "engine", "optimum", "cost",
                              "gap %", "tol %", "status"});
  std::size_t failures = 0;

  for (const GoldenRecord& record : records) {
    const Instance instance = Regenerate(record);

    // Re-prove the pinned bound before holding anyone to it.
    Cost proven = 0;
    try {
      proven = ProveOptimum(instance);
    } catch (const std::exception& e) {
      std::cerr << "FAIL " << record.key << ": " << e.what() << "\n";
      ++failures;
      continue;
    }
    if (proven != record.optimum) {
      std::cerr << "FAIL " << record.key << ": pinned optimum "
                << record.optimum << " but branch-and-bound proved "
                << proven << " — re-pin with --pin\n";
      ++failures;
      continue;
    }

    for (const std::string& name : engines) {
      const serve::EngineFn* engine = registry.Find(name);
      serve::EngineOptions options;
      options.generations = generations;
      options.seed = seed;
      options.ensemble = 192;
      options.block = 64;
      options.chains = 16;
      options.threads = 1;
      serve::EngineRun run;
      try {
        run = (*engine)(instance, options);
      } catch (const std::exception& e) {
        table.AddRow({record.key, name, std::to_string(record.optimum),
                      "-", "-", "-", std::string("ERROR: ") + e.what()});
        ++failures;
        continue;
      }
      const Cost cost = run.result.best_cost;
      const double gap =
          100.0 * static_cast<double>(cost - record.optimum) /
          static_cast<double>(std::max<Cost>(record.optimum, 1));
      const bool below = cost < record.optimum;
      const bool above = gap > record.tolerance_pct;
      if (below || above) ++failures;
      table.AddRow({record.key, name, std::to_string(record.optimum),
                    std::to_string(cost), benchutil::FmtDouble(gap, 2),
                    benchutil::FmtDouble(record.tolerance_pct, 0),
                    below ? "FAIL (beats proven optimum!)"
                          : above ? "FAIL (gap over tolerance)" : "ok"});
    }
  }
  std::cout << table.ToString();

  if (failures != 0) {
    std::cerr << "\nFAIL: " << failures << " gate violation(s)\n";
    return 1;
  }
  std::cout << "\nok: every engine within tolerance of every pinned "
               "optimum\n";
  return 0;
}

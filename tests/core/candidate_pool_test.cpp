/// CandidatePool layout and lifecycle tests.

#include "core/candidate_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <type_traits>

#include "core/sequence.hpp"

namespace cdd {
namespace {

TEST(CandidatePool, StrideRoundsUpToCacheLineMultiples) {
  // 64-byte lines over 4-byte JobIds: stride is a multiple of 16 >= n.
  EXPECT_EQ(CandidatePool(1, 4).stride(), CandidatePool::kRowAlign);
  EXPECT_EQ(CandidatePool(16, 4).stride(), 16u);
  EXPECT_EQ(CandidatePool(17, 4).stride(), 32u);
  EXPECT_EQ(CandidatePool(50, 4).stride(), 64u);
}

TEST(CandidatePool, RejectsEmptySequences) {
  EXPECT_THROW(CandidatePool(0, 4), std::invalid_argument);
}

TEST(CandidatePool, AppendCopiesAndReportsRowIndices) {
  CandidatePool pool(5, 3);
  EXPECT_TRUE(pool.empty());
  EXPECT_EQ(pool.Append(Sequence{0, 1, 2, 3, 4}), 0u);
  EXPECT_EQ(pool.Append(Sequence{4, 3, 2, 1, 0}), 1u);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_FALSE(pool.full());
  EXPECT_EQ(pool.row(1)[0], 4);
  EXPECT_EQ(pool.row(0)[4], 4);

  // Rows are independent: mutating one leaves its neighbours alone.
  pool.row(0)[0] = 9;
  EXPECT_EQ(pool.row(1)[0], 4);
}

TEST(CandidatePool, AppendValidatesLengthAndCapacity) {
  CandidatePool pool(5, 1);
  EXPECT_THROW(pool.Append(Sequence{0, 1, 2}), std::invalid_argument);
  pool.Append(Sequence{0, 1, 2, 3, 4});
  EXPECT_TRUE(pool.full());
  EXPECT_THROW(pool.AppendUninitialized(), std::length_error);
  pool.Clear();
  EXPECT_TRUE(pool.empty());
  EXPECT_EQ(pool.AppendUninitialized(), 0u);
}

TEST(CandidatePool, ViewSharesStorageWithRows) {
  CandidatePool pool(6, 2);
  pool.Append(Sequence{5, 4, 3, 2, 1, 0});
  const CandidatePoolView v = pool.view();
  EXPECT_EQ(v.n, 6);
  EXPECT_EQ(v.count, 1u);
  EXPECT_GE(v.stride, v.n);
  EXPECT_EQ(v.row(0), pool.row(0).data());
  v.row(0)[0] = 7;
  EXPECT_EQ(pool.row(0)[0], 7);
  EXPECT_EQ(v.costs, pool.costs().data());
}

TEST(CandidatePool, ShadowBufferSwapsInConstantTime) {
  CandidatePool pool(4, 2);
  pool.Append(Sequence{0, 1, 2, 3});
  pool.Append(Sequence{3, 2, 1, 0});
  // Stage the next generation in shadow rows, then flip.
  const Sequence survivor{1, 0, 3, 2};
  for (std::size_t b = 0; b < 2; ++b) {
    std::copy(survivor.begin(), survivor.end(), pool.shadow_row(b).begin());
  }
  pool.SwapBuffers();
  EXPECT_EQ(pool.row(0)[0], 1);
  EXPECT_EQ(pool.row(1)[3], 2);
}

TEST(CandidatePoolView, IsTriviallyCopyable) {
  // The cudasim kernels capture views by value; this property is load-
  // bearing, not stylistic.
  static_assert(std::is_trivially_copyable_v<CandidatePoolView>);
  SUCCEED();
}

}  // namespace
}  // namespace cdd

/// CandidatePool layout and lifecycle tests.

#include "core/candidate_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <type_traits>

#include "core/sequence.hpp"

namespace cdd {
namespace {

TEST(CandidatePool, StrideRoundsUpToCacheLineMultiples) {
  // 64-byte lines over 4-byte JobIds: stride is a multiple of 16 >= n.
  EXPECT_EQ(CandidatePool(1, 4).stride(), CandidatePool::kRowAlign);
  EXPECT_EQ(CandidatePool(16, 4).stride(), 16u);
  EXPECT_EQ(CandidatePool(17, 4).stride(), 32u);
  EXPECT_EQ(CandidatePool(50, 4).stride(), 64u);
}

TEST(CandidatePool, RejectsEmptySequences) {
  EXPECT_THROW(CandidatePool(0, 4), std::invalid_argument);
}

TEST(CandidatePool, AppendCopiesAndReportsRowIndices) {
  CandidatePool pool(5, 3);
  EXPECT_TRUE(pool.empty());
  EXPECT_EQ(pool.Append(Sequence{0, 1, 2, 3, 4}), 0u);
  EXPECT_EQ(pool.Append(Sequence{4, 3, 2, 1, 0}), 1u);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_FALSE(pool.full());
  EXPECT_EQ(pool.row(1)[0], 4);
  EXPECT_EQ(pool.row(0)[4], 4);

  // Rows are independent: mutating one leaves its neighbours alone.
  pool.row(0)[0] = 9;
  EXPECT_EQ(pool.row(1)[0], 4);
}

TEST(CandidatePool, AppendValidatesLengthAndCapacity) {
  CandidatePool pool(5, 1);
  EXPECT_THROW(pool.Append(Sequence{0, 1, 2}), std::invalid_argument);
  pool.Append(Sequence{0, 1, 2, 3, 4});
  EXPECT_TRUE(pool.full());
  EXPECT_THROW(pool.AppendUninitialized(), std::length_error);
  pool.Clear();
  EXPECT_TRUE(pool.empty());
  EXPECT_EQ(pool.AppendUninitialized(), 0u);
}

TEST(CandidatePool, ViewSharesStorageWithRows) {
  CandidatePool pool(6, 2);
  pool.Append(Sequence{5, 4, 3, 2, 1, 0});
  const CandidatePoolView v = pool.view();
  EXPECT_EQ(v.n, 6);
  EXPECT_EQ(v.count, 1u);
  EXPECT_GE(v.stride, v.n);
  EXPECT_EQ(v.row(0), pool.row(0).data());
  v.row(0)[0] = 7;
  EXPECT_EQ(pool.row(0)[0], 7);
  EXPECT_EQ(v.costs, pool.costs().data());
}

TEST(CandidatePool, ShadowBufferSwapsInConstantTime) {
  CandidatePool pool(4, 2);
  pool.Append(Sequence{0, 1, 2, 3});
  pool.Append(Sequence{3, 2, 1, 0});
  // Stage the next generation in shadow rows, then flip.
  const Sequence survivor{1, 0, 3, 2};
  for (std::size_t b = 0; b < 2; ++b) {
    std::copy(survivor.begin(), survivor.end(), pool.shadow_row(b).begin());
  }
  pool.SwapBuffers();
  EXPECT_EQ(pool.row(0)[0], 1);
  EXPECT_EQ(pool.row(1)[3], 2);
}

TEST(CandidatePool, SwapBuffersInvalidatesOutstandingViews) {
  // Regression: a view taken before SwapBuffers() silently points at what
  // are now the shadow rows.  The buffer-generation counter makes that
  // observable: the stale view fails current(), a re-fetched view does
  // not.  (The debug assert in row() fires on the same condition; it is
  // compiled out of NDEBUG builds, so the test asserts current() itself.)
  CandidatePool pool(4, 2);
  pool.Append(Sequence{0, 1, 2, 3});
  pool.Append(Sequence{3, 2, 1, 0});
  const CandidatePoolView before = pool.view();
  EXPECT_TRUE(before.current());
  EXPECT_EQ(before.generation, pool.generation());

  const Sequence survivor{1, 0, 3, 2};
  for (std::size_t b = 0; b < 2; ++b) {
    std::copy(survivor.begin(), survivor.end(), pool.shadow_row(b).begin());
  }
  pool.SwapBuffers();
  EXPECT_FALSE(before.current()) << "view must go stale across a swap";
  EXPECT_NE(before.seqs, pool.view().seqs)
      << "the stale view aliases the shadow rows";

  const CandidatePoolView after = pool.view();
  EXPECT_TRUE(after.current());
  EXPECT_EQ(after.row(0)[0], 1);

  // The counter is monotonic, so a second swap (which flips the storage
  // back) still invalidates every older view — conservatively correct:
  // costs/pinned describe the latest evaluation, not the old rows.
  pool.SwapBuffers();
  EXPECT_FALSE(before.current());
  EXPECT_FALSE(after.current());
}

TEST(CandidatePoolView, DeviceBufferViewsAreExemptFromGenerations) {
  // Views built over raw device buffers carry no owning pool; they must
  // never report stale.
  JobId storage[8] = {0, 1, 2, 3, 0, 1, 2, 3};
  Cost costs[2] = {0, 0};
  CandidatePoolView v;
  v.seqs = storage;
  v.costs = costs;
  v.n = 4;
  v.stride = 4;
  v.count = 2;
  EXPECT_TRUE(v.current());
  EXPECT_EQ(v.row(1), storage + 4);
}

TEST(CandidatePoolView, IsTriviallyCopyable) {
  // The cudasim kernels capture views by value; this property is load-
  // bearing, not stylistic.
  static_assert(std::is_trivially_copyable_v<CandidatePoolView>);
  SUCCEED();
}

}  // namespace
}  // namespace cdd

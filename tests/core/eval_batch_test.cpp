/// Property tests for the batched SoA evaluators: EvalCddBatch /
/// EvalUcddcpBatch must agree bit-for-bit with the scalar reference
/// algorithms (EvalCdd / EvalUcddcp), with the fused single-pass variants,
/// and — on small instances — with the LP oracle.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/test_instances.hpp"
#include "core/candidate_pool.hpp"
#include "core/eval_cdd.hpp"
#include "core/eval_raw.hpp"
#include "core/eval_ucddcp.hpp"
#include "core/instance.hpp"
#include "core/sequence.hpp"
#include "lp/sequence_evaluator.hpp"
#include "meta/objective.hpp"

namespace cdd {
namespace {

/// Fills a pool with `batch` random permutations of the instance's jobs.
CandidatePool RandomPool(std::size_t n, std::size_t batch,
                         std::uint64_t seed) {
  CandidatePool pool(n, batch);
  for (std::size_t b = 0; b < batch; ++b) {
    pool.Append(testing::RandomSeq(static_cast<std::uint32_t>(n),
                                   seed * 1000 + b));
  }
  return pool;
}

/// Batch result == scalar EvalCdd == EvalCddFused, row by row, including
/// the schedule geometry (offset, pinned position).
void ExpectCddBatchMatchesScalar(const Instance& instance,
                                 std::uint64_t seed, std::size_t batch) {
  const CddEvaluator eval(instance);
  const auto n = static_cast<std::int32_t>(instance.size());
  CandidatePool pool = RandomPool(instance.size(), batch, seed);
  const CandidatePoolView v = pool.view();
  std::vector<Time> offsets(batch, -1);
  raw::EvalCddBatch(n, eval.due_date(), v.seqs, v.stride,
                    static_cast<std::int32_t>(v.count), eval.proc_data(),
                    eval.alpha_data(), eval.beta_data(), v.costs, v.pinned,
                    offsets.data());
  for (std::size_t b = 0; b < batch; ++b) {
    const raw::EvalResult two_pass =
        raw::EvalCdd(n, eval.due_date(), pool.row(b).data(),
                     eval.proc_data(), eval.alpha_data(), eval.beta_data());
    const raw::EvalResult fused = raw::EvalCddFused(
        n, eval.due_date(), pool.row(b).data(), eval.proc_data(),
        eval.alpha_data(), eval.beta_data());
    ASSERT_EQ(pool.costs()[b], two_pass.cost)
        << "n=" << n << " seed=" << seed << " row=" << b;
    ASSERT_EQ(pool.pinned()[b], two_pass.pinned);
    ASSERT_EQ(offsets[b], two_pass.offset);
    ASSERT_EQ(fused.cost, two_pass.cost);
    ASSERT_EQ(fused.pinned, two_pass.pinned);
    ASSERT_EQ(fused.offset, two_pass.offset);
  }
}

TEST(EvalCddBatch, MatchesScalarOnRandomInstances) {
  for (const std::uint32_t n : {1u, 2u, 5u, 12u, 30u}) {
    for (const double h : {0.2, 0.6, 1.2}) {
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        ExpectCddBatchMatchesScalar(testing::RandomCdd(n, h, seed), seed,
                                    /*batch=*/8);
      }
    }
  }
}

TEST(EvalCddBatch, MatchesScalarOnEdgeInstances) {
  // All-tardy: d = 0 forces every completion past the due date.
  ExpectCddBatchMatchesScalar(
      Instance(Problem::kCdd, /*d=*/0, {3, 1, 4}, {5, 2, 7}, {2, 6, 1}),
      /*seed=*/11, /*batch=*/6);
  // All-early reachable: d = sum P, the whole block fits left of d.
  ExpectCddBatchMatchesScalar(
      Instance(Problem::kCdd, /*d=*/8, {3, 1, 4}, {5, 2, 7}, {2, 6, 1}),
      /*seed=*/12, /*batch=*/6);
  // Zero earliness penalties: sliding right never pays, pinned may stay -1.
  ExpectCddBatchMatchesScalar(
      Instance(Problem::kCdd, /*d=*/6, {3, 1, 4}, {0, 0, 0}, {2, 6, 1}),
      /*seed=*/13, /*batch=*/6);
  // Single job.
  ExpectCddBatchMatchesScalar(
      Instance(Problem::kCdd, /*d=*/5, {4}, {3}, {2}), /*seed=*/14,
      /*batch=*/3);
}

TEST(EvalCddBatch, MatchesLpOracleOnSmallInstances) {
  for (const std::uint32_t n : {1u, 3u, 6u, 8u}) {
    for (const double h : {0.3, 0.7}) {
      const Instance instance = testing::RandomCdd(n, h, 97 + n);
      const CddEvaluator eval(instance);
      const lp::LpSequenceEvaluator oracle(instance);
      CandidatePool pool = RandomPool(n, /*batch=*/4, /*seed=*/n + 41);
      eval.EvaluateBatch(pool);
      for (std::size_t b = 0; b < pool.size(); ++b) {
        ASSERT_EQ(pool.costs()[b], oracle.Evaluate(pool.row(b)))
            << "n=" << n << " h=" << h << " row=" << b;
      }
    }
  }
}

TEST(EvalUcddcpBatch, MatchesScalarOnRandomInstances) {
  for (const std::uint32_t n : {1u, 2u, 5u, 12u, 30u}) {
    for (const double h : {1.0, 1.4}) {  // unrestricted requires h >= 1
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const Instance instance = testing::RandomUcddcp(n, h, seed);
        const UcddcpEvaluator eval(instance);
        const auto nn = static_cast<std::int32_t>(n);
        CandidatePool pool = RandomPool(n, /*batch=*/8, seed + 7);
        const CandidatePoolView v = pool.view();
        std::vector<Time> offsets(pool.size(), -1);
        raw::EvalUcddcpBatch(nn, eval.due_date(), v.seqs, v.stride,
                             static_cast<std::int32_t>(v.count),
                             eval.proc_data(), eval.min_proc_data(),
                             eval.alpha_data(), eval.beta_data(),
                             eval.gamma_data(), v.costs, v.pinned,
                             offsets.data());
        for (std::size_t b = 0; b < pool.size(); ++b) {
          const raw::EvalResult ref = raw::EvalUcddcp(
              nn, eval.due_date(), pool.row(b).data(), eval.proc_data(),
              eval.min_proc_data(), eval.alpha_data(), eval.beta_data(),
              eval.gamma_data());
          ASSERT_EQ(pool.costs()[b], ref.cost)
              << "n=" << n << " seed=" << seed << " row=" << b;
          ASSERT_EQ(pool.pinned()[b], ref.pinned);
          ASSERT_EQ(offsets[b], ref.offset);
        }
      }
    }
  }
}

TEST(EvalUcddcpBatch, MatchesLpOracleOnSmallInstances) {
  for (const std::uint32_t n : {1u, 3u, 6u}) {
    const Instance instance = testing::RandomUcddcp(n, 1.3, 55 + n);
    const UcddcpEvaluator eval(instance);
    const lp::LpSequenceEvaluator oracle(instance);
    CandidatePool pool = RandomPool(n, /*batch=*/4, /*seed=*/n + 71);
    eval.EvaluateBatch(pool);
    for (std::size_t b = 0; b < pool.size(); ++b) {
      ASSERT_EQ(pool.costs()[b], oracle.Evaluate(pool.row(b)))
          << "n=" << n << " row=" << b;
    }
  }
}

TEST(EvalUcddcpBatch, MatchesPaperExample) {
  const Instance instance = testing::PaperExampleUcddcp();
  const UcddcpEvaluator eval(instance);
  CandidatePool pool(instance.size(), 2);
  pool.Append(Sequence{0, 1, 2, 3, 4});
  pool.Append(Sequence{4, 3, 2, 1, 0});
  eval.EvaluateBatch(pool);
  for (std::size_t b = 0; b < pool.size(); ++b) {
    EXPECT_EQ(pool.costs()[b], eval.Evaluate(pool.row(b)));
  }
}

/// The objective facade must route a mixed workload through the same
/// batch kernels: EvaluateBatch(pool) == Evaluate(row) for every row.
TEST(SequenceObjective, BatchAgreesWithScalarFacade) {
  const Instance cdd = testing::RandomCdd(9, 0.5, 3);
  const Instance ucddcp = testing::RandomUcddcp(9, 1.2, 3);
  for (const Instance* instance : {&cdd, &ucddcp}) {
    const meta::SequenceObjective objective =
        meta::SequenceObjective::ForInstance(*instance);
    CandidatePool pool = RandomPool(instance->size(), /*batch=*/6,
                                    /*seed=*/29);
    objective.EvaluateBatch(pool);
    for (std::size_t b = 0; b < pool.size(); ++b) {
      ASSERT_EQ(pool.costs()[b], objective.Evaluate(pool.row(b)));
    }
  }
}

}  // namespace
}  // namespace cdd

/// Instance construction and validation tests.

#include "core/instance.hpp"

#include <gtest/gtest.h>

#include "common/test_instances.hpp"

namespace cdd {
namespace {

TEST(Instance, ParallelArrayConstructionFillsDefaults) {
  const Instance inst(Problem::kCdd, 10, {3, 4}, {1, 2}, {5, 6});
  EXPECT_EQ(inst.size(), 2u);
  EXPECT_EQ(inst.job(0).proc, 3);
  EXPECT_EQ(inst.job(0).min_proc, 3);  // defaults to P_i
  EXPECT_EQ(inst.job(0).compress, 0);
  EXPECT_EQ(inst.job(1).early, 2);
  EXPECT_EQ(inst.job(1).tardy, 6);
}

TEST(Instance, MismatchedArrayLengthsThrow) {
  EXPECT_THROW(Instance(Problem::kCdd, 10, {3, 4}, {1}, {5, 6}),
               std::invalid_argument);
  EXPECT_THROW(
      Instance(Problem::kCdd, 10, {3, 4}, {1, 2}, {5, 6}, {3}),
      std::invalid_argument);
}

TEST(Instance, TotalsAndRestrictiveness) {
  const Instance inst = cdd::testing::PaperExampleCdd();
  EXPECT_EQ(inst.total_processing_time(), 21);
  EXPECT_FALSE(inst.is_unrestricted());  // d = 16 < 21
  EXPECT_NEAR(inst.restrictiveness(), 16.0 / 21.0, 1e-12);

  const Instance ucddcp = cdd::testing::PaperExampleUcddcp();
  EXPECT_TRUE(ucddcp.is_unrestricted());  // d = 22 >= 21
  EXPECT_EQ(ucddcp.total_min_processing_time(), 18);
}

TEST(Instance, ValidateAcceptsPaperExamples) {
  EXPECT_NO_THROW(cdd::testing::PaperExampleCdd().Validate());
  EXPECT_NO_THROW(cdd::testing::PaperExampleUcddcp().Validate());
}

TEST(Instance, ValidateRejectsBadData) {
  // Processing time < 1.
  EXPECT_THROW(Instance(Problem::kCdd, 5, {0}, {1}, {1}).Validate(),
               std::invalid_argument);
  // min_proc > proc.
  EXPECT_THROW(
      Instance(Problem::kUcddcp, 50, {4}, {1}, {1}, {5}, {1}).Validate(),
      std::invalid_argument);
  // Negative penalty.
  EXPECT_THROW(Instance(Problem::kCdd, 5, {4}, {-1}, {1}).Validate(),
               std::invalid_argument);
  // Negative due date.
  EXPECT_THROW(Instance(Problem::kCdd, -1, {4}, {1}, {1}).Validate(),
               std::invalid_argument);
  // Empty instance.
  EXPECT_THROW(Instance(Problem::kCdd, 5, {}, {}, {}).Validate(),
               std::invalid_argument);
  // Restricted UCDDCP.
  EXPECT_THROW(
      Instance(Problem::kUcddcp, 3, {4}, {1}, {1}, {2}, {1}).Validate(),
      std::invalid_argument);
}

TEST(Instance, WithDueDateAndAsCdd) {
  const Instance ucddcp = cdd::testing::PaperExampleUcddcp();
  const Instance shifted = ucddcp.with_due_date(30);
  EXPECT_EQ(shifted.due_date(), 30);
  EXPECT_EQ(shifted.job(0), ucddcp.job(0));

  const Instance rigid = ucddcp.as_cdd();
  EXPECT_EQ(rigid.problem(), Problem::kCdd);
  for (std::size_t i = 0; i < rigid.size(); ++i) {
    EXPECT_EQ(rigid.job(i).min_proc, rigid.job(i).proc);
    EXPECT_EQ(rigid.job(i).compress, 0);
  }
}

TEST(Instance, SummaryMentionsProblemAndSize) {
  const std::string s = cdd::testing::PaperExampleCdd().Summary();
  EXPECT_NE(s.find("CDD"), std::string::npos);
  EXPECT_NE(s.find("n=5"), std::string::npos);
  EXPECT_NE(s.find("d=16"), std::string::npos);
}

}  // namespace
}  // namespace cdd

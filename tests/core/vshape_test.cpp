/// V-shape checker and seed-heuristic tests.

#include "core/vshape.hpp"

#include <gtest/gtest.h>

#include "common/test_instances.hpp"
#include "core/eval_cdd.hpp"
#include "core/exact.hpp"

namespace cdd {
namespace {

TEST(VShape, CheckerAcceptsRatioOrderedSequences) {
  // proc/alpha ratios descending before d, proc/beta ascending after.
  const Instance instance(Problem::kCdd, /*d=*/100,
                          /*proc=*/{8, 4, 2, 3, 9},
                          /*early=*/{1, 1, 1, 1, 1},
                          /*tardy=*/{1, 1, 1, 1, 1});
  // Early side: 8, 4, 2 (ratios 8 > 4 > 2); tardy side: 3, 9 (3 < 9).
  const Sequence seq{0, 1, 2, 3, 4};
  EXPECT_TRUE(IsVShaped(instance, seq, /*pinned=*/2));
  // Violation on the early side.
  const Sequence bad{1, 0, 2, 3, 4};
  EXPECT_FALSE(IsVShaped(instance, bad, /*pinned=*/2));
  // Violation on the tardy side.
  const Sequence bad2{0, 1, 2, 4, 3};
  EXPECT_FALSE(IsVShaped(instance, bad2, /*pinned=*/2));
}

TEST(VShape, PinnedMinusOneChecksOnlyTardyOrder) {
  const Instance instance(Problem::kCdd, /*d=*/0,
                          /*proc=*/{1, 2, 3},
                          /*early=*/{1, 1, 1},
                          /*tardy=*/{1, 1, 1});
  EXPECT_TRUE(IsVShaped(instance, Sequence{0, 1, 2}, -1));
  EXPECT_FALSE(IsVShaped(instance, Sequence{2, 1, 0}, -1));
}

TEST(VShape, ExactOptimaAreVShapedOnUnrestrictedInstances) {
  // Classic structural theorem, verified against the brute-force optimum.
  for (std::uint64_t trial = 0; trial < 10; ++trial) {
    Instance instance = cdd::testing::RandomCdd(6, 1.2, 100 + trial);
    // Avoid zero penalties: ties in ratios make "the" V-shape ambiguous.
    std::vector<Job> jobs = instance.jobs();
    for (Job& j : jobs) {
      j.early = j.early == 0 ? 1 : j.early;
      j.tardy = j.tardy == 0 ? 1 : j.tardy;
    }
    instance = Instance(Problem::kCdd, instance.due_date(), jobs);
    const ExactResult vs = ExactVShapeCdd(instance);
    const ExactResult bf = BruteForceCdd(instance);
    EXPECT_EQ(vs.cost, bf.cost) << instance.Summary();
    EXPECT_TRUE(IsVShaped(instance, vs.sequence));
  }
}

TEST(VShape, SeedIsAValidPermutation) {
  for (const std::uint32_t n : {1u, 2u, 5u, 17u, 64u}) {
    const Instance instance = cdd::testing::RandomCdd(n, 0.6, n);
    const Sequence seed = VShapeSeed(instance);
    EXPECT_NO_THROW(ValidateSequence(seed, n));
  }
}

TEST(VShape, SeedBeatsWorstCaseOrderings) {
  // The seed should be no worse than the identity on average; check it is
  // never catastrophically bad (within 3x of the exact optimum here).
  const Instance instance = cdd::testing::RandomCdd(8, 1.1, 777);
  const CddEvaluator eval(instance);
  const Cost seed_cost = eval.Evaluate(VShapeSeed(instance));
  const Cost exact = BruteForceCdd(instance).cost;
  EXPECT_GE(seed_cost, exact);
  if (exact > 0) {
    EXPECT_LE(seed_cost, 3 * exact)
        << "V-shape seed unexpectedly poor: " << seed_cost << " vs "
        << exact;
  }
}

}  // namespace
}  // namespace cdd

/// Sequence and perturbation-primitive tests.

#include "core/sequence.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "rng/philox.hpp"

namespace cdd {
namespace {

TEST(Sequence, IdentityAndPermutationCheck) {
  const Sequence id = IdentitySequence(5);
  EXPECT_TRUE(IsPermutation(id));
  EXPECT_FALSE(IsPermutation(Sequence{0, 1, 1}));
  EXPECT_FALSE(IsPermutation(Sequence{0, 1, 3}));
  EXPECT_FALSE(IsPermutation(Sequence{-1, 0, 1}));
  EXPECT_TRUE(IsPermutation(Sequence{}));
}

TEST(Sequence, ValidateThrowsWithDiagnostics) {
  EXPECT_NO_THROW(ValidateSequence(IdentitySequence(4), 4));
  EXPECT_THROW(ValidateSequence(IdentitySequence(4), 5),
               std::invalid_argument);
  EXPECT_THROW(ValidateSequence(Sequence{0, 0, 1, 2}, 4),
               std::invalid_argument);
}

TEST(Sequence, FisherYatesProducesPermutations) {
  rng::Philox4x32 rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    Sequence seq = IdentitySequence(23);
    FisherYates(std::span<JobId>(seq), rng);
    EXPECT_TRUE(IsPermutation(seq));
  }
}

TEST(Sequence, FisherYatesIsUniformOnThreeElements) {
  // All 6 permutations of 3 elements should appear with equal frequency.
  rng::Philox4x32 rng(7);
  std::map<Sequence, int> counts;
  const int trials = 60000;
  for (int t = 0; t < trials; ++t) {
    Sequence seq = IdentitySequence(3);
    FisherYates(std::span<JobId>(seq), rng);
    ++counts[seq];
  }
  ASSERT_EQ(counts.size(), 6u);
  for (const auto& [seq, count] : counts) {
    EXPECT_NEAR(static_cast<double>(count), trials / 6.0, trials * 0.01);
  }
}

TEST(Sequence, PartialFisherYatesMovesOnlySelectedPositions) {
  rng::Philox4x32 rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    Sequence seq = IdentitySequence(30);
    const Sequence before = seq;
    PartialFisherYates(std::span<JobId>(seq), 4, rng);
    EXPECT_TRUE(IsPermutation(seq));
    // At most 4 positions may differ, and the multiset of jobs at changed
    // positions must be preserved.
    std::size_t changed = 0;
    for (std::size_t i = 0; i < seq.size(); ++i) {
      if (seq[i] != before[i]) ++changed;
    }
    EXPECT_LE(changed, 4u);
  }
}

TEST(Sequence, PartialFisherYatesDegeneratesGracefully) {
  rng::Philox4x32 rng(1);
  Sequence seq = IdentitySequence(1);
  PartialFisherYates(std::span<JobId>(seq), 4, rng);  // n < 2: no-op
  EXPECT_EQ(seq, IdentitySequence(1));

  Sequence seq3 = IdentitySequence(3);
  PartialFisherYates(std::span<JobId>(seq3), 10, rng);  // pert > n: clamp
  EXPECT_TRUE(IsPermutation(seq3));
}

TEST(Sequence, RandomSwapSwapsExactlyTwoPositions) {
  rng::Philox4x32 rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    Sequence seq = IdentitySequence(12);
    RandomSwap(std::span<JobId>(seq), rng);
    EXPECT_TRUE(IsPermutation(seq));
    std::size_t changed = 0;
    for (std::size_t i = 0; i < seq.size(); ++i) {
      if (seq[i] != static_cast<JobId>(i)) ++changed;
    }
    EXPECT_EQ(changed, 2u);
  }
}

TEST(Sequence, HammingDistance) {
  EXPECT_EQ(HammingDistance(Sequence{0, 1, 2}, Sequence{0, 1, 2}), 0u);
  EXPECT_EQ(HammingDistance(Sequence{0, 1, 2}, Sequence{2, 1, 0}), 2u);
  EXPECT_EQ(HammingDistance(Sequence{0, 1}, Sequence{0, 1, 2}), 1u);
}

TEST(Sequence, UniformBelowStaysInRange) {
  rng::Philox4x32 rng(123);
  for (int trial = 0; trial < 10000; ++trial) {
    EXPECT_LT(UniformBelow(rng, 7), 7u);
  }
}

}  // namespace
}  // namespace cdd

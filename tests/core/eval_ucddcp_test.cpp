/// Tests of the O(n) UCDDCP evaluator (Awasthi et al. [8]) against the
/// paper's worked example, the O(n^2) oracle and structural properties.

#include "core/eval_ucddcp.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/test_instances.hpp"
#include "core/eval_cdd.hpp"
#include "core/reference_eval.hpp"
#include "core/schedule.hpp"

namespace cdd {
namespace {

TEST(EvalUcddcp, PaperIllustrationCostIs77) {
  const Instance instance = cdd::testing::PaperExampleUcddcp();
  const Sequence seq = IdentitySequence(5);
  EXPECT_EQ(EvaluateUcddcpSequence(instance, seq), 77);
}

TEST(EvalUcddcp, PaperIllustrationCompressionsMatchFigures5And6) {
  // Figures 5 and 6: jobs 5 and 4 (1-based) are compressed by one unit
  // each; jobs 1..3 stay at their nominal processing times.
  const Instance instance = cdd::testing::PaperExampleUcddcp();
  const UcddcpEvaluator eval(instance);
  const Sequence seq = IdentitySequence(5);
  const Schedule schedule = eval.BuildSchedule(seq);
  const std::vector<Time> expected_x{0, 0, 0, 1, 1};
  EXPECT_EQ(schedule.compression, expected_x);
  // Job 2 completes at the due date (Property 1, from the CDD optimum).
  EXPECT_EQ(schedule.completion[1], instance.due_date());
  EXPECT_EQ(EvaluateSchedule(instance, schedule), 77);
  ValidateSchedule(instance, schedule, /*require_no_idle=*/true);
}

TEST(EvalUcddcp, CompressionNeverIncreasesCostVsCdd) {
  // The UCDDCP optimum is at most the CDD optimum of the same sequence
  // (X = 0 is always feasible).
  for (std::uint64_t trial = 0; trial < 30; ++trial) {
    const std::uint32_t n = 2 + static_cast<std::uint32_t>(trial % 12);
    const Instance instance =
        cdd::testing::RandomUcddcp(n, 1.0 + 0.1 * (trial % 4), 555 + trial);
    const Sequence seq = cdd::testing::RandomSeq(n, trial);
    const Cost controllable = EvaluateUcddcpSequence(instance, seq);
    const Cost rigid = EvaluateCddSequence(instance.as_cdd(), seq);
    EXPECT_LE(controllable, rigid) << instance.Summary();
  }
}

TEST(EvalUcddcp, ZeroCompressionPenaltiesCompressEverythingTardy) {
  // With gamma = 0 every tardy job is compressed to its minimum.
  const Instance instance(Problem::kUcddcp, /*d=*/20,
                          /*proc=*/{10, 5, 5},
                          /*early=*/{1, 1, 1},
                          /*tardy=*/{2, 2, 2},
                          /*min_proc=*/{4, 2, 2},
                          /*compress=*/{0, 0, 0});
  const UcddcpEvaluator eval(instance);
  const Schedule schedule = eval.BuildSchedule(IdentitySequence(3));
  // Every position after the pinned one must be fully compressed.
  const auto detail = eval.EvaluateDetailed(IdentitySequence(3));
  for (std::size_t k = static_cast<std::size_t>(detail.pinned) + 1;
       k < schedule.size(); ++k) {
    const Job& job =
        instance.job(static_cast<std::size_t>(schedule.order[k]));
    EXPECT_EQ(schedule.compression[k], job.proc - job.min_proc);
  }
}

TEST(EvalUcddcp, RejectsRestrictedInstances) {
  EXPECT_THROW(
      UcddcpEvaluator(Instance(Problem::kCdd, /*d=*/5, {4, 4}, {1, 1},
                               {1, 1})),
      std::invalid_argument);
}

/// Property sweep: fast O(n) == O(n^2) oracle (which scans all candidate
/// due-date positions) over random unrestricted instances.
class UcddcpOracleSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, double>> {};

TEST_P(UcddcpOracleSweep, FastEvaluatorMatchesOracle) {
  const auto [n, slack] = GetParam();
  for (std::uint64_t trial = 0; trial < 40; ++trial) {
    const std::uint64_t seed = 1200 + trial * 17 + n * 211;
    const Instance instance = cdd::testing::RandomUcddcp(n, slack, seed);
    const UcddcpEvaluator eval(instance);
    const Sequence seq = cdd::testing::RandomSeq(n, seed ^ 0xdef);
    ASSERT_EQ(eval.Evaluate(seq), ReferenceUcddcpCost(instance, seq))
        << instance.Summary() << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSlack, UcddcpOracleSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 40u, 150u),
                       ::testing::Values(1.0, 1.1, 1.5)));

TEST(EvalUcddcpProperty, ScheduleConsistentWithReportedCost) {
  for (std::uint64_t trial = 0; trial < 25; ++trial) {
    const std::uint32_t n = 2 + static_cast<std::uint32_t>(trial % 14);
    const Instance instance =
        cdd::testing::RandomUcddcp(n, 1.0 + 0.2 * (trial % 3), 77 + trial);
    const UcddcpEvaluator eval(instance);
    const Sequence seq = cdd::testing::RandomSeq(n, trial * 7);
    const Schedule schedule = eval.BuildSchedule(seq);
    ValidateSchedule(instance, schedule, /*require_no_idle=*/true);
    EXPECT_EQ(EvaluateSchedule(instance, schedule), eval.Evaluate(seq));
  }
}

}  // namespace
}  // namespace cdd

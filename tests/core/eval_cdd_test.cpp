/// Tests of the O(n) CDD evaluator (Lässig et al. [7]) against the paper's
/// worked example and the independent O(n^2) oracle.

#include "core/eval_cdd.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/test_instances.hpp"
#include "core/reference_eval.hpp"
#include "core/schedule.hpp"

namespace cdd {
namespace {

TEST(EvalCdd, PaperIllustrationCostIs81) {
  const Instance instance = cdd::testing::PaperExampleCdd();
  const Sequence seq = IdentitySequence(5);
  EXPECT_EQ(EvaluateCddSequence(instance, seq), 81);
}

TEST(EvalCdd, PaperIllustrationScheduleMatchesFigure3) {
  // Figure 3: after two crossing shifts, job 2 (1-based) completes at the
  // due date; completions are {11, 16, 18, 22, 26}.
  const Instance instance = cdd::testing::PaperExampleCdd();
  const CddEvaluator eval(instance);
  const Sequence seq = IdentitySequence(5);
  const auto detail = eval.EvaluateDetailed(seq);
  EXPECT_EQ(detail.cost, 81);
  EXPECT_EQ(detail.offset, 5);
  EXPECT_EQ(detail.pinned, 1);  // 0-based position of job 2

  const Schedule schedule = eval.BuildSchedule(seq);
  const std::vector<Time> expected{11, 16, 18, 22, 26};
  EXPECT_EQ(schedule.completion, expected);
  EXPECT_EQ(EvaluateSchedule(instance, schedule), 81);
  ValidateSchedule(instance, schedule, /*require_no_idle=*/true);
}

TEST(EvalCdd, InitialScheduleWhenTardinessDominates) {
  // All-beta-heavy instance: the left-aligned schedule is optimal, no job
  // pinned at the due date.
  const Instance instance(Problem::kCdd, /*d=*/10,
                          /*proc=*/{5, 5, 5},
                          /*early=*/{1, 1, 1},
                          /*tardy=*/{100, 100, 100});
  const CddEvaluator eval(instance);
  const auto detail = eval.EvaluateDetailed(IdentitySequence(3));
  EXPECT_EQ(detail.offset, 0);
  // C = {5, 10, 15}: job 2 ends exactly at d -> pinned at a breakpoint.
  EXPECT_EQ(detail.pinned, 1);
  EXPECT_EQ(detail.cost, 1 * 5 + 100 * 5);
}

TEST(EvalCdd, AllJobsTardyWhenDueDateTiny) {
  const Instance instance(Problem::kCdd, /*d=*/0,
                          /*proc=*/{3, 4},
                          /*early=*/{5, 5},
                          /*tardy=*/{2, 3});
  const CddEvaluator eval(instance);
  const auto detail = eval.EvaluateDetailed(IdentitySequence(2));
  EXPECT_EQ(detail.offset, 0);
  EXPECT_EQ(detail.pinned, -1);
  EXPECT_EQ(detail.cost, 2 * 3 + 3 * 7);
}

TEST(EvalCdd, SingleJob) {
  const Instance instance(Problem::kCdd, /*d=*/7, {4}, {3}, {5});
  // Optimal: finish exactly at d (earliness penalty 3 > nothing).
  EXPECT_EQ(EvaluateCddSequence(instance, IdentitySequence(1)), 0);
}

TEST(EvalCdd, ZeroEarlinessPenaltiesStayLeftAligned) {
  const Instance instance(Problem::kCdd, /*d=*/100,
                          /*proc=*/{5, 5},
                          /*early=*/{0, 0},
                          /*tardy=*/{7, 7});
  const CddEvaluator eval(instance);
  const auto detail = eval.EvaluateDetailed(IdentitySequence(2));
  EXPECT_EQ(detail.cost, 0);
  EXPECT_EQ(detail.offset, 0);
}

TEST(EvalCdd, MatchesReferenceOnPaperExampleAllPermutations) {
  const Instance instance = cdd::testing::PaperExampleCdd();
  Sequence seq = IdentitySequence(5);
  const CddEvaluator eval(instance);
  do {
    EXPECT_EQ(eval.Evaluate(seq), ReferenceCddCost(instance, seq))
        << "sequence " << seq[0] << seq[1] << seq[2] << seq[3] << seq[4];
  } while (std::next_permutation(seq.begin(), seq.end()));
}

/// Property sweep: fast O(n) == O(n^2) oracle over random instances of
/// varying size and restrictiveness, including unrestricted ones.
class CddOracleSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, double>> {};

TEST_P(CddOracleSweep, FastEvaluatorMatchesOracle) {
  const auto [n, h] = GetParam();
  for (std::uint64_t trial = 0; trial < 40; ++trial) {
    const std::uint64_t seed = 7900 + trial * 13 + n * 1009;
    const Instance instance = cdd::testing::RandomCdd(n, h, seed);
    const CddEvaluator eval(instance);
    const Sequence seq = cdd::testing::RandomSeq(n, seed ^ 0xabc);
    ASSERT_EQ(eval.Evaluate(seq), ReferenceCddCost(instance, seq))
        << instance.Summary() << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndRestrictiveness, CddOracleSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 40u, 150u),
                       ::testing::Values(0.2, 0.4, 0.6, 0.8, 1.0, 1.3)));

/// Shift invariance: adding a constant to the due date of an unrestricted
/// instance does not change the optimal cost of any sequence.
TEST(EvalCddProperty, UnrestrictedCostInvariantToDueDateShift) {
  for (std::uint64_t trial = 0; trial < 20; ++trial) {
    const Instance base = cdd::testing::RandomCdd(12, 1.2, 4242 + trial);
    const Sequence seq = cdd::testing::RandomSeq(12, trial);
    const Cost c0 = EvaluateCddSequence(base, seq);
    const Instance shifted = base.with_due_date(base.due_date() + 57);
    EXPECT_EQ(EvaluateCddSequence(shifted, seq), c0);
  }
}

/// The evaluator's schedule must be feasible, idle-free and reproduce the
/// reported cost when evaluated from first principles.
TEST(EvalCddProperty, ScheduleConsistentWithReportedCost) {
  for (std::uint64_t trial = 0; trial < 25; ++trial) {
    const std::uint32_t n = 2 + static_cast<std::uint32_t>(trial % 14);
    const double h = 0.2 + 0.3 * static_cast<double>(trial % 4);
    const Instance instance = cdd::testing::RandomCdd(n, h, 909 + trial);
    const CddEvaluator eval(instance);
    const Sequence seq = cdd::testing::RandomSeq(n, trial * 31);
    const Schedule schedule = eval.BuildSchedule(seq);
    ValidateSchedule(instance, schedule, /*require_no_idle=*/true);
    EXPECT_EQ(EvaluateSchedule(instance, schedule), eval.Evaluate(seq));
  }
}

TEST(EvalCdd, RejectsNonPermutation) {
  const Instance instance = cdd::testing::PaperExampleCdd();
  EXPECT_THROW(EvaluateCddSequence(instance, Sequence{0, 1, 2, 3, 3}),
               std::invalid_argument);
  EXPECT_THROW(EvaluateCddSequence(instance, Sequence{0, 1, 2}),
               std::invalid_argument);
}

}  // namespace
}  // namespace cdd

/// Multi-machine and early-work evaluators cross-checked against brute
/// force (docs/WORKLOADS.md): per-candidate exhaustive start-offset search
/// for the total-penalty objective, the first-principles per-job late-work
/// sum for early work, batch/dispatch bit-identity, and the schedule-level
/// round trip through BuildMachineSchedule / EvaluateSchedule.

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/eval_raw.hpp"
#include "core/eval_simd.hpp"
#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace cdd {
namespace {

struct Candidate {
  std::int32_t n = 0;
  std::int32_t m = 1;
  Time d = 0;
  std::vector<JobId> seq;
  std::vector<std::int32_t> splits;  // m-1 ascending positions in [0, n]
  std::vector<Time> proc;
  std::vector<Cost> alpha;
  std::vector<Cost> beta;
};

/// Cost of one machine's slice by exhaustive search over integer start
/// offsets.  The cost is convex piecewise-linear in the offset and strictly
/// increasing once every job is tardy, so the optimum lies in [0, d].
Cost BruteSliceCost(const Candidate& c, std::int32_t begin,
                    std::int32_t end) {
  if (begin >= end) return 0;
  Cost best = -1;
  for (Time s = 0; s <= c.d; ++s) {
    Cost cost = 0;
    Time t = s;
    for (std::int32_t i = begin; i < end; ++i) {
      const JobId j = c.seq[i];
      t += c.proc[j];
      cost += (t <= c.d) ? c.alpha[j] * (c.d - t) : c.beta[j] * (t - c.d);
    }
    if (best < 0 || cost < best) best = cost;
  }
  return best;
}

Cost BruteCandidateCost(const Candidate& c) {
  Cost total = 0;
  std::int32_t begin = 0;
  for (std::int32_t k = 0; k < c.m; ++k) {
    const std::int32_t end =
        (k + 1 < c.m) ? c.splits[static_cast<std::size_t>(k)] : c.n;
    total += BruteSliceCost(c, begin, end);
    begin = end;
  }
  return total;
}

/// First-principles late work: per job, the part of its processing that
/// falls after d on its machine's start-at-zero no-idle schedule.
Cost BruteEarlyWorkCost(const Candidate& c) {
  Cost total = 0;
  std::int32_t begin = 0;
  for (std::int32_t k = 0; k < c.m; ++k) {
    const std::int32_t end =
        (k + 1 < c.m) ? c.splits[static_cast<std::size_t>(k)] : c.n;
    Time t = 0;
    for (std::int32_t i = begin; i < end; ++i) {
      const JobId j = c.seq[i];
      t += c.proc[j];
      const Time late = std::min<Time>(c.proc[j], std::max<Time>(0, t - c.d));
      total += late;
    }
    begin = end;
  }
  return total;
}

Candidate RandomCandidate(std::mt19937& rng, std::int32_t n, std::int32_t m,
                          double h) {
  Candidate c;
  c.n = n;
  c.m = m;
  std::uniform_int_distribution<Time> proc_dist(1, 20);
  std::uniform_int_distribution<Cost> pen_dist(1, 10);
  Time total = 0;
  for (std::int32_t j = 0; j < n; ++j) {
    c.proc.push_back(proc_dist(rng));
    c.alpha.push_back(pen_dist(rng));
    c.beta.push_back(pen_dist(rng));
    total += c.proc.back();
  }
  c.d = static_cast<Time>(h * static_cast<double>(total));
  c.seq.resize(static_cast<std::size_t>(n));
  std::iota(c.seq.begin(), c.seq.end(), 0);
  std::shuffle(c.seq.begin(), c.seq.end(), rng);
  std::uniform_int_distribution<std::int32_t> split_dist(0, n);
  for (std::int32_t k = 0; k + 1 < m; ++k) {
    c.splits.push_back(split_dist(rng));
  }
  std::sort(c.splits.begin(), c.splits.end());
  return c;
}

TEST(EvalMachines, TotalPenaltyMatchesBruteForce) {
  std::mt19937 rng(20160516);
  for (std::int32_t n = 2; n <= 9; ++n) {
    for (const std::int32_t m : {2, 3}) {
      for (const double h : {0.3, 0.6, 1.0}) {
        for (int rep = 0; rep < 8; ++rep) {
          const Candidate c = RandomCandidate(rng, n, m, h);
          const raw::EvalResult r = raw::EvalCddMachines(
              c.n, c.m, c.d, c.seq.data(), c.splits.data(), c.proc.data(),
              c.alpha.data(), c.beta.data());
          EXPECT_EQ(r.cost, BruteCandidateCost(c))
              << "n=" << n << " m=" << m << " h=" << h << " rep=" << rep;
        }
      }
    }
  }
}

TEST(EvalMachines, EarlyWorkMatchesBruteForce) {
  std::mt19937 rng(20071238);
  for (std::int32_t n = 2; n <= 9; ++n) {
    for (const std::int32_t m : {2, 3}) {
      for (const double h : {0.3, 0.6, 1.0}) {
        for (int rep = 0; rep < 8; ++rep) {
          const Candidate c = RandomCandidate(rng, n, m, h);
          const raw::EvalResult r =
              raw::EvalEarlyWork(c.n, c.m, c.d, c.seq.data(),
                                 c.splits.data(), c.proc.data());
          EXPECT_EQ(r.cost, BruteEarlyWorkCost(c))
              << "n=" << n << " m=" << m << " h=" << h << " rep=" << rep;
        }
      }
    }
  }
}

TEST(EvalMachines, SingleMachineReducesToFusedEvaluator) {
  std::mt19937 rng(11);
  for (int rep = 0; rep < 20; ++rep) {
    const Candidate c = RandomCandidate(rng, 9, 1, 0.6);
    const raw::EvalResult machines = raw::EvalCddMachines(
        c.n, 1, c.d, c.seq.data(), nullptr, c.proc.data(), c.alpha.data(),
        c.beta.data());
    const raw::EvalResult fused = raw::EvalCddFused(
        c.n, c.d, c.seq.data(), c.proc.data(), c.alpha.data(),
        c.beta.data());
    EXPECT_EQ(machines.cost, fused.cost);
    EXPECT_EQ(machines.offset, fused.offset);
    EXPECT_EQ(machines.pinned, fused.pinned);
  }
}

TEST(EvalMachines, EmptySlicesAreIdleMachines) {
  // All splits at 0 (machine m-1 runs everything) and all at n (machine 0
  // runs everything) must both equal the single-machine evaluation.
  std::mt19937 rng(12);
  Candidate c = RandomCandidate(rng, 7, 3, 0.6);
  const Cost single =
      raw::EvalCddFused(c.n, c.d, c.seq.data(), c.proc.data(),
                        c.alpha.data(), c.beta.data())
          .cost;
  c.splits = {0, 0};
  EXPECT_EQ(raw::EvalCddMachines(c.n, c.m, c.d, c.seq.data(),
                                 c.splits.data(), c.proc.data(),
                                 c.alpha.data(), c.beta.data())
                .cost,
            single);
  c.splits = {c.n, c.n};
  EXPECT_EQ(raw::EvalCddMachines(c.n, c.m, c.d, c.seq.data(),
                                 c.splits.data(), c.proc.data(),
                                 c.alpha.data(), c.beta.data())
                .cost,
            single);
}

/// The permutation+splits encoding reaches every machine assignment: the
/// best candidate cost equals the best over all m^n assignments under the
/// early-work objective (which depends on the assignment alone).
TEST(EvalMachines, CandidateSpaceCoversAllAssignments) {
  std::mt19937 rng(13);
  const std::int32_t n = 6;
  const std::int32_t m = 2;
  Candidate c = RandomCandidate(rng, n, m, 0.4);

  Cost best_assignment = -1;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    Time load[2] = {0, 0};
    for (std::int32_t j = 0; j < n; ++j) {
      load[(mask >> j) & 1u] += c.proc[static_cast<std::size_t>(j)];
    }
    const Cost cost = std::max<Time>(0, load[0] - c.d) +
                      std::max<Time>(0, load[1] - c.d);
    if (best_assignment < 0 || cost < best_assignment) {
      best_assignment = cost;
    }
  }

  Cost best_candidate = -1;
  std::vector<JobId> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  do {
    for (std::int32_t split = 0; split <= n; ++split) {
      const raw::EvalResult r =
          raw::EvalEarlyWork(n, m, c.d, perm.data(), &split, c.proc.data());
      if (best_candidate < 0 || r.cost < best_candidate) {
        best_candidate = r.cost;
      }
    }
  } while (std::next_permutation(perm.begin(), perm.end()));

  EXPECT_EQ(best_candidate, best_assignment);
}

TEST(EvalMachines, BatchAndDispatchAreBitIdentical) {
  std::mt19937 rng(14);
  const std::int32_t n = 8;
  const std::int32_t m = 3;
  const std::int32_t batch = 17;
  const std::int32_t stride = 16;
  const Candidate proto = RandomCandidate(rng, n, m, 0.6);

  std::vector<JobId> seqs(static_cast<std::size_t>(batch * stride), 0);
  std::vector<std::int32_t> splits(
      static_cast<std::size_t>(batch * (m - 1)), 0);
  for (std::int32_t b = 0; b < batch; ++b) {
    const Candidate c = RandomCandidate(rng, n, m, 0.6);
    std::copy(c.seq.begin(), c.seq.end(),
              seqs.begin() + static_cast<std::size_t>(b) * stride);
    std::copy(c.splits.begin(), c.splits.end(),
              splits.begin() + static_cast<std::size_t>(b) * (m - 1));
  }

  // Scalar reference: one EvalCddMachines / EvalEarlyWork call per row.
  std::vector<Cost> ref_penalty(static_cast<std::size_t>(batch));
  std::vector<Cost> ref_late(static_cast<std::size_t>(batch));
  for (std::int32_t b = 0; b < batch; ++b) {
    const JobId* row = seqs.data() + static_cast<std::size_t>(b) * stride;
    const std::int32_t* row_splits =
        splits.data() + static_cast<std::size_t>(b) * (m - 1);
    ref_penalty[static_cast<std::size_t>(b)] =
        raw::EvalCddMachines(n, m, proto.d, row, row_splits,
                             proto.proc.data(), proto.alpha.data(),
                             proto.beta.data())
            .cost;
    ref_late[static_cast<std::size_t>(b)] =
        raw::EvalEarlyWork(n, m, proto.d, row, row_splits,
                           proto.proc.data())
            .cost;
  }

  std::vector<Cost> got(static_cast<std::size_t>(batch), -1);
  raw::EvalCddMachinesBatch(n, m, proto.d, seqs.data(), stride,
                            splits.data(), batch, proto.proc.data(),
                            proto.alpha.data(), proto.beta.data(),
                            got.data());
  EXPECT_EQ(got, ref_penalty);

  // The dispatch entry point must agree whatever backend is active (the CI
  // matrix runs this suite under CDD_EVAL_BACKEND=simd and =scalar).
  std::fill(got.begin(), got.end(), -1);
  raw::EvalCddMachinesBatchDispatch(n, m, proto.d, seqs.data(), stride,
                                    splits.data(), batch, proto.proc.data(),
                                    proto.alpha.data(), proto.beta.data(),
                                    got.data());
  EXPECT_EQ(got, ref_penalty);

  std::fill(got.begin(), got.end(), -1);
  raw::EvalEarlyWorkBatch(n, m, proto.d, seqs.data(), stride, splits.data(),
                          batch, proto.proc.data(), got.data());
  EXPECT_EQ(got, ref_late);

  std::fill(got.begin(), got.end(), -1);
  raw::EvalEarlyWorkBatchDispatch(n, m, proto.d, seqs.data(), stride,
                                  splits.data(), batch, proto.proc.data(),
                                  got.data());
  EXPECT_EQ(got, ref_late);
}

/// Schedule-level round trip: materializing the candidate and evaluating
/// it from first principles (EvaluateSchedule is independent of the O(n)
/// evaluators) reproduces the evaluator cost, for both objectives.
TEST(EvalMachines, ScheduleRoundTripMatchesEvaluators) {
  std::mt19937 rng(15);
  for (const std::int32_t m : {2, 3}) {
    for (int rep = 0; rep < 10; ++rep) {
      const Candidate c = RandomCandidate(rng, 8, m, 0.6);
      const Instance penalty_instance =
          Instance(Problem::kCdd, c.d, c.proc, c.alpha, c.beta)
              .with_machines(m);
      const Schedule penalty_schedule =
          BuildMachineSchedule(penalty_instance, c.seq, c.splits);
      EXPECT_NO_THROW(
          ValidateSchedule(penalty_instance, penalty_schedule));
      EXPECT_EQ(EvaluateSchedule(penalty_instance, penalty_schedule),
                raw::EvalCddMachines(c.n, c.m, c.d, c.seq.data(),
                                     c.splits.data(), c.proc.data(),
                                     c.alpha.data(), c.beta.data())
                    .cost);

      const Instance late_instance =
          penalty_instance.with_objective(ScheduleObjective::kEarlyWork);
      const Schedule late_schedule =
          BuildMachineSchedule(late_instance, c.seq, c.splits);
      EXPECT_NO_THROW(ValidateSchedule(late_instance, late_schedule,
                                       /*require_no_idle=*/true));
      EXPECT_EQ(EvaluateSchedule(late_instance, late_schedule),
                raw::EvalEarlyWork(c.n, c.m, c.d, c.seq.data(),
                                   c.splits.data(), c.proc.data())
                    .cost);
    }
  }
}

}  // namespace
}  // namespace cdd

/// StopSource / StopToken semantics.

#include "core/stop_token.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace cdd {
namespace {

TEST(StopToken, DefaultTokenNeverStops) {
  const StopToken token;
  EXPECT_FALSE(token.stop_possible());
  EXPECT_FALSE(token.stop_requested());
}

TEST(StopToken, ExplicitStopIsObserved) {
  StopSource source;
  const StopToken token = source.token();
  EXPECT_TRUE(token.stop_possible());
  EXPECT_FALSE(token.stop_requested());
  source.RequestStop();
  EXPECT_TRUE(token.stop_requested());
}

TEST(StopToken, DeadlineInThePastStopsImmediately) {
  StopSource source(StopSource::Clock::now() -
                    std::chrono::milliseconds(1));
  EXPECT_TRUE(source.token().stop_requested());
}

TEST(StopToken, DeadlineInTheFutureFiresAfterItPasses) {
  StopSource source(StopSource::Clock::now() +
                    std::chrono::milliseconds(20));
  const StopToken token = source.token();
  EXPECT_FALSE(token.stop_requested());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(token.stop_requested());
}

TEST(StopToken, ResetRearmsTheSource) {
  StopSource source;
  source.RequestStop();
  EXPECT_TRUE(source.stop_requested());
  source.Reset();
  EXPECT_FALSE(source.stop_requested());
  EXPECT_FALSE(source.token().stop_requested());

  source.SetDeadline(StopSource::Clock::now() -
                     std::chrono::milliseconds(1));
  EXPECT_TRUE(source.stop_requested());
  source.Reset();
  EXPECT_FALSE(source.stop_requested());
}

TEST(StopToken, StopFromAnotherThreadIsVisible) {
  StopSource source;
  const StopToken token = source.token();
  std::thread stopper([&source] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    source.RequestStop();
  });
  while (!token.stop_requested()) {
    std::this_thread::yield();
  }
  stopper.join();
  EXPECT_TRUE(token.stop_requested());
}

}  // namespace
}  // namespace cdd

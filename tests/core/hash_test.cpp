/// Deterministic instance hashing (the serve cache key's foundation).

#include "core/hash.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/test_instances.hpp"

namespace cdd {
namespace {

TEST(InstanceHash, EqualInstancesHashEqual) {
  const Instance a = testing::PaperExampleCdd();
  const Instance b = testing::PaperExampleCdd();
  EXPECT_EQ(a, b);
  EXPECT_EQ(HashInstance(a), HashInstance(b));
}

TEST(InstanceHash, StableAcrossRuns) {
  // The hash is pure fixed-width integer arithmetic, so this value must
  // never change across processes, platforms or compilers.  If this test
  // fails, the hash function changed — which silently invalidates every
  // persisted cache key; bump deliberately, never accidentally.
  EXPECT_EQ(HashInstance(testing::PaperExampleCdd()),
            0xb8e3fd01b2d79be7ULL);
  EXPECT_EQ(HashInstance(testing::PaperExampleUcddcp()),
            0x3a5dd21ef5c61bc9ULL);
}

TEST(InstanceHash, EveryFieldIsSignificant) {
  const Instance base = testing::PaperExampleUcddcp();
  const std::uint64_t h0 = HashInstance(base);

  // Due date.
  EXPECT_NE(h0, HashInstance(base.with_due_date(base.due_date() + 1)));

  // Each per-job field, perturbed one at a time.
  for (int field = 0; field < 5; ++field) {
    std::vector<Job> jobs = base.jobs();
    switch (field) {
      case 0: jobs[2].proc += 1; break;
      case 1: jobs[2].min_proc -= 1; break;
      case 2: jobs[2].early += 1; break;
      case 3: jobs[2].tardy += 1; break;
      case 4: jobs[2].compress += 1; break;
    }
    const Instance changed(base.problem(), base.due_date(), jobs);
    EXPECT_NE(h0, HashInstance(changed)) << "field " << field;
  }
}

TEST(InstanceHash, ProblemKindIsSignificant) {
  // Same job data, CDD vs UCDDCP view.
  const Instance ucddcp = testing::PaperExampleUcddcp();
  const Instance cdd(Problem::kCdd, ucddcp.due_date(), ucddcp.jobs());
  EXPECT_NE(HashInstance(ucddcp), HashInstance(cdd));
}

TEST(InstanceHash, JobOrderIsSignificant) {
  // Instances are per-position job lists, not multisets: swapping two
  // distinct jobs is a different instance and must hash differently.
  const Instance base = testing::PaperExampleCdd();
  std::vector<Job> jobs = base.jobs();
  std::swap(jobs[0], jobs[1]);
  const Instance swapped(base.problem(), base.due_date(), jobs);
  EXPECT_NE(HashInstance(base), HashInstance(swapped));
}

TEST(InstanceHash, SpreadsOverRandomInstances) {
  // 500 random instances, no collisions (a birthday collision among 500
  // 64-bit hashes has probability ~7e-15 — a hit means the hash is broken).
  std::vector<std::uint64_t> hashes;
  for (std::uint64_t s = 0; s < 500; ++s) {
    hashes.push_back(
        HashInstance(testing::RandomCdd(10 + s % 5, 0.6, 9000 + s)));
  }
  std::sort(hashes.begin(), hashes.end());
  EXPECT_EQ(std::adjacent_find(hashes.begin(), hashes.end()),
            hashes.end());
}

TEST(HashCombine, OrderMatters) {
  const std::uint64_t a = HashCombine(HashCombine(kHashSeed, 1), 2);
  const std::uint64_t b = HashCombine(HashCombine(kHashSeed, 2), 1);
  EXPECT_NE(a, b);
}

TEST(HashBytes, LengthMatters) {
  // "ab" + "c" must differ from "a" + "bc" even though the concatenation
  // is identical (the length fold prevents extension ambiguity).
  std::uint64_t a = HashBytes(kHashSeed, "ab", 2);
  a = HashBytes(a, "c", 1);
  std::uint64_t b = HashBytes(kHashSeed, "a", 1);
  b = HashBytes(b, "bc", 2);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace cdd

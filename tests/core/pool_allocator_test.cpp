/// PoolAllocator backends: naming, alignment, transfer-cost model, the
/// pinned-host registry, device-resident accounting, the CandidatePool
/// host-fallback rule, capacity-0 clamping and PoolLease borrowing.

#include "core/pool_allocator.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "core/candidate_pool.hpp"

namespace cdd::core {
namespace {

constexpr PoolBackend kAllBackends[] = {
    PoolBackend::kHost, PoolBackend::kPinned, PoolBackend::kDevice,
    PoolBackend::kNuma};

TEST(PoolAllocator, ToStringParseRoundTrip) {
  for (const PoolBackend backend : kAllBackends) {
    PoolBackend parsed = PoolBackend::kHost;
    ASSERT_TRUE(ParsePoolBackend(ToString(backend), &parsed))
        << ToString(backend);
    EXPECT_EQ(parsed, backend);
  }
  PoolBackend untouched = PoolBackend::kPinned;
  EXPECT_FALSE(ParsePoolBackend("bogus", &untouched));
  EXPECT_FALSE(ParsePoolBackend("", &untouched));
  EXPECT_EQ(untouched, PoolBackend::kPinned);  // failure leaves *out alone
}

TEST(PoolAllocator, SingletonsMatchTheirBackend) {
  for (const PoolBackend backend : kAllBackends) {
    PoolAllocator& allocator = PoolAllocatorFor(backend);
    EXPECT_EQ(allocator.backend(), backend);
    EXPECT_EQ(allocator.name(), ToString(backend));
    // Process-lifetime singleton: same object every time.
    EXPECT_EQ(&allocator, &PoolAllocatorFor(backend));
  }
}

TEST(PoolAllocator, ActiveBackendDefaultsToHostWithoutEnvOverride) {
  if (std::getenv("CDD_POOL_BACKEND") != nullptr) {
    GTEST_SKIP() << "CDD_POOL_BACKEND is set in this environment";
  }
  EXPECT_EQ(ActivePoolBackend(), PoolBackend::kHost);
  EXPECT_EQ(&ActivePoolAllocator(),
            &PoolAllocatorFor(PoolBackend::kHost));
}

TEST(PoolAllocator, EveryBackendHandsOutAlignedWritableMemory) {
  for (const PoolBackend backend : kAllBackends) {
    PoolAllocator& allocator = PoolAllocatorFor(backend);
    const std::size_t bytes = 1000;
    void* ptr = allocator.Allocate(bytes, 64);
    ASSERT_NE(ptr, nullptr) << ToString(backend);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(ptr) % 64, 0u)
        << ToString(backend);
    std::memset(ptr, 0xAB, bytes);  // must be real, writable memory
    EXPECT_EQ(static_cast<unsigned char*>(ptr)[bytes - 1], 0xAB);
    allocator.Deallocate(ptr, bytes);
  }
}

TEST(PoolAllocator, TransferCostMatrix) {
  // Pageable host memory: free for the CPU, staged for the device.
  for (const PoolBackend pageable :
       {PoolBackend::kHost, PoolBackend::kNuma}) {
    EXPECT_FALSE(TransferCost(pageable).host_staging);
    EXPECT_TRUE(TransferCost(pageable).device_staging);
  }
  // Page-locked memory is DMA-able: zero-copy on both sides.
  EXPECT_FALSE(TransferCost(PoolBackend::kPinned).host_staging);
  EXPECT_FALSE(TransferCost(PoolBackend::kPinned).device_staging);
  // Device-resident memory flips the cost: kernels free, host staged.
  EXPECT_TRUE(TransferCost(PoolBackend::kDevice).host_staging);
  EXPECT_FALSE(TransferCost(PoolBackend::kDevice).device_staging);
}

TEST(PoolAllocator, PinnedRegistryCoversLiveAllocationsOnly) {
  PoolAllocator& pinned = PoolAllocatorFor(PoolBackend::kPinned);
  const std::size_t bytes = 4096;
  void* ptr = pinned.Allocate(bytes, 64);
  ASSERT_NE(ptr, nullptr);
  EXPECT_TRUE(IsPinnedHost(ptr));
  // Interior pointers count — the registry tracks ranges, not bases.
  EXPECT_TRUE(IsPinnedHost(static_cast<char*>(ptr) + bytes - 1));
  EXPECT_FALSE(IsPinnedHost(static_cast<char*>(ptr) + bytes));
  pinned.Deallocate(ptr, bytes);
  EXPECT_FALSE(IsPinnedHost(ptr));  // unregistered on free

  int stack_local = 0;
  EXPECT_FALSE(IsPinnedHost(&stack_local));
}

TEST(PoolAllocator, DeviceResidentBytesTrackFootprint) {
  PoolAllocator& device = PoolAllocatorFor(PoolBackend::kDevice);
  const std::size_t before = DeviceResidentBytes();
  void* ptr = device.Allocate(2048, 64);
  ASSERT_NE(ptr, nullptr);
  EXPECT_EQ(DeviceResidentBytes(), before + 2048);
  device.Deallocate(ptr, 2048);
  EXPECT_EQ(DeviceResidentBytes(), before);
}

TEST(PoolAllocator, GlobalStatsCountAllocations) {
  PoolAllocStats& stats = GlobalPoolStats();
  const std::uint64_t allocations = stats.allocations.load();
  const std::uint64_t bytes = stats.bytes.load();
  PoolAllocator& host = PoolAllocatorFor(PoolBackend::kHost);
  void* ptr = host.Allocate(256, 64);
  ASSERT_NE(ptr, nullptr);
  EXPECT_EQ(stats.allocations.load(), allocations + 1);
  EXPECT_EQ(stats.bytes.load(), bytes + 256);
  host.Deallocate(ptr, 256);
}

/// An allocator whose backend claims kDevice but which can never deliver —
/// the injection point for the CandidatePool fallback rule.
class FailingAllocator final : public PoolAllocator {
 public:
  void* Allocate(std::size_t, std::size_t) override {
    ++attempts;
    return nullptr;
  }
  void Deallocate(void*, std::size_t) override { ++deallocations; }
  PoolBackend backend() const override { return PoolBackend::kDevice; }

  int attempts = 0;
  int deallocations = 0;
};

TEST(PoolAllocator, FailedAllocationFallsBackToHostGracefully) {
  FailingAllocator failing;
  const std::uint64_t fallbacks_before = GlobalPoolStats().fallbacks.load();

  CandidatePool pool(/*n=*/8, /*capacity=*/4, failing);
  EXPECT_EQ(failing.attempts, 1);
  EXPECT_EQ(failing.deallocations, 0);  // nothing to free from a failure
  // The pool degraded to plain host pages — and says so.  (The `failures`
  // counter is the *allocator's* duty, so this injected one skips it; the
  // fallback decision is the pool's and must always be counted.)
  EXPECT_EQ(pool.backend(), PoolBackend::kHost);
  EXPECT_EQ(GlobalPoolStats().fallbacks.load(), fallbacks_before + 1);

  // The fallback pool is fully usable.
  std::vector<JobId> seq = {3, 1, 4, 1, 5, 2, 6, 0};
  const std::size_t row = pool.Append(seq);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.row(row)[4], 5);
  EXPECT_TRUE(pool.view().current());
}

TEST(PoolAllocator, CapacityZeroPoolsClampToOneRowOnEveryBackend) {
  for (const PoolBackend backend : kAllBackends) {
    CandidatePool pool(/*n=*/6, /*capacity=*/0, PoolAllocatorFor(backend));
    EXPECT_GE(pool.capacity(), 1u) << ToString(backend);
    EXPECT_EQ(pool.backend(), backend);
    std::vector<JobId> seq = {5, 4, 3, 2, 1, 0};
    pool.Append(seq);
    EXPECT_EQ(pool.row(0)[0], 5) << ToString(backend);
  }
}

TEST(PoolAllocator, DeviceBackedPoolViewsSurviveSwapBuffers) {
  // Regression: device-resident double buffers swap on-device, so a
  // kDevice-tagged view must stay `current()` across SwapBuffers() — the
  // generation staleness assert is a host-aliasing guard only.
  CandidatePool device_pool(/*n=*/4, /*capacity=*/2,
                            PoolAllocatorFor(PoolBackend::kDevice));
  const CandidatePoolView device_view = device_pool.view();
  EXPECT_EQ(device_view.backend, PoolBackend::kDevice);
  device_pool.SwapBuffers();
  EXPECT_TRUE(device_view.current());

  // ...while host-backed views do go stale, as before.
  CandidatePool host_pool(/*n=*/4, /*capacity=*/2,
                          PoolAllocatorFor(PoolBackend::kHost));
  const CandidatePoolView host_view = host_pool.view();
  host_pool.SwapBuffers();
  EXPECT_FALSE(host_view.current());
}

TEST(PoolAllocator, PoolLayoutIsIdenticalAcrossBackends) {
  // The bit-identical-results guarantee rests on every backend handing out
  // the same geometry: same stride, same clamped capacity, same contents.
  std::vector<JobId> seq = {7, 0, 6, 1, 5, 2, 4, 3, 8};
  CandidatePool reference(/*n=*/9, /*capacity=*/3,
                          PoolAllocatorFor(PoolBackend::kHost));
  reference.Append(seq);
  for (const PoolBackend backend : kAllBackends) {
    CandidatePool pool(/*n=*/9, /*capacity=*/3, PoolAllocatorFor(backend));
    pool.Append(seq);
    EXPECT_EQ(pool.view().stride, reference.view().stride)
        << ToString(backend);
    EXPECT_EQ(pool.capacity(), reference.capacity()) << ToString(backend);
    for (std::size_t i = 0; i < seq.size(); ++i) {
      ASSERT_EQ(pool.row(0)[i], reference.row(0)[i]) << ToString(backend);
    }
  }
}

TEST(PoolLease, BorrowsACompatibleLentPool) {
  CandidatePool lent(/*n=*/8, /*capacity=*/4);
  std::vector<JobId> seq = {0, 1, 2, 3, 4, 5, 6, 7};
  lent.Append(seq);  // stale content the borrower must not see

  PoolLease lease(&lent, /*n=*/8, /*capacity=*/2);
  EXPECT_TRUE(lease.borrowed());
  EXPECT_EQ(&*lease, &lent);
  EXPECT_EQ(lease->size(), 0u);  // borrowing clears the pool
}

TEST(PoolLease, OwnsWhenLentPoolIsAbsentOrIncompatible) {
  PoolLease unlent(nullptr, /*n=*/8, /*capacity=*/2);
  EXPECT_FALSE(unlent.borrowed());
  EXPECT_EQ(unlent->n(), 8u);
  EXPECT_GE(unlent->capacity(), 2u);

  CandidatePool small(/*n=*/8, /*capacity=*/1);
  PoolLease too_small(&small, /*n=*/8, /*capacity=*/4);
  EXPECT_FALSE(too_small.borrowed());  // capacity shortfall -> private pool
  EXPECT_NE(&*too_small, &small);

  CandidatePool wrong_n(/*n=*/6, /*capacity=*/4);
  PoolLease mismatched(&wrong_n, /*n=*/8, /*capacity=*/2);
  EXPECT_FALSE(mismatched.borrowed());  // n mismatch -> private pool
  EXPECT_EQ(mismatched->n(), 8u);
}

}  // namespace
}  // namespace cdd::core

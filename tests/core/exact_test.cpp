/// Exact-solver tests: brute force vs the V-shape subset solver, and both
/// as ground truth for structural properties.

#include "core/exact.hpp"

#include <gtest/gtest.h>

#include "common/test_instances.hpp"
#include "core/eval_cdd.hpp"
#include "core/eval_ucddcp.hpp"
#include "core/vshape.hpp"

namespace cdd {
namespace {

TEST(Exact, BruteForceRefusesLargeInstances) {
  const Instance big = cdd::testing::RandomCdd(11, 0.5, 1);
  EXPECT_THROW(BruteForceCdd(big), std::invalid_argument);
}

TEST(Exact, LimitErrorsCarrySolverSizeAndLimit) {
  const Instance big = cdd::testing::RandomCdd(11, 1.2, 1);
  try {
    BruteForceCdd(big);
    FAIL() << "expected ExactLimitError";
  } catch (const ExactLimitError& e) {
    EXPECT_EQ(e.n(), 11u);
    EXPECT_EQ(e.limit(), 10u);
    EXPECT_STREQ(e.what(),
                 "BruteForceCdd: n=11 exceeds the exact-tier limit 10");
  }
  try {
    BruteForceUcddcp(big);
    FAIL() << "expected ExactLimitError";
  } catch (const ExactLimitError& e) {
    EXPECT_STREQ(e.what(),
                 "BruteForceUcddcp: n=11 exceeds the exact-tier limit 10");
  }
  const Instance huge = cdd::testing::RandomCdd(25, 1.2, 2);
  try {
    ExactVShapeCdd(huge);
    FAIL() << "expected ExactLimitError";
  } catch (const ExactLimitError& e) {
    EXPECT_EQ(e.n(), 25u);
    EXPECT_EQ(e.limit(), 24u);
  }
}

TEST(Exact, VShapeSolverRefusesRestrictedInstances) {
  EXPECT_THROW(ExactVShapeCdd(cdd::testing::PaperExampleCdd()),
               std::invalid_argument);
}

TEST(Exact, PaperExampleUcddcpOptimum) {
  // The identity sequence scores 77; the optimum over all sequences can
  // only be at most that.
  const Instance instance = cdd::testing::PaperExampleUcddcp();
  const ExactResult exact = BruteForceUcddcp(instance);
  EXPECT_LE(exact.cost, 77);
  EXPECT_EQ(EvaluateUcddcpSequence(instance, exact.sequence), exact.cost);
}

/// Brute force and the V-shape subset solver must agree on unrestricted
/// CDD instances (two independent exact methods).
class ExactAgreement : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ExactAgreement, BruteForceEqualsVShapeSolver) {
  const std::uint32_t n = GetParam();
  for (std::uint64_t trial = 0; trial < 8; ++trial) {
    const Instance instance =
        cdd::testing::RandomCdd(n, 1.0 + 0.2 * (trial % 3), 31 + trial * 7);
    const ExactResult bf = BruteForceCdd(instance);
    const ExactResult vs = ExactVShapeCdd(instance);
    ASSERT_EQ(bf.cost, vs.cost) << instance.Summary() << " trial=" << trial;
    // Both sequences must actually achieve the reported cost.
    EXPECT_EQ(EvaluateCddSequence(instance, bf.sequence), bf.cost);
    EXPECT_EQ(EvaluateCddSequence(instance, vs.sequence), vs.cost);
  }
}

INSTANTIATE_TEST_SUITE_P(SmallSizes, ExactAgreement,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u));

/// V-shape solver scales past brute force and its result is always
/// achievable and V-shaped.
TEST(Exact, VShapeSolverMediumSizes) {
  for (const std::uint32_t n : {10u, 14u, 18u}) {
    const Instance instance = cdd::testing::RandomCdd(n, 1.1, n * 97);
    const ExactResult vs = ExactVShapeCdd(instance);
    EXPECT_EQ(EvaluateCddSequence(instance, vs.sequence), vs.cost);
    EXPECT_TRUE(IsVShaped(instance, vs.sequence));
  }
}

/// Structural property: for unrestricted instances some optimal sequence is
/// V-shaped, so the V-shape optimum equals the global optimum — and any
/// metaheuristic result must be >= it.
TEST(Exact, MetaheuristicResultsBoundedByExact) {
  const Instance instance = cdd::testing::RandomCdd(6, 1.3, 2024);
  const ExactResult exact = BruteForceCdd(instance);
  const CddEvaluator eval(instance);
  // Every single permutation costs at least the optimum.
  Sequence seq = IdentitySequence(6);
  do {
    ASSERT_GE(eval.Evaluate(seq), exact.cost);
  } while (std::next_permutation(seq.begin(), seq.end()));
}

}  // namespace
}  // namespace cdd

/// Schedule feasibility checking and Gantt rendering tests.

#include "core/schedule.hpp"

#include <gtest/gtest.h>

#include "common/test_instances.hpp"
#include "core/eval_cdd.hpp"

namespace cdd {
namespace {

Schedule PaperSchedule() {
  // Figure 3: completions {11, 16, 18, 22, 26}, no compression.
  Schedule s;
  s.order = IdentitySequence(5);
  s.completion = {11, 16, 18, 22, 26};
  s.compression = {0, 0, 0, 0, 0};
  return s;
}

TEST(Schedule, EvaluateMatchesPaperFigure3) {
  const Instance instance = cdd::testing::PaperExampleCdd();
  EXPECT_EQ(EvaluateSchedule(instance, PaperSchedule()), 81);
}

TEST(Schedule, ValidateAcceptsFeasible) {
  const Instance instance = cdd::testing::PaperExampleCdd();
  EXPECT_NO_THROW(
      ValidateSchedule(instance, PaperSchedule(), /*require_no_idle=*/true));
}

TEST(Schedule, ValidateRejectsOverlap) {
  const Instance instance = cdd::testing::PaperExampleCdd();
  Schedule s = PaperSchedule();
  s.completion[1] = 12;  // job 1 needs 5 time units after completion 11
  EXPECT_THROW(ValidateSchedule(instance, s), std::invalid_argument);
}

TEST(Schedule, ValidateRejectsIdleWhenForbidden) {
  const Instance instance = cdd::testing::PaperExampleCdd();
  Schedule s = PaperSchedule();
  s.completion[4] = 28;  // 2 units of idle before the last job
  EXPECT_NO_THROW(ValidateSchedule(instance, s));  // idle allowed by default
  EXPECT_THROW(ValidateSchedule(instance, s, /*require_no_idle=*/true),
               std::invalid_argument);
}

TEST(Schedule, ValidateRejectsExcessCompression) {
  const Instance instance = cdd::testing::PaperExampleUcddcp();
  Schedule s = PaperSchedule();
  s.compression[0] = 2;  // job 0 is reducible by at most 1
  EXPECT_THROW(ValidateSchedule(instance, s), std::invalid_argument);
}

TEST(Schedule, ValidateRejectsNegativeStart) {
  const Instance instance(Problem::kCdd, 4, {5}, {1}, {1});
  Schedule s;
  s.order = {0};
  s.completion = {4};  // would start at -1
  EXPECT_THROW(ValidateSchedule(instance, s), std::invalid_argument);
}

TEST(Schedule, StartTimeAccountsForCompression) {
  const Instance instance = cdd::testing::PaperExampleUcddcp();
  Schedule s = PaperSchedule();
  s.compression = {1, 0, 0, 0, 0};
  EXPECT_EQ(StartTime(instance, s, 0), 11 - 5);  // P=6, X=1
  EXPECT_EQ(StartTime(instance, s, 1), 16 - 5);
}

TEST(Schedule, RenderGanttMarksDueDate) {
  const Instance instance = cdd::testing::PaperExampleCdd();
  const std::string gantt = RenderGantt(instance, PaperSchedule());
  EXPECT_NE(gantt.find("d=16"), std::string::npos);
  EXPECT_NE(gantt.find("A=job0"), std::string::npos);
}

TEST(Schedule, RenderGanttScalesWideSchedules) {
  const Instance instance = cdd::testing::RandomCdd(20, 0.5, 3);
  const CddEvaluator eval(instance);
  const Schedule s = eval.BuildSchedule(IdentitySequence(20));
  const std::string gantt = RenderGantt(instance, s, /*max_width=*/40);
  // First line (the lane) must respect the width cap.
  const std::size_t eol = gantt.find('\n');
  ASSERT_NE(eol, std::string::npos);
  EXPECT_LE(eol, 45u);
}

}  // namespace
}  // namespace cdd

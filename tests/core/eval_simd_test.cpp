/// Bit-identity property tests for the lane-per-candidate SIMD evaluators:
/// EvalCddBatchSimd / EvalUcddcpBatchSimd (and the portable lane kernels
/// behind the aarch64 build) must agree bit-for-bit with the scalar batch,
/// the fused scalar row evaluator, the two-pass reference and — on small
/// instances — the LP oracle, across full lane groups, scalar remainders
/// and degenerate penalty corners.

#include "core/eval_simd.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/test_instances.hpp"
#include "core/candidate_pool.hpp"
#include "core/cpu_features.hpp"
#include "core/eval_cdd.hpp"
#include "core/eval_raw.hpp"
#include "core/eval_ucddcp.hpp"
#include "core/instance.hpp"
#include "lp/sequence_evaluator.hpp"

namespace cdd {
namespace {

CandidatePool RandomPool(std::size_t n, std::size_t batch,
                         std::uint64_t seed) {
  CandidatePool pool(n, batch);
  for (std::size_t b = 0; b < batch; ++b) {
    pool.Append(testing::RandomSeq(static_cast<std::uint32_t>(n),
                                   seed * 1000 + b));
  }
  return pool;
}

/// Batch sizes that exercise full 4-lane AVX2 groups, full 2-lane portable
/// groups, scalar remainders of every phase, and the empty remainder.
constexpr std::size_t kBatches[] = {1, 2, 3, 4, 5, 7, 8, 11, 16};

struct BatchOutputs {
  std::vector<Cost> costs;
  std::vector<std::int32_t> pinned;
  std::vector<Time> offsets;

  explicit BatchOutputs(std::size_t batch)
      : costs(batch, -1), pinned(batch, -2), offsets(batch, -3) {}
};

/// Runs SIMD, portable-lane and scalar batch builds over the same pool and
/// pins all three to the fused and two-pass scalar row evaluators.
void ExpectCddSimdBitIdentical(const Instance& instance, std::uint64_t seed,
                              std::size_t batch) {
  const CddEvaluator eval(instance);
  const auto n = static_cast<std::int32_t>(instance.size());
  CandidatePool pool = RandomPool(instance.size(), batch, seed);
  const CandidatePoolView v = pool.view();
  const auto count = static_cast<std::int32_t>(v.count);

  BatchOutputs simd(batch);
  BatchOutputs lanes(batch);
  BatchOutputs scalar(batch);
  raw::EvalCddBatchSimd(n, eval.due_date(), v.seqs, v.stride, count,
                        eval.proc_data(), eval.alpha_data(),
                        eval.beta_data(), simd.costs.data(),
                        simd.pinned.data(), simd.offsets.data());
  raw::EvalCddBatchPortableLanes(
      n, eval.due_date(), v.seqs, v.stride, count, eval.proc_data(),
      eval.alpha_data(), eval.beta_data(), lanes.costs.data(),
      lanes.pinned.data(), lanes.offsets.data());
  raw::EvalCddBatch(n, eval.due_date(), v.seqs, v.stride, count,
                    eval.proc_data(), eval.alpha_data(), eval.beta_data(),
                    scalar.costs.data(), scalar.pinned.data(),
                    scalar.offsets.data());

  for (std::size_t b = 0; b < batch; ++b) {
    const raw::EvalResult ref =
        raw::EvalCdd(n, eval.due_date(), pool.row(b).data(),
                     eval.proc_data(), eval.alpha_data(), eval.beta_data());
    const raw::EvalResult fused = raw::EvalCddFused(
        n, eval.due_date(), pool.row(b).data(), eval.proc_data(),
        eval.alpha_data(), eval.beta_data());
    ASSERT_EQ(fused.cost, ref.cost);
    for (const BatchOutputs* out : {&simd, &lanes, &scalar}) {
      ASSERT_EQ(out->costs[b], ref.cost)
          << "n=" << n << " seed=" << seed << " batch=" << batch
          << " row=" << b;
      ASSERT_EQ(out->pinned[b], ref.pinned);
      ASSERT_EQ(out->offsets[b], ref.offset);
    }
  }
}

void ExpectUcddcpSimdBitIdentical(const Instance& instance,
                                  std::uint64_t seed, std::size_t batch) {
  const UcddcpEvaluator eval(instance);
  const auto n = static_cast<std::int32_t>(instance.size());
  CandidatePool pool = RandomPool(instance.size(), batch, seed);
  const CandidatePoolView v = pool.view();
  const auto count = static_cast<std::int32_t>(v.count);

  BatchOutputs simd(batch);
  BatchOutputs lanes(batch);
  BatchOutputs scalar(batch);
  raw::EvalUcddcpBatchSimd(n, eval.due_date(), v.seqs, v.stride, count,
                           eval.proc_data(), eval.min_proc_data(),
                           eval.alpha_data(), eval.beta_data(),
                           eval.gamma_data(), simd.costs.data(),
                           simd.pinned.data(), simd.offsets.data());
  raw::EvalUcddcpBatchPortableLanes(
      n, eval.due_date(), v.seqs, v.stride, count, eval.proc_data(),
      eval.min_proc_data(), eval.alpha_data(), eval.beta_data(),
      eval.gamma_data(), lanes.costs.data(), lanes.pinned.data(),
      lanes.offsets.data());
  raw::EvalUcddcpBatch(n, eval.due_date(), v.seqs, v.stride, count,
                       eval.proc_data(), eval.min_proc_data(),
                       eval.alpha_data(), eval.beta_data(),
                       eval.gamma_data(), scalar.costs.data(),
                       scalar.pinned.data(), scalar.offsets.data());

  for (std::size_t b = 0; b < batch; ++b) {
    const raw::EvalResult ref = raw::EvalUcddcp(
        n, eval.due_date(), pool.row(b).data(), eval.proc_data(),
        eval.min_proc_data(), eval.alpha_data(), eval.beta_data(),
        eval.gamma_data());
    for (const BatchOutputs* out : {&simd, &lanes, &scalar}) {
      ASSERT_EQ(out->costs[b], ref.cost)
          << "n=" << n << " seed=" << seed << " batch=" << batch
          << " row=" << b;
      ASSERT_EQ(out->pinned[b], ref.pinned);
      ASSERT_EQ(out->offsets[b], ref.offset);
    }
  }
}

TEST(EvalSimdCdd, MatchesScalarOnSmallRandomInstances) {
  for (std::uint32_t n = 1; n <= 8; ++n) {
    for (const double h : {0.2, 0.6, 1.2}) {
      for (const std::size_t batch : kBatches) {
        ExpectCddSimdBitIdentical(testing::RandomCdd(n, h, n + batch),
                                  n + batch, batch);
      }
    }
  }
}

TEST(EvalSimdCdd, MatchesScalarOnLargeRandomInstances) {
  for (const std::uint32_t n : {50u, 200u, 500u}) {
    for (const double h : {0.4, 0.8}) {
      for (const std::size_t batch : {4u, 7u, 16u}) {
        ExpectCddSimdBitIdentical(testing::RandomCdd(n, h, n + batch),
                                  n + batch, batch);
      }
    }
  }
}

TEST(EvalSimdCdd, MatchesScalarOnPenaltyEdgeCases) {
  // Zero earliness penalties: sliding right never pays, pinned may stay -1
  // (the crossing loop retires lanes immediately).
  ExpectCddSimdBitIdentical(
      Instance(Problem::kCdd, /*d=*/6, {3, 1, 4, 2, 5}, {0, 0, 0, 0, 0},
               {2, 6, 1, 3, 4}),
      /*seed=*/21, /*batch=*/7);
  // Zero tardiness penalties: every profitable shift crosses, lanes walk
  // the crossing loop all the way down.
  ExpectCddSimdBitIdentical(
      Instance(Problem::kCdd, /*d=*/6, {3, 1, 4, 2, 5}, {5, 2, 7, 4, 1},
               {0, 0, 0, 0, 0}),
      /*seed=*/22, /*batch=*/7);
  // d = 0: all tardy, tau = -1 in every lane.
  ExpectCddSimdBitIdentical(
      Instance(Problem::kCdd, /*d=*/0, {3, 1, 4}, {5, 2, 7}, {2, 6, 1}),
      /*seed=*/23, /*batch=*/5);
  // d = sum P: the whole block fits left of the due date.
  ExpectCddSimdBitIdentical(
      Instance(Problem::kCdd, /*d=*/8, {3, 1, 4}, {5, 2, 7}, {2, 6, 1}),
      /*seed=*/24, /*batch=*/5);
  // The paper's Table I example.
  ExpectCddSimdBitIdentical(testing::PaperExampleCdd(), /*seed=*/25,
                            /*batch=*/6);
}

TEST(EvalSimdCdd, MatchesLpOracleOnSmallInstances) {
  for (const std::uint32_t n : {1u, 3u, 6u, 8u}) {
    for (const double h : {0.3, 0.7}) {
      const Instance instance = testing::RandomCdd(n, h, 97 + n);
      const CddEvaluator eval(instance);
      const lp::LpSequenceEvaluator oracle(instance);
      CandidatePool pool = RandomPool(n, /*batch=*/5, /*seed=*/n + 41);
      const CandidatePoolView v = pool.view();
      std::vector<Cost> costs(pool.size(), -1);
      raw::EvalCddBatchSimd(static_cast<std::int32_t>(n), eval.due_date(),
                            v.seqs, v.stride,
                            static_cast<std::int32_t>(v.count),
                            eval.proc_data(), eval.alpha_data(),
                            eval.beta_data(), costs.data());
      for (std::size_t b = 0; b < pool.size(); ++b) {
        ASSERT_EQ(costs[b], oracle.Evaluate(pool.row(b)))
            << "n=" << n << " h=" << h << " row=" << b;
      }
    }
  }
}

TEST(EvalSimdCdd, WideValuesFallBackToScalarIdentically) {
  // Processing times beyond the 21-bit packing limit must take the scalar
  // fallback inside EvalCddBatchSimd and still return exact results.
  const Time wide = (Time{1} << 30) + 17;
  ExpectCddSimdBitIdentical(
      Instance(Problem::kCdd, /*d=*/wide * 2, {wide, 3, wide + 5},
               {5, 2, 7}, {2, 6, 1}),
      /*seed=*/31, /*batch=*/6);
}

TEST(EvalSimdUcddcp, MatchesScalarOnSmallRandomInstances) {
  for (std::uint32_t n = 1; n <= 8; ++n) {
    for (const double h : {1.0, 1.4}) {  // unrestricted requires h >= 1
      for (const std::size_t batch : kBatches) {
        ExpectUcddcpSimdBitIdentical(testing::RandomUcddcp(n, h, n + batch),
                                     n + batch, batch);
      }
    }
  }
}

TEST(EvalSimdUcddcp, MatchesScalarOnLargeRandomInstances) {
  for (const std::uint32_t n : {50u, 200u, 500u}) {
    for (const std::size_t batch : {4u, 7u, 16u}) {
      ExpectUcddcpSimdBitIdentical(testing::RandomUcddcp(n, 1.2, n + batch),
                                   n + batch, batch);
    }
  }
}

TEST(EvalSimdUcddcp, MatchesScalarOnPenaltyEdgeCases) {
  // Zero earliness penalties can leave no pinned job (r = -1): the
  // compression walks must be skipped lane-wise and the CDD relaxation
  // returned verbatim.
  ExpectUcddcpSimdBitIdentical(
      Instance(Problem::kUcddcp, /*d=*/30, {3, 1, 4, 2, 5}, {0, 0, 0, 0, 0},
               {2, 6, 1, 3, 4}, {1, 1, 2, 1, 3}, {4, 2, 5, 1, 3}),
      /*seed=*/41, /*batch=*/7);
  // The paper's Table I example (d = 22).
  ExpectUcddcpSimdBitIdentical(testing::PaperExampleUcddcp(), /*seed=*/42,
                               /*batch=*/6);
}

TEST(EvalSimdUcddcp, MatchesLpOracleOnSmallInstances) {
  for (const std::uint32_t n : {1u, 3u, 6u}) {
    const Instance instance = testing::RandomUcddcp(n, 1.3, 55 + n);
    const UcddcpEvaluator eval(instance);
    const lp::LpSequenceEvaluator oracle(instance);
    CandidatePool pool = RandomPool(n, /*batch=*/5, /*seed=*/n + 71);
    const CandidatePoolView v = pool.view();
    std::vector<Cost> costs(pool.size(), -1);
    raw::EvalUcddcpBatchSimd(
        static_cast<std::int32_t>(n), eval.due_date(), v.seqs, v.stride,
        static_cast<std::int32_t>(v.count), eval.proc_data(),
        eval.min_proc_data(), eval.alpha_data(), eval.beta_data(),
        eval.gamma_data(), costs.data());
    for (std::size_t b = 0; b < pool.size(); ++b) {
      ASSERT_EQ(costs[b], oracle.Evaluate(pool.row(b)))
          << "n=" << n << " row=" << b;
    }
  }
}

TEST(EvalSimdDispatch, BackendNamesAreConsistent) {
  EXPECT_EQ(core::ToString(core::EvalBackend::kScalar), "scalar");
  EXPECT_EQ(core::ToString(core::EvalBackend::kSimd), "simd");
  // The ISA string and the availability probe must agree.
  const std::string isa = raw::SimdBatchIsa();
  EXPECT_EQ(isa != "none", raw::SimdBatchAvailable());
  if (raw::SimdBatchAvailable()) {
    EXPECT_TRUE(raw::SimdBatchCompiledIn());
    EXPECT_TRUE(isa == "avx2" || isa == "neon");
  }
  // ActiveEvalBackend is resolved once and never picks an unrunnable
  // backend.
  if (!raw::SimdBatchAvailable()) {
    EXPECT_EQ(core::ActiveEvalBackend(), core::EvalBackend::kScalar);
  }
}

TEST(EvalSimdDispatch, DispatchMatchesBothExplicitBackends) {
  const Instance instance = testing::RandomCdd(40, 0.6, 7);
  const CddEvaluator eval(instance);
  CandidatePool pool = RandomPool(instance.size(), /*batch=*/11, 9);
  const CandidatePoolView v = pool.view();
  const auto n = static_cast<std::int32_t>(instance.size());
  const auto count = static_cast<std::int32_t>(v.count);
  std::vector<Cost> via_dispatch(pool.size());
  std::vector<Cost> via_simd(pool.size());
  std::vector<Cost> via_scalar(pool.size());
  raw::EvalCddBatchDispatch(n, eval.due_date(), v.seqs, v.stride, count,
                            eval.proc_data(), eval.alpha_data(),
                            eval.beta_data(), via_dispatch.data());
  raw::EvalCddBatchSimd(n, eval.due_date(), v.seqs, v.stride, count,
                        eval.proc_data(), eval.alpha_data(),
                        eval.beta_data(), via_simd.data());
  raw::EvalCddBatch(n, eval.due_date(), v.seqs, v.stride, count,
                    eval.proc_data(), eval.alpha_data(), eval.beta_data(),
                    via_scalar.data());
  EXPECT_EQ(via_simd, via_scalar);
  EXPECT_EQ(via_dispatch, via_scalar);
}

}  // namespace
}  // namespace cdd

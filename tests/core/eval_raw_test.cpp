/// Direct tests of the raw O(n) evaluators: degenerate and adversarial
/// inputs that the Instance-level wrappers normally filter out, plus
/// white-box checks of the shifting logic.

#include "core/eval_raw.hpp"

#include <gtest/gtest.h>

#include "common/test_instances.hpp"
#include "core/reference_eval.hpp"

namespace cdd::raw {
namespace {

TEST(EvalCddRaw, SingleJobVariants) {
  const JobId seq[] = {0};
  const Time proc[] = {5};
  const Cost alpha[] = {3};
  const Cost beta[] = {7};
  // d far right: finish exactly at d (offset d - 5).
  EvalResult r = EvalCdd(1, 100, seq, proc, alpha, beta);
  EXPECT_EQ(r.cost, 0);
  EXPECT_EQ(r.offset, 95);
  EXPECT_EQ(r.pinned, 0);
  // d = 0: job unavoidably tardy by its full length.
  r = EvalCdd(1, 0, seq, proc, alpha, beta);
  EXPECT_EQ(r.cost, 7 * 5);
  EXPECT_EQ(r.offset, 0);
  EXPECT_EQ(r.pinned, -1);
  // d inside the job: start at 0 is optimal iff beta*(5-d) <= alpha*... —
  // enumerate: offset 0 -> C=5, tardy 5-3=2 -> 14; offset d-5<0 invalid.
  r = EvalCdd(1, 3, seq, proc, alpha, beta);
  EXPECT_EQ(r.cost, 14);
}

TEST(EvalCddRaw, EqualPenaltyMassStopsAtFirstBreakpoint) {
  // pl == pe at the breakpoint: the derivative is zero, both positions
  // are optimal, and the algorithm must not keep shifting forever.
  const JobId seq[] = {0, 1};
  const Time proc[] = {2, 2};
  const Cost alpha[] = {5, 5};
  const Cost beta[] = {5, 5};
  const EvalResult r = EvalCdd(2, 10, seq, proc, alpha, beta);
  const Cost oracle = ReferenceCddCost(
      Instance(Problem::kCdd, 10, {2, 2}, {5, 5}, {5, 5}),
      Sequence{0, 1});
  EXPECT_EQ(r.cost, oracle);
}

TEST(EvalCddRaw, HugeValuesStayExact) {
  // Large but representable data: no overflow in the int64 cost math.
  const JobId seq[] = {0, 1};
  const Time proc[] = {1 << 20, 1 << 20};
  const Cost alpha[] = {1 << 20, 1};
  const Cost beta[] = {1, 1 << 20};
  const EvalResult r =
      EvalCdd(2, Time{1} << 21, seq, proc, alpha, beta);
  EXPECT_GE(r.cost, 0);
  EXPECT_LT(r.cost, Cost{1} << 62);
}

TEST(EvalUcddcpRaw, XOutReportsDecisionsPerJobId) {
  const Instance instance = cdd::testing::PaperExampleUcddcp();
  const Sequence seq = IdentitySequence(5);
  std::vector<Time> proc, minp;
  std::vector<Cost> a, b, g;
  for (const Job& j : instance.jobs()) {
    proc.push_back(j.proc);
    minp.push_back(j.min_proc);
    a.push_back(j.early);
    b.push_back(j.tardy);
    g.push_back(j.compress);
  }
  Time x[5] = {9, 9, 9, 9, 9};
  const EvalResult r =
      EvalUcddcp(5, 22, seq.data(), proc.data(), minp.data(), a.data(),
                 b.data(), g.data(), x);
  EXPECT_EQ(r.cost, 77);
  // Paper Figures 5/6: jobs 4 and 5 (ids 3, 4) compressed by one unit.
  EXPECT_EQ(x[0], 0);
  EXPECT_EQ(x[1], 0);
  EXPECT_EQ(x[2], 0);
  EXPECT_EQ(x[3], 1);
  EXPECT_EQ(x[4], 1);
}

TEST(EvalUcddcpRaw, AllAlphaZeroDegenerateCase) {
  // No pinned job possible (stop at s = 0, everything early, zero cost);
  // compression must not fire.
  const JobId seq[] = {0, 1};
  const Time proc[] = {4, 4};
  const Time minp[] = {1, 1};
  const Cost alpha[] = {0, 0};
  const Cost beta[] = {3, 3};
  const Cost gamma[] = {1, 1};
  Time x[2] = {5, 5};
  const EvalResult r =
      EvalUcddcp(2, 20, seq, proc, minp, alpha, beta, gamma, x);
  EXPECT_EQ(r.cost, 0);
  EXPECT_EQ(x[0], 0);
  EXPECT_EQ(x[1], 0);
}

TEST(EvalUcddcpRaw, TieOnCompressionPenaltyPrefersNoCompression) {
  // suffix-beta == gamma: indifferent; the algorithm keeps X = 0
  // (Property 2 compresses only on strict improvement).
  const JobId seq[] = {0, 1};
  const Time proc[] = {4, 4};
  const Time minp[] = {2, 2};
  const Cost alpha[] = {1, 1};
  const Cost beta[] = {3, 3};
  const Cost gamma[] = {3, 3};  // equals the last job's beta
  Time x[2] = {9, 9};
  const EvalResult r =
      EvalUcddcp(2, 8, seq, proc, minp, alpha, beta, gamma, x);
  EXPECT_EQ(x[1], 0);  // the tie case
  const Cost oracle = ReferenceUcddcpCost(
      Instance(Problem::kUcddcp, 8, {4, 4}, {1, 1}, {3, 3}, {2, 2},
               {3, 3}),
      Sequence{0, 1});
  EXPECT_EQ(r.cost, oracle);
}

TEST(EvalRawProperty, PinnedPositionReallyCompletesAtDueDate) {
  for (std::uint64_t trial = 0; trial < 50; ++trial) {
    const std::uint32_t n = 2 + static_cast<std::uint32_t>(trial % 12);
    const Instance instance =
        cdd::testing::RandomCdd(n, 0.3 + 0.2 * (trial % 4), 3100 + trial);
    const Sequence seq = cdd::testing::RandomSeq(n, trial);
    std::vector<Time> proc;
    std::vector<Cost> a, b;
    for (const Job& j : instance.jobs()) {
      proc.push_back(j.proc);
      a.push_back(j.early);
      b.push_back(j.tardy);
    }
    const EvalResult r =
        EvalCdd(static_cast<std::int32_t>(n), instance.due_date(),
                seq.data(), proc.data(), a.data(), b.data());
    if (r.pinned >= 0) {
      Time c = r.offset;
      for (std::int32_t k = 0; k <= r.pinned; ++k) {
        c += proc[static_cast<std::size_t>(seq[k])];
      }
      EXPECT_EQ(c, instance.due_date()) << instance.Summary();
    } else {
      EXPECT_EQ(r.offset, 0);
    }
  }
}

}  // namespace
}  // namespace cdd::raw

/// Branch-and-bound property tests: agreement with both independent exact
/// methods (brute force, V-shape subset enumeration), determinism across
/// worker counts and tuning knobs, and certified bounds under truncation.

#include "exact/bnb.hpp"

#include <gtest/gtest.h>

#include <chrono>

#include "common/test_instances.hpp"
#include "core/eval_cdd.hpp"
#include "core/eval_ucddcp.hpp"
#include "core/exact.hpp"
#include "core/stop_token.hpp"

namespace cdd::exact {
namespace {

/// Params pinned for tests: no SA polish (pure constructive seed) keeps the
/// runs cheap; correctness must not depend on the seed anyway.
BnbParams TestParams(unsigned workers = 1) {
  BnbParams params;
  params.workers = workers;
  params.warm_start = 0;
  return params;
}

TEST(Bnb, MatchesBruteForceCddRestrictedAndUnrestricted) {
  for (std::uint32_t n = 1; n <= 9; ++n) {
    for (const double h : {0.4, 0.7, 1.2}) {
      const Instance instance =
          cdd::testing::RandomCdd(n, h, 1000 + 31 * n);
      const ExactResult bf = BruteForceCdd(instance);
      const BnbResult bnb = BranchAndBoundCdd(instance, TestParams());
      ASSERT_EQ(bnb.cost, bf.cost)
          << instance.Summary() << " h=" << h << " n=" << n;
      EXPECT_TRUE(bnb.proven_optimal);
      EXPECT_EQ(bnb.lower_bound, bnb.cost);
      // The reported sequence must achieve the reported optimum.
      EXPECT_EQ(EvaluateCddSequence(instance, bnb.sequence), bnb.cost);
    }
  }
}

TEST(Bnb, MatchesBruteForceUcddcp) {
  for (std::uint32_t n = 1; n <= 9; ++n) {
    for (const double h : {1.0, 1.3}) {
      const Instance instance =
          cdd::testing::RandomUcddcp(n, h, 2000 + 17 * n);
      const ExactResult bf = BruteForceUcddcp(instance);
      const BnbResult bnb = BranchAndBoundUcddcp(instance, TestParams());
      ASSERT_EQ(bnb.cost, bf.cost)
          << instance.Summary() << " h=" << h << " n=" << n;
      EXPECT_TRUE(bnb.proven_optimal);
      EXPECT_EQ(EvaluateUcddcpSequence(instance, bnb.sequence), bnb.cost);
    }
  }
}

TEST(Bnb, MatchesVShapeSolverMediumUnrestricted) {
  for (const std::uint32_t n : {12u, 15u, 18u}) {
    const Instance instance = cdd::testing::RandomCdd(n, 1.1, n * 131);
    const ExactResult vs = ExactVShapeCdd(instance);
    const BnbResult bnb = BranchAndBoundCdd(instance, TestParams());
    ASSERT_EQ(bnb.cost, vs.cost) << instance.Summary();
    EXPECT_TRUE(bnb.proven_optimal);
    EXPECT_EQ(EvaluateCddSequence(instance, bnb.sequence), bnb.cost);
  }
}

TEST(Bnb, PaperExamplesAreProvenOptimal) {
  const Instance cdd_example = cdd::testing::PaperExampleCdd();
  const BnbResult cdd_result = BranchAndBoundCdd(cdd_example, TestParams());
  EXPECT_EQ(cdd_result.cost, BruteForceCdd(cdd_example).cost);
  EXPECT_TRUE(cdd_result.proven_optimal);

  const Instance ucddcp_example = cdd::testing::PaperExampleUcddcp();
  const BnbResult ucddcp_result =
      BranchAndBoundUcddcp(ucddcp_example, TestParams());
  EXPECT_EQ(ucddcp_result.cost, BruteForceUcddcp(ucddcp_example).cost);
  EXPECT_TRUE(ucddcp_result.proven_optimal);
}

TEST(Bnb, WorkerCountInvariance) {
  const Instance restricted = cdd::testing::RandomCdd(16, 0.6, 77);
  const Instance controllable = cdd::testing::RandomUcddcp(12, 1.2, 78);
  const BnbResult base_cdd = BranchAndBoundCdd(restricted, TestParams(1));
  const BnbResult base_ucddcp =
      BranchAndBoundUcddcp(controllable, TestParams(1));
  ASSERT_TRUE(base_cdd.proven_optimal);
  ASSERT_TRUE(base_ucddcp.proven_optimal);
  for (const unsigned workers : {2u, 4u, 8u}) {
    const BnbResult r = BranchAndBoundCdd(restricted, TestParams(workers));
    EXPECT_EQ(r.cost, base_cdd.cost) << "workers=" << workers;
    EXPECT_EQ(r.sequence, base_cdd.sequence) << "workers=" << workers;
    EXPECT_TRUE(r.proven_optimal);
    const BnbResult u =
        BranchAndBoundUcddcp(controllable, TestParams(workers));
    EXPECT_EQ(u.cost, base_ucddcp.cost) << "workers=" << workers;
    EXPECT_EQ(u.sequence, base_ucddcp.sequence) << "workers=" << workers;
  }
}

TEST(Bnb, FrontierDepthAndWarmStartInvariance) {
  const Instance instance = cdd::testing::RandomCdd(14, 0.5, 4242);
  const BnbResult base = BranchAndBoundCdd(instance, TestParams(2));
  ASSERT_TRUE(base.proven_optimal);
  for (const std::uint32_t depth : {1u, 3u, 6u}) {
    BnbParams params = TestParams(2);
    params.frontier_depth = depth;
    const BnbResult r = BranchAndBoundCdd(instance, params);
    EXPECT_EQ(r.cost, base.cost) << "frontier_depth=" << depth;
    EXPECT_EQ(r.sequence, base.sequence) << "frontier_depth=" << depth;
  }
  BnbParams polished = TestParams(2);
  polished.warm_start = 512;
  const BnbResult r = BranchAndBoundCdd(instance, polished);
  EXPECT_EQ(r.cost, base.cost);
  EXPECT_EQ(r.sequence, base.sequence);
}

TEST(Bnb, ExpiredDeadlineReturnsIncumbentWithValidBound) {
  const Instance instance = cdd::testing::RandomCdd(18, 0.6, 99);
  StopSource source;
  source.RequestStop();
  BnbParams params = TestParams(4);
  params.stop = source.token();
  const BnbResult r = BranchAndBoundCdd(instance, params);
  EXPECT_FALSE(r.proven_optimal);
  EXPECT_LE(r.lower_bound, r.cost);
  EXPECT_GE(r.lower_bound, 0);
  // The incumbent is still a real schedule achieving the reported cost.
  EXPECT_EQ(EvaluateCddSequence(instance, r.sequence), r.cost);
}

TEST(Bnb, NodeBudgetTruncatesWithValidBound) {
  const Instance instance = cdd::testing::RandomCdd(20, 0.5, 555);
  BnbParams params = TestParams(2);
  params.max_nodes = 64;
  const BnbResult r = BranchAndBoundCdd(instance, params);
  EXPECT_LE(r.lower_bound, r.cost);
  EXPECT_EQ(EvaluateCddSequence(instance, r.sequence), r.cost);
  // Whether the proof finished, the optimum is bracketed either way.
  if (r.proven_optimal) {
    EXPECT_EQ(r.lower_bound, r.cost);
  }
}

TEST(Bnb, ThrowsExactLimitErrorPastMaxJobs) {
  const Instance big = cdd::testing::RandomCdd(9, 0.5, 7);
  BnbParams params = TestParams();
  params.max_jobs = 8;
  try {
    BranchAndBoundCdd(big, params);
    FAIL() << "expected ExactLimitError";
  } catch (const ExactLimitError& e) {
    EXPECT_EQ(e.n(), 9u);
    EXPECT_EQ(e.limit(), 8u);
    EXPECT_NE(std::string(e.what()).find("n=9"), std::string::npos);
  }
  // Also catchable as std::invalid_argument (compatibility).
  EXPECT_THROW(BranchAndBoundCdd(big, params), std::invalid_argument);
}

TEST(Bnb, UcddcpRejectsRestrictedInstances) {
  EXPECT_THROW(
      BranchAndBoundUcddcp(cdd::testing::PaperExampleCdd(), TestParams()),
      std::invalid_argument);
}

TEST(Bnb, DispatcherFollowsProblemKind) {
  const Instance cdd_instance = cdd::testing::RandomCdd(6, 0.5, 3);
  EXPECT_EQ(BranchAndBound(cdd_instance, TestParams()).cost,
            BruteForceCdd(cdd_instance).cost);
  const Instance ucddcp_instance = cdd::testing::RandomUcddcp(6, 1.2, 4);
  EXPECT_EQ(BranchAndBound(ucddcp_instance, TestParams()).cost,
            BruteForceUcddcp(ucddcp_instance).cost);
}

}  // namespace
}  // namespace cdd::exact

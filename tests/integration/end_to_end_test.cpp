/// Integration tests: the full two-layered pipeline across modules —
/// generator -> evaluators -> serial baselines -> parallel solvers ->
/// registry — exercised together the way the benches use them.

#include <gtest/gtest.h>

#include <sstream>

#include "core/eval_cdd.hpp"
#include "core/eval_ucddcp.hpp"
#include "core/exact.hpp"
#include "core/schedule.hpp"
#include "rng/philox.hpp"
#include "core/reference_eval.hpp"
#include "cudasim/device.hpp"
#include "lp/models.hpp"
#include "meta/host_ensemble.hpp"
#include "meta/sa.hpp"
#include "orlib/bestknown.hpp"
#include "orlib/biskup_feldmann.hpp"
#include "orlib/schfile.hpp"
#include "parallel/parallel_dpso.hpp"
#include "parallel/parallel_sa.hpp"

namespace cdd {
namespace {

TEST(EndToEnd, BenchmarkInstanceThroughEveryEvaluator) {
  // One generated benchmark instance, one sequence, five independent
  // implementations of "optimal cost of this sequence" — all must agree.
  const orlib::BiskupFeldmannGenerator gen;
  const Instance instance = gen.Cdd(12, 3, 0.6);
  cdd::rng::Philox4x32 generator(5, 6);
  const Sequence seq = RandomSequence(12, generator);

  const Cost fast = CddEvaluator(instance).Evaluate(seq);
  const Cost oracle = ReferenceCddCost(instance, seq);
  const Cost lp = lp::SolveSequenceLp(instance, seq);
  EXPECT_EQ(fast, oracle);
  EXPECT_EQ(fast, lp);

  const Instance ucddcp = gen.Ucddcp(12, 3);
  const Cost ufast = UcddcpEvaluator(ucddcp).Evaluate(seq);
  const Cost uoracle = ReferenceUcddcpCost(ucddcp, seq);
  const Cost ulp = lp::SolveSequenceLp(ucddcp, seq);
  EXPECT_EQ(ufast, uoracle);
  EXPECT_EQ(ufast, ulp);
}

TEST(EndToEnd, AllSolversAgreeOnTinyOptimum) {
  // Serial SA, host ensemble, parallel SA and parallel DPSO all reach the
  // brute-force optimum of a 7-job benchmark instance.
  const orlib::BiskupFeldmannGenerator gen;
  const Instance instance = gen.Cdd(7, 0, 0.4);
  const Cost optimum = BruteForceCdd(instance).cost;
  const meta::Objective objective = meta::Objective::ForInstance(instance);

  meta::SaParams sa;
  sa.iterations = 5000;
  sa.temp_samples = 500;
  EXPECT_EQ(meta::RunSerialSa(objective, sa).best_cost, optimum);

  meta::HostEnsembleParams host;
  host.chains = 16;
  host.chain.iterations = 500;
  host.chain.temp_samples = 200;
  EXPECT_EQ(meta::RunHostEnsembleSa(objective, host).best_cost, optimum);

  sim::Device gpu;
  par::ParallelSaParams psa;
  psa.config = par::LaunchConfig::ForEnsemble(32, 16);
  psa.generations = 400;
  psa.temp_samples = 200;
  EXPECT_EQ(par::RunParallelSa(gpu, instance, psa).best_cost, optimum);

  par::ParallelDpsoParams pdpso;
  pdpso.config = psa.config;
  pdpso.generations = 400;
  EXPECT_EQ(par::RunParallelDpso(gpu, instance, pdpso).best_cost, optimum);
}

TEST(EndToEnd, SchFileRoundTripSolvesIdentically) {
  // Writing a generated instance to the OR-library format and reading it
  // back must not change any solver outcome.
  const orlib::BiskupFeldmannGenerator gen;
  const std::vector<orlib::JobTable> tables{gen.JobData(15, 2)};
  std::stringstream file;
  orlib::WriteCddFile(file, tables);
  const auto parsed = orlib::ParseCddFile(file);
  const Instance direct = gen.Cdd(15, 2, 0.6);
  const Instance loaded = orlib::MakeCddInstance(parsed[0], 0.6);
  EXPECT_EQ(direct, loaded);

  sim::Device gpu;
  par::ParallelSaParams params;
  params.config = par::LaunchConfig::ForEnsemble(16, 16);
  params.generations = 100;
  params.temp_samples = 200;
  const Cost a = par::RunParallelSa(gpu, direct, params).best_cost;
  const Cost b = par::RunParallelSa(gpu, loaded, params).best_cost;
  EXPECT_EQ(a, b);
}

TEST(EndToEnd, RegistryTracksImprovementsAcrossBudgets) {
  const orlib::BiskupFeldmannGenerator gen;
  const Instance instance = gen.Cdd(30, 1, 0.6);
  const std::string key = orlib::CddKey(30, 1, 0.6);
  orlib::BestKnownRegistry registry;

  sim::Device gpu;
  par::ParallelSaParams params;
  params.config = par::LaunchConfig::ForEnsemble(32, 16);
  params.temp_samples = 200;

  params.generations = 30;
  const Cost weak = par::RunParallelSa(gpu, instance, params).best_cost;
  registry.Update(key, weak);

  params.generations = 600;
  const Cost strong = par::RunParallelSa(gpu, instance, params).best_cost;
  registry.Update(key, strong);

  EXPECT_LE(strong, weak);
  EXPECT_EQ(registry.Find(key).value(), std::min(weak, strong));
  EXPECT_LE(registry.PercentDeviation(key, weak), 100.0);
  EXPECT_DOUBLE_EQ(
      registry.PercentDeviation(key, registry.Find(key).value()), 0.0);
}

TEST(EndToEnd, UcddcpPipelineRespectsCompressionEconomics) {
  // End-to-end sanity of the controllable variant: the optimized UCDDCP
  // cost is never above the CDD cost of the same instance data, and the
  // resulting schedule is feasible with all compressions within bounds.
  const orlib::BiskupFeldmannGenerator gen;
  const Instance ucddcp = gen.Ucddcp(20, 5);
  const Instance rigid = ucddcp.as_cdd();

  sim::Device gpu;
  par::ParallelSaParams params;
  params.config = par::LaunchConfig::ForEnsemble(32, 16);
  params.generations = 300;
  params.temp_samples = 200;

  const par::GpuRunResult flexible =
      par::RunParallelSa(gpu, ucddcp, params);
  const par::GpuRunResult inflexible =
      par::RunParallelSa(gpu, rigid.with_due_date(ucddcp.due_date()),
                         params);
  EXPECT_LE(flexible.best_cost, inflexible.best_cost);

  const Schedule plan =
      UcddcpEvaluator(ucddcp).BuildSchedule(flexible.best);
  EXPECT_NO_THROW(
      ValidateSchedule(ucddcp, plan, /*require_no_idle=*/true));
  EXPECT_EQ(EvaluateSchedule(ucddcp, plan), flexible.best_cost);
}

TEST(EndToEnd, ProfilerAccountsTheWholePipeline) {
  const orlib::BiskupFeldmannGenerator gen;
  const Instance instance = gen.Cdd(10, 0, 0.6);
  sim::Device gpu;
  par::ParallelSaParams params;
  params.config = par::LaunchConfig::ForEnsemble(16, 16);
  params.generations = 10;
  params.temp_samples = 100;
  par::RunParallelSa(gpu, instance, params);

  double kernel_time = 0.0;
  for (const auto& [name, record] : gpu.profiler().kernels()) {
    kernel_time += record.sim_time_s;
  }
  const double transfer_time = gpu.profiler().h2d().sim_time_s +
                               gpu.profiler().d2h().sim_time_s;
  // Device clock = kernels + transfers + synchronize fences.
  EXPECT_GE(gpu.sim_time_s() + 1e-12, kernel_time + transfer_time);
  EXPECT_LT(gpu.sim_time_s(),
            kernel_time + transfer_time +
                12 * 11 * gpu.properties().launch_overhead_s);
}

}  // namespace
}  // namespace cdd

/// Golden regression tests: fixed seeds, exact expected outcomes.
///
/// These pin down the *whole* deterministic pipeline — benchmark
/// generator, Philox streams, neighbourhood policy, metropolis rule,
/// kernel scheduling — so an accidental change anywhere shows up as a
/// failing value, not a silent quality drift.  If you change an algorithm
/// ON PURPOSE, re-derive the constants (the test names tell you the exact
/// configuration) and update them together with a CHANGELOG note.
///
/// Caveat: the metropolis test compares float/double expressions, so these
/// values are specific to IEEE-754 double/float math (any conforming
/// x86-64/AArch64 build); they are not meant for exotic FP modes.

#include <gtest/gtest.h>

#include "cudasim/device.hpp"
#include "meta/dpso.hpp"
#include "meta/sa.hpp"
#include "orlib/biskup_feldmann.hpp"
#include "parallel/parallel_dpso.hpp"
#include "parallel/parallel_sa.hpp"

namespace cdd {
namespace {

const Instance& Cdd50() {
  static const Instance instance =
      orlib::BiskupFeldmannGenerator().Cdd(50, 0, 0.6);
  return instance;
}

const Instance& Ucddcp50() {
  static const Instance instance =
      orlib::BiskupFeldmannGenerator().Ucddcp(50, 0);
  return instance;
}

TEST(Golden, BenchmarkGeneratorFingerprint) {
  // Weighted checksums of the default-seed benchmark data: any change to
  // the Philox generator or the draw order lands here first.
  long long sum = 0;
  for (const Job& j : Cdd50().jobs()) {
    sum += j.proc * 31 + j.early * 7 + j.tardy;
  }
  EXPECT_EQ(sum, 18254);
  EXPECT_EQ(Cdd50().due_date(), 308);

  long long usum = 0;
  for (const Job& j : Ucddcp50().jobs()) {
    usum += j.min_proc * 13 + j.compress;
  }
  EXPECT_EQ(usum, 3748);
  EXPECT_EQ(Ucddcp50().due_date(), 514);
}

TEST(Golden, SerialSaSeed42) {
  meta::SaParams params;
  params.iterations = 2000;
  params.temp_samples = 500;
  params.seed = 42;
  EXPECT_EQ(meta::RunSerialSa(meta::Objective::ForInstance(Cdd50()),
                              params)
                .best_cost,
            17849);
  EXPECT_EQ(meta::RunSerialSa(meta::Objective::ForInstance(Ucddcp50()),
                              params)
                .best_cost,
            8766);
}

TEST(Golden, SerialDpsoSeed42) {
  meta::DpsoParams params;
  params.iterations = 300;
  params.swarm = 32;
  params.seed = 42;
  EXPECT_EQ(meta::RunSerialDpso(meta::Objective::ForInstance(Cdd50()),
                                params)
                .best_cost,
            17261);
}

TEST(Golden, ParallelSaSeed42) {
  par::ParallelSaParams params;
  params.config = par::LaunchConfig::ForEnsemble(64, 32);
  params.generations = 400;
  params.temp_samples = 500;
  params.seed = 42;
  {
    sim::Device gpu;
    EXPECT_EQ(par::RunParallelSa(gpu, Cdd50(), params).best_cost, 18559);
  }
  {
    sim::Device gpu;
    EXPECT_EQ(par::RunParallelSa(gpu, Ucddcp50(), params).best_cost, 9054);
  }
}

TEST(Golden, ParallelDpsoSeed42) {
  par::ParallelDpsoParams params;
  params.config = par::LaunchConfig::ForEnsemble(64, 32);
  params.generations = 400;
  params.seed = 42;
  sim::Device gpu;
  EXPECT_EQ(par::RunParallelDpso(gpu, Cdd50(), params).best_cost, 17090);
}

}  // namespace
}  // namespace cdd

/// Sweep configuration + reference-computation tests.

#include "benchutil/campaign.hpp"

#include <gtest/gtest.h>

#include "common/test_instances.hpp"
#include "core/exact.hpp"

namespace cdd::benchutil {
namespace {

Args Make(std::initializer_list<const char*> argv) {
  std::vector<const char*> v(argv);
  return Args(static_cast<int>(v.size()), v.data());
}

TEST(Sweep, DefaultsAreReduced) {
  const Sweep sweep = Sweep::FromArgs(Make({"prog"}));
  EXPECT_LE(sweep.sizes.back(), 200u);
  EXPECT_LT(sweep.ensemble, 768u);
}

TEST(Sweep, PaperFlagSelectsSectionVIII) {
  const Sweep sweep = Sweep::FromArgs(Make({"prog", "--paper"}));
  EXPECT_EQ(sweep.sizes.size(), 7u);
  EXPECT_EQ(sweep.sizes.back(), 1000u);
  EXPECT_EQ(sweep.instances, 10u);
  EXPECT_EQ(sweep.h.size(), 4u);
  EXPECT_EQ(sweep.ensemble, 768u);
  EXPECT_EQ(sweep.block_size, 192u);
  EXPECT_EQ(sweep.gens_low, 1000u);
  EXPECT_EQ(sweep.gens_high, 5000u);
}

TEST(Sweep, FlagsOverrideEvenWithPaper) {
  const Sweep sweep = Sweep::FromArgs(
      Make({"prog", "--paper", "--sizes", "10,20", "--ensemble", "64"}));
  EXPECT_EQ(sweep.sizes, (std::vector<std::uint32_t>{10, 20}));
  EXPECT_EQ(sweep.ensemble, 64u);
  EXPECT_EQ(sweep.gens_high, 5000u);  // untouched paper value
}

TEST(Sweep, DescribeMentionsKeyParameters) {
  const Sweep sweep;
  const std::string desc = sweep.Describe();
  EXPECT_NE(desc.find("ensemble="), std::string::npos);
  EXPECT_NE(desc.find("seed="), std::string::npos);
}

TEST(Reference, ExactForSmallInstances) {
  // n <= 10 uses exhaustive enumeration: must equal the brute force.
  const Instance instance = cdd::testing::RandomCdd(7, 0.5, 901);
  Sweep sweep;
  sweep.ref_iterations = 10;  // irrelevant for the exact path
  const Cost reference = ComputeReferenceCost(instance, sweep, 1);
  EXPECT_EQ(reference, BruteForceCdd(instance).cost);
}

TEST(Reference, HeuristicForLargerInstancesIsAchievable) {
  const Instance instance = cdd::testing::RandomCdd(25, 0.6, 902);
  Sweep sweep;
  sweep.ref_iterations = 3000;
  sweep.ref_restarts = 2;
  const Cost reference = ComputeReferenceCost(instance, sweep, 1);
  EXPECT_GT(reference, 0);
  EXPECT_LT(reference, kInfiniteCost);
  // Deterministic: same sweep + salt => same value.
  EXPECT_EQ(reference, ComputeReferenceCost(instance, sweep, 1));
  // Different salt may differ, but never by pathological amounts.
  const Cost other = ComputeReferenceCost(instance, sweep, 2);
  EXPECT_LT(std::abs(static_cast<double>(other - reference)),
            0.5 * static_cast<double>(reference) + 1);
}

TEST(Calibration, SecondsPerEvalIsPositiveAndScalesWithN) {
  const Instance small = cdd::testing::RandomCdd(10, 0.5, 903);
  const Instance large = cdd::testing::RandomCdd(400, 0.5, 904);
  const double t_small = MeasureSecondsPerEval(
      meta::Objective::ForInstance(small), 4000, 1);
  const double t_large = MeasureSecondsPerEval(
      meta::Objective::ForInstance(large), 4000, 1);
  EXPECT_GT(t_small, 0.0);
  EXPECT_GT(t_large, 2.0 * t_small);  // O(n) evaluator: 40x the size
}

}  // namespace
}  // namespace cdd::benchutil

/// CLI parser tests.

#include "benchutil/cli.hpp"

#include <gtest/gtest.h>

namespace cdd::benchutil {
namespace {

Args Make(std::initializer_list<const char*> argv) {
  std::vector<const char*> v(argv);
  return Args(static_cast<int>(v.size()), v.data());
}

TEST(Cli, ParsesKeyEqualsValue) {
  const Args args = Make({"prog", "--sizes=10,20", "--gens=500"});
  EXPECT_EQ(args.GetString("sizes", ""), "10,20");
  EXPECT_EQ(args.GetInt("gens", 0), 500);
}

TEST(Cli, ParsesKeySpaceValue) {
  const Args args = Make({"prog", "--ensemble", "768", "--mu", "0.88"});
  EXPECT_EQ(args.GetInt("ensemble", 0), 768);
  EXPECT_DOUBLE_EQ(args.GetDouble("mu", 0.0), 0.88);
}

TEST(Cli, BareFlagsAreTrue) {
  const Args args = Make({"prog", "--paper", "--verbose"});
  EXPECT_TRUE(args.GetBool("paper"));
  EXPECT_TRUE(args.GetBool("verbose"));
  EXPECT_FALSE(args.GetBool("absent"));
  EXPECT_TRUE(args.GetBool("absent", true));
}

TEST(Cli, ExplicitBooleans) {
  const Args args = Make({"prog", "--a=true", "--b=0", "--c", "off"});
  EXPECT_TRUE(args.GetBool("a"));
  EXPECT_FALSE(args.GetBool("b"));
  EXPECT_FALSE(args.GetBool("c"));
  const Args bad = Make({"prog", "--x=maybe"});
  EXPECT_THROW(bad.GetBool("x"), std::invalid_argument);
}

TEST(Cli, UintLists) {
  const Args args = Make({"prog", "--sizes", "10,20,50"});
  EXPECT_EQ(args.GetUintList("sizes", {}),
            (std::vector<std::uint32_t>{10, 20, 50}));
  EXPECT_EQ(args.GetUintList("absent", {7}),
            (std::vector<std::uint32_t>{7}));
  const Args bad = Make({"prog", "--sizes", "10,x"});
  EXPECT_THROW(bad.GetUintList("sizes", {}), std::invalid_argument);
}

TEST(Cli, FallbacksAndErrors) {
  const Args args = Make({"prog"});
  EXPECT_EQ(args.GetInt("n", 42), 42);
  EXPECT_DOUBLE_EQ(args.GetDouble("d", 1.5), 1.5);
  const Args bad = Make({"prog", "--n", "abc"});
  EXPECT_THROW(bad.GetInt("n", 0), std::invalid_argument);
}

TEST(Cli, RejectsPartiallyNumericValues) {
  // std::stoll/std::stod accept a numeric *prefix*; the parser must not —
  // "--gens 12abc" is a typo, not 12 generations.
  const Args trailing = Make({"prog", "--gens", "12abc"});
  EXPECT_THROW(trailing.GetInt("gens", 0), std::invalid_argument);

  const Args doubled = Make({"prog", "--h", "0.x6"});
  EXPECT_THROW(doubled.GetDouble("h", 0.0), std::invalid_argument);

  const Args suffixed = Make({"prog", "--mu", "0.88x"});
  EXPECT_THROW(suffixed.GetDouble("mu", 0.0), std::invalid_argument);

  const Args listed = Make({"prog", "--sizes", "10,20x,50"});
  EXPECT_THROW(listed.GetUintList("sizes", {}), std::invalid_argument);

  // Clean values keep parsing, including negatives and exponents.
  const Args good = Make({"prog", "--n", "-3", "--d", "1e-2"});
  EXPECT_EQ(good.GetInt("n", 0), -3);
  EXPECT_DOUBLE_EQ(good.GetDouble("d", 0.0), 0.01);
}

TEST(Cli, PositionalArguments) {
  const Args args = Make({"prog", "input.txt", "--k=1", "more.txt"});
  EXPECT_EQ(args.positional(),
            (std::vector<std::string>{"input.txt", "more.txt"}));
  EXPECT_EQ(args.program(), "prog");
}

}  // namespace
}  // namespace cdd::benchutil

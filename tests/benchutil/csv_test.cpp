/// CSV writer tests.

#include "benchutil/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace cdd::benchutil {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = TempPath("cdd_csv_test.csv");
  {
    CsvWriter csv(path, {"a", "b"});
    csv.AddRow({"1", "2"});
    csv.AddRow({"3", "4"});
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  EXPECT_EQ(Slurp(path), "a,b\n1,2\n3,4\n");
  std::remove(path.c_str());
}

TEST(Csv, PadsAndTruncatesRows) {
  const std::string path = TempPath("cdd_csv_pad.csv");
  {
    CsvWriter csv(path, {"a", "b", "c"});
    csv.AddRow({"1"});
    csv.AddRow({"1", "2", "3", "4"});
  }
  EXPECT_EQ(Slurp(path), "a,b,c\n1,,\n1,2,3\n");
  std::remove(path.c_str());
}

TEST(Csv, EscapesPerRfc4180) {
  EXPECT_EQ(CsvWriter::Escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::Escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(CsvWriter::Escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::Escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent/dir/file.csv", {"a"}),
               std::runtime_error);
}

}  // namespace
}  // namespace cdd::benchutil

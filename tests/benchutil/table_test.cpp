/// Table / chart / stats rendering tests.

#include "benchutil/table.hpp"

#include <gtest/gtest.h>

#include "benchutil/asciichart.hpp"
#include "benchutil/stats.hpp"

namespace cdd::benchutil {
namespace {

TEST(TextTable, AlignsColumnsAndPadsShortRows) {
  TextTable table({"a", "bbbb", "c"});
  table.AddRow({"1", "2"});
  table.AddRow({"333", "4", "5"});
  const std::string out = table.ToString();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("bbbb"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Formatting, Doubles) {
  EXPECT_EQ(FmtDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FmtDouble(-0.5, 1), "-0.5");
}

TEST(Formatting, Seconds) {
  EXPECT_NE(FmtSeconds(5e-6).find("us"), std::string::npos);
  EXPECT_NE(FmtSeconds(5e-3).find("ms"), std::string::npos);
  EXPECT_NE(FmtSeconds(5.0).find("s"), std::string::npos);
}

TEST(RunningStats, WelfordMatchesClosedForm) {
  RunningStats stats;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.Add(v);
  }
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance of this classic data set is 32/7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStats, DegenerateCases) {
  RunningStats empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.variance(), 0.0);
  RunningStats one;
  one.Add(3.0);
  EXPECT_EQ(one.variance(), 0.0);
  EXPECT_EQ(one.mean(), 3.0);
}

TEST(BarChart, RendersSeriesAndLegend) {
  const std::vector<std::string> cats{"10", "20"};
  const std::vector<Series> series{{"SA", {1.0, 2.0}},
                                   {"DPSO", {3.0, 0.5}}};
  const std::string chart = BarChart(cats, series, 6);
  EXPECT_NE(chart.find("legend"), std::string::npos);
  EXPECT_NE(chart.find("#=SA"), std::string::npos);
  EXPECT_NE(chart.find("o=DPSO"), std::string::npos);
  EXPECT_NE(chart.find('#'), std::string::npos);
}

TEST(BarChart, HandlesNegativeValues) {
  const std::vector<std::string> cats{"a"};
  const std::vector<Series> series{{"s", {-1.0}}};
  const std::string chart = BarChart(cats, series, 6);
  EXPECT_FALSE(chart.empty());
}

TEST(BarChart, EmptyInputsReturnEmpty) {
  EXPECT_TRUE(BarChart({}, {{"s", {1.0}}}).empty());
  EXPECT_TRUE(BarChart({"a"}, {}).empty());
}

TEST(LineChart, RendersAllSeriesMarkers) {
  const std::vector<std::string> cats{"10", "100", "1000"};
  const std::vector<Series> series{{"gpu", {0.01, 0.1, 1.0}},
                                   {"cpu", {0.1, 10.0, 1000.0}}};
  const std::string chart = LineChart(cats, series, 10);
  EXPECT_NE(chart.find('#'), std::string::npos);
  EXPECT_NE(chart.find('o'), std::string::npos);
  EXPECT_NE(chart.find("#=gpu"), std::string::npos);
}

TEST(LineChart, LinearScaleWorksToo) {
  const std::vector<std::string> cats{"a", "b"};
  const std::vector<Series> series{{"s", {1.0, 2.0}}};
  EXPECT_FALSE(LineChart(cats, series, 5, /*log_scale=*/false).empty());
}

}  // namespace
}  // namespace cdd::benchutil

/// Framing and wire-serialization contracts of the serve socket protocol:
/// frames survive arbitrary chunking of the byte stream, broken length
/// prefixes poison the decoder, and request/response payloads round-trip
/// field-for-field — including the cache key, so duplicates arriving over
/// the wire coalesce exactly like in-process ones.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/test_instances.hpp"
#include "serve/net/frame.hpp"
#include "serve/net/wire.hpp"
#include "serve/request.hpp"

namespace cdd::serve::net {
namespace {

TEST(FrameCodec, RoundTripsOnePayload) {
  const std::string frame = EncodeFrame("hello");
  ASSERT_EQ(frame.size(), 4u + 5u);
  // Big-endian length prefix: 5 = 0x00000005.
  EXPECT_EQ(frame[0], '\x00');
  EXPECT_EQ(frame[1], '\x00');
  EXPECT_EQ(frame[2], '\x00');
  EXPECT_EQ(frame[3], '\x05');

  FrameDecoder decoder;
  decoder.Append(frame.data(), frame.size());
  const auto payload = decoder.Next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "hello");
  EXPECT_FALSE(decoder.Next().has_value());
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameCodec, SurvivesByteByByteDelivery) {
  const std::string stream = EncodeFrame("first") + EncodeFrame("second");
  FrameDecoder decoder;
  std::vector<std::string> got;
  for (const char byte : stream) {
    decoder.Append(&byte, 1);
    while (const auto payload = decoder.Next()) got.push_back(*payload);
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], "first");
  EXPECT_EQ(got[1], "second");
}

TEST(FrameCodec, PartialFrameYieldsNothing) {
  const std::string frame = EncodeFrame("payload");
  FrameDecoder decoder;
  decoder.Append(frame.data(), frame.size() - 1);
  EXPECT_FALSE(decoder.Next().has_value());
  EXPECT_EQ(decoder.buffered(), frame.size() - 1);
  decoder.Append(frame.data() + frame.size() - 1, 1);
  ASSERT_TRUE(decoder.Next().has_value());
}

TEST(FrameCodec, ZeroLengthFrameIsAProtocolError) {
  const std::string zeros(4, '\0');
  FrameDecoder decoder;
  decoder.Append(zeros.data(), zeros.size());
  EXPECT_THROW(decoder.Next(), FrameError);
}

TEST(FrameCodec, OverCapLengthIsAProtocolError) {
  FrameDecoder decoder(/*max_frame_bytes=*/16);
  const std::string frame = EncodeFrame(std::string(17, 'x'));
  decoder.Append(frame.data(), frame.size());
  EXPECT_THROW(decoder.Next(), FrameError);
}

TEST(Wire, RequestRoundTripsEveryField) {
  SolveRequest request;
  request.id = 7;
  request.instance = cdd::testing::PaperExampleCdd();
  request.engine = "race";
  request.options.generations = 321;
  request.options.seed = 99;
  request.options.ensemble = 512;
  request.options.block = 128;
  request.options.chains = 12;
  request.options.vshape_init = true;
  request.options.trajectory_stride = 10;
  request.options.portfolio = "sa,ta";
  request.options.race_slice = 32;
  request.deadline = std::chrono::milliseconds(250);
  request.priority = 3;
  request.tenant = "team-a";

  const SolveRequest parsed = ParseRequest(WriteRequest(request));
  EXPECT_EQ(parsed.id, request.id);
  EXPECT_EQ(parsed.engine, request.engine);
  EXPECT_EQ(parsed.options.generations, request.options.generations);
  EXPECT_EQ(parsed.options.seed, request.options.seed);
  EXPECT_EQ(parsed.options.ensemble, request.options.ensemble);
  EXPECT_EQ(parsed.options.block, request.options.block);
  EXPECT_EQ(parsed.options.chains, request.options.chains);
  EXPECT_EQ(parsed.options.vshape_init, request.options.vshape_init);
  EXPECT_EQ(parsed.options.trajectory_stride,
            request.options.trajectory_stride);
  EXPECT_EQ(parsed.options.portfolio, request.options.portfolio);
  EXPECT_EQ(parsed.options.race_slice, request.options.race_slice);
  EXPECT_EQ(parsed.deadline, request.deadline);
  EXPECT_EQ(parsed.priority, request.priority);
  EXPECT_EQ(parsed.tenant, request.tenant);
  EXPECT_EQ(parsed.instance.size(), request.instance.size());
  EXPECT_EQ(parsed.instance.due_date(), request.instance.due_date());
  // The single-flight contract over the wire: a parsed duplicate must map
  // to the same canonical key as the in-process original.
  EXPECT_EQ(CacheKey(parsed), CacheKey(request));
}

TEST(Wire, RequestParsingIsStrict) {
  EXPECT_THROW(ParseRequest("{"), WireError);
  EXPECT_THROW(ParseRequest(R"({"op":"stats","id":1})"), WireError);
  // Missing required fields (engine, instance).
  EXPECT_THROW(ParseRequest(R"({"op":"solve","id":1})"), WireError);

  SolveRequest request;
  request.instance = cdd::testing::PaperExampleCdd();
  std::string payload = WriteRequest(request);

  // A mistyped optional field throws instead of silently defaulting.
  const std::string needle = "\"generations\":1000";
  const std::size_t at = payload.find(needle);
  ASSERT_NE(at, std::string::npos);
  payload.replace(at, needle.size(), "\"generations\":\"many\"");
  EXPECT_THROW(ParseRequest(payload), WireError);
}

TEST(Wire, ResponseRoundTripsIncludingOverloadStatuses) {
  SolveResponse response;
  response.id = 9;
  response.status = SolveStatus::kShedOverload;
  response.result.best = {2, 0, 1};
  response.result.best_cost = 126;
  response.result.evaluations = 5;
  response.result.stopped = true;
  response.result.trajectory = {140, 126};
  response.device_seconds = 0.5;
  response.queue_ms = 1.25;
  response.solve_ms = 2.5;
  response.from_cache = false;
  response.coalesced = true;
  response.error = "busy";

  const SolveResponse parsed = ParseResponse(WriteResponse(response));
  EXPECT_EQ(parsed.id, response.id);
  EXPECT_EQ(parsed.status, response.status);
  EXPECT_EQ(parsed.result.best, response.result.best);
  EXPECT_EQ(parsed.result.best_cost, response.result.best_cost);
  EXPECT_EQ(parsed.result.evaluations, response.result.evaluations);
  EXPECT_EQ(parsed.result.stopped, response.result.stopped);
  EXPECT_EQ(parsed.result.trajectory, response.result.trajectory);
  EXPECT_EQ(parsed.device_seconds, response.device_seconds);
  EXPECT_EQ(parsed.queue_ms, response.queue_ms);
  EXPECT_EQ(parsed.solve_ms, response.solve_ms);
  EXPECT_EQ(parsed.from_cache, response.from_cache);
  EXPECT_EQ(parsed.coalesced, response.coalesced);
  EXPECT_EQ(parsed.error, response.error);

  // Every admission/overload status has a wire name that round-trips.
  for (const SolveStatus status :
       {SolveStatus::kRejectedDeadlineInfeasible, SolveStatus::kShedOverload,
        SolveStatus::kShuttingDown, SolveStatus::kShutdown,
        SolveStatus::kRejectedQueueFull}) {
    const auto back = SolveStatusFromName(ToString(status));
    ASSERT_TRUE(back.has_value()) << ToString(status);
    EXPECT_EQ(*back, status);
  }
  EXPECT_FALSE(SolveStatusFromName("no_such_status").has_value());
}

TEST(Wire, VariantInstancesAndSplitsRoundTrip) {
  // A parallel-machine early-work request travels through the shared
  // instance codec; the canonical key must separate it from the plain
  // single-machine request over the same job data.
  SolveRequest plain;
  plain.id = 3;
  plain.engine = "sa";
  plain.instance = cdd::testing::PaperExampleCdd();
  SolveRequest variant = plain;
  variant.instance = plain.instance.with_machines(2).with_objective(
      ScheduleObjective::kEarlyWork);

  const SolveRequest parsed = ParseRequest(WriteRequest(variant));
  EXPECT_EQ(parsed.instance.machines(), 2);
  EXPECT_EQ(parsed.instance.objective(), ScheduleObjective::kEarlyWork);
  EXPECT_EQ(CacheKey(parsed), CacheKey(variant));
  EXPECT_NE(CacheKey(parsed), CacheKey(plain));
  // Single-machine payloads carry neither variant field — byte-compatible
  // with pre-variant clients.
  const std::string plain_payload = WriteRequest(plain);
  EXPECT_EQ(plain_payload.find("machines"), std::string::npos);
  EXPECT_EQ(plain_payload.find("objective"), std::string::npos);

  // best_splits round-trips on responses and stays optional.
  SolveResponse response;
  response.id = 4;
  response.status = SolveStatus::kOk;
  response.result.best = {2, 0, 1, 3, 4};
  response.result.best_cost = 9;
  response.result.best_splits = {2};
  const SolveResponse back = ParseResponse(WriteResponse(response));
  EXPECT_EQ(back.result.best_splits, response.result.best_splits);
  response.result.best_splits.clear();
  const std::string no_splits = WriteResponse(response);
  EXPECT_EQ(no_splits.find("best_splits"), std::string::npos);
  EXPECT_TRUE(ParseResponse(no_splits).result.best_splits.empty());
}

TEST(Wire, ErrorResponseParsesAsFailed) {
  const SolveResponse parsed =
      ParseResponse(WriteErrorResponse(0, "request is not valid JSON"));
  EXPECT_EQ(parsed.id, 0u);
  EXPECT_EQ(parsed.status, SolveStatus::kFailed);
  EXPECT_EQ(parsed.error, "request is not valid JSON");
}

}  // namespace
}  // namespace cdd::serve::net

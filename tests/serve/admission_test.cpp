/// Admission control and load shedding in the SolverService: past the
/// high watermark the lowest-priority work is shed first, tenants past
/// their fair share are shed above the low watermark, provably
/// deadline-infeasible requests are rejected at admission instead of
/// expiring in the queue, and a worker at its preemption-depth cap
/// records the starvation instead of hiding it.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/test_instances.hpp"
#include "meta/engine.hpp"
#include "serve/request.hpp"
#include "serve/service.hpp"

namespace cdd::serve {
namespace {

/// Parks the "block" engine until Release(): with one worker busy on it,
/// every subsequent submit is observed *queued*, making shed decisions
/// deterministic.  Reset() re-arms the gate for a second parked solve.
struct Gate {
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;
  std::atomic<unsigned> entered{0};

  void Release() {
    {
      const std::scoped_lock lock(mutex);
      open = true;
    }
    cv.notify_all();
  }
  void Reset() {
    const std::scoped_lock lock(mutex);
    open = false;
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [this] { return open; });
  }
};

EngineRegistry BlockingRegistry(Gate* gate) {
  EngineRegistry registry = EngineRegistry::Default();
  registry.Register("block",
                    [gate](const Instance& instance, const EngineOptions&) {
                      gate->entered.fetch_add(1);
                      gate->Wait();
                      EngineRun run;
                      run.result.best = IdentitySequence(instance.size());
                      run.result.best_cost = 0;
                      run.result.evaluations = 1;
                      return run;
                    });
  return registry;
}

std::future<SolveResponse> ParkWorker(SolverService& service, Gate& gate,
                                      unsigned nth = 1) {
  SolveRequest blocker;
  blocker.id = 9000 + nth;
  blocker.instance = cdd::testing::RandomCdd(8, 0.5, 990 + nth);
  blocker.engine = "block";
  std::future<SolveResponse> parked = service.Submit(std::move(blocker));
  while (gate.entered.load() < nth) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return parked;
}

SolveRequest DistinctRequest(std::uint64_t id, int priority) {
  SolveRequest request;
  request.id = id;
  request.instance =
      cdd::testing::RandomCdd(10, 0.5, /*seed=*/id);
  request.engine = "sa";
  request.options.generations = 100;
  request.priority = priority;
  return request;
}

TEST(ServiceAdmission, OverloadShedsLowestPriorityFirst) {
  Gate gate;
  const EngineRegistry registry = BlockingRegistry(&gate);
  ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 8;
  config.cache_capacity = 0;
  config.shed_low_watermark = 1;
  config.shed_high_watermark = 4;
  SolverService service(config, registry);
  std::future<SolveResponse> parked = ParkWorker(service, gate);

  // Fill to the high watermark with priorities 5..2, then offer two
  // lower-priority requests (shed on arrival) and one higher-priority
  // request (displaces the queued priority-2 victim).
  const std::vector<int> priorities = {5, 4, 3, 2, 1, 0, 6};
  std::vector<std::future<SolveResponse>> futures;
  for (std::size_t i = 0; i < priorities.size(); ++i) {
    futures.push_back(
        service.Submit(DistinctRequest(10 + i, priorities[i])));
  }

  // The shed answers resolve synchronously: prio 1 and prio 0 on arrival,
  // prio 2 displaced by the prio-6 arrival.
  for (const std::size_t shed_index : {std::size_t{3}, std::size_t{4},
                                       std::size_t{5}}) {
    ASSERT_EQ(futures[shed_index].wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "priority " << priorities[shed_index];
    EXPECT_EQ(futures[shed_index].get().status,
              SolveStatus::kShedOverload);
  }
  EXPECT_EQ(service.metrics().counter("shed_overload").value(), 3u);

  gate.Release();
  parked.get();
  // The survivors (priorities 6, 5, 4, 3) all complete.
  for (const std::size_t kept_index : {std::size_t{0}, std::size_t{1},
                                       std::size_t{2}, std::size_t{6}}) {
    EXPECT_EQ(futures[kept_index].get().status, SolveStatus::kOk);
  }
  service.Shutdown();
}

TEST(ServiceAdmission, TenantOverFairShareIsShed) {
  Gate gate;
  const EngineRegistry registry = BlockingRegistry(&gate);
  ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 8;  // fair share with 2 tenants: 8 / 2 = 4
  config.cache_capacity = 0;
  config.shed_low_watermark = 1;
  config.shed_high_watermark = 8;
  SolverService service(config, registry);
  std::future<SolveResponse> parked = ParkWorker(service, gate);

  std::vector<std::future<SolveResponse>> greedy;
  for (std::uint64_t i = 0; i < 4; ++i) {
    SolveRequest request = DistinctRequest(20 + i, 0);
    request.tenant = "greedy";
    greedy.push_back(service.Submit(std::move(request)));
  }
  // A second tenant makes fair share enforceable (active > 1)...
  SolveRequest modest = DistinctRequest(30, 0);
  modest.tenant = "modest";
  std::future<SolveResponse> modest_future =
      service.Submit(std::move(modest));

  // ...so the greedy tenant's fifth request (its share is 4) is shed.
  SolveRequest fifth = DistinctRequest(31, 0);
  fifth.tenant = "greedy";
  std::future<SolveResponse> fifth_future =
      service.Submit(std::move(fifth));
  ASSERT_EQ(fifth_future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(fifth_future.get().status, SolveStatus::kShedOverload);
  EXPECT_EQ(service.metrics().counter("shed_tenant_overquota").value(), 1u);

  gate.Release();
  parked.get();
  for (auto& future : greedy) {
    EXPECT_EQ(future.get().status, SolveStatus::kOk);
  }
  EXPECT_EQ(modest_future.get().status, SolveStatus::kOk);
  service.Shutdown();
}

TEST(ServiceAdmission, DeadlineInfeasibleRejectedAtAdmission) {
  Gate gate;
  const EngineRegistry registry = BlockingRegistry(&gate);
  ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 8;
  config.cache_capacity = 0;
  config.shed_low_watermark = 1;
  config.shed_high_watermark = 8;
  SolverService service(config, registry);

  // Seed the solve-latency history with one ~30ms solve, so the predictor
  // has a mean to work with (no history admits unconditionally).
  std::future<SolveResponse> first = ParkWorker(service, gate, 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  gate.Release();
  first.get();

  // Park the worker again and queue one request: depth 1 >= low.
  gate.Reset();
  std::future<SolveResponse> parked = ParkWorker(service, gate, 2);
  std::future<SolveResponse> filler =
      service.Submit(DistinctRequest(40, 0));

  // A 1ms deadline behind a ~30ms mean queue wait is provably infeasible:
  // rejected at admission, before it could expire in the queue.
  SolveRequest doomed = DistinctRequest(41, 0);
  doomed.deadline = std::chrono::milliseconds(1);
  std::future<SolveResponse> doomed_future =
      service.Submit(std::move(doomed));
  ASSERT_EQ(doomed_future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(doomed_future.get().status,
            SolveStatus::kRejectedDeadlineInfeasible);
  EXPECT_EQ(
      service.metrics().counter("rejected_deadline_infeasible").value(),
      1u);

  gate.Release();
  parked.get();
  EXPECT_EQ(filler.get().status, SolveStatus::kOk);
  service.Shutdown();
}

/// Deterministic stand-in engine: each Step unit burns ~1ms of wall time
/// (same device as preempt_test.cpp), so preemption-check boundaries are
/// hit many times while a higher-priority request waits.
class PacedEngine final : public meta::Engine {
 public:
  PacedEngine(std::uint64_t budget, std::atomic<bool>* started)
      : budget_(budget), started_(started) {}

  meta::StepStatus Step(std::uint64_t units) override {
    if (started_ != nullptr) started_->store(true);
    while (units > 0 && consumed_ < budget_) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ++consumed_;
      --units;
    }
    return consumed_ < budget_ ? meta::StepStatus::kRunning
                               : meta::StepStatus::kDone;
  }

  std::uint64_t Remaining() const override { return budget_ - consumed_; }
  Cost BestCost() const override { return 0; }

  std::unique_ptr<meta::EngineCheckpoint> Checkpoint() const override {
    return std::make_unique<meta::EngineCheckpoint>();
  }
  void Restore(const meta::EngineCheckpoint&) override {}

  meta::EngineOutput Finish() override {
    meta::EngineOutput out;
    out.result.best_cost = 0;
    out.result.evaluations = consumed_;
    return out;
  }

 private:
  std::uint64_t budget_;
  std::uint64_t consumed_ = 0;
  std::atomic<bool>* started_;
};

TEST(ServiceAdmission, PreemptDepthCapIsCountedNotSilent) {
  std::atomic<bool> slow_started{false};
  EngineRegistry registry;
  registry.RegisterFactory(
      "slow", [&](const Instance&, const EngineOptions&) {
        return std::make_unique<PacedEngine>(60, &slow_started);
      });
  registry.RegisterFactory(
      "fast", [](const Instance&, const EngineOptions&) {
        return std::make_unique<PacedEngine>(1, nullptr);
      });

  ServiceConfig config;
  config.workers = 1;
  config.cache_capacity = 0;
  config.preempt_slice = 2;
  config.max_preempt_depth = 0;  // preemption allowed by slice, barred by cap
  SolverService service(config, registry);

  SolveRequest low;
  low.id = 1;
  low.instance = cdd::testing::PaperExampleCdd();
  low.engine = "slow";
  low.priority = 0;
  std::future<SolveResponse> low_future = service.Submit(std::move(low));
  while (!slow_started.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  SolveRequest high;
  high.id = 2;
  high.instance = cdd::testing::PaperExampleCdd();
  high.engine = "fast";
  high.priority = 5;
  std::future<SolveResponse> high_future = service.Submit(std::move(high));

  // At depth cap 0 the worker may never pause the running solve: the
  // high-priority request waits its turn, and every slice boundary that
  // would have preempted is counted instead of silently skipped.
  EXPECT_EQ(low_future.get().status, SolveStatus::kOk);
  EXPECT_EQ(high_future.get().status, SolveStatus::kOk);
  EXPECT_EQ(service.metrics().counter("preemptions").value(), 0u);
  EXPECT_GE(service.metrics().counter("preempt_depth_limited").value(), 1u);
  service.Shutdown();
}

}  // namespace
}  // namespace cdd::serve

/// Counters, latency histograms and the JSON snapshot.

#include "serve/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "trace/json.hpp"

namespace cdd::serve {
namespace {

TEST(Counter, IncrementsAtomically) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42u);

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < 10000; ++i) counter.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(), 42u + 40000u);
}

TEST(LatencyHistogram, EmptyReportsZero) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(hist.mean_ms(), 0.0);
  EXPECT_DOUBLE_EQ(hist.max_ms(), 0.0);
}

TEST(LatencyHistogram, PercentilesWithinBucketResolution) {
  // Buckets grow by 2^(1/4) ≈ 19%, so a quantile estimate may be off by
  // one bucket: accept a generous ±25% band around the true value.
  LatencyHistogram hist;
  for (int i = 1; i <= 1000; ++i) {
    hist.Record(static_cast<double>(i) / 10.0);  // 0.1 .. 100 ms, uniform
  }
  EXPECT_EQ(hist.count(), 1000u);
  EXPECT_NEAR(hist.Percentile(0.50), 50.0, 50.0 * 0.25);
  EXPECT_NEAR(hist.Percentile(0.95), 95.0, 95.0 * 0.25);
  EXPECT_NEAR(hist.Percentile(0.99), 99.0, 99.0 * 0.25);
  EXPECT_NEAR(hist.mean_ms(), 50.05, 1.0);
  EXPECT_NEAR(hist.max_ms(), 100.0, 100.0 * 0.25);
}

TEST(LatencyHistogram, PercentilesAreMonotone) {
  LatencyHistogram hist;
  for (int i = 0; i < 500; ++i) hist.Record(0.5 + (i % 37) * 3.0);
  double prev = 0.0;
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
    const double value = hist.Percentile(q);
    EXPECT_GE(value, prev) << "q=" << q;
    prev = value;
  }
}

TEST(LatencyHistogram, ExtremesAreClamped) {
  LatencyHistogram hist;
  hist.Record(0.0);        // below the 1 µs floor
  hist.Record(1e12);       // way past the ~9 h ceiling
  EXPECT_EQ(hist.count(), 2u);
  EXPECT_GT(hist.Percentile(1.0), 0.0);  // no crash, finite answer
}

TEST(LatencyHistogram, HostileSamplesCannotPoisonTheHistogram) {
  // NaN, infinities and negative durations (a clock that stepped
  // backwards) must be absorbed as clamped samples, never corrupt the
  // aggregates.
  LatencyHistogram hist;
  hist.Record(std::numeric_limits<double>::quiet_NaN());
  hist.Record(std::numeric_limits<double>::infinity());
  hist.Record(-std::numeric_limits<double>::infinity());
  hist.Record(-5.0);
  hist.Record(2.0);  // one honest sample
  EXPECT_EQ(hist.count(), 5u);
  EXPECT_TRUE(std::isfinite(hist.mean_ms()));
  EXPECT_TRUE(std::isfinite(hist.max_ms()));
  for (const double q : {0.5, 0.95, 0.99, 1.0}) {
    const double value = hist.Percentile(q);
    EXPECT_TRUE(std::isfinite(value)) << "q=" << q;
    EXPECT_GE(value, 0.0) << "q=" << q;
  }
}

TEST(MetricsRegistry, NamesAreStableReferences) {
  MetricsRegistry registry;
  Counter& a = registry.counter("requests");
  Counter& b = registry.counter("requests");
  EXPECT_EQ(&a, &b);
  a.Increment(3);
  EXPECT_EQ(registry.counter("requests").value(), 3u);

  LatencyHistogram& h1 = registry.histogram("solve_ms");
  LatencyHistogram& h2 = registry.histogram("solve_ms");
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistry, SnapshotJsonShape) {
  MetricsRegistry registry;
  registry.counter("submitted").Increment(5);
  registry.counter("completed").Increment(4);
  registry.histogram("solve_ms").Record(2.0);
  registry.histogram("solve_ms").Record(8.0);

  const std::string json = registry.SnapshotJson();
  // Shape, not exact float formatting.
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"submitted\":5"), std::string::npos);
  EXPECT_NE(json.find("\"completed\":4"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"solve_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
  for (const char* field : {"\"mean\":", "\"p50\":", "\"p95\":",
                            "\"p99\":", "\"max\":"}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
  // Registration order is preserved: submitted before completed.
  EXPECT_LT(json.find("submitted"), json.find("completed"));
}

TEST(MetricsRegistry, SnapshotJsonEscapesHostileNames) {
  // Metric names come from code today, but the snapshot is the service's
  // wire format: a name with quotes, backslashes or control characters
  // must still yield parseable JSON that round-trips the name.
  MetricsRegistry registry;
  const std::string hostile = "evil\"name\\with\nnewline";
  registry.counter(hostile).Increment(7);
  registry.histogram(hostile).Record(1.0);

  const std::string json = registry.SnapshotJson();
  EXPECT_EQ(json.find('\n'), std::string::npos);

  const trace::JsonValue doc = trace::JsonValue::Parse(json);
  EXPECT_EQ(doc.At("counters").At(hostile).AsInt(), 7);
  EXPECT_EQ(doc.At("histograms").At(hostile).At("count").AsInt(), 1);
}

}  // namespace
}  // namespace cdd::serve

/// Single-flight coalescing in the SolverService: concurrent duplicates
/// attach to one in-flight solve and receive bit-identical results, and a
/// leader that cannot deliver a full-budget run re-elects a waiter to
/// solve instead of handing out a truncated result.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <thread>

#include "common/test_instances.hpp"
#include "serve/request.hpp"
#include "serve/service.hpp"

namespace cdd::serve {
namespace {

/// Parks the "block" engine until Release(): with one worker busy on it,
/// every subsequent submit is observed *queued*, making join/re-election
/// decisions deterministic.
struct Gate {
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;
  std::atomic<unsigned> entered{0};

  void Release() {
    {
      const std::scoped_lock lock(mutex);
      open = true;
    }
    cv.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [this] { return open; });
  }
};

EngineRegistry BlockingRegistry(Gate* gate) {
  EngineRegistry registry = EngineRegistry::Default();
  registry.Register("block",
                    [gate](const Instance& instance, const EngineOptions&) {
                      gate->entered.fetch_add(1);
                      gate->Wait();
                      EngineRun run;
                      run.result.best = IdentitySequence(instance.size());
                      run.result.best_cost = 0;
                      run.result.evaluations = 1;
                      return run;
                    });
  return registry;
}

std::future<SolveResponse> ParkWorker(SolverService& service, Gate& gate) {
  SolveRequest blocker;
  blocker.id = 99;
  blocker.instance = cdd::testing::RandomCdd(8, 0.5, 999);
  blocker.engine = "block";
  std::future<SolveResponse> parked = service.Submit(std::move(blocker));
  while (gate.entered.load() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return parked;
}

bool AwaitCounter(SolverService& service, const char* name,
                  std::uint64_t at_least) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (service.metrics().counter(name).value() < at_least) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

TEST(ServiceCoalesce, WaitersReceiveTheLeadersBitIdenticalResult) {
  Gate gate;
  const EngineRegistry registry = BlockingRegistry(&gate);
  ServiceConfig config;
  config.workers = 1;
  SolverService service(config, registry);
  std::future<SolveResponse> parked = ParkWorker(service, gate);

  SolveRequest duplicate;
  duplicate.instance = cdd::testing::PaperExampleCdd();
  duplicate.engine = "sa";
  duplicate.options.generations = 300;
  duplicate.options.seed = 7;

  std::vector<std::future<SolveResponse>> futures;
  for (std::uint64_t i = 1; i <= 3; ++i) {
    SolveRequest request = duplicate;
    request.id = i;
    futures.push_back(service.Submit(std::move(request)));
  }
  // The worker is parked: the first duplicate led, the other two joined.
  ASSERT_TRUE(AwaitCounter(service, "coalesced_joins", 2));
  gate.Release();

  std::vector<SolveResponse> responses;
  for (auto& future : futures) responses.push_back(future.get());
  parked.get();

  unsigned coalesced = 0;
  for (const SolveResponse& r : responses) {
    EXPECT_EQ(r.status, SolveStatus::kOk);
    if (r.coalesced) ++coalesced;
    EXPECT_EQ(r.result.best, responses[0].result.best);
    EXPECT_EQ(r.result.best_cost, responses[0].result.best_cost);
    EXPECT_EQ(r.result.evaluations, responses[0].result.evaluations);
  }
  EXPECT_EQ(coalesced, 2u);
  // Exactly one solve ran for the duplicated key (plus the blocker).
  EXPECT_EQ(service.metrics().counter("completed").value(), 2u);
  EXPECT_EQ(service.metrics().counter("coalesced_joins").value(), 2u);
  service.Shutdown();
}

TEST(ServiceCoalesce, ExpiredLeaderReElectsAWaiter) {
  Gate gate;
  const EngineRegistry registry = BlockingRegistry(&gate);
  ServiceConfig config;
  config.workers = 1;
  config.cache_capacity = 0;
  SolverService service(config, registry);
  std::future<SolveResponse> parked = ParkWorker(service, gate);

  // Leader with a deadline that will expire while it waits in the queue;
  // the waiter has no deadline and must not inherit the leader's failure.
  SolveRequest leader;
  leader.id = 1;
  leader.instance = cdd::testing::PaperExampleCdd();
  leader.engine = "sa";
  leader.options.generations = 200;
  leader.deadline = std::chrono::milliseconds(30);
  std::future<SolveResponse> leader_future =
      service.Submit(std::move(leader));

  SolveRequest waiter;
  waiter.id = 2;
  waiter.instance = cdd::testing::PaperExampleCdd();
  waiter.engine = "sa";
  waiter.options.generations = 200;
  std::future<SolveResponse> waiter_future =
      service.Submit(std::move(waiter));
  ASSERT_TRUE(AwaitCounter(service, "coalesced_joins", 1));

  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  gate.Release();
  parked.get();

  // The leader expired in the queue without solving...
  EXPECT_EQ(leader_future.get().status, SolveStatus::kDeadlineExpired);
  // ...and the waiter was promoted to leader and solved in full rather
  // than receiving the leader's truncated outcome.
  const SolveResponse promoted = waiter_future.get();
  EXPECT_EQ(promoted.status, SolveStatus::kOk);
  EXPECT_FALSE(promoted.result.best.empty());
  EXPECT_FALSE(promoted.result.stopped);
  EXPECT_EQ(service.metrics().counter("coalesce_reelected").value(), 1u);
  service.Shutdown();
}

}  // namespace
}  // namespace cdd::serve

/// SolverService end-to-end: no request lost, backpressure, deadlines,
/// caching, shutdown-while-busy.

#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "common/test_instances.hpp"
#include "core/sequence.hpp"
#include "orlib/biskup_feldmann.hpp"

namespace cdd::serve {
namespace {

using std::chrono::milliseconds;

SolveRequest SmallRequest(std::uint64_t id, std::uint32_t index = 0) {
  SolveRequest request;
  request.id = id;
  request.instance = cdd::testing::RandomCdd(12, 0.6, 100 + index);
  request.engine = "sa";
  request.options.generations = 100;
  request.options.seed = 7;
  return request;
}

TEST(SolverService, SolvesOneRequest) {
  SolverService service(ServiceConfig{.workers = 2});
  const SolveResponse response = service.Submit(SmallRequest(1)).get();
  EXPECT_EQ(response.id, 1u);
  EXPECT_EQ(response.status, SolveStatus::kOk);
  EXPECT_TRUE(response.ok());
  EXPECT_FALSE(response.from_cache);
  EXPECT_NO_THROW(ValidateSequence(response.result.best, 12));
  EXPECT_GE(response.solve_ms, 0.0);
}

TEST(SolverService, UnknownEngineRejectedImmediately) {
  SolverService service(ServiceConfig{.workers = 1});
  SolveRequest request = SmallRequest(2);
  request.engine = "does-not-exist";
  std::future<SolveResponse> future = service.Submit(std::move(request));
  // Rejections resolve synchronously — no worker involved.
  ASSERT_EQ(future.wait_for(milliseconds(0)), std::future_status::ready);
  const SolveResponse response = future.get();
  EXPECT_EQ(response.status, SolveStatus::kRejectedUnknownEngine);
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(
      service.metrics().counter("rejected_unknown_engine").value(), 1u);
}

TEST(SolverService, RestrictedUcddcpInstanceRejectedAtTheBoundary) {
  // The O(n) UCDDCP evaluator requires d >= sum(P_i); a violating
  // instance must be rejected synchronously with a diagnostic, never
  // handed to an engine (which would throw deep inside a worker).
  SolverService service(ServiceConfig{.workers = 1});
  SolveRequest request;
  request.id = 9;
  request.instance =
      Instance(Problem::kUcddcp, /*d=*/5, {6, 5, 2}, {7, 9, 6}, {9, 5, 4},
               {5, 5, 2}, {5, 4, 3});  // sum P = 13 > d
  request.engine = "sa";
  request.options.generations = 10;
  std::future<SolveResponse> future = service.Submit(std::move(request));
  ASSERT_EQ(future.wait_for(milliseconds(0)), std::future_status::ready);
  const SolveResponse response = future.get();
  EXPECT_EQ(response.status, SolveStatus::kRejectedInvalidInstance);
  EXPECT_FALSE(response.ok());
  EXPECT_NE(response.error.find("restricted UCDDCP"), std::string::npos);
  EXPECT_NE(response.error.find("sum(P_i) = 13"), std::string::npos);
  EXPECT_EQ(
      service.metrics().counter("rejected_invalid_instance").value(), 1u);
}

TEST(SolverService, VariantInstanceWithUnsupportedEngineRejected) {
  // Pairing a parallel-machine or early-work instance with an engine
  // outside the support matrix (docs/WORKLOADS.md) is rejected
  // synchronously with the support diagnostic, never queued.
  SolverService service(ServiceConfig{.workers = 1});
  SolveRequest request = SmallRequest(21);
  request.engine = "dpso";
  request.instance = request.instance.with_machines(3);
  std::future<SolveResponse> future = service.Submit(std::move(request));
  ASSERT_EQ(future.wait_for(milliseconds(0)), std::future_status::ready);
  const SolveResponse response = future.get();
  EXPECT_EQ(response.status, SolveStatus::kRejectedInvalidInstance);
  EXPECT_NE(response.error.find("parallel machines (m=3)"),
            std::string::npos)
      << response.error;
  EXPECT_NE(response.error.find("sa, ta"), std::string::npos);
  EXPECT_EQ(
      service.metrics().counter("rejected_invalid_instance").value(), 1u);

  SolveRequest early = SmallRequest(22);
  early.engine = "es";
  early.instance =
      early.instance.with_objective(ScheduleObjective::kEarlyWork);
  const SolveResponse early_response =
      service.Submit(std::move(early)).get();
  EXPECT_EQ(early_response.status, SolveStatus::kRejectedInvalidInstance);
  EXPECT_NE(early_response.error.find("early-work"), std::string::npos);
  EXPECT_EQ(
      service.metrics().counter("rejected_invalid_instance").value(), 2u);
}

TEST(SolverService, VariantInstanceWithSupportedEngineSolves) {
  SolverService service(ServiceConfig{.workers = 2});
  SolveRequest request = SmallRequest(23);
  request.engine = "ta";
  request.instance = request.instance.with_machines(2).with_objective(
      ScheduleObjective::kEarlyWork);
  const SolveResponse response = service.Submit(std::move(request)).get();
  EXPECT_EQ(response.status, SolveStatus::kOk);
  EXPECT_NO_THROW(ValidateSequence(response.result.best, 12));
  ASSERT_EQ(response.result.best_splits.size(), 1u);
  EXPECT_GE(response.result.best_splits[0], 0);
  EXPECT_LE(response.result.best_splits[0], 12);

  // The variant fields are part of the canonical key: the same request is
  // a cache hit, the single-machine twin is not.
  SolveRequest again = SmallRequest(24);
  again.engine = "ta";
  again.instance = again.instance.with_machines(2).with_objective(
      ScheduleObjective::kEarlyWork);
  const SolveResponse hit = service.Submit(std::move(again)).get();
  EXPECT_EQ(hit.status, SolveStatus::kCacheHit);
  EXPECT_EQ(hit.result.best_splits, response.result.best_splits);
  EXPECT_EQ(hit.result.best_cost, response.result.best_cost);

  SolveRequest plain = SmallRequest(25);
  plain.engine = "ta";
  const SolveResponse miss = service.Submit(std::move(plain)).get();
  EXPECT_EQ(miss.status, SolveStatus::kOk);
  EXPECT_TRUE(miss.result.best_splits.empty());
}

TEST(SolverService, UnrestrictedUcddcpInstancePassesValidation) {
  EXPECT_TRUE(
      ValidateRequestInstance(cdd::testing::RandomUcddcp(8, 1.2, 3))
          .empty());
  EXPECT_TRUE(ValidateRequestInstance(cdd::testing::RandomCdd(8, 0.4, 3))
                  .empty());  // restricted CDD is fine — only UCDDCP gates
}

TEST(SolverService, CacheHitIsBitIdenticalToFreshSolve) {
  SolverService service(ServiceConfig{.workers = 1});
  const SolveResponse first = service.Submit(SmallRequest(1)).get();
  ASSERT_EQ(first.status, SolveStatus::kOk);

  const SolveResponse second = service.Submit(SmallRequest(2)).get();
  EXPECT_EQ(second.status, SolveStatus::kCacheHit);
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(second.result.best, first.result.best);
  EXPECT_EQ(second.result.best_cost, first.result.best_cost);
  EXPECT_EQ(service.metrics().counter("cache_hits").value(), 1u);
}

TEST(SolverService, DifferentOptionsDoNotShareCacheEntries) {
  SolverService service(ServiceConfig{.workers = 1});
  const SolveResponse a = service.Submit(SmallRequest(1)).get();
  ASSERT_EQ(a.status, SolveStatus::kOk);

  SolveRequest changed = SmallRequest(2);
  changed.options.seed = 8;  // result-determining → different key
  const SolveResponse b = service.Submit(std::move(changed)).get();
  EXPECT_EQ(b.status, SolveStatus::kOk);
  EXPECT_FALSE(b.from_cache);
}

// --- deadlines -------------------------------------------------------------

TEST(SolverService, DeadlineCancelsALongSaRunEarly) {
  SolverService service(ServiceConfig{.workers = 1});

  SolveRequest request;
  request.id = 9;
  request.instance = cdd::testing::RandomCdd(40, 0.6, 55);
  request.engine = "sa";
  // A budget that would take minutes if run to completion ...
  request.options.generations = 500'000'000;
  // ... against a 50 ms wall-clock deadline.
  request.deadline = milliseconds(50);

  const auto t0 = std::chrono::steady_clock::now();
  const SolveResponse response = service.Submit(std::move(request)).get();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();

  // The run was provably cancelled early: it stopped with a fraction of
  // its budget spent, in wall time on the order of the deadline rather
  // than the budget.
  EXPECT_EQ(response.status, SolveStatus::kDeadlineExpired);
  EXPECT_TRUE(response.result.stopped);
  EXPECT_LT(response.result.evaluations, 500'000'000u);
  EXPECT_LT(wall_ms, 5000.0);

  // Best-so-far is still a usable schedule.
  EXPECT_TRUE(response.ok());
  EXPECT_NO_THROW(ValidateSequence(response.result.best, 40));
  EXPECT_EQ(service.metrics().counter("deadline_expired").value(), 1u);
}

TEST(SolverService, TruncatedRunsAreNotCached) {
  SolverService service(ServiceConfig{.workers = 1});

  SolveRequest truncated;
  truncated.instance = cdd::testing::RandomCdd(40, 0.6, 56);
  truncated.engine = "sa";
  truncated.options.generations = 500'000'000;
  truncated.deadline = milliseconds(30);
  const SolveResponse first = service.Submit(std::move(truncated)).get();
  ASSERT_EQ(first.status, SolveStatus::kDeadlineExpired);

  // Same canonical key (deadline is not part of it), sane budget this
  // time: must be a fresh solve, not the poisoned partial result.
  SolveRequest again;
  again.instance = cdd::testing::RandomCdd(40, 0.6, 56);
  again.engine = "sa";
  again.options.generations = 500'000'000;
  again.deadline = milliseconds(30);
  const SolveResponse second = service.Submit(std::move(again)).get();
  EXPECT_FALSE(second.from_cache);
  EXPECT_NE(second.status, SolveStatus::kCacheHit);
}

TEST(SolverService, DeadlineExpiredWhileQueuedSkipsTheSolve) {
  // One worker pinned on a slow job; a second job with a tiny deadline
  // waits behind it longer than its budget and must be answered without
  // ever running its engine.
  std::atomic<bool> release{false};
  EngineRegistry registry;
  registry.Register("slow", [&release](const Instance&,
                                       const EngineOptions& options) {
    while (!release.load() && !options.stop.stop_requested()) {
      std::this_thread::sleep_for(milliseconds(1));
    }
    EngineRun run;
    run.result.best = {0};
    run.result.stopped = options.stop.stop_requested();
    return run;
  });
  registry.Register("never-runs", [](const Instance&,
                                     const EngineOptions&) {
    ADD_FAILURE() << "expired-in-queue request must not reach its engine";
    return EngineRun{};
  });

  SolverService service(
      ServiceConfig{.workers = 1, .cache_capacity = 0}, registry);

  SolveRequest blocker;
  blocker.instance = cdd::testing::PaperExampleCdd();
  blocker.engine = "slow";
  std::future<SolveResponse> slow = service.Submit(std::move(blocker));

  std::this_thread::sleep_for(milliseconds(20));  // let the worker pick it up
  SolveRequest doomed;
  doomed.instance = cdd::testing::PaperExampleCdd();
  doomed.engine = "never-runs";
  doomed.deadline = milliseconds(10);
  std::future<SolveResponse> expired = service.Submit(std::move(doomed));

  std::this_thread::sleep_for(milliseconds(50));  // deadline passes in queue
  release.store(true);

  EXPECT_TRUE(slow.get().ok());
  const SolveResponse response = expired.get();
  EXPECT_EQ(response.status, SolveStatus::kDeadlineExpired);
  EXPECT_FALSE(response.ok());  // no solve ran: no best-so-far to return
}

// --- backpressure ----------------------------------------------------------

TEST(SolverService, FullQueueRejectsSynchronously) {
  std::atomic<bool> release{false};
  EngineRegistry registry;
  registry.Register("slow", [&release](const Instance&,
                                       const EngineOptions& options) {
    while (!release.load() && !options.stop.stop_requested()) {
      std::this_thread::sleep_for(milliseconds(1));
    }
    EngineRun run;
    run.result.best = {0};
    return run;
  });

  SolverService service(
      ServiceConfig{.workers = 1, .queue_capacity = 2, .cache_capacity = 0},
      registry);

  // Occupy the worker, then fill the queue.  Distinct instances so the
  // cache fast path cannot interfere even in principle.
  std::vector<std::future<SolveResponse>> accepted;
  for (std::uint32_t i = 0; i < 8; ++i) {
    SolveRequest request;
    request.id = i;
    request.instance = cdd::testing::RandomCdd(6, 0.5, 200 + i);
    request.engine = "slow";
    accepted.push_back(service.Submit(std::move(request)));
  }

  // worker(1) + queue(2) = 3 can be in flight; give the worker a moment
  // to drain the first job off the queue, then everything else must have
  // been rejected synchronously.
  std::size_t rejected = 0;
  for (std::future<SolveResponse>& future : accepted) {
    if (future.wait_for(milliseconds(0)) == std::future_status::ready) {
      EXPECT_EQ(future.get().status, SolveStatus::kRejectedQueueFull);
      ++rejected;
    }
  }
  EXPECT_GE(rejected, 5u);  // 8 offered, at most 3 in flight
  EXPECT_EQ(service.metrics().counter("rejected_queue_full").value(),
            rejected);

  release.store(true);
  for (std::future<SolveResponse>& future : accepted) {
    if (future.valid() &&
        future.wait_for(milliseconds(0)) != std::future_status::ready) {
      EXPECT_TRUE(future.get().ok());
    }
  }
}

// --- shutdown --------------------------------------------------------------

TEST(SolverService, ShutdownDrainsQueuedWork) {
  SolverService service(ServiceConfig{.workers = 2});
  std::vector<std::future<SolveResponse>> futures;
  for (std::uint32_t i = 0; i < 12; ++i) {
    futures.push_back(service.Submit(SmallRequest(i, i)));
  }
  service.Shutdown();  // graceful: every accepted request completes
  for (std::future<SolveResponse>& future : futures) {
    const SolveResponse response = future.get();
    EXPECT_TRUE(response.status == SolveStatus::kOk ||
                response.status == SolveStatus::kCacheHit)
        << ToString(response.status);
  }
  // After shutdown, new submissions are answered kShuttingDown (a closed
  // queue, distinct from backpressure on a live one), not queued.
  const SolveResponse late = service.Submit(SmallRequest(99, 99)).get();
  EXPECT_EQ(late.status, SolveStatus::kShuttingDown);
  EXPECT_EQ(service.metrics().counter("rejected_shutdown").value(), 1u);
  EXPECT_EQ(service.metrics().counter("rejected_queue_full").value(), 0u);
}

TEST(SolverService, CancelAllStopsBusyWorkersAndAnswersEveryFuture) {
  // Workers busy on cooperative engines + a queue of waiting jobs:
  // CancelAll must stop the running jobs through their tokens and answer
  // everything still queued with kShutdown — no future may hang.
  EngineRegistry registry;
  std::atomic<int> started{0};
  registry.Register("hang-until-stopped",
                    [&started](const Instance&,
                               const EngineOptions& options) {
                      started.fetch_add(1);
                      while (!options.stop.stop_requested()) {
                        std::this_thread::sleep_for(milliseconds(1));
                      }
                      EngineRun run;
                      run.result.best = {0};
                      run.result.stopped = true;
                      return run;
                    });

  SolverService service(
      ServiceConfig{.workers = 2, .cache_capacity = 0}, registry);

  std::vector<std::future<SolveResponse>> futures;
  for (std::uint32_t i = 0; i < 6; ++i) {
    SolveRequest request;
    request.id = i;
    request.instance = cdd::testing::RandomCdd(6, 0.5, 300 + i);
    request.engine = "hang-until-stopped";
    futures.push_back(service.Submit(std::move(request)));
  }

  // Wait until both workers are provably inside an engine run.
  while (started.load() < 2) std::this_thread::sleep_for(milliseconds(1));

  service.CancelAll();

  std::size_t resolved = 0;
  for (std::future<SolveResponse>& future : futures) {
    const SolveResponse response = future.get();  // must not hang
    ++resolved;
    EXPECT_EQ(response.status, SolveStatus::kShutdown)
        << ToString(response.status);
  }
  EXPECT_EQ(resolved, futures.size());
}

// --- the acceptance workload ----------------------------------------------

TEST(SolverService, ThousandMixedRequestsNoneLostCacheWarm) {
  // The ISSUE's acceptance bar: >= 1000 mixed CDD/UCDDCP requests with
  // 25% duplicates through a small service — every future resolves, zero
  // requests lost, and the duplicate traffic actually hits the cache.
  constexpr std::size_t kRequests = 1000;
  constexpr std::size_t kUnique = 750;  // 25% re-offers

  const orlib::BiskupFeldmannGenerator gen(/*seed=*/3);
  std::vector<SolveRequest> pool;
  pool.reserve(kUnique);
  for (std::uint32_t u = 0; u < kUnique; ++u) {
    SolveRequest request;
    request.instance = (u % 2 == 0)
                           ? gen.Cdd(10 + u % 11, u, 0.2 + 0.2 * (u % 4))
                           : gen.Ucddcp(10 + u % 11, u);
    request.engine = (u % 3 == 0) ? "ta" : (u % 3 == 1) ? "es" : "sa";
    request.options.generations = 60;
    request.options.seed = 1 + u % 5;
    pool.push_back(std::move(request));
  }

  SolverService service(ServiceConfig{.workers = 4, .queue_capacity = 32});

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> resolved{0};
  std::atomic<std::size_t> lost{0};
  const auto client = [&] {
    for (;;) {
      const std::size_t k = next.fetch_add(1);
      if (k >= kRequests) break;
      SolveRequest request = pool[k % kUnique];  // k >= kUnique: duplicate
      request.id = k;
      for (;;) {
        SolveRequest attempt = request;
        const SolveResponse response =
            service.Submit(std::move(attempt)).get();
        if (response.status == SolveStatus::kRejectedQueueFull) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          continue;  // backpressure: retry, never drop
        }
        if (response.status == SolveStatus::kOk ||
            response.status == SolveStatus::kCacheHit) {
          resolved.fetch_add(1);
        } else {
          lost.fetch_add(1);
        }
        break;
      }
    }
  };

  std::vector<std::thread> clients;
  for (int c = 0; c < 8; ++c) clients.emplace_back(client);
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(resolved.load(), kRequests);
  EXPECT_EQ(lost.load(), 0u);

  const CacheStats cache = service.cache().stats();
  EXPECT_GT(cache.hits, 0u);  // the 25% duplicate traffic paid off
  // Every request was answered by exactly one of: a fresh solve, the
  // result cache, or a coalesced join onto an in-flight duplicate.  A
  // re-elected waiter counts twice (once joined, once completed), so it
  // is subtracted back out; nothing fails here, so it stays zero anyway.
  EXPECT_EQ(service.metrics().counter("completed").value() +
                service.metrics().counter("cache_hits").value() +
                service.metrics().counter("coalesced_joins").value() -
                service.metrics().counter("coalesce_reelected").value(),
            kRequests);
}

}  // namespace
}  // namespace cdd::serve

/// Record/replay: a recorded solve must replay bit-identically for every
/// deterministic engine, a tampered manifest must fail loudly, and the
/// SolverService must produce replayable manifests end-to-end.

#include "serve/replay.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/test_instances.hpp"
#include "orlib/biskup_feldmann.hpp"
#include "serve/service.hpp"
#include "trace/manifest.hpp"

namespace cdd::serve {
namespace {

/// Runs \p engine once through the registry and returns its manifest.
trace::ManifestRecord RecordOneRun(const std::string& engine,
                                   const EngineOptions& options,
                                   const Instance& instance) {
  const EngineFn* fn = EngineRegistry::Default().Find(engine);
  EXPECT_NE(fn, nullptr) << engine;
  const EngineRun run = (*fn)(instance, options);
  EXPECT_FALSE(run.result.stopped);
  return MakeManifestRecord(instance, engine, options, run.result);
}

EngineOptions SmallOptions() {
  EngineOptions options;
  options.generations = 200;
  options.seed = 11;
  options.ensemble = 96;
  options.block = 32;
  options.trajectory_stride = 10;
  return options;
}

TEST(Replay, SaRecordReplaysBitIdentically) {
  const Instance instance = cdd::testing::RandomCdd(15, 0.6, 1);
  const trace::ManifestRecord record =
      RecordOneRun("sa", SmallOptions(), instance);
  EXPECT_GT(record.trajectory_samples, 0u);
  EXPECT_NE(record.trajectory_digest, 0u);

  const ReplayOutcome outcome = ReplayRecord(record);
  EXPECT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.replayed_cost, record.best_cost);
  EXPECT_EQ(outcome.replayed_evaluations, record.evaluations);
}

TEST(Replay, DpsoRecordReplaysBitIdentically) {
  const Instance instance = cdd::testing::RandomCdd(15, 0.6, 2);
  const trace::ManifestRecord record =
      RecordOneRun("dpso", SmallOptions(), instance);
  const ReplayOutcome outcome = ReplayRecord(record);
  EXPECT_TRUE(outcome.ok) << outcome.error;
}

TEST(Replay, SurvivesManifestSerialization) {
  // The full loop the tooling uses: record -> JSONL -> parse -> replay.
  const Instance instance = cdd::testing::RandomCdd(12, 0.6, 3);
  const trace::ManifestRecord record =
      RecordOneRun("sa", SmallOptions(), instance);
  const trace::ManifestRecord parsed =
      trace::ParseManifestLine(trace::WriteManifestLine(record));
  const ReplayOutcome outcome = ReplayRecord(parsed);
  EXPECT_TRUE(outcome.ok) << outcome.error;
}

TEST(Replay, DetectsTamperedBestCost) {
  const Instance instance = cdd::testing::RandomCdd(12, 0.6, 4);
  trace::ManifestRecord record =
      RecordOneRun("sa", SmallOptions(), instance);
  record.best_cost += 1;
  const ReplayOutcome outcome = ReplayRecord(record);
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.error.find("best_cost"), std::string::npos)
      << outcome.error;
}

TEST(Replay, DetectsTamperedInstance) {
  const Instance instance = cdd::testing::RandomCdd(12, 0.6, 5);
  trace::ManifestRecord record =
      RecordOneRun("sa", SmallOptions(), instance);
  record.instance = Instance(record.instance.problem(),
                             record.instance.due_date() + 5,
                             record.instance.jobs());
  const ReplayOutcome outcome = ReplayRecord(record);
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.error.find("hash"), std::string::npos) << outcome.error;
}

TEST(Replay, RejectsUnknownEngine) {
  const Instance instance = cdd::testing::RandomCdd(12, 0.6, 6);
  trace::ManifestRecord record =
      RecordOneRun("sa", SmallOptions(), instance);
  record.engine = "does-not-exist";
  const ReplayOutcome outcome = ReplayRecord(record);
  EXPECT_FALSE(outcome.ok);
}

TEST(Replay, StreamSeparatesGoodAndBadLines) {
  const Instance instance = cdd::testing::RandomCdd(12, 0.6, 7);
  const trace::ManifestRecord good =
      RecordOneRun("sa", SmallOptions(), instance);
  trace::ManifestRecord bad = good;
  bad.best_cost += 100;

  std::stringstream in;
  in << trace::WriteManifestLine(good) << "\n"
     << "\n"  // blank lines are skipped, not failed
     << trace::WriteManifestLine(bad) << "\n"
     << "this is not json\n";
  std::ostringstream log;
  const ReplaySummary summary = ReplayStream(in, log);
  EXPECT_EQ(summary.total, 3u);
  EXPECT_EQ(summary.passed, 1u);
  EXPECT_EQ(summary.failed, 2u);
  EXPECT_FALSE(summary.all_ok());
}

TEST(Replay, EmptyStreamIsNotOk) {
  std::stringstream in("\n\n");
  std::ostringstream log;
  const ReplaySummary summary = ReplayStream(in, log);
  EXPECT_EQ(summary.total, 0u);
  EXPECT_FALSE(summary.all_ok());
}

TEST(Replay, ServiceManifestIsReplayable) {
  // End-to-end: a SolverService configured with manifest_path records its
  // completed solves, and the file it leaves behind replays clean.
  const std::string path =
      ::testing::TempDir() + "/service_manifest_test.jsonl";
  std::remove(path.c_str());
  {
    ServiceConfig config;
    config.workers = 1;
    config.manifest_path = path;
    SolverService service(config);

    SolveRequest request;
    request.id = 1;
    request.instance = cdd::testing::RandomCdd(12, 0.6, 8);
    request.engine = "sa";
    request.options.generations = 100;
    request.options.seed = 9;
    const SolveResponse response = service.Submit(std::move(request)).get();
    ASSERT_EQ(response.status, SolveStatus::kOk);

    // A cache hit repeats the answer without re-solving — it must NOT
    // append a second manifest line (replay would just repeat work).
    SolveRequest again;
    again.id = 2;
    again.instance = cdd::testing::RandomCdd(12, 0.6, 8);
    again.engine = "sa";
    again.options.generations = 100;
    again.options.seed = 9;
    ASSERT_EQ(service.Submit(std::move(again)).get().status,
              SolveStatus::kCacheHit);
  }  // service drains and the stream flushes on destruction

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::ostringstream log;
  const ReplaySummary summary = ReplayStream(in, log);
  EXPECT_EQ(summary.total, 1u) << log.str();
  EXPECT_TRUE(summary.all_ok()) << log.str();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cdd::serve

/// Request-scoped pool handoff: the service lends one CandidatePool per
/// solve to engines that can stage their generations in it, with zero
/// copies on host-side placements (pinned down by counting trace events),
/// modeled staging on device placements, graceful host fallback when the
/// configured allocator fails, and bit-identical results on every backend.

#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "common/test_instances.hpp"
#include "core/pool_allocator.hpp"
#include "serve/service.hpp"
#include "trace/tracer.hpp"

namespace cdd::serve {
namespace {

SolveRequest Request(std::uint64_t id, const std::string& engine) {
  SolveRequest request;
  request.id = id;
  request.instance = cdd::testing::RandomCdd(12, 0.6, 100);
  request.engine = engine;
  request.options.generations = 60;
  request.options.seed = 7;
  return request;
}

std::size_t CountEvents(const std::string& json, const std::string& name) {
  const std::string needle = "\"name\":\"" + name + "\"";
  std::size_t count = 0;
  for (std::size_t pos = json.find(needle); pos != std::string::npos;
       pos = json.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

/// Runs one service over \p engines with tracing on and returns the
/// exported Chrome trace (workers joined first, so producers are
/// quiescent).  \p metrics_out receives the pool counters.
struct PoolCounters {
  std::uint64_t handoffs = 0;
  std::uint64_t staging_copies = 0;
  std::uint64_t fallbacks = 0;
};

std::string TracedRun(ServiceConfig config,
                      const std::vector<std::string>& engines,
                      PoolCounters* counters) {
  trace::ResetForTest();
  trace::SetEnabled(true);
  std::string json;
  {
    SolverService service(config);
    std::uint64_t id = 1;
    for (const std::string& engine : engines) {
      const SolveResponse response =
          service.Submit(Request(id++, engine)).get();
      EXPECT_EQ(response.status, SolveStatus::kOk) << engine;
    }
    counters->handoffs =
        service.metrics().counter("pool_handoffs").value();
    counters->staging_copies =
        service.metrics().counter("pool_staging_copies").value();
    counters->fallbacks =
        service.metrics().counter("pool_alloc_fallbacks").value();
    service.Shutdown();
  }
  trace::SetEnabled(false);
  std::ostringstream out;
  trace::ExportChromeTrace(out);
  return out.str();
}

TEST(PoolHandoff, HostPlacementLendsWithZeroCopies) {
  // The tentpole's zero-copy claim: a host-placed pool handed to two
  // different engines produces not a single modeled transfer — no
  // staging instants, no simulated H2D/D2H, no fallback.
  ServiceConfig config{.workers = 1};
  config.pool_backend = "host";
  PoolCounters counters;
  const std::string json = TracedRun(config, {"sa", "dpso"}, &counters);

  EXPECT_EQ(counters.handoffs, 2u);
  EXPECT_EQ(counters.staging_copies, 0u);
  EXPECT_EQ(counters.fallbacks, 0u);
  EXPECT_EQ(CountEvents(json, "serve.pool_stage_h2d"), 0u);
  EXPECT_EQ(CountEvents(json, "serve.pool_stage_d2h"), 0u);
  EXPECT_EQ(CountEvents(json, "serve.pool_alloc_fallback"), 0u);
  EXPECT_EQ(CountEvents(json, "h2d"), 0u);  // no simulated transfers at all
  EXPECT_EQ(CountEvents(json, "d2h"), 0u);
}

TEST(PoolHandoff, PinnedPlacementIsAlsoZeroCopy) {
  ServiceConfig config{.workers = 1};
  config.pool_backend = "pinned";
  PoolCounters counters;
  const std::string json = TracedRun(config, {"sa", "ta"}, &counters);
  EXPECT_EQ(counters.handoffs, 2u);
  EXPECT_EQ(counters.staging_copies, 0u);
  EXPECT_EQ(CountEvents(json, "serve.pool_stage_h2d"), 0u);
  EXPECT_EQ(CountEvents(json, "serve.pool_stage_d2h"), 0u);
}

TEST(PoolHandoff, DevicePlacementChargesStagingPerHandoff) {
  // A device-resident pool lent to a host engine pays the modeled bounce:
  // rows in (H2D) and costs out (D2H), once per handoff.
  ServiceConfig config{.workers = 1};
  config.pool_backend = "device";
  PoolCounters counters;
  const std::string json = TracedRun(config, {"sa"}, &counters);
  EXPECT_EQ(counters.handoffs, 1u);
  EXPECT_EQ(counters.staging_copies, 2u);
  EXPECT_EQ(counters.fallbacks, 0u);
  EXPECT_EQ(CountEvents(json, "serve.pool_stage_h2d"), 1u);
  EXPECT_EQ(CountEvents(json, "serve.pool_stage_d2h"), 1u);
}

TEST(PoolHandoff, DevicePoolsAreReusedAcrossSameShapeRequests) {
  // Two uncached solves of same-shape instances on the device backend:
  // the second must be served from the idle-pool free-list instead of
  // allocating a fresh device pool.  Reuse changes allocation only — the
  // modeled staging bounce is still charged once per handoff.
  ServiceConfig config{.workers = 1};
  config.pool_backend = "device";
  SolverService service(config);
  SolveRequest first = Request(1, "sa");
  SolveRequest second = Request(2, "sa");
  second.options.seed = 99;  // different cache key, identical pool shape
  EXPECT_EQ(service.Submit(std::move(first)).get().status,
            SolveStatus::kOk);
  EXPECT_EQ(service.Submit(std::move(second)).get().status,
            SolveStatus::kOk);
  EXPECT_EQ(service.metrics().counter("pool_reuse_hits").value(), 1u);
  EXPECT_EQ(service.metrics().counter("pool_handoffs").value(), 2u);
  EXPECT_EQ(service.metrics().counter("pool_staging_copies").value(), 4u);
}

TEST(PoolHandoff, FreeListKeysOnMachineCount) {
  // The free-list shape key includes the machine count: a multi-machine
  // request must not be handed an idle single-machine pool of the same n
  // and capacity (it would have no splits sections), and vice versa.
  ServiceConfig config{.workers = 1};
  config.pool_backend = "device";
  SolverService service(config);
  SolveRequest plain = Request(1, "sa");
  SolveRequest multi = Request(2, "sa");
  multi.instance = multi.instance.with_machines(3);
  SolveRequest multi_again = Request(3, "sa");
  multi_again.instance = multi_again.instance.with_machines(3);
  multi_again.options.seed = 99;  // different cache key, same pool shape
  EXPECT_EQ(service.Submit(std::move(plain)).get().status,
            SolveStatus::kOk);
  EXPECT_EQ(service.Submit(std::move(multi)).get().status,
            SolveStatus::kOk);
  // plain -> multi: no reuse (machine counts differ); multi -> multi: hit.
  EXPECT_EQ(service.metrics().counter("pool_reuse_hits").value(), 0u);
  EXPECT_EQ(service.Submit(std::move(multi_again)).get().status,
            SolveStatus::kOk);
  EXPECT_EQ(service.metrics().counter("pool_reuse_hits").value(), 1u);
}

TEST(ExecConfig, ExplicitServiceBackendIsHonored) {
  // An explicit ServiceConfig::exec_backend bypasses the oversubscription
  // guard entirely; the resolved value is observable on the service.
  ServiceConfig config{.workers = 4};
  config.exec_backend = "host-parallel";
  {
    SolverService service(config);
    EXPECT_EQ(service.exec_backend(),
              sim::exec::ExecBackend::kHostParallel);
    EXPECT_EQ(service.metrics().counter("exec_clamped").value(), 0u);
  }
  config.exec_backend = "serial";
  SolverService service(config);
  EXPECT_EQ(service.exec_backend(), sim::exec::ExecBackend::kSerial);
  // A device engine still answers correctly under the explicit setting.
  const SolveResponse response = service.Submit(Request(1, "psa")).get();
  EXPECT_EQ(response.status, SolveStatus::kOk);
}

TEST(PoolHandoff, EnginesWithPrivateBuffersAreNotLentAPool) {
  // "host" fans out per-chain pools and would serialize on a shared one.
  ServiceConfig config{.workers = 1};
  config.pool_backend = "device";
  PoolCounters counters;
  SolveRequest request = Request(1, "host");
  request.options.chains = 2;
  request.options.generations = 30;
  trace::ResetForTest();
  {
    SolverService service(config);
    const SolveResponse response = service.Submit(std::move(request)).get();
    EXPECT_EQ(response.status, SolveStatus::kOk);
    counters.handoffs = service.metrics().counter("pool_handoffs").value();
    counters.staging_copies =
        service.metrics().counter("pool_staging_copies").value();
  }
  EXPECT_EQ(counters.handoffs, 0u);
  EXPECT_EQ(counters.staging_copies, 0u);
}

/// Claims to be the pinned backend but never delivers memory.
class FailingAllocator final : public core::PoolAllocator {
 public:
  void* Allocate(std::size_t, std::size_t) override { return nullptr; }
  void Deallocate(void*, std::size_t) override {}
  core::PoolBackend backend() const override {
    return core::PoolBackend::kPinned;
  }
};

TEST(PoolHandoff, AllocatorFailureFallsBackToHostAndIsObservable) {
  // Reference answer from an ordinary host-placed service.
  ServiceConfig host_config{.workers = 1};
  host_config.pool_backend = "host";
  SolveResponse expected;
  {
    SolverService service(host_config);
    expected = service.Submit(Request(1, "sa")).get();
    ASSERT_EQ(expected.status, SolveStatus::kOk);
  }

  FailingAllocator failing;
  ServiceConfig config{.workers = 1};
  config.pool_allocator = &failing;
  PoolCounters counters;
  const std::string json = TracedRun(config, {"sa"}, &counters);

  // The request still succeeded (TracedRun asserts kOk), the degradation
  // was counted and traced, and the answer is the host answer, bit for
  // bit — fallback changes placement, never results.
  EXPECT_EQ(counters.handoffs, 1u);
  EXPECT_EQ(counters.fallbacks, 1u);
  EXPECT_EQ(counters.staging_copies, 0u);  // fell back to host: zero-copy
  EXPECT_EQ(CountEvents(json, "serve.pool_alloc_fallback"), 1u);
}

TEST(PoolHandoff, ResultsAreBitIdenticalAcrossAllBackends) {
  SolveResponse reference;
  {
    ServiceConfig config{.workers = 1};
    config.pool_backend = "host";
    SolverService service(config);
    reference = service.Submit(Request(1, "dpso")).get();
    ASSERT_EQ(reference.status, SolveStatus::kOk);
  }
  for (const std::string backend : {"pinned", "device", "numa"}) {
    ServiceConfig config{.workers = 1};
    config.pool_backend = backend;
    SolverService service(config);
    EXPECT_EQ(service.pool_backend(),
              [&] {
                core::PoolBackend parsed = core::PoolBackend::kHost;
                core::ParsePoolBackend(backend, &parsed);
                return parsed;
              }());
    const SolveResponse response = service.Submit(Request(1, "dpso")).get();
    ASSERT_EQ(response.status, SolveStatus::kOk) << backend;
    EXPECT_EQ(response.result.best_cost, reference.result.best_cost)
        << backend;
    EXPECT_EQ(response.result.evaluations, reference.result.evaluations)
        << backend;
    EXPECT_EQ(response.result.best, reference.result.best) << backend;
  }
}

TEST(PoolHandoff, CapacityHintsMatchEngineNeeds) {
  const EngineOptions options;
  EXPECT_EQ(PoolCapacityHint("sa", options), 1u);
  EXPECT_EQ(PoolCapacityHint("ta", options), 1u);
  EXPECT_GT(PoolCapacityHint("dpso", options), 1u);
  EXPECT_GT(PoolCapacityHint("es", options), 1u);
  EXPECT_EQ(PoolCapacityHint("host", options), 0u);
  EXPECT_EQ(PoolCapacityHint("psa", options), 0u);
  EXPECT_EQ(PoolCapacityHint("pdpso", options), 0u);
  EXPECT_EQ(PoolCapacityHint("psa-sync", options), 0u);
  EXPECT_EQ(PoolCapacityHint("nonsense", options), 0u);

  EXPECT_TRUE(IsDeviceEngine("psa"));
  EXPECT_TRUE(IsDeviceEngine("pdpso"));
  EXPECT_TRUE(IsDeviceEngine("psa-sync"));
  EXPECT_FALSE(IsDeviceEngine("sa"));
  EXPECT_FALSE(IsDeviceEngine("host"));
}

}  // namespace
}  // namespace cdd::serve

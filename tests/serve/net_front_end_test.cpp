/// The epoll socket front-end end-to-end: request/response round-trips
/// over a real TCP connection, keep-alive reuse, per-frame errors that
/// leave the connection usable, broken framing that answers once and
/// closes, and the max_conns accept cap.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "common/test_instances.hpp"
#include "serve/net/client.hpp"
#include "serve/net/frame.hpp"
#include "serve/net/front_end.hpp"
#include "serve/net/wire.hpp"
#include "serve/service.hpp"

namespace cdd::serve::net {
namespace {

SolveRequest SmallRequest(std::uint64_t id) {
  SolveRequest request;
  request.id = id;
  request.instance = cdd::testing::PaperExampleCdd();
  request.engine = "sa";
  request.options.generations = 100;
  return request;
}

bool AwaitCounter(SolverService& service, const char* name,
                  std::uint64_t at_least) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (service.metrics().counter(name).value() < at_least) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

TEST(FrontEnd, RoundTripAndKeepAlive) {
  ServiceConfig config;
  config.workers = 2;
  SolverService service(config);
  FrontEndConfig net;
  net.port = 0;  // ephemeral
  FrontEnd front_end(net, service);
  ASSERT_GT(front_end.port(), 0);

  BlockingClient client("127.0.0.1", front_end.port());
  SolveResponse first;
  for (std::uint64_t i = 0; i < 3; ++i) {
    const SolveResponse response = client.Call(SmallRequest(i));
    EXPECT_EQ(response.id, i);
    ASSERT_TRUE(response.status == SolveStatus::kOk ||
                response.status == SolveStatus::kCacheHit);
    EXPECT_FALSE(response.result.best.empty());
    if (i == 0) {
      first = response;
    } else {
      // Identical re-offers are cache hits with the identical result.
      EXPECT_EQ(response.status, SolveStatus::kCacheHit);
      EXPECT_EQ(response.result.best, first.result.best);
      EXPECT_EQ(response.result.best_cost, first.result.best_cost);
    }
  }
  // Keep-alive: one accepted connection served all three frames.
  EXPECT_EQ(front_end.connections(), 1u);
  EXPECT_EQ(service.metrics().counter("net_accepted").value(), 1u);
  EXPECT_EQ(service.metrics().counter("net_frames_in").value(), 3u);
  EXPECT_EQ(service.metrics().counter("net_frames_out").value(), 3u);
  front_end.Stop();
  service.Shutdown();
}

TEST(FrontEnd, MalformedRequestGetsErrorReplyConnectionSurvives) {
  ServiceConfig config;
  config.workers = 1;
  SolverService service(config);
  FrontEndConfig net;
  net.port = 0;
  FrontEnd front_end(net, service);

  BlockingClient client("127.0.0.1", front_end.port());
  // Valid frame, defective payload: per-frame error, stream stays in sync.
  client.SendRaw(EncodeFrame(R"({"op":"nope"})"));
  const SolveResponse error = client.Receive();
  EXPECT_EQ(error.status, SolveStatus::kFailed);
  EXPECT_FALSE(error.error.empty());
  EXPECT_GE(service.metrics().counter("net_protocol_errors").value(), 1u);

  // The same connection still serves real requests afterwards.
  const SolveResponse good = client.Call(SmallRequest(4));
  EXPECT_EQ(good.id, 4u);
  EXPECT_EQ(good.status, SolveStatus::kOk);
  front_end.Stop();
  service.Shutdown();
}

TEST(FrontEnd, BrokenFramingAnswersOnceThenCloses) {
  ServiceConfig config;
  config.workers = 1;
  SolverService service(config);
  FrontEndConfig net;
  net.port = 0;
  FrontEnd front_end(net, service);

  BlockingClient client("127.0.0.1", front_end.port());
  // A zero length prefix cannot be resynchronized from.
  client.SendRaw(std::string(4, '\0'));
  const SolveResponse error = client.Receive();
  EXPECT_EQ(error.status, SolveStatus::kFailed);
  // The server hangs up after draining the error reply.
  EXPECT_THROW(client.ReceiveFramePayload(), ClientError);
  front_end.Stop();
  service.Shutdown();
}

TEST(FrontEnd, MaxConnsCapClosesExcessClients) {
  ServiceConfig config;
  config.workers = 1;
  SolverService service(config);
  FrontEndConfig net;
  net.port = 0;
  net.max_conns = 1;
  FrontEnd front_end(net, service);

  BlockingClient first("127.0.0.1", front_end.port());
  EXPECT_EQ(first.Call(SmallRequest(1)).status, SolveStatus::kOk);

  // The TCP handshake still succeeds (kernel backlog), but the front-end
  // closes the excess connection at accept time.
  BlockingClient second("127.0.0.1", front_end.port());
  ASSERT_TRUE(AwaitCounter(service, "net_rejected_max_conns", 1));
  EXPECT_THROW(
      {
        second.Send(SmallRequest(2));
        (void)second.Receive();
      },
      ClientError);

  // The first connection is unaffected (identical re-offer: cache hit).
  EXPECT_EQ(first.Call(SmallRequest(3)).status, SolveStatus::kCacheHit);
  front_end.Stop();
  service.Shutdown();
}

}  // namespace
}  // namespace cdd::serve::net

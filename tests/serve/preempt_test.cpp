/// Checkpoint-boundary preemption in the SolverService: with a
/// preempt_slice configured, a higher-priority arrival pauses the running
/// lower-priority solve at its next Step boundary, runs to completion on
/// the same worker, and the paused solve then resumes and still finishes.
/// Also pins the cache-key contract for the new race options.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>

#include "common/test_instances.hpp"
#include "meta/engine.hpp"
#include "serve/request.hpp"
#include "serve/service.hpp"

namespace cdd::serve {
namespace {

/// Deterministic stand-in engine: each Step unit burns ~1ms of wall time,
/// so a solve is "long" in a way the test can reason about.  The started
/// flag lets the test wait until the engine is actually on a worker.
class PacedEngine final : public meta::Engine {
 public:
  PacedEngine(std::uint64_t budget, std::atomic<bool>* started)
      : budget_(budget), started_(started) {}

  meta::StepStatus Step(std::uint64_t units) override {
    if (started_ != nullptr) started_->store(true);
    while (units > 0 && consumed_ < budget_) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ++consumed_;
      --units;
    }
    return consumed_ < budget_ ? meta::StepStatus::kRunning
                               : meta::StepStatus::kDone;
  }

  std::uint64_t Remaining() const override { return budget_ - consumed_; }
  Cost BestCost() const override { return 0; }

  std::unique_ptr<meta::EngineCheckpoint> Checkpoint() const override {
    return std::make_unique<meta::EngineCheckpoint>();
  }
  void Restore(const meta::EngineCheckpoint&) override {}

  meta::EngineOutput Finish() override {
    meta::EngineOutput out;
    out.result.best_cost = 0;
    out.result.evaluations = consumed_;
    return out;
  }

 private:
  std::uint64_t budget_;
  std::uint64_t consumed_ = 0;
  std::atomic<bool>* started_;
};

TEST(ServicePreemption, HigherPriorityArrivalRunsAtSliceBoundary) {
  std::atomic<bool> slow_started{false};
  EngineRegistry registry;
  registry.RegisterFactory(
      "slow", [&](const Instance&, const EngineOptions&) {
        return std::make_unique<PacedEngine>(300, &slow_started);
      });
  registry.RegisterFactory(
      "fast", [](const Instance&, const EngineOptions&) {
        return std::make_unique<PacedEngine>(1, nullptr);
      });

  ServiceConfig config;
  config.workers = 1;
  config.cache_capacity = 0;
  config.preempt_slice = 2;
  SolverService service(config, registry);

  SolveRequest low;
  low.id = 1;
  low.instance = cdd::testing::PaperExampleCdd();
  low.engine = "slow";
  low.priority = 0;
  std::future<SolveResponse> low_future = service.Submit(std::move(low));

  // Wait until the low-priority solve is actually running on the single
  // worker, so the high-priority submit below must preempt (it cannot
  // just win the queue).
  while (!slow_started.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  SolveRequest high;
  high.id = 2;
  high.instance = cdd::testing::PaperExampleCdd();
  high.engine = "fast";
  high.priority = 5;
  std::future<SolveResponse> high_future = service.Submit(std::move(high));

  const SolveResponse high_response = high_future.get();
  EXPECT_EQ(high_response.status, SolveStatus::kOk);
  // The high-priority request finished while the low-priority solve (with
  // hundreds of milliseconds of budget left) was still paused on the
  // worker's stack: that is a preemption, and the counter proves it.
  EXPECT_EQ(low_future.wait_for(std::chrono::milliseconds(0)),
            std::future_status::timeout);
  EXPECT_GE(service.metrics().counter("preemptions").value(), 1u);

  const SolveResponse low_response = low_future.get();
  EXPECT_EQ(low_response.status, SolveStatus::kOk);
  EXPECT_EQ(low_response.result.evaluations, 300u);  // resumed, not lost
}

TEST(ServicePreemption, ZeroSliceKeepsTheOneShotPath) {
  EngineRegistry registry;
  registry.RegisterFactory(
      "fast", [](const Instance&, const EngineOptions&) {
        return std::make_unique<PacedEngine>(1, nullptr);
      });
  ServiceConfig config;
  config.workers = 1;
  config.preempt_slice = 0;  // default: no preemption machinery
  SolverService service(config, registry);

  SolveRequest request;
  request.instance = cdd::testing::PaperExampleCdd();
  request.engine = "fast";
  EXPECT_EQ(service.Submit(std::move(request)).get().status,
            SolveStatus::kOk);
  EXPECT_EQ(service.metrics().counter("preemptions").value(), 0u);
}

TEST(CacheKey, RaceOptionsAreHashedPriorityIsNot) {
  SolveRequest base;
  base.instance = cdd::testing::PaperExampleCdd();
  base.engine = "race";
  base.options.portfolio = "sa,ta";
  base.options.race_slice = 64;

  SolveRequest other_portfolio = base;
  other_portfolio.options.portfolio = "sa,dpso";
  EXPECT_NE(CacheKey(base), CacheKey(other_portfolio));

  SolveRequest other_slice = base;
  other_slice.options.race_slice = 128;
  EXPECT_NE(CacheKey(base), CacheKey(other_slice));

  // Priority (like deadline) orders work without changing results, so
  // requests differing only in priority share a cache entry.
  SolveRequest other_priority = base;
  other_priority.priority = 9;
  EXPECT_EQ(CacheKey(base), CacheKey(other_priority));
}

}  // namespace
}  // namespace cdd::serve

/// Sharded LRU ResultCache: hit/miss, eviction, recency refresh.

#include "serve/result_cache.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace cdd::serve {
namespace {

ResultCache::Entry EntryWithCost(Cost cost) {
  ResultCache::Entry entry;
  entry.result.best = {0, 1, 2};
  entry.result.best_cost = cost;
  return entry;
}

/// Keys whose high 32 bits are zero all land in shard 0, which makes the
/// single-shard LRU order fully predictable.
std::uint64_t ShardZeroKey(std::uint64_t k) { return k & 0xffffffffULL; }

TEST(ResultCache, MissThenHit) {
  ResultCache cache(4, 1);
  EXPECT_EQ(cache.Get(42), nullptr);
  cache.Put(42, EntryWithCost(7));
  const auto entry = cache.Get(42);
  ASSERT_TRUE(entry != nullptr);
  EXPECT_EQ(entry->result.best_cost, 7);
  EXPECT_EQ(entry->result.best, (Sequence{0, 1, 2}));

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCache, PutRefreshesExistingKey) {
  ResultCache cache(4, 1);
  cache.Put(1, EntryWithCost(10));
  cache.Put(1, EntryWithCost(20));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Get(1)->result.best_cost, 20);
}

TEST(ResultCache, EvictsLeastRecentlyUsed) {
  ResultCache cache(2, 1);
  cache.Put(ShardZeroKey(1), EntryWithCost(1));
  cache.Put(ShardZeroKey(2), EntryWithCost(2));
  cache.Put(ShardZeroKey(3), EntryWithCost(3));  // evicts key 1
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.Get(ShardZeroKey(1)), nullptr);
  EXPECT_TRUE(cache.Get(ShardZeroKey(2)) != nullptr);
  EXPECT_TRUE(cache.Get(ShardZeroKey(3)) != nullptr);
}

TEST(ResultCache, GetRefreshesRecency) {
  ResultCache cache(2, 1);
  cache.Put(ShardZeroKey(1), EntryWithCost(1));
  cache.Put(ShardZeroKey(2), EntryWithCost(2));
  // Touch 1, so 2 is now the LRU entry.
  EXPECT_TRUE(cache.Get(ShardZeroKey(1)) != nullptr);
  cache.Put(ShardZeroKey(3), EntryWithCost(3));  // evicts key 2, not 1
  EXPECT_TRUE(cache.Get(ShardZeroKey(1)) != nullptr);
  EXPECT_EQ(cache.Get(ShardZeroKey(2)), nullptr);
  EXPECT_TRUE(cache.Get(ShardZeroKey(3)) != nullptr);
}

TEST(ResultCache, ZeroCapacityDisables) {
  ResultCache cache(0);
  cache.Put(1, EntryWithCost(1));
  EXPECT_EQ(cache.Get(1), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  // The disabled fast path returns before touching any shard state, so
  // no miss is recorded either — Get mirrors the no-op Put exactly.
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
}

TEST(ResultCache, HitsShareTheEntryInsteadOfCopying) {
  ResultCache cache(4, 1);
  ResultCache::Entry entry = EntryWithCost(7);
  entry.result.trajectory.assign(10000, 7);  // the expensive payload
  cache.Put(42, std::move(entry));

  const auto first = cache.Get(42);
  const auto second = cache.Get(42);
  ASSERT_TRUE(first != nullptr);
  ASSERT_TRUE(second != nullptr);
  // Every hit hands back the same immutable entry: same object, same
  // trajectory storage — a refcount bump, not a deep copy.
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(first->result.trajectory.data(),
            second->result.trajectory.data());
  EXPECT_EQ(first->result.trajectory.size(), 10000u);

  // The shared entry outlives eviction of its key.
  cache.Put(ShardZeroKey(1), EntryWithCost(1));
  cache.Put(ShardZeroKey(2), EntryWithCost(2));
  cache.Put(ShardZeroKey(3), EntryWithCost(3));
  cache.Put(ShardZeroKey(4), EntryWithCost(4));
  EXPECT_EQ(first->result.best_cost, 7);
}

TEST(ResultCache, ShardCountIsClampedToCapacity) {
  // 2 entries cannot meaningfully spread over 8 shards; each shard must
  // still hold at least one entry.
  ResultCache cache(2, 8);
  EXPECT_LE(cache.shards(), 2u);
  EXPECT_GE(cache.shards(), 1u);
}

TEST(ResultCache, KeysSpreadAcrossShards) {
  // SplitMix-mixed keys differ in their high bits, so with capacity
  // comfortably above the key count nothing should be evicted even though
  // each shard only holds capacity/shards entries.
  ResultCache cache(64, 8);
  for (std::uint64_t k = 0; k < 32; ++k) {
    // Spread the keys like real CacheKey values (high bits vary).
    cache.Put(k * 0x9e3779b97f4a7c15ULL, EntryWithCost(static_cast<Cost>(k)));
  }
  EXPECT_EQ(cache.size(), 32u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(ResultCache, ConcurrentGetPutIsSafe) {
  ResultCache cache(128, 8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (std::uint64_t i = 0; i < 1000; ++i) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(t) << 40) | (i % 64);
        cache.Put(key * 0x9e3779b97f4a7c15ULL,
                  EntryWithCost(static_cast<Cost>(i)));
        cache.Get((i % 64) * 0x9e3779b97f4a7c15ULL);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_LE(cache.size(), 128u);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 4000u);
}

}  // namespace
}  // namespace cdd::serve

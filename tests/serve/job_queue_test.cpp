/// Bounded MPMC JobQueue: backpressure, drain-on-close, MPMC stress.

#include "serve/job_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace cdd::serve {
namespace {

TEST(JobQueue, FifoOrder) {
  JobQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(PushResult::kOk, queue.TryPush(int(i)));
  }
  EXPECT_EQ(queue.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    const auto item = queue.TryPop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  EXPECT_FALSE(queue.TryPop().has_value());
}

TEST(JobQueue, RejectsWhenFull) {
  JobQueue<int> queue(2);
  EXPECT_EQ(PushResult::kOk, queue.TryPush(1));
  EXPECT_EQ(PushResult::kOk, queue.TryPush(2));
  EXPECT_EQ(PushResult::kFull, queue.TryPush(3));  // backpressure, not blocking
  EXPECT_EQ(queue.size(), 2u);

  // Popping one frees one slot.
  EXPECT_TRUE(queue.TryPop().has_value());
  EXPECT_EQ(PushResult::kOk, queue.TryPush(3));
  EXPECT_EQ(PushResult::kFull, queue.TryPush(4));
}

TEST(JobQueue, FailedPushLeavesItemIntact) {
  // The TryPush contract: on failure the caller still owns the item —
  // the service relies on this to answer the rejection through the job's
  // still-valid promise.
  JobQueue<std::string> queue(1);
  EXPECT_EQ(PushResult::kOk, queue.TryPush("first"));
  std::string rejected = "keep me";
  EXPECT_EQ(PushResult::kFull, queue.TryPush(std::move(rejected)));
  EXPECT_EQ(rejected, "keep me");
}

TEST(JobQueue, ZeroCapacityIsClampedToOne) {
  JobQueue<int> queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_EQ(PushResult::kOk, queue.TryPush(1));
  EXPECT_EQ(PushResult::kFull, queue.TryPush(2));
}

TEST(JobQueue, CloseRejectsProducersButDrainsConsumers) {
  JobQueue<int> queue(8);
  EXPECT_EQ(PushResult::kOk, queue.TryPush(1));
  EXPECT_EQ(PushResult::kOk, queue.TryPush(2));
  queue.Close();
  EXPECT_TRUE(queue.closed());
  // Closed is reported as closed, not conflated with backpressure.
  EXPECT_EQ(PushResult::kClosed, queue.TryPush(3));

  // Accepted items are still delivered after Close ...
  EXPECT_EQ(queue.Pop(), std::optional<int>(1));
  EXPECT_EQ(queue.Pop(), std::optional<int>(2));
  // ... and only then does Pop signal "no more work ever".
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(JobQueue, CloseIsIdempotent) {
  JobQueue<int> queue(2);
  queue.Close();
  queue.Close();
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(JobQueue, CloseWakesBlockedConsumer) {
  JobQueue<int> queue(2);
  std::atomic<bool> woke{false};
  std::thread consumer([&] {
    EXPECT_FALSE(queue.Pop().has_value());  // blocks until Close
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(woke.load());
  queue.Close();
  consumer.join();
  EXPECT_TRUE(woke.load());
}

TEST(JobQueue, HigherPriorityPopsFirstFifoWithinLevel) {
  JobQueue<int> queue(8);
  EXPECT_EQ(PushResult::kOk, queue.TryPush(1, /*priority=*/0));
  EXPECT_EQ(PushResult::kOk, queue.TryPush(2, /*priority=*/5));
  EXPECT_EQ(PushResult::kOk, queue.TryPush(3, /*priority=*/5));
  EXPECT_EQ(PushResult::kOk, queue.TryPush(4, /*priority=*/-1));
  EXPECT_EQ(PushResult::kOk, queue.TryPush(5, /*priority=*/0));

  EXPECT_EQ(queue.TryPop(), std::optional<int>(2));  // highest level ...
  EXPECT_EQ(queue.TryPop(), std::optional<int>(3));  // ... FIFO within it
  EXPECT_EQ(queue.TryPop(), std::optional<int>(1));
  EXPECT_EQ(queue.TryPop(), std::optional<int>(5));
  EXPECT_EQ(queue.TryPop(), std::optional<int>(4));
}

TEST(JobQueue, MaxPriorityAndTryPopAbove) {
  JobQueue<int> queue(8);
  EXPECT_EQ(queue.MaxPriority(), JobQueue<int>::kNoPriority);
  EXPECT_FALSE(queue.TryPopAbove(0).has_value());

  EXPECT_EQ(PushResult::kOk, queue.TryPush(1, /*priority=*/0));
  EXPECT_EQ(PushResult::kOk, queue.TryPush(2, /*priority=*/3));
  EXPECT_EQ(queue.MaxPriority(), 3);

  // The preemption check: nothing strictly above 3, but 3 beats 0.
  EXPECT_FALSE(queue.TryPopAbove(3).has_value());
  EXPECT_EQ(queue.TryPopAbove(0), std::optional<int>(2));
  EXPECT_EQ(queue.MaxPriority(), 0);
  EXPECT_FALSE(queue.TryPopAbove(0).has_value());
  EXPECT_EQ(queue.size(), 1u);
}

TEST(JobQueue, MpmcStressDeliversEveryItemExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 500;
  JobQueue<int> queue(16);

  std::vector<std::atomic<int>> seen(kProducers * kPerProducer);
  std::atomic<int> rejected{0};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int value = p * kPerProducer + i;
        // Closed-loop retry: backpressure rejections are re-offered, so
        // every value eventually lands exactly once.
        while (queue.TryPush(int(value)) != PushResult::kOk) {
          rejected.fetch_add(1);
          std::this_thread::yield();
        }
      }
    });
  }

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (const auto item = queue.Pop()) {
        seen[static_cast<std::size_t>(*item)].fetch_add(1);
      }
    });
  }

  for (std::thread& t : producers) t.join();
  queue.Close();
  for (std::thread& t : consumers) t.join();

  for (const std::atomic<int>& count : seen) {
    EXPECT_EQ(count.load(), 1);
  }
  // The queue is 16 deep against 2000 offered items: with producers and
  // consumers racing, at least the bound must have been respected; the
  // rejection counter just documents that backpressure actually engaged
  // in this run or not — both are legal, losing an item is not.
  EXPECT_EQ(queue.size(), 0u);
}

}  // namespace
}  // namespace cdd::serve

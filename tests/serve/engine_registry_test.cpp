/// EngineRegistry: one name per engine, uniform adapters, stop tokens.

#include "serve/engine_registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/test_instances.hpp"
#include "core/sequence.hpp"

namespace cdd::serve {
namespace {

TEST(EngineRegistry, DefaultHasAllTenEngines) {
  const std::vector<std::string> names =
      EngineRegistry::Default().Names();
  const std::vector<std::string> expected = {
      "bnb",      "dpso", "es", "host", "pdpso",
      "psa", "psa-sync", "race", "sa",  "ta"};
  EXPECT_EQ(names, expected);  // Names() is sorted
}

TEST(EngineRegistry, UnknownNameReturnsNull) {
  const EngineRegistry& registry = EngineRegistry::Default();
  EXPECT_EQ(registry.Find("SA"), nullptr);  // names are case-sensitive
  EXPECT_EQ(registry.Find("gpu"), nullptr);
  EXPECT_EQ(registry.Find(""), nullptr);
}

TEST(EngineRegistry, RegisterReplacesAndFinds) {
  EngineRegistry registry;
  int calls = 0;
  registry.Register("x", [&calls](const Instance&, const EngineOptions&) {
    ++calls;
    return EngineRun{};
  });
  const EngineFn* fn = registry.Find("x");
  ASSERT_NE(fn, nullptr);
  (*fn)(cdd::testing::PaperExampleCdd(), EngineOptions{});
  EXPECT_EQ(calls, 1);

  registry.Register("x", [](const Instance&, const EngineOptions&) {
    return EngineRun{};
  });
  (*registry.Find("x"))(cdd::testing::PaperExampleCdd(), EngineOptions{});
  EXPECT_EQ(calls, 1);  // replaced, old adapter not called again
}

TEST(EngineRegistry, EveryEngineSolvesASmallInstance) {
  const Instance instance = cdd::testing::RandomCdd(10, 0.6, 17);
  const EngineRegistry& registry = EngineRegistry::Default();

  EngineOptions options;
  options.generations = 50;
  options.seed = 5;
  options.ensemble = 32;  // keep the simulated-GPU engines cheap
  options.block = 16;
  options.chains = 4;
  options.threads = 1;

  for (const std::string& name : registry.Names()) {
    const EngineFn* engine = registry.Find(name);
    ASSERT_NE(engine, nullptr) << name;
    const EngineRun run = (*engine)(instance, options);
    EXPECT_NO_THROW(ValidateSequence(run.result.best, 10)) << name;
    EXPECT_GE(run.result.best_cost, 0) << name;
    EXPECT_GT(run.result.evaluations, 0u) << name;
    EXPECT_FALSE(run.result.stopped) << name;
    // Simulated-GPU engines report modeled device time, host engines 0.
    const bool gpu =
        name == "psa" || name == "pdpso" || name == "psa-sync";
    if (gpu) {
      EXPECT_GT(run.device_seconds, 0.0) << name;
    } else {
      EXPECT_DOUBLE_EQ(run.device_seconds, 0.0) << name;
    }
  }
}

TEST(EngineRegistry, AdapterIsDeterministicPerSeed) {
  const Instance instance = cdd::testing::RandomCdd(12, 0.4, 23);
  const EngineFn* sa = EngineRegistry::Default().Find("sa");
  ASSERT_NE(sa, nullptr);
  EngineOptions options;
  options.generations = 200;
  options.seed = 9;
  const EngineRun a = (*sa)(instance, options);
  const EngineRun b = (*sa)(instance, options);
  EXPECT_EQ(a.result.best, b.result.best);
  EXPECT_EQ(a.result.best_cost, b.result.best_cost);
}

TEST(EngineRegistry, StopTokenTruncatesARun) {
  // A pre-stopped token must end the run far short of its budget while
  // still returning a valid best-so-far sequence.
  const Instance instance = cdd::testing::RandomCdd(30, 0.6, 31);
  StopSource source;
  source.RequestStop();

  EngineOptions options;
  options.generations = 2'000'000;  // would take far too long if honored
  options.stop = source.token();

  for (const std::string& name : {std::string("sa"), std::string("ta"),
                                  std::string("dpso"), std::string("es")}) {
    const EngineFn* engine = EngineRegistry::Default().Find(name);
    ASSERT_NE(engine, nullptr) << name;
    const EngineRun run = (*engine)(instance, options);
    EXPECT_TRUE(run.result.stopped) << name;
    EXPECT_NO_THROW(ValidateSequence(run.result.best, 30)) << name;
    EXPECT_LT(run.result.evaluations, options.generations) << name;
  }
}

}  // namespace
}  // namespace cdd::serve

/// Run manifests: write/parse round-trip, trajectory digest properties,
/// hostile engine names, malformed input, and tamper detection.

#include "trace/manifest.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/hash.hpp"
#include "orlib/biskup_feldmann.hpp"

namespace cdd::trace {
namespace {

ManifestRecord SampleRecord() {
  ManifestRecord record;
  record.engine = "sa";
  record.instance = orlib::BiskupFeldmannGenerator().Cdd(10, 0, 0.6);
  record.instance_hash = HashInstance(record.instance);
  record.options.generations = 500;
  record.options.seed = 42;
  record.options.trajectory_stride = 10;
  record.best_cost = 1234;
  record.evaluations = 501;
  record.trajectory_samples = 50;
  record.trajectory_digest = 0xdeadbeef;
  return record;
}

TEST(Manifest, WriteParseRoundTrip) {
  const ManifestRecord record = SampleRecord();
  const std::string line = WriteManifestLine(record);
  // One line, no embedded newline: JSONL-safe.
  EXPECT_EQ(line.find('\n'), std::string::npos);

  const ManifestRecord parsed = ParseManifestLine(line);
  EXPECT_EQ(parsed.engine, record.engine);
  EXPECT_EQ(parsed.instance, record.instance);
  EXPECT_EQ(parsed.instance_hash, record.instance_hash);
  EXPECT_EQ(parsed.options, record.options);
  EXPECT_EQ(parsed.best_cost, record.best_cost);
  EXPECT_EQ(parsed.evaluations, record.evaluations);
  EXPECT_EQ(parsed.trajectory_samples, record.trajectory_samples);
  EXPECT_EQ(parsed.trajectory_digest, record.trajectory_digest);
  EXPECT_NO_THROW(VerifyManifestIntegrity(parsed));
}

TEST(Manifest, RaceOptionsRoundTripAndStayOptional) {
  ManifestRecord record = SampleRecord();
  record.engine = "race";
  record.options.portfolio = "sa,ta,dpso";
  record.options.race_slice = 64;
  const ManifestRecord parsed = ParseManifestLine(WriteManifestLine(record));
  EXPECT_EQ(parsed.options.portfolio, "sa,ta,dpso");
  EXPECT_EQ(parsed.options.race_slice, 64u);
  EXPECT_EQ(parsed.options, record.options);

  // Lines written before the race fields existed (and every non-race line
  // since, which omits them) still parse, defaulting both fields.
  const ManifestRecord plain = SampleRecord();
  const std::string line = WriteManifestLine(plain);
  EXPECT_EQ(line.find("portfolio"), std::string::npos);
  EXPECT_EQ(line.find("race_slice"), std::string::npos);
  const ManifestRecord reparsed = ParseManifestLine(line);
  EXPECT_TRUE(reparsed.options.portfolio.empty());
  EXPECT_EQ(reparsed.options.race_slice, 0u);
}

TEST(Manifest, RoundTripsUcddcpInstances) {
  ManifestRecord record = SampleRecord();
  record.instance = orlib::BiskupFeldmannGenerator().Ucddcp(10, 0);
  record.instance_hash = HashInstance(record.instance);
  const ManifestRecord parsed = ParseManifestLine(WriteManifestLine(record));
  EXPECT_EQ(parsed.instance, record.instance);
  EXPECT_NO_THROW(VerifyManifestIntegrity(parsed));
}

TEST(Manifest, VariantFieldsRoundTripAndStayOptional) {
  // Parallel-machine and early-work instances round-trip through the
  // optional "machines"/"objective" members.
  ManifestRecord record = SampleRecord();
  record.instance = record.instance.with_machines(3).with_objective(
      ScheduleObjective::kEarlyWork);
  record.instance_hash = HashInstance(record.instance);
  const std::string line = WriteManifestLine(record);
  EXPECT_NE(line.find("\"machines\":3"), std::string::npos);
  EXPECT_NE(line.find("\"objective\":\"early-work\""), std::string::npos);
  const ManifestRecord parsed = ParseManifestLine(line);
  EXPECT_EQ(parsed.instance.machines(), 3);
  EXPECT_EQ(parsed.instance.objective(), ScheduleObjective::kEarlyWork);
  EXPECT_EQ(parsed.instance, record.instance);
  EXPECT_NO_THROW(VerifyManifestIntegrity(parsed));

  // Single-machine total-penalty lines omit both fields — they are
  // byte-identical to the pre-variant format, which is what lets
  // results/golden_manifest.jsonl replay unchanged.
  const std::string plain = WriteManifestLine(SampleRecord());
  EXPECT_EQ(plain.find("machines"), std::string::npos);
  EXPECT_EQ(plain.find("objective"), std::string::npos);
  const ManifestRecord reparsed = ParseManifestLine(plain);
  EXPECT_EQ(reparsed.instance.machines(), 1);
  EXPECT_EQ(reparsed.instance.objective(),
            ScheduleObjective::kTotalPenalty);
}

TEST(Manifest, PreVariantLinesStillParse) {
  // A line captured verbatim from the pre-variant writer (no "machines",
  // no "objective") must parse to a default-variant instance and survive
  // the integrity check — tampering with the variant fields must not.
  ManifestRecord record = SampleRecord();
  const std::string line = WriteManifestLine(record);
  const ManifestRecord parsed = ParseManifestLine(line);
  EXPECT_EQ(parsed.instance.machines(), 1);
  EXPECT_NO_THROW(VerifyManifestIntegrity(parsed));

  // Splicing "machines":2 into the recorded line changes the instance
  // hash, so the integrity check rejects the edit.
  const std::string needle = "\"due\":";
  const auto pos = line.find(needle);
  ASSERT_NE(pos, std::string::npos);
  std::string tampered = line;
  tampered.insert(pos, "\"machines\":2,");
  const ManifestRecord altered = ParseManifestLine(tampered);
  EXPECT_EQ(altered.instance.machines(), 2);
  EXPECT_THROW(VerifyManifestIntegrity(altered), ManifestError);
}

TEST(Manifest, RejectsUnknownObjective) {
  ManifestRecord record = SampleRecord();
  const std::string line = WriteManifestLine(record);
  const std::string needle = "\"due\":";
  const auto pos = line.find(needle);
  ASSERT_NE(pos, std::string::npos);
  // "total-penalty" is the accepted spelling of the default; anything
  // else is a hard parse error, not a silent fallback.
  std::string spelled = line;
  spelled.insert(pos, "\"objective\":\"total-penalty\",");
  EXPECT_EQ(ParseManifestLine(spelled).instance.objective(),
            ScheduleObjective::kTotalPenalty);
  std::string unknown = line;
  unknown.insert(pos, "\"objective\":\"lateness\",");
  EXPECT_THROW(ParseManifestLine(unknown), ManifestError);
}

TEST(Manifest, HashesSurvive64BitRange) {
  // Hashes above 2^53 lose bits as JSON doubles; the format must carry
  // them as decimal strings and round-trip exactly.
  ManifestRecord record = SampleRecord();
  record.trajectory_digest = 0xfedcba9876543210ull;
  const ManifestRecord parsed = ParseManifestLine(WriteManifestLine(record));
  EXPECT_EQ(parsed.trajectory_digest, 0xfedcba9876543210ull);
}

TEST(Manifest, HostileEngineNameCannotBreakTheLine) {
  ManifestRecord record = SampleRecord();
  record.engine = "sa\",\"best_cost\":\"0\n}";
  const std::string line = WriteManifestLine(record);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  const ManifestRecord parsed = ParseManifestLine(line);
  EXPECT_EQ(parsed.engine, record.engine);
  EXPECT_EQ(parsed.best_cost, record.best_cost);
}

TEST(Manifest, TrajectoryDigestIsOrderSensitive) {
  const std::vector<Cost> forward = {10, 9, 8, 7};
  const std::vector<Cost> reversed = {7, 8, 9, 10};
  EXPECT_NE(TrajectoryDigest(forward), TrajectoryDigest(reversed));
  EXPECT_EQ(TrajectoryDigest(forward), TrajectoryDigest(forward));
  EXPECT_EQ(TrajectoryDigest({}), 0u);
  // A digest must also distinguish prefixes (length matters).
  const std::vector<Cost> prefix = {10, 9, 8};
  EXPECT_NE(TrajectoryDigest(forward), TrajectoryDigest(prefix));
}

TEST(Manifest, RejectsMalformedLines) {
  EXPECT_THROW(ParseManifestLine(""), ManifestError);
  EXPECT_THROW(ParseManifestLine("not json at all"), ManifestError);
  EXPECT_THROW(ParseManifestLine("{\"schema\":1}"), ManifestError);
  EXPECT_THROW(ParseManifestLine("[1,2,3]"), ManifestError);
  // Truncated JSON (cut mid-record, e.g. a killed writer).
  const std::string line = WriteManifestLine(SampleRecord());
  EXPECT_THROW(ParseManifestLine(line.substr(0, line.size() / 2)),
               ManifestError);
}

TEST(Manifest, RejectsUnsupportedSchema) {
  const std::string line = WriteManifestLine(SampleRecord());
  const std::string needle = "\"schema\":1";
  const auto pos = line.find(needle);
  ASSERT_NE(pos, std::string::npos);
  std::string future = line;
  future.replace(pos, needle.size(), "\"schema\":99");
  EXPECT_THROW(ParseManifestLine(future), ManifestError);
}

TEST(Manifest, DetectsTamperedInstanceData) {
  // Flip the due date after recording: the parsed record is well-formed
  // JSON, but the integrity check must reject it.
  ManifestRecord record = SampleRecord();
  const std::string line = WriteManifestLine(record);
  ManifestRecord parsed = ParseManifestLine(line);
  parsed.instance =
      Instance(parsed.instance.problem(), parsed.instance.due_date() + 1,
               parsed.instance.jobs());
  EXPECT_THROW(VerifyManifestIntegrity(parsed), ManifestError);
}

}  // namespace
}  // namespace cdd::trace

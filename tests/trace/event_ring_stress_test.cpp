/// Multi-threaded stress for the trace recorder: one single-producer
/// EventRing per worker thread, exactly the topology the host-parallel
/// execution backend creates.  The suite name is in the TSan CI regex —
/// these tests are the data-race harness for the ring's cross-thread
/// written()/dropped() reads and for the registry's thread bookkeeping
/// (SetThreadLabel from many threads at once).

#include "trace/ring_buffer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "trace/tracer.hpp"

namespace cdd::trace {
namespace {

TEST(EventRingStress, ConcurrentProducersKeepIndependentDropCounts) {
  // Each worker owns one ring (the single-producer contract); the main
  // thread concurrently polls written()/dropped(), which the ring
  // documents as safe from any thread.  Monotonicity of those reads and
  // exact post-join counts are the assertions TSan sharpens.
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kEvents = 5000;
  constexpr std::size_t kCapacity = 64;  // already a power of two

  std::vector<std::unique_ptr<EventRing>> rings;
  for (unsigned i = 0; i < kThreads; ++i) {
    rings.push_back(std::make_unique<EventRing>(kCapacity));
  }

  std::atomic<unsigned> running{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (unsigned i = 0; i < kThreads; ++i) {
    workers.emplace_back([&rings, &running, i] {
      running.fetch_add(1, std::memory_order_relaxed);
      EventRing& ring = *rings[i];
      for (std::uint64_t k = 0; k < kEvents; ++k) {
        ring.Push({"stress", static_cast<std::int64_t>(k), 0,
                   kTrackOwnThread, EventType::kInstant});
      }
      running.fetch_sub(1, std::memory_order_relaxed);
    });
  }

  // Reader side: counters must be monotonic while producers are live.
  std::vector<std::uint64_t> last_written(kThreads, 0);
  while (running.load(std::memory_order_relaxed) != 0) {
    for (unsigned i = 0; i < kThreads; ++i) {
      const std::uint64_t w = rings[i]->written();
      EXPECT_GE(w, last_written[i]);
      EXPECT_LE(w, kEvents);
      last_written[i] = w;
      const std::uint64_t d = rings[i]->dropped();
      EXPECT_EQ(d, w > kCapacity ? w - kCapacity : 0);
    }
  }
  for (std::thread& t : workers) t.join();

  for (unsigned i = 0; i < kThreads; ++i) {
    EXPECT_EQ(rings[i]->written(), kEvents);
    EXPECT_EQ(rings[i]->dropped(), kEvents - kCapacity);
    const std::vector<Event> events = rings[i]->Snapshot();
    ASSERT_EQ(events.size(), kCapacity);
    // Oldest-first: the survivors are the last kCapacity pushes in order.
    for (std::size_t k = 0; k < events.size(); ++k) {
      EXPECT_EQ(events[k].ts_ns,
                static_cast<std::int64_t>(kEvents - kCapacity + k));
    }
  }
}

TEST(EventRingStress, RegistrySumsPerThreadRingsAfterJoin) {
  // Through the tracer: every thread records into its own thread-local
  // ring (registered on first use) and labels its track — the same calls
  // exec::HostThreadPool workers make.  After the join, the process-wide
  // sums must account for every event either as surviving or dropped.
  ResetForTest();
  SetRingCapacity(32);
  constexpr unsigned kThreads = 6;
  constexpr std::uint64_t kEvents = 1000;

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (unsigned i = 0; i < kThreads; ++i) {
    workers.emplace_back([i] {
      SetThreadLabel("stress-worker-" + std::to_string(i));
      for (std::uint64_t k = 0; k < kEvents; ++k) {
        Record({"registry_stress", static_cast<std::int64_t>(k), 0,
                kTrackOwnThread, EventType::kInstant});
      }
    });
  }
  for (std::thread& t : workers) t.join();

  EXPECT_EQ(EventCount(), static_cast<std::uint64_t>(kThreads) * 32);
  EXPECT_EQ(DroppedTotal(),
            static_cast<std::uint64_t>(kThreads) * (kEvents - 32));
  EXPECT_EQ(EventCount() + DroppedTotal(),
            static_cast<std::uint64_t>(kThreads) * kEvents);
  ResetForTest();
}

}  // namespace
}  // namespace cdd::trace

/// EventRing: single-producer overwrite ring semantics — ordering,
/// drop-oldest overflow with an exact drop counter, reset.

#include "trace/ring_buffer.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cdd::trace {
namespace {

Event Instant(const char* name, std::int64_t ts) {
  return Event{name, ts, 0, kTrackOwnThread, EventType::kInstant};
}

TEST(EventRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(EventRing(1).capacity(), 8u);
  EXPECT_EQ(EventRing(8).capacity(), 8u);
  EXPECT_EQ(EventRing(9).capacity(), 16u);
  EXPECT_EQ(EventRing(1000).capacity(), 1024u);
}

TEST(EventRing, PreservesInsertionOrderBelowCapacity) {
  EventRing ring(8);
  for (int i = 0; i < 5; ++i) ring.Push(Instant("e", i));
  EXPECT_EQ(ring.written(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);

  const std::vector<Event> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(events[i].ts_ns, i);
}

TEST(EventRing, OverflowDropsOldestAndCountsDrops) {
  EventRing ring(8);
  for (int i = 0; i < 20; ++i) ring.Push(Instant("e", i));

  EXPECT_EQ(ring.written(), 20u);
  EXPECT_EQ(ring.dropped(), 12u);  // 20 pushed - 8 surviving

  // The survivors are exactly the 8 *newest* events, still in order:
  // drop-oldest, never drop-newest, never block.
  const std::vector<Event> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(events[i].ts_ns, 12 + i);
}

TEST(EventRing, SnapshotCopiesEventPayloads) {
  EventRing ring(8);
  ring.Push(Event{"counter", 7, 42, 3, EventType::kCounter});
  const std::vector<Event> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "counter");
  EXPECT_EQ(events[0].ts_ns, 7);
  EXPECT_EQ(events[0].value, 42);
  EXPECT_EQ(events[0].track, 3u);
  EXPECT_EQ(events[0].type, EventType::kCounter);
}

TEST(EventRing, ClearForgetsEventsAndDrops) {
  EventRing ring(8);
  for (int i = 0; i < 20; ++i) ring.Push(Instant("e", i));
  ring.Clear();
  EXPECT_EQ(ring.written(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_TRUE(ring.Snapshot().empty());

  // The ring is fully usable after a reset.
  ring.Push(Instant("e", 99));
  ASSERT_EQ(ring.Snapshot().size(), 1u);
  EXPECT_EQ(ring.Snapshot()[0].ts_ns, 99);
}

}  // namespace
}  // namespace cdd::trace

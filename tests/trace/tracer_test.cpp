/// The process-wide tracer: runtime gating, cross-thread export ordering,
/// drop accounting, and the subsystem's defining invariant — a traced
/// engine run is bit-identical to an untraced one (tracing never consumes
/// randomness).
///
/// Tests share one global registry; each starts from ResetForTest() and
/// leaves tracing disabled.

#include "trace/tracer.hpp"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "meta/objective.hpp"
#include "meta/sa.hpp"
#include "orlib/biskup_feldmann.hpp"
#include "trace/json.hpp"

namespace cdd::trace {
namespace {

#if !CDD_TRACING

// Compiled out: the macros must still be valid statements, and nothing
// may ever be recorded.
TEST(TracerCompiledOut, MacrosAreInertNoOps) {
  SetEnabled(true);  // a no-op in this configuration
  EXPECT_FALSE(Enabled());
  CDD_TRACE_SPAN("gone");
  CDD_TRACE_INSTANT("gone");
  CDD_TRACE_COUNTER("gone", 1);
  CDD_TRACE_COMPLETE("gone", 0, 1, 0);
  EXPECT_EQ(EventCount(), 0u);
}

#else

class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ResetForTest();
    SetEnabled(true);
  }
  void TearDown() override {
    SetEnabled(false);
    ResetForTest();
  }
};

JsonValue ExportAndParse() {
  std::ostringstream out;
  ExportChromeTrace(out);
  return JsonValue::Parse(out.str());
}

/// Exported events minus "M" metadata records (track labels persist in
/// the process-wide registry across ResetForTest, so earlier tests may
/// contribute metadata lines to later exports).
std::vector<JsonValue> DataEvents(const JsonValue& doc) {
  std::vector<JsonValue> events;
  for (const JsonValue& event : doc.At("traceEvents").AsArray()) {
    if (event.At("ph").AsString() != "M") events.push_back(event);
  }
  return events;
}

TEST_F(TracerTest, DisabledRecordsNothing) {
  SetEnabled(false);
  CDD_TRACE_INSTANT("ignored");
  CDD_TRACE_COUNTER("ignored", 42);
  { CDD_TRACE_SPAN("ignored"); }
  EXPECT_EQ(EventCount(), 0u);
}

TEST_F(TracerTest, SpanEmitsBalancedBeginEnd) {
  {
    CDD_TRACE_SPAN("outer");
    CDD_TRACE_SPAN("inner");
    CDD_TRACE_INSTANT("tick");
  }
  const JsonValue doc = ExportAndParse();
  const std::vector<JsonValue> events = DataEvents(doc);
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].At("name").AsString(), "outer");
  EXPECT_EQ(events[0].At("ph").AsString(), "B");
  EXPECT_EQ(events[1].At("name").AsString(), "inner");
  EXPECT_EQ(events[1].At("ph").AsString(), "B");
  EXPECT_EQ(events[2].At("ph").AsString(), "i");
  // Destruction order: inner closes before outer.
  EXPECT_EQ(events[3].At("name").AsString(), "inner");
  EXPECT_EQ(events[3].At("ph").AsString(), "E");
  EXPECT_EQ(events[4].At("name").AsString(), "outer");
  EXPECT_EQ(events[4].At("ph").AsString(), "E");
}

TEST_F(TracerTest, CounterAndCompleteCarryValues) {
  CDD_TRACE_COUNTER("cost", 1234);
  const std::uint32_t track = NewTrack("gpu");
  Complete("kernel", /*ts_ns=*/5000, /*dur_ns=*/2500, track);
  const JsonValue doc = ExportAndParse();

  // A metadata record labels the virtual track...
  bool labeled = false;
  for (const JsonValue& event : doc.At("traceEvents").AsArray()) {
    if (event.At("ph").AsString() == "M" &&
        event.At("tid").AsInt() == static_cast<std::int64_t>(track)) {
      EXPECT_EQ(event.At("args").At("name").AsString(), "gpu");
      labeled = true;
    }
  }
  EXPECT_TRUE(labeled);

  // ...and both events carry their payloads.  (No ordering assertion:
  // the complete event's modeled ts=5 us may fall on either side of the
  // wall-clock counter stamp depending on process age.)
  const std::vector<JsonValue> events = DataEvents(doc);
  ASSERT_EQ(events.size(), 2u);
  const JsonValue& complete =
      events[0].At("ph").AsString() == "X" ? events[0] : events[1];
  const JsonValue& counter =
      events[0].At("ph").AsString() == "X" ? events[1] : events[0];
  EXPECT_EQ(complete.At("ph").AsString(), "X");
  EXPECT_DOUBLE_EQ(complete.At("ts").AsDouble(), 5.0);   // us
  EXPECT_DOUBLE_EQ(complete.At("dur").AsDouble(), 2.5);  // us
  EXPECT_EQ(counter.At("ph").AsString(), "C");
  EXPECT_EQ(counter.At("args").At("value").AsInt(), 1234);
}

TEST_F(TracerTest, CrossThreadExportIsTimestampOrdered) {
  // Several producer threads, each recording an increasing sequence.
  // After they quiesce, the export must interleave all threads into one
  // globally non-decreasing timeline without losing an event.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) CDD_TRACE_INSTANT("tick");
    });
  }
  for (std::thread& t : threads) t.join();

  const JsonValue doc = ExportAndParse();
  const std::vector<JsonValue> events = DataEvents(doc);
  ASSERT_EQ(events.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  double last_ts = -1.0;
  for (const JsonValue& event : events) {
    const double ts = event.At("ts").AsDouble();
    EXPECT_GE(ts, last_ts);
    last_ts = ts;
  }
  // Per-thread subsequences must stay in recording order even under ties
  // (stable sort): within one tid, timestamps are non-decreasing.
  std::map<std::int64_t, double> last_by_tid;
  for (const JsonValue& event : events) {
    const std::int64_t tid = event.At("tid").AsInt();
    const double ts = event.At("ts").AsDouble();
    const auto it = last_by_tid.find(tid);
    if (it != last_by_tid.end()) {
      EXPECT_GE(ts, it->second);
    }
    last_by_tid[tid] = ts;
  }
  EXPECT_EQ(last_by_tid.size(), static_cast<std::size_t>(kThreads));
}

TEST_F(TracerTest, OverflowSurfacesDropCountInExport) {
  // A dedicated thread gets a tiny ring, overflows it, and the export
  // reports exactly how many events were lost — drop-not-block, but
  // never silently.
  SetRingCapacity(16);
  std::thread producer([] {
    for (int i = 0; i < 100; ++i) CDD_TRACE_INSTANT("flood");
  });
  producer.join();
  SetRingCapacity(8192);  // restore the default for later tests

  EXPECT_EQ(DroppedTotal(), 100u - 16u);
  const JsonValue doc = ExportAndParse();
  EXPECT_EQ(doc.At("otherData").At("dropped_events").AsInt(), 100 - 16);
  EXPECT_EQ(DataEvents(doc).size(), 16u);
}

TEST_F(TracerTest, HostileNamesAreEscapedInExport) {
  CDD_TRACE_INSTANT("evil\"name\\with\ncontrol");
  std::ostringstream out;
  ExportChromeTrace(out);
  // The export must stay parseable JSON and round-trip the name.
  const JsonValue doc = JsonValue::Parse(out.str());
  const std::vector<JsonValue> events = DataEvents(doc);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].At("name").AsString(), "evil\"name\\with\ncontrol");
}

TEST_F(TracerTest, InternNameIsStableAndDeduplicated) {
  const std::string dynamic = std::string("sa_") + "fitness";
  const char* a = InternName(dynamic);
  const char* b = InternName("sa_fitness");
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "sa_fitness");
}

TEST_F(TracerTest, TracingNeverPerturbsAnEngineRun) {
  // The no-RNG-consumption invariant, proven on a live SA chain: best
  // cost and evaluation count must not depend on whether tracing ran.
  const Instance instance =
      orlib::BiskupFeldmannGenerator().Cdd(20, 0, 0.6);
  const meta::Objective objective = meta::Objective::ForInstance(instance);
  meta::SaParams params;
  params.iterations = 400;
  params.temp_samples = 200;
  params.seed = 7;
  params.trajectory_stride = 10;

  SetEnabled(false);
  const meta::RunResult untraced = meta::RunSerialSa(objective, params);
  SetEnabled(true);
  const meta::RunResult traced = meta::RunSerialSa(objective, params);

  EXPECT_EQ(traced.best_cost, untraced.best_cost);
  EXPECT_EQ(traced.evaluations, untraced.evaluations);
  EXPECT_EQ(traced.trajectory, untraced.trajectory);
  EXPECT_EQ(traced.best, untraced.best);
  // And the traced run did record convergence telemetry.
  EXPECT_GT(EventCount(), 0u);
}

#endif  // CDD_TRACING

}  // namespace
}  // namespace cdd::trace

#pragma once
/// \file test_instances.hpp
/// \brief Shared fixtures for the test suite: the paper's Table I example
/// and randomized instance generators for property tests.

#include <cstdint>

#include "core/instance.hpp"
#include "core/sequence.hpp"
#include "rng/philox.hpp"

namespace cdd::testing {

/// Table I of the paper (5 jobs).  CDD illustration uses d = 16,
/// UCDDCP illustration uses d = 22.
inline Instance PaperExampleCdd() {
  return Instance(Problem::kCdd, /*d=*/16,
                  /*proc=*/{6, 5, 2, 4, 4},
                  /*early=*/{7, 9, 6, 9, 3},
                  /*tardy=*/{9, 5, 4, 3, 2});
}

inline Instance PaperExampleUcddcp() {
  return Instance(Problem::kUcddcp, /*d=*/22,
                  /*proc=*/{6, 5, 2, 4, 4},
                  /*early=*/{7, 9, 6, 9, 3},
                  /*tardy=*/{9, 5, 4, 3, 2},
                  /*min_proc=*/{5, 5, 2, 3, 3},
                  /*compress=*/{5, 4, 3, 2, 1});
}

/// Random CDD instance in the Biskup–Feldmann distribution family, with a
/// due date of restrictiveness \p h (h > 1 gives unrestricted instances).
inline Instance RandomCdd(std::uint32_t n, double h, std::uint64_t seed) {
  rng::Philox4x32 rng(seed, /*stream=*/0x1e57ULL);
  std::vector<Time> proc(n);
  std::vector<Cost> early(n);
  std::vector<Cost> tardy(n);
  Time total = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    proc[i] = 1 + UniformBelow(rng, 20);
    early[i] = UniformBelow(rng, 11);  // includes 0: exercises degenerate
    tardy[i] = UniformBelow(rng, 16);  // penalty corners
    total += proc[i];
  }
  const Time d = static_cast<Time>(h * static_cast<double>(total));
  return Instance(Problem::kCdd, d, std::move(proc), std::move(early),
                  std::move(tardy));
}

/// Random unrestricted UCDDCP instance (d >= sum P, slack controlled by
/// \p h >= 1).
inline Instance RandomUcddcp(std::uint32_t n, double h, std::uint64_t seed) {
  rng::Philox4x32 rng(seed, /*stream=*/0x1e58ULL);
  std::vector<Time> proc(n);
  std::vector<Time> min_proc(n);
  std::vector<Cost> early(n);
  std::vector<Cost> tardy(n);
  std::vector<Cost> gamma(n);
  Time total = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    proc[i] = 1 + UniformBelow(rng, 20);
    min_proc[i] = 1 + UniformBelow(rng, static_cast<std::uint32_t>(proc[i]));
    early[i] = UniformBelow(rng, 11);
    tardy[i] = UniformBelow(rng, 16);
    gamma[i] = UniformBelow(rng, 11);
    total += proc[i];
  }
  const Time d = static_cast<Time>(h * static_cast<double>(total));
  return Instance(Problem::kUcddcp, d, std::move(proc), std::move(early),
                  std::move(tardy), std::move(min_proc), std::move(gamma));
}

/// Random permutation of n jobs.
inline Sequence RandomSeq(std::uint32_t n, std::uint64_t seed) {
  rng::Philox4x32 rng(seed, /*stream=*/0x5e9ULL);
  return RandomSequence(n, rng);
}

}  // namespace cdd::testing

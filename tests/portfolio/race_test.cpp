/// Racing portfolio: pinned-race determinism, the never-worse-than-the-
/// worst-contender guarantee, kill bookkeeping, and the bandit prior's
/// feature bucketing and ranking.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/test_instances.hpp"
#include "meta/engine.hpp"
#include "portfolio/bandit.hpp"
#include "portfolio/race.hpp"
#include "serve/engine_registry.hpp"

namespace cdd::portfolio {
namespace {

serve::EngineOptions BaseOptions() {
  serve::EngineOptions options;
  options.seed = 21;
  options.generations = 80;
  return options;
}

meta::EngineOutput RunByName(const std::string& name,
                             const Instance& instance,
                             const serve::EngineOptions& options) {
  const serve::EngineFactory* factory =
      serve::EngineRegistry::Default().FindFactory(name);
  EXPECT_NE(factory, nullptr) << name;
  auto engine = (*factory)(instance, options);
  return meta::RunToCompletion(*engine);
}

TEST(Race, PinnedRaceIsDeterministic) {
  const Instance instance = cdd::testing::RandomCdd(20, 0.6, 11);
  serve::EngineOptions options = BaseOptions();
  options.portfolio = "sa,ta,dpso";
  options.race_slice = 8;

  const meta::EngineOutput first = RunByName("race", instance, options);
  const meta::EngineOutput second = RunByName("race", instance, options);
  EXPECT_EQ(first.result.best_cost, second.result.best_cost);
  EXPECT_EQ(first.result.best, second.result.best);
  EXPECT_EQ(first.result.evaluations, second.result.evaluations);
  EXPECT_FALSE(first.result.stopped);
}

TEST(Race, ResultIsTheWinnersSoloRunAndNeverWorseThanWorstContender) {
  const Instance instance = cdd::testing::RandomCdd(20, 0.6, 11);
  const std::vector<std::string> contenders = {"sa", "ta", "dpso"};
  serve::EngineOptions options = BaseOptions();
  options.portfolio = "sa,ta,dpso";
  options.race_slice = 8;

  const meta::EngineOutput race = RunByName("race", instance, options);

  // Solo contenders run under the same (non-race) options.
  serve::EngineOptions solo_options = BaseOptions();
  Cost worst = 0;
  bool matched = false;
  for (const std::string& name : contenders) {
    const meta::EngineOutput solo =
        RunByName(name, instance, solo_options);
    worst = std::max(worst, solo.result.best_cost);
    matched = matched || (solo.result.best_cost == race.result.best_cost &&
                          solo.result.best == race.result.best);
  }
  // Survivors run their complete native budget, so the race result is
  // bit-identical to the winner's solo run — which also bounds it by the
  // worst contender's solo cost.
  EXPECT_TRUE(matched);
  EXPECT_LE(race.result.best_cost, worst);
}

TEST(Race, ReportNamesWinnerAndKills) {
  const Instance instance = cdd::testing::RandomCdd(20, 0.6, 11);
  std::vector<RaceContender> contenders;
  for (const char* name : {"sa", "ta"}) {
    const serve::EngineFactory* factory =
        serve::EngineRegistry::Default().FindFactory(name);
    ASSERT_NE(factory, nullptr);
    contenders.push_back(
        RaceContender{name, (*factory)(instance, BaseOptions())});
  }
  RaceParams params;
  params.slice = 8;
  RaceEngine race(std::move(contenders), params);
  EXPECT_EQ(race.Step(meta::kStepAll), meta::StepStatus::kDone);
  race.Finish();
  const RaceReport& report = race.report();
  EXPECT_TRUE(report.winner == "sa" || report.winner == "ta");
  EXPECT_GT(report.rounds, 0u);
  for (const std::string& killed : report.killed) {
    EXPECT_NE(killed, report.winner);
  }
}

TEST(Race, EmptyPortfolioAndSelfRaceAreRejected) {
  EXPECT_THROW(RaceEngine({}, RaceParams{}), std::invalid_argument);

  const Instance instance = cdd::testing::PaperExampleCdd();
  const serve::EngineFactory* factory =
      serve::EngineRegistry::Default().FindFactory("race");
  ASSERT_NE(factory, nullptr);
  serve::EngineOptions options = BaseOptions();
  options.portfolio = "race,sa";  // a race must not race itself
  EXPECT_THROW((*factory)(instance, options), std::invalid_argument);
  options.portfolio = "no-such-engine";
  EXPECT_THROW((*factory)(instance, options), std::invalid_argument);
}

TEST(Race, PortfolioPinningDetectsOptionAndEnvironment) {
  serve::EngineOptions options;
  EXPECT_FALSE(serve::RacePortfolioPinned(options));
  options.portfolio = "sa,ta";
  EXPECT_TRUE(serve::RacePortfolioPinned(options));

  options.portfolio.clear();
  ::setenv("CDD_RACE_PORTFOLIO", "sa,ta", 1);
  EXPECT_TRUE(serve::RacePortfolioPinned(options));
  ::unsetenv("CDD_RACE_PORTFOLIO");
  EXPECT_FALSE(serve::RacePortfolioPinned(options));
}

TEST(Bandit, FeatureBucketsAreStable) {
  const Instance small = cdd::testing::RandomCdd(16, 0.4, 5);
  const InstanceFeatures a = ComputeFeatures(small);
  const InstanceFeatures b = ComputeFeatures(small);
  EXPECT_EQ(FeatureKey(a), FeatureKey(b));
  EXPECT_EQ(a.n_bucket, 4u);  // floor(log2 16)

  const Instance large = cdd::testing::RandomCdd(128, 0.4, 5);
  EXPECT_NE(FeatureKey(ComputeFeatures(large)), FeatureKey(a));
}

TEST(Bandit, RankPrefersRecordedWinners) {
  BanditPrior prior;
  const InstanceFeatures features =
      ComputeFeatures(cdd::testing::RandomCdd(32, 0.6, 9));
  const std::vector<std::string> pool = {"sa", "ta", "dpso"};

  // Unplayed arms keep their input order (optimistic tie).
  EXPECT_EQ(prior.Rank(features, pool), pool);

  prior.RecordWin(features, "dpso", pool);
  prior.RecordWin(features, "dpso", pool);
  const std::vector<std::string> ranked = prior.Rank(features, pool);
  EXPECT_EQ(ranked.front(), "dpso");

  // A different feature bucket is unaffected.
  const InstanceFeatures other =
      ComputeFeatures(cdd::testing::RandomCdd(128, 1.0, 9));
  EXPECT_EQ(prior.Rank(other, pool), pool);
}

}  // namespace
}  // namespace cdd::portfolio

/// Raw device-function helper tests: perturbation, crossovers, RNG stream
/// layout, packed reduction keys.

#include "parallel/kernels_raw.hpp"

#include <gtest/gtest.h>

#include <set>

#include "parallel/launch_config.hpp"

namespace cdd::par::raw {
namespace {

TEST(PerturbRaw, ProducesPermutationsAndBoundedChanges) {
  rng::Philox4x32 rng(1, 2);
  std::uint32_t positions[8];
  JobId values[8];
  for (int trial = 0; trial < 200; ++trial) {
    Sequence seq = IdentitySequence(25);
    PerturbRaw(seq.data(), 25, 4, rng, positions, values);
    ASSERT_TRUE(IsPermutation(seq));
    std::size_t changed = 0;
    for (std::size_t i = 0; i < seq.size(); ++i) {
      if (seq[i] != static_cast<JobId>(i)) ++changed;
    }
    EXPECT_LE(changed, 4u);
  }
}

TEST(PerturbRaw, ClampsPertAndHandlesTinySequences) {
  rng::Philox4x32 rng(3, 4);
  std::uint32_t positions[8];
  JobId values[8];
  Sequence one = IdentitySequence(1);
  PerturbRaw(one.data(), 1, 4, rng, positions, values);
  EXPECT_EQ(one, IdentitySequence(1));
  Sequence three = IdentitySequence(3);
  PerturbRaw(three.data(), 3, 8, rng, positions, values);
  EXPECT_TRUE(IsPermutation(three));
}

TEST(CrossoverRaw, OnePointMatchesSpecification) {
  const Sequence p1{0, 1, 2, 3, 4};
  const Sequence p2{4, 3, 2, 1, 0};
  Sequence child(5);
  std::uint8_t used[5];
  OnePointCrossoverRaw(5, p1.data(), p2.data(), 2, child.data(), used);
  EXPECT_EQ(child, (Sequence{0, 1, 4, 3, 2}));
  OnePointCrossoverRaw(5, p1.data(), p2.data(), 0, child.data(), used);
  EXPECT_EQ(child, p2);
  OnePointCrossoverRaw(5, p1.data(), p2.data(), 5, child.data(), used);
  EXPECT_EQ(child, p1);
}

TEST(CrossoverRaw, TwoPointMatchesSpecification) {
  const Sequence p1{0, 1, 2, 3, 4};
  const Sequence p2{4, 3, 2, 1, 0};
  Sequence child(5);
  std::uint8_t used[5];
  TwoPointCrossoverRaw(5, p1.data(), p2.data(), 1, 3, child.data(), used);
  EXPECT_EQ(child, (Sequence{4, 1, 2, 3, 0}));
  TwoPointCrossoverRaw(5, p1.data(), p2.data(), 0, 0, child.data(), used);
  EXPECT_EQ(child, p2);
  TwoPointCrossoverRaw(5, p1.data(), p2.data(), 0, 5, child.data(), used);
  EXPECT_EQ(child, p1);
}

TEST(CrossoverRaw, AlwaysPermutationsUnderRandomCuts) {
  rng::Philox4x32 rng(7, 8);
  for (const std::int32_t n : {2, 5, 17, 60}) {
    Sequence p1 = RandomSequence(static_cast<std::size_t>(n), rng);
    Sequence p2 = RandomSequence(static_cast<std::size_t>(n), rng);
    Sequence child(static_cast<std::size_t>(n));
    std::vector<std::uint8_t> used(static_cast<std::size_t>(n));
    for (int trial = 0; trial < 50; ++trial) {
      const std::uint32_t cut =
          UniformBelow(rng, static_cast<std::uint32_t>(n) + 1);
      OnePointCrossoverRaw(n, p1.data(), p2.data(), cut, child.data(),
                           used.data());
      ASSERT_TRUE(IsPermutation(child)) << "1pt n=" << n;
      std::uint32_t a = UniformBelow(rng, static_cast<std::uint32_t>(n) + 1);
      std::uint32_t b = UniformBelow(rng, static_cast<std::uint32_t>(n) + 1);
      if (a > b) std::swap(a, b);
      TwoPointCrossoverRaw(n, p1.data(), p2.data(), a, b, child.data(),
                           used.data());
      ASSERT_TRUE(IsPermutation(child)) << "2pt n=" << n;
    }
  }
}

TEST(RngStreams, DisjointAcrossGenerationPhaseThread) {
  // Distinct (generation, phase, thread) triples yield distinct first
  // outputs with overwhelming probability.
  std::set<std::uint32_t> seen;
  int count = 0;
  for (std::uint64_t g = 0; g < 4; ++g) {
    for (const RngPhase phase : {RngPhase::kInit, RngPhase::kPerturb,
                                 RngPhase::kAccept, RngPhase::kDpsoUpdate}) {
      for (std::uint32_t t = 0; t < 16; ++t) {
        rng::Philox4x32 rng = MakeStream(42, g, phase, t);
        seen.insert(rng());
        ++count;
      }
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), count);
}

TEST(RngStreams, ThreadStreamIndependentOfEnsembleSize) {
  // The inclusion property's foundation: stream of thread t is a function
  // of (seed, generation, phase, t) only.
  rng::Philox4x32 a = MakeStream(9, 5, RngPhase::kPerturb, 3);
  rng::Philox4x32 b = MakeStream(9, 5, RngPhase::kPerturb, 3);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a(), b());
}

TEST(PackedKeys, RoundTripAndOrdering) {
  const std::int64_t k1 = PackCostThread(100, 7);
  EXPECT_EQ(UnpackCost(k1), 100);
  EXPECT_EQ(UnpackThread(k1), 7u);
  // Lower cost always wins regardless of thread id.
  EXPECT_LT(PackCostThread(99, 1 << 19), PackCostThread(100, 0));
  // Equal costs: lower thread id wins (deterministic tie-break).
  EXPECT_LT(PackCostThread(100, 3), PackCostThread(100, 9));
  // Boundary cost still round-trips.
  const Cost big = kMaxPackableCost - 1;
  EXPECT_EQ(UnpackCost(PackCostThread(big, 0)), big);
}

TEST(LaunchConfig, ForEnsembleRoundsUpToWholeBlocks) {
  const LaunchConfig c1 = LaunchConfig::ForEnsemble(768, 192);
  EXPECT_EQ(c1.blocks, 4u);
  EXPECT_EQ(c1.ensemble(), 768u);
  const LaunchConfig c2 = LaunchConfig::ForEnsemble(100, 64);
  EXPECT_EQ(c2.blocks, 2u);
  EXPECT_EQ(c2.ensemble(), 128u);  // rounded up
  const LaunchConfig c3 = LaunchConfig::ForEnsemble(0, 0);
  EXPECT_GE(c3.ensemble(), 1u);
}

}  // namespace
}  // namespace cdd::par::raw

/// Asynchronous parallel DPSO tests.

#include "parallel/parallel_dpso.hpp"

#include <gtest/gtest.h>

#include "common/test_instances.hpp"
#include "core/exact.hpp"
#include "meta/objective.hpp"

namespace cdd::par {
namespace {

ParallelDpsoParams SmallParams(std::uint32_t ensemble = 32,
                               std::uint32_t block = 16,
                               std::uint64_t gens = 150) {
  ParallelDpsoParams p;
  p.config = LaunchConfig::ForEnsemble(ensemble, block);
  p.generations = gens;
  p.seed = 21;
  return p;
}

TEST(ParallelDpso, FindsOptimumOnTinyCddInstance) {
  const Instance instance = cdd::testing::RandomCdd(6, 0.5, 401);
  const Cost optimum = BruteForceCdd(instance).cost;
  sim::Device gpu;
  const GpuRunResult result =
      RunParallelDpso(gpu, instance, SmallParams(32, 16, 200));
  EXPECT_EQ(result.best_cost, optimum);
  EXPECT_NO_THROW(ValidateSequence(result.best, 6));
}

TEST(ParallelDpso, WorksOnUcddcp) {
  const Instance instance = cdd::testing::RandomUcddcp(7, 1.1, 402);
  const Cost optimum = BruteForceUcddcp(instance).cost;
  sim::Device gpu;
  const GpuRunResult result =
      RunParallelDpso(gpu, instance, SmallParams(32, 16, 200));
  EXPECT_GE(result.best_cost, optimum);
  EXPECT_LE(result.best_cost, optimum + std::max<Cost>(optimum / 10, 5));
}

TEST(ParallelDpso, BestCostMatchesReportedSequence) {
  const Instance instance = cdd::testing::RandomCdd(20, 0.6, 403);
  const meta::Objective objective = meta::Objective::ForInstance(instance);
  sim::Device gpu;
  const GpuRunResult result = RunParallelDpso(gpu, instance, SmallParams());
  EXPECT_EQ(objective(result.best), result.best_cost);
}

TEST(ParallelDpso, DeterministicPerSeedAndWorkerCount) {
  const Instance instance = cdd::testing::RandomCdd(15, 0.4, 404);
  sim::Device a;
  a.set_worker_threads(1);
  sim::Device b;
  b.set_worker_threads(4);
  const GpuRunResult ra = RunParallelDpso(a, instance, SmallParams());
  const GpuRunResult rb = RunParallelDpso(b, instance, SmallParams());
  EXPECT_EQ(ra.best_cost, rb.best_cost);
  EXPECT_EQ(ra.best, rb.best);
}

TEST(ParallelDpso, SwarmBestIsMonotonePerGeneration) {
  const Instance instance = cdd::testing::RandomCdd(18, 0.6, 405);
  sim::Device gpu;
  ParallelDpsoParams params = SmallParams(16, 16, 100);
  params.trajectory_stride = 5;
  const GpuRunResult result = RunParallelDpso(gpu, instance, params);
  ASSERT_EQ(result.trajectory.size(), 20u);
  for (std::size_t i = 1; i < result.trajectory.size(); ++i) {
    EXPECT_LE(result.trajectory[i], result.trajectory[i - 1]);
  }
}

TEST(ParallelDpso, PipelineKernelsAreLaunched) {
  const Instance instance = cdd::testing::RandomCdd(10, 0.5, 406);
  sim::Device gpu;
  const std::uint64_t gens = 20;
  RunParallelDpso(gpu, instance, SmallParams(16, 16, gens));
  const auto& prof = gpu.profiler();
  ASSERT_NE(prof.Find("dpso_update"), nullptr);
  EXPECT_EQ(prof.Find("dpso_update")->launches, gens);
  ASSERT_NE(prof.Find("dpso_fitness"), nullptr);
  EXPECT_EQ(prof.Find("dpso_fitness")->launches, gens + 1);
  ASSERT_NE(prof.Find("dpso_gbest_publish"), nullptr);
  EXPECT_EQ(prof.Find("dpso_gbest_publish")->launches, gens + 1);
}

TEST(ParallelDpso, OperatorProbabilitiesZeroFreezeSwarm) {
  // With w = c1 = c2 = 0 positions never change: the best equals the best
  // initial particle, and stays constant over generations.
  const Instance instance = cdd::testing::RandomCdd(12, 0.5, 407);
  sim::Device d1;
  sim::Device d2;
  ParallelDpsoParams frozen = SmallParams(16, 16, 1);
  frozen.w = frozen.c1 = frozen.c2 = 0.0;
  ParallelDpsoParams longer = frozen;
  longer.generations = 50;
  const GpuRunResult r1 = RunParallelDpso(d1, instance, frozen);
  const GpuRunResult r2 = RunParallelDpso(d2, instance, longer);
  EXPECT_EQ(r1.best_cost, r2.best_cost);
  EXPECT_EQ(r1.best, r2.best);
}

}  // namespace
}  // namespace cdd::par

/// Asynchronous parallel SA tests: correctness, determinism, RNG-stream
/// structure, profiler accounting, and the Figure 9 transfer pattern.

#include "parallel/parallel_sa.hpp"

#include <gtest/gtest.h>

#include "common/test_instances.hpp"
#include "core/exact.hpp"
#include "meta/objective.hpp"
#include "parallel/kernels_raw.hpp"

namespace cdd::par {
namespace {

ParallelSaParams SmallParams(std::uint32_t ensemble = 32,
                             std::uint32_t block = 16,
                             std::uint64_t gens = 200) {
  ParallelSaParams p;
  p.config = LaunchConfig::ForEnsemble(ensemble, block);
  p.generations = gens;
  p.temp_samples = 200;
  p.seed = 11;
  return p;
}

TEST(ParallelSa, FindsOptimumOnTinyCddInstance) {
  const Instance instance = cdd::testing::RandomCdd(6, 0.5, 301);
  const Cost optimum = BruteForceCdd(instance).cost;
  sim::Device gpu;
  const GpuRunResult result =
      RunParallelSa(gpu, instance, SmallParams(32, 16, 300));
  EXPECT_EQ(result.best_cost, optimum);
  EXPECT_NO_THROW(ValidateSequence(result.best, 6));
}

TEST(ParallelSa, FindsOptimumOnTinyUcddcpInstance) {
  const Instance instance = cdd::testing::RandomUcddcp(7, 1.2, 302);
  const Cost optimum = BruteForceUcddcp(instance).cost;
  sim::Device gpu;
  const GpuRunResult result =
      RunParallelSa(gpu, instance, SmallParams(32, 16, 300));
  EXPECT_EQ(result.best_cost, optimum);
}

TEST(ParallelSa, BestCostMatchesReportedSequence) {
  const Instance instance = cdd::testing::RandomCdd(25, 0.6, 303);
  const meta::Objective objective = meta::Objective::ForInstance(instance);
  sim::Device gpu;
  const GpuRunResult result = RunParallelSa(gpu, instance, SmallParams());
  EXPECT_EQ(objective(result.best), result.best_cost);
}

TEST(ParallelSa, DeterministicPerSeed) {
  const Instance instance = cdd::testing::RandomCdd(20, 0.4, 304);
  sim::Device a;
  sim::Device b;
  const GpuRunResult ra = RunParallelSa(a, instance, SmallParams());
  const GpuRunResult rb = RunParallelSa(b, instance, SmallParams());
  EXPECT_EQ(ra.best_cost, rb.best_cost);
  EXPECT_EQ(ra.best, rb.best);
  EXPECT_DOUBLE_EQ(ra.device_seconds, rb.device_seconds);
}

TEST(ParallelSa, WorkerCountDoesNotChangeResult) {
  const Instance instance = cdd::testing::RandomCdd(20, 0.6, 305);
  sim::Device seq_dev;
  seq_dev.set_worker_threads(1);
  sim::Device par_dev;
  par_dev.set_worker_threads(4);
  const GpuRunResult rs = RunParallelSa(seq_dev, instance, SmallParams());
  const GpuRunResult rp = RunParallelSa(par_dev, instance, SmallParams());
  EXPECT_EQ(rs.best_cost, rp.best_cost);
  EXPECT_EQ(rs.best, rp.best);
}

TEST(ParallelSa, EnsembleInclusionProperty) {
  // Thread t's chain is a function of (seed, t) only, so an ensemble that
  // contains another's thread ids can never do worse.
  const Instance instance = cdd::testing::RandomCdd(15, 0.6, 306);
  sim::Device small_dev;
  sim::Device big_dev;
  ParallelSaParams small = SmallParams(8, 8, 150);
  ParallelSaParams big = SmallParams(32, 8, 150);
  const GpuRunResult rs = RunParallelSa(small_dev, instance, small);
  const GpuRunResult rb = RunParallelSa(big_dev, instance, big);
  EXPECT_LE(rb.best_cost, rs.best_cost);
}

TEST(ParallelSa, MoreGenerationsNeverHurt) {
  // The packed best is monotone in generations for a fixed seed.
  const Instance instance = cdd::testing::RandomCdd(15, 0.5, 307);
  sim::Device d1;
  sim::Device d2;
  const GpuRunResult r1 =
      RunParallelSa(d1, instance, SmallParams(16, 16, 50));
  const GpuRunResult r2 =
      RunParallelSa(d2, instance, SmallParams(16, 16, 500));
  EXPECT_LE(r2.best_cost, r1.best_cost);
}

TEST(ParallelSa, TrajectoryIsMonotone) {
  const Instance instance = cdd::testing::RandomCdd(20, 0.6, 308);
  sim::Device gpu;
  ParallelSaParams params = SmallParams(16, 16, 200);
  params.trajectory_stride = 10;
  const GpuRunResult result = RunParallelSa(gpu, instance, params);
  ASSERT_EQ(result.trajectory.size(), 20u);
  for (std::size_t i = 1; i < result.trajectory.size(); ++i) {
    EXPECT_LE(result.trajectory[i], result.trajectory[i - 1]);
  }
  // The last sample precedes the final generations, so it can only be an
  // upper bound on the final best.
  EXPECT_GE(result.trajectory.back(), result.best_cost);
}

TEST(ParallelSa, LaunchesTheFourKernelPipeline) {
  const Instance instance = cdd::testing::RandomCdd(10, 0.5, 309);
  sim::Device gpu;
  const std::uint64_t gens = 25;
  RunParallelSa(gpu, instance, SmallParams(16, 16, gens));
  const auto& prof = gpu.profiler();
  // Fitness: initial + one per generation.
  ASSERT_NE(prof.Find("sa_fitness"), nullptr);
  EXPECT_EQ(prof.Find("sa_fitness")->launches, gens + 1);
  ASSERT_NE(prof.Find("sa_perturbation"), nullptr);
  EXPECT_EQ(prof.Find("sa_perturbation")->launches, gens);
  ASSERT_NE(prof.Find("sa_acceptance"), nullptr);
  EXPECT_EQ(prof.Find("sa_acceptance")->launches, gens);
  ASSERT_NE(prof.Find("sa_reduction"), nullptr);
  EXPECT_EQ(prof.Find("sa_reduction")->launches, gens);
}

TEST(ParallelSa, TransferPatternMatchesFigure9) {
  // Uploads: instance arrays + constants + initial ensemble; downloads at
  // the end: the packed best (8 bytes) + one sequence row.
  const Instance instance = cdd::testing::RandomCdd(10, 0.5, 310);
  sim::Device gpu;
  const std::uint32_t ensemble = 16;
  ParallelSaParams params = SmallParams(ensemble, 16, 30);
  const GpuRunResult result = RunParallelSa(gpu, instance, params);
  (void)result;
  const auto& prof = gpu.profiler();
  EXPECT_GT(prof.h2d().count, 0u);
  EXPECT_EQ(prof.d2h().count, 2u);  // packed best + winner row
  EXPECT_EQ(prof.d2h().bytes, 8u + 10 * sizeof(JobId));
}

TEST(ParallelSa, DeviceSecondsGrowWithGenerations) {
  const Instance instance = cdd::testing::RandomCdd(20, 0.5, 311);
  sim::Device d1;
  sim::Device d2;
  const GpuRunResult r1 =
      RunParallelSa(d1, instance, SmallParams(16, 16, 50));
  const GpuRunResult r2 =
      RunParallelSa(d2, instance, SmallParams(16, 16, 200));
  EXPECT_GT(r2.device_seconds, r1.device_seconds);
  EXPECT_GT(r1.device_seconds, 0.0);
}

TEST(ParallelSa, RejectsOversizedPerturbation) {
  const Instance instance = cdd::testing::RandomCdd(10, 0.5, 312);
  sim::Device gpu;
  ParallelSaParams params = SmallParams();
  params.pert = 64;
  EXPECT_THROW(RunParallelSa(gpu, instance, params),
               std::invalid_argument);
}

TEST(ParallelSa, RejectsInvalidLaunchGeometry) {
  const Instance instance = cdd::testing::RandomCdd(10, 0.5, 313);
  sim::Device gpu;
  ParallelSaParams params = SmallParams();
  params.config.block_size = 4096;  // beyond device limit
  params.config.blocks = 1;
  EXPECT_THROW(RunParallelSa(gpu, instance, params), sim::GpuError);
}

TEST(ParallelSa, TreeReductionMatchesAtomicReduction) {
  // Both reduction kernels must find the same packed best — including on
  // a non-power-of-two block size, which exercises the tree's guarded
  // folding.
  const Instance instance = cdd::testing::RandomCdd(18, 0.6, 315);
  for (const std::uint32_t block : {16u, 24u}) {
    sim::Device d_atomic;
    sim::Device d_tree;
    ParallelSaParams params = SmallParams(48, block, 120);
    params.reduction = detail::ReductionKind::kAtomic;
    const GpuRunResult a = RunParallelSa(d_atomic, instance, params);
    params.reduction = detail::ReductionKind::kTree;
    const GpuRunResult t = RunParallelSa(d_tree, instance, params);
    EXPECT_EQ(a.best_cost, t.best_cost) << "block=" << block;
    EXPECT_EQ(a.best, t.best) << "block=" << block;
  }
}

TEST(ParallelSa, PaperGeometryRunsOnGT560M) {
  // 4 blocks x 192 threads on a small instance, few generations.
  const Instance instance = cdd::testing::RandomCdd(12, 0.6, 314);
  sim::Device gpu(sim::GeForceGT560M());
  ParallelSaParams params;
  params.config = LaunchConfig{};  // the paper's 4 x 192
  params.generations = 5;
  params.temp_samples = 100;
  const GpuRunResult result = RunParallelSa(gpu, instance, params);
  EXPECT_LT(result.best_cost, kInfiniteCost);
  EXPECT_EQ(result.evaluations, 768u * 6);
}

}  // namespace
}  // namespace cdd::par

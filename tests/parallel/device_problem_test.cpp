/// DeviceProblem upload tests and fitness-kernel memory-policy
/// equivalence.

#include "parallel/device_problem.hpp"

#include <gtest/gtest.h>

#include "common/test_instances.hpp"
#include "core/eval_cdd.hpp"
#include "parallel/detail.hpp"
#include "parallel/parallel_sa.hpp"

namespace cdd::par {
namespace {

TEST(DeviceProblem, UploadsStructureOfArrays) {
  const Instance instance = cdd::testing::PaperExampleUcddcp();
  sim::Device gpu;
  const DeviceProblem problem(gpu, instance);
  EXPECT_EQ(problem.n(), 5);
  EXPECT_EQ(problem.due_date(), 22);
  EXPECT_TRUE(problem.controllable());
  for (std::size_t i = 0; i < instance.size(); ++i) {
    EXPECT_EQ(problem.proc()[i], instance.job(i).proc);
    EXPECT_EQ(problem.min_proc()[i], instance.job(i).min_proc);
    EXPECT_EQ(problem.alpha()[i], instance.job(i).early);
    EXPECT_EQ(problem.beta()[i], instance.job(i).tardy);
    EXPECT_EQ(problem.gamma()[i], instance.job(i).compress);
  }
  // 5 SoA uploads + 2 constant symbols (d, n) hit the transfer ledger.
  EXPECT_GE(gpu.profiler().h2d().count, 6u);
}

TEST(DeviceProblem, SharedBytesAndCostBound) {
  const Instance instance = cdd::testing::RandomCdd(100, 0.6, 1001);
  sim::Device gpu;
  const DeviceProblem problem(gpu, instance);
  EXPECT_EQ(problem.shared_bytes(), 2 * 100 * sizeof(Cost));
  // The bound must dominate any real sequence cost.
  const CddEvaluator eval(instance);
  EXPECT_GT(problem.cost_upper_bound(),
            eval.Evaluate(IdentitySequence(100)));
}

TEST(DeviceProblem, RejectsRestrictedControllable) {
  const Instance base = cdd::testing::RandomUcddcp(8, 1.0, 1002);
  const Instance restricted =
      Instance(Problem::kCddcp, base.due_date() / 2, base.jobs());
  sim::Device gpu;
  EXPECT_THROW(DeviceProblem(gpu, restricted), std::invalid_argument);
}

TEST(DeviceProblem, CddInstanceIsNotControllable) {
  const Instance instance = cdd::testing::RandomCdd(10, 0.5, 1003);
  sim::Device gpu;
  const DeviceProblem problem(gpu, instance);
  EXPECT_FALSE(problem.controllable());
  for (std::size_t i = 0; i < instance.size(); ++i) {
    EXPECT_EQ(problem.gamma()[i], 0);
  }
}

TEST(FitnessMemoryPolicy, AllThreePathsComputeIdenticalCosts) {
  // Shared staging, texture fetches and plain global reads differ only in
  // modeled time; the solver outcome must be bit-identical.
  const Instance instance = cdd::testing::RandomUcddcp(20, 1.1, 1004);
  Cost costs[3];
  double times[3];
  const detail::PenaltyMemory kinds[3] = {detail::PenaltyMemory::kShared,
                                          detail::PenaltyMemory::kTexture,
                                          detail::PenaltyMemory::kGlobal};
  for (int k = 0; k < 3; ++k) {
    sim::Device gpu;
    ParallelSaParams params;
    params.config = LaunchConfig::ForEnsemble(32, 16);
    params.generations = 80;
    params.temp_samples = 100;
    params.penalty_memory = kinds[k];
    const GpuRunResult result = RunParallelSa(gpu, instance, params);
    costs[k] = result.best_cost;
    times[k] = result.device_seconds;
  }
  EXPECT_EQ(costs[0], costs[1]);
  EXPECT_EQ(costs[1], costs[2]);
  EXPECT_LT(times[0], times[2]);  // shared cheaper than global
  EXPECT_LT(times[1], times[2]);  // texture cheaper than global
}

TEST(FitnessMemoryPolicy, SharedFallsBackForOversizedInstances) {
  // 2*n*8 bytes beyond the 48 KiB shared limit: the kernel must fall back
  // to global reads and still be correct.
  const Instance instance = cdd::testing::RandomCdd(4000, 0.6, 1005);
  sim::Device gpu;
  ParallelSaParams params;
  params.config = LaunchConfig::ForEnsemble(8, 8);
  params.generations = 3;
  params.temp_samples = 20;
  const GpuRunResult result = RunParallelSa(gpu, instance, params);
  const meta::Objective objective = meta::Objective::ForInstance(instance);
  EXPECT_EQ(objective(result.best), result.best_cost);
}

}  // namespace
}  // namespace cdd::par

/// LaunchFitness transfer accounting: the view's backend tag decides the
/// modeled staging cost (pageable host rows pay H2D/D2H, pinned and
/// device-resident rows are zero-copy) while the computed costs stay
/// bit-identical on every backend.

#include <gtest/gtest.h>

#include <vector>

#include "common/test_instances.hpp"
#include "core/candidate_pool.hpp"
#include "core/pool_allocator.hpp"
#include "core/sequence.hpp"
#include "parallel/detail.hpp"
#include "parallel/device_problem.hpp"
#include "parallel/launch_config.hpp"
#include "rng/philox.hpp"

namespace cdd::par {
namespace {

constexpr std::int32_t kJobs = 16;
constexpr std::uint32_t kRows = 8;

struct FitnessRun {
  std::vector<Cost> costs;
  double sim_seconds = 0.0;
};

FitnessRun RunFitness(core::PoolBackend backend) {
  const Instance instance = cdd::testing::RandomCdd(kJobs, 0.6, 42);
  sim::Device device;
  const DeviceProblem problem(device, instance);

  CandidatePool pool(kJobs, kRows, core::PoolAllocatorFor(backend));
  rng::Philox4x32 rng(/*seed=*/9, /*stream=*/0xf17ULL);
  for (std::uint32_t r = 0; r < kRows; ++r) {
    const Sequence seq = RandomSequence(kJobs, rng);
    pool.Append(seq);
  }

  const LaunchConfig config = LaunchConfig::ForEnsemble(kRows, kRows);
  device.ResetClock();  // isolate the launch from the problem upload
  detail::LaunchFitness(device, problem, config, pool.view(),
                        "fitness_transfer_test");

  FitnessRun run;
  run.costs.assign(pool.costs().begin(), pool.costs().end());
  run.sim_seconds = device.sim_time_s();
  return run;
}

TEST(FitnessTransfer, CostsAreBitIdenticalAcrossBackends) {
  const FitnessRun reference = RunFitness(core::PoolBackend::kHost);
  ASSERT_EQ(reference.costs.size(), kRows);
  for (const core::PoolBackend backend :
       {core::PoolBackend::kPinned, core::PoolBackend::kDevice,
        core::PoolBackend::kNuma}) {
    EXPECT_EQ(RunFitness(backend).costs, reference.costs)
        << core::ToString(backend);
  }
}

TEST(FitnessTransfer, PageableViewsChargeStagingAndPinnedOnesDoNot) {
  const double host = RunFitness(core::PoolBackend::kHost).sim_seconds;
  const double numa = RunFitness(core::PoolBackend::kNuma).sim_seconds;
  const double pinned = RunFitness(core::PoolBackend::kPinned).sim_seconds;
  const double device = RunFitness(core::PoolBackend::kDevice).sim_seconds;

  // Pinned (DMA-able) and device-resident views are consumed in place, so
  // the launch costs exactly the kernel; the two pageable backends pay the
  // same modeled bounce on top of it.
  EXPECT_DOUBLE_EQ(pinned, device);
  EXPECT_DOUBLE_EQ(host, numa);
  EXPECT_GT(host, pinned);
}

}  // namespace
}  // namespace cdd::par

/// Multi-device ensemble tests.

#include "parallel/multi_device.hpp"

#include <gtest/gtest.h>

#include "common/test_instances.hpp"
#include "meta/objective.hpp"

namespace cdd::par {
namespace {

ParallelSaParams SmallParams() {
  ParallelSaParams p;
  p.config = LaunchConfig::ForEnsemble(16, 16);
  p.generations = 120;
  p.temp_samples = 100;
  p.seed = 51;
  return p;
}

TEST(MultiDevice, SingleDeviceEqualsPlainRun) {
  const Instance instance = cdd::testing::RandomCdd(15, 0.5, 801);
  sim::Device solo;
  const GpuRunResult plain =
      RunParallelSa(solo, instance, SmallParams());

  sim::Device d0;
  sim::Device* fleet[] = {&d0};
  const MultiDeviceResult multi =
      RunParallelSaMultiDevice(fleet, instance, SmallParams());
  EXPECT_EQ(multi.best.best_cost, plain.best_cost);
  EXPECT_EQ(multi.best.best, plain.best);
  EXPECT_DOUBLE_EQ(multi.fleet_seconds, plain.device_seconds);
  EXPECT_EQ(multi.winning_device, 0u);
}

TEST(MultiDevice, FleetQualityMonotoneInSize) {
  const Instance instance = cdd::testing::RandomCdd(20, 0.6, 802);
  sim::Device a1;
  sim::Device* one[] = {&a1};
  const Cost c1 =
      RunParallelSaMultiDevice(one, instance, SmallParams())
          .best.best_cost;

  sim::Device b1, b2, b3;
  sim::Device* three[] = {&b1, &b2, &b3};
  const MultiDeviceResult m3 =
      RunParallelSaMultiDevice(three, instance, SmallParams());
  EXPECT_LE(m3.best.best_cost, c1);  // device 0 identical, 1-2 extra
}

TEST(MultiDevice, FleetTimeIsMaxNotSum) {
  const Instance instance = cdd::testing::RandomCdd(15, 0.5, 803);
  sim::Device d0, d1;
  sim::Device* fleet[] = {&d0, &d1};
  const MultiDeviceResult result =
      RunParallelSaMultiDevice(fleet, instance, SmallParams());
  EXPECT_LT(result.fleet_seconds, result.total_device_seconds);
  EXPECT_NEAR(result.total_device_seconds, 2.0 * result.fleet_seconds,
              0.2 * result.fleet_seconds);
  EXPECT_EQ(result.best.evaluations, 2u * 16 * 121);
}

TEST(MultiDevice, ReportedCostIsAchievable) {
  const Instance instance = cdd::testing::RandomUcddcp(12, 1.1, 804);
  const meta::Objective objective = meta::Objective::ForInstance(instance);
  sim::Device d0, d1;
  sim::Device* fleet[] = {&d0, &d1};
  const MultiDeviceResult result =
      RunParallelSaMultiDevice(fleet, instance, SmallParams());
  EXPECT_EQ(objective(result.best.best), result.best.best_cost);
  EXPECT_LT(result.winning_device, 2u);
}

TEST(MultiDevice, EmptyAndNullFleetsRejected) {
  const Instance instance = cdd::testing::RandomCdd(10, 0.5, 805);
  EXPECT_THROW(RunParallelSaMultiDevice({}, instance, SmallParams()),
               std::invalid_argument);
  sim::Device* fleet[] = {nullptr};
  EXPECT_THROW(RunParallelSaMultiDevice(fleet, instance, SmallParams()),
               std::invalid_argument);
}

}  // namespace
}  // namespace cdd::par

/// Synchronous parallel SA tests, including the diversity-collapse
/// behaviour that made the paper prefer the asynchronous variant.

#include "parallel/parallel_sa_sync.hpp"

#include <gtest/gtest.h>

#include "common/test_instances.hpp"
#include "core/exact.hpp"
#include "meta/objective.hpp"
#include "parallel/parallel_sa.hpp"

namespace cdd::par {
namespace {

ParallelSaSyncParams SmallParams(std::uint32_t levels = 30,
                                 std::uint32_t chain = 5) {
  ParallelSaSyncParams p;
  p.config = LaunchConfig::ForEnsemble(32, 16);
  p.temperature_levels = levels;
  p.chain_length = chain;
  p.temp_samples = 200;
  p.seed = 31;
  return p;
}

TEST(ParallelSaSync, FindsOptimumOnTinyInstance) {
  const Instance instance = cdd::testing::RandomCdd(6, 0.5, 501);
  const Cost optimum = BruteForceCdd(instance).cost;
  sim::Device gpu;
  const GpuRunResult result =
      RunParallelSaSync(gpu, instance, SmallParams(40, 8));
  EXPECT_EQ(result.best_cost, optimum);
}

TEST(ParallelSaSync, BestCostMatchesReportedSequence) {
  const Instance instance = cdd::testing::RandomCdd(20, 0.6, 502);
  const meta::Objective objective = meta::Objective::ForInstance(instance);
  sim::Device gpu;
  const GpuRunResult result =
      RunParallelSaSync(gpu, instance, SmallParams());
  EXPECT_EQ(objective(result.best), result.best_cost);
}

TEST(ParallelSaSync, DeterministicPerSeed) {
  const Instance instance = cdd::testing::RandomCdd(15, 0.5, 503);
  sim::Device a;
  sim::Device b;
  EXPECT_EQ(RunParallelSaSync(a, instance, SmallParams()).best_cost,
            RunParallelSaSync(b, instance, SmallParams()).best_cost);
}

TEST(ParallelSaSync, DiversityCollapsesAfterBroadcast) {
  // The paper's reason for rejecting synchronous SA: every level restarts
  // all chains from the same state.  The diversity metric is measured just
  // before the broadcast; at low temperatures chains barely move away from
  // the shared state, so late-level diversity must be far below the random
  // initial spread (~n-ish positions differing).
  const Instance instance = cdd::testing::RandomCdd(40, 0.6, 504);
  sim::Device gpu;
  ParallelSaSyncParams params = SmallParams(40, 3);
  params.record_diversity = true;
  const GpuRunResult result = RunParallelSaSync(gpu, instance, params);
  ASSERT_EQ(result.diversity.size(), 40u);
  // Within a few levels the ensemble is herded together: mean distance to
  // the broadcast state stays bounded by what 3 perturbations of size 4
  // can undo (<= 12 positions), while random sequences of n=40 differ in
  // ~39 positions.
  EXPECT_LE(result.diversity.back(), 13.0);
}

TEST(ParallelSaSync, SyncPaysCommunicationOverheadPerLevel) {
  // Ferreiro et al.'s warning the paper repeats: "the exchange of the
  // states and results can be very intensive in terms of the runtime".
  // At a matched evaluation budget, the synchronous variant launches extra
  // reduction/select/broadcast kernels and a per-level D2H read, so its
  // modeled device time per evaluation must exceed the asynchronous one.
  // (Solution quality is NOT asserted here: in this reproduction the
  // elitist broadcast often *helps* quality at bench scales — recorded as
  // a deviation from the paper's premature-convergence claim in
  // EXPERIMENTS.md; the mechanism the paper describes, diversity collapse,
  // is asserted above.)
  const Instance instance = cdd::testing::RandomCdd(30, 0.6, 505);
  sim::Device d_async;
  sim::Device d_sync;

  ParallelSaParams async_params;
  async_params.config = LaunchConfig::ForEnsemble(32, 16);
  async_params.generations = 150;
  async_params.temp_samples = 200;
  async_params.seed = 31;

  ParallelSaSyncParams sync_params = SmallParams(150, 1);  // 150 evals

  const GpuRunResult ra = RunParallelSa(d_async, instance, async_params);
  const GpuRunResult rs = RunParallelSaSync(d_sync, instance, sync_params);
  ASSERT_EQ(ra.evaluations, rs.evaluations);
  EXPECT_GT(rs.device_seconds, ra.device_seconds);
  // And the sync run performs far more D2H reads (one per level).
  EXPECT_GT(d_sync.profiler().d2h().count,
            d_async.profiler().d2h().count + 100);
}

}  // namespace
}  // namespace cdd::par

/// Stream (async timeline) tests: overlap semantics, synchronization,
/// functional equivalence with the default timeline.

#include "cudasim/stream.hpp"

#include <gtest/gtest.h>

#include "cudasim/device.hpp"

namespace cdd::sim {
namespace {

KernelFn Burn(std::uint64_t units) {
  return [units](ThreadCtx& t) { t.charge(units); };
}

TEST(Stream, IndependentStreamsOverlap) {
  Device serial_dev;
  serial_dev.Launch({4}, {64}, Burn(100000));
  serial_dev.Launch({4}, {64}, Burn(100000));
  serial_dev.Synchronize();
  const double serial_time = serial_dev.sim_time_s();

  Device overlap_dev;
  Stream s1(overlap_dev);
  Stream s2(overlap_dev);
  overlap_dev.LaunchAsync(s1, {4}, {64}, LaunchOptions{}, Burn(100000));
  overlap_dev.LaunchAsync(s2, {4}, {64}, LaunchOptions{}, Burn(100000));
  overlap_dev.Synchronize();
  // Two equal kernels overlap: total ~ half of back-to-back execution.
  EXPECT_LT(overlap_dev.sim_time_s(), 0.7 * serial_time);
}

TEST(Stream, SameStreamSerializes) {
  Device gpu;
  Stream s(gpu);
  gpu.LaunchAsync(s, {4}, {64}, LaunchOptions{}, Burn(100000));
  const double after_one = s.ready_at();
  gpu.LaunchAsync(s, {4}, {64}, LaunchOptions{}, Burn(100000));
  EXPECT_NEAR(s.ready_at(), 2.0 * after_one, 0.1 * after_one);
}

TEST(Stream, SynchronizeJoinsOnlyThatStream) {
  Device gpu;
  Stream fast(gpu);
  Stream slow(gpu);
  gpu.LaunchAsync(fast, {1}, {32}, LaunchOptions{}, Burn(10));
  gpu.LaunchAsync(slow, {4}, {64}, LaunchOptions{}, Burn(1000000));
  fast.Synchronize();
  EXPECT_GE(gpu.sim_time_s(), fast.ready_at());
  EXPECT_LT(gpu.sim_time_s(), slow.ready_at());
  slow.Synchronize();
  EXPECT_GE(gpu.sim_time_s(), slow.ready_at());
}

TEST(Stream, DeviceSynchronizeJoinsAllStreams) {
  Device gpu;
  Stream s1(gpu);
  Stream s2(gpu);
  gpu.LaunchAsync(s1, {2}, {64}, LaunchOptions{}, Burn(50000));
  gpu.LaunchAsync(s2, {2}, {64}, LaunchOptions{}, Burn(90000));
  gpu.Synchronize();
  EXPECT_GE(gpu.sim_time_s(), std::max(s1.ready_at(), s2.ready_at()));
}

TEST(Stream, StreamStartsAtCurrentDeviceClock) {
  Device gpu;
  gpu.Launch({4}, {64}, Burn(100000));  // advances the default timeline
  const double t0 = gpu.sim_time_s();
  Stream s(gpu);
  gpu.LaunchAsync(s, {1}, {32}, LaunchOptions{}, Burn(10));
  EXPECT_GT(s.ready_at(), t0);  // issued after existing work
}

TEST(Stream, ExecutionIsFunctionallyIdentical) {
  // The same kernel on a stream writes the same data as on the default
  // timeline (streams change accounting only).
  std::vector<std::uint64_t> a(128, 0);
  std::vector<std::uint64_t> b(128, 0);
  const auto kernel = [](std::uint64_t* out) {
    return [out](ThreadCtx& t) {
      out[t.global_thread()] = t.global_thread() * 17;
    };
  };
  Device gpu;
  gpu.Launch({2}, {64}, kernel(a.data()));
  Stream s(gpu);
  gpu.LaunchAsync(s, {2}, {64}, LaunchOptions{}, kernel(b.data()));
  EXPECT_EQ(a, b);
}

TEST(Stream, ForeignStreamRejected) {
  Device d1;
  Device d2;
  Stream s(d1);
  EXPECT_THROW(d2.LaunchAsync(s, {1}, {32}, LaunchOptions{}, Burn(1)),
               GpuError);
}

TEST(Stream, DestructionUnregisters) {
  Device gpu;
  {
    Stream s(gpu);
    gpu.LaunchAsync(s, {4}, {64}, LaunchOptions{}, Burn(1000000));
  }  // stream destroyed with pending modeled time
  const double before = gpu.sim_time_s();
  gpu.Synchronize();  // must not join the dead stream
  EXPECT_NEAR(gpu.sim_time_s(), before,
              2 * gpu.properties().launch_overhead_s);
}

}  // namespace
}  // namespace cdd::sim

/// Execution-backend tests: selection plumbing, serial vs host-parallel
/// bit-identity of kernel results AND modeled time (the virtual-clock
/// separation), cooperative kernels under real threads, deterministic
/// error propagation.  The suite name is in the TSan CI regex: these
/// tests double as the data-race harness for exec::HostThreadPool.

#include "cudasim/exec/backend.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "cudasim/atomics.hpp"
#include "cudasim/device.hpp"

namespace cdd::sim {
namespace {

TEST(ExecBackend, ParseAndToStringRoundTrip) {
  exec::ExecBackend backend = exec::ExecBackend::kHostParallel;
  EXPECT_TRUE(exec::ParseExecBackend("serial", &backend));
  EXPECT_EQ(backend, exec::ExecBackend::kSerial);
  EXPECT_TRUE(exec::ParseExecBackend("host-parallel", &backend));
  EXPECT_EQ(backend, exec::ExecBackend::kHostParallel);

  EXPECT_EQ(exec::ToString(exec::ExecBackend::kSerial), "serial");
  EXPECT_EQ(exec::ToString(exec::ExecBackend::kHostParallel),
            "host-parallel");

  // Round trip through the names.
  for (const exec::ExecBackend b :
       {exec::ExecBackend::kSerial, exec::ExecBackend::kHostParallel}) {
    exec::ExecBackend parsed = exec::ExecBackend::kSerial;
    EXPECT_TRUE(exec::ParseExecBackend(exec::ToString(b), &parsed));
    EXPECT_EQ(parsed, b);
  }

  // Unknown names fail and leave the output untouched.
  backend = exec::ExecBackend::kHostParallel;
  EXPECT_FALSE(exec::ParseExecBackend("cuda", &backend));
  EXPECT_FALSE(exec::ParseExecBackend("", &backend));
  EXPECT_EQ(backend, exec::ExecBackend::kHostParallel);
}

TEST(ExecBackend, WorkerCapFollowsBackendAndOverrides) {
  Device gpu;
  // A serial device always runs one worker regardless of the machine.
  gpu.set_exec_backend(exec::ExecBackend::kSerial);
  EXPECT_EQ(gpu.worker_threads(), 1u);
  // Host-parallel derives the cap from the process-wide worker setting.
  gpu.set_exec_backend(exec::ExecBackend::kHostParallel);
  EXPECT_EQ(gpu.worker_threads(), exec::ActiveExecWorkers());
  EXPECT_GE(gpu.worker_threads(), 1u);
  // An explicit per-device count wins over the backend in both directions.
  gpu.set_worker_threads(4);
  EXPECT_EQ(gpu.worker_threads(), 4u);
  gpu.set_exec_backend(exec::ExecBackend::kSerial);
  EXPECT_EQ(gpu.worker_threads(), 4u);
  gpu.set_worker_threads(1);
  gpu.set_exec_backend(exec::ExecBackend::kHostParallel);
  EXPECT_EQ(gpu.worker_threads(), 1u);
}

/// The paper's reduction shape: every thread posts a packed
/// (cost << 20) | tid candidate into one global AtomicMin cell and
/// charges a thread-dependent amount of modeled work.  Returns the
/// reduction result, the per-thread output buffer and the device's
/// virtual clock after the launch.
struct ReductionRun {
  std::int64_t best;
  std::vector<std::uint64_t> out;
  double sim_time_s;
};

ReductionRun RunReduction(unsigned workers) {
  Device gpu;
  gpu.set_worker_threads(workers);
  constexpr std::uint32_t kBlocks = 24;
  constexpr std::uint32_t kThreads = 64;
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  std::vector<std::uint64_t> out(kBlocks * kThreads, 0);
  std::uint64_t* data = out.data();
  std::int64_t* cell = &best;
  gpu.Launch({kBlocks}, {kThreads}, [data, cell](ThreadCtx& t) {
    const std::uint64_t tid = t.global_thread();
    const auto cost = static_cast<std::int64_t>((tid * 2654435761u) %
                                                (std::int64_t{1} << 40));
    AtomicMin(cell, (cost << 20) | static_cast<std::int64_t>(tid));
    data[tid] = tid * 0x9e3779b97f4a7c15ull;
    t.charge(13 + tid % 7);
  });
  return {best, std::move(out), gpu.sim_time_s()};
}

TEST(ExecBackend, ReductionAndModeledTimeAreBitIdenticalToSerial) {
  const ReductionRun serial = RunReduction(1);
  for (const unsigned workers : {2u, 4u, 8u}) {
    const ReductionRun parallel = RunReduction(workers);
    EXPECT_EQ(parallel.best, serial.best) << workers << " workers";
    EXPECT_EQ(parallel.out, serial.out) << workers << " workers";
    // The virtual clock is fed only by charge() aggregates reduced in
    // block-index order, so modeled time matches to the last bit.
    EXPECT_EQ(parallel.sim_time_s, serial.sim_time_s)
        << workers << " workers";
  }
}

TEST(ExecBackend, CooperativeKernelMatchesSerialAcrossManyBlocks) {
  const auto run = [](unsigned workers) {
    Device gpu;
    gpu.set_worker_threads(workers);
    constexpr std::uint32_t kBlocks = 16;
    constexpr std::uint32_t kThreads = 32;
    std::vector<int> out(kBlocks * kThreads, -1);
    int* results = out.data();
    LaunchOptions opts;
    opts.cooperative = true;
    opts.shared_bytes = kThreads * sizeof(int);
    gpu.Launch({kBlocks}, {kThreads}, opts, [results](ThreadCtx& t) {
      int* smem = t.shared_as<int>();
      const std::uint32_t lt = t.linear_thread();
      smem[lt] = static_cast<int>(t.global_thread());
      t.syncthreads();
      results[t.global_thread()] = smem[(lt + 5) % kThreads];
      t.syncthreads();
    });
    return out;
  };
  const std::vector<int> serial = run(1);
  EXPECT_EQ(run(4), serial);
}

TEST(ExecBackend, LowestBlockErrorWinsAndDeviceSurvives) {
  Device gpu;
  gpu.set_worker_threads(4);
  // Several blocks throw; the rethrown error must be the lowest block
  // index regardless of which worker hit its failure first.
  try {
    gpu.Launch({16}, {8}, [](ThreadCtx& t) {
      if (t.linear_block() >= 5) {
        throw std::runtime_error("block " +
                                 std::to_string(t.linear_block()));
      }
    });
    FAIL() << "expected the kernel exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "block 5");
  }
  // The device (and the shared worker pool) must survive for reuse.
  std::vector<int> ok(64, 0);
  int* data = ok.data();
  EXPECT_NO_THROW(gpu.Launch({8}, {8}, [data](ThreadCtx& t) {
    data[t.global_thread()] = 1;
  }));
  EXPECT_EQ(std::accumulate(ok.begin(), ok.end(), 0), 64);
}

/// Pins the CDD_EXEC_CHUNK value for one test body and restores the
/// previous environment on scope exit.
class ScopedChunkMode {
 public:
  explicit ScopedChunkMode(const char* mode) {
    const char* old = std::getenv("CDD_EXEC_CHUNK");
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    setenv("CDD_EXEC_CHUNK", mode, 1);
  }
  ~ScopedChunkMode() {
    if (had_) {
      setenv("CDD_EXEC_CHUNK", saved_.c_str(), 1);
    } else {
      unsetenv("CDD_EXEC_CHUNK");
    }
  }

 private:
  std::string saved_;
  bool had_ = false;
};

TEST(ExecBackend, ChunkModesAreBitIdenticalIncludingModeledTime) {
  // The claim policy only moves block bodies between host threads; the
  // reduction result, per-thread outputs and the virtual clock must all
  // match the serial run under every CDD_EXEC_CHUNK value.
  const ReductionRun serial = RunReduction(1);
  for (const char* mode : {"static", "steal", "bogus-value"}) {
    const ScopedChunkMode chunk(mode);
    for (const unsigned workers : {2u, 4u}) {
      const ReductionRun parallel = RunReduction(workers);
      EXPECT_EQ(parallel.best, serial.best) << mode << " " << workers;
      EXPECT_EQ(parallel.out, serial.out) << mode << " " << workers;
      EXPECT_EQ(parallel.sim_time_s, serial.sim_time_s)
          << mode << " " << workers;
    }
  }
}

TEST(ExecBackend, StealModeSurvivesSkewAndErrors) {
  const ScopedChunkMode chunk("steal");
  Device gpu;
  gpu.set_worker_threads(4);
  // Heavily skewed block costs: the last block is the only expensive
  // one, the exact shape stealing exists for.  Every index must still
  // run exactly once.
  constexpr std::uint32_t kBlocks = 64;
  std::vector<int> ran(kBlocks, 0);
  int* data = ran.data();
  gpu.Launch({kBlocks}, {1}, [data](ThreadCtx& t) {
    const std::uint32_t b = t.linear_block();
    volatile std::uint64_t spin = 0;
    const std::uint64_t iters = b == 63 ? 200000 : 50;
    for (std::uint64_t i = 0; i < iters; ++i) spin = spin + i;
    data[b] += 1;
  });
  EXPECT_EQ(std::accumulate(ran.begin(), ran.end(), 0),
            static_cast<int>(kBlocks));
  EXPECT_EQ(*std::min_element(ran.begin(), ran.end()), 1);

  // The deterministic lowest-block error rule holds under stealing too.
  try {
    gpu.Launch({16}, {8}, [](ThreadCtx& t) {
      if (t.linear_block() >= 7) {
        throw std::runtime_error("block " +
                                 std::to_string(t.linear_block()));
      }
    });
    FAIL() << "expected the kernel exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "block 7");
  }
}

TEST(ExecBackend, BackendSelectionDoesNotChangeEngineResults) {
  // A device switched to host-parallel mid-life keeps producing the same
  // answers: run the same launch on the same device under both backends.
  Device gpu;
  const auto run = [&gpu] {
    std::vector<std::uint64_t> out(12 * 48, 0);
    std::uint64_t* data = out.data();
    gpu.Launch({12}, {48}, [data](ThreadCtx& t) {
      data[t.global_thread()] =
          t.global_thread() * 2654435761u + t.linear_block();
      t.charge(5);
    });
    return out;
  };
  gpu.set_exec_backend(exec::ExecBackend::kSerial);
  const std::vector<std::uint64_t> serial = run();
  gpu.set_worker_threads(3);
  EXPECT_EQ(run(), serial);
}

}  // namespace
}  // namespace cdd::sim

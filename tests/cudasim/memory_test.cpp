/// Device memory tests: RAII accounting, transfer ledger, limits, events.

#include "cudasim/memory.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cdd::sim {
namespace {

TEST(DeviceBuffer, RoundTripCopies) {
  Device gpu;
  DeviceBuffer<int> buffer(gpu, 8);
  const std::vector<int> host{1, 2, 3, 4, 5, 6, 7, 8};
  buffer.CopyFromHost(host);
  std::vector<int> back(8, 0);
  buffer.CopyToHost(back);
  EXPECT_EQ(back, host);
}

TEST(DeviceBuffer, PartialCopiesRespectOffsets) {
  Device gpu;
  DeviceBuffer<int> buffer(gpu, 6);
  buffer.Fill(0);
  const std::vector<int> part{7, 8};
  buffer.CopyFromHost(part, /*offset=*/2);
  std::vector<int> back(2, 0);
  buffer.CopyToHost(std::span<int>(back), /*offset=*/2);
  EXPECT_EQ(back, part);
  EXPECT_THROW(buffer.CopyFromHost(part, 5), GpuError);
  EXPECT_THROW(buffer.CopyToHost(std::span<int>(back), 5), GpuError);
}

TEST(DeviceBuffer, SizeMismatchThrows) {
  Device gpu;
  DeviceBuffer<int> buffer(gpu, 4);
  std::vector<int> wrong(3, 0);
  EXPECT_THROW(buffer.CopyFromHost(wrong), GpuError);
  EXPECT_THROW(buffer.CopyToHost(wrong), GpuError);
}

TEST(DeviceBuffer, AllocationIsAccountedAndReleased) {
  Device gpu;
  EXPECT_EQ(gpu.allocated_bytes(), 0u);
  {
    DeviceBuffer<double> buffer(gpu, 100);
    EXPECT_EQ(gpu.allocated_bytes(), 800u);
    DeviceBuffer<double> moved = std::move(buffer);
    EXPECT_EQ(gpu.allocated_bytes(), 800u);  // move does not double count
  }
  EXPECT_EQ(gpu.allocated_bytes(), 0u);
}

TEST(DeviceBuffer, GlobalMemoryExhaustionThrows) {
  DeviceProperties props = TinyDevice();
  props.global_mem = 1024;
  Device gpu(props);
  EXPECT_THROW(DeviceBuffer<char>(gpu, 2048), GpuError);
  DeviceBuffer<char> ok(gpu, 512);
  EXPECT_THROW(DeviceBuffer<char>(gpu, 1024), GpuError);
}

TEST(DeviceBuffer, TransfersAreMeteredByDirection) {
  Device gpu;
  DeviceBuffer<int> buffer(gpu, 1024);
  std::vector<int> host(1024, 1);
  buffer.CopyFromHost(host);
  buffer.CopyFromHost(host);
  buffer.CopyToHost(host);
  EXPECT_EQ(gpu.profiler().h2d().count, 2u);
  EXPECT_EQ(gpu.profiler().h2d().bytes, 2 * 1024 * sizeof(int));
  EXPECT_EQ(gpu.profiler().d2h().count, 1u);
  EXPECT_GT(gpu.profiler().h2d().sim_time_s, 0.0);
}

TEST(ConstantBuffer, HoldsSymbolsAndRespectsLimit) {
  Device gpu;
  ConstantBuffer<std::int64_t> d(gpu, 1);
  d.Set(16);
  EXPECT_EQ(d.value(), 16);

  DeviceProperties props = TinyDevice();
  props.constant_mem = 8;
  Device small(props);
  EXPECT_THROW(ConstantBuffer<std::int64_t>(small, 2), GpuError);
}

TEST(Event, MeasuresSimulatedTimeBetweenLaunches) {
  Device gpu;
  Event start;
  Event stop;
  start.Record(gpu);
  gpu.Launch({4}, {64}, [](ThreadCtx& t) { t.charge(5000); });
  stop.Record(gpu);
  EXPECT_GT(Event::ElapsedMs(start, stop), 0.0);
}

TEST(Device, ResetClockZeroesSimTimeOnly) {
  Device gpu;
  gpu.Launch({1}, {32}, [](ThreadCtx& t) { t.charge(100); });
  EXPECT_GT(gpu.sim_time_s(), 0.0);
  gpu.ResetClock();
  EXPECT_EQ(gpu.sim_time_s(), 0.0);
  EXPECT_EQ(gpu.profiler().kernels().size(), 1u);  // profiler untouched
}

}  // namespace
}  // namespace cdd::sim

/// Profiler bookkeeping tests.

#include "cudasim/profiler.hpp"

#include <gtest/gtest.h>

namespace cdd::sim {
namespace {

TEST(Profiler, AggregatesPerKernelName) {
  Profiler prof;
  prof.RecordKernel("fitness", 4, 768, 1000, 0.5);
  prof.RecordKernel("fitness", 4, 768, 2000, 0.25);
  prof.RecordKernel("reduce", 1, 32, 10, 0.01);

  const KernelRecord* fitness = prof.Find("fitness");
  ASSERT_NE(fitness, nullptr);
  EXPECT_EQ(fitness->launches, 2u);
  EXPECT_EQ(fitness->blocks, 8u);
  EXPECT_EQ(fitness->threads, 1536u);
  EXPECT_EQ(fitness->work_units, 3000u);
  EXPECT_DOUBLE_EQ(fitness->sim_time_s, 0.75);
  EXPECT_EQ(prof.kernels().size(), 2u);
  EXPECT_EQ(prof.Find("absent"), nullptr);
}

TEST(Profiler, TransfersByDirection) {
  Profiler prof;
  prof.RecordTransfer(true, 100, 0.1);
  prof.RecordTransfer(true, 200, 0.2);
  prof.RecordTransfer(false, 50, 0.05);
  EXPECT_EQ(prof.h2d().count, 2u);
  EXPECT_EQ(prof.h2d().bytes, 300u);
  EXPECT_DOUBLE_EQ(prof.h2d().sim_time_s, 0.3);
  EXPECT_EQ(prof.d2h().count, 1u);
  EXPECT_EQ(prof.d2h().bytes, 50u);
}

TEST(Profiler, ReportContainsEverySection) {
  Profiler prof;
  prof.RecordKernel("my_kernel", 1, 1, 1, 0.001);
  prof.RecordTransfer(true, 42, 0.002);
  const std::string report = prof.Report();
  EXPECT_NE(report.find("my_kernel"), std::string::npos);
  EXPECT_NE(report.find("H->D"), std::string::npos);
  EXPECT_NE(report.find("D->H"), std::string::npos);
  EXPECT_NE(report.find("42"), std::string::npos);
}

TEST(Profiler, ResetClearsEverything) {
  Profiler prof;
  prof.RecordKernel("k", 1, 1, 1, 1.0);
  prof.RecordTransfer(false, 1, 1.0);
  prof.Reset();
  EXPECT_TRUE(prof.kernels().empty());
  EXPECT_EQ(prof.h2d().count, 0u);
  EXPECT_EQ(prof.d2h().count, 0u);
}

}  // namespace
}  // namespace cdd::sim

/// Fiber substrate tests: resume/yield lifecycle, exceptions, pooling.

#include "cudasim/fiber.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace cdd::sim {
namespace {

TEST(Fiber, RunsToCompletionWithoutYield) {
  Fiber fiber;
  int counter = 0;
  fiber.Reset([&]() { counter = 42; });
  EXPECT_FALSE(fiber.done());
  EXPECT_FALSE(fiber.Resume());  // returns false: body finished
  EXPECT_TRUE(fiber.done());
  EXPECT_EQ(counter, 42);
}

TEST(Fiber, YieldSuspendsAndResumes) {
  Fiber fiber;
  std::vector<int> trace;
  fiber.Reset([&]() {
    trace.push_back(1);
    fiber.Yield();
    trace.push_back(2);
    fiber.Yield();
    trace.push_back(3);
  });
  EXPECT_TRUE(fiber.Resume());
  EXPECT_EQ(trace, (std::vector<int>{1}));
  EXPECT_TRUE(fiber.Resume());
  EXPECT_EQ(trace, (std::vector<int>{1, 2}));
  EXPECT_FALSE(fiber.Resume());
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3}));
}

TEST(Fiber, InterleavesTwoFibers) {
  Fiber a;
  Fiber b;
  std::vector<char> trace;
  a.Reset([&]() {
    trace.push_back('a');
    a.Yield();
    trace.push_back('A');
  });
  b.Reset([&]() {
    trace.push_back('b');
    b.Yield();
    trace.push_back('B');
  });
  a.Resume();
  b.Resume();
  a.Resume();
  b.Resume();
  EXPECT_EQ(trace, (std::vector<char>{'a', 'b', 'A', 'B'}));
}

TEST(Fiber, ExceptionsAreCapturedAndRethrown) {
  Fiber fiber;
  fiber.Reset([]() { throw std::runtime_error("kernel exploded"); });
  EXPECT_FALSE(fiber.Resume());  // body "finished" (by throwing)
  EXPECT_THROW(fiber.RethrowIfFailed(), std::runtime_error);
  // A second rethrow is a no-op (error consumed).
  EXPECT_NO_THROW(fiber.RethrowIfFailed());
}

TEST(Fiber, IsReusableAfterCompletion) {
  Fiber fiber;
  int total = 0;
  for (int round = 0; round < 10; ++round) {
    fiber.Reset([&]() { total += round; });
    fiber.Resume();
    ASSERT_TRUE(fiber.done());
  }
  EXPECT_EQ(total, 45);
}

TEST(Fiber, ResetWhileRunningThrows) {
  Fiber fiber;
  fiber.Reset([&]() { fiber.Yield(); });
  fiber.Resume();  // suspended at the yield
  EXPECT_THROW(fiber.Reset([]() {}), std::logic_error);
}

TEST(Fiber, ResumeAfterDoneThrows) {
  Fiber fiber;
  fiber.Reset([]() {});
  fiber.Resume();
  EXPECT_THROW(fiber.Resume(), std::logic_error);
}

TEST(FiberPool, GrowsAndReuses) {
  FiberPool pool;
  auto& first = pool.Acquire(4);
  EXPECT_GE(first.size(), 4u);
  Fiber* addr = &first[0];
  auto& second = pool.Acquire(2);  // no shrink
  EXPECT_GE(second.size(), 4u);
  EXPECT_EQ(&second[0], addr);  // same fibers, reused
  auto& third = pool.Acquire(8);
  EXPECT_GE(third.size(), 8u);
}

TEST(FiberPool, ClearDropsFibers) {
  FiberPool pool;
  pool.Acquire(4);
  pool.Clear();
  auto& fresh = pool.Acquire(1);
  EXPECT_GE(fresh.size(), 1u);
}

TEST(Fiber, DeepStackUsageSurvives) {
  // Exercise a few KB of stack inside the fiber (the O(n) evaluators use
  // far less).
  Fiber fiber(128 * 1024);
  long long sum = 0;
  fiber.Reset([&]() {
    volatile char buffer[32 * 1024];
    for (std::size_t i = 0; i < sizeof buffer; ++i) {
      buffer[i] = static_cast<char>(i);
    }
    for (std::size_t i = 0; i < sizeof buffer; i += 1024) {
      sum += buffer[i];
    }
  });
  fiber.Resume();
  EXPECT_TRUE(fiber.done());
}

}  // namespace
}  // namespace cdd::sim

/// Texture-path and per-memory-space charge tests.

#include "cudasim/texture.hpp"

#include <gtest/gtest.h>

#include "cudasim/device.hpp"

namespace cdd::sim {
namespace {

TEST(Texture, FetchReadsBufferContents) {
  Device gpu;
  DeviceBuffer<int> buffer(gpu, 4);
  const std::vector<int> host{10, 20, 30, 40};
  buffer.CopyFromHost(host);
  const TextureRef<int> tex(buffer);
  EXPECT_EQ(tex.size(), 4u);
  EXPECT_EQ(tex.Fetch(0), 10);
  EXPECT_EQ(tex.Fetch(3), 40);
  EXPECT_EQ(tex.data()[2], 30);
}

TEST(Texture, OutOfBoundsFetchThrows) {
  Device gpu;
  DeviceBuffer<int> buffer(gpu, 4);
  const TextureRef<int> tex(buffer);
  EXPECT_THROW(tex.Fetch(4), GpuError);
}

TEST(MemorySpaceCharges, OrderingGlobalTextureShared) {
  // Same nominal work, different memory paths: global costs the most,
  // shared the least, texture in between (Section IX's hypothesis).
  const auto run = [](void (ThreadCtx::*charge)(std::uint64_t)) {
    Device gpu;
    gpu.Launch({4}, {64}, [charge](ThreadCtx& t) {
      (t.*charge)(100000);
    });
    return gpu.sim_time_s();
  };
  const double global_t = run(&ThreadCtx::charge);
  const double texture_t = run(&ThreadCtx::charge_texture);
  const double shared_t = run(&ThreadCtx::charge_shared);
  const double constant_t = run(&ThreadCtx::charge_constant);
  EXPECT_LT(texture_t, global_t);
  EXPECT_LT(shared_t, texture_t);
  EXPECT_LT(constant_t, texture_t);
}

TEST(MemorySpaceCharges, FactorsApplyExactly) {
  Device gpu;
  std::uint64_t observed = 0;
  gpu.Launch({1}, {1}, [&](ThreadCtx& t) {
    t.charge_texture(1000);
    observed = t.charged();
  });
  const double factor = gpu.properties().texture_cost_factor;
  EXPECT_EQ(observed,
            static_cast<std::uint64_t>(1000.0 * factor + 0.5));
}

}  // namespace
}  // namespace cdd::sim

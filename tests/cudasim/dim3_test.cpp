/// Dim3 geometry and timing-model corner tests.

#include "cudasim/dim3.hpp"

#include <gtest/gtest.h>

#include <set>

#include "cudasim/timing_model.hpp"

namespace cdd::sim {
namespace {

TEST(Dim3, CountsAndDefaults) {
  EXPECT_EQ(Dim3{}.count(), 1u);
  EXPECT_EQ(Dim3(192).count(), 192u);
  EXPECT_EQ(Dim3(4, 3, 2).count(), 24u);
}

TEST(Dim3, LinearIsABijectionOverTheBox) {
  const Dim3 box(3, 4, 5);
  std::set<std::size_t> seen;
  for (std::uint32_t z = 0; z < box.z; ++z) {
    for (std::uint32_t y = 0; y < box.y; ++y) {
      for (std::uint32_t x = 0; x < box.x; ++x) {
        const std::size_t lin = box.linear(x, y, z);
        EXPECT_LT(lin, box.count());
        EXPECT_TRUE(seen.insert(lin).second) << "collision at " << lin;
      }
    }
  }
  EXPECT_EQ(seen.size(), box.count());
}

TEST(Dim3, XIsFastestAsInCuda) {
  const Dim3 box(4, 4, 4);
  EXPECT_EQ(box.linear(0, 0, 0), 0u);
  EXPECT_EQ(box.linear(1, 0, 0), 1u);
  EXPECT_EQ(box.linear(0, 1, 0), 4u);
  EXPECT_EQ(box.linear(0, 0, 1), 16u);
}

TEST(Dim3, ToStringAndEquality) {
  EXPECT_EQ(ToString(Dim3(4, 1, 1)), "(4,1,1)");
  EXPECT_EQ(Dim3(2, 3), Dim3(2, 3, 1));
  EXPECT_NE(Dim3(2), Dim3(3));
}

TEST(TimingModel, LatencyBoundDominatesSkewedWork) {
  // One thread does all the work: the launch cannot finish before that
  // thread even though the average load is tiny.
  const TimingModel model(GeForceGT560M());
  const std::uint64_t heavy = 10'000'000;
  LaunchCharge skewed{{4}, {192}, heavy, heavy, 0};
  const double t = model.KernelSeconds(skewed);
  const DeviceProperties props = GeForceGT560M();
  const double critical_path =
      static_cast<double>(heavy) * props.cycles_per_work_unit /
      props.clock_hz;
  EXPECT_GE(t, critical_path);
}

TEST(TimingModel, BalancedWorkBeatsSkewedWorkAtEqualTotal) {
  const TimingModel model(GeForceGT560M());
  const std::uint64_t total = 768ull * 10000;
  LaunchCharge balanced{{4}, {192}, total, 10000, 0};
  LaunchCharge skewed{{4}, {192}, total, total, 0};
  EXPECT_LT(model.KernelSeconds(balanced), model.KernelSeconds(skewed));
}

}  // namespace
}  // namespace cdd::sim

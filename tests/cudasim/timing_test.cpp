/// Analytic timing-model tests: wave arithmetic and monotone behaviour the
/// paper reasons about in Section VIII / Figure 11.

#include "cudasim/timing_model.hpp"

#include <gtest/gtest.h>

#include "cudasim/device_props.hpp"

namespace cdd::sim {
namespace {

TEST(TimingModel, WaveArithmetic) {
  // TinyDevice: 1 SM, 256 threads/SM, 1 block/SM => every block is a wave.
  const TimingModel tiny(TinyDevice());
  EXPECT_EQ(tiny.Waves({1}, {64}), 1u);
  EXPECT_EQ(tiny.Waves({5}, {64}), 5u);

  // GT 560M: 4 SMs; with 192-thread blocks, 1536/192 = 8 resident blocks
  // per SM, capped at 8 => 32 blocks per wave.
  const TimingModel gt(GeForceGT560M());
  EXPECT_EQ(gt.Waves({4}, {192}), 1u);   // the paper's configuration
  EXPECT_EQ(gt.Waves({32}, {192}), 1u);
  EXPECT_EQ(gt.Waves({33}, {192}), 2u);
}

TEST(TimingModel, MoreWorkTakesLonger) {
  const TimingModel model(GeForceGT560M());
  LaunchCharge a{{4}, {192}, 1000, 10, 0};
  LaunchCharge b{{4}, {192}, 100000, 1000, 0};
  EXPECT_LT(model.KernelSeconds(a), model.KernelSeconds(b));
}

TEST(TimingModel, TimeScalesRoughlyLinearlyInWork) {
  const TimingModel model(GeForceGT560M());
  // Large enough that launch overhead is negligible.
  LaunchCharge a{{4}, {192}, 768ull * 100000, 100000, 0};
  LaunchCharge b{{4}, {192}, 768ull * 200000, 200000, 0};
  const double ta = model.KernelSeconds(a);
  const double tb = model.KernelSeconds(b);
  EXPECT_NEAR(tb / ta, 2.0, 0.1);
}

TEST(TimingModel, OversubscriptionSerializesBlocks) {
  // Doubling the blocks past one wave should roughly double the time
  // (same per-thread work).
  const TimingModel model(GeForceGT560M());
  LaunchCharge one_wave{{32}, {192}, 32ull * 192 * 10000, 10000, 0};
  LaunchCharge two_waves{{64}, {192}, 64ull * 192 * 10000, 10000, 0};
  const double t1 = model.KernelSeconds(one_wave);
  const double t2 = model.KernelSeconds(two_waves);
  EXPECT_NEAR(t2 / t1, 2.0, 0.2);
}

TEST(TimingModel, PartialWaveAddsATail) {
  // The 33rd block runs as a second (mostly empty) wave: a visible tail
  // beyond the one-wave time of 32 blocks, but far less than a full second
  // wave (one SM processes one block instead of eight).
  const TimingModel model(GeForceGT560M());
  const auto charge = [](std::uint32_t blocks) {
    return LaunchCharge{{blocks}, {192},
                        static_cast<std::uint64_t>(blocks) * 192 * 10000,
                        10000, 0};
  };
  const double t32 = model.KernelSeconds(charge(32));
  const double t33 = model.KernelSeconds(charge(33));
  const double t64 = model.KernelSeconds(charge(64));
  EXPECT_GT(t33, 1.05 * t32);
  EXPECT_LT(t33, 1.3 * t32);
  EXPECT_NEAR(t64 / t32, 2.0, 0.1);
}

TEST(TimingModel, EmptyLaunchCostsOnlyOverhead) {
  const TimingModel model(GeForceGT560M());
  LaunchCharge idle{{4}, {192}, 0, 0, 0};
  EXPECT_NEAR(model.KernelSeconds(idle),
              GeForceGT560M().launch_overhead_s, 1e-9);
}

TEST(TimingModel, TransferHasLatencyAndBandwidthTerms) {
  const DeviceProperties props = GeForceGT560M();
  const TimingModel model(props);
  const double small = model.TransferSeconds(1, true);
  EXPECT_GE(small, props.transfer_latency_s);
  const double big = model.TransferSeconds(600'000'000, true);  // 0.6 GB
  EXPECT_NEAR(big, 0.1, 0.02);  // ~ 0.6e9 / 6e9 = 0.1 s
}

TEST(TimingModel, WarpPaddingPenalizesOddBlockSizes) {
  // 48 threads occupy 2 warps: same total work as a 64-thread block but
  // lower lane efficiency => more time per work unit.
  const TimingModel model(GeForceGT560M());
  const std::uint64_t work = 1'000'000;
  LaunchCharge b48{{4}, {48}, work, work / (4 * 48), 0};
  LaunchCharge b64{{4}, {64}, work, work / (4 * 64), 0};
  EXPECT_GT(model.KernelSeconds(b48), model.KernelSeconds(b64));
}

TEST(DeviceProperties, ResidentBlocksFollowThreadBudget) {
  const DeviceProperties gt = GeForceGT560M();
  EXPECT_EQ(gt.ResidentBlocksPerSm(192), 8u);
  EXPECT_EQ(gt.ResidentBlocksPerSm(512), 3u);
  EXPECT_EQ(gt.ResidentBlocksPerSm(1024), 1u);
  EXPECT_EQ(gt.ResidentBlocksPerSm(1536), 1u);
}

}  // namespace
}  // namespace cdd::sim

/// Device runtime tests: launch geometry, shared memory + barriers,
/// atomics, divergence detection, worker-pool equivalence.

#include "cudasim/device.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "cudasim/atomics.hpp"
#include "cudasim/memory.hpp"

namespace cdd::sim {
namespace {

TEST(Device, ThreadIndexingCoversGridExactlyOnce) {
  Device gpu;
  const Dim3 grid{3, 2, 1};
  const Dim3 block{4, 2, 2};
  const std::size_t total = grid.count() * block.count();
  std::vector<int> hits(total, 0);
  int* data = hits.data();
  gpu.Launch(grid, block, [&, data](ThreadCtx& t) {
    data[t.global_thread()] += 1;
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(total));
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(Device, LaunchValidationRejectsBadGeometry) {
  Device gpu(GeForceGT560M());
  EXPECT_THROW(gpu.Launch({1}, {2048}, [](ThreadCtx&) {}), GpuError);
  EXPECT_THROW(gpu.Launch({0}, {32}, [](ThreadCtx&) {}), GpuError);
  LaunchOptions opts;
  opts.shared_bytes = 1 << 20;  // 1 MiB > 48 KiB limit
  EXPECT_THROW(gpu.Launch({1}, {32}, opts, [](ThreadCtx&) {}), GpuError);
  EXPECT_NO_THROW(gpu.Launch({1}, {1024}, [](ThreadCtx&) {}));
}

TEST(Device, SharedMemoryStagingWithBarrier) {
  // Block-cooperative pattern of the paper's fitness kernel: every thread
  // stages one element, synchronizes, then reads an element staged by a
  // *different* thread.
  Device gpu;
  constexpr std::uint32_t kThreads = 64;
  std::vector<int> out(kThreads * 2, -1);
  int* results = out.data();

  LaunchOptions opts;
  opts.cooperative = true;
  opts.shared_bytes = kThreads * sizeof(int);
  gpu.Launch({2}, {kThreads}, opts, [results](ThreadCtx& t) {
    int* smem = t.shared_as<int>();
    const std::uint32_t lt = t.linear_thread();
    smem[lt] = static_cast<int>(lt) * 10;
    t.syncthreads();
    // Read the neighbour's value: impossible without the barrier.
    results[t.global_thread()] = smem[(lt + 1) % kThreads];
  });

  for (std::uint32_t b = 0; b < 2; ++b) {
    for (std::uint32_t i = 0; i < kThreads; ++i) {
      EXPECT_EQ(out[b * kThreads + i],
                static_cast<int>((i + 1) % kThreads) * 10);
    }
  }
}

TEST(Device, MultipleBarriersStayInLockstep) {
  Device gpu;
  constexpr std::uint32_t kThreads = 32;
  std::vector<int> counter(1, 0);
  std::vector<int> observed(kThreads, -1);
  int* cnt = counter.data();
  int* obs = observed.data();

  LaunchOptions opts;
  opts.cooperative = true;
  gpu.Launch({1}, {kThreads}, opts, [cnt, obs](ThreadCtx& t) {
    for (int phase = 0; phase < 5; ++phase) {
      if (t.linear_thread() == 0) *cnt += 1;
      t.syncthreads();
      // Every thread must observe the same phase count.
      if (*cnt != phase + 1) obs[t.linear_thread()] = phase;
      t.syncthreads();
    }
  });
  for (const int o : observed) EXPECT_EQ(o, -1);
}

TEST(Device, BarrierDivergenceIsDetected) {
  Device gpu;
  LaunchOptions opts;
  opts.cooperative = true;
  EXPECT_THROW(
      gpu.Launch({1}, {4}, opts,
                 [](ThreadCtx& t) {
                   if (t.linear_thread() == 0) return;  // thread 0 exits
                   t.syncthreads();  // others wait forever -> UB, detected
                 }),
      GpuError);
}

TEST(Device, SyncthreadsOutsideCooperativeLaunchThrows) {
  Device gpu;
  EXPECT_THROW(
      gpu.Launch({1}, {4}, [](ThreadCtx& t) { t.syncthreads(); }),
      GpuError);
  // Single-thread blocks are trivially synchronized.
  EXPECT_NO_THROW(
      gpu.Launch({2}, {1}, [](ThreadCtx& t) { t.syncthreads(); }));
}

TEST(Device, KernelExceptionPropagatesAndDeviceStaysUsable) {
  Device gpu;
  LaunchOptions opts;
  opts.cooperative = true;
  EXPECT_THROW(gpu.Launch({1}, {8}, opts,
                          [](ThreadCtx& t) {
                            if (t.linear_thread() == 3) {
                              throw std::runtime_error("boom");
                            }
                            t.syncthreads();
                          }),
               std::runtime_error);
  // The device must survive for the next launch.
  std::vector<int> ok(8, 0);
  int* data = ok.data();
  EXPECT_NO_THROW(gpu.Launch({1}, {8}, opts, [data](ThreadCtx& t) {
    data[t.linear_thread()] = 1;
    t.syncthreads();
  }));
  EXPECT_EQ(std::accumulate(ok.begin(), ok.end(), 0), 8);
}

TEST(Device, AtomicsAreCorrectUnderContention) {
  Device gpu;
  gpu.set_worker_threads(4);  // exercise real host-thread contention
  std::int64_t sum = 0;
  std::int64_t mini = 1 << 30;
  std::int64_t maxi = -1;
  gpu.Launch({32}, {64}, [&](ThreadCtx& t) {
    const auto tid = static_cast<std::int64_t>(t.global_thread());
    AtomicAdd(&sum, tid);
    AtomicMin(&mini, tid);
    AtomicMax(&maxi, tid);
  });
  const std::int64_t n = 32 * 64;
  EXPECT_EQ(sum, n * (n - 1) / 2);
  EXPECT_EQ(mini, 0);
  EXPECT_EQ(maxi, n - 1);
}

TEST(Device, AtomicCasAndExchange) {
  std::int64_t word = 5;
  EXPECT_EQ(AtomicCas<std::int64_t>(&word, 5, 9), 5);  // succeeded: old
  EXPECT_EQ(word, 9);
  EXPECT_EQ(AtomicCas<std::int64_t>(&word, 5, 1), 9);  // failed: current
  EXPECT_EQ(word, 9);
  EXPECT_EQ(AtomicExch<std::int64_t>(&word, 2), 9);
  EXPECT_EQ(word, 2);
}

TEST(Device, WorkerCountDoesNotChangeResults) {
  // Same kernel, 1 vs 4 workers: identical output buffers (block-level
  // determinism — the algorithms only write thread-private rows).
  const auto run = [](unsigned workers) {
    Device gpu;
    gpu.set_worker_threads(workers);
    std::vector<std::uint64_t> out(16 * 32, 0);
    std::uint64_t* data = out.data();
    LaunchOptions opts;
    opts.cooperative = true;
    gpu.Launch({16}, {32}, opts, [data](ThreadCtx& t) {
      const std::uint64_t tid = t.global_thread();
      data[tid] = tid * 2654435761u;
      t.syncthreads();
      data[tid] ^= t.linear_block();
    });
    return out;
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(Device, ChargeAccumulatesIntoProfiler) {
  Device gpu;
  LaunchOptions opts;
  opts.name = "charged_kernel";
  gpu.Launch({2}, {16}, opts, [](ThreadCtx& t) { t.charge(10); });
  const KernelRecord* rec = gpu.profiler().Find("charged_kernel");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->launches, 1u);
  EXPECT_EQ(rec->blocks, 2u);
  EXPECT_EQ(rec->threads, 32u);
  EXPECT_EQ(rec->work_units, 320u);
  EXPECT_GT(rec->sim_time_s, 0.0);
}

TEST(Device, SimulatedClockAdvancesWithWork) {
  Device gpu;
  const double t0 = gpu.sim_time_s();
  gpu.Launch({4}, {192}, [](ThreadCtx& t) { t.charge(1000); });
  const double t1 = gpu.sim_time_s();
  EXPECT_GT(t1, t0);
  gpu.Launch({4}, {192}, [](ThreadCtx& t) { t.charge(100000); });
  const double t2 = gpu.sim_time_s();
  EXPECT_GT(t2 - t1, t1 - t0);  // 100x work => more simulated time
}

}  // namespace
}  // namespace cdd::sim

/// Philox4x32-10 and companion generator tests: known-answer vectors,
/// stream independence, random access, and uniformity.

#include "rng/philox.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <set>
#include <vector>

namespace cdd::rng {
namespace {

TEST(Philox, KnownAnswerVectorZero) {
  // Random123 reference: philox4x32-10 of all-zero counter and key.
  const auto out = Philox4x32Block({0, 0, 0, 0}, {0, 0});
  EXPECT_EQ(out[0], 0x6627e8d5u);
  EXPECT_EQ(out[1], 0xe169c58du);
  EXPECT_EQ(out[2], 0xbc57ac4cu);
  EXPECT_EQ(out[3], 0x9b00dbd8u);
}

TEST(Philox, KnownAnswerVectorOnes) {
  // Random123 reference: all-ones counter and key.
  const auto out = Philox4x32Block(
      {0xffffffffu, 0xffffffffu, 0xffffffffu, 0xffffffffu},
      {0xffffffffu, 0xffffffffu});
  EXPECT_EQ(out[0], 0x408f276du);
  EXPECT_EQ(out[1], 0x41c83b0eu);
  EXPECT_EQ(out[2], 0xa20bc7c6u);
  EXPECT_EQ(out[3], 0x6d5451fdu);
}

TEST(Philox, DeterministicPerSeedAndStream) {
  Philox4x32 a(42, 7);
  Philox4x32 b(42, 7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Philox, DifferentStreamsDiffer) {
  Philox4x32 a(42, 0);
  Philox4x32 b(42, 1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);  // collisions of independent uniforms are rare
}

TEST(Philox, DifferentSeedsDiffer) {
  Philox4x32 a(1, 0);
  Philox4x32 b(2, 0);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Philox, SeekIsRandomAccess) {
  Philox4x32 sequential(9, 3);
  std::vector<std::uint32_t> expected;
  for (int i = 0; i < 64; ++i) expected.push_back(sequential());

  for (const std::uint64_t pos : {0ull, 1ull, 3ull, 4ull, 17ull, 63ull}) {
    Philox4x32 seeker(9, 3);
    seeker.Seek(pos);
    EXPECT_EQ(seeker(), expected[pos]) << "position " << pos;
  }
}

TEST(Philox, UniformFloatInHalfOpenUnitInterval) {
  Philox4x32 rng(2718);
  for (int i = 0; i < 100000; ++i) {
    const float u = rng.NextUniform();
    EXPECT_GT(u, 0.0f);
    EXPECT_LE(u, 1.0f);
  }
  EXPECT_FLOAT_EQ(Philox4x32::ToUniformFloat(0xffffffffu), 1.0f);
  EXPECT_GT(Philox4x32::ToUniformFloat(0), 0.0f);
}

TEST(Philox, ChiSquareUniformityOf16Buckets) {
  Philox4x32 rng(31415);
  constexpr int kBuckets = 16;
  constexpr int kSamples = 160000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng() >> 28];
  }
  double chi2 = 0.0;
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (const int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // 15 degrees of freedom; 99.9th percentile ~ 37.7.
  EXPECT_LT(chi2, 37.7);
}

TEST(Philox, MonobitBalance) {
  Philox4x32 rng(161803);
  std::int64_t bits = 0;
  constexpr int kWords = 100000;
  for (int i = 0; i < kWords; ++i) {
    bits += std::popcount(rng());
  }
  const double mean = static_cast<double>(bits) / (kWords * 32.0);
  EXPECT_NEAR(mean, 0.5, 0.002);
}

TEST(SplitMix64, KnownFirstOutputs) {
  // Reference values for seed 1234567 (Vigna's splitmix64.c).
  SplitMix64 rng(1234567);
  EXPECT_EQ(rng(), 6457827717110365317ull);
  EXPECT_EQ(rng(), 3203168211198807973ull);
}

TEST(Xoshiro256, DeterministicAndNonDegenerate) {
  Xoshiro256 a(99);
  Xoshiro256 b(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = a();
    EXPECT_EQ(v, b());
    seen.insert(v);
  }
  EXPECT_GT(seen.size(), 995u);
}

TEST(Xoshiro256, LongJumpDecorrelates) {
  Xoshiro256 a(5);
  Xoshiro256 b(5);
  b.LongJump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

}  // namespace
}  // namespace cdd::rng

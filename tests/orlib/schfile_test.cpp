/// sch-file parser/writer tests, including failure injection.

#include "orlib/schfile.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "orlib/biskup_feldmann.hpp"

namespace cdd::orlib {
namespace {

TEST(SchFile, CddRoundTrip) {
  const BiskupFeldmannGenerator gen;
  const std::vector<JobTable> original{gen.JobData(10, 0),
                                       gen.JobData(20, 1)};
  std::stringstream stream;
  WriteCddFile(stream, original);
  const std::vector<JobTable> parsed = ParseCddFile(stream);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0], original[0]);
  EXPECT_EQ(parsed[1], original[1]);
}

TEST(SchFile, UcddcpRoundTrip) {
  const BiskupFeldmannGenerator gen;
  const Instance inst = gen.Ucddcp(15, 4);
  const std::vector<JobTable> original{inst.jobs()};
  std::stringstream stream;
  WriteUcddcpFile(stream, original);
  const std::vector<JobTable> parsed = ParseUcddcpFile(stream);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0], original[0]);
}

TEST(SchFile, ParsesArbitraryWhitespaceLayout) {
  std::stringstream stream("1\n  3\n4 1 2\n\n5   3\t4\n6 5 6\n");
  const auto tables = ParseCddFile(stream);
  ASSERT_EQ(tables.size(), 1u);
  ASSERT_EQ(tables[0].size(), 3u);
  EXPECT_EQ(tables[0][1].proc, 5);
  EXPECT_EQ(tables[0][2].tardy, 6);
}

TEST(SchFile, MakeInstancesDeriveDueDates) {
  std::stringstream stream("1\n2\n10 1 2\n10 3 4\n");
  const auto tables = ParseCddFile(stream);
  const Instance cdd = MakeCddInstance(tables[0], 0.4);
  EXPECT_EQ(cdd.due_date(), 8);  // floor(0.4 * 20)
  EXPECT_NO_THROW(cdd.Validate());

  std::stringstream stream5("1\n2\n10 4 1 2 3\n10 5 3 4 2\n");
  const auto tables5 = ParseUcddcpFile(stream5);
  const Instance ucddcp = MakeUcddcpInstance(tables5[0]);
  EXPECT_EQ(ucddcp.due_date(), 20);
  EXPECT_TRUE(ucddcp.is_unrestricted());
  EXPECT_NO_THROW(ucddcp.Validate());
}

TEST(SchFile, TruncatedFileReportsLineNumber) {
  std::stringstream stream("1\n3\n4 1 2\n5 3\n");  // missing last rows
  try {
    ParseCddFile(stream);
    FAIL() << "expected SchParseError";
  } catch (const SchParseError& e) {
    EXPECT_GE(e.line(), 4u);
    EXPECT_NE(std::string(e.what()).find("line"), std::string::npos);
  }
}

TEST(SchFile, RejectsGarbageTokens) {
  std::stringstream stream("1\n1\nfour 1 2\n");
  EXPECT_THROW(ParseCddFile(stream), SchParseError);
}

TEST(SchFile, RejectsImplausibleCounts) {
  std::stringstream bad_count("0\n");
  EXPECT_THROW(ParseCddFile(bad_count), SchParseError);
  std::stringstream bad_jobs("1\n-3\n");
  EXPECT_THROW(ParseCddFile(bad_jobs), SchParseError);
}

TEST(SchFile, RejectsSemanticViolations) {
  // Processing time zero.
  std::stringstream zero_proc("1\n1\n0 1 2\n");
  EXPECT_THROW(ParseCddFile(zero_proc), SchParseError);
  // min_proc > proc in the 5-column format.
  std::stringstream bad_min("1\n1\n4 9 1 2 3\n");
  EXPECT_THROW(ParseUcddcpFile(bad_min), SchParseError);
  // Negative penalty.
  std::stringstream neg("1\n1\n4 -1 2\n");
  EXPECT_THROW(ParseCddFile(neg), SchParseError);
}

TEST(SchFile, EmptyStreamFailsCleanly) {
  std::stringstream empty;
  EXPECT_THROW(ParseCddFile(empty), SchParseError);
}

TEST(SchFile, RejectsTrailingData) {
  // One declared instance followed by a stray token: almost certainly a
  // wrong count or a concatenated file, never silently ignored.
  std::stringstream stream("1\n1\n4 1 2\n99\n");
  try {
    ParseCddFile(stream);
    FAIL() << "expected SchParseError";
  } catch (const SchParseError& e) {
    EXPECT_NE(std::string(e.what()).find("trailing data"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("'99'"), std::string::npos);
  }
  // Trailing whitespace / blank lines stay fine.
  std::stringstream ok("1\n1\n4 1 2\n\n   \n");
  EXPECT_EQ(ParseCddFile(ok).size(), 1u);
}

TEST(SchFile, LoadReportsPathForMissingFile) {
  const std::string path = "/nonexistent/dir/jobs.sch";
  try {
    LoadCddFile(path);
    FAIL() << "expected SchParseError";
  } catch (const SchParseError& e) {
    EXPECT_EQ(e.file(), path);
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("cannot open"), std::string::npos);
  }
}

TEST(SchFile, LoadReportsPathAndLineForMalformedFile) {
  const std::string path =
      ::testing::TempDir() + "/schfile_test_malformed.sch";
  {
    std::ofstream out(path);
    out << "1\n2\n4 1 2\n5 x 6\n";  // bad token on line 4
  }
  try {
    LoadCddFile(path);
    FAIL() << "expected SchParseError";
  } catch (const SchParseError& e) {
    EXPECT_EQ(e.file(), path);
    EXPECT_EQ(e.line(), 4u);
    EXPECT_NE(std::string(e.what()).find(path + ":4"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(SchFile, LoadRoundTripsAWellFormedFile) {
  const std::string path = ::testing::TempDir() + "/schfile_test_ok.sch";
  const BiskupFeldmannGenerator gen;
  const std::vector<JobTable> original{gen.JobData(8, 2)};
  {
    std::ofstream out(path);
    WriteCddFile(out, original);
  }
  const std::vector<JobTable> loaded = LoadCddFile(path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0], original[0]);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cdd::orlib

/// Statistical tests of the Biskup-Feldmann generator: the drawn data must
/// actually follow the published distributions, not merely stay in range.

#include <gtest/gtest.h>

#include "benchutil/stats.hpp"
#include "orlib/biskup_feldmann.hpp"

namespace cdd::orlib {
namespace {

/// Pools the job data of many instances for distribution checks.
std::vector<Job> Pool(std::uint32_t n, std::uint32_t instances) {
  const BiskupFeldmannGenerator gen;
  std::vector<Job> all;
  for (std::uint32_t k = 0; k < instances; ++k) {
    const std::vector<Job> jobs = gen.JobData(n, k);
    all.insert(all.end(), jobs.begin(), jobs.end());
  }
  return all;
}

TEST(GeneratorStats, ProcessingTimesUniform1To20) {
  const std::vector<Job> jobs = Pool(500, 20);  // 10k samples
  benchutil::RunningStats stats;
  std::array<int, 21> counts{};
  for (const Job& j : jobs) {
    stats.Add(static_cast<double>(j.proc));
    counts[static_cast<std::size_t>(j.proc)]++;
  }
  // U{1..20}: mean 10.5, variance (20^2-1)/12 = 33.25.
  EXPECT_NEAR(stats.mean(), 10.5, 0.25);
  EXPECT_NEAR(stats.variance(), 33.25, 1.5);
  // Chi-square over the 20 buckets (19 dof, 99.9th pct ~ 43.8).
  const double expected = jobs.size() / 20.0;
  double chi2 = 0.0;
  for (int v = 1; v <= 20; ++v) {
    const double d = counts[v] - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 43.8);
}

TEST(GeneratorStats, PenaltiesUniformInPublishedRanges) {
  const std::vector<Job> jobs = Pool(500, 20);
  benchutil::RunningStats alpha;
  benchutil::RunningStats beta;
  for (const Job& j : jobs) {
    alpha.Add(static_cast<double>(j.early));
    beta.Add(static_cast<double>(j.tardy));
  }
  EXPECT_NEAR(alpha.mean(), 5.5, 0.2);   // U{1..10}
  EXPECT_NEAR(beta.mean(), 8.0, 0.25);   // U{1..15}
}

TEST(GeneratorStats, UcddcpMinimaUniformWithinProcessingTime) {
  const BiskupFeldmannGenerator gen;
  benchutil::RunningStats ratio;
  for (std::uint32_t k = 0; k < 20; ++k) {
    const Instance inst = gen.Ucddcp(500, k);
    for (std::size_t i = 0; i < inst.size(); ++i) {
      const Job& j = inst.job(i);
      // M ~ U{1..P}: E[M/P] -> (P+1)/(2P) ~ 0.5 for large P; pooled over
      // P in {1..20} the mean ratio sits near 0.55-0.60.
      ratio.Add(static_cast<double>(j.min_proc) /
                static_cast<double>(j.proc));
    }
  }
  EXPECT_GT(ratio.mean(), 0.45);
  EXPECT_LT(ratio.mean(), 0.70);
}

TEST(GeneratorStats, InstancesAreDecorrelatedAcrossK) {
  // First processing times of 64 instances: should look uniform, not
  // constant or trending.
  const BiskupFeldmannGenerator gen;
  benchutil::RunningStats first;
  for (std::uint32_t k = 0; k < 64; ++k) {
    first.Add(static_cast<double>(gen.JobData(50, k)[0].proc));
  }
  EXPECT_GT(first.stddev(), 3.0);  // sigma of U{1..20} ~ 5.8
}

TEST(GeneratorStats, SeedChangesEverything) {
  const BiskupFeldmannGenerator a(1);
  const BiskupFeldmannGenerator b(2);
  const std::vector<Job> ja = a.JobData(100, 0);
  const std::vector<Job> jb = b.JobData(100, 0);
  std::size_t equal = 0;
  for (std::size_t i = 0; i < ja.size(); ++i) {
    if (ja[i] == jb[i]) ++equal;
  }
  // P(full Job equal) ~ 1/(20*10*15) per position; 100 positions.
  EXPECT_LT(equal, 5u);
}

}  // namespace
}  // namespace cdd::orlib

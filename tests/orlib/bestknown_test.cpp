/// Best-known registry tests: monotone updates, deviations, persistence.

#include "orlib/bestknown.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

namespace cdd::orlib {
namespace {

TEST(BestKnown, UpdateKeepsMinimum) {
  BestKnownRegistry reg;
  EXPECT_TRUE(reg.Update("a", 100));
  EXPECT_FALSE(reg.Update("a", 150));  // worse: ignored
  EXPECT_TRUE(reg.Update("a", 90));    // better: taken
  EXPECT_EQ(reg.Find("a").value(), 90);
  EXPECT_FALSE(reg.Find("missing").has_value());
}

TEST(BestKnown, PercentDeviationMatchesPaperFormula) {
  BestKnownRegistry reg;
  reg.Update("x", 200);
  EXPECT_DOUBLE_EQ(reg.PercentDeviation("x", 204), 2.0);
  EXPECT_DOUBLE_EQ(reg.PercentDeviation("x", 200), 0.0);
  EXPECT_DOUBLE_EQ(reg.PercentDeviation("x", 198), -1.0);  // improvement
  EXPECT_THROW(reg.PercentDeviation("missing", 1), std::out_of_range);
}

TEST(BestKnown, ZeroBestKnownEdgeCases) {
  BestKnownRegistry reg;
  reg.Update("zero", 0);
  EXPECT_DOUBLE_EQ(reg.PercentDeviation("zero", 0), 0.0);
  EXPECT_TRUE(std::isinf(reg.PercentDeviation("zero", 5)));
}

TEST(BestKnown, CsvRoundTripAndMerge) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "cdd_bestknown_test.csv")
          .string();
  {
    BestKnownRegistry reg;
    reg.Update("cdd-n10-k0-h0.20", 1234);
    reg.Update("ucddcp-n50-k3", 999);
    reg.SaveCsv(path);
  }
  BestKnownRegistry loaded;
  loaded.Update("cdd-n10-k0-h0.20", 1200);  // better than the file
  loaded.Update("ucddcp-n50-k3", 2000);     // worse than the file
  loaded.LoadCsv(path);
  EXPECT_EQ(loaded.Find("cdd-n10-k0-h0.20").value(), 1200);
  EXPECT_EQ(loaded.Find("ucddcp-n50-k3").value(), 999);
  std::remove(path.c_str());
}

TEST(BestKnown, LoadMissingFileIsNoop) {
  BestKnownRegistry reg;
  EXPECT_NO_THROW(reg.LoadCsv("/nonexistent/path/bestknown.csv"));
  EXPECT_EQ(reg.size(), 0u);
}

TEST(BestKnown, MalformedCsvRowsAreSkipped) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "cdd_bestknown_bad.csv")
          .string();
  {
    std::ofstream out(path);
    out << "instance,cost\ngood,42\nbadrow\nalso,notanumber\n";
  }
  BestKnownRegistry reg;
  reg.LoadCsv(path);
  EXPECT_EQ(reg.Find("good").value(), 42);
  EXPECT_EQ(reg.size(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cdd::orlib

/// Biskup–Feldmann generator tests: distribution ranges, determinism,
/// CDD/UCDDCP consistency.

#include "orlib/biskup_feldmann.hpp"

#include <gtest/gtest.h>

namespace cdd::orlib {
namespace {

TEST(Generator, JobDataStaysInPublishedRanges) {
  const BiskupFeldmannGenerator gen;
  for (const std::uint32_t n : {10u, 50u, 200u}) {
    for (std::uint32_t k = 0; k < 5; ++k) {
      for (const Job& j : gen.JobData(n, k)) {
        EXPECT_GE(j.proc, 1);
        EXPECT_LE(j.proc, 20);
        EXPECT_GE(j.early, 1);
        EXPECT_LE(j.early, 10);
        EXPECT_GE(j.tardy, 1);
        EXPECT_LE(j.tardy, 15);
        EXPECT_EQ(j.min_proc, j.proc);  // CDD data
        EXPECT_EQ(j.compress, 0);
      }
    }
  }
}

TEST(Generator, DeterministicAcrossInstances) {
  const BiskupFeldmannGenerator a(7);
  const BiskupFeldmannGenerator b(7);
  EXPECT_EQ(a.JobData(50, 3), b.JobData(50, 3));
  EXPECT_NE(a.JobData(50, 3), a.JobData(50, 4));  // k matters
  const BiskupFeldmannGenerator c(8);
  EXPECT_NE(a.JobData(50, 3), c.JobData(50, 3));  // seed matters
}

TEST(Generator, DueDateFollowsRestrictiveness) {
  const BiskupFeldmannGenerator gen;
  for (const double h : kPaperH) {
    const Instance inst = gen.Cdd(100, 0, h);
    EXPECT_EQ(inst.due_date(),
              static_cast<Time>(h * static_cast<double>(
                                        inst.total_processing_time())));
    EXPECT_NO_THROW(inst.Validate());
  }
}

TEST(Generator, UcddcpSharesCddJobDataAndIsUnrestricted) {
  const BiskupFeldmannGenerator gen;
  const Instance ucddcp = gen.Ucddcp(50, 2);
  const std::vector<Job> base = gen.JobData(50, 2);
  ASSERT_EQ(ucddcp.size(), base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(ucddcp.job(i).proc, base[i].proc);
    EXPECT_EQ(ucddcp.job(i).early, base[i].early);
    EXPECT_EQ(ucddcp.job(i).tardy, base[i].tardy);
    EXPECT_GE(ucddcp.job(i).min_proc, 1);
    EXPECT_LE(ucddcp.job(i).min_proc, ucddcp.job(i).proc);
    EXPECT_GE(ucddcp.job(i).compress, 1);
    EXPECT_LE(ucddcp.job(i).compress, 10);
  }
  EXPECT_TRUE(ucddcp.is_unrestricted());
  EXPECT_EQ(ucddcp.due_date(), ucddcp.total_processing_time());
  EXPECT_NO_THROW(ucddcp.Validate());
}

TEST(Generator, PaperConstantsMatchSectionVIII) {
  EXPECT_EQ(kPaperSizes.size(), 7u);
  EXPECT_EQ(kPaperSizes.front(), 10u);
  EXPECT_EQ(kPaperSizes.back(), 1000u);
  EXPECT_EQ(kPaperH.size(), 4u);
  EXPECT_EQ(kPaperInstancesPerSize, 10u);
  // 40 instances per size, as the paper averages over.
  EXPECT_EQ(kPaperH.size() * kPaperInstancesPerSize, 40u);
}

TEST(Generator, KeysAreCanonical) {
  EXPECT_EQ(CddKey(50, 3, 0.6), "cdd-n50-k3-h0.60");
  EXPECT_EQ(UcddcpKey(200, 7), "ucddcp-n200-k7");
}

}  // namespace
}  // namespace cdd::orlib

/// Two-phase simplex tests on hand-checked linear programs.

#include "lp/simplex.hpp"

#include <gtest/gtest.h>

namespace cdd::lp {
namespace {

TEST(Simplex, SolvesTextbookMaximizationAsMinimization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (optimum 36 at (2,6))
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {-3.0, -5.0};  // minimize the negation
  lp.Add({1.0, 0.0}, Relation::kLe, 4.0);
  lp.Add({0.0, 2.0}, Relation::kLe, 12.0);
  lp.Add({3.0, 2.0}, Relation::kLe, 18.0);
  const LpSolution sol = SolveSimplex(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -36.0, 1e-7);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-7);
  EXPECT_NEAR(sol.x[1], 6.0, 1e-7);
}

TEST(Simplex, HandlesGeAndEqConstraints) {
  // min x + 2y s.t. x + y = 10, x >= 3  => x=10-y... optimum at y=0? No:
  // min x + 2y with x+y=10, x>=3, y>=0: substitute x=10-y =>
  // 10 - y + 2y = 10 + y, minimized at y = 0, x = 10.  Objective 10.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1.0, 2.0};
  lp.Add({1.0, 1.0}, Relation::kEq, 10.0);
  lp.Add({1.0, 0.0}, Relation::kGe, 3.0);
  const LpSolution sol = SolveSimplex(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 10.0, 1e-7);
  EXPECT_NEAR(sol.x[0], 10.0, 1e-7);
  EXPECT_NEAR(sol.x[1], 0.0, 1e-7);
}

TEST(Simplex, DetectsInfeasibility) {
  // x <= 1 and x >= 2 cannot both hold.
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {1.0};
  lp.Add({1.0}, Relation::kLe, 1.0);
  lp.Add({1.0}, Relation::kGe, 2.0);
  EXPECT_EQ(SolveSimplex(lp).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  // min -x s.t. x >= 1: x can grow forever.
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {-1.0};
  lp.Add({1.0}, Relation::kGe, 1.0);
  EXPECT_EQ(SolveSimplex(lp).status, LpStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsRowsAreNormalized) {
  // T - C >= -d style rows (as the CDD model emits them).
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1.0, 0.0};
  lp.Add({1.0, -1.0}, Relation::kGe, -5.0);  // x0 >= x1 - 5
  lp.Add({0.0, 1.0}, Relation::kGe, 8.0);    // x1 >= 8
  const LpSolution sol = SolveSimplex(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 3.0, 1e-7);  // x1 = 8, x0 = 3
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic degeneracy: multiple constraints meet at the optimum; Bland's
  // rule must still terminate.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {-1.0, -1.0};
  lp.Add({1.0, 0.0}, Relation::kLe, 1.0);
  lp.Add({0.0, 1.0}, Relation::kLe, 1.0);
  lp.Add({1.0, 1.0}, Relation::kLe, 2.0);  // redundant at the optimum
  lp.Add({1.0, 1.0}, Relation::kLe, 2.0);  // duplicated on purpose
  const LpSolution sol = SolveSimplex(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -2.0, 1e-7);
}

TEST(Simplex, EmptyConstraintSet) {
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1.0, 2.0};
  const LpSolution sol = SolveSimplex(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_EQ(sol.objective, 0.0);

  lp.objective = {-1.0, 2.0};
  EXPECT_EQ(SolveSimplex(lp).status, LpStatus::kUnbounded);
}

TEST(Simplex, RejectsMalformedProblems) {
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1.0};  // wrong length
  EXPECT_THROW(SolveSimplex(lp), std::invalid_argument);
  EXPECT_THROW(lp.Add({1.0}, Relation::kLe, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace cdd::lp

/// LP-in-the-loop evaluator tests, including the restricted controllable
/// case (Problem::kCddcp) no O(n) algorithm covers.

#include "lp/sequence_evaluator.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/test_instances.hpp"
#include "core/eval_cdd.hpp"
#include "core/eval_ucddcp.hpp"
#include "meta/sa.hpp"

namespace cdd::lp {
namespace {

/// Independent exhaustive evaluator for tiny controllable instances:
/// enumerates every compression vector on a grid and every candidate
/// offset — shares no code with the simplex.
Cost ExhaustiveControllableCost(const Instance& instance,
                                std::span<const JobId> seq) {
  const std::size_t n = instance.size();
  const Time d = instance.due_date();
  std::vector<Time> reducible(n);
  std::vector<std::size_t> radix(n);
  std::size_t combos = 1;
  for (std::size_t k = 0; k < n; ++k) {
    const Job& job = instance.job(static_cast<std::size_t>(seq[k]));
    reducible[k] = job.proc - job.min_proc;
    radix[k] = static_cast<std::size_t>(reducible[k]) + 1;
    combos *= radix[k];
  }
  Cost best = kInfiniteCost;
  for (std::size_t combo = 0; combo < combos; ++combo) {
    std::vector<Time> x(n);
    std::size_t rest = combo;
    Time total_eff = 0;
    for (std::size_t k = 0; k < n; ++k) {
      x[k] = static_cast<Time>(rest % radix[k]);
      rest /= radix[k];
      total_eff += instance.job(static_cast<std::size_t>(seq[k])).proc -
                   x[k];
    }
    // Candidate offsets: 0 and every "some job completes at d".
    std::vector<Time> offsets{0};
    Time prefix = 0;
    for (std::size_t k = 0; k < n; ++k) {
      prefix += instance.job(static_cast<std::size_t>(seq[k])).proc - x[k];
      if (d - prefix >= 0) offsets.push_back(d - prefix);
    }
    for (const Time offset : offsets) {
      Cost cost = 0;
      Time c = offset;
      for (std::size_t k = 0; k < n; ++k) {
        const Job& job = instance.job(static_cast<std::size_t>(seq[k]));
        c += job.proc - x[k];
        cost += job.early * std::max<Time>(0, d - c);
        cost += job.tardy * std::max<Time>(0, c - d);
        cost += job.compress * x[k];
      }
      best = std::min(best, cost);
    }
  }
  return best;
}

Instance RestrictedCddcp(std::uint32_t n, std::uint64_t seed) {
  // Random controllable instance with a *restrictive* due date
  // (h ~ 0.5): exactly what the O(n) algorithms cannot solve.
  const Instance base = cdd::testing::RandomUcddcp(n, 1.0, seed);
  std::vector<Job> jobs = base.jobs();
  return Instance(Problem::kCddcp, base.due_date() / 2, std::move(jobs));
}

TEST(LpSequenceEvaluator, MatchesFastEvaluatorsOnSupportedProblems) {
  const Instance cdd = cdd::testing::RandomCdd(10, 0.5, 701);
  const Sequence seq = cdd::testing::RandomSeq(10, 7);
  EXPECT_EQ(LpSequenceEvaluator(cdd).Evaluate(seq),
            CddEvaluator(cdd).Evaluate(seq));

  const Instance ucddcp = cdd::testing::RandomUcddcp(10, 1.2, 702);
  EXPECT_EQ(LpSequenceEvaluator(ucddcp).Evaluate(seq),
            UcddcpEvaluator(ucddcp).Evaluate(seq));
}

TEST(LpSequenceEvaluator, RestrictedControllableMatchesExhaustive) {
  for (std::uint64_t trial = 0; trial < 12; ++trial) {
    const Instance instance = RestrictedCddcp(4, 703 + trial);
    const Sequence seq = cdd::testing::RandomSeq(4, trial);
    ASSERT_EQ(LpSequenceEvaluator(instance).Evaluate(seq),
              ExhaustiveControllableCost(instance, seq))
        << instance.Summary() << " trial=" << trial;
  }
}

TEST(LpSequenceEvaluator, RestrictedNeverWorseThanRigid) {
  // Allowing compression can only help.
  const Instance instance = RestrictedCddcp(8, 720);
  const Sequence seq = IdentitySequence(8);
  const Cost flexible = LpSequenceEvaluator(instance).Evaluate(seq);
  const Cost rigid = CddEvaluator(instance.as_cdd()).Evaluate(seq);
  EXPECT_LE(flexible, rigid);
}

TEST(LpSequenceEvaluator, ScheduleIsFeasibleAndCostConsistent) {
  const Instance instance = RestrictedCddcp(6, 730);
  const Sequence seq = cdd::testing::RandomSeq(6, 3);
  const LpSequenceEvaluator eval(instance);
  const Schedule schedule = eval.BuildSchedule(seq);
  ValidateSchedule(instance, schedule);  // idle allowed in the LP
  EXPECT_EQ(EvaluateSchedule(instance, schedule), eval.Evaluate(seq));
}

TEST(LpSequenceEvaluator, DrivesMetaheuristicsOnTheRestrictedProblem) {
  // The full layer-(i) stack works on kCddcp through the LP objective —
  // the configuration the paper says is "quite slow" but is the only
  // exact option for the restricted case.
  const Instance instance = RestrictedCddcp(6, 740);
  EXPECT_THROW(meta::Objective::ForInstance(instance),
               std::invalid_argument);
  const meta::Objective objective = MakeLpObjective(instance);
  meta::SaParams params;
  params.iterations = 150;
  params.temp_samples = 30;
  const meta::RunResult result = meta::RunSerialSa(objective, params);
  EXPECT_LT(result.best_cost, kInfiniteCost);
  EXPECT_EQ(objective(result.best), result.best_cost);
}

TEST(LpSequenceEvaluator, KcddcpValidatesWithoutUnrestrictedRule) {
  const Instance restricted = RestrictedCddcp(5, 750);
  EXPECT_NO_THROW(restricted.Validate());
  EXPECT_FALSE(restricted.is_unrestricted());
  EXPECT_NE(restricted.Summary().find("CDDCP"), std::string::npos);
}

}  // namespace
}  // namespace cdd::lp

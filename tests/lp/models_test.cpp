/// Fixed-sequence LP models vs the O(n) evaluators: the strongest oracle
/// chain in the suite.  The LP allows machine idle time, so agreement also
/// re-verifies the no-idle property of Cheng & Kahlbacher.

#include "lp/models.hpp"

#include <gtest/gtest.h>

#include "common/test_instances.hpp"
#include "core/eval_cdd.hpp"
#include "core/eval_ucddcp.hpp"

namespace cdd::lp {
namespace {

TEST(LpModels, PaperCddExampleSolvesTo81) {
  const Instance instance = cdd::testing::PaperExampleCdd();
  EXPECT_EQ(SolveSequenceLp(instance, IdentitySequence(5)), 81);
}

TEST(LpModels, PaperUcddcpExampleSolvesTo77) {
  const Instance instance = cdd::testing::PaperExampleUcddcp();
  EXPECT_EQ(SolveSequenceLp(instance, IdentitySequence(5)), 77);
}

class LpVsFastCdd
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, double>> {};

TEST_P(LpVsFastCdd, SimplexMatchesLinearAlgorithm) {
  const auto [n, h] = GetParam();
  for (std::uint64_t trial = 0; trial < 10; ++trial) {
    const std::uint64_t seed = 5000 + trial * 19 + n;
    const Instance instance = cdd::testing::RandomCdd(n, h, seed);
    const Sequence seq = cdd::testing::RandomSeq(n, seed ^ 0x77);
    ASSERT_EQ(SolveSequenceLp(instance, seq),
              EvaluateCddSequence(instance, seq))
        << instance.Summary() << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LpVsFastCdd,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 7u, 12u),
                       ::testing::Values(0.3, 0.7, 1.1)));

class LpVsFastUcddcp
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, double>> {};

TEST_P(LpVsFastUcddcp, SimplexMatchesLinearAlgorithm) {
  const auto [n, slack] = GetParam();
  for (std::uint64_t trial = 0; trial < 10; ++trial) {
    const std::uint64_t seed = 6000 + trial * 23 + n;
    const Instance instance = cdd::testing::RandomUcddcp(n, slack, seed);
    const Sequence seq = cdd::testing::RandomSeq(n, seed ^ 0x99);
    ASSERT_EQ(SolveSequenceLp(instance, seq),
              EvaluateUcddcpSequence(instance, seq))
        << instance.Summary() << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LpVsFastUcddcp,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 7u, 12u),
                       ::testing::Values(1.0, 1.4)));

TEST(LpModels, ModelShapesAreAsDocumented) {
  const Instance instance = cdd::testing::PaperExampleUcddcp();
  const Sequence seq = IdentitySequence(5);
  const LpProblem cdd_model = BuildCddModel(instance, seq);
  EXPECT_EQ(cdd_model.num_vars, 15u);           // C, E, T
  EXPECT_EQ(cdd_model.constraints.size(), 15u); // 3 rows per job
  const LpProblem ucddcp_model = BuildUcddcpModel(instance, seq);
  EXPECT_EQ(ucddcp_model.num_vars, 20u);           // C, E, T, X
  EXPECT_EQ(ucddcp_model.constraints.size(), 20u); // 4 rows per job
}

TEST(LpModels, RejectsInvalidSequences) {
  const Instance instance = cdd::testing::PaperExampleCdd();
  EXPECT_THROW(BuildCddModel(instance, Sequence{0, 0, 1, 2, 3}),
               std::invalid_argument);
}

}  // namespace
}  // namespace cdd::lp

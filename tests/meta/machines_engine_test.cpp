/// The variant tier's engine behavior (docs/WORKLOADS.md): "sa" and "ta"
/// search (permutation, splits) candidates on parallel-machine and
/// early-work instances, their lifecycle guarantees (split-run
/// determinism, checkpoint/restore) extend to the splits state, reported
/// costs match the raw evaluators, and every other engine rejects the
/// variants with the support diagnostic.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/test_instances.hpp"
#include "core/eval_raw.hpp"
#include "meta/engine.hpp"
#include "serve/engine_registry.hpp"

namespace cdd::serve {
namespace {

const char* const kVariantEngines[] = {"sa", "ta"};
const char* const kSequenceOnlyEngines[] = {"dpso", "es",       "host",
                                            "bnb",  "psa",      "pdpso",
                                            "psa-sync", "race"};

EngineOptions SmallOptions() {
  EngineOptions options;
  options.seed = 29;
  options.generations = 400;
  options.trajectory_stride = 16;
  return options;
}

Instance MachineInstance(std::int32_t machines, bool early_work) {
  Instance instance = cdd::testing::RandomCdd(16, 0.5, 7);
  if (machines > 1) instance = instance.with_machines(machines);
  if (early_work) {
    instance = instance.with_objective(ScheduleObjective::kEarlyWork);
  }
  return instance;
}

std::unique_ptr<meta::Engine> MakeEngine(const std::string& name,
                                         const Instance& instance) {
  const EngineFactory* factory =
      EngineRegistry::Default().FindFactory(name);
  EXPECT_NE(factory, nullptr) << name;
  return (*factory)(instance, SmallOptions());
}

/// The reported best cost must be the raw evaluator's cost of the
/// reported (best, best_splits) candidate.
void ExpectResultConsistent(const Instance& instance,
                            const meta::RunResult& result,
                            const std::string& label) {
  const auto n = static_cast<std::int32_t>(instance.size());
  const auto m = instance.machines();
  ASSERT_EQ(result.best.size(), instance.size()) << label;
  ASSERT_EQ(result.best_splits.size(),
            static_cast<std::size_t>(m > 1 ? m - 1 : 0))
      << label;
  std::int32_t prev = 0;
  for (const std::int32_t split : result.best_splits) {
    EXPECT_GE(split, prev) << label;
    EXPECT_LE(split, n) << label;
    prev = split;
  }
  std::vector<Time> proc;
  std::vector<Cost> alpha;
  std::vector<Cost> beta;
  for (const Job& job : instance.jobs()) {
    proc.push_back(job.proc);
    alpha.push_back(job.early);
    beta.push_back(job.tardy);
  }
  const std::int32_t* splits =
      result.best_splits.empty() ? nullptr : result.best_splits.data();
  const Cost expected =
      instance.objective() == ScheduleObjective::kEarlyWork
          ? raw::EvalEarlyWork(n, m, instance.due_date(),
                               result.best.data(), splits, proc.data())
                .cost
          : raw::EvalCddMachines(n, m, instance.due_date(),
                                 result.best.data(), splits, proc.data(),
                                 alpha.data(), beta.data())
                .cost;
  EXPECT_EQ(result.best_cost, expected) << label;
}

TEST(MachinesEngine, BestCostMatchesRawEvaluators) {
  for (const std::string name : kVariantEngines) {
    for (const std::int32_t m : {2, 3}) {
      for (const bool early_work : {false, true}) {
        const Instance instance = MachineInstance(m, early_work);
        auto engine = MakeEngine(name, instance);
        const meta::EngineOutput output = meta::RunToCompletion(*engine);
        ExpectResultConsistent(
            instance, output.result,
            name + " m=" + std::to_string(m) +
                (early_work ? " early-work" : " total-penalty"));
      }
    }
  }
}

TEST(MachinesEngine, SingleMachineRunsReportNoSplits) {
  for (const std::string name : kVariantEngines) {
    const Instance instance = MachineInstance(1, false);
    auto engine = MakeEngine(name, instance);
    const meta::EngineOutput output = meta::RunToCompletion(*engine);
    EXPECT_TRUE(output.result.best_splits.empty()) << name;
  }
}

TEST(MachinesEngine, SplitRunMatchesUninterrupted) {
  for (const std::string name : kVariantEngines) {
    const Instance instance = MachineInstance(3, false);
    auto reference = MakeEngine(name, instance);
    const meta::EngineOutput whole = meta::RunToCompletion(*reference);

    for (const std::uint64_t split : {1ull, 7ull, 113ull}) {
      auto engine = MakeEngine(name, instance);
      engine->Step(split);
      engine->Step(meta::kStepAll);
      const meta::EngineOutput out = engine->Finish();
      const std::string label = name + " split=" + std::to_string(split);
      EXPECT_EQ(out.result.best_cost, whole.result.best_cost) << label;
      EXPECT_EQ(out.result.best, whole.result.best) << label;
      EXPECT_EQ(out.result.best_splits, whole.result.best_splits) << label;
      EXPECT_EQ(out.result.evaluations, whole.result.evaluations) << label;
      EXPECT_EQ(out.result.trajectory, whole.result.trajectory) << label;
    }
  }
}

TEST(MachinesEngine, RestoreRewindsSplitsState) {
  for (const std::string name : kVariantEngines) {
    const Instance instance = MachineInstance(2, true);
    auto reference = MakeEngine(name, instance);
    const meta::EngineOutput whole = meta::RunToCompletion(*reference);

    auto engine = MakeEngine(name, instance);
    engine->Step(37);
    const auto checkpoint = engine->Checkpoint();
    engine->Step(101);  // speculative: moves current splits and sequence
    engine->Restore(*checkpoint);
    engine->Step(meta::kStepAll);
    const meta::EngineOutput out = engine->Finish();
    EXPECT_EQ(out.result.best_cost, whole.result.best_cost) << name;
    EXPECT_EQ(out.result.best, whole.result.best) << name;
    EXPECT_EQ(out.result.best_splits, whole.result.best_splits) << name;
    EXPECT_EQ(out.result.evaluations, whole.result.evaluations) << name;
  }
}

TEST(MachinesEngine, SupportMatrixMatchesWorkloadsDoc) {
  const Instance plain = MachineInstance(1, false);
  const Instance machines = MachineInstance(2, false);
  const Instance early = MachineInstance(1, true);
  for (const std::string name : kVariantEngines) {
    EXPECT_TRUE(EngineSupportsInstance(name, plain)) << name;
    EXPECT_TRUE(EngineSupportsInstance(name, machines)) << name;
    EXPECT_TRUE(EngineSupportsInstance(name, early)) << name;
    EXPECT_TRUE(EngineSupportDiagnostic(name, machines).empty()) << name;
  }
  for (const std::string name : kSequenceOnlyEngines) {
    EXPECT_TRUE(EngineSupportsInstance(name, plain)) << name;
    EXPECT_FALSE(EngineSupportsInstance(name, machines)) << name;
    EXPECT_FALSE(EngineSupportsInstance(name, early)) << name;
    const std::string diagnostic = EngineSupportDiagnostic(name, machines);
    EXPECT_NE(diagnostic.find(name), std::string::npos) << diagnostic;
    EXPECT_NE(diagnostic.find("sa, ta"), std::string::npos) << diagnostic;
  }
}

TEST(MachinesEngine, UnsupportedFactoriesThrowTheDiagnostic) {
  const Instance machines = MachineInstance(2, false);
  const Instance early = MachineInstance(1, true);
  for (const std::string name : kSequenceOnlyEngines) {
    const EngineFactory* factory =
        EngineRegistry::Default().FindFactory(name);
    ASSERT_NE(factory, nullptr) << name;
    EXPECT_THROW((*factory)(machines, SmallOptions()),
                 std::invalid_argument)
        << name;
    EXPECT_THROW((*factory)(early, SmallOptions()), std::invalid_argument)
        << name;
  }
  // The supported engines construct fine through the same gate.
  for (const std::string name : kVariantEngines) {
    const EngineFactory* factory =
        EngineRegistry::Default().FindFactory(name);
    ASSERT_NE(factory, nullptr) << name;
    EXPECT_NO_THROW((*factory)(machines, SmallOptions())) << name;
  }
}

}  // namespace
}  // namespace cdd::serve

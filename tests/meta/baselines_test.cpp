/// Threshold Accepting and (mu+lambda)-ES baseline tests ([18]-style CPU
/// comparators).

#include <gtest/gtest.h>

#include "common/test_instances.hpp"
#include "core/exact.hpp"
#include "meta/evostrategy.hpp"
#include "meta/threshold.hpp"

namespace cdd::meta {
namespace {

TEST(ThresholdAccepting, FindsOptimumOnTinyInstance) {
  const Instance instance = cdd::testing::RandomCdd(6, 0.6, 61);
  const Cost optimum = BruteForceCdd(instance).cost;
  const Objective objective = Objective::ForInstance(instance);
  TaParams params;
  params.iterations = 4000;
  params.temp_samples = 300;
  const RunResult result = RunThresholdAccepting(objective, params);
  EXPECT_EQ(result.best_cost, optimum);
}

TEST(ThresholdAccepting, DeterministicPerSeed) {
  const Instance instance = cdd::testing::RandomCdd(18, 0.4, 62);
  const Objective objective = Objective::ForInstance(instance);
  TaParams params;
  params.iterations = 400;
  params.temp_samples = 100;
  params.seed = 13;
  EXPECT_EQ(RunThresholdAccepting(objective, params).best_cost,
            RunThresholdAccepting(objective, params).best_cost);
}

TEST(ThresholdAccepting, AcceptsSidewaysButConverges) {
  // With a decaying threshold, late iterations accept only improvements —
  // so best-so-far equals the current state's cost at the end of a long
  // run.  We just assert the reported best is achievable.
  const Instance instance = cdd::testing::RandomUcddcp(10, 1.1, 63);
  const Objective objective = Objective::ForInstance(instance);
  TaParams params;
  params.iterations = 1000;
  params.temp_samples = 200;
  const RunResult result = RunThresholdAccepting(objective, params);
  EXPECT_EQ(objective(result.best), result.best_cost);
}

TEST(EvolutionStrategy, FindsOptimumOnTinyInstance) {
  const Instance instance = cdd::testing::RandomCdd(6, 0.5, 64);
  const Cost optimum = BruteForceCdd(instance).cost;
  const Objective objective = Objective::ForInstance(instance);
  EsParams params;
  params.generations = 150;
  params.mu = 8;
  params.lambda = 24;
  const RunResult result = RunEvolutionStrategy(objective, params);
  EXPECT_EQ(result.best_cost, optimum);
}

TEST(EvolutionStrategy, ElitismNeverRegresses) {
  const Instance instance = cdd::testing::RandomCdd(20, 0.6, 65);
  const Objective objective = Objective::ForInstance(instance);
  EsParams params;
  params.generations = 60;
  params.trajectory_stride = 1;
  const RunResult result = RunEvolutionStrategy(objective, params);
  ASSERT_EQ(result.trajectory.size(), 60u);
  for (std::size_t g = 1; g < result.trajectory.size(); ++g) {
    EXPECT_LE(result.trajectory[g], result.trajectory[g - 1]);
  }
}

TEST(EvolutionStrategy, EvaluationAccounting) {
  const Instance instance = cdd::testing::RandomCdd(10, 0.5, 66);
  const Objective objective = Objective::ForInstance(instance);
  EsParams params;
  params.generations = 5;
  params.mu = 4;
  params.lambda = 12;
  const RunResult result = RunEvolutionStrategy(objective, params);
  EXPECT_EQ(result.evaluations, 4u + 5u * 12u);
}

}  // namespace
}  // namespace cdd::meta

/// Resumable-engine lifecycle properties, pinned for every registered
/// engine (including the racing portfolio with a pinned contender list):
///
///   * Split-run determinism: Step(k) ... Step(rest) + Finish is
///     bit-identical to one uninterrupted Step(kStepAll) + Finish — same
///     best cost, sequence, evaluation count, trajectory, modeled time.
///   * Checkpoint/Restore: speculative Steps after a Checkpoint() leave no
///     trace once Restore() rewinds them.
///   * Foreign checkpoints are rejected with std::invalid_argument.
///
/// These are the guarantees the serve preemption loop and the racing
/// portfolio lean on when they pause engines at Step boundaries.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/test_instances.hpp"
#include "meta/engine.hpp"
#include "serve/engine_registry.hpp"

namespace cdd::serve {
namespace {

/// Engines under test.  "race" runs with a pinned portfolio so its kill
/// schedule (and hence its winner) is deterministic.
const char* const kEngines[] = {"sa",  "ta",    "dpso",  "es",      "host",
                                "bnb", "psa",   "pdpso", "psa-sync", "race"};

EngineOptions SmallOptions(const std::string& name) {
  EngineOptions options;
  options.seed = 17;
  options.generations = 60;
  options.ensemble = 32;
  options.block = 16;
  options.chains = 8;
  options.trajectory_stride = 8;
  if (name == "race") {
    options.portfolio = "sa,ta,dpso";
    options.race_slice = 7;  // deliberately not a divisor of the budget
  }
  return options;
}

Instance TestInstance(const std::string& name) {
  // The exact tier gets a small instance (its Step unit is tree nodes and
  // the node count grows exponentially in n); heuristics get a bigger one.
  if (name == "bnb") return cdd::testing::RandomCdd(9, 0.6, 3);
  return cdd::testing::RandomCdd(24, 0.6, 3);
}

std::unique_ptr<meta::Engine> MakeEngine(const std::string& name) {
  const EngineFactory* factory =
      EngineRegistry::Default().FindFactory(name);
  EXPECT_NE(factory, nullptr) << name;
  return (*factory)(TestInstance(name), SmallOptions(name));
}

void ExpectSameOutput(const meta::EngineOutput& split,
                      const meta::EngineOutput& whole,
                      const std::string& label) {
  EXPECT_EQ(split.result.best_cost, whole.result.best_cost) << label;
  EXPECT_EQ(split.result.best, whole.result.best) << label;
  EXPECT_EQ(split.result.evaluations, whole.result.evaluations) << label;
  EXPECT_EQ(split.result.trajectory, whole.result.trajectory) << label;
  EXPECT_EQ(split.result.stopped, whole.result.stopped) << label;
  // Modeled device time is a float accumulation whose summation order
  // legitimately differs across checkpoint rebasing — ULP-level drift is
  // fine; results above are compared bit-for-bit.
  EXPECT_NEAR(split.device_seconds, whole.device_seconds,
              1e-9 * (1.0 + whole.device_seconds))
      << label;
}

TEST(EngineLifecycle, SplitRunMatchesUninterrupted) {
  for (const std::string name : kEngines) {
    auto reference = MakeEngine(name);
    const meta::EngineOutput whole = meta::RunToCompletion(*reference);

    for (const std::uint64_t split : {1ull, 5ull, 23ull}) {
      auto engine = MakeEngine(name);
      engine->Step(split);
      engine->Step(meta::kStepAll);
      ExpectSameOutput(engine->Finish(), whole,
                       name + " split=" + std::to_string(split));
    }
  }
}

TEST(EngineLifecycle, RestoreDiscardsSpeculativeSteps) {
  for (const std::string name : kEngines) {
    auto reference = MakeEngine(name);
    const meta::EngineOutput whole = meta::RunToCompletion(*reference);

    for (const std::uint64_t split : {1ull, 5ull, 23ull}) {
      auto engine = MakeEngine(name);
      engine->Step(split);
      const auto checkpoint = engine->Checkpoint();
      // Speculative divergence: run further, then rewind.  The rewound
      // run must be indistinguishable from never having diverged.
      engine->Step(split + 11);
      engine->Restore(*checkpoint);
      engine->Step(meta::kStepAll);
      ExpectSameOutput(engine->Finish(), whole,
                       name + " split=" + std::to_string(split));
    }
  }
}

TEST(EngineLifecycle, StepZeroIsAStatusPoll) {
  for (const std::string name : kEngines) {
    auto engine = MakeEngine(name);
    EXPECT_EQ(engine->Step(0), meta::StepStatus::kRunning) << name;
    engine->Step(meta::kStepAll);
    EXPECT_EQ(engine->Step(0), meta::StepStatus::kDone) << name;
    EXPECT_EQ(engine->Remaining(), 0u) << name;
  }
}

TEST(EngineLifecycle, FinishIsIdempotent) {
  for (const std::string name : kEngines) {
    auto engine = MakeEngine(name);
    engine->Step(meta::kStepAll);
    const meta::EngineOutput first = engine->Finish();
    ExpectSameOutput(engine->Finish(), first, name);
  }
}

TEST(EngineLifecycle, ForeignCheckpointIsRejected) {
  auto sa = MakeEngine("sa");
  auto ta = MakeEngine("ta");
  sa->Step(3);
  const auto checkpoint = sa->Checkpoint();
  EXPECT_THROW(ta->Restore(*checkpoint), std::invalid_argument);
}

}  // namespace
}  // namespace cdd::serve

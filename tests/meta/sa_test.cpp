/// Serial Simulated Annealing tests (Algorithm 1).

#include "meta/sa.hpp"

#include <gtest/gtest.h>

#include <chrono>

#include "common/test_instances.hpp"
#include "core/exact.hpp"
#include "core/stop_token.hpp"
#include "meta/temperature.hpp"

namespace cdd::meta {
namespace {

TEST(SerialSa, FindsOptimumOnTinyInstance) {
  const Instance instance = cdd::testing::RandomCdd(6, 0.5, 11);
  const Cost optimum = BruteForceCdd(instance).cost;
  const Objective objective = Objective::ForInstance(instance);
  SaParams params;
  params.iterations = 4000;
  params.temp_samples = 500;
  params.seed = 3;
  const RunResult result = RunSerialSa(objective, params);
  EXPECT_EQ(result.best_cost, optimum);
  EXPECT_NO_THROW(ValidateSequence(result.best, 6));
}

TEST(SerialSa, DeterministicPerSeed) {
  const Instance instance = cdd::testing::RandomCdd(20, 0.6, 22);
  const Objective objective = Objective::ForInstance(instance);
  SaParams params;
  params.iterations = 500;
  params.temp_samples = 100;
  params.seed = 77;
  const RunResult a = RunSerialSa(objective, params);
  const RunResult b = RunSerialSa(objective, params);
  EXPECT_EQ(a.best_cost, b.best_cost);
  EXPECT_EQ(a.best, b.best);
  params.seed = 78;
  const RunResult c = RunSerialSa(objective, params);
  // Different seeds explore differently (almost surely different result
  // sequence; allow equal cost).
  EXPECT_TRUE(c.best != a.best || c.best_cost == a.best_cost);
}

TEST(SerialSa, ReportsEvaluationsAndTime) {
  const Instance instance = cdd::testing::RandomCdd(15, 0.4, 5);
  const Objective objective = Objective::ForInstance(instance);
  SaParams params;
  params.iterations = 300;
  params.temp_samples = 100;
  const RunResult result = RunSerialSa(objective, params);
  EXPECT_EQ(result.evaluations, 301u);  // initial + one per iteration
  EXPECT_GT(result.wall_seconds, 0.0);
}

TEST(SerialSa, TrajectoryIsMonotoneNonIncreasing) {
  const Instance instance = cdd::testing::RandomCdd(30, 0.6, 8);
  const Objective objective = Objective::ForInstance(instance);
  SaParams params;
  params.iterations = 1000;
  params.temp_samples = 200;
  params.trajectory_stride = 50;
  const RunResult result = RunSerialSa(objective, params);
  ASSERT_EQ(result.trajectory.size(), 20u);
  for (std::size_t i = 1; i < result.trajectory.size(); ++i) {
    EXPECT_LE(result.trajectory[i], result.trajectory[i - 1]);
  }
}

TEST(SerialSa, InitialSequenceSeedsTheChain) {
  const Instance instance = cdd::testing::RandomCdd(10, 0.5, 99);
  const Objective objective = Objective::ForInstance(instance);
  SaParams params;
  params.iterations = 0;  // no moves: the result is the initial state
  params.initial_temperature = 1.0;
  const Sequence init = cdd::testing::RandomSeq(10, 123);
  const RunResult result = RunSerialSa(objective, params, init);
  EXPECT_EQ(result.best, init);
  EXPECT_EQ(result.best_cost, objective(init));
}

TEST(SerialSa, WorksOnUcddcp) {
  const Instance instance = cdd::testing::RandomUcddcp(8, 1.2, 41);
  const Cost optimum = BruteForceUcddcp(instance).cost;
  const Objective objective = Objective::ForInstance(instance);
  SaParams params;
  params.iterations = 6000;
  params.temp_samples = 500;
  const RunResult result = RunSerialSa(objective, params);
  EXPECT_GE(result.best_cost, optimum);
  // Near-optimality on an 8-job instance with 6000 iterations.
  EXPECT_LE(result.best_cost, optimum + std::max<Cost>(optimum / 10, 5));
}

TEST(SerialSa, StopTokenTruncatesTheRun) {
  const Instance instance = cdd::testing::RandomCdd(30, 0.6, 71);
  const Objective objective = Objective::ForInstance(instance);
  SaParams params;
  params.iterations = 100'000'000;  // far beyond what we let it run
  params.temp_samples = 100;

  StopSource source;
  source.RequestStop();  // already stopped: the loop must bail at its
                         // first poll, not after the full budget
  params.stop = source.token();
  const RunResult result = RunSerialSa(objective, params);
  EXPECT_TRUE(result.stopped);
  EXPECT_LT(result.evaluations, params.iterations);
  // Even a truncated run returns a coherent best-so-far.
  EXPECT_NO_THROW(ValidateSequence(result.best, 30));
  EXPECT_EQ(result.best_cost, objective(result.best));
}

TEST(SerialSa, DeadlineStopsALongRunEarly) {
  const Instance instance = cdd::testing::RandomCdd(40, 0.6, 72);
  const Objective objective = Objective::ForInstance(instance);
  SaParams params;
  params.iterations = 500'000'000;  // would run for minutes
  params.temp_samples = 100;

  StopSource source(StopSource::Clock::now() +
                    std::chrono::milliseconds(50));
  params.stop = source.token();
  const auto t0 = std::chrono::steady_clock::now();
  const RunResult result = RunSerialSa(objective, params);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_TRUE(result.stopped);
  EXPECT_LT(result.evaluations, params.iterations);
  // The deadline, not the budget, ended the run (generous CI margin).
  EXPECT_LT(wall_ms, 5000.0);
}

TEST(SerialSa, UnstoppedRunIsBitIdenticalWithAndWithoutToken) {
  // Polling must never consume randomness: attaching a token that never
  // fires cannot change the search trajectory in any way.
  const Instance instance = cdd::testing::RandomCdd(20, 0.5, 73);
  const Objective objective = Objective::ForInstance(instance);
  SaParams params;
  params.iterations = 800;
  params.temp_samples = 100;
  params.seed = 5;
  const RunResult bare = RunSerialSa(objective, params);

  StopSource source;  // never stopped, no deadline
  params.stop = source.token();
  const RunResult tokened = RunSerialSa(objective, params);
  EXPECT_FALSE(tokened.stopped);
  EXPECT_EQ(bare.best, tokened.best);
  EXPECT_EQ(bare.best_cost, tokened.best_cost);
  EXPECT_EQ(bare.evaluations, tokened.evaluations);
}

class FlatEvaluator : public BatchEvaluator {
 public:
  Cost Evaluate(std::span<const JobId>) const override { return Cost{42}; }
};

TEST(InitialTemperature, MatchesFitnessSpread) {
  // Constant objective => spread 0 => clamped to 1.
  const Objective flat(6, std::make_shared<FlatEvaluator>());
  EXPECT_DOUBLE_EQ(InitialTemperature(flat, 500, 1), 1.0);

  // Non-trivial instance: positive spread, deterministic per seed.
  const Instance instance = cdd::testing::RandomCdd(12, 0.5, 31);
  const Objective objective = Objective::ForInstance(instance);
  const double t1 = InitialTemperature(objective, 2000, 9);
  const double t2 = InitialTemperature(objective, 2000, 9);
  EXPECT_DOUBLE_EQ(t1, t2);
  EXPECT_GT(t1, 1.0);
}

TEST(CoolingSchedule, FamiliesBehave) {
  const CoolingSchedule expo = CoolingSchedule::Exponential(100.0, 0.88);
  EXPECT_DOUBLE_EQ(expo(0), 100.0);
  EXPECT_NEAR(expo(1), 88.0, 1e-9);
  EXPECT_LT(expo(100), 100.0 * 1e-5);

  const CoolingSchedule lin = CoolingSchedule::Linear(100.0, 10);
  EXPECT_DOUBLE_EQ(lin(0), 100.0);
  EXPECT_DOUBLE_EQ(lin(5), 50.0);
  EXPECT_DOUBLE_EQ(lin(10), 0.0);

  const CoolingSchedule log = CoolingSchedule::Logarithmic(100.0);
  EXPECT_GT(log(0), log(100));
  EXPECT_GT(log(100), 0.0);
}

}  // namespace
}  // namespace cdd::meta

/// Host-thread ensemble SA tests.

#include "meta/host_ensemble.hpp"

#include <gtest/gtest.h>

#include "common/test_instances.hpp"
#include "core/exact.hpp"

namespace cdd::meta {
namespace {

TEST(HostEnsemble, FindsOptimumOnTinyInstance) {
  const Instance instance = cdd::testing::RandomCdd(6, 0.5, 601);
  const Cost optimum = BruteForceCdd(instance).cost;
  const Objective objective = Objective::ForInstance(instance);
  HostEnsembleParams params;
  params.chains = 16;
  params.chain.iterations = 400;
  params.chain.temp_samples = 200;
  const RunResult result = RunHostEnsembleSa(objective, params);
  EXPECT_EQ(result.best_cost, optimum);
}

TEST(HostEnsemble, ThreadCountInvariant) {
  const Instance instance = cdd::testing::RandomCdd(20, 0.6, 602);
  const Objective objective = Objective::ForInstance(instance);
  HostEnsembleParams params;
  params.chains = 12;
  params.chain.iterations = 300;
  params.chain.temp_samples = 200;
  params.threads = 1;
  const RunResult serial = RunHostEnsembleSa(objective, params);
  params.threads = 4;
  const RunResult parallel = RunHostEnsembleSa(objective, params);
  EXPECT_EQ(serial.best_cost, parallel.best_cost);
  EXPECT_EQ(serial.best, parallel.best);
  EXPECT_EQ(serial.evaluations, parallel.evaluations);
}

TEST(HostEnsemble, ThreadCountInvariantAcrossWideSweep) {
  // Regression guard for the serve layer: SolverService clamps every
  // "host" run to threads=1 and relies on this invariance to do so
  // without changing results.  Chain c always runs seed+c, so any thread
  // count — including more threads than chains, and odd counts that
  // split the chains unevenly — must produce the identical result.
  const Instance instance = cdd::testing::RandomCdd(25, 0.4, 605);
  const Objective objective = Objective::ForInstance(instance);
  HostEnsembleParams params;
  params.chains = 10;
  params.chain.iterations = 250;
  params.chain.temp_samples = 150;

  params.threads = 1;
  const RunResult baseline = RunHostEnsembleSa(objective, params);
  for (const unsigned threads : {2u, 3u, 4u, 7u, 10u, 16u}) {
    params.threads = threads;
    const RunResult result = RunHostEnsembleSa(objective, params);
    EXPECT_EQ(result.best, baseline.best) << "threads=" << threads;
    EXPECT_EQ(result.best_cost, baseline.best_cost)
        << "threads=" << threads;
    EXPECT_EQ(result.evaluations, baseline.evaluations)
        << "threads=" << threads;
  }
}

TEST(HostEnsemble, MoreChainsNeverHurt) {
  const Instance instance = cdd::testing::RandomCdd(15, 0.5, 603);
  const Objective objective = Objective::ForInstance(instance);
  HostEnsembleParams params;
  params.chain.iterations = 200;
  params.chain.temp_samples = 200;
  params.chains = 4;
  const Cost few = RunHostEnsembleSa(objective, params).best_cost;
  params.chains = 32;  // superset of the first 4 chains' seeds
  const Cost many = RunHostEnsembleSa(objective, params).best_cost;
  EXPECT_LE(many, few);
}

TEST(HostEnsemble, EvaluationAccounting) {
  const Instance instance = cdd::testing::RandomCdd(10, 0.5, 604);
  const Objective objective = Objective::ForInstance(instance);
  HostEnsembleParams params;
  params.chains = 8;
  params.chain.iterations = 100;
  params.chain.temp_samples = 100;
  const RunResult result = RunHostEnsembleSa(objective, params);
  EXPECT_EQ(result.evaluations, 8u * 101u);
  EXPECT_NO_THROW(ValidateSequence(result.best, 10));
}

}  // namespace
}  // namespace cdd::meta

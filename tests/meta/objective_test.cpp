/// Objective adapter tests.

#include "meta/objective.hpp"

#include <gtest/gtest.h>

#include "common/test_instances.hpp"
#include "core/eval_cdd.hpp"
#include "core/eval_ucddcp.hpp"

namespace cdd::meta {
namespace {

TEST(Objective, DispatchesToTheRightEvaluator) {
  const Instance cdd = cdd::testing::PaperExampleCdd();
  const Objective f_cdd = Objective::ForInstance(cdd);
  EXPECT_EQ(f_cdd.size(), 5u);
  EXPECT_EQ(f_cdd(IdentitySequence(5)), 81);

  const Instance ucddcp = cdd::testing::PaperExampleUcddcp();
  const Objective f_ucddcp = Objective::ForInstance(ucddcp);
  EXPECT_EQ(f_ucddcp(IdentitySequence(5)), 77);
}

TEST(Objective, OutlivesTheInstanceItWasBuiltFrom) {
  // The factory captures the evaluator by shared_ptr; the source Instance
  // may die.
  std::unique_ptr<Objective> objective;
  {
    const Instance temp = cdd::testing::RandomCdd(12, 0.6, 1101);
    objective = std::make_unique<Objective>(Objective::ForInstance(temp));
  }
  const Sequence seq = IdentitySequence(12);
  EXPECT_GT((*objective)(seq), 0);
  EXPECT_EQ((*objective)(seq), (*objective)(seq));  // stable
}

class ConstantEvaluator : public BatchEvaluator {
 public:
  Cost Evaluate(std::span<const JobId>) const override { return Cost{7}; }
};

TEST(Objective, CustomBackendsWork) {
  const Objective constant(4, std::make_shared<ConstantEvaluator>());
  EXPECT_EQ(constant(IdentitySequence(4)), 7);
  EXPECT_EQ(constant.size(), 4u);
  EXPECT_FALSE(constant.direct());

  // The default batch path walks the pool and marks pinned unknown.
  CandidatePool pool(4, 3);
  for (int b = 0; b < 3; ++b) pool.Append(IdentitySequence(4));
  constant.EvaluateBatch(pool);
  for (int b = 0; b < 3; ++b) {
    EXPECT_EQ(pool.costs()[b], 7);
    EXPECT_EQ(pool.pinned()[b], -1);
  }
}

TEST(Objective, NullBackendRefused) {
  EXPECT_THROW(Objective(4, nullptr), std::invalid_argument);
}

TEST(Objective, DirectObjectivesFillBatchGeometry) {
  const Instance cdd = cdd::testing::PaperExampleCdd();
  const Objective objective = Objective::ForInstance(cdd);
  EXPECT_TRUE(objective.direct());
  CandidatePool pool(5, 2);
  pool.Append(IdentitySequence(5));
  pool.Append(IdentitySequence(5));
  objective.EvaluateBatch(pool);
  const CddEvaluator reference(cdd);
  const raw::EvalResult want = reference.EvaluateDetailed(IdentitySequence(5));
  for (int b = 0; b < 2; ++b) {
    EXPECT_EQ(pool.costs()[b], want.cost);
    EXPECT_EQ(pool.pinned()[b], want.pinned);
  }
}

TEST(Objective, RestrictedControllableRefusedWithGuidance) {
  const Instance base = cdd::testing::RandomUcddcp(6, 1.0, 1102);
  const Instance restricted =
      Instance(Problem::kCddcp, base.due_date() - 1, base.jobs());
  try {
    Objective::ForInstance(restricted);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("MakeLpObjective"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace cdd::meta

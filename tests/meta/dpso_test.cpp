/// Serial DPSO and crossover-operator tests (Algorithm 2, Pan et al.).

#include "meta/dpso.hpp"

#include <gtest/gtest.h>

#include "common/test_instances.hpp"
#include "core/exact.hpp"
#include "meta/ops.hpp"
#include "rng/philox.hpp"

namespace cdd::meta {
namespace {

TEST(Crossover, OnePointKeepsPrefixAndFillsFromDonor) {
  const Sequence p1{0, 1, 2, 3, 4};
  const Sequence p2{4, 3, 2, 1, 0};
  Sequence child;
  OnePointCrossover(p1, p2, /*cut=*/2, child);
  // Prefix {0,1} from p1; remaining jobs {4,3,2} in p2 order.
  EXPECT_EQ(child, (Sequence{0, 1, 4, 3, 2}));
}

TEST(Crossover, OnePointEdgeCuts) {
  const Sequence p1{0, 1, 2};
  const Sequence p2{2, 1, 0};
  Sequence child;
  OnePointCrossover(p1, p2, 0, child);
  EXPECT_EQ(child, p2);  // nothing from p1
  OnePointCrossover(p1, p2, 3, child);
  EXPECT_EQ(child, p1);  // everything from p1
}

TEST(Crossover, TwoPointKeepsSegmentInPlace) {
  const Sequence p1{0, 1, 2, 3, 4};
  const Sequence p2{4, 3, 2, 1, 0};
  Sequence child;
  TwoPointCrossover(p1, p2, /*a=*/1, /*b=*/3, child);
  // Segment {1,2} stays at positions 1..2; {4,3,0} fill 0,3,4 in p2 order.
  EXPECT_EQ(child, (Sequence{4, 1, 2, 3, 0}));
}

TEST(Crossover, TwoPointEdgeSegments) {
  const Sequence p1{0, 1, 2};
  const Sequence p2{2, 0, 1};
  Sequence child;
  TwoPointCrossover(p1, p2, 0, 0, child);  // empty segment
  EXPECT_EQ(child, p2);
  TwoPointCrossover(p1, p2, 0, 3, child);  // full segment
  EXPECT_EQ(child, p1);
}

/// Property: both crossovers always produce valid permutations.
class CrossoverSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CrossoverSweep, ChildrenAreAlwaysPermutations) {
  const std::uint32_t n = GetParam();
  rng::Philox4x32 rng(n * 7919);
  Sequence child;
  for (int trial = 0; trial < 100; ++trial) {
    const Sequence p1 = RandomSequence(n, rng);
    const Sequence p2 = RandomSequence(n, rng);
    OnePointCrossover(p1, p2, rng, child);
    ASSERT_TRUE(IsPermutation(child)) << "one-point n=" << n;
    TwoPointCrossover(p1, p2, rng, child);
    ASSERT_TRUE(IsPermutation(child)) << "two-point n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CrossoverSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 20u, 77u));

TEST(SerialDpso, FindsOptimumOnTinyInstance) {
  const Instance instance = cdd::testing::RandomCdd(6, 0.5, 17);
  const Cost optimum = BruteForceCdd(instance).cost;
  const Objective objective = Objective::ForInstance(instance);
  DpsoParams params;
  params.iterations = 200;
  params.swarm = 24;
  params.seed = 5;
  const RunResult result = RunSerialDpso(objective, params);
  EXPECT_EQ(result.best_cost, optimum);
}

TEST(SerialDpso, DeterministicPerSeed) {
  const Instance instance = cdd::testing::RandomCdd(15, 0.6, 23);
  const Objective objective = Objective::ForInstance(instance);
  DpsoParams params;
  params.iterations = 100;
  params.swarm = 16;
  params.seed = 9;
  EXPECT_EQ(RunSerialDpso(objective, params).best_cost,
            RunSerialDpso(objective, params).best_cost);
}

TEST(SerialDpso, EvaluationAccounting) {
  const Instance instance = cdd::testing::RandomCdd(10, 0.5, 2);
  const Objective objective = Objective::ForInstance(instance);
  DpsoParams params;
  params.iterations = 10;
  params.swarm = 8;
  const RunResult result = RunSerialDpso(objective, params);
  EXPECT_EQ(result.evaluations, 8u + 8u * 10u);
}

TEST(SerialDpso, BestIsValidAndAchievesReportedCost) {
  const Instance instance = cdd::testing::RandomUcddcp(12, 1.1, 4);
  const Objective objective = Objective::ForInstance(instance);
  DpsoParams params;
  params.iterations = 50;
  params.swarm = 16;
  const RunResult result = RunSerialDpso(objective, params);
  EXPECT_NO_THROW(ValidateSequence(result.best, 12));
  EXPECT_EQ(objective(result.best), result.best_cost);
}

}  // namespace
}  // namespace cdd::meta

/// \file custom_kernel.cpp
/// \brief Using the GPU simulator directly: write a custom four-step
/// kernel program on the `sim::Device` API, outside the provided solvers.
///
/// The kernel evaluates every *cyclic rotation* of a base sequence in
/// parallel — one rotation per simulated CUDA thread — staging the penalty
/// arrays in shared memory behind a barrier (the same pattern as the
/// paper's fitness kernel) and reducing the winner with an atomic minimum.
///
///   ./examples/custom_kernel [--jobs 192] [--seed 3]

#include <iostream>

#include "benchutil/cli.hpp"
#include "core/eval_raw.hpp"
#include "core/sequence.hpp"
#include "cudasim/atomics.hpp"
#include "cudasim/device.hpp"
#include "cudasim/memory.hpp"
#include "orlib/biskup_feldmann.hpp"
#include "rng/philox.hpp"

int main(int argc, char** argv) {
  using namespace cdd;
  const benchutil::Args args(argc, argv);
  const auto n = static_cast<std::int32_t>(args.GetInt("jobs", 192));
  const auto seed = static_cast<std::uint64_t>(args.GetInt("seed", 3));

  const orlib::BiskupFeldmannGenerator gen(seed);
  const Instance instance =
      gen.Cdd(static_cast<std::uint32_t>(n), 0, 0.6);

  // Flatten instance data and upload, as CUDA host code would.
  std::vector<Time> proc(instance.size());
  std::vector<Cost> alpha(instance.size());
  std::vector<Cost> beta(instance.size());
  for (std::size_t i = 0; i < instance.size(); ++i) {
    proc[i] = instance.job(i).proc;
    alpha[i] = instance.job(i).early;
    beta[i] = instance.job(i).tardy;
  }
  rng::Philox4x32 rng(seed, 1);
  const Sequence base = RandomSequence(instance.size(), rng);

  sim::Device gpu(sim::GeForceGT560M());
  sim::DeviceBuffer<Time> d_proc(gpu, proc.size());
  sim::DeviceBuffer<Cost> d_alpha(gpu, alpha.size());
  sim::DeviceBuffer<Cost> d_beta(gpu, beta.size());
  sim::DeviceBuffer<JobId> d_base(gpu, base.size());
  sim::DeviceBuffer<JobId> d_scratch(gpu, base.size() * base.size());
  sim::DeviceBuffer<std::int64_t> d_best(gpu, 1);
  d_proc.CopyFromHost(proc);
  d_alpha.CopyFromHost(alpha);
  d_beta.CopyFromHost(beta);
  d_base.CopyFromHost(base);
  d_best.Fill((Cost{1} << 42) << 20);

  const Time d = instance.due_date();
  const Time* p_proc = d_proc.data();
  const Cost* p_alpha = d_alpha.data();
  const Cost* p_beta = d_beta.data();
  const JobId* p_base = d_base.data();
  JobId* p_scratch = d_scratch.data();
  std::int64_t* p_best = d_best.data();

  // One thread per rotation; grid = ceil(n / 192), the paper's block size.
  const sim::Dim3 block{192, 1, 1};
  const sim::Dim3 grid{
      static_cast<std::uint32_t>((n + 191) / 192), 1, 1};
  sim::LaunchOptions opts;
  opts.name = "rotation_eval";
  opts.cooperative = true;
  opts.shared_bytes =
      2 * static_cast<std::size_t>(n) * sizeof(Cost);

  gpu.Launch(grid, block, opts, [=](sim::ThreadCtx& t) {
    // Stage alpha/beta into shared memory (strided, then barrier).
    Cost* s_alpha = t.shared_as<Cost>();
    Cost* s_beta = s_alpha + n;
    const auto tpb = static_cast<std::int32_t>(t.block_dim.count());
    for (std::int32_t i = static_cast<std::int32_t>(t.linear_thread());
         i < n; i += tpb) {
      s_alpha[i] = p_alpha[i];
      s_beta[i] = p_beta[i];
    }
    t.syncthreads();

    const auto r = static_cast<std::int32_t>(t.global_thread());
    if (r >= n) return;
    // Build rotation r of the base sequence in this thread's scratch row.
    JobId* mine = p_scratch + static_cast<std::size_t>(r) * n;
    for (std::int32_t i = 0; i < n; ++i) {
      mine[i] = p_base[(i + r) % n];
    }
    const raw::EvalResult res =
        raw::EvalCdd(n, d, mine, p_proc, s_alpha, s_beta);
    sim::AtomicMin(p_best,
                   raw::EvalResult{res.cost, 0, 0}.cost << 20 |
                       static_cast<std::int64_t>(r));
    t.charge(4 * static_cast<std::uint64_t>(n));
  });
  gpu.Synchronize();

  std::int64_t packed = 0;
  d_best.CopyToHost(std::span<std::int64_t>(&packed, 1));
  std::cout << "Best rotation: " << (packed & ((1 << 20) - 1))
            << "  cost " << (packed >> 20) << "\n\n";
  std::cout << "Profiler:\n" << gpu.profiler().Report();
  std::cout << "\nModeled GT 560M time: " << gpu.sim_time_s() * 1e3
            << " ms for " << n << " rotations of " << n << " jobs\n";
  return 0;
}

/// \file controllable_machine.cpp
/// \brief Domain scenario for the UCDDCP: a machine that can run faster at
/// a cost.  Compares the rigid (CDD) and controllable (UCDDCP) optima on a
/// make-to-order workload and breaks the savings down per job — the
/// decision the compression penalties gamma_i model (fuel, tool wear).
///
///   ./examples/controllable_machine [--jobs 12] [--seed 7] [--gens 800]

#include <iostream>

#include "benchutil/cli.hpp"
#include "benchutil/table.hpp"
#include "core/eval_ucddcp.hpp"
#include "core/schedule.hpp"
#include "cudasim/device.hpp"
#include "orlib/biskup_feldmann.hpp"
#include "parallel/parallel_sa.hpp"

int main(int argc, char** argv) {
  using namespace cdd;
  const benchutil::Args args(argc, argv);
  const auto n = static_cast<std::uint32_t>(args.GetInt("jobs", 12));
  const auto seed = static_cast<std::uint64_t>(args.GetInt("seed", 7));
  const auto gens = static_cast<std::uint64_t>(args.GetInt("gens", 800));

  // A make-to-order shop: all n orders promised for the same delivery slot
  // (the common due date).  Finishing early means storage cost alpha_i per
  // day; late means contract penalty beta_i per day; rushing a job costs
  // gamma_i per day saved and cannot go below M_i.
  const orlib::BiskupFeldmannGenerator gen(seed);
  const Instance shop = gen.Ucddcp(n, 0);
  std::cout << "Workload: " << shop.Summary() << "  (delivery slot t="
            << shop.due_date() << ")\n\n";

  // ---- rigid machine: no compression allowed -----------------------------
  sim::Device gpu;
  par::ParallelSaParams params;
  params.config = par::LaunchConfig::ForEnsemble(128, 64);
  params.generations = gens;
  params.vshape_init = true;
  params.seed = seed;

  const Instance rigid = shop.as_cdd().with_due_date(shop.due_date());
  const par::GpuRunResult rigid_result =
      par::RunParallelSa(gpu, rigid, params);

  // ---- controllable machine: same search, compressions co-optimized -----
  const par::GpuRunResult flex_result =
      par::RunParallelSa(gpu, shop, params);

  std::cout << "rigid machine cost:        " << rigid_result.best_cost
            << "\n";
  std::cout << "controllable machine cost: " << flex_result.best_cost
            << "  (saves "
            << rigid_result.best_cost - flex_result.best_cost << ")\n\n";

  // ---- inspect the controllable solution ---------------------------------
  const UcddcpEvaluator evaluator(shop);
  const Schedule plan = evaluator.BuildSchedule(flex_result.best);
  std::cout << "Plan (A = first job processed):\n"
            << RenderGantt(shop, plan) << "\n";

  benchutil::TextTable detail({"slot", "job", "P", "rushed by", "starts",
                               "done", "lateness", "rush cost"});
  for (std::size_t k = 0; k < plan.size(); ++k) {
    const Job& job = shop.job(static_cast<std::size_t>(plan.order[k]));
    const Time lateness = plan.completion[k] - shop.due_date();
    detail.AddRow({std::to_string(k), std::to_string(plan.order[k]),
                   std::to_string(job.proc),
                   std::to_string(plan.compression[k]),
                   std::to_string(StartTime(shop, plan, k)),
                   std::to_string(plan.completion[k]),
                   std::to_string(lateness),
                   std::to_string(job.compress * plan.compression[k])});
  }
  std::cout << detail.ToString();
  std::cout << "\nReading the plan: jobs finishing exactly at t="
            << shop.due_date()
            << " pay nothing; compressed jobs (rushed by > 0) traded "
               "gamma per day against the earliness/tardiness they saved "
               "(Properties 1 and 2 of the paper).\n";
  return 0;
}

/// \file multi_gpu_fleet.cpp
/// \brief Scaling the paper's ensemble across several (simulated) GPUs —
/// the direction the related work of Chakroun et al. [1] points at.
///
/// Solves one large CDD instance with 1, 2 and 4 devices, each running the
/// full four-kernel pipeline; shows fleet quality and modeled wall time
/// (devices run concurrently, so fleet time is the slowest device).
///
///   ./examples/multi_gpu_fleet [--jobs 200] [--gens 400] [--seed 5]

#include <iostream>
#include <memory>

#include "benchutil/cli.hpp"
#include "benchutil/table.hpp"
#include "orlib/biskup_feldmann.hpp"
#include "parallel/multi_device.hpp"

int main(int argc, char** argv) {
  using namespace cdd;
  const benchutil::Args args(argc, argv);
  const auto n = static_cast<std::uint32_t>(args.GetInt("jobs", 200));
  const auto gens = static_cast<std::uint64_t>(args.GetInt("gens", 400));
  const auto seed = static_cast<std::uint64_t>(args.GetInt("seed", 5));

  const orlib::BiskupFeldmannGenerator gen(seed);
  const Instance instance = gen.Cdd(n, 0, 0.6);
  std::cout << "instance: " << instance.Summary() << "\n\n";

  par::ParallelSaParams params;  // the paper's 4 x 192 per device
  params.generations = gens;
  params.seed = seed;
  params.vshape_init = true;

  benchutil::TextTable table({"devices", "best cost", "fleet time [s]",
                              "total device time [s]", "evaluations",
                              "winner"});
  for (const std::size_t count : {1u, 2u, 4u}) {
    std::vector<std::unique_ptr<sim::Device>> owned;
    std::vector<sim::Device*> fleet;
    for (std::size_t i = 0; i < count; ++i) {
      owned.push_back(
          std::make_unique<sim::Device>(sim::GeForceGT560M()));
      fleet.push_back(owned.back().get());
    }
    const par::MultiDeviceResult result =
        par::RunParallelSaMultiDevice(fleet, instance, params);
    table.AddRow({std::to_string(count),
                  std::to_string(result.best.best_cost),
                  benchutil::FmtDouble(result.fleet_seconds, 3),
                  benchutil::FmtDouble(result.total_device_seconds, 3),
                  std::to_string(result.best.evaluations),
                  "device " + std::to_string(result.winning_device)});
  }
  std::cout << table.ToString();
  std::cout << "\nFleet time stays flat while evaluations (and quality) "
               "scale with the device count — the ensemble is "
               "embarrassingly parallel across GPUs.\n";
  return 0;
}

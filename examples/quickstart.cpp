/// \file quickstart.cpp
/// \brief Five-minute tour of the library using the paper's Table I data:
/// build an instance, evaluate a sequence with the O(n) algorithms, run
/// the GPU-parallel SA, and inspect the resulting schedule.
///
///   ./examples/quickstart

#include <iostream>

#include "core/eval_cdd.hpp"
#include "core/eval_ucddcp.hpp"
#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "cudasim/device.hpp"
#include "parallel/parallel_sa.hpp"

int main() {
  using namespace cdd;

  // ---- 1. The paper's illustrative instance (Table I) -------------------
  // Five jobs with processing times P, earliness penalties alpha, tardiness
  // penalties beta; common due date d = 16 for the CDD illustration.
  const Instance cdd_instance(Problem::kCdd, /*d=*/16,
                              /*proc=*/{6, 5, 2, 4, 4},
                              /*early=*/{7, 9, 6, 9, 3},
                              /*tardy=*/{9, 5, 4, 3, 2});
  cdd_instance.Validate();
  std::cout << "Instance: " << cdd_instance.Summary() << "\n\n";

  // ---- 2. Layer (ii): optimal schedule of a FIXED sequence in O(n) ------
  const CddEvaluator evaluator(cdd_instance);
  const Sequence order = IdentitySequence(5);
  std::cout << "Cost of sequence 1..5 (paper Figure 3 says 81): "
            << evaluator.Evaluate(order) << "\n";
  const Schedule schedule = evaluator.BuildSchedule(order);
  std::cout << RenderGantt(cdd_instance, schedule) << "\n";

  // ---- 3. Layer (i): search over sequences with GPU-parallel SA ---------
  sim::Device gpu(sim::GeForceGT560M());
  par::ParallelSaParams params;            // 4 blocks x 192 threads,
  params.generations = 200;                // mu = 0.88, Pert = 4
  const par::GpuRunResult result =
      par::RunParallelSa(gpu, cdd_instance, params);
  std::cout << "Parallel SA best cost: " << result.best_cost << "  ("
            << result.evaluations << " evaluations, modeled GT 560M time "
            << result.device_seconds * 1e3 << " ms)\n";
  std::cout << RenderGantt(cdd_instance,
                           evaluator.BuildSchedule(result.best))
            << "\n";

  // ---- 4. The controllable-processing-times variant (UCDDCP) ------------
  const Instance ucddcp_instance(Problem::kUcddcp, /*d=*/22,
                                 /*proc=*/{6, 5, 2, 4, 4},
                                 /*early=*/{7, 9, 6, 9, 3},
                                 /*tardy=*/{9, 5, 4, 3, 2},
                                 /*min_proc=*/{5, 5, 2, 3, 3},
                                 /*compress=*/{5, 4, 3, 2, 1});
  const UcddcpEvaluator ucddcp_eval(ucddcp_instance);
  std::cout << "UCDDCP cost of sequence 1..5 (paper Figure 6 says 77): "
            << ucddcp_eval.Evaluate(order) << "\n";
  std::cout << RenderGantt(ucddcp_instance,
                           ucddcp_eval.BuildSchedule(order));

  // ---- 5. What did the simulated GPU do? ---------------------------------
  std::cout << "\nProfiler:\n" << gpu.profiler().Report();
  return 0;
}

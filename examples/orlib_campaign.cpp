/// \file orlib_campaign.cpp
/// \brief Benchmark campaign over OR-library-style CDD instances: generate
/// (or load) a benchmark set, solve every instance with the GPU-parallel
/// SA, and maintain a best-known-value registry on disk.
///
///   ./examples/orlib_campaign [--file path/to/sch10.txt] [--sizes 10,20]
///                             [--instances 4] [--gens 500]
///                             [--registry bestknown.csv]
///
/// With --file, instances are read from an OR-library sch file (3 columns
/// per job) and the h grid {0.2,0.4,0.6,0.8} is applied; otherwise the
/// built-in Biskup-Feldmann generator is used.

#include <fstream>
#include <iostream>

#include "benchutil/cli.hpp"
#include "benchutil/table.hpp"
#include "cudasim/device.hpp"
#include "orlib/bestknown.hpp"
#include "orlib/biskup_feldmann.hpp"
#include "orlib/schfile.hpp"
#include "parallel/parallel_sa.hpp"

int main(int argc, char** argv) {
  using namespace cdd;
  const benchutil::Args args(argc, argv);

  const std::vector<std::uint32_t> sizes =
      args.GetUintList("sizes", {10, 20, 50});
  const auto instances =
      static_cast<std::uint32_t>(args.GetInt("instances", 3));
  const auto gens = static_cast<std::uint64_t>(args.GetInt("gens", 500));
  const std::string registry_path =
      args.GetString("registry", "bestknown.csv");

  orlib::BestKnownRegistry registry;
  registry.LoadCsv(registry_path);
  std::cout << "registry: " << registry.size() << " known values loaded "
            << "from " << registry_path << "\n";

  // Collect (key, instance) pairs.
  std::vector<std::pair<std::string, Instance>> campaign;
  const std::string file = args.GetString("file", "");
  if (!file.empty()) {
    std::vector<orlib::JobTable> tables;
    try {
      tables = orlib::LoadCddFile(file);
    } catch (const orlib::SchParseError& e) {
      std::cerr << e.what() << "\n";
      return 1;
    }
    std::cout << "loaded " << tables.size() << " instances from " << file
              << "\n";
    for (std::size_t k = 0; k < tables.size(); ++k) {
      for (const double h : orlib::kPaperH) {
        char key[128];
        std::snprintf(key, sizeof key, "%s-k%zu-h%.2f", file.c_str(), k, h);
        campaign.emplace_back(key, orlib::MakeCddInstance(tables[k], h));
      }
    }
  } else {
    const orlib::BiskupFeldmannGenerator gen;
    for (const std::uint32_t n : sizes) {
      for (std::uint32_t k = 0; k < instances; ++k) {
        for (const double h : {0.4, 0.8}) {
          campaign.emplace_back(orlib::CddKey(n, k, h), gen.Cdd(n, k, h));
        }
      }
    }
  }

  benchutil::TextTable table(
      {"instance", "n", "h", "cost", "best known", "%D", "GPU [ms]"});
  std::size_t improved = 0;
  for (const auto& [key, instance] : campaign) {
    sim::Device gpu;
    par::ParallelSaParams params;
    params.config = par::LaunchConfig::ForEnsemble(128, 64);
    params.generations = gens;
    params.vshape_init = true;
    const par::GpuRunResult result =
        par::RunParallelSa(gpu, instance, params);

    const auto previous = registry.Find(key);
    if (registry.Update(key, result.best_cost) && previous.has_value()) {
      ++improved;
    }
    const Cost best = registry.Find(key).value();
    table.AddRow(
        {key, std::to_string(instance.size()),
         benchutil::FmtDouble(instance.restrictiveness(), 2),
         std::to_string(result.best_cost), std::to_string(best),
         benchutil::FmtDouble(
             best == 0 ? 0.0
                       : 100.0 *
                             static_cast<double>(result.best_cost - best) /
                             static_cast<double>(best),
             3),
         benchutil::FmtDouble(result.device_seconds * 1e3, 1)});
  }
  std::cout << table.ToString();

  registry.SaveCsv(registry_path);
  std::cout << "\nregistry now holds " << registry.size() << " values ("
            << improved << " improved this run); saved to "
            << registry_path << "\n";
  return 0;
}

#pragma once
/// \file campaign.hpp
/// \brief Shared sweep configuration and reference computation for the
/// paper-reproduction benches.
///
/// Every table/figure bench accepts the same flags:
///   --paper                 full paper-scale sweep (sizes up to 1000 jobs,
///                           40 instances per size, 768 chains, 1000/5000
///                           generations) — hours of single-core wall time;
///   --sizes 10,20,50        job counts to sweep;
///   --instances K           instances per (size, h) pair;
///   --ensemble N --block B  launch geometry;
///   --gens-low / --gens-high  the two generation budgets (paper: 1000/5000);
///   --seed S                benchmark seed.
///
/// "Best known" reference values are regenerated the way the paper's
/// comparison targets were produced: serial CPU metaheuristics ([7]-style
/// SA restarts seeded with a V-shape heuristic, plus a [18]-style threshold
/// accepting run), taking the best result.

#include <string>

#include "benchutil/cli.hpp"
#include "core/instance.hpp"
#include "meta/objective.hpp"

namespace cdd::benchutil {

/// Sweep configuration shared by the table benches.
struct Sweep {
  std::vector<std::uint32_t> sizes{10, 20, 50, 100};
  std::vector<double> h{0.2, 0.6};   ///< CDD restrictiveness factors
  std::uint32_t instances = 2;       ///< k = 0..instances-1 per (size, h)
  std::uint64_t gens_low = 200;      ///< paper: 1000
  std::uint64_t gens_high = 1000;    ///< paper: 5000
  std::uint32_t ensemble = 128;      ///< paper: 768
  std::uint32_t block_size = 64;     ///< paper: 192
  std::uint64_t ref_iterations = 50000;  ///< serial-SA budget per restart
  std::uint32_t ref_restarts = 3;
  std::uint64_t seed = 20160523;

  /// The full configuration of Section VIII.
  static Sweep Paper();

  /// Builds from CLI flags, starting from the reduced defaults (or from
  /// Paper() when --paper is present).
  static Sweep FromArgs(const Args& args);

  std::string Describe() const;
};

/// Best-known reference cost of one instance (the stand-in for the
/// best-known values of [7] / [8] / [18]; see DESIGN.md §2).
/// \p salt decorrelates the restart seeds across instances.
Cost ComputeReferenceCost(const Instance& instance, const Sweep& sweep,
                          std::uint64_t salt);

/// Measured serial cost per objective evaluation (seconds), from a short
/// calibration run of `calib_evals` serial-SA iterations.  Used to
/// extrapolate CPU baseline runtimes to paper-scale budgets without paying
/// the full single-core cost (documented in EXPERIMENTS.md).
double MeasureSecondsPerEval(const meta::SequenceObjective& objective,
                             std::uint64_t calib_evals, std::uint64_t seed);

}  // namespace cdd::benchutil

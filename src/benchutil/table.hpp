#pragma once
/// \file table.hpp
/// \brief ASCII table printer for the paper-style bench outputs.

#include <string>
#include <vector>

namespace cdd::benchutil {

/// Column-aligned text table with a header row, printed the way the
/// paper's tables read (one row per job count, one column per algorithm).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; it may have fewer cells than the header (padded).
  void AddRow(std::vector<std::string> row);

  /// Renders with column alignment and a rule under the header.
  std::string ToString() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision formatting helpers for table cells.
std::string FmtDouble(double value, int precision = 3);
std::string FmtSeconds(double seconds);  ///< 12.3 ms / 4.56 s style

}  // namespace cdd::benchutil

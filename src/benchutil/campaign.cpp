#include "benchutil/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "core/candidate_pool.hpp"
#include "core/vshape.hpp"
#include "meta/sa.hpp"
#include "meta/threshold.hpp"
#include "orlib/biskup_feldmann.hpp"

namespace cdd::benchutil {

Sweep Sweep::Paper() {
  Sweep s;
  s.sizes.assign(orlib::kPaperSizes.begin(), orlib::kPaperSizes.end());
  s.h.assign(orlib::kPaperH.begin(), orlib::kPaperH.end());
  s.instances = orlib::kPaperInstancesPerSize;
  s.gens_low = 1000;
  s.gens_high = 5000;
  s.ensemble = 768;
  s.block_size = 192;
  s.ref_iterations = 200000;
  s.ref_restarts = 5;
  return s;
}

Sweep Sweep::FromArgs(const Args& args) {
  Sweep s = args.GetBool("paper") ? Paper() : Sweep{};
  s.sizes = args.GetUintList("sizes", s.sizes);
  s.instances =
      static_cast<std::uint32_t>(args.GetInt("instances", s.instances));
  s.gens_low =
      static_cast<std::uint64_t>(args.GetInt("gens-low", s.gens_low));
  s.gens_high =
      static_cast<std::uint64_t>(args.GetInt("gens-high", s.gens_high));
  s.ensemble =
      static_cast<std::uint32_t>(args.GetInt("ensemble", s.ensemble));
  s.block_size =
      static_cast<std::uint32_t>(args.GetInt("block", s.block_size));
  s.ref_iterations = static_cast<std::uint64_t>(
      args.GetInt("ref-iterations", s.ref_iterations));
  s.ref_restarts = static_cast<std::uint32_t>(
      args.GetInt("ref-restarts", s.ref_restarts));
  s.seed = static_cast<std::uint64_t>(args.GetInt("seed", s.seed));
  return s;
}

std::string Sweep::Describe() const {
  std::ostringstream os;
  os << "sizes=";
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    os << (i ? "," : "") << sizes[i];
  }
  os << " instances/(n,h)=" << instances << " h-values=" << h.size()
     << " ensemble=" << ensemble << " (" << block_size << "/block)"
     << " generations=" << gens_low << "/" << gens_high << " seed=" << seed;
  return os.str();
}

Cost ComputeReferenceCost(const Instance& instance, const Sweep& sweep,
                          std::uint64_t salt) {
  const meta::SequenceObjective objective =
      meta::SequenceObjective::ForInstance(instance);
  Cost best = kInfiniteCost;

  // For n <= 10 the best-known values of the literature are exact optima;
  // enumerate all sequences with the O(n) evaluator (~1 s at n = 10).
  // Permutations are staged into a candidate pool and costed in batches —
  // the same SoA hot path the engines use.
  if (instance.size() <= 10) {
    CandidatePool pool(instance.size(), /*capacity=*/256);
    Sequence seq = IdentitySequence(instance.size());
    bool more = true;
    while (more) {
      pool.Clear();
      do {
        pool.Append(seq);
        more = std::next_permutation(seq.begin(), seq.end());
      } while (more && !pool.full());
      objective.EvaluateBatch(pool);
      for (const Cost c : pool.costs()) best = std::min(best, c);
    }
    return best;
  }

  // [7]-style serial SA restarts; the first is seeded with the V-shape
  // constructive heuristic, the rest start random.
  for (std::uint32_t r = 0; r < sweep.ref_restarts; ++r) {
    meta::SaParams params;
    params.iterations = sweep.ref_iterations;
    params.seed = sweep.seed * 1000003 + salt * 131 + r;
    std::optional<Sequence> init;
    if (r == 0) init = VShapeSeed(instance);
    const meta::RunResult result =
        meta::RunSerialSa(objective, params, init);
    best = std::min(best, result.best_cost);
  }

  // [18]-style threshold accepting pass.
  meta::TaParams ta;
  ta.iterations = sweep.ref_iterations;
  ta.seed = sweep.seed * 7000003 + salt;
  best = std::min(best,
                  meta::RunThresholdAccepting(objective, ta).best_cost);
  return best;
}

double MeasureSecondsPerEval(const meta::SequenceObjective& objective,
                             std::uint64_t calib_evals, std::uint64_t seed) {
  meta::SaParams params;
  params.iterations = std::max<std::uint64_t>(calib_evals, 100);
  params.seed = seed;
  // Fixed temperature: the Salamon sampling would otherwise run uncounted
  // evaluations inside the timed region and skew the per-eval estimate.
  params.initial_temperature = 1.0;
  const auto start = std::chrono::steady_clock::now();
  const meta::RunResult result = meta::RunSerialSa(objective, params);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return elapsed / static_cast<double>(result.evaluations);
}

}  // namespace cdd::benchutil

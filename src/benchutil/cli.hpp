#pragma once
/// \file cli.hpp
/// \brief Minimal command-line parsing for the bench and example binaries.
///
/// Supported syntax: --key=value, --key value, and boolean --flag.
/// Every bench accepts --paper (full paper-scale sweep) and prints --help.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace cdd::benchutil {

/// Parsed command line.
class Args {
 public:
  Args(int argc, const char* const* argv);

  bool Has(const std::string& key) const;
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;
  std::int64_t GetInt(const std::string& key, std::int64_t fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  bool GetBool(const std::string& key, bool fallback = false) const;

  /// Comma-separated integer list ("10,20,50").
  std::vector<std::uint32_t> GetUintList(
      const std::string& key, std::vector<std::uint32_t> fallback) const;

  /// Unrecognized-looking positional arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace cdd::benchutil

#include "benchutil/asciichart.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace cdd::benchutil {
namespace {

constexpr char kGlyphs[] = {'#', 'o', '*', '+', 'x', '@', '%', '~'};

std::string AxisLabel(double value) {
  char buf[32];
  if (std::abs(value) >= 1000.0 || (value != 0.0 && std::abs(value) < 0.01)) {
    std::snprintf(buf, sizeof buf, "%9.2e", value);
  } else {
    std::snprintf(buf, sizeof buf, "%9.2f", value);
  }
  return buf;
}

}  // namespace

std::string BarChart(const std::vector<std::string>& categories,
                     const std::vector<Series>& series,
                     std::size_t height) {
  if (categories.empty() || series.empty() || height == 0) return "";
  double max_value = 0.0;
  double min_value = 0.0;
  for (const Series& s : series) {
    for (const double v : s.values) {
      max_value = std::max(max_value, v);
      min_value = std::min(min_value, v);
    }
  }
  if (max_value == 0.0 && min_value == 0.0) max_value = 1.0;
  const auto pos_rows = static_cast<std::size_t>(
      std::lround(height * max_value / (max_value - min_value)));
  const std::size_t neg_rows = height - pos_rows;

  // Bar heights per (category, series).
  const std::size_t group_width = series.size() + 1;
  const auto rows_of = [&](double v) {
    return static_cast<long>(std::lround(
        v / (max_value - min_value) * static_cast<double>(height)));
  };

  std::ostringstream os;
  for (std::size_t r = 0; r < height; ++r) {
    const long level = static_cast<long>(pos_rows) - static_cast<long>(r);
    // Value at the top of this row (for the axis label).
    const double row_value = (max_value - min_value) *
                             static_cast<double>(level) /
                             static_cast<double>(height);
    os << AxisLabel(row_value) << " |";
    for (std::size_t c = 0; c < categories.size(); ++c) {
      for (std::size_t s = 0; s < series.size(); ++s) {
        const double v = c < series[s].values.size() ? series[s].values[c]
                                                     : 0.0;
        const long bar = rows_of(v);
        char glyph = ' ';
        if (level > 0 && bar >= level) {
          glyph = kGlyphs[s % sizeof kGlyphs];
        } else if (level <= 0 && bar <= level && bar < 0) {
          glyph = kGlyphs[s % sizeof kGlyphs];
        }
        os << glyph;
      }
      os << ' ';
    }
    os << "\n";
    if (level == 1 && neg_rows > 0) {
      // Axis line between positive and negative halves.
      os << AxisLabel(0.0) << " +";
      for (std::size_t c = 0; c < categories.size(); ++c) {
        os << std::string(series.size(), '-') << '-';
      }
      os << "\n";
    }
  }
  // Category labels.
  os << std::string(10, ' ') << ' ';
  for (const std::string& cat : categories) {
    std::string label = cat.substr(0, group_width - 1);
    label.resize(group_width, ' ');
    os << label;
  }
  os << "\n  legend: ";
  for (std::size_t s = 0; s < series.size(); ++s) {
    os << kGlyphs[s % sizeof kGlyphs] << "=" << series[s].name
       << (s + 1 < series.size() ? "  " : "\n");
  }
  return os.str();
}

std::string LineChart(const std::vector<std::string>& categories,
                      const std::vector<Series>& series,
                      std::size_t height, bool log_scale) {
  if (categories.empty() || series.empty() || height == 0) return "";
  const auto transform = [&](double v) {
    return log_scale ? std::log10(std::max(v, 1e-12)) : v;
  };
  double lo = transform(1e300);
  double hi = -1e300;
  lo = 1e300;
  for (const Series& s : series) {
    for (const double v : s.values) {
      lo = std::min(lo, transform(v));
      hi = std::max(hi, transform(v));
    }
  }
  if (hi <= lo) hi = lo + 1.0;

  const std::size_t col_width = 8;
  const std::size_t cols = categories.size() * col_width;
  std::vector<std::string> canvas(height, std::string(cols, ' '));

  for (std::size_t s = 0; s < series.size(); ++s) {
    const char glyph = kGlyphs[s % sizeof kGlyphs];
    for (std::size_t c = 0;
         c < categories.size() && c < series[s].values.size(); ++c) {
      const double t = (transform(series[s].values[c]) - lo) / (hi - lo);
      const auto row = static_cast<std::size_t>(std::lround(
          (1.0 - t) * static_cast<double>(height - 1)));
      const std::size_t col = c * col_width + col_width / 2;
      canvas[std::min(row, height - 1)][col] = glyph;
    }
  }

  std::ostringstream os;
  for (std::size_t r = 0; r < height; ++r) {
    const double t = 1.0 - static_cast<double>(r) /
                               static_cast<double>(height - 1);
    const double raw = lo + t * (hi - lo);
    os << AxisLabel(log_scale ? std::pow(10.0, raw) : raw) << " |"
       << canvas[r] << "\n";
  }
  os << std::string(10, ' ') << "+" << std::string(cols, '-') << "\n"
     << std::string(10, ' ') << ' ';
  for (const std::string& cat : categories) {
    std::string label = cat.substr(0, col_width - 1);
    label.resize(col_width, ' ');
    os << label;
  }
  os << "\n  legend: ";
  for (std::size_t s = 0; s < series.size(); ++s) {
    os << kGlyphs[s % sizeof kGlyphs] << "=" << series[s].name
       << (s + 1 < series.size() ? "  " : "\n");
  }
  return os.str();
}

}  // namespace cdd::benchutil

#include "benchutil/cli.hpp"

#include <stdexcept>

namespace cdd::benchutil {

Args::Args(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // "--key value" when the next token is not itself a flag; bare "--flag"
    // otherwise.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "";
    }
  }
}

bool Args::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string Args::GetString(const std::string& key,
                            const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Args::GetInt(const std::string& key,
                          std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return fallback;
  // std::stoll alone would accept "12abc" as 12; require the whole token
  // to parse so a typo'd flag fails loudly instead of half-applying.
  try {
    std::size_t consumed = 0;
    const std::int64_t value = std::stoll(it->second, &consumed);
    if (consumed == it->second.size()) return value;
  } catch (const std::exception&) {
  }
  throw std::invalid_argument("--" + key + " expects an integer, got '" +
                              it->second + "'");
}

double Args::GetDouble(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return fallback;
  try {
    std::size_t consumed = 0;
    const double value = std::stod(it->second, &consumed);
    if (consumed == it->second.size()) return value;
  } catch (const std::exception&) {
  }
  throw std::invalid_argument("--" + key + " expects a number, got '" +
                              it->second + "'");
}

bool Args::GetBool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  if (it->second.empty() || it->second == "1" || it->second == "true" ||
      it->second == "yes" || it->second == "on") {
    return true;
  }
  if (it->second == "0" || it->second == "false" || it->second == "no" ||
      it->second == "off") {
    return false;
  }
  throw std::invalid_argument("--" + key + " expects a boolean, got '" +
                              it->second + "'");
}

std::vector<std::uint32_t> Args::GetUintList(
    const std::string& key, std::vector<std::uint32_t> fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return fallback;
  std::vector<std::uint32_t> out;
  std::string token;
  for (const char c : it->second + ",") {
    if (c == ',') {
      if (!token.empty()) {
        try {
          std::size_t consumed = 0;
          const unsigned long value = std::stoul(token, &consumed);
          if (consumed != token.size()) throw std::invalid_argument(token);
          out.push_back(static_cast<std::uint32_t>(value));
        } catch (const std::exception&) {
          throw std::invalid_argument("--" + key +
                                      " expects a comma-separated integer "
                                      "list, got '" +
                                      it->second + "'");
        }
        token.clear();
      }
    } else {
      token.push_back(c);
    }
  }
  return out;
}

}  // namespace cdd::benchutil

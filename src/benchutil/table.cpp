#include "benchutil/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace cdd::benchutil {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::ToString() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : header_[c];
      os << (c == 0 ? "" : "  ");
      os << cell;
      os << std::string(width[c] - cell.size(), ' ');
    }
    os << "\n";
  };
  emit(header_);
  std::size_t total = 0;
  for (const std::size_t w : width) total += w;
  os << std::string(total + 2 * (header_.size() - 1), '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string FmtDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string FmtSeconds(double seconds) {
  char buf[64];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.1f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof buf, "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f s", seconds);
  }
  return buf;
}

}  // namespace cdd::benchutil

#pragma once
/// \file stats.hpp
/// \brief Small statistics helpers for the bench harness.

#include <cmath>
#include <cstdint>
#include <span>

namespace cdd::benchutil {

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void Add(double value) {
    ++count_;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
  }

  std::uint64_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

inline double Mean(std::span<const double> values) {
  RunningStats s;
  for (const double v : values) s.Add(v);
  return s.mean();
}

inline double StdDev(std::span<const double> values) {
  RunningStats s;
  for (const double v : values) s.Add(v);
  return s.stddev();
}

}  // namespace cdd::benchutil

#include "benchutil/csv.hpp"

#include <stdexcept>

namespace cdd::benchutil {

CsvWriter::CsvWriter(const std::string& path,
                     std::vector<std::string> header)
    : out_(path), columns_(header.size()) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  std::vector<std::string> row = std::move(header);
  AddRow(row);
  rows_ = 0;  // the header does not count as a data row
}

void CsvWriter::AddRow(const std::vector<std::string>& row) {
  for (std::size_t c = 0; c < columns_; ++c) {
    if (c > 0) out_ << ',';
    out_ << Escape(c < row.size() ? row[c] : "");
  }
  out_ << '\n';
  ++rows_;
}

std::string CsvWriter::Escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string quoted = "\"";
  for (const char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace cdd::benchutil

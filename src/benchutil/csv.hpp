#pragma once
/// \file csv.hpp
/// \brief Tiny CSV writer so bench results can feed external plotting.
///
/// Every paper-table bench accepts --csv PATH and dumps its rows through
/// this writer; fields containing commas/quotes/newlines are quoted per
/// RFC 4180.

#include <fstream>
#include <string>
#include <vector>

namespace cdd::benchutil {

/// Append-style CSV writer; writes the header on construction.
class CsvWriter {
 public:
  /// Opens \p path for writing (truncates).  Throws std::runtime_error on
  /// failure.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  /// Writes one row (padded/truncated to the header width).
  void AddRow(const std::vector<std::string>& row);

  std::size_t rows_written() const { return rows_; }

  /// Quotes a field per RFC 4180 when needed (exposed for tests).
  static std::string Escape(const std::string& field);

 private:
  std::ofstream out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

}  // namespace cdd::benchutil

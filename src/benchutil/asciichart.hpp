#pragma once
/// \file asciichart.hpp
/// \brief Terminal bar and line charts for the figure-reproduction benches
/// (Figures 12-17 of the paper are bar/line charts; the benches render the
/// same series as ASCII so the shape is visible without a plotting stack).

#include <string>
#include <vector>

namespace cdd::benchutil {

/// One named data series.
struct Series {
  std::string name;
  std::vector<double> values;  ///< one value per category
};

/// Grouped bar chart (like the paper's Figures 12 and 15): one group per
/// category (job count), one bar per series (algorithm).  Values are
/// scaled to \p height rows; negative values render below the axis.
std::string BarChart(const std::vector<std::string>& categories,
                     const std::vector<Series>& series,
                     std::size_t height = 12);

/// Multi-series line chart on a log-ish row scale (like Figures 14 and
/// 16's runtime curves): x positions are the categories, each series is
/// drawn with its own glyph; a legend follows.
std::string LineChart(const std::vector<std::string>& categories,
                      const std::vector<Series>& series,
                      std::size_t height = 14, bool log_scale = true);

}  // namespace cdd::benchutil

#pragma once
/// \file cooling.hpp
/// \brief Cooling schedules for Simulated Annealing.
///
/// The paper uses the exponential schedule T <- T * mu with mu = 0.88,
/// "inferred from our experiments over a range of cooling rates"
/// (Section VI); bench_ablation_sa_params regenerates that sweep.  Linear
/// and logarithmic schedules are provided for the comparison.

#include <cmath>
#include <cstdint>

namespace cdd::meta {

enum class CoolingKind {
  kExponential,  ///< T_k = T_0 * mu^k (the paper's schedule)
  kLinear,       ///< T_k = T_0 * (1 - k/K)
  kLogarithmic,  ///< T_k = T_0 / log(k + e)
};

/// Stateless temperature schedule: maps iteration k to a temperature.
class CoolingSchedule {
 public:
  CoolingSchedule(CoolingKind kind, double t0, double mu,
                  std::uint64_t horizon)
      : kind_(kind), t0_(t0), mu_(mu), horizon_(horizon == 0 ? 1 : horizon) {}

  static CoolingSchedule Exponential(double t0, double mu) {
    return {CoolingKind::kExponential, t0, mu, 1};
  }
  static CoolingSchedule Linear(double t0, std::uint64_t horizon) {
    return {CoolingKind::kLinear, t0, 0.0, horizon};
  }
  static CoolingSchedule Logarithmic(double t0) {
    return {CoolingKind::kLogarithmic, t0, 0.0, 1};
  }

  double operator()(std::uint64_t k) const {
    switch (kind_) {
      case CoolingKind::kExponential:
        return t0_ * std::pow(mu_, static_cast<double>(k));
      case CoolingKind::kLinear:
        return t0_ * (1.0 - static_cast<double>(k) /
                                static_cast<double>(horizon_));
      case CoolingKind::kLogarithmic:
        return t0_ / std::log(static_cast<double>(k) + 2.718281828459045);
    }
    return t0_;
  }

  double initial() const { return t0_; }
  CoolingKind kind() const { return kind_; }

 private:
  CoolingKind kind_;
  double t0_;
  double mu_;
  std::uint64_t horizon_;
};

}  // namespace cdd::meta

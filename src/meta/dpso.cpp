#include "meta/dpso.hpp"

#include <chrono>

#include "core/candidate_pool.hpp"
#include "meta/ops.hpp"
#include "rng/philox.hpp"
#include "trace/tracer.hpp"

namespace cdd::meta {

RunResult RunSerialDpso(const SequenceObjective& objective,
                        const DpsoParams& params) {
  CDD_TRACE_SPAN("meta.dpso");
  const auto t_start = std::chrono::steady_clock::now();
  const std::size_t n = objective.size();
  rng::Philox4x32 rng(params.seed, /*stream=*/0xd9500ULL);

  struct Particle {
    Sequence position;
    Cost cost;
    Sequence best;
    Cost best_cost;
  };

  // Whole-swarm SoA pool: every generation stages the updated positions
  // into the pool's stride-aligned rows and issues one EvaluateBatch call.
  // The evaluators consume no rng, so splitting "perturb all" from
  // "evaluate all" leaves the Philox stream order — and therefore every
  // result — bit-identical to the interleaved loop.
  PoolLease lease(params.pool, n, params.swarm);
  CandidatePool& pool = *lease;

  RunResult result;
  std::vector<Particle> swarm(params.swarm);
  for (Particle& p : swarm) {
    p.position = RandomSequence(n, rng);
    pool.Append(p.position);
  }
  objective.EvaluateBatch(pool);
  for (std::size_t b = 0; b < swarm.size(); ++b) {
    Particle& p = swarm[b];
    p.cost = pool.costs()[b];
    ++result.evaluations;
    p.best = p.position;
    p.best_cost = p.cost;
    if (p.best_cost < result.best_cost) {
      result.best_cost = p.best_cost;
      result.best = p.best;
    }
  }

  Sequence scratch;
  for (std::uint64_t it = 0; it < params.iterations; ++it) {
    // One DPSO generation evaluates the whole swarm, so the token is
    // polled every generation rather than every kStopCheckStride.
    if (params.stop.stop_requested()) {
      result.stopped = true;
      break;
    }
    pool.Clear();
    for (Particle& p : swarm) {
      // w (+) F1: swap velocity.
      if (rng.NextUniform() < params.w) {
        RandomSwap(std::span<JobId>(p.position), rng);
      }
      // c1 (+) F2: one-point crossover with the particle best.
      if (rng.NextUniform() < params.c1) {
        OnePointCrossover(p.position, p.best, rng, scratch);
        p.position.swap(scratch);
      }
      // c2 (+) F3: two-point crossover with the swarm best.  p.best and
      // result.best are read-only within a generation (personal bests and
      // g(t) update below), so staging the evaluation is order-safe.
      if (rng.NextUniform() < params.c2) {
        TwoPointCrossover(p.position, result.best, rng, scratch);
        p.position.swap(scratch);
      }
      pool.Append(p.position);
    }
    objective.EvaluateBatch(pool);
    for (std::size_t b = 0; b < swarm.size(); ++b) {
      Particle& p = swarm[b];
      p.cost = pool.costs()[b];
      ++result.evaluations;
      if (p.cost < p.best_cost) {
        p.best_cost = p.cost;
        p.best = p.position;
      }
    }
    // Swarm best is updated once per generation (Algorithm 2 line 5), so
    // every particle of a generation sees the same g(t).
    for (const Particle& p : swarm) {
      if (p.best_cost < result.best_cost) {
        result.best_cost = p.best_cost;
        result.best = p.best;
      }
    }
    if (params.trajectory_stride > 0 &&
        it % params.trajectory_stride == 0) {
      result.trajectory.push_back(result.best_cost);
      CDD_TRACE_COUNTER("dpso.best_cost", result.best_cost);
    }
  }

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    t_start)
          .count();
  return result;
}

}  // namespace cdd::meta

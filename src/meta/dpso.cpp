#include "meta/dpso.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "core/candidate_pool.hpp"
#include "meta/ops.hpp"
#include "rng/philox.hpp"
#include "trace/tracer.hpp"

namespace cdd::meta {
namespace {

using Clock = std::chrono::steady_clock;

struct Particle {
  Sequence position;
  Cost cost;
  Sequence best;
  Cost best_cost;
};

/// Whole-swarm state at a generation boundary: positions, personal bests
/// and the published swarm best (inside result) plus the RNG position.
struct DpsoCheckpoint final : EngineCheckpoint {
  rng::Philox4x32 rng;
  std::vector<Particle> swarm;
  std::uint64_t generation;
  RunResult result;
  StepStatus status;
  double elapsed;

  DpsoCheckpoint(const rng::Philox4x32& rng_in, std::vector<Particle> swarm_in,
                 std::uint64_t generation_in, RunResult result_in,
                 StepStatus status_in, double elapsed_in)
      : rng(rng_in),
        swarm(std::move(swarm_in)),
        generation(generation_in),
        result(std::move(result_in)),
        status(status_in),
        elapsed(elapsed_in) {}
};

class DpsoEngine final : public Engine {
 public:
  DpsoEngine(const SequenceObjective& objective, const DpsoParams& params)
      : objective_(objective),
        params_(params),
        rng_(params.seed, /*stream=*/0xd9500ULL),
        lease_(params.pool, objective.size(), params.swarm) {
    const auto t_start = Clock::now();
    const std::size_t n = objective_.size();

    // Whole-swarm SoA pool: every generation stages the updated positions
    // into the pool's stride-aligned rows and issues one EvaluateBatch
    // call.  The evaluators consume no rng, so splitting "perturb all"
    // from "evaluate all" leaves the Philox stream order — and therefore
    // every result — bit-identical to the interleaved loop.
    CandidatePool& pool = *lease_;
    swarm_.resize(params_.swarm);
    for (Particle& p : swarm_) {
      p.position = RandomSequence(n, rng_);
      pool.Append(p.position);
    }
    objective_.EvaluateBatch(pool);
    for (std::size_t b = 0; b < swarm_.size(); ++b) {
      Particle& p = swarm_[b];
      p.cost = pool.costs()[b];
      ++result_.evaluations;
      p.best = p.position;
      p.best_cost = p.cost;
      if (p.best_cost < result_.best_cost) {
        result_.best_cost = p.best_cost;
        result_.best = p.best;
      }
    }
    if (params_.iterations == 0) status_ = StepStatus::kDone;
    elapsed_ += std::chrono::duration<double>(Clock::now() - t_start).count();
  }

  StepStatus Step(std::uint64_t units) override {
    if (status_ != StepStatus::kRunning || units == 0) return status_;
    CDD_TRACE_SPAN("meta.dpso");
    const auto t_start = Clock::now();
    CandidatePool& pool = *lease_;
    Sequence scratch;
    const std::uint64_t end =
        generation_ +
        std::min<std::uint64_t>(units, params_.iterations - generation_);
    for (; generation_ < end; ++generation_) {
      const std::uint64_t it = generation_;
      // One DPSO generation evaluates the whole swarm, so the token is
      // polled every generation rather than every kStopCheckStride.
      if (params_.stop.stop_requested()) {
        result_.stopped = true;
        status_ = StepStatus::kStopped;
        break;
      }
      pool.Clear();
      for (Particle& p : swarm_) {
        // w (+) F1: swap velocity.
        if (rng_.NextUniform() < params_.w) {
          RandomSwap(std::span<JobId>(p.position), rng_);
        }
        // c1 (+) F2: one-point crossover with the particle best.
        if (rng_.NextUniform() < params_.c1) {
          OnePointCrossover(p.position, p.best, rng_, scratch);
          p.position.swap(scratch);
        }
        // c2 (+) F3: two-point crossover with the swarm best.  p.best and
        // result.best are read-only within a generation (personal bests
        // and g(t) update below), so staging the evaluation is order-safe.
        if (rng_.NextUniform() < params_.c2) {
          TwoPointCrossover(p.position, result_.best, rng_, scratch);
          p.position.swap(scratch);
        }
        pool.Append(p.position);
      }
      objective_.EvaluateBatch(pool);
      for (std::size_t b = 0; b < swarm_.size(); ++b) {
        Particle& p = swarm_[b];
        p.cost = pool.costs()[b];
        ++result_.evaluations;
        if (p.cost < p.best_cost) {
          p.best_cost = p.cost;
          p.best = p.position;
        }
      }
      // Swarm best is updated once per generation (Algorithm 2 line 5), so
      // every particle of a generation sees the same g(t).
      for (const Particle& p : swarm_) {
        if (p.best_cost < result_.best_cost) {
          result_.best_cost = p.best_cost;
          result_.best = p.best;
        }
      }
      if (params_.trajectory_stride > 0 &&
          it % params_.trajectory_stride == 0) {
        result_.trajectory.push_back(result_.best_cost);
        CDD_TRACE_COUNTER("dpso.best_cost", result_.best_cost);
      }
    }
    if (status_ == StepStatus::kRunning &&
        generation_ == params_.iterations) {
      status_ = StepStatus::kDone;
    }
    elapsed_ += std::chrono::duration<double>(Clock::now() - t_start).count();
    return status_;
  }

  std::uint64_t Remaining() const override {
    return status_ == StepStatus::kRunning
               ? params_.iterations - generation_
               : 0;
  }

  Cost BestCost() const override { return result_.best_cost; }

  std::unique_ptr<EngineCheckpoint> Checkpoint() const override {
    return std::make_unique<DpsoCheckpoint>(rng_, swarm_, generation_,
                                            result_, status_, elapsed_);
  }

  void Restore(const EngineCheckpoint& checkpoint) override {
    const auto* cp = dynamic_cast<const DpsoCheckpoint*>(&checkpoint);
    if (cp == nullptr) {
      throw std::invalid_argument("DpsoEngine: foreign checkpoint");
    }
    rng_ = cp->rng;
    swarm_ = cp->swarm;
    generation_ = cp->generation;
    result_ = cp->result;
    status_ = cp->status;
    elapsed_ = cp->elapsed;
  }

  EngineOutput Finish() override {
    EngineOutput out;
    out.result = result_;
    out.result.wall_seconds = elapsed_;
    return out;
  }

 private:
  SequenceObjective objective_;
  DpsoParams params_;
  rng::Philox4x32 rng_;
  PoolLease lease_;
  std::vector<Particle> swarm_;
  std::uint64_t generation_ = 0;
  RunResult result_;
  StepStatus status_ = StepStatus::kRunning;
  double elapsed_ = 0.0;
};

}  // namespace

std::unique_ptr<Engine> MakeDpsoEngine(const SequenceObjective& objective,
                                       const DpsoParams& params) {
  return std::make_unique<DpsoEngine>(objective, params);
}

RunResult RunSerialDpso(const SequenceObjective& objective,
                        const DpsoParams& params) {
  DpsoEngine engine(objective, params);
  return RunToCompletion(engine).result;
}

}  // namespace cdd::meta

#include "meta/host_ensemble.hpp"

#include <atomic>
#include <chrono>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "meta/temperature.hpp"

namespace cdd::meta {

RunResult RunHostEnsembleSa(const SequenceObjective& objective,
                            const HostEnsembleParams& params) {
  const auto t_start = std::chrono::steady_clock::now();

  // Resolve the initial temperature once so every chain shares the ladder
  // (and the Salamon sampling is not repeated per chain).
  SaParams chain = params.chain;
  if (chain.initial_temperature <= 0.0) {
    chain.initial_temperature =
        InitialTemperature(objective, chain.temp_samples, chain.seed);
  }

  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned workers = std::min<unsigned>(
      params.threads == 0 ? std::max(hw, 1u) : params.threads,
      std::max(params.chains, 1u));

  std::atomic<std::uint32_t> next{0};
  std::mutex best_mutex;
  RunResult best;
  std::uint32_t best_chain = std::numeric_limits<std::uint32_t>::max();
  std::atomic<std::uint64_t> evaluations{0};
  std::atomic<bool> stopped{false};

  const auto worker = [&]() {
    for (;;) {
      if (chain.stop.stop_requested()) {
        stopped.store(true, std::memory_order_relaxed);
        break;
      }
      const std::uint32_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= params.chains) break;
      SaParams mine = chain;
      mine.seed = chain.seed + c;  // chain-id keyed: thread-count invariant
      const RunResult result = RunSerialSa(objective, mine);
      evaluations.fetch_add(result.evaluations,
                            std::memory_order_relaxed);
      if (result.stopped) stopped.store(true, std::memory_order_relaxed);
      const std::scoped_lock lock(best_mutex);
      // Ties break toward the lower chain id so the outcome does not
      // depend on scheduling.
      if (result.best_cost < best.best_cost ||
          (result.best_cost == best.best_cost && c < best_chain)) {
        best.best = result.best;
        best.best_cost = result.best_cost;
        best_chain = c;
      }
    }
  };

  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  best.evaluations = evaluations.load();
  best.stopped = stopped.load();
  best.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    t_start)
          .count();
  return best;
}

}  // namespace cdd::meta

#include "meta/host_ensemble.hpp"

#include <atomic>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "meta/temperature.hpp"

namespace cdd::meta {
namespace {

using Clock = std::chrono::steady_clock;

/// Ensemble state = one checkpoint per chain.  The merge is recomputed at
/// Finish from the chains, so nothing else needs saving.
struct HostEnsembleCheckpoint final : EngineCheckpoint {
  std::vector<std::unique_ptr<EngineCheckpoint>> chains;
  StepStatus status = StepStatus::kRunning;
  double elapsed = 0.0;
};

class HostEnsembleEngine final : public Engine {
 public:
  HostEnsembleEngine(const SequenceObjective& objective,
                     const HostEnsembleParams& params)
      : objective_(objective), params_(params) {
    const auto t_start = Clock::now();

    // Resolve the initial temperature once so every chain shares the
    // ladder (and the Salamon sampling is not repeated per chain).
    SaParams chain = params_.chain;
    if (chain.initial_temperature <= 0.0) {
      chain.initial_temperature =
          InitialTemperature(objective_, chain.temp_samples, chain.seed);
    }
    // Chains run concurrently, so they must not share one lent pool; each
    // allocates its private single row (results are placement-invariant).
    chain.pool = nullptr;

    engines_.reserve(params_.chains);
    for (std::uint32_t c = 0; c < params_.chains; ++c) {
      SaParams mine = chain;
      mine.seed = chain.seed + c;  // chain-id keyed: thread-count invariant
      engines_.push_back(MakeSaEngine(objective_, mine));
    }
    if (engines_.empty()) status_ = StepStatus::kDone;
    elapsed_ += std::chrono::duration<double>(Clock::now() - t_start).count();
  }

  StepStatus Step(std::uint64_t units) override {
    if (status_ != StepStatus::kRunning || units == 0) return status_;
    const auto t_start = Clock::now();

    const unsigned hw = std::thread::hardware_concurrency();
    const unsigned workers = std::min<unsigned>(
        params_.threads == 0 ? std::max(hw, 1u) : params_.threads,
        static_cast<unsigned>(engines_.size()));

    // Lockstep slice: every chain advances by the same unit budget, claimed
    // dynamically so fast chains do not idle behind slow ones.  Chains are
    // independent engines, so concurrent Steps never share state.
    std::atomic<std::uint32_t> next{0};
    const auto worker = [&]() {
      for (;;) {
        const std::uint32_t c = next.fetch_add(1, std::memory_order_relaxed);
        if (c >= engines_.size()) break;
        engines_[c]->Step(units);
      }
    };
    if (workers <= 1) {
      worker();
    } else {
      std::vector<std::thread> pool;
      pool.reserve(workers);
      for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker);
      for (std::thread& t : pool) t.join();
    }

    bool any_running = false;
    bool any_stopped = false;
    for (const auto& engine : engines_) {
      switch (engine->Step(0)) {  // status query
        case StepStatus::kRunning: any_running = true; break;
        case StepStatus::kStopped: any_stopped = true; break;
        case StepStatus::kDone: break;
      }
    }
    if (any_stopped) {
      status_ = StepStatus::kStopped;
    } else if (!any_running) {
      status_ = StepStatus::kDone;
    }
    elapsed_ += std::chrono::duration<double>(Clock::now() - t_start).count();
    return status_;
  }

  std::uint64_t Remaining() const override {
    std::uint64_t remaining = 0;
    for (const auto& engine : engines_) {
      remaining = std::max(remaining, engine->Remaining());
    }
    return status_ == StepStatus::kRunning ? remaining : 0;
  }

  Cost BestCost() const override {
    Cost best = kInfiniteCost;
    for (const auto& engine : engines_) {
      best = std::min(best, engine->BestCost());
    }
    return best;
  }

  std::unique_ptr<EngineCheckpoint> Checkpoint() const override {
    auto cp = std::make_unique<HostEnsembleCheckpoint>();
    cp->chains.reserve(engines_.size());
    for (const auto& engine : engines_) {
      cp->chains.push_back(engine->Checkpoint());
    }
    cp->status = status_;
    cp->elapsed = elapsed_;
    return cp;
  }

  void Restore(const EngineCheckpoint& checkpoint) override {
    const auto* cp = dynamic_cast<const HostEnsembleCheckpoint*>(&checkpoint);
    if (cp == nullptr || cp->chains.size() != engines_.size()) {
      throw std::invalid_argument("HostEnsembleEngine: foreign checkpoint");
    }
    for (std::size_t c = 0; c < engines_.size(); ++c) {
      engines_[c]->Restore(*cp->chains[c]);
    }
    status_ = cp->status;
    elapsed_ = cp->elapsed;
  }

  EngineOutput Finish() override {
    EngineOutput out;
    RunResult& best = out.result;
    std::uint32_t best_chain = std::numeric_limits<std::uint32_t>::max();
    for (std::uint32_t c = 0; c < engines_.size(); ++c) {
      const EngineOutput chain = engines_[c]->Finish();
      best.evaluations += chain.result.evaluations;
      best.stopped = best.stopped || chain.result.stopped;
      // Ties break toward the lower chain id so the outcome does not
      // depend on scheduling.
      if (chain.result.best_cost < best.best_cost ||
          (chain.result.best_cost == best.best_cost && c < best_chain)) {
        best.best = chain.result.best;
        best.best_cost = chain.result.best_cost;
        best_chain = c;
      }
    }
    best.wall_seconds = elapsed_;
    return out;
  }

 private:
  SequenceObjective objective_;
  HostEnsembleParams params_;
  std::vector<std::unique_ptr<Engine>> engines_;
  StepStatus status_ = StepStatus::kRunning;
  double elapsed_ = 0.0;
};

}  // namespace

std::unique_ptr<Engine> MakeHostEnsembleEngine(
    const SequenceObjective& objective, const HostEnsembleParams& params) {
  return std::make_unique<HostEnsembleEngine>(objective, params);
}

RunResult RunHostEnsembleSa(const SequenceObjective& objective,
                            const HostEnsembleParams& params) {
  HostEnsembleEngine engine(objective, params);
  return RunToCompletion(engine).result;
}

}  // namespace cdd::meta

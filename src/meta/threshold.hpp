#pragma once
/// \file threshold.hpp
/// \brief Threshold Accepting — one of the Feldmann & Biskup [18] CPU
/// baselines the paper compares its speed-ups against.
///
/// TA is SA with a deterministic acceptance rule: a candidate is accepted
/// iff E_new - E <= threshold, with the threshold shrinking geometrically.
/// It needs no random acceptance draw, which made it popular for
/// due-date scheduling (Feldmann & Biskup report it among their best
/// heuristics).

#include <cstdint>
#include <memory>
#include <optional>

#include "core/stop_token.hpp"
#include "meta/engine.hpp"
#include "meta/objective.hpp"
#include "meta/result.hpp"

namespace cdd::meta {

/// Parameters of a Threshold Accepting run.
struct TaParams {
  std::uint64_t iterations = 1000;
  /// Initial acceptance threshold; <= 0 derives it from the fitness spread
  /// of `temp_samples` random sequences (half a standard deviation).
  double initial_threshold = 0.0;
  double decay = 0.88;  ///< geometric threshold decay per iteration
  std::uint32_t pert = 4;
  std::uint64_t temp_samples = 2000;
  std::uint64_t seed = 1;
  std::uint32_t trajectory_stride = 0;
  /// Cooperative cancellation, polled every kStopCheckStride iterations.
  StopToken stop{};
  /// Optional lent candidate pool (see SaParams::pool); needs one row.
  CandidatePool* pool = nullptr;
};

/// Runs serial Threshold Accepting.
RunResult RunThresholdAccepting(
    const SequenceObjective& objective, const TaParams& params,
    const std::optional<Sequence>& initial = std::nullopt);

/// Creates a resumable TA engine (see engine.hpp).  Step units are TA
/// iterations; the decaying threshold is part of the checkpoint.
std::unique_ptr<Engine> MakeTaEngine(
    const SequenceObjective& objective, const TaParams& params,
    const std::optional<Sequence>& initial = std::nullopt);

}  // namespace cdd::meta

#pragma once
/// \file temperature.hpp
/// \brief Initial-temperature selection for Simulated Annealing.
///
/// The paper takes T_0 as the standard deviation of the fitness of 5000
/// random job sequences, following Salamon, Sibani & Frost [13]
/// (Section VI).  The same procedure seeds both the serial and the
/// GPU-parallel SA so their temperature ladders are comparable.

#include <cstdint>

#include "meta/objective.hpp"

namespace cdd::meta {

/// Standard deviation of the objective over \p samples uniformly random
/// sequences, drawn with a Philox stream derived from \p seed.
/// Returns at least 1.0 so the metropolis rule never divides by zero on
/// degenerate instances (e.g. all penalties equal).
double InitialTemperature(const SequenceObjective& objective,
                          std::uint64_t samples = 5000,
                          std::uint64_t seed = 0x5eed);

}  // namespace cdd::meta

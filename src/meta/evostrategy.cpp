#include "meta/evostrategy.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "core/candidate_pool.hpp"
#include "rng/philox.hpp"

namespace cdd::meta {
namespace {

using Clock = std::chrono::steady_clock;

struct Individual {
  Sequence genome;
  Cost cost = 0;
};

/// Whole-population state at a generation boundary.  The returned best is
/// derived from the population at Finish (as the original run did), so
/// the checkpoint carries the population rather than a best snapshot.
struct EsCheckpoint final : EngineCheckpoint {
  rng::Philox4x32 rng;
  std::vector<Individual> population;
  std::uint64_t generation;
  RunResult result;
  StepStatus status;
  double elapsed;

  EsCheckpoint(const rng::Philox4x32& rng_in,
               std::vector<Individual> population_in,
               std::uint64_t generation_in, RunResult result_in,
               StepStatus status_in, double elapsed_in)
      : rng(rng_in),
        population(std::move(population_in)),
        generation(generation_in),
        result(std::move(result_in)),
        status(status_in),
        elapsed(elapsed_in) {}
};

class EsEngine final : public Engine {
 public:
  EsEngine(const SequenceObjective& objective, const EsParams& params)
      : objective_(objective),
        params_(params),
        rng_(params.seed, /*stream=*/0xe5ULL),
        lease_(params.pool, objective.size(),
               std::max<std::uint32_t>(
                   std::max(params.lambda, params.mu), 1)),
        positions_(params.pert),
        values_(params.pert) {
    const auto t_start = Clock::now();
    const std::size_t n = objective_.size();

    // Offspring are bred directly inside the pool: each child row is a
    // copy of its parent perturbed in place, and the whole brood is costed
    // with one EvaluateBatch call per generation.
    CandidatePool& pool = *lease_;
    population_.reserve(params_.mu + params_.lambda);
    for (std::uint32_t i = 0; i < params_.mu; ++i) {
      Individual ind;
      ind.genome = RandomSequence(n, rng_);
      pool.Append(ind.genome);
      population_.push_back(std::move(ind));
    }
    objective_.EvaluateBatch(pool);
    for (std::uint32_t i = 0; i < params_.mu; ++i) {
      population_[i].cost = pool.costs()[i];
      ++result_.evaluations;
    }
    if (params_.generations == 0) status_ = StepStatus::kDone;
    elapsed_ += std::chrono::duration<double>(Clock::now() - t_start).count();
  }

  StepStatus Step(std::uint64_t units) override {
    if (status_ != StepStatus::kRunning || units == 0) return status_;
    const auto t_start = Clock::now();
    CandidatePool& pool = *lease_;
    const std::uint64_t end =
        generation_ +
        std::min<std::uint64_t>(units, params_.generations - generation_);
    for (; generation_ < end; ++generation_) {
      const std::uint64_t g = generation_;
      // A generation evaluates lambda offspring; poll once per generation.
      if (params_.stop.stop_requested()) {
        result_.stopped = true;
        status_ = StepStatus::kStopped;
        break;
      }
      const std::size_t parents = population_.size();
      pool.Clear();
      for (std::uint32_t k = 0; k < params_.lambda; ++k) {
        const std::uint32_t pick =
            UniformBelow(rng_, static_cast<std::uint32_t>(parents));
        const std::span<JobId> child =
            pool.row(pool.Append(population_[pick].genome));
        PartialFisherYates(child, params_.pert, rng_,
                           std::span<std::uint32_t>(positions_),
                           std::span<JobId>(values_));
      }
      objective_.EvaluateBatch(pool);
      for (std::uint32_t k = 0; k < params_.lambda; ++k) {
        const std::span<const JobId> genome = pool.row(k);
        Individual child;
        child.genome.assign(genome.begin(), genome.end());
        child.cost = pool.costs()[k];
        ++result_.evaluations;
        population_.push_back(std::move(child));
      }
      // Plus-selection: keep the best mu individuals (stable for
      // determinism).
      std::stable_sort(population_.begin(), population_.end(),
                       [](const Individual& a, const Individual& b) {
                         return a.cost < b.cost;
                       });
      population_.resize(params_.mu);
      if (params_.trajectory_stride > 0 &&
          g % params_.trajectory_stride == 0) {
        result_.trajectory.push_back(population_.front().cost);
      }
    }
    if (status_ == StepStatus::kRunning &&
        generation_ == params_.generations) {
      status_ = StepStatus::kDone;
    }
    elapsed_ += std::chrono::duration<double>(Clock::now() - t_start).count();
    return status_;
  }

  std::uint64_t Remaining() const override {
    return status_ == StepStatus::kRunning
               ? params_.generations - generation_
               : 0;
  }

  Cost BestCost() const override {
    // Before the first selection the population is unsorted, so scan it
    // (mu is small); afterwards front() is the minimum anyway.
    Cost best = kInfiniteCost;
    for (const Individual& ind : population_) best = std::min(best, ind.cost);
    return best;
  }

  std::unique_ptr<EngineCheckpoint> Checkpoint() const override {
    return std::make_unique<EsCheckpoint>(rng_, population_, generation_,
                                          result_, status_, elapsed_);
  }

  void Restore(const EngineCheckpoint& checkpoint) override {
    const auto* cp = dynamic_cast<const EsCheckpoint*>(&checkpoint);
    if (cp == nullptr) {
      throw std::invalid_argument("EsEngine: foreign checkpoint");
    }
    rng_ = cp->rng;
    population_ = cp->population;
    generation_ = cp->generation;
    result_ = cp->result;
    status_ = cp->status;
    elapsed_ = cp->elapsed;
  }

  EngineOutput Finish() override {
    EngineOutput out;
    out.result = result_;
    out.result.best = population_.front().genome;
    out.result.best_cost = population_.front().cost;
    out.result.wall_seconds = elapsed_;
    return out;
  }

 private:
  SequenceObjective objective_;
  EsParams params_;
  rng::Philox4x32 rng_;
  PoolLease lease_;
  std::vector<std::uint32_t> positions_;
  std::vector<JobId> values_;
  std::vector<Individual> population_;
  std::uint64_t generation_ = 0;
  RunResult result_;
  StepStatus status_ = StepStatus::kRunning;
  double elapsed_ = 0.0;
};

}  // namespace

std::unique_ptr<Engine> MakeEsEngine(const SequenceObjective& objective,
                                     const EsParams& params) {
  return std::make_unique<EsEngine>(objective, params);
}

RunResult RunEvolutionStrategy(const SequenceObjective& objective,
                               const EsParams& params) {
  EsEngine engine(objective, params);
  return RunToCompletion(engine).result;
}

}  // namespace cdd::meta

#include "meta/evostrategy.hpp"

#include <algorithm>
#include <chrono>

#include "core/candidate_pool.hpp"
#include "rng/philox.hpp"

namespace cdd::meta {

RunResult RunEvolutionStrategy(const SequenceObjective& objective,
                               const EsParams& params) {
  const auto t_start = std::chrono::steady_clock::now();
  const std::size_t n = objective.size();
  rng::Philox4x32 rng(params.seed, /*stream=*/0xe5ULL);

  struct Individual {
    Sequence genome;
    Cost cost = 0;
  };

  // Offspring are bred directly inside the pool: each child row is a copy
  // of its parent perturbed in place, and the whole brood is costed with
  // one EvaluateBatch call per generation.
  PoolLease lease(params.pool, n,
                  std::max<std::uint32_t>(
                      std::max(params.lambda, params.mu), 1));
  CandidatePool& pool = *lease;

  RunResult result;
  std::vector<Individual> population;
  population.reserve(params.mu + params.lambda);
  for (std::uint32_t i = 0; i < params.mu; ++i) {
    Individual ind;
    ind.genome = RandomSequence(n, rng);
    pool.Append(ind.genome);
    population.push_back(std::move(ind));
  }
  objective.EvaluateBatch(pool);
  for (std::uint32_t i = 0; i < params.mu; ++i) {
    population[i].cost = pool.costs()[i];
    ++result.evaluations;
  }

  std::vector<std::uint32_t> positions(params.pert);
  std::vector<JobId> values(params.pert);

  for (std::uint64_t g = 0; g < params.generations; ++g) {
    // A generation evaluates lambda offspring; poll once per generation.
    if (params.stop.stop_requested()) {
      result.stopped = true;
      break;
    }
    const std::size_t parents = population.size();
    pool.Clear();
    for (std::uint32_t k = 0; k < params.lambda; ++k) {
      const std::uint32_t pick =
          UniformBelow(rng, static_cast<std::uint32_t>(parents));
      const std::span<JobId> child =
          pool.row(pool.Append(population[pick].genome));
      PartialFisherYates(child, params.pert, rng,
                         std::span<std::uint32_t>(positions),
                         std::span<JobId>(values));
    }
    objective.EvaluateBatch(pool);
    for (std::uint32_t k = 0; k < params.lambda; ++k) {
      const std::span<const JobId> genome = pool.row(k);
      Individual child;
      child.genome.assign(genome.begin(), genome.end());
      child.cost = pool.costs()[k];
      ++result.evaluations;
      population.push_back(std::move(child));
    }
    // Plus-selection: keep the best mu individuals (stable for determinism).
    std::stable_sort(population.begin(), population.end(),
                     [](const Individual& a, const Individual& b) {
                       return a.cost < b.cost;
                     });
    population.resize(params.mu);
    if (params.trajectory_stride > 0 &&
        g % params.trajectory_stride == 0) {
      result.trajectory.push_back(population.front().cost);
    }
  }

  result.best = population.front().genome;
  result.best_cost = population.front().cost;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    t_start)
          .count();
  return result;
}

}  // namespace cdd::meta

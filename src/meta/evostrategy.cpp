#include "meta/evostrategy.hpp"

#include <algorithm>
#include <chrono>

#include "rng/philox.hpp"

namespace cdd::meta {

RunResult RunEvolutionStrategy(const Objective& objective,
                               const EsParams& params) {
  const auto t_start = std::chrono::steady_clock::now();
  const std::size_t n = objective.size();
  rng::Philox4x32 rng(params.seed, /*stream=*/0xe5ULL);

  struct Individual {
    Sequence genome;
    Cost cost;
  };

  RunResult result;
  std::vector<Individual> population;
  population.reserve(params.mu + params.lambda);
  for (std::uint32_t i = 0; i < params.mu; ++i) {
    Individual ind;
    ind.genome = RandomSequence(n, rng);
    ind.cost = objective(ind.genome);
    ++result.evaluations;
    population.push_back(std::move(ind));
  }

  std::vector<std::uint32_t> positions(params.pert);
  std::vector<JobId> values(params.pert);

  for (std::uint64_t g = 0; g < params.generations; ++g) {
    // A generation evaluates lambda offspring; poll once per generation.
    if (params.stop.stop_requested()) {
      result.stopped = true;
      break;
    }
    const std::size_t parents = population.size();
    for (std::uint32_t k = 0; k < params.lambda; ++k) {
      const std::uint32_t pick =
          UniformBelow(rng, static_cast<std::uint32_t>(parents));
      Individual child;
      child.genome = population[pick].genome;
      PartialFisherYates(std::span<JobId>(child.genome), params.pert, rng,
                         std::span<std::uint32_t>(positions),
                         std::span<JobId>(values));
      child.cost = objective(child.genome);
      ++result.evaluations;
      population.push_back(std::move(child));
    }
    // Plus-selection: keep the best mu individuals (stable for determinism).
    std::stable_sort(population.begin(), population.end(),
                     [](const Individual& a, const Individual& b) {
                       return a.cost < b.cost;
                     });
    population.resize(params.mu);
    if (params.trajectory_stride > 0 &&
        g % params.trajectory_stride == 0) {
      result.trajectory.push_back(population.front().cost);
    }
  }

  result.best = population.front().genome;
  result.best_cost = population.front().cost;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    t_start)
          .count();
  return result;
}

}  // namespace cdd::meta

#include "meta/temperature.hpp"

#include <algorithm>
#include <cmath>

#include "rng/philox.hpp"

namespace cdd::meta {

double InitialTemperature(const Objective& objective, std::uint64_t samples,
                          std::uint64_t seed) {
  rng::Philox4x32 rng(seed, /*stream=*/0x70DEADBEEFULL);
  Sequence seq = IdentitySequence(objective.size());
  // Welford's online algorithm: numerically stable single pass.
  double mean = 0.0;
  double m2 = 0.0;
  for (std::uint64_t k = 1; k <= samples; ++k) {
    FisherYates(std::span<JobId>(seq), rng);
    const double value = static_cast<double>(objective(seq));
    const double delta = value - mean;
    mean += delta / static_cast<double>(k);
    m2 += delta * (value - mean);
  }
  const double variance =
      samples > 1 ? m2 / static_cast<double>(samples - 1) : 0.0;
  return std::max(1.0, std::sqrt(variance));
}

}  // namespace cdd::meta

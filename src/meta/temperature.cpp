#include "meta/temperature.hpp"

#include <algorithm>
#include <cmath>

#include "core/candidate_pool.hpp"
#include "meta/splits.hpp"
#include "rng/philox.hpp"

namespace cdd::meta {

double InitialTemperature(const SequenceObjective& objective,
                          std::uint64_t samples, std::uint64_t seed) {
  rng::Philox4x32 rng(seed, /*stream=*/0x70DEADBEEFULL);
  Sequence seq = IdentitySequence(objective.size());
  // Sampling runs in pool-sized chunks: each chunk reshuffles `seq`
  // cumulatively (identical Philox consumption to the one-by-one loop) and
  // costs the whole chunk with one EvaluateBatch.  Welford's online update
  // then consumes the costs in their original sample order, so the
  // resulting temperature is bit-identical.
  constexpr std::uint64_t kChunk = 256;
  const auto machines = static_cast<std::size_t>(objective.machines());
  CandidatePool pool(objective.size(),
                     static_cast<std::size_t>(std::min(
                         std::max<std::uint64_t>(samples, 1), kChunk)),
                     machines);
  double mean = 0.0;
  double m2 = 0.0;
  std::uint64_t k = 0;
  while (k < samples) {
    pool.Clear();
    const std::uint64_t batch = std::min<std::uint64_t>(samples - k, kChunk);
    for (std::uint64_t b = 0; b < batch; ++b) {
      FisherYates(std::span<JobId>(seq), rng);
      const std::size_t row = pool.Append(seq);
      if (machines > 1) {
        // Sample the temperature over even machine assignments: the split
        // layout is deterministic, so multi-machine sampling consumes the
        // same Philox outputs as single-machine sampling.
        EvenSplits(pool.splits_row(row), objective.size());
      }
    }
    objective.EvaluateBatch(pool);
    for (std::uint64_t b = 0; b < batch; ++b) {
      ++k;
      const double value = static_cast<double>(pool.costs()[b]);
      const double delta = value - mean;
      mean += delta / static_cast<double>(k);
      m2 += delta * (value - mean);
    }
  }
  const double variance =
      samples > 1 ? m2 / static_cast<double>(samples - 1) : 0.0;
  return std::max(1.0, std::sqrt(variance));
}

}  // namespace cdd::meta

#pragma once
/// \file host_ensemble.hpp
/// \brief Multi-core CPU ensemble SA — the baseline the paper never ran.
///
/// The paper compares its GPU ensembles against *single-threaded* CPU
/// implementations.  A fair modern question is how far plain std::thread
/// parallelism gets: this runs the same asynchronous multi-chain SA
/// (identical per-chain algorithm and Philox streams as the GPU version's
/// chains) across host threads and reduces the best result.
/// bench_ablation_host_ensemble compares it against the modeled GPU.

#include <cstdint>
#include <memory>

#include "meta/engine.hpp"
#include "meta/objective.hpp"
#include "meta/result.hpp"
#include "meta/sa.hpp"

namespace cdd::meta {

/// Parameters of the host-parallel ensemble.
struct HostEnsembleParams {
  std::uint32_t chains = 64;    ///< independent SA chains
  std::uint32_t threads = 0;    ///< host threads; 0 = hardware_concurrency
  SaParams chain;               ///< per-chain SA configuration
};

/// Runs `chains` independent SA chains over a host thread pool and returns
/// the best result.  Deterministic in (seed, chains) — independent of the
/// thread count — because chain c uses seed chain.seed + c.  The serve
/// WorkerPool relies on this contract to clamp `threads` freely without
/// changing results (tests/meta/host_ensemble_test.cpp pins it).
///
/// Cancellation: `params.chain.stop` is honored both inside each chain and
/// between chains; a stopped run sets RunResult::stopped.  The thread-count
/// invariance contract applies only to runs that finish unstopped — where a
/// wall-clock stop lands depends on scheduling by construction.
RunResult RunHostEnsembleSa(const SequenceObjective& objective,
                            const HostEnsembleParams& params);

/// Creates a resumable host-ensemble engine (see engine.hpp): `chains`
/// independent SA engines stepped in lockstep slices over host threads,
/// deterministically merged at Finish.  Step units are SA iterations
/// (applied to every chain); a checkpoint captures every chain's state.
std::unique_ptr<Engine> MakeHostEnsembleEngine(
    const SequenceObjective& objective, const HostEnsembleParams& params);

}  // namespace cdd::meta

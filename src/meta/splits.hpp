#pragma once
/// \file splits.hpp
/// \brief Multi-machine split-position helpers shared by the SA/TA engines.
///
/// A multi-machine candidate is a permutation row plus (machines-1)
/// ascending split positions in [0, n] (see core/eval_raw.hpp): machine k
/// runs the contiguous slice [splits[k-1], splits[k]) of the row.  The
/// helpers here never draw randomness for single-machine candidates, so the
/// RNG schedule of existing single-machine runs is untouched.

#include <cstdint>
#include <span>

#include "core/sequence.hpp"

namespace cdd::meta {

/// Deterministic even partition of n positions over splits.size()+1
/// machines: splits[k] = (k+1)*n/m.  Used as the initial assignment so
/// engine start-up consumes no extra RNG draws.
inline void EvenSplits(std::span<std::int32_t> splits, std::size_t n) {
  const std::size_t m = splits.size() + 1;
  for (std::size_t k = 0; k + 1 < m; ++k) {
    splits[k] = static_cast<std::int32_t>(((k + 1) * n) / m);
  }
}

/// Machine-reassignment move: picks one split boundary and a direction and
/// moves the boundary by one position, i.e. the job adjacent to the
/// boundary changes machine.  Draws exactly two 32-bit RNG outputs.  Moves
/// that would break the ascending invariant (boundary already at its
/// neighbour) leave the splits unchanged — the candidate is then a no-op
/// resubmission of the current state, which the acceptance rule handles
/// like any other neighbour.
template <std::uniform_random_bit_generator Rng>
inline void SplitShift(std::span<std::int32_t> splits, std::int32_t n,
                       Rng& rng) {
  const auto boundaries = static_cast<std::uint32_t>(splits.size());
  if (boundaries == 0) return;
  const std::uint32_t k = UniformBelow(rng, boundaries);
  const std::int32_t dir = (rng() & 1u) != 0 ? 1 : -1;
  const std::int32_t lo = k == 0 ? 0 : splits[k - 1];
  const std::int32_t hi = k + 1 < boundaries ? splits[k + 1] : n;
  const std::int32_t v = splits[k] + dir;
  if (v >= lo && v <= hi) {
    splits[k] = v;
  }
}

}  // namespace cdd::meta

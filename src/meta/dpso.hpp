#pragma once
/// \file dpso.hpp
/// \brief Serial Discrete Particle Swarm Optimization — Algorithm 2,
/// following Pan et al. [15].
///
/// Position update (Eq. 3 of the paper):
///   p_i(t+1) = c2 (+) F3( c1 (+) F2( w (+) F1(p_i(t)), p_i^b(t) ), g(t) )
/// where x' = c (+) f(x) applies f with probability c, F1 is a random swap,
/// F2 a one-point crossover with the particle best and F3 a two-point
/// crossover with the swarm best.

#include <cstdint>
#include <memory>

#include "core/stop_token.hpp"
#include "meta/engine.hpp"
#include "meta/objective.hpp"
#include "meta/result.hpp"

namespace cdd::meta {

/// Parameters of a serial DPSO run.
struct DpsoParams {
  std::uint64_t iterations = 1000;  ///< generations
  std::uint32_t swarm = 64;         ///< particle count
  double w = 0.8;   ///< probability of the swap "velocity" operator F1
  double c1 = 0.8;  ///< probability of the cognition crossover F2
  double c2 = 0.8;  ///< probability of the social crossover F3
  std::uint64_t seed = 1;
  std::uint32_t trajectory_stride = 0;
  /// Cooperative cancellation, polled between generations.
  StopToken stop{};
  /// Optional lent candidate pool (see SaParams::pool); needs `swarm` rows.
  CandidatePool* pool = nullptr;
};

/// Runs the serial DPSO and returns the swarm's best particle.
RunResult RunSerialDpso(const SequenceObjective& objective,
                        const DpsoParams& params);

/// Creates a resumable DPSO engine (see engine.hpp).  Construction runs
/// the swarm initialization (one evaluation per particle); Step units are
/// generations; the checkpoint carries the whole swarm.
std::unique_ptr<Engine> MakeDpsoEngine(const SequenceObjective& objective,
                                       const DpsoParams& params);

}  // namespace cdd::meta

#pragma once
/// \file evostrategy.hpp
/// \brief (mu + lambda) Evolution Strategy — the second Feldmann & Biskup
/// [18]-style CPU baseline.
///
/// mu parents produce lambda offspring per generation by partial
/// Fisher–Yates mutation; the best mu of parents + offspring survive
/// (elitist plus-selection).

#include <cstdint>
#include <memory>

#include "core/stop_token.hpp"
#include "meta/engine.hpp"
#include "meta/objective.hpp"
#include "meta/result.hpp"

namespace cdd::meta {

/// Parameters of a (mu + lambda)-ES run.
struct EsParams {
  std::uint64_t generations = 200;
  std::uint32_t mu = 10;      ///< parents kept per generation
  std::uint32_t lambda = 40;  ///< offspring per generation
  std::uint32_t pert = 4;     ///< mutation strength (shuffled positions)
  std::uint64_t seed = 1;
  std::uint32_t trajectory_stride = 0;
  /// Cooperative cancellation, polled between generations.
  StopToken stop{};
  /// Optional lent candidate pool (see SaParams::pool); needs
  /// max(mu, lambda) rows.
  CandidatePool* pool = nullptr;
};

/// Runs the serial evolution strategy.
RunResult RunEvolutionStrategy(const SequenceObjective& objective,
                               const EsParams& params);

/// Creates a resumable (mu + lambda)-ES engine (see engine.hpp).  Step
/// units are generations; the checkpoint carries the whole population.
std::unique_ptr<Engine> MakeEsEngine(const SequenceObjective& objective,
                                     const EsParams& params);

}  // namespace cdd::meta

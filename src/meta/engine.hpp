#pragma once
/// \file engine.hpp
/// \brief Resumable engine lifecycle: Init -> Step -> Checkpoint/Restore
/// -> Finish.
///
/// Every registered engine is an Engine object whose construction is the
/// Init phase (instance + native parameters), whose search loop advances
/// in caller-sized Step slices, and whose full search state — RNG stream
/// position, current/best solutions, temperature/threshold/population
/// state — can be captured into an opaque EngineCheckpoint and restored
/// later.  The contract the property tests pin down:
///
///   * A run split across ANY sequence of Step slices is bit-identical to
///     an uninterrupted run: same best cost, same best sequence, same
///     evaluation count, same trajectory samples.
///   * Checkpoint() at a Step boundary, further Steps, then Restore() and
///     re-Stepping reproduces the run from the checkpoint bit-identically
///     (speculative work is discarded without trace).
///   * Stepping never consumes randomness beyond what the equivalent
///     uninterrupted loop would, so the golden run manifests recorded
///     before this refactor still replay bit-for-bit.
///
/// The unit of one Step is the engine's native major iteration: SA/TA
/// iterations, DPSO/ES generations, synchronous-SA temperature levels,
/// branch-and-bound nodes.  Callers that need wall-clock slices size the
/// unit budget themselves.
///
/// This lifecycle is what the racing portfolio (src/portfolio) and the
/// serve layer's preemption build on: both pause engines only at Step
/// boundaries, which are by construction checkpoint boundaries.

#include <cstdint>
#include <memory>

#include "meta/result.hpp"

namespace cdd::meta {

/// Opaque deep copy of an engine's full search state.  Only meaningful to
/// the engine type that produced it; Restore() on any other engine throws.
class EngineCheckpoint {
 public:
  virtual ~EngineCheckpoint() = default;
};

/// Outcome of a Step slice.
enum class StepStatus {
  kRunning,  ///< budget remains; call Step again
  kDone,     ///< the full iteration budget ran
  kStopped,  ///< the StopToken truncated the search
};

/// Normalized outcome of a finished engine (what the registry adapters
/// return): the host-side result plus the modeled device time (zero for
/// host engines).
struct EngineOutput {
  RunResult result;
  double device_seconds = 0.0;
};

/// Step budget meaning "run to completion".
inline constexpr std::uint64_t kStepAll = ~std::uint64_t{0};

/// A resumable solver.  Not thread-safe: one engine is driven by one
/// thread at a time (the serve worker or the racing portfolio).
class Engine {
 public:
  virtual ~Engine() = default;

  /// Advances up to \p units native iterations (saturating at the
  /// configured budget).  Step(0) is a no-op status query.
  virtual StepStatus Step(std::uint64_t units) = 0;

  /// Native iterations left in the budget (0 when done or stopped).
  virtual std::uint64_t Remaining() const = 0;

  /// Best-so-far cost — the convergence counter the racing portfolio
  /// compares at checkpoints.  Valid from construction on.
  virtual Cost BestCost() const = 0;

  /// Deep-copies the full search state.  Call only at Step boundaries.
  virtual std::unique_ptr<EngineCheckpoint> Checkpoint() const = 0;

  /// Restores a state captured by this engine type (same instance and
  /// parameters).  Throws std::invalid_argument on a foreign checkpoint.
  virtual void Restore(const EngineCheckpoint& checkpoint) = 0;

  /// Finalizes and returns the run record.  Idempotent; the engine stays
  /// restorable afterwards (Finish does not consume state).
  virtual EngineOutput Finish() = 0;
};

/// Drives \p engine to completion in one slice — the run-to-completion
/// functions (RunSerialSa & friends) are exactly this.
inline EngineOutput RunToCompletion(Engine& engine) {
  engine.Step(kStepAll);
  return engine.Finish();
}

}  // namespace cdd::meta

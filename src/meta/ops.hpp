#pragma once
/// \file ops.hpp
/// \brief Permutation crossover operators of the DPSO (Pan et al. [15]).
///
/// The DPSO position update (Section VII, Eq. 3) composes three operators:
///   F1 — random swap ("velocity"), provided by RandomSwap() in core,
///   F2 — one-point crossover with the particle's best position,
///   F3 — two-point crossover with the swarm's best position.
/// Both crossovers preserve permutation validity: positions taken from the
/// first parent keep their place, every remaining job enters in the order it
/// appears in the second parent.

#include <random>
#include <span>
#include <vector>

#include "core/sequence.hpp"

namespace cdd::meta {

/// One-point crossover: child = p1[0..cut) ++ (jobs missing, in p2 order).
/// \p cut must be in [0, n].  Writes into \p child (resized to n).
void OnePointCrossover(std::span<const JobId> p1, std::span<const JobId> p2,
                       std::size_t cut, Sequence& child);

/// Two-point crossover: child keeps p1[a..b) in place; all other positions
/// are filled left to right with the remaining jobs in p2 order.
/// Requires 0 <= a <= b <= n.
void TwoPointCrossover(std::span<const JobId> p1, std::span<const JobId> p2,
                       std::size_t a, std::size_t b, Sequence& child);

/// Randomized convenience wrappers drawing the cut points uniformly.
template <std::uniform_random_bit_generator Rng>
void OnePointCrossover(std::span<const JobId> p1, std::span<const JobId> p2,
                       Rng& rng, Sequence& child) {
  const auto n = static_cast<std::uint32_t>(p1.size());
  OnePointCrossover(p1, p2, UniformBelow(rng, n + 1), child);
}

template <std::uniform_random_bit_generator Rng>
void TwoPointCrossover(std::span<const JobId> p1, std::span<const JobId> p2,
                       Rng& rng, Sequence& child) {
  const auto n = static_cast<std::uint32_t>(p1.size());
  std::uint32_t a = UniformBelow(rng, n + 1);
  std::uint32_t b = UniformBelow(rng, n + 1);
  if (a > b) std::swap(a, b);
  TwoPointCrossover(p1, p2, a, b, child);
}

}  // namespace cdd::meta

#pragma once
/// \file objective.hpp
/// \brief Sequence-level objective shared by all metaheuristics.
///
/// Layer (i) of the paper's two-layered approach searches over job
/// sequences; the objective of that search is "optimal schedule cost of the
/// sequence", provided by the O(n) evaluators of layer (ii).  Objective
/// packages that as a value type so SA / DPSO / TA / ES are written once
/// for both problems.

#include <functional>
#include <stdexcept>
#include <memory>
#include <span>

#include "core/eval_cdd.hpp"
#include "core/eval_ucddcp.hpp"
#include "core/instance.hpp"

namespace cdd::meta {

/// Callable objective over job sequences (lower is better).
class Objective {
 public:
  using Fn = std::function<Cost(std::span<const JobId>)>;

  Objective(std::size_t n, Fn fn) : n_(n), fn_(std::move(fn)) {}

  /// Builds the appropriate O(n) evaluator for the instance's problem.
  /// Problem::kCddcp has no O(n) evaluator — use lp::MakeLpObjective.
  static Objective ForInstance(const Instance& instance) {
    if (instance.problem() == Problem::kCddcp) {
      throw std::invalid_argument(
          "Objective::ForInstance: the restricted controllable problem has "
          "no O(n) evaluator; build the objective with lp::MakeLpObjective");
    }
    if (instance.problem() == Problem::kUcddcp) {
      auto eval = std::make_shared<UcddcpEvaluator>(instance);
      return Objective(instance.size(),
                       [eval](std::span<const JobId> seq) {
                         return eval->Evaluate(seq);
                       });
    }
    auto eval = std::make_shared<CddEvaluator>(instance);
    return Objective(instance.size(), [eval](std::span<const JobId> seq) {
      return eval->Evaluate(seq);
    });
  }

  Cost operator()(std::span<const JobId> seq) const { return fn_(seq); }
  std::size_t size() const { return n_; }

 private:
  std::size_t n_;
  Fn fn_;
};

}  // namespace cdd::meta

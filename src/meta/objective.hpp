#pragma once
/// \file objective.hpp
/// \brief Sequence-level objective shared by all metaheuristics.
///
/// Layer (i) of the paper's two-layered approach searches over job
/// sequences; the objective of that search is "optimal schedule cost of the
/// sequence", provided by the O(n) evaluators of layer (ii).
///
/// SequenceObjective packages that as a concrete value type.  For kCdd and
/// kUcddcp instances it owns the flattened SoA instance arrays and calls
/// the raw evaluators directly — no type erasure, no per-candidate
/// indirect dispatch.  Engines hand it a whole generation at a time:
/// EvaluateBatch(pool) runs cdd::raw::EvalCddBatch / EvalUcddcpBatch over
/// the pool's stride-aligned rows while the instance arrays stay
/// cache-resident.  The restricted controllable problem (kCddcp) has no
/// O(n) evaluator; lp::MakeLpObjective supplies a BatchEvaluator fallback
/// behind the same interface, so every engine is written once.

#include <algorithm>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/candidate_pool.hpp"
#include "core/eval_raw.hpp"
#include "core/eval_simd.hpp"
#include "core/instance.hpp"
#include "core/sequence.hpp"

namespace cdd::meta {

/// Fallback evaluation backend for objectives with no O(n) algorithm (the
/// LP-in-the-loop path).  The batch default simply walks the pool — the
/// virtual call is per *generation*, never per candidate.
class BatchEvaluator {
 public:
  virtual ~BatchEvaluator() = default;

  /// Optimal cost of one sequence.
  virtual Cost Evaluate(std::span<const JobId> seq) const = 0;

  /// Evaluates every live row of \p pool into pool.costs(); backends with
  /// no schedule geometry leave pinned[b] = -1.
  virtual void EvaluateBatch(CandidatePool& pool) const {
    const std::size_t count = pool.size();
    for (std::size_t b = 0; b < count; ++b) {
      pool.costs()[b] = Evaluate(pool.row(b));
      pool.pinned()[b] = -1;
    }
  }
};

/// Concrete objective over job sequences (lower is better).
class SequenceObjective {
 public:
  /// Builds the O(n) evaluator for the instance's problem variant.
  /// Problem::kCddcp has no O(n) evaluator — use lp::MakeLpObjective.
  /// Multi-machine and early-work instances (Instance::machines() > 1 /
  /// ScheduleObjective::kEarlyWork, CDD only — Instance::Validate enforces
  /// that) get the splits-aware kinds; their candidates carry the
  /// (machines-1) ascending split positions of eval_raw.hpp next to the
  /// permutation, so only pools built with the matching machine count are
  /// accepted by EvaluateBatch.
  static SequenceObjective ForInstance(const Instance& instance) {
    if (instance.problem() == Problem::kCddcp) {
      throw std::invalid_argument(
          "SequenceObjective::ForInstance: the restricted controllable "
          "problem has no O(n) evaluator; build the objective with "
          "lp::MakeLpObjective");
    }
    if (instance.objective() == ScheduleObjective::kEarlyWork) {
      return SequenceObjective(Kind::kEarlyWork, instance);
    }
    if (instance.machines() > 1) {
      return SequenceObjective(Kind::kCddMachines, instance);
    }
    return SequenceObjective(instance.problem() == Problem::kUcddcp
                                 ? Kind::kUcddcp
                                 : Kind::kCdd,
                             instance);
  }

  /// Objective backed by a custom evaluation backend (the LP fallback).
  SequenceObjective(std::size_t n,
                    std::shared_ptr<const BatchEvaluator> backend)
      : kind_(Kind::kFallback), n_(n), backend_(std::move(backend)) {
    if (backend_ == nullptr) {
      throw std::invalid_argument("SequenceObjective: null backend");
    }
  }

  /// Optimal cost of one sequence (the cold path; generations should go
  /// through EvaluateBatch).  Multi-machine objectives need the splits
  /// overload below; calling this one with machines() > 1 throws.
  Cost Evaluate(std::span<const JobId> seq) const {
    if (machines_ > 1) {
      throw std::invalid_argument(
          "SequenceObjective::Evaluate: multi-machine objective needs the "
          "(seq, splits) overload");
    }
    const auto n = static_cast<std::int32_t>(seq.size());
    switch (kind_) {
      case Kind::kCdd:
      case Kind::kCddMachines:  // m == 1 degenerates to the fused evaluator
        return raw::EvalCddFused(n, d_, seq.data(), proc_.data(),
                                 alpha_.data(), beta_.data())
            .cost;
      case Kind::kEarlyWork:
        return raw::EvalEarlyWork(n, 1, d_, seq.data(), nullptr, proc_.data())
            .cost;
      case Kind::kUcddcp:
        return raw::EvalUcddcpFused(n, d_, seq.data(), proc_.data(),
                                    min_proc_.data(), alpha_.data(),
                                    beta_.data(), gamma_.data())
            .cost;
      case Kind::kFallback:
        break;
    }
    return backend_->Evaluate(seq);
  }

  /// Optimal cost of one multi-machine candidate: \p splits holds the
  /// (machines()-1) ascending split positions (empty for machines() == 1).
  Cost Evaluate(std::span<const JobId> seq,
                std::span<const std::int32_t> splits) const {
    if (splits.size() !=
        static_cast<std::size_t>(std::max<std::int32_t>(machines_, 1) - 1)) {
      throw std::invalid_argument(
          "SequenceObjective::Evaluate: splits length must be machines-1");
    }
    if (machines_ <= 1) return Evaluate(seq);
    const auto n = static_cast<std::int32_t>(seq.size());
    if (kind_ == Kind::kEarlyWork) {
      return raw::EvalEarlyWork(n, machines_, d_, seq.data(), splits.data(),
                                proc_.data())
          .cost;
    }
    return raw::EvalCddMachines(n, machines_, d_, seq.data(), splits.data(),
                                proc_.data(), alpha_.data(), beta_.data())
        .cost;
  }

  Cost operator()(std::span<const JobId> seq) const { return Evaluate(seq); }

  /// Evaluates every live row of \p pool in one call: costs() and pinned()
  /// are filled per row.  This is the only objective entry point on any
  /// engine's generation hot path.
  void EvaluateBatch(CandidatePool& pool) const {
    const CandidatePoolView v = pool.view();
    if (machines_ > 1 && v.machines != machines_) {
      throw std::invalid_argument(
          "SequenceObjective::EvaluateBatch: pool machine count does not "
          "match the objective");
    }
    switch (kind_) {
      case Kind::kCdd:
        raw::EvalCddBatchDispatch(v.n, d_, v.seqs, v.stride,
                                  static_cast<std::int32_t>(v.count),
                                  proc_.data(), alpha_.data(), beta_.data(),
                                  v.costs, v.pinned);
        return;
      case Kind::kCddMachines:
        raw::EvalCddMachinesBatchDispatch(
            v.n, machines_, d_, v.seqs, v.stride, v.splits,
            static_cast<std::int32_t>(v.count), proc_.data(), alpha_.data(),
            beta_.data(), v.costs, v.pinned);
        return;
      case Kind::kEarlyWork:
        raw::EvalEarlyWorkBatchDispatch(v.n, machines_, d_, v.seqs, v.stride,
                                        v.splits,
                                        static_cast<std::int32_t>(v.count),
                                        proc_.data(), v.costs, v.pinned);
        return;
      case Kind::kUcddcp:
        raw::EvalUcddcpBatchDispatch(v.n, d_, v.seqs, v.stride,
                                     static_cast<std::int32_t>(v.count),
                                     proc_.data(), min_proc_.data(),
                                     alpha_.data(), beta_.data(),
                                     gamma_.data(), v.costs, v.pinned);
        return;
      case Kind::kFallback:
        backend_->EvaluateBatch(pool);
        return;
    }
  }

  std::size_t size() const { return n_; }

  /// Machine count of the instance this objective evaluates (1 for all
  /// single-machine kinds, including the LP fallback).
  std::int32_t machines() const { return machines_; }

  /// True for the early-work (late-work minimization) objective variant.
  bool early_work() const { return kind_ == Kind::kEarlyWork; }

  /// True when the objective evaluates through the O(n) SoA fast path
  /// (false for backend-driven objectives such as the LP fallback).
  bool direct() const { return kind_ != Kind::kFallback; }

 private:
  enum class Kind { kCdd, kUcddcp, kCddMachines, kEarlyWork, kFallback };

  SequenceObjective(Kind kind, const Instance& instance)
      : kind_(kind),
        n_(instance.size()),
        d_(instance.due_date()),
        machines_(instance.machines()) {
    proc_.reserve(n_);
    alpha_.reserve(n_);
    beta_.reserve(n_);
    const bool controllable = kind == Kind::kUcddcp;
    if (controllable) {
      if (!instance.is_unrestricted()) {
        throw std::invalid_argument(
            "SequenceObjective: instance is restricted (d < sum P_i); the "
            "O(n) algorithm of Awasthi et al. requires the unrestricted "
            "case");
      }
      min_proc_.reserve(n_);
      gamma_.reserve(n_);
    }
    for (const Job& j : instance.jobs()) {
      proc_.push_back(j.proc);
      alpha_.push_back(j.early);
      beta_.push_back(j.tardy);
      if (controllable) {
        min_proc_.push_back(j.min_proc);
        gamma_.push_back(j.compress);
      }
    }
  }

  Kind kind_;
  std::size_t n_;
  Time d_ = 0;
  std::int32_t machines_ = 1;
  std::vector<Time> proc_;
  std::vector<Time> min_proc_;
  std::vector<Cost> alpha_;
  std::vector<Cost> beta_;
  std::vector<Cost> gamma_;
  std::shared_ptr<const BatchEvaluator> backend_;
};

/// Historical name; every engine now takes the concrete SequenceObjective.
using Objective = SequenceObjective;

}  // namespace cdd::meta

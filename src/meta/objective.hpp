#pragma once
/// \file objective.hpp
/// \brief Sequence-level objective shared by all metaheuristics.
///
/// Layer (i) of the paper's two-layered approach searches over job
/// sequences; the objective of that search is "optimal schedule cost of the
/// sequence", provided by the O(n) evaluators of layer (ii).
///
/// SequenceObjective packages that as a concrete value type.  For kCdd and
/// kUcddcp instances it owns the flattened SoA instance arrays and calls
/// the raw evaluators directly — no type erasure, no per-candidate
/// indirect dispatch.  Engines hand it a whole generation at a time:
/// EvaluateBatch(pool) runs cdd::raw::EvalCddBatch / EvalUcddcpBatch over
/// the pool's stride-aligned rows while the instance arrays stay
/// cache-resident.  The restricted controllable problem (kCddcp) has no
/// O(n) evaluator; lp::MakeLpObjective supplies a BatchEvaluator fallback
/// behind the same interface, so every engine is written once.

#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/candidate_pool.hpp"
#include "core/eval_raw.hpp"
#include "core/eval_simd.hpp"
#include "core/instance.hpp"
#include "core/sequence.hpp"

namespace cdd::meta {

/// Fallback evaluation backend for objectives with no O(n) algorithm (the
/// LP-in-the-loop path).  The batch default simply walks the pool — the
/// virtual call is per *generation*, never per candidate.
class BatchEvaluator {
 public:
  virtual ~BatchEvaluator() = default;

  /// Optimal cost of one sequence.
  virtual Cost Evaluate(std::span<const JobId> seq) const = 0;

  /// Evaluates every live row of \p pool into pool.costs(); backends with
  /// no schedule geometry leave pinned[b] = -1.
  virtual void EvaluateBatch(CandidatePool& pool) const {
    const std::size_t count = pool.size();
    for (std::size_t b = 0; b < count; ++b) {
      pool.costs()[b] = Evaluate(pool.row(b));
      pool.pinned()[b] = -1;
    }
  }
};

/// Concrete objective over job sequences (lower is better).
class SequenceObjective {
 public:
  /// Builds the O(n) evaluator for the instance's problem.
  /// Problem::kCddcp has no O(n) evaluator — use lp::MakeLpObjective.
  static SequenceObjective ForInstance(const Instance& instance) {
    if (instance.problem() == Problem::kCddcp) {
      throw std::invalid_argument(
          "SequenceObjective::ForInstance: the restricted controllable "
          "problem has no O(n) evaluator; build the objective with "
          "lp::MakeLpObjective");
    }
    return SequenceObjective(instance.problem() == Problem::kUcddcp
                                 ? Kind::kUcddcp
                                 : Kind::kCdd,
                             instance);
  }

  /// Objective backed by a custom evaluation backend (the LP fallback).
  SequenceObjective(std::size_t n,
                    std::shared_ptr<const BatchEvaluator> backend)
      : kind_(Kind::kFallback), n_(n), backend_(std::move(backend)) {
    if (backend_ == nullptr) {
      throw std::invalid_argument("SequenceObjective: null backend");
    }
  }

  /// Optimal cost of one sequence (the cold path; generations should go
  /// through EvaluateBatch).
  Cost Evaluate(std::span<const JobId> seq) const {
    const auto n = static_cast<std::int32_t>(seq.size());
    switch (kind_) {
      case Kind::kCdd:
        return raw::EvalCddFused(n, d_, seq.data(), proc_.data(),
                                 alpha_.data(), beta_.data())
            .cost;
      case Kind::kUcddcp:
        return raw::EvalUcddcpFused(n, d_, seq.data(), proc_.data(),
                                    min_proc_.data(), alpha_.data(),
                                    beta_.data(), gamma_.data())
            .cost;
      case Kind::kFallback:
        break;
    }
    return backend_->Evaluate(seq);
  }

  Cost operator()(std::span<const JobId> seq) const { return Evaluate(seq); }

  /// Evaluates every live row of \p pool in one call: costs() and pinned()
  /// are filled per row.  This is the only objective entry point on any
  /// engine's generation hot path.
  void EvaluateBatch(CandidatePool& pool) const {
    const CandidatePoolView v = pool.view();
    switch (kind_) {
      case Kind::kCdd:
        raw::EvalCddBatchDispatch(v.n, d_, v.seqs, v.stride,
                                  static_cast<std::int32_t>(v.count),
                                  proc_.data(), alpha_.data(), beta_.data(),
                                  v.costs, v.pinned);
        return;
      case Kind::kUcddcp:
        raw::EvalUcddcpBatchDispatch(v.n, d_, v.seqs, v.stride,
                                     static_cast<std::int32_t>(v.count),
                                     proc_.data(), min_proc_.data(),
                                     alpha_.data(), beta_.data(),
                                     gamma_.data(), v.costs, v.pinned);
        return;
      case Kind::kFallback:
        backend_->EvaluateBatch(pool);
        return;
    }
  }

  std::size_t size() const { return n_; }

  /// True when the objective evaluates through the O(n) SoA fast path
  /// (false for backend-driven objectives such as the LP fallback).
  bool direct() const { return kind_ != Kind::kFallback; }

 private:
  enum class Kind { kCdd, kUcddcp, kFallback };

  SequenceObjective(Kind kind, const Instance& instance)
      : kind_(kind), n_(instance.size()), d_(instance.due_date()) {
    proc_.reserve(n_);
    alpha_.reserve(n_);
    beta_.reserve(n_);
    const bool controllable = kind == Kind::kUcddcp;
    if (controllable) {
      if (!instance.is_unrestricted()) {
        throw std::invalid_argument(
            "SequenceObjective: instance is restricted (d < sum P_i); the "
            "O(n) algorithm of Awasthi et al. requires the unrestricted "
            "case");
      }
      min_proc_.reserve(n_);
      gamma_.reserve(n_);
    }
    for (const Job& j : instance.jobs()) {
      proc_.push_back(j.proc);
      alpha_.push_back(j.early);
      beta_.push_back(j.tardy);
      if (controllable) {
        min_proc_.push_back(j.min_proc);
        gamma_.push_back(j.compress);
      }
    }
  }

  Kind kind_;
  std::size_t n_;
  Time d_ = 0;
  std::vector<Time> proc_;
  std::vector<Time> min_proc_;
  std::vector<Cost> alpha_;
  std::vector<Cost> beta_;
  std::vector<Cost> gamma_;
  std::shared_ptr<const BatchEvaluator> backend_;
};

/// Historical name; every engine now takes the concrete SequenceObjective.
using Objective = SequenceObjective;

}  // namespace cdd::meta

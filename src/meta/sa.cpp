#include "meta/sa.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "core/candidate_pool.hpp"
#include "meta/temperature.hpp"
#include "rng/philox.hpp"
#include "trace/tracer.hpp"

namespace cdd::meta {

RunResult RunSerialSa(const SequenceObjective& objective,
                      const SaParams& params,
                      const std::optional<Sequence>& initial) {
  CDD_TRACE_SPAN("meta.sa");
  const auto t_start = std::chrono::steady_clock::now();
  const std::size_t n = objective.size();
  rng::Philox4x32 rng(params.seed, /*stream=*/0x5a5a5a5aULL);

  RunResult result;

  Sequence current =
      initial.has_value() ? *initial : RandomSequence(n, rng);
  Cost energy = objective(current);
  result.evaluations = 1;
  result.best = current;
  result.best_cost = energy;

  const double t0 =
      params.initial_temperature > 0.0
          ? params.initial_temperature
          : InitialTemperature(objective, params.temp_samples, params.seed);
  const CoolingSchedule schedule(params.cooling, t0, params.mu,
                                 params.iterations);

  // The SA chain is sequential, so its "generation" is one candidate: the
  // neighbour is perturbed directly inside a single-row pool and evaluated
  // with one EvaluateBatch call — the same entry point the population
  // engines use, with no per-candidate dispatch.
  PoolLease lease(params.pool, n, /*capacity=*/1);
  CandidatePool& pool = *lease;
  const std::span<JobId> candidate = pool.row(pool.AppendUninitialized());
  std::vector<std::uint32_t> positions(params.pert);
  std::vector<JobId> values(params.pert);

  const std::uint32_t period = std::max(params.shuffle_period, 1u);
  for (std::uint64_t i = 0; i < params.iterations; ++i) {
    if (i % kStopCheckStride == 0 && params.stop.stop_requested()) {
      result.stopped = true;
      break;
    }
    const double temperature = schedule(i);
    std::copy(current.begin(), current.end(), candidate.begin());
    if (params.neighborhood == NeighborhoodMode::kShuffleEveryIteration ||
        i % period == 0) {
      PartialFisherYates(candidate, params.pert, rng,
                         std::span<std::uint32_t>(positions),
                         std::span<JobId>(values));
    } else {
      RandomSwap(candidate, rng);
    }
    objective.EvaluateBatch(pool);
    const Cost new_energy = pool.costs()[0];
    ++result.evaluations;

    // Metropolis: always accept improvements; accept uphill moves with
    // probability exp((E - E_new)/T)  (Algorithm 1, line 7).
    const double u = rng.NextUniform();
    const double accept =
        std::exp(static_cast<double>(energy - new_energy) /
                 std::max(temperature, 1e-300));
    if (accept >= u) {
      current.assign(candidate.begin(), candidate.end());
      energy = new_energy;
      if (energy < result.best_cost) {
        result.best_cost = energy;
        result.best = current;
      }
    }
    if (params.trajectory_stride > 0 &&
        i % params.trajectory_stride == 0) {
      result.trajectory.push_back(result.best_cost);
      // Convergence telemetry rides the existing sampling points, so the
      // trace adds no work on unsampled iterations and never touches rng.
      CDD_TRACE_COUNTER("sa.best_cost", result.best_cost);
    }
  }

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    t_start)
          .count();
  return result;
}

}  // namespace cdd::meta

#include "meta/sa.hpp"

#include <chrono>
#include <cmath>

#include "meta/temperature.hpp"
#include "rng/philox.hpp"
#include "trace/tracer.hpp"

namespace cdd::meta {

RunResult RunSerialSa(const Objective& objective, const SaParams& params,
                      const std::optional<Sequence>& initial) {
  CDD_TRACE_SPAN("meta.sa");
  const auto t_start = std::chrono::steady_clock::now();
  const std::size_t n = objective.size();
  rng::Philox4x32 rng(params.seed, /*stream=*/0x5a5a5a5aULL);

  RunResult result;

  Sequence current =
      initial.has_value() ? *initial : RandomSequence(n, rng);
  Cost energy = objective(current);
  result.evaluations = 1;
  result.best = current;
  result.best_cost = energy;

  const double t0 =
      params.initial_temperature > 0.0
          ? params.initial_temperature
          : InitialTemperature(objective, params.temp_samples, params.seed);
  const CoolingSchedule schedule(params.cooling, t0, params.mu,
                                 params.iterations);

  Sequence candidate = current;
  std::vector<std::uint32_t> positions(params.pert);
  std::vector<JobId> values(params.pert);

  const std::uint32_t period = std::max(params.shuffle_period, 1u);
  for (std::uint64_t i = 0; i < params.iterations; ++i) {
    if (i % kStopCheckStride == 0 && params.stop.stop_requested()) {
      result.stopped = true;
      break;
    }
    const double temperature = schedule(i);
    candidate = current;
    if (params.neighborhood == NeighborhoodMode::kShuffleEveryIteration ||
        i % period == 0) {
      PartialFisherYates(std::span<JobId>(candidate), params.pert, rng,
                         std::span<std::uint32_t>(positions),
                         std::span<JobId>(values));
    } else {
      RandomSwap(std::span<JobId>(candidate), rng);
    }
    const Cost new_energy = objective(candidate);
    ++result.evaluations;

    // Metropolis: always accept improvements; accept uphill moves with
    // probability exp((E - E_new)/T)  (Algorithm 1, line 7).
    const double u = rng.NextUniform();
    const double accept =
        std::exp(static_cast<double>(energy - new_energy) /
                 std::max(temperature, 1e-300));
    if (accept >= u) {
      current.swap(candidate);
      energy = new_energy;
      if (energy < result.best_cost) {
        result.best_cost = energy;
        result.best = current;
      }
    }
    if (params.trajectory_stride > 0 &&
        i % params.trajectory_stride == 0) {
      result.trajectory.push_back(result.best_cost);
      // Convergence telemetry rides the existing sampling points, so the
      // trace adds no work on unsampled iterations and never touches rng.
      CDD_TRACE_COUNTER("sa.best_cost", result.best_cost);
    }
  }

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    t_start)
          .count();
  return result;
}

}  // namespace cdd::meta

#pragma once
/// \file result.hpp
/// \brief Common result record of one metaheuristic run.

#include <vector>

#include "core/sequence.hpp"
#include "core/types.hpp"

namespace cdd::meta {

/// Outcome of a single optimization run.
struct RunResult {
  Sequence best;                  ///< best sequence found
  Cost best_cost = kInfiniteCost; ///< its objective value
  /// Ascending split positions of the best multi-machine candidate
  /// (machines-1 entries; machine k runs best[splits[k-1] .. splits[k])).
  /// Empty for single-machine runs.
  std::vector<std::int32_t> best_splits;
  std::uint64_t evaluations = 0;  ///< objective calls performed
  double wall_seconds = 0.0;      ///< measured host wall-clock time
  /// True when the run was cut short by its StopToken (explicit stop or
  /// deadline).  `best` is then the best of the iterations that did run —
  /// still a valid sequence, just from a truncated search.
  bool stopped = false;
  /// Best-so-far cost sampled every `trajectory_stride` iterations when the
  /// caller requested a trajectory (empty otherwise).  Used by the
  /// convergence ablations.
  std::vector<Cost> trajectory;
};

}  // namespace cdd::meta

#include "meta/threshold.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "core/candidate_pool.hpp"
#include "meta/splits.hpp"
#include "meta/temperature.hpp"
#include "rng/philox.hpp"

namespace cdd::meta {
namespace {

using Clock = std::chrono::steady_clock;

/// Probability of proposing a machine-reassignment (split-shift) move on
/// multi-machine instances; the selection uniform is drawn only when
/// machines > 1 so single-machine runs keep their exact RNG schedule.
constexpr float kReassignProb = 0.25f;

/// TA chain state at a Step boundary.  The decayed threshold is a host
/// accumulator (threshold *= decay each iteration), so it is part of the
/// checkpoint alongside the RNG position.
struct TaCheckpoint final : EngineCheckpoint {
  rng::Philox4x32 rng;
  Sequence current;
  std::vector<std::int32_t> splits;
  Cost energy;
  double threshold;
  std::uint64_t iteration;
  RunResult result;
  StepStatus status;
  double elapsed;

  TaCheckpoint(const rng::Philox4x32& rng_in, Sequence current_in,
               std::vector<std::int32_t> splits_in, Cost energy_in,
               double threshold_in, std::uint64_t iteration_in,
               RunResult result_in, StepStatus status_in, double elapsed_in)
      : rng(rng_in),
        current(std::move(current_in)),
        splits(std::move(splits_in)),
        energy(energy_in),
        threshold(threshold_in),
        iteration(iteration_in),
        result(std::move(result_in)),
        status(status_in),
        elapsed(elapsed_in) {}
};

class TaEngine final : public Engine {
 public:
  TaEngine(const SequenceObjective& objective, const TaParams& params,
           const std::optional<Sequence>& initial)
      : objective_(objective),
        params_(params),
        machines_(objective.machines()),
        rng_(params.seed, /*stream=*/0x7aULL),
        lease_(params.pool, objective.size(), /*capacity=*/1,
               static_cast<std::size_t>(objective.machines())),
        positions_(params.pert),
        values_(params.pert) {
    const auto t_start = Clock::now();
    const std::size_t n = objective_.size();
    current_ = initial.has_value() ? *initial : RandomSequence(n, rng_);
    if (machines_ > 1) {
      current_splits_.resize(static_cast<std::size_t>(machines_ - 1));
      EvenSplits(current_splits_, n);
      energy_ = objective_.Evaluate(current_, current_splits_);
    } else {
      energy_ = objective_(current_);
    }
    result_.evaluations = 1;
    result_.best = current_;
    result_.best_cost = energy_;
    result_.best_splits = current_splits_;
    threshold_ =
        params_.initial_threshold > 0.0
            ? params_.initial_threshold
            : 0.5 * InitialTemperature(objective_, params_.temp_samples,
                                       params_.seed);
    (*lease_).AppendUninitialized();
    if (params_.iterations == 0) status_ = StepStatus::kDone;
    elapsed_ += std::chrono::duration<double>(Clock::now() - t_start).count();
  }

  StepStatus Step(std::uint64_t units) override {
    if (status_ != StepStatus::kRunning || units == 0) return status_;
    const auto t_start = Clock::now();
    CandidatePool& pool = *lease_;
    const std::span<JobId> candidate = pool.row(0);
    const std::uint64_t end =
        iteration_ +
        std::min<std::uint64_t>(units, params_.iterations - iteration_);
    for (; iteration_ < end; ++iteration_) {
      const std::uint64_t i = iteration_;
      if (i % kStopCheckStride == 0 && params_.stop.stop_requested()) {
        result_.stopped = true;
        status_ = StepStatus::kStopped;
        break;
      }
      std::copy(current_.begin(), current_.end(), candidate.begin());
      bool sequence_move = true;
      if (machines_ > 1) {
        std::copy(current_splits_.begin(), current_splits_.end(),
                  pool.splits_row(0).begin());
        // Extra draws are gated on m > 1: single-machine runs replay their
        // historical RNG schedule bit for bit.
        if (rng_.NextUniform() <= kReassignProb) {
          sequence_move = false;
          SplitShift(pool.splits_row(0),
                     static_cast<std::int32_t>(current_.size()), rng_);
        }
      }
      if (sequence_move) {
        PartialFisherYates(candidate, params_.pert, rng_,
                           std::span<std::uint32_t>(positions_),
                           std::span<JobId>(values_));
      }
      objective_.EvaluateBatch(pool);
      const Cost new_energy = pool.costs()[0];
      ++result_.evaluations;
      if (static_cast<double>(new_energy - energy_) <= threshold_) {
        current_.assign(candidate.begin(), candidate.end());
        if (machines_ > 1) {
          const auto splits = pool.splits_row(0);
          current_splits_.assign(splits.begin(), splits.end());
        }
        energy_ = new_energy;
        if (energy_ < result_.best_cost) {
          result_.best_cost = energy_;
          result_.best = current_;
          result_.best_splits = current_splits_;
        }
      }
      threshold_ *= params_.decay;
      if (params_.trajectory_stride > 0 &&
          i % params_.trajectory_stride == 0) {
        result_.trajectory.push_back(result_.best_cost);
      }
    }
    if (status_ == StepStatus::kRunning &&
        iteration_ == params_.iterations) {
      status_ = StepStatus::kDone;
    }
    elapsed_ += std::chrono::duration<double>(Clock::now() - t_start).count();
    return status_;
  }

  std::uint64_t Remaining() const override {
    return status_ == StepStatus::kRunning
               ? params_.iterations - iteration_
               : 0;
  }

  Cost BestCost() const override { return result_.best_cost; }

  std::unique_ptr<EngineCheckpoint> Checkpoint() const override {
    return std::make_unique<TaCheckpoint>(rng_, current_, current_splits_,
                                          energy_, threshold_, iteration_,
                                          result_, status_, elapsed_);
  }

  void Restore(const EngineCheckpoint& checkpoint) override {
    const auto* cp = dynamic_cast<const TaCheckpoint*>(&checkpoint);
    if (cp == nullptr) {
      throw std::invalid_argument("TaEngine: foreign checkpoint");
    }
    rng_ = cp->rng;
    current_ = cp->current;
    current_splits_ = cp->splits;
    energy_ = cp->energy;
    threshold_ = cp->threshold;
    iteration_ = cp->iteration;
    result_ = cp->result;
    status_ = cp->status;
    elapsed_ = cp->elapsed;
  }

  EngineOutput Finish() override {
    EngineOutput out;
    out.result = result_;
    out.result.wall_seconds = elapsed_;
    return out;
  }

 private:
  SequenceObjective objective_;
  TaParams params_;
  std::int32_t machines_ = 1;
  rng::Philox4x32 rng_;
  PoolLease lease_;
  std::vector<std::uint32_t> positions_;
  std::vector<JobId> values_;
  Sequence current_;
  std::vector<std::int32_t> current_splits_;
  Cost energy_ = 0;
  double threshold_ = 0.0;
  std::uint64_t iteration_ = 0;
  RunResult result_;
  StepStatus status_ = StepStatus::kRunning;
  double elapsed_ = 0.0;
};

}  // namespace

std::unique_ptr<Engine> MakeTaEngine(const SequenceObjective& objective,
                                     const TaParams& params,
                                     const std::optional<Sequence>& initial) {
  return std::make_unique<TaEngine>(objective, params, initial);
}

RunResult RunThresholdAccepting(const SequenceObjective& objective,
                                const TaParams& params,
                                const std::optional<Sequence>& initial) {
  TaEngine engine(objective, params, initial);
  return RunToCompletion(engine).result;
}

}  // namespace cdd::meta

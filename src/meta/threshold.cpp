#include "meta/threshold.hpp"

#include <algorithm>
#include <chrono>

#include "core/candidate_pool.hpp"
#include "meta/temperature.hpp"
#include "rng/philox.hpp"

namespace cdd::meta {

RunResult RunThresholdAccepting(const SequenceObjective& objective,
                                const TaParams& params,
                                const std::optional<Sequence>& initial) {
  const auto t_start = std::chrono::steady_clock::now();
  const std::size_t n = objective.size();
  rng::Philox4x32 rng(params.seed, /*stream=*/0x7aULL);

  RunResult result;
  Sequence current = initial.has_value() ? *initial : RandomSequence(n, rng);
  Cost energy = objective(current);
  result.evaluations = 1;
  result.best = current;
  result.best_cost = energy;

  double threshold =
      params.initial_threshold > 0.0
          ? params.initial_threshold
          : 0.5 * InitialTemperature(objective, params.temp_samples,
                                     params.seed);

  // Like the SA chain, TA is sequential: one pool row per iteration,
  // perturbed in place and evaluated through the batch entry point.
  PoolLease lease(params.pool, n, /*capacity=*/1);
  CandidatePool& pool = *lease;
  const std::span<JobId> candidate = pool.row(pool.AppendUninitialized());
  std::vector<std::uint32_t> positions(params.pert);
  std::vector<JobId> values(params.pert);

  for (std::uint64_t i = 0; i < params.iterations; ++i) {
    if (i % kStopCheckStride == 0 && params.stop.stop_requested()) {
      result.stopped = true;
      break;
    }
    std::copy(current.begin(), current.end(), candidate.begin());
    PartialFisherYates(candidate, params.pert, rng,
                       std::span<std::uint32_t>(positions),
                       std::span<JobId>(values));
    objective.EvaluateBatch(pool);
    const Cost new_energy = pool.costs()[0];
    ++result.evaluations;
    if (static_cast<double>(new_energy - energy) <= threshold) {
      current.assign(candidate.begin(), candidate.end());
      energy = new_energy;
      if (energy < result.best_cost) {
        result.best_cost = energy;
        result.best = current;
      }
    }
    threshold *= params.decay;
    if (params.trajectory_stride > 0 &&
        i % params.trajectory_stride == 0) {
      result.trajectory.push_back(result.best_cost);
    }
  }

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    t_start)
          .count();
  return result;
}

}  // namespace cdd::meta

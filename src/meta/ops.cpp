#include "meta/ops.hpp"

#include <cassert>

namespace cdd::meta {
namespace {

/// Fills every position of \p child that is not marked used, left to right,
/// with the jobs of \p donor not in \p used, in donor order.
void FillFromDonor(std::span<const JobId> donor, Sequence& child,
                   std::vector<bool>& used_job,
                   std::vector<bool>& used_pos) {
  std::size_t write = 0;
  for (const JobId job : donor) {
    if (used_job[static_cast<std::size_t>(job)]) continue;
    while (write < child.size() && used_pos[write]) ++write;
    assert(write < child.size());
    child[write] = job;
    used_pos[write] = true;
    used_job[static_cast<std::size_t>(job)] = true;
  }
}

}  // namespace

void OnePointCrossover(std::span<const JobId> p1, std::span<const JobId> p2,
                       std::size_t cut, Sequence& child) {
  const std::size_t n = p1.size();
  assert(p2.size() == n && cut <= n);
  child.resize(n);
  std::vector<bool> used_job(n, false);
  std::vector<bool> used_pos(n, false);
  for (std::size_t k = 0; k < cut; ++k) {
    child[k] = p1[k];
    used_pos[k] = true;
    used_job[static_cast<std::size_t>(p1[k])] = true;
  }
  FillFromDonor(p2, child, used_job, used_pos);
}

void TwoPointCrossover(std::span<const JobId> p1, std::span<const JobId> p2,
                       std::size_t a, std::size_t b, Sequence& child) {
  const std::size_t n = p1.size();
  assert(p2.size() == n && a <= b && b <= n);
  child.resize(n);
  std::vector<bool> used_job(n, false);
  std::vector<bool> used_pos(n, false);
  for (std::size_t k = a; k < b; ++k) {
    child[k] = p1[k];
    used_pos[k] = true;
    used_job[static_cast<std::size_t>(p1[k])] = true;
  }
  FillFromDonor(p2, child, used_job, used_pos);
}

}  // namespace cdd::meta

#pragma once
/// \file sequence_evaluator.hpp
/// \brief LP-in-the-loop sequence evaluation — layer (ii) done the "slow"
/// way the paper argues against (Section IV), packaged as an Objective.
///
/// Two reasons to have it besides being the correctness oracle:
///  * it quantifies the paper's complaint: metaheuristics calling a
///    generic LP per candidate are orders of magnitude slower
///    (bench_micro_eval);
///  * it solves the *restricted* controllable case (CDDCP with
///    d < sum P_i), which the O(n) algorithm of Awasthi et al. does not
///    cover — Problem::kCddcp instances are evaluated exactly through the
///    simplex, making the whole metaheuristic stack applicable to the
///    general problem of the paper's introduction.

#include <span>

#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "core/sequence.hpp"
#include "lp/models.hpp"
#include "meta/objective.hpp"

namespace cdd::lp {

/// Evaluates fixed sequences by building and solving the fixed-sequence
/// linear program.  Accepts every problem variant, including restricted
/// controllable instances.  Implements meta::BatchEvaluator so it can back
/// a SequenceObjective: the inherited EvaluateBatch walks the candidate
/// pool row by row (one simplex per candidate — there is nothing to fuse).
class LpSequenceEvaluator : public meta::BatchEvaluator {
 public:
  explicit LpSequenceEvaluator(const Instance& instance);

  /// Optimal cost of \p seq (throws std::runtime_error if the simplex
  /// fails to reach optimality — cannot happen for well-formed instances).
  Cost Evaluate(std::span<const JobId> seq) const override;

  /// Materializes the LP's optimal schedule (completion times rounded to
  /// the nearest integer; the instances are integral so the LP optimum
  /// is integral up to solver tolerance).
  Schedule BuildSchedule(std::span<const JobId> seq) const;

  std::size_t size() const { return instance_.size(); }
  bool controllable() const { return controllable_; }

 private:
  Instance instance_;
  bool controllable_;
};

/// Objective adapter so the metaheuristics (serial SA/DPSO/TA/ES and the
/// host ensemble) can run on top of the LP evaluator.
meta::Objective MakeLpObjective(const Instance& instance);

}  // namespace cdd::lp

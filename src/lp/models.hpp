#pragma once
/// \file models.hpp
/// \brief Fixed-sequence LP models for CDD and UCDDCP.
///
/// These are the linear programs of Section III with the binary precedence
/// variables delta_ij fixed by a given job sequence — exactly the problem
/// the specialized O(n) algorithms of Section IV solve.  Unlike the O(n)
/// algorithms, the models do NOT assume "no machine idle time": completion
/// times are free variables constrained only by
///     C_k >= C_{k-1} + P_k - X_k   and   C_1 >= P_1 - X_1,
/// so agreement between the simplex optimum and the O(n) evaluators also
/// re-verifies the classic no-idle property the algorithms rely on.
///
/// Variable layout (positions k = 0..n-1 in sequence order):
///   C_k  completion times        [0,     n)
///   E_k  earliness               [n,    2n)
///   T_k  tardiness               [2n,   3n)
///   X_k  compression (UCDDCP)    [3n,   4n)

#include <span>

#include "core/instance.hpp"
#include "core/sequence.hpp"
#include "lp/simplex.hpp"

namespace cdd::lp {

/// Builds the fixed-sequence CDD LP (variables C, E, T).
LpProblem BuildCddModel(const Instance& instance,
                        std::span<const JobId> seq);

/// Builds the fixed-sequence UCDDCP LP (variables C, E, T, X).
LpProblem BuildUcddcpModel(const Instance& instance,
                           std::span<const JobId> seq);

/// Solves the appropriate model for the instance's problem and returns the
/// optimal objective rounded to the nearest integer (the instances are
/// integral, so the LP optimum is integral up to solver tolerance).
/// Throws std::runtime_error if the solve does not reach optimality.
Cost SolveSequenceLp(const Instance& instance, std::span<const JobId> seq);

}  // namespace cdd::lp

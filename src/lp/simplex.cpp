#include "lp/simplex.hpp"

#include <cmath>
#include <stdexcept>

namespace cdd::lp {

void LpProblem::Add(std::vector<double> coeffs, Relation rel, double rhs) {
  if (coeffs.size() != num_vars) {
    throw std::invalid_argument(
        "LpProblem::Add: coefficient count does not match num_vars");
  }
  constraints.push_back({std::move(coeffs), rel, rhs});
}

namespace {

/// Dense tableau with an explicit basis.  Columns: structural variables,
/// then slack/surplus, then artificials, then the RHS.
class Tableau {
 public:
  Tableau(const LpProblem& problem, const SimplexOptions& options)
      : options_(options), m_(problem.constraints.size()) {
    n_struct_ = problem.num_vars;
    // Count slack/surplus and artificial columns.
    std::size_t n_slack = 0;
    std::size_t n_art = 0;
    for (const Constraint& c : problem.constraints) {
      const bool flip = c.rhs < 0.0;
      const Relation rel = flip ? Flip(c.rel) : c.rel;
      if (rel != Relation::kEq) ++n_slack;
      // kGe needs surplus + artificial, kEq needs artificial, kLe only slack.
      if (rel != Relation::kLe) ++n_art;
    }
    n_slack_ = n_slack;
    n_art_ = n_art;
    cols_ = n_struct_ + n_slack_ + n_art_ + 1;  // +1 for RHS
    a_.assign(m_ * cols_, 0.0);
    basis_.assign(m_, 0);

    std::size_t slack_at = n_struct_;
    std::size_t art_at = n_struct_ + n_slack_;
    for (std::size_t r = 0; r < m_; ++r) {
      const Constraint& c = problem.constraints[r];
      const bool flip = c.rhs < 0.0;
      const double sign = flip ? -1.0 : 1.0;
      const Relation rel = flip ? Flip(c.rel) : c.rel;
      for (std::size_t j = 0; j < n_struct_; ++j) {
        At(r, j) = sign * c.coeffs[j];
      }
      At(r, cols_ - 1) = sign * c.rhs;
      switch (rel) {
        case Relation::kLe:
          At(r, slack_at) = 1.0;
          basis_[r] = slack_at++;
          break;
        case Relation::kGe:
          At(r, slack_at) = -1.0;
          ++slack_at;
          At(r, art_at) = 1.0;
          basis_[r] = art_at++;
          break;
        case Relation::kEq:
          At(r, art_at) = 1.0;
          basis_[r] = art_at++;
          break;
      }
    }
  }

  /// Runs both phases; returns the final status.
  LpStatus Solve(const std::vector<double>& objective) {
    if (n_art_ > 0) {
      // Phase 1: minimize the sum of artificials.
      std::vector<double> phase1(cols_ - 1, 0.0);
      for (std::size_t j = n_struct_ + n_slack_; j < cols_ - 1; ++j) {
        phase1[j] = 1.0;
      }
      const LpStatus s1 = RunPhase(phase1, /*restrict_arts=*/false);
      if (s1 != LpStatus::kOptimal) return s1;
      if (Objective(phase1) > options_.eps) return LpStatus::kInfeasible;
      DriveOutArtificials();
    }
    // Phase 2: original objective, artificial columns barred.
    std::vector<double> phase2(cols_ - 1, 0.0);
    for (std::size_t j = 0; j < n_struct_; ++j) phase2[j] = objective[j];
    return RunPhase(phase2, /*restrict_arts=*/true);
  }

  double Objective(const std::vector<double>& objective) const {
    double v = 0.0;
    for (std::size_t r = 0; r < m_; ++r) {
      v += objective[basis_[r]] * AtC(r, cols_ - 1);
    }
    return v;
  }

  std::vector<double> Primal() const {
    std::vector<double> x(n_struct_, 0.0);
    for (std::size_t r = 0; r < m_; ++r) {
      if (basis_[r] < n_struct_) x[basis_[r]] = AtC(r, cols_ - 1);
    }
    return x;
  }

 private:
  static Relation Flip(Relation rel) {
    switch (rel) {
      case Relation::kLe:
        return Relation::kGe;
      case Relation::kGe:
        return Relation::kLe;
      case Relation::kEq:
        return Relation::kEq;
    }
    return rel;
  }

  double& At(std::size_t r, std::size_t c) { return a_[r * cols_ + c]; }
  double AtC(std::size_t r, std::size_t c) const { return a_[r * cols_ + c]; }

  /// Reduced cost of column j under \p obj.
  double ReducedCost(const std::vector<double>& obj, std::size_t j) const {
    double z = 0.0;
    for (std::size_t r = 0; r < m_; ++r) {
      z += obj[basis_[r]] * AtC(r, j);
    }
    return obj[j] - z;
  }

  void Pivot(std::size_t pr, std::size_t pc) {
    const double pivot = At(pr, pc);
    for (std::size_t c = 0; c < cols_; ++c) At(pr, c) /= pivot;
    for (std::size_t r = 0; r < m_; ++r) {
      if (r == pr) continue;
      const double factor = At(r, pc);
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c < cols_; ++c) {
        At(r, c) -= factor * At(pr, c);
      }
    }
    basis_[pr] = pc;
  }

  LpStatus RunPhase(const std::vector<double>& obj, bool restrict_arts) {
    const std::size_t limit =
        restrict_arts ? n_struct_ + n_slack_ : cols_ - 1;
    for (std::uint64_t it = 0; it < options_.max_iterations; ++it) {
      // Bland's rule: entering = smallest index with negative reduced cost.
      std::size_t enter = cols_;
      for (std::size_t j = 0; j < limit; ++j) {
        if (ReducedCost(obj, j) < -options_.eps) {
          enter = j;
          break;
        }
      }
      if (enter == cols_) return LpStatus::kOptimal;

      // Leaving: min ratio, ties by smallest basis index (Bland).
      std::size_t leave = m_;
      double best_ratio = 0.0;
      for (std::size_t r = 0; r < m_; ++r) {
        const double col = AtC(r, enter);
        if (col <= options_.eps) continue;
        const double ratio = AtC(r, cols_ - 1) / col;
        if (leave == m_ || ratio < best_ratio - options_.eps ||
            (std::abs(ratio - best_ratio) <= options_.eps &&
             basis_[r] < basis_[leave])) {
          leave = r;
          best_ratio = ratio;
        }
      }
      if (leave == m_) return LpStatus::kUnbounded;
      Pivot(leave, enter);
    }
    return LpStatus::kIterationLimit;
  }

  /// After phase 1, pivots remaining basic artificials out (or leaves them
  /// at zero in redundant rows).
  void DriveOutArtificials() {
    const std::size_t art_begin = n_struct_ + n_slack_;
    for (std::size_t r = 0; r < m_; ++r) {
      if (basis_[r] < art_begin) continue;
      for (std::size_t j = 0; j < art_begin; ++j) {
        if (std::abs(AtC(r, j)) > options_.eps) {
          Pivot(r, j);
          break;
        }
      }
      // Redundant row: the artificial stays basic at value zero; harmless
      // because phase 2 bars artificial columns from entering.
    }
  }

  SimplexOptions options_;
  std::size_t m_;
  std::size_t n_struct_ = 0;
  std::size_t n_slack_ = 0;
  std::size_t n_art_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> a_;
  std::vector<std::size_t> basis_;
};

}  // namespace

LpSolution SolveSimplex(const LpProblem& problem,
                        const SimplexOptions& options) {
  if (problem.objective.size() != problem.num_vars) {
    throw std::invalid_argument("SolveSimplex: objective size mismatch");
  }
  LpSolution solution;
  if (problem.constraints.empty()) {
    // Unconstrained nonnegative minimization: x = 0 unless a negative cost
    // makes it unbounded.
    for (const double c : problem.objective) {
      if (c < 0.0) {
        solution.status = LpStatus::kUnbounded;
        return solution;
      }
    }
    solution.status = LpStatus::kOptimal;
    solution.objective = 0.0;
    solution.x.assign(problem.num_vars, 0.0);
    return solution;
  }

  Tableau tableau(problem, options);
  solution.status = tableau.Solve(problem.objective);
  if (solution.status == LpStatus::kOptimal) {
    solution.x = tableau.Primal();
    solution.objective = 0.0;
    for (std::size_t j = 0; j < problem.num_vars; ++j) {
      solution.objective += problem.objective[j] * solution.x[j];
    }
  }
  return solution;
}

}  // namespace cdd::lp

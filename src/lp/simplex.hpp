#pragma once
/// \file simplex.hpp
/// \brief Dense two-phase primal simplex solver.
///
/// Section IV of the paper motivates the specialized O(n) algorithms by the
/// cost of "LP solvers ... run iteratively on some general heuristic
/// algorithm".  This module is that general LP solver: the fixed-sequence
/// CDD/UCDDCP linear programs (lp/models.hpp) are solved with it in the
/// tests (as an independent correctness oracle for the O(n) algorithms) and
/// in bench_micro_eval (to regenerate the latency comparison).
///
/// Implementation notes: dense tableau, two-phase method with artificial
/// variables, Bland's anti-cycling rule, configurable iteration cap.
/// Intended problem sizes are a few hundred variables — plenty for n <= 50
/// job sequences, tiny by LP standards, and deliberately simple.

#include <cstdint>
#include <vector>

namespace cdd::lp {

/// Relation of one constraint row.
enum class Relation { kLe, kGe, kEq };

/// One constraint: coeffs . x  (rel)  rhs.
struct Constraint {
  std::vector<double> coeffs;
  Relation rel = Relation::kLe;
  double rhs = 0.0;
};

/// minimize c . x  subject to constraints, x >= 0.
struct LpProblem {
  std::size_t num_vars = 0;
  std::vector<double> objective;       ///< c, size num_vars
  std::vector<Constraint> constraints;

  /// Appends a constraint (validates coefficient count).
  void Add(std::vector<double> coeffs, Relation rel, double rhs);
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

struct LpSolution {
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> x;  ///< primal values, size num_vars
};

/// Solver options.
struct SimplexOptions {
  std::uint64_t max_iterations = 100000;
  double eps = 1e-9;  ///< pivot / feasibility tolerance
};

/// Solves \p problem with the two-phase primal simplex.
LpSolution SolveSimplex(const LpProblem& problem,
                        const SimplexOptions& options = {});

}  // namespace cdd::lp

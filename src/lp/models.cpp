#include "lp/models.hpp"

#include <cmath>
#include <stdexcept>

namespace cdd::lp {
namespace {

/// Common builder: \p controllable adds the X block.
LpProblem BuildModel(const Instance& instance, std::span<const JobId> seq,
                     bool controllable) {
  ValidateSequence(seq, instance.size());
  const std::size_t n = instance.size();
  const double d = static_cast<double>(instance.due_date());

  LpProblem lp;
  lp.num_vars = controllable ? 4 * n : 3 * n;
  lp.objective.assign(lp.num_vars, 0.0);

  const auto c_var = [&](std::size_t k) { return k; };
  const auto e_var = [&](std::size_t k) { return n + k; };
  const auto t_var = [&](std::size_t k) { return 2 * n + k; };
  const auto x_var = [&](std::size_t k) { return 3 * n + k; };

  for (std::size_t k = 0; k < n; ++k) {
    const Job& job = instance.job(static_cast<std::size_t>(seq[k]));
    lp.objective[e_var(k)] = static_cast<double>(job.early);
    lp.objective[t_var(k)] = static_cast<double>(job.tardy);
    if (controllable) {
      lp.objective[x_var(k)] = static_cast<double>(job.compress);
    }

    std::vector<double> row(lp.num_vars, 0.0);

    // E_k >= d - C_k    <=>   E_k + C_k >= d
    row.assign(lp.num_vars, 0.0);
    row[e_var(k)] = 1.0;
    row[c_var(k)] = 1.0;
    lp.Add(row, Relation::kGe, d);

    // T_k >= C_k - d    <=>   T_k - C_k >= -d
    row.assign(lp.num_vars, 0.0);
    row[t_var(k)] = 1.0;
    row[c_var(k)] = -1.0;
    lp.Add(row, Relation::kGe, -d);

    // Sequencing (idle time allowed):
    //   C_k - C_{k-1} + X_k >= P_k   (and C_0 + X_0 >= P_0)
    row.assign(lp.num_vars, 0.0);
    row[c_var(k)] = 1.0;
    if (k > 0) row[c_var(k - 1)] = -1.0;
    if (controllable) row[x_var(k)] = 1.0;
    lp.Add(row, Relation::kGe, static_cast<double>(job.proc));

    // X_k <= P_k - M_k
    if (controllable) {
      row.assign(lp.num_vars, 0.0);
      row[x_var(k)] = 1.0;
      lp.Add(row, Relation::kLe,
             static_cast<double>(job.proc - job.min_proc));
    }
  }
  return lp;
}

}  // namespace

LpProblem BuildCddModel(const Instance& instance,
                        std::span<const JobId> seq) {
  return BuildModel(instance, seq, /*controllable=*/false);
}

LpProblem BuildUcddcpModel(const Instance& instance,
                           std::span<const JobId> seq) {
  return BuildModel(instance, seq, /*controllable=*/true);
}

Cost SolveSequenceLp(const Instance& instance, std::span<const JobId> seq) {
  const LpProblem lp = instance.problem() == Problem::kUcddcp
                           ? BuildUcddcpModel(instance, seq)
                           : BuildCddModel(instance, seq);
  const LpSolution sol = SolveSimplex(lp);
  if (sol.status != LpStatus::kOptimal) {
    throw std::runtime_error("SolveSequenceLp: simplex did not reach "
                             "optimality (status " +
                             std::to_string(static_cast<int>(sol.status)) +
                             ")");
  }
  return static_cast<Cost>(std::llround(sol.objective));
}

}  // namespace cdd::lp

#include "lp/sequence_evaluator.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

namespace cdd::lp {

LpSequenceEvaluator::LpSequenceEvaluator(const Instance& instance)
    : instance_(instance),
      // kUcddcp and kCddcp carry compressibility; plain kCdd does not.
      controllable_(instance.problem() != Problem::kCdd) {
  instance_.Validate();
}

Cost LpSequenceEvaluator::Evaluate(std::span<const JobId> seq) const {
  const LpProblem lp = controllable_ ? BuildUcddcpModel(instance_, seq)
                                     : BuildCddModel(instance_, seq);
  const LpSolution sol = SolveSimplex(lp);
  if (sol.status != LpStatus::kOptimal) {
    throw std::runtime_error(
        "LpSequenceEvaluator: simplex did not reach optimality");
  }
  return static_cast<Cost>(std::llround(sol.objective));
}

Schedule LpSequenceEvaluator::BuildSchedule(
    std::span<const JobId> seq) const {
  const std::size_t n = instance_.size();
  const LpProblem lp = controllable_ ? BuildUcddcpModel(instance_, seq)
                                     : BuildCddModel(instance_, seq);
  const LpSolution sol = SolveSimplex(lp);
  if (sol.status != LpStatus::kOptimal) {
    throw std::runtime_error(
        "LpSequenceEvaluator: simplex did not reach optimality");
  }
  Schedule schedule;
  schedule.order.assign(seq.begin(), seq.end());
  schedule.completion.resize(n);
  schedule.compression.assign(n, 0);
  for (std::size_t k = 0; k < n; ++k) {
    schedule.completion[k] = static_cast<Time>(std::llround(sol.x[k]));
    if (controllable_) {
      schedule.compression[k] =
          static_cast<Time>(std::llround(sol.x[3 * n + k]));
    }
  }
  return schedule;
}

meta::Objective MakeLpObjective(const Instance& instance) {
  return meta::Objective(instance.size(),
                         std::make_shared<LpSequenceEvaluator>(instance));
}

}  // namespace cdd::lp

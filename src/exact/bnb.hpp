#pragma once
/// \file bnb.hpp
/// \brief Non-recursive parallel branch-and-bound over job sequences.
///
/// The scalable exact tier: where core/exact stops at n <= 10 (brute
/// force) or n <= 24 unrestricted-only (subset enumeration), this solver
/// proves optimality for both CDD and UCDDCP — restricted CDD included —
/// and degrades gracefully into "best incumbent + certified lower bound"
/// when a deadline or node budget cuts it short.
///
/// Search space.  By the V-shape dominance property (core/vshape) there is
/// an optimal schedule whose early side is ordered by nonincreasing
/// P_i/alpha_i and whose tardy side by nondecreasing P_i/beta_i, so the
/// solver branches over *side assignments*, not permutations: each depth
/// assigns one job to the early or tardy side (for UCDDCP additionally
/// uncompressed or fully compressed — Property 2 makes compression
/// all-or-nothing — giving four classes whose ratio keys use the chosen
/// effective processing time).  A complete assignment determines the one
/// V-shape-consistent sequence, which is evaluated in closed form.
///
/// Restricted instances (d < sum P_i) additionally admit one *straddling*
/// job (starts before d, completes after it) in schedules that begin at
/// t = 0; leaves therefore also score every tardy-assigned job promoted to
/// the straddler slot, and the lower bound carries a one-job slack term so
/// it stays valid for those candidates.
///
/// Bounding.  A node's bound is the exact pairwise cost of the committed
/// jobs (early cross terms, tardy self + cross terms, compression
/// penalties) plus, per free job, the cheaper of its all-early / all-tardy
/// relaxation marginals against the committed sets — free-free
/// interactions are relaxed to zero.  Every quantity is integral, so
/// bounds are exact, and pruning is *strict* (bound > incumbent): ties are
/// never cut, which makes the returned optimum — cost and sequence — a
/// pure function of the instance, independent of worker count and timing.
///
/// Execution.  No recursion: each worker runs an explicit fixed-size layer
/// stack over flat SoA side arrays (the offload-friendly shape).  The tree
/// is split at a shallow frontier into subtree roots distributed over the
/// process-wide sim::exec::HostThreadPool, sharing one atomic incumbent
/// for pruning; per-root results are reduced in root order afterwards, so
/// the reduction is deterministic even though exploration is not.
/// Cooperative cancellation via core/stop_token: a deadline never fails
/// the solve, it returns the incumbent plus the certified lower bound of
/// everything left unexplored.

#include <cstdint>
#include <memory>
#include <optional>

#include "core/exact.hpp"
#include "core/instance.hpp"
#include "core/sequence.hpp"
#include "core/stop_token.hpp"
#include "core/types.hpp"
#include "meta/engine.hpp"

namespace cdd::exact {

/// Hard guard on instance size (worst case is 2^n nodes); larger instances
/// throw ExactLimitError.  Overridable per call through BnbParams.
inline constexpr std::size_t kBnbDefaultMaxJobs = 32;

/// Tuning knobs of one branch-and-bound run.  None of them changes a
/// *completed* run's sequence, cost or proof — only how fast it gets there
/// (truncation knobs decide whether it completes at all).
struct BnbParams {
  /// Subtree-root workers; 0 resolves sim::exec::ActiveExecWorkers()
  /// (the CDD_EXEC_WORKERS cap).  The result is worker-count invariant.
  unsigned workers = 0;
  /// Depth at which the tree is split into parallel subtree roots;
  /// 0 resolves CDD_BNB_FRONTIER_DEPTH, else picks the shallowest depth
  /// giving ~8 roots per worker.
  std::uint32_t frontier_depth = 0;
  /// Iterations of the serial-SA polish applied to the V-shape seed that
  /// becomes the initial incumbent; unset resolves CDD_BNB_WARM_START
  /// (default 256), 0 disables the polish.  Uses a private RNG stream —
  /// no other engine's schedule is perturbed.
  std::optional<std::uint64_t> warm_start;
  /// Node budget; 0 = unlimited.  Exhausting it truncates like a deadline.
  std::uint64_t max_nodes = 0;
  /// Seed of the warm-start SA chain.
  std::uint64_t seed = 1;
  /// Cooperative cancellation (deadline / explicit stop).
  StopToken stop{};
  /// Size guard; exceeding it throws ExactLimitError.
  std::size_t max_jobs = kBnbDefaultMaxJobs;
};

/// Outcome of a branch-and-bound run.  When `proven_optimal` the cost is
/// the exact optimum and `lower_bound == cost`; when truncated, `sequence`
/// is the best incumbent found (never worse than the V-shape/SA seed) and
/// `lower_bound` is a certified bound on the true optimum:
/// lower_bound <= optimum <= cost always holds.
struct BnbResult {
  Sequence sequence;
  Cost cost = kInfiniteCost;
  Cost lower_bound = 0;
  /// Nodes pushed onto the layer stacks, summed over workers.  Telemetry:
  /// pruning races against the shared incumbent, so unlike the result
  /// fields this count is only reproducible for single-worker runs.
  std::uint64_t nodes_expanded = 0;
  bool proven_optimal = false;
};

/// Exact CDD solve (restricted or unrestricted).
/// Throws ExactLimitError when n > params.max_jobs.
BnbResult BranchAndBoundCdd(const Instance& instance,
                            const BnbParams& params = {});

/// Exact UCDDCP solve.  Throws ExactLimitError when n > params.max_jobs
/// and std::invalid_argument when the instance is restricted (the UCDDCP
/// objective is only defined for d >= sum P_i).
BnbResult BranchAndBoundUcddcp(const Instance& instance,
                               const BnbParams& params = {});

/// Dispatches on instance.problem() (kCdd / kUcddcp; kCddcp has no O(n)
/// evaluator and is rejected with std::invalid_argument).
BnbResult BranchAndBound(const Instance& instance,
                         const BnbParams& params = {});

/// Creates a resumable branch-and-bound engine (dispatching on
/// instance.problem() like BranchAndBound).  Construction runs the whole
/// setup phase — guards, V-shape + warm-start seed, frontier split — and
/// Step units are search-tree nodes.  With params.workers == 1 a Step
/// slice can pause inside a subtree root and a checkpoint captures the
/// live DFS continuation; with several workers the shared-incumbent
/// parallel sweep is not pausable, so the first Step runs it to
/// completion.  Finish() maps the exact-tier record onto EngineOutput
/// (best_cost = incumbent, evaluations = nodes expanded, stopped = not
/// proven optimal); callers that need the lower bound and proof flag
/// should keep using BranchAndBound.
std::unique_ptr<meta::Engine> MakeBnbEngine(const Instance& instance,
                                            const BnbParams& params = {});

}  // namespace cdd::exact

#include "exact/bnb.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/vshape.hpp"
#include "cudasim/exec/backend.hpp"
#include "cudasim/exec/host_pool.hpp"
#include "meta/engine.hpp"
#include "meta/objective.hpp"
#include "meta/sa.hpp"
#include "trace/tracer.hpp"

namespace cdd::exact {
namespace {

// ---------------------------------------------------------------------------
// Environment knobs (resolve-once; neither changes a completed run's result).

std::uint32_t EnvFrontierDepth() {
  static const std::uint32_t value = [] {
    const char* env = std::getenv("CDD_BNB_FRONTIER_DEPTH");
    if (env == nullptr) return 0u;
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    return (end == env || *end != '\0') ? 0u
                                        : static_cast<std::uint32_t>(parsed);
  }();
  return value;
}

std::uint64_t EnvWarmStartIterations() {
  static const std::uint64_t value = [] {
    const char* env = std::getenv("CDD_BNB_WARM_START");
    if (env == nullptr) return std::uint64_t{256};
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    return (end == env || *end != '\0') ? std::uint64_t{256}
                                        : static_cast<std::uint64_t>(parsed);
  }();
  return value;
}

// ---------------------------------------------------------------------------
// Job classes.  A "mode" commits a job to one side of the V with one
// effective processing time: CDD jobs have two modes (early / tardy),
// compressible UCDDCP jobs four (Property 2 makes compression
// all-or-nothing, so the only effective times are P_i and M_i).

struct Mode {
  Time p = 0;      ///< effective processing time under this class
  Cost pen = 0;    ///< alpha_i on the early side, beta_i on the tardy side
  Cost extra = 0;  ///< gamma_i * (P_i - M_i) when compressed
  bool early = false;
};

struct JobModes {
  Mode m[4];
  int count = 0;
};

/// Immutable per-run search data.
struct Ctx {
  std::int32_t n = 0;
  Time d = 0;
  bool restricted = false;  ///< CDD with d < sum P_i (straddler possible)
  std::vector<JobModes> modes;  ///< by job id
  std::vector<JobId> order;     ///< branching order (decreasing P_i)
};

Ctx BuildCtx(const Instance& instance, bool controllable) {
  Ctx ctx;
  ctx.n = static_cast<std::int32_t>(instance.size());
  ctx.d = instance.due_date();
  ctx.restricted = !controllable && !instance.is_unrestricted();
  ctx.modes.resize(instance.size());
  for (std::int32_t j = 0; j < ctx.n; ++j) {
    const Job& job = instance.job(static_cast<std::size_t>(j));
    JobModes& jm = ctx.modes[static_cast<std::size_t>(j)];
    jm.m[jm.count++] = {job.proc, job.early, 0, true};
    jm.m[jm.count++] = {job.proc, job.tardy, 0, false};
    if (controllable && job.min_proc < job.proc) {
      const Cost extra = job.compress * (job.proc - job.min_proc);
      jm.m[jm.count++] = {job.min_proc, job.early, extra, true};
      jm.m[jm.count++] = {job.min_proc, job.tardy, extra, false};
    }
  }
  // Branch the long jobs first: they dominate every pairwise term, so the
  // bound separates early.  Ties by id keep the tree deterministic.
  ctx.order.resize(instance.size());
  for (std::int32_t j = 0; j < ctx.n; ++j) {
    ctx.order[static_cast<std::size_t>(j)] = j;
  }
  std::sort(ctx.order.begin(), ctx.order.end(), [&](JobId a, JobId b) {
    const Time pa = instance.job(static_cast<std::size_t>(a)).proc;
    const Time pb = instance.job(static_cast<std::size_t>(b)).proc;
    return pa != pb ? pa > pb : a < b;
  });
  return ctx;
}

// Ratio-order predicates in exact integer cross-products (ties by id).
// Early side: nonincreasing p/pen; tardy side: nondecreasing p/pen.
bool EarlyBefore(Time pa, Cost na, JobId a, Time pb, Cost nb, JobId b) {
  const Cost lhs = pa * nb;
  const Cost rhs = pb * na;
  return lhs != rhs ? lhs > rhs : a < b;
}

bool TardyBefore(Time pa, Cost na, JobId a, Time pb, Cost nb, JobId b) {
  const Cost lhs = pa * nb;
  const Cost rhs = pb * na;
  return lhs != rhs ? lhs < rhs : a < b;
}

// ---------------------------------------------------------------------------
// Per-worker search state: two ratio-sorted SoA side arrays plus the
// explicit layer stack — no recursion, bounded memory, offload-friendly.

struct Side {
  std::vector<JobId> id;
  std::vector<Time> p;
  std::vector<Cost> pen;
  std::vector<Cost> inv;  ///< per-entry self+pair mass (straddler slack)
  std::int32_t count = 0;

  explicit Side(std::size_t n) : id(n), p(n), pen(n), inv(n) {}

  void Insert(std::int32_t pos, JobId j, Time pj, Cost penj, Cost invj) {
    for (std::int32_t i = count; i > pos; --i) {
      id[static_cast<std::size_t>(i)] = id[static_cast<std::size_t>(i - 1)];
      p[static_cast<std::size_t>(i)] = p[static_cast<std::size_t>(i - 1)];
      pen[static_cast<std::size_t>(i)] = pen[static_cast<std::size_t>(i - 1)];
      inv[static_cast<std::size_t>(i)] = inv[static_cast<std::size_t>(i - 1)];
    }
    id[static_cast<std::size_t>(pos)] = j;
    p[static_cast<std::size_t>(pos)] = pj;
    pen[static_cast<std::size_t>(pos)] = penj;
    inv[static_cast<std::size_t>(pos)] = invj;
    ++count;
  }

  void Remove(std::int32_t pos) {
    --count;
    for (std::int32_t i = pos; i < count; ++i) {
      id[static_cast<std::size_t>(i)] = id[static_cast<std::size_t>(i + 1)];
      p[static_cast<std::size_t>(i)] = p[static_cast<std::size_t>(i + 1)];
      pen[static_cast<std::size_t>(i)] = pen[static_cast<std::size_t>(i + 1)];
      inv[static_cast<std::size_t>(i)] = inv[static_cast<std::size_t>(i + 1)];
    }
  }
};

/// One stack frame of the non-recursive depth-first search.
struct Layer {
  std::uint8_t next_mode = 0;   ///< next class to try at this depth
  std::uint8_t side_early = 0;  ///< side of the currently open child
  std::int32_t pos = 0;         ///< its insertion position
  Cost delta = 0;               ///< its committed-cost increment
};

struct Dfs {
  const Ctx& ctx;
  Side early;
  Side tardy;
  Time early_sum = 0;   ///< sum of effective early processing times
  Cost assigned = 0;    ///< exact pairwise cost of the committed jobs
  std::vector<Layer> layers;
  Sequence scratch;     ///< leaf sequence buffer (reused, no allocation)

  explicit Dfs(const Ctx& c)
      : ctx(c),
        early(static_cast<std::size_t>(c.n)),
        tardy(static_cast<std::size_t>(c.n)),
        layers(static_cast<std::size_t>(c.n) + 1) {
    scratch.reserve(static_cast<std::size_t>(c.n));
  }

  // Pair/self cost of committing job j under mode m, plus its ratio-order
  // insertion position.  Early pair contributes alpha_first * p_second
  // (the first of the pair is farther from d), tardy pair
  // beta_second * p_first plus the job's own beta * p.
  Cost DeltaEarly(const Mode& m, JobId j, std::int32_t* pos_out) const {
    std::int32_t pos = 0;
    while (pos < early.count &&
           !EarlyBefore(m.p, m.pen, j, early.p[static_cast<std::size_t>(pos)],
                        early.pen[static_cast<std::size_t>(pos)],
                        early.id[static_cast<std::size_t>(pos)])) {
      ++pos;
    }
    Cost delta = m.extra;
    for (std::int32_t i = 0; i < pos; ++i) {
      delta += early.pen[static_cast<std::size_t>(i)] * m.p;
    }
    for (std::int32_t i = pos; i < early.count; ++i) {
      delta += m.pen * early.p[static_cast<std::size_t>(i)];
    }
    *pos_out = pos;
    return delta;
  }

  Cost DeltaTardy(const Mode& m, JobId j, std::int32_t* pos_out) const {
    std::int32_t pos = 0;
    while (pos < tardy.count &&
           !TardyBefore(m.p, m.pen, j, tardy.p[static_cast<std::size_t>(pos)],
                        tardy.pen[static_cast<std::size_t>(pos)],
                        tardy.id[static_cast<std::size_t>(pos)])) {
      ++pos;
    }
    Cost delta = m.extra + m.pen * m.p;
    for (std::int32_t i = 0; i < pos; ++i) {
      delta += m.pen * tardy.p[static_cast<std::size_t>(i)];
    }
    for (std::int32_t i = pos; i < tardy.count; ++i) {
      delta += tardy.pen[static_cast<std::size_t>(i)] * m.p;
    }
    *pos_out = pos;
    return delta;
  }

  void Push(const Mode& m, JobId j, std::int32_t pos, Cost delta) {
    if (m.early) {
      early.Insert(pos, j, m.p, m.pen, 0);
      early_sum += m.p;
    } else {
      for (std::int32_t i = 0; i < pos; ++i) {
        tardy.inv[static_cast<std::size_t>(i)] +=
            m.pen * tardy.p[static_cast<std::size_t>(i)];
      }
      for (std::int32_t i = pos; i < tardy.count; ++i) {
        tardy.inv[static_cast<std::size_t>(i)] +=
            tardy.pen[static_cast<std::size_t>(i)] * m.p;
      }
      tardy.Insert(pos, j, m.p, m.pen, delta - m.extra);
    }
    assigned += delta;
  }

  void Pop(const Layer& layer) {
    const std::int32_t pos = layer.pos;
    if (layer.side_early != 0) {
      early_sum -= early.p[static_cast<std::size_t>(pos)];
      early.Remove(pos);
    } else {
      const Time pj = tardy.p[static_cast<std::size_t>(pos)];
      const Cost penj = tardy.pen[static_cast<std::size_t>(pos)];
      tardy.Remove(pos);
      for (std::int32_t i = 0; i < pos; ++i) {
        tardy.inv[static_cast<std::size_t>(i)] -=
            penj * tardy.p[static_cast<std::size_t>(i)];
      }
      for (std::int32_t i = pos; i < tardy.count; ++i) {
        tardy.inv[static_cast<std::size_t>(i)] -=
            tardy.pen[static_cast<std::size_t>(i)] * pj;
      }
    }
    assigned -= layer.delta;
  }

  // Lower bound on every canonical completion of the node whose committed
  // jobs are order[0..depth).  Committed cost is exact; each free job adds
  // the cheaper of its all-early / all-tardy marginals against the
  // committed sides (free-free interactions relaxed to zero); restricted
  // instances subtract a one-job slack so the bound stays valid when a
  // tardy-side job straddles the due date in a start-at-0 schedule.
  Cost Bound(std::int32_t depth) const {
    Cost b = assigned;
    Cost slack = 0;
    for (std::int32_t k = depth; k < ctx.n; ++k) {
      const JobId j = ctx.order[static_cast<std::size_t>(k)];
      const JobModes& jm = ctx.modes[static_cast<std::size_t>(j)];
      Cost best = kInfiniteCost;
      for (int mi = 0; mi < jm.count; ++mi) {
        const Mode& m = jm.m[mi];
        std::int32_t pos = 0;
        if (m.early) {
          if (ctx.restricted && early_sum + m.p > ctx.d) continue;
          best = std::min(best, DeltaEarly(m, j, &pos));
        } else {
          best = std::min(best, DeltaTardy(m, j, &pos));
        }
      }
      // The tardy mode is always admissible, so `best` is finite.
      b += best;
      if (ctx.restricted) slack = std::max(slack, best);
    }
    if (ctx.restricted) {
      for (std::int32_t i = 0; i < tardy.count; ++i) {
        slack = std::max(slack, tardy.inv[static_cast<std::size_t>(i)]);
      }
      b -= slack;
    }
    return b < 0 ? Cost{0} : b;
  }

  // Canonical value of a complete assignment.  The pinned form (last early
  // job completes exactly at d) costs exactly `assigned`; restricted
  // instances additionally score every start-at-0 schedule with a
  // tardy-side job promoted into the straddler slot.  Builds the winning
  // sequence into `scratch`.
  Cost Leaf() {
    Cost best = assigned;
    std::int32_t straddler = -1;
    if (ctx.restricted && early_sum < ctx.d) {
      Cost early_cost = 0;  // early block anchored at t = 0
      Time c = 0;
      for (std::int32_t i = 0; i < early.count; ++i) {
        c += early.p[static_cast<std::size_t>(i)];
        early_cost += early.pen[static_cast<std::size_t>(i)] * (ctx.d - c);
      }
      for (std::int32_t s = 0; s < tardy.count; ++s) {
        const Time ps = tardy.p[static_cast<std::size_t>(s)];
        if (early_sum + ps <= ctx.d) continue;  // would not straddle
        Cost cost = early_cost;
        Time cc = early_sum + ps;
        cost += tardy.pen[static_cast<std::size_t>(s)] * (cc - ctx.d);
        for (std::int32_t i = 0; i < tardy.count; ++i) {
          if (i == s) continue;
          cc += tardy.p[static_cast<std::size_t>(i)];
          cost += tardy.pen[static_cast<std::size_t>(i)] * (cc - ctx.d);
        }
        if (cost < best) {
          best = cost;
          straddler = s;
        }
      }
    }
    scratch.clear();
    for (std::int32_t i = 0; i < early.count; ++i) {
      scratch.push_back(early.id[static_cast<std::size_t>(i)]);
    }
    if (straddler >= 0) {
      scratch.push_back(tardy.id[static_cast<std::size_t>(straddler)]);
    }
    for (std::int32_t i = 0; i < tardy.count; ++i) {
      if (i != straddler) {
        scratch.push_back(tardy.id[static_cast<std::size_t>(i)]);
      }
    }
    return best;
  }
};

// ---------------------------------------------------------------------------
// Shared run control: cooperative stop + node budget, polled in strides.

struct RunControl {
  StopToken stop;
  std::uint64_t max_nodes = 0;
  std::atomic<std::uint64_t> nodes{0};
  std::atomic<bool> halted{false};

  /// Flushes a worker's local node count and reports whether to stop.
  bool ShouldStop(std::uint64_t flush) {
    if (flush > 0) nodes.fetch_add(flush, std::memory_order_relaxed);
    if (halted.load(std::memory_order_relaxed)) return true;
    if (stop.stop_requested() ||
        (max_nodes != 0 &&
         nodes.load(std::memory_order_relaxed) >= max_nodes)) {
      halted.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }
};

struct RootOutcome {
  Cost best = kInfiniteCost;
  Sequence seq;
  std::uint64_t nodes = 0;
  bool completed = false;
};

// Applies a frontier prefix (assumed feasible: the generator only emits
// surviving nodes).  Layers [0, prefix.size()) record the pushes so the
// stack shape matches a serial descent.
void ApplyPrefix(const Ctx& ctx, Dfs& dfs,
                 std::span<const std::uint8_t> prefix) {
  for (std::size_t k = 0; k < prefix.size(); ++k) {
    const JobId j = ctx.order[k];
    const Mode& m = ctx.modes[static_cast<std::size_t>(j)].m[prefix[k]];
    std::int32_t pos = 0;
    const Cost delta = m.early ? dfs.DeltaEarly(m, j, &pos)
                               : dfs.DeltaTardy(m, j, &pos);
    dfs.Push(m, j, pos, delta);
    Layer& layer = dfs.layers[k];
    layer.side_early = m.early ? 1 : 0;
    layer.pos = pos;
    layer.delta = delta;
  }
}

// How one ResumeDfs call ended.
enum class DfsResume {
  kCompleted,  ///< subtree exhausted; out.completed set
  kHalted,     ///< stop token / node budget fired (outcome incomplete)
  kPaused,     ///< per-call node allowance exhausted; state is resumable
};

// Non-recursive DFS below a frontier root.  Prunes strictly against the
// shared incumbent (ties survive) and records the subtree's best canonical
// leaf in DFS-first order.  The loop pauses — leaving (dfs, depth,
// unflushed) a complete continuation — when the caller's node allowance
// runs out; every push consumes one allowance unit, exactly mirroring the
// ++out.nodes accounting, so a run split across any allowance slices
// visits the identical node sequence as an uninterrupted run.
DfsResume ResumeDfs(const Ctx& ctx, Dfs& dfs, std::int32_t base,
                    std::atomic<Cost>& incumbent, RunControl& control,
                    RootOutcome& out, std::int32_t& depth,
                    std::uint64_t& unflushed, std::uint64_t& allowance) {
  for (;;) {
    if (allowance == 0) return DfsResume::kPaused;
    if (depth == ctx.n) {
      const Cost v = dfs.Leaf();
      if (v < out.best) {
        out.best = v;
        out.seq = dfs.scratch;
        Cost cur = incumbent.load(std::memory_order_relaxed);
        while (v < cur && !incumbent.compare_exchange_weak(
                              cur, v, std::memory_order_relaxed)) {
        }
      }
      if (depth == base) break;
      --depth;
      dfs.Pop(dfs.layers[static_cast<std::size_t>(depth)]);
      continue;
    }
    Layer& layer = dfs.layers[static_cast<std::size_t>(depth)];
    const JobId j = ctx.order[static_cast<std::size_t>(depth)];
    const JobModes& jm = ctx.modes[static_cast<std::size_t>(j)];
    bool descended = false;
    while (layer.next_mode < jm.count) {
      const Mode& m = jm.m[layer.next_mode++];
      if (m.early && ctx.restricted && dfs.early_sum + m.p > ctx.d) {
        continue;  // no canonical schedule fits this many early units
      }
      std::int32_t pos = 0;
      const Cost delta = m.early ? dfs.DeltaEarly(m, j, &pos)
                                 : dfs.DeltaTardy(m, j, &pos);
      dfs.Push(m, j, pos, delta);
      layer.side_early = m.early ? 1 : 0;
      layer.pos = pos;
      layer.delta = delta;
      ++out.nodes;
      --allowance;
      if ((++unflushed & 63u) == 0u && control.ShouldStop(64)) {
        unflushed = 0;
        dfs.Pop(layer);
        control.ShouldStop(0);
        return DfsResume::kHalted;
      }
      if (dfs.Bound(depth + 1) >
          incumbent.load(std::memory_order_relaxed)) {
        dfs.Pop(layer);
        continue;
      }
      ++depth;
      dfs.layers[static_cast<std::size_t>(depth)].next_mode = 0;
      descended = true;
      break;
    }
    if (descended) continue;
    if (depth == base) break;
    --depth;
    dfs.Pop(dfs.layers[static_cast<std::size_t>(depth)]);
  }
  control.ShouldStop(unflushed & 63u);
  out.completed = true;
  return DfsResume::kCompleted;
}

// One-shot DFS below a frontier root (the multi-worker path): unlimited
// allowance, so the only exits are completion and a halt.
bool RunDfs(const Ctx& ctx, Dfs& dfs, std::int32_t base,
            std::atomic<Cost>& incumbent, RunControl& control,
            RootOutcome& out) {
  std::int32_t depth = base;
  dfs.layers[static_cast<std::size_t>(depth)].next_mode = 0;
  std::uint64_t unflushed = 0;
  std::uint64_t allowance = ~std::uint64_t{0};
  return ResumeDfs(ctx, dfs, base, incumbent, control, out, depth, unflushed,
                   allowance) == DfsResume::kCompleted;
}

// ---------------------------------------------------------------------------
// Frontier: breadth-first expansion of the first few layers into subtree
// roots.  Serial and deterministic; prunes strictly against the seed
// incumbent, so a completed run's result is independent of the split.

struct Root {
  std::vector<std::uint8_t> prefix;
  Cost lb = 0;
};

bool GenerateFrontier(const Ctx& ctx, Cost seed_cost, std::size_t target,
                      std::uint32_t forced_depth, const StopToken& stop,
                      std::vector<Root>& roots, std::uint64_t& gen_nodes) {
  roots.assign(1, Root{});
  std::uint32_t depth = 0;
  Dfs dfs(ctx);
  while (depth < static_cast<std::uint32_t>(ctx.n)) {
    const bool deep_enough = forced_depth != 0
                                 ? depth >= forced_depth
                                 : roots.size() >= target;
    if (deep_enough) break;
    if (stop.stop_requested()) return false;  // roots = last complete level
    std::vector<Root> next;
    next.reserve(roots.size() * 2);
    for (const Root& r : roots) {
      ApplyPrefix(ctx, dfs, r.prefix);
      const JobId j = ctx.order[depth];
      const JobModes& jm = ctx.modes[static_cast<std::size_t>(j)];
      for (std::uint8_t mi = 0; mi < jm.count; ++mi) {
        const Mode& m = jm.m[mi];
        if (m.early && ctx.restricted && dfs.early_sum + m.p > ctx.d) {
          continue;
        }
        std::int32_t pos = 0;
        const Cost delta = m.early ? dfs.DeltaEarly(m, j, &pos)
                                   : dfs.DeltaTardy(m, j, &pos);
        dfs.Push(m, j, pos, delta);
        ++gen_nodes;
        const Cost lb =
            dfs.Bound(static_cast<std::int32_t>(depth) + 1);
        Layer layer;
        layer.side_early = m.early ? 1 : 0;
        layer.pos = pos;
        layer.delta = delta;
        if (lb <= seed_cost) {
          Root child;
          child.prefix = r.prefix;
          child.prefix.push_back(mi);
          child.lb = lb;
          next.push_back(std::move(child));
        }
        dfs.Pop(layer);
      }
      // Unwind the prefix (pop in reverse push order).
      for (std::size_t k = r.prefix.size(); k > 0; --k) {
        dfs.Pop(dfs.layers[k - 1]);
      }
    }
    roots = std::move(next);
    ++depth;
    if (roots.empty()) break;  // everything pruned: the seed is optimal
  }
  return true;
}

// ---------------------------------------------------------------------------
// Resumable engine.  Construction runs the whole setup phase (guards,
// normalization, V-shape + warm-start seed, frontier split); Step processes
// subtree roots in frontier order with nodes as the budget unit.  With one
// worker the root loop is fully resumable — a Step slice can pause inside a
// root and a checkpoint captures the live DFS continuation.  With several
// workers the shared-incumbent ParallelFor cannot pause mid-flight, so the
// first Step runs it to completion (preemption then lands after the run;
// pass workers = 1 when slice-granular pausing matters more than speed).

using Clock = std::chrono::steady_clock;

struct BnbCheckpoint final : meta::EngineCheckpoint {
  BnbCheckpoint(const Side& early_in, const Side& tardy_in)
      : early(early_in), tardy(tardy_in) {}

  std::size_t root = 0;
  bool in_root = false;
  std::int32_t depth = 0;
  std::uint64_t unflushed = 0;
  Side early;
  Side tardy;
  Time early_sum = 0;
  Cost assigned = 0;
  std::vector<Layer> layers;
  std::vector<RootOutcome> outcomes;
  Cost incumbent = kInfiniteCost;
  std::uint64_t flushed_nodes = 0;
  bool halted = false;
  std::uint64_t dfs_consumed = 0;
  meta::StepStatus status = meta::StepStatus::kRunning;
  double elapsed = 0.0;
};

class BnbEngine final : public meta::Engine {
 public:
  BnbEngine(const Instance& raw, const BnbParams& params, bool controllable)
      : params_(params) {
    const auto t_start = Clock::now();
    const std::size_t n = raw.size();
    if (n > params.max_jobs) {
      throw ExactLimitError(
          controllable ? "BranchAndBoundUcddcp" : "BranchAndBoundCdd", n,
          params.max_jobs);
    }
    if (controllable && !raw.is_unrestricted()) {
      throw std::invalid_argument(
          "BranchAndBoundUcddcp: instance is restricted (d < sum P_i); the "
          "UCDDCP objective requires the unrestricted case");
    }
    const Instance instance =
        controllable ? (raw.problem() == Problem::kUcddcp
                            ? raw
                            : Instance(Problem::kUcddcp, raw.due_date(),
                                       raw.jobs()))
                     : raw.as_cdd();

    ctx_ = BuildCtx(instance, controllable);

    // Incumbent seed: the V-shape constructive heuristic, optionally
    // polished by a short serial-SA chain on a private RNG stream.  Strict
    // pruning means the seed only ever accelerates the search — the
    // returned optimum does not depend on it.
    const meta::SequenceObjective objective =
        meta::SequenceObjective::ForInstance(instance);
    seed_seq_ = VShapeSeed(instance);
    seed_cost_ = objective.Evaluate(seed_seq_);
    const std::uint64_t warm =
        params.warm_start ? *params.warm_start : EnvWarmStartIterations();
    if (warm > 0 && !params.stop.stop_requested()) {
      meta::SaParams sa;
      sa.iterations = warm;
      sa.seed = params.seed;
      sa.initial_temperature = 1.0;  // polish, not a cold-start search
      sa.stop = params.stop;
      const meta::RunResult polished = meta::RunSerialSa(objective, sa,
                                                         seed_seq_);
      if (polished.best_cost < seed_cost_) {
        seed_cost_ = polished.best_cost;
        seed_seq_ = polished.best;
      }
    }

    workers_ =
        params.workers != 0 ? params.workers : sim::exec::ActiveExecWorkers();
    if (workers_ == 0) workers_ = 1;
    const std::uint32_t frontier_depth = params.frontier_depth != 0
                                             ? params.frontier_depth
                                             : EnvFrontierDepth();

    const std::size_t target =
        std::max<std::size_t>(32, static_cast<std::size_t>(workers_) * 8);
    gen_complete_ = GenerateFrontier(ctx_, seed_cost_, target, frontier_depth,
                                     params.stop, roots_, gen_nodes_);

    control_.stop = params.stop;
    control_.max_nodes = params.max_nodes;
    control_.nodes.store(gen_nodes_, std::memory_order_relaxed);
    incumbent_.store(seed_cost_, std::memory_order_relaxed);
    outcomes_.resize(roots_.size());
    dfs_ = std::make_unique<Dfs>(ctx_);

    if (!gen_complete_) {
      status_ = meta::StepStatus::kStopped;
    } else if (roots_.empty()) {
      status_ = meta::StepStatus::kDone;  // everything pruned: seed optimal
    }
    elapsed_ += std::chrono::duration<double>(Clock::now() - t_start).count();
  }

  meta::StepStatus Step(std::uint64_t units) override {
    if (status_ != meta::StepStatus::kRunning || units == 0) return status_;
    const auto t_start = Clock::now();
    CDD_TRACE_SPAN("exact.bnb");
    if (workers_ > 1) {
      StepParallel();
    } else {
      StepSerial(units);
    }
    elapsed_ += std::chrono::duration<double>(Clock::now() - t_start).count();
    return status_;
  }

  std::uint64_t Remaining() const override {
    if (status_ != meta::StepStatus::kRunning) return 0;
    if (params_.max_nodes == 0) return meta::kStepAll;
    const std::uint64_t consumed = gen_nodes_ + dfs_consumed_;
    return params_.max_nodes > consumed ? params_.max_nodes - consumed : 0;
  }

  Cost BestCost() const override {
    return incumbent_.load(std::memory_order_relaxed);
  }

  std::unique_ptr<meta::EngineCheckpoint> Checkpoint() const override {
    auto cp = std::make_unique<BnbCheckpoint>(dfs_->early, dfs_->tardy);
    cp->root = root_;
    cp->in_root = in_root_;
    cp->depth = depth_;
    cp->unflushed = unflushed_;
    cp->early_sum = dfs_->early_sum;
    cp->assigned = dfs_->assigned;
    cp->layers = dfs_->layers;
    cp->outcomes = outcomes_;
    cp->incumbent = incumbent_.load(std::memory_order_relaxed);
    cp->flushed_nodes = control_.nodes.load(std::memory_order_relaxed);
    cp->halted = control_.halted.load(std::memory_order_relaxed);
    cp->dfs_consumed = dfs_consumed_;
    cp->status = status_;
    cp->elapsed = elapsed_;
    return cp;
  }

  void Restore(const meta::EngineCheckpoint& checkpoint) override {
    const auto* cp = dynamic_cast<const BnbCheckpoint*>(&checkpoint);
    if (cp == nullptr) {
      throw std::invalid_argument("BnbEngine: foreign checkpoint");
    }
    root_ = cp->root;
    in_root_ = cp->in_root;
    depth_ = cp->depth;
    unflushed_ = cp->unflushed;
    dfs_->early = cp->early;
    dfs_->tardy = cp->tardy;
    dfs_->early_sum = cp->early_sum;
    dfs_->assigned = cp->assigned;
    dfs_->layers = cp->layers;
    outcomes_ = cp->outcomes;
    incumbent_.store(cp->incumbent, std::memory_order_relaxed);
    control_.nodes.store(cp->flushed_nodes, std::memory_order_relaxed);
    control_.halted.store(cp->halted, std::memory_order_relaxed);
    dfs_consumed_ = cp->dfs_consumed;
    status_ = cp->status;
    elapsed_ = cp->elapsed;
  }

  meta::EngineOutput Finish() override {
    const BnbResult bnb = FinishBnb();
    meta::EngineOutput out;
    out.result.best = bnb.sequence;
    out.result.best_cost = bnb.cost;
    out.result.evaluations = bnb.nodes_expanded;
    out.result.wall_seconds = elapsed_;
    out.result.stopped = !bnb.proven_optimal;
    return out;
  }

  /// The full exact-tier record (lower bound + proof flag), which the
  /// generic EngineOutput cannot carry.
  BnbResult FinishBnb() {
    // Deterministic reduction: roots in frontier order, strict improvement —
    // together with strict pruning this reproduces the serial DFS-first
    // optimum for every completed run, at any worker count.
    Cost best_leaf = kInfiniteCost;
    const Sequence* best_seq = nullptr;
    std::uint64_t dfs_nodes = 0;
    bool all_done = gen_complete_;
    Cost min_open = kInfiniteCost;
    for (std::size_t r = 0; r < outcomes_.size(); ++r) {
      dfs_nodes += outcomes_[r].nodes;
      if (outcomes_[r].best < best_leaf) {
        best_leaf = outcomes_[r].best;
        best_seq = &outcomes_[r].seq;
      }
      if (!outcomes_[r].completed) {
        all_done = false;
        min_open = std::min(min_open, roots_[r].lb);
      }
    }
    if (!gen_complete_) {
      for (const Root& r : roots_) min_open = std::min(min_open, r.lb);
    }

    BnbResult result;
    if (best_leaf <= seed_cost_ && best_seq != nullptr) {
      result.cost = best_leaf;
      result.sequence = *best_seq;
    } else {
      result.cost = seed_cost_;
      result.sequence = seed_seq_;
    }
    result.nodes_expanded = gen_nodes_ + dfs_nodes;
    if (all_done || min_open >= result.cost) {
      result.proven_optimal = true;
      result.lower_bound = result.cost;
    } else {
      result.lower_bound =
          std::max<Cost>(0, std::min(result.cost, min_open));
    }

    CDD_TRACE_COUNTER("bnb.nodes",
                      static_cast<Cost>(result.nodes_expanded));
    CDD_TRACE_COUNTER("bnb.lower_bound", result.lower_bound);
    CDD_TRACE_COUNTER("bnb.gap", result.cost - result.lower_bound);
    return result;
  }

 private:
  // The multi-worker path: one shared-incumbent ParallelFor, not pausable.
  void StepParallel() {
    sim::exec::HostThreadPool::Instance().ParallelFor(
        roots_.size(), workers_, [&](std::size_t r) {
          RootOutcome& out = outcomes_[r];
          if (control_.ShouldStop(0)) return;  // left incomplete
          if (roots_[r].lb > incumbent_.load(std::memory_order_relaxed)) {
            out.completed = true;  // nothing at or below the optimum here
            return;
          }
          Dfs dfs(ctx_);
          ApplyPrefix(ctx_, dfs, roots_[r].prefix);
          RunDfs(ctx_, dfs,
                 static_cast<std::int32_t>(roots_[r].prefix.size()),
                 incumbent_, control_, out);
        });
    bool all_completed = true;
    for (const RootOutcome& out : outcomes_) {
      dfs_consumed_ += out.nodes;
      all_completed = all_completed && out.completed;
    }
    status_ = all_completed ? meta::StepStatus::kDone
                            : meta::StepStatus::kStopped;
  }

  // The single-worker path: roots in frontier order on the calling thread,
  // pausing mid-root when the slice's node allowance runs out.  Identical
  // node visits, flush strides and incumbent updates to a one-worker
  // ParallelFor, so completed results (and node counts) match it exactly.
  void StepSerial(std::uint64_t units) {
    std::uint64_t allowance = units;
    while (root_ < roots_.size()) {
      if (!in_root_) {
        if (control_.ShouldStop(0)) {
          // Remaining roots stay incomplete, exactly like workers that
          // observe the halt flag before starting their root.
          status_ = meta::StepStatus::kStopped;
          return;
        }
        if (roots_[root_].lb >
            incumbent_.load(std::memory_order_relaxed)) {
          outcomes_[root_].completed = true;
          ++root_;
          continue;
        }
        // Fresh per-root search state: stale entries beyond the counts are
        // never read, so resetting the aggregates is equivalent to the
        // fresh Dfs a worker would construct.
        dfs_->early.count = 0;
        dfs_->tardy.count = 0;
        dfs_->early_sum = 0;
        dfs_->assigned = 0;
        ApplyPrefix(ctx_, *dfs_, roots_[root_].prefix);
        depth_ = static_cast<std::int32_t>(roots_[root_].prefix.size());
        dfs_->layers[static_cast<std::size_t>(depth_)].next_mode = 0;
        unflushed_ = 0;
        in_root_ = true;
      }
      const std::uint64_t before = allowance;
      const DfsResume res = ResumeDfs(
          ctx_, *dfs_, static_cast<std::int32_t>(roots_[root_].prefix.size()),
          incumbent_, control_, outcomes_[root_], depth_, unflushed_,
          allowance);
      dfs_consumed_ += before - allowance;
      switch (res) {
        case DfsResume::kPaused:
          return;  // slice exhausted mid-root; state stays live
        case DfsResume::kHalted:
          status_ = meta::StepStatus::kStopped;
          in_root_ = false;
          return;
        case DfsResume::kCompleted:
          in_root_ = false;
          ++root_;
          break;
      }
    }
    status_ = meta::StepStatus::kDone;
  }

  BnbParams params_;
  Ctx ctx_;
  Sequence seed_seq_;
  Cost seed_cost_ = kInfiniteCost;
  unsigned workers_ = 1;
  std::vector<Root> roots_;
  std::uint64_t gen_nodes_ = 0;
  bool gen_complete_ = true;
  RunControl control_;
  std::atomic<Cost> incumbent_{kInfiniteCost};
  std::vector<RootOutcome> outcomes_;
  std::unique_ptr<Dfs> dfs_;
  std::size_t root_ = 0;
  bool in_root_ = false;
  std::int32_t depth_ = 0;
  std::uint64_t unflushed_ = 0;
  std::uint64_t dfs_consumed_ = 0;
  meta::StepStatus status_ = meta::StepStatus::kRunning;
  double elapsed_ = 0.0;
};

BnbResult Run(const Instance& raw, const BnbParams& params,
              bool controllable) {
  BnbEngine engine(raw, params, controllable);
  engine.Step(meta::kStepAll);
  return engine.FinishBnb();
}

}  // namespace

BnbResult BranchAndBoundCdd(const Instance& instance,
                            const BnbParams& params) {
  return Run(instance, params, /*controllable=*/false);
}

BnbResult BranchAndBoundUcddcp(const Instance& instance,
                               const BnbParams& params) {
  return Run(instance, params, /*controllable=*/true);
}

BnbResult BranchAndBound(const Instance& instance, const BnbParams& params) {
  switch (instance.problem()) {
    case Problem::kCdd:
      return BranchAndBoundCdd(instance, params);
    case Problem::kUcddcp:
      return BranchAndBoundUcddcp(instance, params);
    case Problem::kCddcp:
      break;
  }
  throw std::invalid_argument(
      "BranchAndBound: the restricted controllable problem (kCddcp) has no "
      "O(n) evaluator to bound against");
}

std::unique_ptr<meta::Engine> MakeBnbEngine(const Instance& instance,
                                            const BnbParams& params) {
  switch (instance.problem()) {
    case Problem::kCdd:
      return std::make_unique<BnbEngine>(instance, params,
                                         /*controllable=*/false);
    case Problem::kUcddcp:
      return std::make_unique<BnbEngine>(instance, params,
                                         /*controllable=*/true);
    case Problem::kCddcp:
      break;
  }
  throw std::invalid_argument(
      "MakeBnbEngine: the restricted controllable problem (kCddcp) has no "
      "O(n) evaluator to bound against");
}

}  // namespace cdd::exact

#include "exact/bnb.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/vshape.hpp"
#include "cudasim/exec/backend.hpp"
#include "cudasim/exec/host_pool.hpp"
#include "meta/objective.hpp"
#include "meta/sa.hpp"
#include "trace/tracer.hpp"

namespace cdd::exact {
namespace {

// ---------------------------------------------------------------------------
// Environment knobs (resolve-once; neither changes a completed run's result).

std::uint32_t EnvFrontierDepth() {
  static const std::uint32_t value = [] {
    const char* env = std::getenv("CDD_BNB_FRONTIER_DEPTH");
    if (env == nullptr) return 0u;
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    return (end == env || *end != '\0') ? 0u
                                        : static_cast<std::uint32_t>(parsed);
  }();
  return value;
}

std::uint64_t EnvWarmStartIterations() {
  static const std::uint64_t value = [] {
    const char* env = std::getenv("CDD_BNB_WARM_START");
    if (env == nullptr) return std::uint64_t{256};
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    return (end == env || *end != '\0') ? std::uint64_t{256}
                                        : static_cast<std::uint64_t>(parsed);
  }();
  return value;
}

// ---------------------------------------------------------------------------
// Job classes.  A "mode" commits a job to one side of the V with one
// effective processing time: CDD jobs have two modes (early / tardy),
// compressible UCDDCP jobs four (Property 2 makes compression
// all-or-nothing, so the only effective times are P_i and M_i).

struct Mode {
  Time p = 0;      ///< effective processing time under this class
  Cost pen = 0;    ///< alpha_i on the early side, beta_i on the tardy side
  Cost extra = 0;  ///< gamma_i * (P_i - M_i) when compressed
  bool early = false;
};

struct JobModes {
  Mode m[4];
  int count = 0;
};

/// Immutable per-run search data.
struct Ctx {
  std::int32_t n = 0;
  Time d = 0;
  bool restricted = false;  ///< CDD with d < sum P_i (straddler possible)
  std::vector<JobModes> modes;  ///< by job id
  std::vector<JobId> order;     ///< branching order (decreasing P_i)
};

Ctx BuildCtx(const Instance& instance, bool controllable) {
  Ctx ctx;
  ctx.n = static_cast<std::int32_t>(instance.size());
  ctx.d = instance.due_date();
  ctx.restricted = !controllable && !instance.is_unrestricted();
  ctx.modes.resize(instance.size());
  for (std::int32_t j = 0; j < ctx.n; ++j) {
    const Job& job = instance.job(static_cast<std::size_t>(j));
    JobModes& jm = ctx.modes[static_cast<std::size_t>(j)];
    jm.m[jm.count++] = {job.proc, job.early, 0, true};
    jm.m[jm.count++] = {job.proc, job.tardy, 0, false};
    if (controllable && job.min_proc < job.proc) {
      const Cost extra = job.compress * (job.proc - job.min_proc);
      jm.m[jm.count++] = {job.min_proc, job.early, extra, true};
      jm.m[jm.count++] = {job.min_proc, job.tardy, extra, false};
    }
  }
  // Branch the long jobs first: they dominate every pairwise term, so the
  // bound separates early.  Ties by id keep the tree deterministic.
  ctx.order.resize(instance.size());
  for (std::int32_t j = 0; j < ctx.n; ++j) {
    ctx.order[static_cast<std::size_t>(j)] = j;
  }
  std::sort(ctx.order.begin(), ctx.order.end(), [&](JobId a, JobId b) {
    const Time pa = instance.job(static_cast<std::size_t>(a)).proc;
    const Time pb = instance.job(static_cast<std::size_t>(b)).proc;
    return pa != pb ? pa > pb : a < b;
  });
  return ctx;
}

// Ratio-order predicates in exact integer cross-products (ties by id).
// Early side: nonincreasing p/pen; tardy side: nondecreasing p/pen.
bool EarlyBefore(Time pa, Cost na, JobId a, Time pb, Cost nb, JobId b) {
  const Cost lhs = pa * nb;
  const Cost rhs = pb * na;
  return lhs != rhs ? lhs > rhs : a < b;
}

bool TardyBefore(Time pa, Cost na, JobId a, Time pb, Cost nb, JobId b) {
  const Cost lhs = pa * nb;
  const Cost rhs = pb * na;
  return lhs != rhs ? lhs < rhs : a < b;
}

// ---------------------------------------------------------------------------
// Per-worker search state: two ratio-sorted SoA side arrays plus the
// explicit layer stack — no recursion, bounded memory, offload-friendly.

struct Side {
  std::vector<JobId> id;
  std::vector<Time> p;
  std::vector<Cost> pen;
  std::vector<Cost> inv;  ///< per-entry self+pair mass (straddler slack)
  std::int32_t count = 0;

  explicit Side(std::size_t n) : id(n), p(n), pen(n), inv(n) {}

  void Insert(std::int32_t pos, JobId j, Time pj, Cost penj, Cost invj) {
    for (std::int32_t i = count; i > pos; --i) {
      id[static_cast<std::size_t>(i)] = id[static_cast<std::size_t>(i - 1)];
      p[static_cast<std::size_t>(i)] = p[static_cast<std::size_t>(i - 1)];
      pen[static_cast<std::size_t>(i)] = pen[static_cast<std::size_t>(i - 1)];
      inv[static_cast<std::size_t>(i)] = inv[static_cast<std::size_t>(i - 1)];
    }
    id[static_cast<std::size_t>(pos)] = j;
    p[static_cast<std::size_t>(pos)] = pj;
    pen[static_cast<std::size_t>(pos)] = penj;
    inv[static_cast<std::size_t>(pos)] = invj;
    ++count;
  }

  void Remove(std::int32_t pos) {
    --count;
    for (std::int32_t i = pos; i < count; ++i) {
      id[static_cast<std::size_t>(i)] = id[static_cast<std::size_t>(i + 1)];
      p[static_cast<std::size_t>(i)] = p[static_cast<std::size_t>(i + 1)];
      pen[static_cast<std::size_t>(i)] = pen[static_cast<std::size_t>(i + 1)];
      inv[static_cast<std::size_t>(i)] = inv[static_cast<std::size_t>(i + 1)];
    }
  }
};

/// One stack frame of the non-recursive depth-first search.
struct Layer {
  std::uint8_t next_mode = 0;   ///< next class to try at this depth
  std::uint8_t side_early = 0;  ///< side of the currently open child
  std::int32_t pos = 0;         ///< its insertion position
  Cost delta = 0;               ///< its committed-cost increment
};

struct Dfs {
  const Ctx& ctx;
  Side early;
  Side tardy;
  Time early_sum = 0;   ///< sum of effective early processing times
  Cost assigned = 0;    ///< exact pairwise cost of the committed jobs
  std::vector<Layer> layers;
  Sequence scratch;     ///< leaf sequence buffer (reused, no allocation)

  explicit Dfs(const Ctx& c)
      : ctx(c),
        early(static_cast<std::size_t>(c.n)),
        tardy(static_cast<std::size_t>(c.n)),
        layers(static_cast<std::size_t>(c.n) + 1) {
    scratch.reserve(static_cast<std::size_t>(c.n));
  }

  // Pair/self cost of committing job j under mode m, plus its ratio-order
  // insertion position.  Early pair contributes alpha_first * p_second
  // (the first of the pair is farther from d), tardy pair
  // beta_second * p_first plus the job's own beta * p.
  Cost DeltaEarly(const Mode& m, JobId j, std::int32_t* pos_out) const {
    std::int32_t pos = 0;
    while (pos < early.count &&
           !EarlyBefore(m.p, m.pen, j, early.p[static_cast<std::size_t>(pos)],
                        early.pen[static_cast<std::size_t>(pos)],
                        early.id[static_cast<std::size_t>(pos)])) {
      ++pos;
    }
    Cost delta = m.extra;
    for (std::int32_t i = 0; i < pos; ++i) {
      delta += early.pen[static_cast<std::size_t>(i)] * m.p;
    }
    for (std::int32_t i = pos; i < early.count; ++i) {
      delta += m.pen * early.p[static_cast<std::size_t>(i)];
    }
    *pos_out = pos;
    return delta;
  }

  Cost DeltaTardy(const Mode& m, JobId j, std::int32_t* pos_out) const {
    std::int32_t pos = 0;
    while (pos < tardy.count &&
           !TardyBefore(m.p, m.pen, j, tardy.p[static_cast<std::size_t>(pos)],
                        tardy.pen[static_cast<std::size_t>(pos)],
                        tardy.id[static_cast<std::size_t>(pos)])) {
      ++pos;
    }
    Cost delta = m.extra + m.pen * m.p;
    for (std::int32_t i = 0; i < pos; ++i) {
      delta += m.pen * tardy.p[static_cast<std::size_t>(i)];
    }
    for (std::int32_t i = pos; i < tardy.count; ++i) {
      delta += tardy.pen[static_cast<std::size_t>(i)] * m.p;
    }
    *pos_out = pos;
    return delta;
  }

  void Push(const Mode& m, JobId j, std::int32_t pos, Cost delta) {
    if (m.early) {
      early.Insert(pos, j, m.p, m.pen, 0);
      early_sum += m.p;
    } else {
      for (std::int32_t i = 0; i < pos; ++i) {
        tardy.inv[static_cast<std::size_t>(i)] +=
            m.pen * tardy.p[static_cast<std::size_t>(i)];
      }
      for (std::int32_t i = pos; i < tardy.count; ++i) {
        tardy.inv[static_cast<std::size_t>(i)] +=
            tardy.pen[static_cast<std::size_t>(i)] * m.p;
      }
      tardy.Insert(pos, j, m.p, m.pen, delta - m.extra);
    }
    assigned += delta;
  }

  void Pop(const Layer& layer) {
    const std::int32_t pos = layer.pos;
    if (layer.side_early != 0) {
      early_sum -= early.p[static_cast<std::size_t>(pos)];
      early.Remove(pos);
    } else {
      const Time pj = tardy.p[static_cast<std::size_t>(pos)];
      const Cost penj = tardy.pen[static_cast<std::size_t>(pos)];
      tardy.Remove(pos);
      for (std::int32_t i = 0; i < pos; ++i) {
        tardy.inv[static_cast<std::size_t>(i)] -=
            penj * tardy.p[static_cast<std::size_t>(i)];
      }
      for (std::int32_t i = pos; i < tardy.count; ++i) {
        tardy.inv[static_cast<std::size_t>(i)] -=
            tardy.pen[static_cast<std::size_t>(i)] * pj;
      }
    }
    assigned -= layer.delta;
  }

  // Lower bound on every canonical completion of the node whose committed
  // jobs are order[0..depth).  Committed cost is exact; each free job adds
  // the cheaper of its all-early / all-tardy marginals against the
  // committed sides (free-free interactions relaxed to zero); restricted
  // instances subtract a one-job slack so the bound stays valid when a
  // tardy-side job straddles the due date in a start-at-0 schedule.
  Cost Bound(std::int32_t depth) const {
    Cost b = assigned;
    Cost slack = 0;
    for (std::int32_t k = depth; k < ctx.n; ++k) {
      const JobId j = ctx.order[static_cast<std::size_t>(k)];
      const JobModes& jm = ctx.modes[static_cast<std::size_t>(j)];
      Cost best = kInfiniteCost;
      for (int mi = 0; mi < jm.count; ++mi) {
        const Mode& m = jm.m[mi];
        std::int32_t pos = 0;
        if (m.early) {
          if (ctx.restricted && early_sum + m.p > ctx.d) continue;
          best = std::min(best, DeltaEarly(m, j, &pos));
        } else {
          best = std::min(best, DeltaTardy(m, j, &pos));
        }
      }
      // The tardy mode is always admissible, so `best` is finite.
      b += best;
      if (ctx.restricted) slack = std::max(slack, best);
    }
    if (ctx.restricted) {
      for (std::int32_t i = 0; i < tardy.count; ++i) {
        slack = std::max(slack, tardy.inv[static_cast<std::size_t>(i)]);
      }
      b -= slack;
    }
    return b < 0 ? Cost{0} : b;
  }

  // Canonical value of a complete assignment.  The pinned form (last early
  // job completes exactly at d) costs exactly `assigned`; restricted
  // instances additionally score every start-at-0 schedule with a
  // tardy-side job promoted into the straddler slot.  Builds the winning
  // sequence into `scratch`.
  Cost Leaf() {
    Cost best = assigned;
    std::int32_t straddler = -1;
    if (ctx.restricted && early_sum < ctx.d) {
      Cost early_cost = 0;  // early block anchored at t = 0
      Time c = 0;
      for (std::int32_t i = 0; i < early.count; ++i) {
        c += early.p[static_cast<std::size_t>(i)];
        early_cost += early.pen[static_cast<std::size_t>(i)] * (ctx.d - c);
      }
      for (std::int32_t s = 0; s < tardy.count; ++s) {
        const Time ps = tardy.p[static_cast<std::size_t>(s)];
        if (early_sum + ps <= ctx.d) continue;  // would not straddle
        Cost cost = early_cost;
        Time cc = early_sum + ps;
        cost += tardy.pen[static_cast<std::size_t>(s)] * (cc - ctx.d);
        for (std::int32_t i = 0; i < tardy.count; ++i) {
          if (i == s) continue;
          cc += tardy.p[static_cast<std::size_t>(i)];
          cost += tardy.pen[static_cast<std::size_t>(i)] * (cc - ctx.d);
        }
        if (cost < best) {
          best = cost;
          straddler = s;
        }
      }
    }
    scratch.clear();
    for (std::int32_t i = 0; i < early.count; ++i) {
      scratch.push_back(early.id[static_cast<std::size_t>(i)]);
    }
    if (straddler >= 0) {
      scratch.push_back(tardy.id[static_cast<std::size_t>(straddler)]);
    }
    for (std::int32_t i = 0; i < tardy.count; ++i) {
      if (i != straddler) {
        scratch.push_back(tardy.id[static_cast<std::size_t>(i)]);
      }
    }
    return best;
  }
};

// ---------------------------------------------------------------------------
// Shared run control: cooperative stop + node budget, polled in strides.

struct RunControl {
  StopToken stop;
  std::uint64_t max_nodes = 0;
  std::atomic<std::uint64_t> nodes{0};
  std::atomic<bool> halted{false};

  /// Flushes a worker's local node count and reports whether to stop.
  bool ShouldStop(std::uint64_t flush) {
    if (flush > 0) nodes.fetch_add(flush, std::memory_order_relaxed);
    if (halted.load(std::memory_order_relaxed)) return true;
    if (stop.stop_requested() ||
        (max_nodes != 0 &&
         nodes.load(std::memory_order_relaxed) >= max_nodes)) {
      halted.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }
};

struct RootOutcome {
  Cost best = kInfiniteCost;
  Sequence seq;
  std::uint64_t nodes = 0;
  bool completed = false;
};

// Applies a frontier prefix (assumed feasible: the generator only emits
// surviving nodes).  Layers [0, prefix.size()) record the pushes so the
// stack shape matches a serial descent.
void ApplyPrefix(const Ctx& ctx, Dfs& dfs,
                 std::span<const std::uint8_t> prefix) {
  for (std::size_t k = 0; k < prefix.size(); ++k) {
    const JobId j = ctx.order[k];
    const Mode& m = ctx.modes[static_cast<std::size_t>(j)].m[prefix[k]];
    std::int32_t pos = 0;
    const Cost delta = m.early ? dfs.DeltaEarly(m, j, &pos)
                               : dfs.DeltaTardy(m, j, &pos);
    dfs.Push(m, j, pos, delta);
    Layer& layer = dfs.layers[k];
    layer.side_early = m.early ? 1 : 0;
    layer.pos = pos;
    layer.delta = delta;
  }
}

// Non-recursive DFS below a frontier root.  Prunes strictly against the
// shared incumbent (ties survive), records the subtree's best canonical
// leaf in DFS-first order, and returns false when interrupted by the stop
// token or the node budget.
bool RunDfs(const Ctx& ctx, Dfs& dfs, std::int32_t base,
            std::atomic<Cost>& incumbent, RunControl& control,
            RootOutcome& out) {
  std::int32_t depth = base;
  dfs.layers[static_cast<std::size_t>(depth)].next_mode = 0;
  std::uint64_t unflushed = 0;
  for (;;) {
    if (depth == ctx.n) {
      const Cost v = dfs.Leaf();
      if (v < out.best) {
        out.best = v;
        out.seq = dfs.scratch;
        Cost cur = incumbent.load(std::memory_order_relaxed);
        while (v < cur && !incumbent.compare_exchange_weak(
                              cur, v, std::memory_order_relaxed)) {
        }
      }
      if (depth == base) break;
      --depth;
      dfs.Pop(dfs.layers[static_cast<std::size_t>(depth)]);
      continue;
    }
    Layer& layer = dfs.layers[static_cast<std::size_t>(depth)];
    const JobId j = ctx.order[static_cast<std::size_t>(depth)];
    const JobModes& jm = ctx.modes[static_cast<std::size_t>(j)];
    bool descended = false;
    while (layer.next_mode < jm.count) {
      const Mode& m = jm.m[layer.next_mode++];
      if (m.early && ctx.restricted && dfs.early_sum + m.p > ctx.d) {
        continue;  // no canonical schedule fits this many early units
      }
      std::int32_t pos = 0;
      const Cost delta = m.early ? dfs.DeltaEarly(m, j, &pos)
                                 : dfs.DeltaTardy(m, j, &pos);
      dfs.Push(m, j, pos, delta);
      layer.side_early = m.early ? 1 : 0;
      layer.pos = pos;
      layer.delta = delta;
      ++out.nodes;
      if ((++unflushed & 63u) == 0u && control.ShouldStop(64)) {
        unflushed = 0;
        dfs.Pop(layer);
        control.ShouldStop(0);
        return false;
      }
      if (dfs.Bound(depth + 1) >
          incumbent.load(std::memory_order_relaxed)) {
        dfs.Pop(layer);
        continue;
      }
      ++depth;
      dfs.layers[static_cast<std::size_t>(depth)].next_mode = 0;
      descended = true;
      break;
    }
    if (descended) continue;
    if (depth == base) break;
    --depth;
    dfs.Pop(dfs.layers[static_cast<std::size_t>(depth)]);
  }
  control.ShouldStop(unflushed & 63u);
  out.completed = true;
  return true;
}

// ---------------------------------------------------------------------------
// Frontier: breadth-first expansion of the first few layers into subtree
// roots.  Serial and deterministic; prunes strictly against the seed
// incumbent, so a completed run's result is independent of the split.

struct Root {
  std::vector<std::uint8_t> prefix;
  Cost lb = 0;
};

bool GenerateFrontier(const Ctx& ctx, Cost seed_cost, std::size_t target,
                      std::uint32_t forced_depth, const StopToken& stop,
                      std::vector<Root>& roots, std::uint64_t& gen_nodes) {
  roots.assign(1, Root{});
  std::uint32_t depth = 0;
  Dfs dfs(ctx);
  while (depth < static_cast<std::uint32_t>(ctx.n)) {
    const bool deep_enough = forced_depth != 0
                                 ? depth >= forced_depth
                                 : roots.size() >= target;
    if (deep_enough) break;
    if (stop.stop_requested()) return false;  // roots = last complete level
    std::vector<Root> next;
    next.reserve(roots.size() * 2);
    for (const Root& r : roots) {
      ApplyPrefix(ctx, dfs, r.prefix);
      const JobId j = ctx.order[depth];
      const JobModes& jm = ctx.modes[static_cast<std::size_t>(j)];
      for (std::uint8_t mi = 0; mi < jm.count; ++mi) {
        const Mode& m = jm.m[mi];
        if (m.early && ctx.restricted && dfs.early_sum + m.p > ctx.d) {
          continue;
        }
        std::int32_t pos = 0;
        const Cost delta = m.early ? dfs.DeltaEarly(m, j, &pos)
                                   : dfs.DeltaTardy(m, j, &pos);
        dfs.Push(m, j, pos, delta);
        ++gen_nodes;
        const Cost lb =
            dfs.Bound(static_cast<std::int32_t>(depth) + 1);
        Layer layer;
        layer.side_early = m.early ? 1 : 0;
        layer.pos = pos;
        layer.delta = delta;
        if (lb <= seed_cost) {
          Root child;
          child.prefix = r.prefix;
          child.prefix.push_back(mi);
          child.lb = lb;
          next.push_back(std::move(child));
        }
        dfs.Pop(layer);
      }
      // Unwind the prefix (pop in reverse push order).
      for (std::size_t k = r.prefix.size(); k > 0; --k) {
        dfs.Pop(dfs.layers[k - 1]);
      }
    }
    roots = std::move(next);
    ++depth;
    if (roots.empty()) break;  // everything pruned: the seed is optimal
  }
  return true;
}

// ---------------------------------------------------------------------------

BnbResult Run(const Instance& raw, const BnbParams& params,
              bool controllable) {
  const std::size_t n = raw.size();
  if (n > params.max_jobs) {
    throw ExactLimitError(
        controllable ? "BranchAndBoundUcddcp" : "BranchAndBoundCdd", n,
        params.max_jobs);
  }
  if (controllable && !raw.is_unrestricted()) {
    throw std::invalid_argument(
        "BranchAndBoundUcddcp: instance is restricted (d < sum P_i); the "
        "UCDDCP objective requires the unrestricted case");
  }
  const Instance instance =
      controllable ? (raw.problem() == Problem::kUcddcp
                          ? raw
                          : Instance(Problem::kUcddcp, raw.due_date(),
                                     raw.jobs()))
                   : raw.as_cdd();

  const Ctx ctx = BuildCtx(instance, controllable);

  // Incumbent seed: the V-shape constructive heuristic, optionally
  // polished by a short serial-SA chain on a private RNG stream.  Strict
  // pruning means the seed only ever accelerates the search — the
  // returned optimum does not depend on it.
  const meta::SequenceObjective objective =
      meta::SequenceObjective::ForInstance(instance);
  Sequence seed_seq = VShapeSeed(instance);
  Cost seed_cost = objective.Evaluate(seed_seq);
  const std::uint64_t warm =
      params.warm_start ? *params.warm_start : EnvWarmStartIterations();
  if (warm > 0 && !params.stop.stop_requested()) {
    meta::SaParams sa;
    sa.iterations = warm;
    sa.seed = params.seed;
    sa.initial_temperature = 1.0;  // polish, not a cold-start search
    sa.stop = params.stop;
    const meta::RunResult polished = meta::RunSerialSa(objective, sa,
                                                       seed_seq);
    if (polished.best_cost < seed_cost) {
      seed_cost = polished.best_cost;
      seed_seq = polished.best;
    }
  }

  unsigned workers =
      params.workers != 0 ? params.workers : sim::exec::ActiveExecWorkers();
  if (workers == 0) workers = 1;
  const std::uint32_t frontier_depth = params.frontier_depth != 0
                                           ? params.frontier_depth
                                           : EnvFrontierDepth();

  std::vector<Root> roots;
  std::uint64_t gen_nodes = 0;
  const std::size_t target =
      std::max<std::size_t>(32, static_cast<std::size_t>(workers) * 8);
  const bool gen_complete =
      GenerateFrontier(ctx, seed_cost, target, frontier_depth, params.stop,
                       roots, gen_nodes);

  RunControl control;
  control.stop = params.stop;
  control.max_nodes = params.max_nodes;
  control.nodes.store(gen_nodes, std::memory_order_relaxed);

  std::atomic<Cost> incumbent{seed_cost};
  std::vector<RootOutcome> outcomes(roots.size());
  if (gen_complete && !roots.empty()) {
    sim::exec::HostThreadPool::Instance().ParallelFor(
        roots.size(), workers, [&](std::size_t r) {
          RootOutcome& out = outcomes[r];
          if (control.ShouldStop(0)) return;  // left incomplete
          if (roots[r].lb > incumbent.load(std::memory_order_relaxed)) {
            out.completed = true;  // nothing at or below the optimum here
            return;
          }
          Dfs dfs(ctx);
          ApplyPrefix(ctx, dfs, roots[r].prefix);
          RunDfs(ctx, dfs, static_cast<std::int32_t>(roots[r].prefix.size()),
                 incumbent, control, out);
        });
  }

  // Deterministic reduction: roots in frontier order, strict improvement —
  // together with strict pruning this reproduces the serial DFS-first
  // optimum for every completed run, at any worker count.
  Cost best_leaf = kInfiniteCost;
  const Sequence* best_seq = nullptr;
  std::uint64_t dfs_nodes = 0;
  bool all_done = gen_complete;
  Cost min_open = kInfiniteCost;
  for (std::size_t r = 0; r < outcomes.size(); ++r) {
    dfs_nodes += outcomes[r].nodes;
    if (outcomes[r].best < best_leaf) {
      best_leaf = outcomes[r].best;
      best_seq = &outcomes[r].seq;
    }
    if (!outcomes[r].completed) {
      all_done = false;
      min_open = std::min(min_open, roots[r].lb);
    }
  }
  if (!gen_complete) {
    for (const Root& r : roots) min_open = std::min(min_open, r.lb);
  }

  BnbResult result;
  if (best_leaf <= seed_cost && best_seq != nullptr) {
    result.cost = best_leaf;
    result.sequence = *best_seq;
  } else {
    result.cost = seed_cost;
    result.sequence = seed_seq;
  }
  result.nodes_expanded = gen_nodes + dfs_nodes;
  if (all_done || min_open >= result.cost) {
    result.proven_optimal = true;
    result.lower_bound = result.cost;
  } else {
    result.lower_bound = std::max<Cost>(0, std::min(result.cost, min_open));
  }

  CDD_TRACE_COUNTER("bnb.nodes",
                    static_cast<Cost>(result.nodes_expanded));
  CDD_TRACE_COUNTER("bnb.lower_bound", result.lower_bound);
  CDD_TRACE_COUNTER("bnb.gap", result.cost - result.lower_bound);
  return result;
}

}  // namespace

BnbResult BranchAndBoundCdd(const Instance& instance,
                            const BnbParams& params) {
  return Run(instance, params, /*controllable=*/false);
}

BnbResult BranchAndBoundUcddcp(const Instance& instance,
                               const BnbParams& params) {
  return Run(instance, params, /*controllable=*/true);
}

BnbResult BranchAndBound(const Instance& instance, const BnbParams& params) {
  switch (instance.problem()) {
    case Problem::kCdd:
      return BranchAndBoundCdd(instance, params);
    case Problem::kUcddcp:
      return BranchAndBoundUcddcp(instance, params);
    case Problem::kCddcp:
      break;
  }
  throw std::invalid_argument(
      "BranchAndBound: the restricted controllable problem (kCddcp) has no "
      "O(n) evaluator to bound against");
}

}  // namespace cdd::exact

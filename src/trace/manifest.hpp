#pragma once
/// \file manifest.hpp
/// \brief Deterministic run manifests: record a solve, replay it later.
///
/// A manifest line is one self-contained JSON object holding everything a
/// replay needs — the full instance data, the engine name, every
/// result-determining option, the seed — plus everything a verifier
/// checks: the instance hash (core/hash.hpp, platform-stable), the final
/// best cost, the evaluation count and a digest of the convergence
/// trajectory.  Because the engines are bit-deterministic for a fixed
/// seed (the PR-1 invariant), re-running a manifest must reproduce
/// `best_cost` exactly; tools/sched_replay turns that statement into an
/// executable regression check, and a corrupted manifest (edited costs,
/// altered instance data) is detected mechanically.
///
/// The format is JSONL: one record per line, append-only, safe to
/// concatenate across runs.  64-bit hashes travel as decimal *strings*
/// (JSON numbers only guarantee 53 bits).

#include <cstdint>
#include <iosfwd>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>

#include "core/instance.hpp"
#include "core/types.hpp"
#include "trace/json.hpp"

namespace cdd::trace {

/// Malformed, incomplete, or internally inconsistent manifest data.
class ManifestError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Current manifest schema version (bumped on breaking format changes).
inline constexpr int kManifestSchema = 1;

/// The result-determining options of one solve — mirrors
/// serve::EngineOptions minus the runtime-only fields (stop token,
/// device, thread count) that never influence the answer.
struct ManifestOptions {
  std::uint64_t generations = 1000;
  std::uint64_t seed = 1;
  std::uint32_t ensemble = 768;
  std::uint32_t block = 192;
  std::uint32_t chains = 64;
  std::uint32_t trajectory_stride = 0;
  bool vshape_init = false;
  /// Racing portfolio (CSV of contender names) and per-round Step slice.
  /// Only meaningful for the "race" engine; a race is only recorded when
  /// its portfolio was pinned (adaptive bandit selection is stateful and
  /// therefore not replayable).  Both default to "absent" so manifest
  /// lines written before these fields existed still parse.
  std::string portfolio;
  std::uint64_t race_slice = 0;

  friend bool operator==(const ManifestOptions&,
                         const ManifestOptions&) = default;
};

/// One recorded solve.
struct ManifestRecord {
  std::string engine = "sa";
  Instance instance;
  std::uint64_t instance_hash = 0;  ///< HashInstance() at record time
  ManifestOptions options;
  Cost best_cost = 0;
  std::uint64_t evaluations = 0;
  std::uint64_t trajectory_samples = 0;
  std::uint64_t trajectory_digest = 0;  ///< 0 when no trajectory recorded
};

/// Order-sensitive 64-bit digest of a best-so-far trajectory.
std::uint64_t TrajectoryDigest(std::span<const Cost> trajectory);

/// Writes the canonical instance JSON object — {"problem":"cdd","due":N,
/// "proc":[...],"min_proc":[...],"early":[...],"tardy":[...],
/// "compress":[...]} — shared by the run manifest and the serve wire
/// format, so the two formats cannot drift apart.
void WriteInstanceJson(std::ostream& out, const Instance& instance);

/// Inverse of WriteInstanceJson over a parsed JSON object; validates the
/// instance.  Throws ManifestError on missing fields, an unknown problem
/// name, or data that fails Instance::Validate().
Instance ParseInstanceJson(const JsonValue& value);

/// Serializes \p record as one JSON line (no trailing newline).  The
/// engine name is JSON-escaped, so hostile names cannot break the format.
std::string WriteManifestLine(const ManifestRecord& record);

/// Parses one JSONL manifest line.  Throws ManifestError on malformed
/// JSON, missing fields, an unsupported schema, or instance data that
/// fails Instance::Validate().
ManifestRecord ParseManifestLine(std::string_view line);

/// Integrity check: recomputes the instance hash and compares it with the
/// recorded one.  Throws ManifestError on mismatch — the signature of a
/// manifest whose instance data or hash was tampered with.
void VerifyManifestIntegrity(const ManifestRecord& record);

}  // namespace cdd::trace

#pragma once
/// \file ring_buffer.hpp
/// \brief Single-producer overwrite ring of trace events.
///
/// The recorder's core data structure: a power-of-two array of Event slots
/// written by exactly one thread.  Push() is two plain stores plus one
/// release store of the write index — no locks, no CAS, no allocation —
/// so tracing a hot loop costs on the order of a histogram increment.
///
/// Overflow policy is drop-oldest: the producer keeps writing and simply
/// overwrites the oldest slot; the number of lost events is derivable from
/// the monotonically increasing write index (`written - capacity`), so
/// nothing blocks and nothing is silently exact-looking — exports carry an
/// explicit drop count.
///
/// Concurrency contract: Push() from the owning thread only.  Snapshot()
/// may run from any thread but yields a consistent event list only while
/// the producer is quiescent (between its writes); the exporters in this
/// repo run after workers join / engines return, which satisfies that.
/// This is the same contract CUDA's own profiler buffers have, and it is
/// what keeps the hot path free of read-side synchronization.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/event.hpp"

namespace cdd::trace {

class EventRing {
 public:
  /// \p capacity is rounded up to a power of two (minimum 8).
  explicit EventRing(std::size_t capacity) {
    std::size_t cap = 8;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
  }

  EventRing(const EventRing&) = delete;
  EventRing& operator=(const EventRing&) = delete;

  /// Records one event; called by the owning thread only.  Never blocks:
  /// when the ring is full the oldest event is overwritten.
  void Push(const Event& event) {
    const std::uint64_t w = write_.load(std::memory_order_relaxed);
    slots_[w & (slots_.size() - 1)] = event;
    write_.store(w + 1, std::memory_order_release);
  }

  std::size_t capacity() const { return slots_.size(); }

  /// Total events ever pushed (monotonic, survives overflow).
  std::uint64_t written() const {
    return write_.load(std::memory_order_acquire);
  }

  /// Events lost to overwriting so far.
  std::uint64_t dropped() const {
    const std::uint64_t w = written();
    return w > slots_.size() ? w - slots_.size() : 0;
  }

  /// Copies the surviving events, oldest first.  See the class comment for
  /// the quiescence requirement.
  std::vector<Event> Snapshot() const {
    const std::uint64_t w = written();
    const std::uint64_t n =
        w < slots_.size() ? w : static_cast<std::uint64_t>(slots_.size());
    std::vector<Event> out;
    out.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = w - n; i < w; ++i) {
      out.push_back(slots_[i & (slots_.size() - 1)]);
    }
    return out;
  }

  /// Forgets all events and the drop count (test/registry reset; producer
  /// must be quiescent).
  void Clear() { write_.store(0, std::memory_order_release); }

 private:
  std::vector<Event> slots_;
  std::atomic<std::uint64_t> write_{0};
};

}  // namespace cdd::trace

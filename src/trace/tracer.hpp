#pragma once
/// \file tracer.hpp
/// \brief Process-wide structured tracing: spans, instants, counters.
///
/// Layering:
///   instrumentation macros -> thread-local EventRing -> TraceRegistry
///     -> Chrome-trace JSON export (chrome://tracing, Perfetto)
///
/// Cost model (the invariants DESIGN.md §9 pins down):
///  * Compiled out (CDD_TRACING=0): every macro expands to `(void)0` —
///    no atomics, no branches, no code on the hot path at all.
///  * Compiled in, runtime-disabled (the default): one relaxed atomic
///    load and a predictable branch per site.
///  * Enabled: one ring Push (~two stores) per event; overflow drops the
///    oldest event and counts the loss instead of blocking or allocating.
///  * Tracing NEVER consumes engine randomness and never takes a lock on
///    the record path, so a traced run is bit-identical to an untraced
///    one (tests/trace/tracer_test.cpp proves it on a live SA chain).
///
/// Names passed to the macros must be string literals (they are stored as
/// bare pointers).  Dynamic names — simulated kernel names, engine names —
/// go through InternName(), which returns a stable pointer for the
/// process lifetime.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "trace/clock.hpp"
#include "trace/event.hpp"

#ifndef CDD_TRACING
#define CDD_TRACING 1
#endif

namespace cdd::trace {

/// Turns recording on or off for every thread (relaxed; takes effect on
/// each site's next event).  No-op when tracing is compiled out.
void SetEnabled(bool enabled);
bool Enabled();

/// Returns a stable pointer equal (as a string) to \p name; repeated calls
/// with the same contents return the same pointer.  Takes a lock — call it
/// once per dynamic name, not per event, where that matters.
const char* InternName(std::string_view name);

/// Allocates a virtual export track (e.g. one per simulated device).
/// Returned ids start above any per-thread id.
std::uint32_t NewTrack(std::string_view label);

/// Labels the calling thread's per-thread track in exports (e.g.
/// "exec-worker-3"), registering its ring if needed.  Wall-clock worker
/// tracks thus stay distinguishable from the modeled-time device tracks
/// created with NewTrack().  Takes the registry lock — call once per
/// thread, not per event.
void SetThreadLabel(std::string_view label);

/// Ring capacity for threads that record their first event after this
/// call (existing rings keep their size).  Default 8192 events.
void SetRingCapacity(std::size_t events);

/// Events lost to ring overflow, summed over all threads.
std::uint64_t DroppedTotal();

/// Events currently held, summed over all threads.
std::uint64_t EventCount();

/// Writes every surviving event as one Chrome trace JSON document
/// ({"traceEvents":[...]}) loadable in chrome://tracing or Perfetto.
/// Events are globally sorted by timestamp (ties keep per-thread order),
/// so cross-thread ordering in the file matches causal recording order
/// whenever clocks do.  Producers should be quiescent (see ring_buffer.hpp).
void ExportChromeTrace(std::ostream& out);

/// Convenience: ExportChromeTrace into \p path; returns false on I/O error.
bool ExportChromeTraceFile(const std::string& path);

/// Clears every thread's events and drop counts (rings stay allocated, so
/// thread-local fast paths remain valid).  Test helper.
void ResetForTest();

/// Records one event into the calling thread's ring.  Callers normally go
/// through the macros below, which compile out and check Enabled().
void Record(const Event& event);

/// RAII span: Begin on construction, End on destruction.  Captures the
/// enabled flag once so a mid-span toggle cannot emit an unbalanced event.
class Span {
 public:
  explicit Span(const char* name) : name_(name), live_(Enabled()) {
    if (live_) {
      Record({name_, NowNs(), 0, kTrackOwnThread, EventType::kBegin});
    }
  }
  ~Span() {
    if (live_) {
      Record({name_, NowNs(), 0, kTrackOwnThread, EventType::kEnd});
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  bool live_;
};

inline void Instant(const char* name) {
  if (Enabled()) {
    Record({name, NowNs(), 0, kTrackOwnThread, EventType::kInstant});
  }
}

inline void CounterSample(const char* name, std::int64_t value) {
  if (Enabled()) {
    Record({name, NowNs(), value, kTrackOwnThread, EventType::kCounter});
  }
}

/// A closed interval with caller-supplied clock values — how the cudasim
/// layer posts *modeled* kernel/transfer durations onto a device track.
inline void Complete(const char* name, std::int64_t ts_ns,
                     std::int64_t dur_ns,
                     std::uint32_t track = kTrackOwnThread) {
  if (Enabled()) {
    Record({name, ts_ns, dur_ns, track, EventType::kComplete});
  }
}

/// Counter variant with an explicit timestamp/track (device-track series).
inline void CounterSampleAt(const char* name, std::int64_t ts_ns,
                            std::int64_t value, std::uint32_t track) {
  if (Enabled()) {
    Record({name, ts_ns, value, track, EventType::kCounter});
  }
}

}  // namespace cdd::trace

// --- instrumentation macros (the only thing hot paths should use) --------
#if CDD_TRACING
#define CDD_TRACE_CONCAT_INNER(a, b) a##b
#define CDD_TRACE_CONCAT(a, b) CDD_TRACE_CONCAT_INNER(a, b)
/// Scoped span covering the rest of the enclosing block.
#define CDD_TRACE_SPAN(name) \
  const ::cdd::trace::Span CDD_TRACE_CONCAT(cdd_trace_span_, __LINE__)(name)
#define CDD_TRACE_INSTANT(name) ::cdd::trace::Instant(name)
#define CDD_TRACE_COUNTER(name, value) \
  ::cdd::trace::CounterSample((name), static_cast<std::int64_t>(value))
#define CDD_TRACE_COMPLETE(name, ts_ns, dur_ns, track) \
  ::cdd::trace::Complete((name), (ts_ns), (dur_ns), (track))
#else
#define CDD_TRACE_SPAN(name) ((void)0)
#define CDD_TRACE_INSTANT(name) ((void)0)
#define CDD_TRACE_COUNTER(name, value) ((void)0)
#define CDD_TRACE_COMPLETE(name, ts_ns, dur_ns, track) ((void)0)
#endif

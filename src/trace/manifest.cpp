#include "trace/manifest.hpp"

#include <charconv>
#include <sstream>
#include <vector>

#include "core/hash.hpp"
#include "trace/json.hpp"

namespace cdd::trace {

namespace {

std::string_view ProblemName(Problem problem) {
  switch (problem) {
    case Problem::kCdd:
      return "cdd";
    case Problem::kUcddcp:
      return "ucddcp";
    case Problem::kCddcp:
      return "cddcp";
  }
  return "cdd";
}

Problem ProblemFromName(std::string_view name) {
  if (name == "cdd") return Problem::kCdd;
  if (name == "ucddcp") return Problem::kUcddcp;
  if (name == "cddcp") return Problem::kCddcp;
  throw ManifestError("unknown problem kind '" + std::string(name) + "'");
}

template <typename T>
void WriteIntArray(std::ostringstream& out, const char* key,
                   const std::vector<T>& values) {
  out << "\"" << key << "\":[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out << ",";
    out << values[i];
  }
  out << "]";
}

/// Hashes travel as decimal strings; JSON numbers only hold 53 bits.
std::uint64_t ParseU64String(const JsonValue& value, const char* what) {
  const std::string& text = value.AsString();
  std::uint64_t parsed = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), parsed);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    throw ManifestError(std::string("bad 64-bit value for ") + what +
                        ": '" + text + "'");
  }
  return parsed;
}

template <typename T>
std::vector<T> ParseIntArray(const JsonValue& value, const char* what) {
  std::vector<T> out;
  out.reserve(value.AsArray().size());
  for (const JsonValue& element : value.AsArray()) {
    out.push_back(static_cast<T>(element.AsInt()));
  }
  (void)what;
  return out;
}

}  // namespace

void WriteInstanceJson(std::ostream& out, const Instance& instance) {
  std::vector<Time> proc;
  std::vector<Time> min_proc;
  std::vector<Cost> early;
  std::vector<Cost> tardy;
  std::vector<Cost> compress;
  proc.reserve(instance.size());
  min_proc.reserve(instance.size());
  early.reserve(instance.size());
  tardy.reserve(instance.size());
  compress.reserve(instance.size());
  for (const Job& job : instance.jobs()) {
    proc.push_back(job.proc);
    min_proc.push_back(job.min_proc);
    early.push_back(job.early);
    tardy.push_back(job.tardy);
    compress.push_back(job.compress);
  }
  std::ostringstream body;
  body << "{\"problem\":\"" << ProblemName(instance.problem())
       << "\",\"due\":" << instance.due_date() << ",";
  // Optional variant fields, written only when non-default so every
  // single-machine total-penalty line stays byte-identical to the
  // pre-parallel-machine format (same contract as the race fields of
  // WriteManifestLine).
  if (instance.machines() > 1) {
    body << "\"machines\":" << instance.machines() << ",";
  }
  if (instance.objective() == ScheduleObjective::kEarlyWork) {
    body << "\"objective\":\"early-work\",";
  }
  WriteIntArray(body, "proc", proc);
  body << ",";
  WriteIntArray(body, "min_proc", min_proc);
  body << ",";
  WriteIntArray(body, "early", early);
  body << ",";
  WriteIntArray(body, "tardy", tardy);
  body << ",";
  WriteIntArray(body, "compress", compress);
  body << "}";
  out << body.str();
}

Instance ParseInstanceJson(const JsonValue& value) {
  try {
    const Problem problem = ProblemFromName(value.At("problem").AsString());
    const Time due = value.At("due").AsInt();
    auto proc = ParseIntArray<Time>(value.At("proc"), "proc");
    auto min_proc = ParseIntArray<Time>(value.At("min_proc"), "min_proc");
    auto early = ParseIntArray<Cost>(value.At("early"), "early");
    auto tardy = ParseIntArray<Cost>(value.At("tardy"), "tardy");
    auto compress = ParseIntArray<Cost>(value.At("compress"), "compress");
    Instance instance(problem, due, std::move(proc), std::move(early),
                      std::move(tardy), std::move(min_proc),
                      std::move(compress));
    // Optional variant fields: lines recorded before parallel machines /
    // early work existed simply omit them and parse as before.
    if (const JsonValue* machines = value.Find("machines")) {
      instance = instance.with_machines(
          static_cast<std::int32_t>(machines->AsInt()));
    }
    if (const JsonValue* objective = value.Find("objective")) {
      const std::string name = objective->AsString();
      if (name == "early-work") {
        instance = instance.with_objective(ScheduleObjective::kEarlyWork);
      } else if (name != "total-penalty") {
        throw ManifestError("unknown objective '" + name + "'");
      }
    }
    instance.Validate();
    return instance;
  } catch (const JsonError& e) {
    throw ManifestError(std::string("instance field error: ") + e.what());
  } catch (const std::invalid_argument& e) {
    throw ManifestError(std::string("instance invalid: ") + e.what());
  }
}

std::uint64_t TrajectoryDigest(std::span<const Cost> trajectory) {
  if (trajectory.empty()) return 0;
  std::uint64_t h = kHashSeed;
  h = HashCombine(h, trajectory.size());
  for (const Cost cost : trajectory) {
    h = HashCombine(h, static_cast<std::uint64_t>(cost));
  }
  return h;
}

std::string WriteManifestLine(const ManifestRecord& record) {
  std::ostringstream out;
  out << "{\"schema\":" << kManifestSchema << ",\"engine\":\""
      << JsonEscape(record.engine) << "\",\"instance\":";
  WriteInstanceJson(out, record.instance);
  out << ",\"instance_hash\":\"" << record.instance_hash
      << "\",\"options\":{\"generations\":" << record.options.generations
      << ",\"seed\":" << record.options.seed
      << ",\"ensemble\":" << record.options.ensemble
      << ",\"block\":" << record.options.block
      << ",\"chains\":" << record.options.chains
      << ",\"trajectory_stride\":" << record.options.trajectory_stride
      << ",\"vshape_init\":"
      << (record.options.vshape_init ? "true" : "false");
  // Race fields are written only when set, keeping non-race manifest
  // lines byte-identical to the pre-race format.
  if (!record.options.portfolio.empty()) {
    out << ",\"portfolio\":\"" << JsonEscape(record.options.portfolio)
        << "\"";
  }
  if (record.options.race_slice != 0) {
    out << ",\"race_slice\":" << record.options.race_slice;
  }
  out << "},\"best_cost\":" << record.best_cost
      << ",\"evaluations\":" << record.evaluations
      << ",\"trajectory_samples\":" << record.trajectory_samples
      << ",\"trajectory_digest\":\"" << record.trajectory_digest << "\"}";
  return out.str();
}

ManifestRecord ParseManifestLine(std::string_view line) {
  JsonValue root = [&] {
    try {
      return JsonValue::Parse(line);
    } catch (const JsonError& e) {
      throw ManifestError(std::string("manifest line is not valid JSON: ") +
                          e.what());
    }
  }();

  try {
    const std::int64_t schema = root.At("schema").AsInt();
    if (schema != kManifestSchema) {
      throw ManifestError("unsupported manifest schema " +
                          std::to_string(schema));
    }

    ManifestRecord record;
    record.engine = root.At("engine").AsString();

    record.instance = ParseInstanceJson(root.At("instance"));

    record.instance_hash =
        ParseU64String(root.At("instance_hash"), "instance_hash");

    const JsonValue& options = root.At("options");
    record.options.generations =
        static_cast<std::uint64_t>(options.At("generations").AsInt());
    record.options.seed =
        static_cast<std::uint64_t>(options.At("seed").AsInt());
    record.options.ensemble =
        static_cast<std::uint32_t>(options.At("ensemble").AsInt());
    record.options.block =
        static_cast<std::uint32_t>(options.At("block").AsInt());
    record.options.chains =
        static_cast<std::uint32_t>(options.At("chains").AsInt());
    record.options.trajectory_stride = static_cast<std::uint32_t>(
        options.At("trajectory_stride").AsInt());
    record.options.vshape_init = options.At("vshape_init").AsBool();
    // Optional race fields: lines recorded before racing existed (and
    // every non-race line since) simply omit them.
    if (const JsonValue* portfolio = options.Find("portfolio")) {
      record.options.portfolio = portfolio->AsString();
    }
    if (const JsonValue* slice = options.Find("race_slice")) {
      record.options.race_slice =
          static_cast<std::uint64_t>(slice->AsInt());
    }

    record.best_cost = root.At("best_cost").AsInt();
    record.evaluations =
        static_cast<std::uint64_t>(root.At("evaluations").AsInt());
    record.trajectory_samples =
        static_cast<std::uint64_t>(root.At("trajectory_samples").AsInt());
    record.trajectory_digest =
        ParseU64String(root.At("trajectory_digest"), "trajectory_digest");
    return record;
  } catch (const JsonError& e) {
    throw ManifestError(std::string("manifest field error: ") + e.what());
  } catch (const std::invalid_argument& e) {
    // Instance::Validate() rejects tampered job data.
    throw ManifestError(std::string("manifest instance invalid: ") +
                        e.what());
  }
}

void VerifyManifestIntegrity(const ManifestRecord& record) {
  const std::uint64_t recomputed = HashInstance(record.instance);
  if (recomputed != record.instance_hash) {
    throw ManifestError(
        "instance hash mismatch: recorded " +
        std::to_string(record.instance_hash) + ", recomputed " +
        std::to_string(recomputed) +
        " — the manifest's instance data or hash was altered");
  }
}

}  // namespace cdd::trace

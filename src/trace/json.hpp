#pragma once
/// \file json.hpp
/// \brief Minimal JSON primitives shared by the trace exporters and the
/// serve metrics snapshot: string escaping on the write side, a small
/// recursive-descent value parser on the read side (manifests).
///
/// Deliberately not a general JSON library — only what the repo's own
/// formats need (objects, arrays, strings, integer/double numbers, bools,
/// null), with strict errors instead of extensions.

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace cdd::trace {

/// Escapes \p text for inclusion inside a JSON string literal: quote,
/// backslash, and every control character below 0x20 (\n, \t, ... and
/// \u00XX for the rest).
std::string JsonEscape(std::string_view text);

/// Malformed JSON input.
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One parsed JSON value (tree-owning).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }

  bool AsBool() const;
  /// Numbers are kept as doubles plus the raw text, so 64-bit integers
  /// (hashes, costs) round-trip exactly through AsInt/AsUint.
  double AsDouble() const;
  std::int64_t AsInt() const;
  std::uint64_t AsUint() const;
  const std::string& AsString() const;
  const std::vector<JsonValue>& AsArray() const;

  /// Object member access; Find returns nullptr when absent, At throws.
  const JsonValue* Find(const std::string& key) const;
  const JsonValue& At(const std::string& key) const;

  /// Parses exactly one JSON document from \p text (trailing whitespace
  /// allowed, anything else throws JsonError).
  static JsonValue Parse(std::string_view text);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::string text_;  // string value, or the raw number token
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;

  friend class JsonParser;
};

}  // namespace cdd::trace

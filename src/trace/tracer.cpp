#include "trace/tracer.hpp"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <unordered_map>
#include <vector>

#include "trace/json.hpp"
#include "trace/ring_buffer.hpp"

namespace cdd::trace {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<std::size_t> g_ring_capacity{8192};

/// First id handed out by NewTrack(); per-thread ids stay below it so the
/// two ranges never collide in the exported "tid" field.
constexpr std::uint32_t kFirstVirtualTrack = 1u << 16;

/// One registered producer: a ring plus its export identity.
struct ThreadSlot {
  std::unique_ptr<EventRing> ring;
  std::uint32_t tid = 0;
  std::string label;  ///< empty = unnamed (exported by tid only)
};

/// Registry of every ring and every virtual track label.  Rings are owned
/// here (not by the threads), so exports after a producer thread exits
/// still see its events.
struct Registry {
  std::mutex mutex;
  std::vector<ThreadSlot> threads;
  std::vector<std::pair<std::uint32_t, std::string>> tracks;
  std::uint32_t next_tid = 1;
  std::uint32_t next_track = kFirstVirtualTrack;
};

Registry& TheRegistry() {
  static Registry* registry = new Registry();  // leaked: outlive all threads
  return *registry;
}

/// The calling thread's ring, registered on first use.
EventRing& LocalRing() {
  thread_local EventRing* ring = nullptr;
  if (ring == nullptr) {
    Registry& reg = TheRegistry();
    const std::scoped_lock lock(reg.mutex);
    ThreadSlot slot;
    slot.ring =
        std::make_unique<EventRing>(g_ring_capacity.load(std::memory_order_relaxed));
    slot.tid = reg.next_tid++;
    ring = slot.ring.get();
    reg.threads.push_back(std::move(slot));
  }
  return *ring;
}

void WriteEventJson(std::ostream& out, const Event& event,
                    std::uint32_t thread_tid) {
  const std::uint32_t tid =
      event.track == kTrackOwnThread ? thread_tid : event.track;
  const double ts_us = static_cast<double>(event.ts_ns) / 1000.0;
  out << "{\"name\":\"" << JsonEscape(event.name) << "\",\"pid\":1,\"tid\":"
      << tid << ",\"ts\":" << ts_us;
  switch (event.type) {
    case EventType::kBegin:
      out << ",\"ph\":\"B\"}";
      break;
    case EventType::kEnd:
      out << ",\"ph\":\"E\"}";
      break;
    case EventType::kInstant:
      out << ",\"ph\":\"i\",\"s\":\"t\"}";
      break;
    case EventType::kCounter:
      out << ",\"ph\":\"C\",\"args\":{\"value\":" << event.value << "}}";
      break;
    case EventType::kComplete:
      out << ",\"ph\":\"X\",\"dur\":"
          << static_cast<double>(event.value) / 1000.0 << "}";
      break;
  }
}

}  // namespace

void SetEnabled(bool enabled) {
#if CDD_TRACING
  g_enabled.store(enabled, std::memory_order_relaxed);
#else
  (void)enabled;
#endif
}

bool Enabled() {
#if CDD_TRACING
  return g_enabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

const char* InternName(std::string_view name) {
  // Interned names live for the process: Event stores bare pointers.
  static std::mutex mutex;
  static std::unordered_map<std::string, std::unique_ptr<std::string>>*
      interned = new std::unordered_map<std::string,
                                        std::unique_ptr<std::string>>();
  const std::scoped_lock lock(mutex);
  const auto it = interned->find(std::string(name));
  if (it != interned->end()) return it->second->c_str();
  auto owned = std::make_unique<std::string>(name);
  const char* stable = owned->c_str();
  interned->emplace(*owned, std::move(owned));
  return stable;
}

std::uint32_t NewTrack(std::string_view label) {
  Registry& reg = TheRegistry();
  const std::scoped_lock lock(reg.mutex);
  const std::uint32_t id = reg.next_track++;
  reg.tracks.emplace_back(id, std::string(label));
  return id;
}

void SetThreadLabel(std::string_view label) {
  const EventRing* mine = &LocalRing();  // registers the ring if needed
  Registry& reg = TheRegistry();
  const std::scoped_lock lock(reg.mutex);
  for (ThreadSlot& slot : reg.threads) {
    if (slot.ring.get() == mine) {
      slot.label = std::string(label);
      return;
    }
  }
}

void SetRingCapacity(std::size_t events) {
  g_ring_capacity.store(events == 0 ? 8 : events,
                        std::memory_order_relaxed);
}

std::uint64_t DroppedTotal() {
  Registry& reg = TheRegistry();
  const std::scoped_lock lock(reg.mutex);
  std::uint64_t dropped = 0;
  for (const ThreadSlot& slot : reg.threads) dropped += slot.ring->dropped();
  return dropped;
}

std::uint64_t EventCount() {
  Registry& reg = TheRegistry();
  const std::scoped_lock lock(reg.mutex);
  std::uint64_t count = 0;
  for (const ThreadSlot& slot : reg.threads) {
    count += slot.ring->written() - slot.ring->dropped();
  }
  return count;
}

void Record(const Event& event) { LocalRing().Push(event); }

void ExportChromeTrace(std::ostream& out) {
  struct Tagged {
    Event event;
    std::uint32_t tid;
  };
  std::vector<Tagged> all;
  std::vector<std::pair<std::uint32_t, std::string>> tracks;
  std::uint64_t dropped = 0;
  {
    Registry& reg = TheRegistry();
    const std::scoped_lock lock(reg.mutex);
    tracks = reg.tracks;
    for (const ThreadSlot& slot : reg.threads) {
      if (!slot.label.empty()) tracks.emplace_back(slot.tid, slot.label);
      dropped += slot.ring->dropped();
      for (const Event& event : slot.ring->Snapshot()) {
        all.push_back({event, slot.tid});
      }
    }
  }
  // Global timestamp order; stable, so same-timestamp events keep their
  // per-thread recording order (snapshots are chronological per ring).
  std::stable_sort(all.begin(), all.end(),
                   [](const Tagged& a, const Tagged& b) {
                     return a.event.ts_ns < b.event.ts_ns;
                   });

  out << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":"
      << dropped << "},\"traceEvents\":[";
  bool first = true;
  for (const auto& [id, label] : tracks) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << id
        << ",\"args\":{\"name\":\"" << JsonEscape(label) << "\"}}";
  }
  for (const Tagged& tagged : all) {
    if (!first) out << ",";
    first = false;
    WriteEventJson(out, tagged.event, tagged.tid);
  }
  out << "]}\n";
}

bool ExportChromeTraceFile(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  ExportChromeTrace(out);
  return static_cast<bool>(out);
}

void ResetForTest() {
  Registry& reg = TheRegistry();
  const std::scoped_lock lock(reg.mutex);
  for (ThreadSlot& slot : reg.threads) slot.ring->Clear();
}

}  // namespace cdd::trace

#pragma once
/// \file event.hpp
/// \brief The 32-byte POD record every trace producer writes.
///
/// Events are designed for a fixed-size overwrite ring: trivially copyable,
/// no ownership.  `name` is a pointer to storage that outlives the trace —
/// either a string literal at the instrumentation site (the common, free
/// case) or a string interned through trace::InternName() (dynamic kernel
/// names).  Timestamps are nanoseconds; host events use the monotonic
/// process clock (trace::NowNs()), simulated-device events carry the
/// TimingModel's clock so a Perfetto timeline shows the paper's per-kernel
/// breakdown directly.

#include <cstdint>

namespace cdd::trace {

/// Chrome-trace phase of one event.
enum class EventType : std::uint8_t {
  kBegin,    ///< span opens ("ph":"B"); value unused
  kEnd,      ///< span closes ("ph":"E"); value unused
  kInstant,  ///< point event ("ph":"i"); value unused
  kCounter,  ///< sampled series ("ph":"C"); value is the sample
  kComplete, ///< closed interval ("ph":"X"); value is the duration in ns
};

/// Track an event renders on.  0 means "the thread that recorded it"
/// (resolved to a per-thread id at export); nonzero ids name virtual
/// timelines, e.g. one per simulated device.
inline constexpr std::uint32_t kTrackOwnThread = 0;

/// One trace record.  Kept at 32 bytes so a ring of a few thousand events
/// costs ~100 KiB per thread.
struct Event {
  const char* name = nullptr;  ///< literal or interned; never owned
  std::int64_t ts_ns = 0;      ///< event (or interval-start) timestamp
  std::int64_t value = 0;      ///< counter sample / complete duration [ns]
  std::uint32_t track = kTrackOwnThread;
  EventType type = EventType::kInstant;
};

static_assert(sizeof(Event) <= 32, "Event outgrew its ring budget");

}  // namespace cdd::trace

#include "trace/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace cdd::trace {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool JsonValue::AsBool() const {
  if (kind_ != Kind::kBool) throw JsonError("not a bool");
  return bool_;
}

double JsonValue::AsDouble() const {
  if (kind_ != Kind::kNumber) throw JsonError("not a number");
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text_.data(), text_.data() + text_.size(), value);
  if (ec != std::errc() || ptr != text_.data() + text_.size()) {
    throw JsonError("bad number token '" + text_ + "'");
  }
  return value;
}

std::int64_t JsonValue::AsInt() const {
  if (kind_ != Kind::kNumber) throw JsonError("not a number");
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text_.data(), text_.data() + text_.size(), value);
  if (ec != std::errc() || ptr != text_.data() + text_.size()) {
    throw JsonError("not a 64-bit integer: '" + text_ + "'");
  }
  return value;
}

std::uint64_t JsonValue::AsUint() const {
  if (kind_ != Kind::kNumber) throw JsonError("not a number");
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text_.data(), text_.data() + text_.size(), value);
  if (ec != std::errc() || ptr != text_.data() + text_.size()) {
    throw JsonError("not an unsigned 64-bit integer: '" + text_ + "'");
  }
  return value;
}

const std::string& JsonValue::AsString() const {
  if (kind_ != Kind::kString) throw JsonError("not a string");
  return text_;
}

const std::vector<JsonValue>& JsonValue::AsArray() const {
  if (kind_ != Kind::kArray) throw JsonError("not an array");
  return array_;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) throw JsonError("not an object");
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

const JsonValue& JsonValue::At(const std::string& key) const {
  const JsonValue* value = Find(key);
  if (value == nullptr) throw JsonError("missing key '" + key + "'");
  return *value;
}

/// Recursive-descent parser over a string_view (no copies until leaves).
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue ParseDocument() {
    JsonValue value = ParseValue();
    SkipSpace();
    if (pos_ != text_.size()) Fail("trailing characters");
    return value;
  }

 private:
  [[noreturn]] void Fail(const std::string& what) const {
    throw JsonError("JSON error at offset " + std::to_string(pos_) + ": " +
                    what);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() {
    if (pos_ >= text_.size()) Fail("unexpected end of input");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) Fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool Consume(std::string_view token) {
    if (text_.substr(pos_, token.size()) != token) return false;
    pos_ += token.size();
    return true;
  }

  JsonValue ParseValue() {
    SkipSpace();
    const char c = Peek();
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        JsonValue value;
        value.kind_ = JsonValue::Kind::kString;
        value.text_ = ParseString();
        return value;
      }
      case 't': {
        if (!Consume("true")) Fail("bad literal");
        JsonValue value;
        value.kind_ = JsonValue::Kind::kBool;
        value.bool_ = true;
        return value;
      }
      case 'f': {
        if (!Consume("false")) Fail("bad literal");
        JsonValue value;
        value.kind_ = JsonValue::Kind::kBool;
        value.bool_ = false;
        return value;
      }
      case 'n': {
        if (!Consume("null")) Fail("bad literal");
        return JsonValue();
      }
      default:
        return ParseNumber();
    }
  }

  JsonValue ParseObject() {
    Expect('{');
    JsonValue value;
    value.kind_ = JsonValue::Kind::kObject;
    SkipSpace();
    if (Peek() == '}') {
      ++pos_;
      return value;
    }
    for (;;) {
      SkipSpace();
      std::string key = ParseString();
      SkipSpace();
      Expect(':');
      value.object_.emplace(std::move(key), ParseValue());
      SkipSpace();
      const char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return value;
    }
  }

  JsonValue ParseArray() {
    Expect('[');
    JsonValue value;
    value.kind_ = JsonValue::Kind::kArray;
    SkipSpace();
    if (Peek() == ']') {
      ++pos_;
      return value;
    }
    for (;;) {
      value.array_.push_back(ParseValue());
      SkipSpace();
      const char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return value;
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) Fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) Fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              Fail("bad \\u escape digit");
            }
          }
          // Our writers only emit \u00XX (control bytes); reject the rest
          // rather than mis-decode surrogate pairs.
          if (code > 0xFF) Fail("unsupported \\u escape > 0xFF");
          out += static_cast<char>(code);
          break;
        }
        default:
          Fail("unknown escape");
      }
    }
  }

  JsonValue ParseNumber() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) Fail("expected a value");
    JsonValue value;
    value.kind_ = JsonValue::Kind::kNumber;
    value.text_ = std::string(text_.substr(start, pos_ - start));
    // Validate the token eagerly so malformed numbers fail at parse time.
    double probe = 0.0;
    const auto [ptr, ec] = std::from_chars(
        value.text_.data(), value.text_.data() + value.text_.size(), probe);
    if (ec != std::errc() ||
        ptr != value.text_.data() + value.text_.size()) {
      Fail("bad number '" + value.text_ + "'");
    }
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::Parse(std::string_view text) {
  return JsonParser(text).ParseDocument();
}

}  // namespace cdd::trace

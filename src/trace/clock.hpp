#pragma once
/// \file clock.hpp
/// \brief Monotonic nanosecond timestamps anchored at process start.
///
/// Anchoring keeps timestamps small (hours fit in 42 bits), which Chrome's
/// trace viewer prefers, and makes traces from one process directly
/// comparable without epoch bookkeeping.

#include <chrono>
#include <cstdint>

namespace cdd::trace {

/// Nanoseconds since the first call in this process (monotonic).
inline std::int64_t NowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point anchor = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              anchor)
      .count();
}

}  // namespace cdd::trace

#include "portfolio/race.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "trace/tracer.hpp"

namespace cdd::portfolio {

namespace {

struct RaceCheckpoint final : meta::EngineCheckpoint {
  std::vector<std::unique_ptr<meta::EngineCheckpoint>> contenders;
  std::vector<meta::StepStatus> states;
  std::vector<bool> live;
  std::uint64_t rounds = 0;
  meta::StepStatus status = meta::StepStatus::kRunning;
  RaceReport report;
  bool recorded = false;
};

}  // namespace

RaceEngine::RaceEngine(std::vector<RaceContender> contenders,
                       RaceParams params)
    : params_(params), contenders_(std::move(contenders)) {
  if (contenders_.empty()) {
    throw std::invalid_argument("RaceEngine: empty portfolio");
  }
  if (params_.slice == 0) params_.slice = 1;
  states_.reserve(contenders_.size());
  for (const RaceContender& contender : contenders_) {
    // Step(0) is the status poll: an engine whose budget is zero is kDone
    // before the first round.
    states_.push_back(contender.engine->Step(0));
  }
  live_.assign(contenders_.size(), true);
  bool any_running = false;
  for (const meta::StepStatus state : states_) {
    any_running = any_running || state == meta::StepStatus::kRunning;
  }
  if (!any_running) {
    const bool any_stopped =
        std::any_of(states_.begin(), states_.end(), [](meta::StepStatus s) {
          return s == meta::StepStatus::kStopped;
        });
    status_ = any_stopped ? meta::StepStatus::kStopped
                          : meta::StepStatus::kDone;
  }
}

std::size_t RaceEngine::Leader() const {
  std::size_t leader = 0;
  Cost best = kInfiniteCost;
  bool found = false;
  for (std::size_t i = 0; i < contenders_.size(); ++i) {
    if (!live_[i]) continue;
    const Cost cost = contenders_[i].engine->BestCost();
    if (!found || cost < best) {
      found = true;
      leader = i;
      best = cost;
    }
  }
  return leader;
}

void RaceEngine::RunRound() {
  ++rounds_;
  for (std::size_t i = 0; i < contenders_.size(); ++i) {
    if (live_[i] && states_[i] == meta::StepStatus::kRunning) {
      states_[i] = contenders_[i].engine->Step(params_.slice);
    }
  }

  // Kill phase: strictly dominated *running* contenders die; finished
  // ones keep their (already paid-for) result in the winner pool.  The
  // strict comparison means cost ties survive, so the kill schedule — and
  // with it the winner — is a pure function of contenders + slice.
  std::size_t live_count = 0;
  for (std::size_t i = 0; i < contenders_.size(); ++i) {
    if (live_[i]) ++live_count;
  }
  if (rounds_ > params_.grace_rounds && live_count > 1) {
    const std::size_t leader = Leader();
    const Cost lead = contenders_[leader].engine->BestCost();
    for (std::size_t i = 0; i < contenders_.size(); ++i) {
      if (i == leader || !live_[i] ||
          states_[i] != meta::StepStatus::kRunning) {
        continue;
      }
      if (contenders_[i].engine->BestCost() > lead && live_count > 1) {
        live_[i] = false;
        --live_count;
        report_.killed.push_back(contenders_[i].name);
        CDD_TRACE_INSTANT("race.kill");
      }
    }
  }

  bool any_running = false;
  bool any_stopped = false;
  for (std::size_t i = 0; i < contenders_.size(); ++i) {
    if (!live_[i]) continue;
    any_running = any_running || states_[i] == meta::StepStatus::kRunning;
    any_stopped = any_stopped || states_[i] == meta::StepStatus::kStopped;
  }
  if (!any_running) {
    // A stopped survivor means the race as a whole was truncated: its
    // winner choice is deadline-dependent, so the result must not pass
    // for a full race (the serve layer will not cache it).
    status_ = any_stopped ? meta::StepStatus::kStopped
                          : meta::StepStatus::kDone;
  }
  CDD_TRACE_COUNTER("race.best_cost", BestCost());
}

meta::StepStatus RaceEngine::Step(std::uint64_t units) {
  CDD_TRACE_SPAN("portfolio.race");
  while (units > 0 && status_ == meta::StepStatus::kRunning) {
    RunRound();
    --units;
  }
  return status_;
}

std::uint64_t RaceEngine::Remaining() const {
  if (status_ != meta::StepStatus::kRunning) return 0;
  std::uint64_t rounds = 0;
  for (std::size_t i = 0; i < contenders_.size(); ++i) {
    if (!live_[i] || states_[i] != meta::StepStatus::kRunning) continue;
    const std::uint64_t left = contenders_[i].engine->Remaining();
    if (left == meta::kStepAll) return meta::kStepAll;
    rounds = std::max(rounds, (left + params_.slice - 1) / params_.slice);
  }
  return rounds;
}

Cost RaceEngine::BestCost() const {
  Cost best = kInfiniteCost;
  for (std::size_t i = 0; i < contenders_.size(); ++i) {
    if (live_[i]) best = std::min(best, contenders_[i].engine->BestCost());
  }
  return best;
}

std::unique_ptr<meta::EngineCheckpoint> RaceEngine::Checkpoint() const {
  auto cp = std::make_unique<RaceCheckpoint>();
  cp->contenders.reserve(contenders_.size());
  for (const RaceContender& contender : contenders_) {
    cp->contenders.push_back(contender.engine->Checkpoint());
  }
  cp->states = states_;
  cp->live = live_;
  cp->rounds = rounds_;
  cp->status = status_;
  cp->report = report_;
  cp->recorded = recorded_;
  return cp;
}

void RaceEngine::Restore(const meta::EngineCheckpoint& checkpoint) {
  const auto* cp = dynamic_cast<const RaceCheckpoint*>(&checkpoint);
  if (cp == nullptr || cp->contenders.size() != contenders_.size()) {
    throw std::invalid_argument("RaceEngine: foreign checkpoint");
  }
  for (std::size_t i = 0; i < contenders_.size(); ++i) {
    contenders_[i].engine->Restore(*cp->contenders[i]);
  }
  states_ = cp->states;
  live_ = cp->live;
  rounds_ = cp->rounds;
  status_ = cp->status;
  report_ = cp->report;
  recorded_ = cp->recorded;
}

meta::EngineOutput RaceEngine::Finish() {
  const std::size_t winner = Leader();
  report_.winner = contenders_[winner].name;
  report_.rounds = rounds_;

  meta::EngineOutput out = contenders_[winner].engine->Finish();
  // Honest accounting: the race's cost in evaluations and modeled device
  // time is what ALL contenders burned, not just the winner.
  out.result.evaluations = 0;
  out.device_seconds = 0.0;
  for (const RaceContender& contender : contenders_) {
    const meta::EngineOutput part = contender.engine->Finish();
    out.result.evaluations += part.result.evaluations;
    out.device_seconds += part.device_seconds;
  }
  // A race is only "complete" when it ran to kDone; anything else —
  // deadline mid-race, Finish() on a still-running race — is truncated.
  out.result.stopped = status_ != meta::StepStatus::kDone;

  if (params_.features && status_ == meta::StepStatus::kDone &&
      !recorded_) {
    std::vector<std::string> names;
    names.reserve(contenders_.size());
    for (const RaceContender& contender : contenders_) {
      names.push_back(contender.name);
    }
    BanditPrior::Global().RecordWin(*params_.features, report_.winner,
                                    names);
    recorded_ = true;
  }
  return out;
}

std::unique_ptr<meta::Engine> MakeRaceEngine(
    std::vector<RaceContender> contenders, RaceParams params) {
  return std::make_unique<RaceEngine>(std::move(contenders),
                                      std::move(params));
}

}  // namespace cdd::portfolio

#pragma once
/// \file bandit.hpp
/// \brief Per-instance-feature prior over racing winners.
///
/// The racing portfolio (race.hpp) learns which engine tends to win on
/// which kind of instance: every finished race records its winner under a
/// coarse feature bucket — job count, due-date restrictiveness h, penalty
/// spread — and the next adaptive race orders (and truncates) its
/// contender list by the observed win rate in that bucket.  A plain
/// win-rate bandit with optimistic initialization: an engine never tried
/// on a bucket scores 1.0, so every contender gets raced at least once
/// before the prior starts narrowing the field.
///
/// The prior is in-process state (no persistence): it makes a long-lived
/// service adapt, and it deliberately makes adaptive races
/// non-reproducible across processes — which is why the serve layer only
/// caches and manifests races whose portfolio is pinned (see
/// serve::RacePortfolioPinned).

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/instance.hpp"

namespace cdd::portfolio {

/// Coarse, bucketed description of one instance — the bandit's context.
/// Buckets are deliberately wide: the prior needs to generalize across a
/// benchmark sweep, not memorize single instances.
struct InstanceFeatures {
  std::uint32_t n_bucket = 0;       ///< floor(log2(n))
  std::uint32_t h_bucket = 0;       ///< h = d / sum P_i in 0.2-wide buckets
  std::uint32_t spread_bucket = 0;  ///< floor(log2(max pen / min pen))
};

/// Computes the feature bucket of \p instance.
InstanceFeatures ComputeFeatures(const Instance& instance);

/// Packs the three buckets into one map key.
std::uint64_t FeatureKey(const InstanceFeatures& features);

/// Win-rate statistics of one (feature bucket, engine) arm.
struct ArmStats {
  std::uint64_t plays = 0;
  std::uint64_t wins = 0;
};

/// Thread-safe win-rate prior.  One process-wide instance (Global())
/// backs the serve layer; tests construct their own.
class BanditPrior {
 public:
  /// The process-wide prior the adaptive "race" engine records into.
  static BanditPrior& Global();

  /// Orders \p candidates by decreasing observed win rate on this bucket;
  /// an engine with no plays scores 1.0 (optimistic — it gets tried), and
  /// ties preserve the input order, so a fresh prior returns the input
  /// unchanged.
  std::vector<std::string> Rank(const InstanceFeatures& features,
                                std::vector<std::string> candidates) const;

  /// Records one finished race: every contender is played, the winner
  /// also wins.
  void RecordWin(const InstanceFeatures& features, std::string_view winner,
                 const std::vector<std::string>& contenders);

  /// Stats of one arm (zeros when never played) — for tests and tools.
  ArmStats Stats(const InstanceFeatures& features,
                 std::string_view engine) const;

 private:
  struct Arm {
    std::uint64_t key;
    std::string engine;
    ArmStats stats;
  };

  mutable std::mutex mutex_;
  std::vector<Arm> arms_;

  Arm* FindArm(std::uint64_t key, std::string_view engine);
  const Arm* FindArm(std::uint64_t key, std::string_view engine) const;
};

}  // namespace cdd::portfolio

#pragma once
/// \file race.hpp
/// \brief Convergence-driven racing meta-engine over resumable engines.
///
/// A race starts several contender engines on the same instance and
/// advances them in lockstep rounds: each round every live contender gets
/// a fixed Step slice, then contenders whose best-so-far cost is strictly
/// dominated by the round leader's are killed and their remaining budget
/// implicitly reallocates to the survivors (they keep receiving full
/// slices until done).  Survivors run to their complete native budget, so
/// a race's result is bit-identical to its winner's solo run — racing
/// only decides *which* engine gets to finish, never what that engine
/// computes.  That is what makes a pinned race deterministic: same
/// contenders + same slice => same kill schedule => same winner.
///
/// The race is itself a meta::Engine (Step unit = one scheduling round),
/// so it can be cached, preempted and checkpointed like any contender —
/// including mid-race, where a checkpoint snapshots every live
/// contender's state plus the kill bookkeeping.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "meta/engine.hpp"
#include "portfolio/bandit.hpp"

namespace cdd::portfolio {

/// One racing participant: a freshly constructed (not yet stepped)
/// resumable engine plus the registry name it came from.
struct RaceContender {
  std::string name;
  std::unique_ptr<meta::Engine> engine;
};

/// Racing knobs.  Both are result-determining for the race (they decide
/// the kill schedule, hence the winner).
struct RaceParams {
  /// Step units every live contender advances per round.  Units are
  /// engine-native (SA iterations, DPSO generations, BnB nodes, ...).
  std::uint64_t slice = 64;
  /// Rounds before the first kill — early best costs are noise, so the
  /// race lets every contender warm up before comparing convergence.
  std::uint64_t grace_rounds = 4;
  /// When set, the finished race records its winner into
  /// BanditPrior::Global() under this feature bucket, feeding the
  /// adaptive contender selection of future races.
  std::optional<InstanceFeatures> features;
};

/// What happened in one race — for benches and tests; the replayable
/// result lives in the winner's EngineOutput.
struct RaceReport {
  std::string winner;
  std::uint64_t rounds = 0;
  std::vector<std::string> killed;  ///< in kill order
};

/// The racing meta-engine.  Step(k) runs k scheduling rounds; Finish()
/// returns the winner's output with the whole race's work accounted in
/// `evaluations` and `device_seconds`.
class RaceEngine final : public meta::Engine {
 public:
  /// \p contenders must be non-empty; their engines must be freshly
  /// constructed (round 0 assumes no contender has stepped yet).
  RaceEngine(std::vector<RaceContender> contenders, RaceParams params);

  meta::StepStatus Step(std::uint64_t units) override;
  std::uint64_t Remaining() const override;
  Cost BestCost() const override;
  std::unique_ptr<meta::EngineCheckpoint> Checkpoint() const override;
  void Restore(const meta::EngineCheckpoint& checkpoint) override;
  meta::EngineOutput Finish() override;

  const RaceReport& report() const { return report_; }

 private:
  void RunRound();
  std::size_t Leader() const;

  RaceParams params_;
  std::vector<RaceContender> contenders_;
  std::vector<meta::StepStatus> states_;  ///< per contender
  std::vector<bool> live_;                ///< false once killed
  std::uint64_t rounds_ = 0;
  meta::StepStatus status_ = meta::StepStatus::kRunning;
  RaceReport report_;
  bool recorded_ = false;  ///< bandit win recorded (first Finish only)
};

/// Convenience factory matching the engine-registry signature style.
std::unique_ptr<meta::Engine> MakeRaceEngine(
    std::vector<RaceContender> contenders, RaceParams params);

}  // namespace cdd::portfolio

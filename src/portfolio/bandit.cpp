#include "portfolio/bandit.hpp"

#include <algorithm>
#include <cstddef>

namespace cdd::portfolio {

namespace {

std::uint32_t Log2Bucket(std::uint64_t value) {
  std::uint32_t bucket = 0;
  while (value > 1) {
    value >>= 1;
    ++bucket;
  }
  return bucket;
}

}  // namespace

InstanceFeatures ComputeFeatures(const Instance& instance) {
  InstanceFeatures features;
  const std::size_t n = instance.size();
  features.n_bucket = Log2Bucket(n == 0 ? 1 : n);

  const Time total = instance.total_processing_time();
  if (total > 0) {
    // h = d / sum P_i, the Biskup-Feldmann restrictiveness knob, in
    // 0.2-wide buckets capped at 5 (h >= 1 is the unrestricted regime).
    const double h = static_cast<double>(instance.due_date()) /
                     static_cast<double>(total);
    features.h_bucket =
        static_cast<std::uint32_t>(std::min(5.0, std::max(0.0, h / 0.2)));
  }

  Cost min_pen = 0;
  Cost max_pen = 0;
  for (std::size_t j = 0; j < instance.size(); ++j) {
    const Job& job = instance.job(j);
    const Cost lo = std::min(job.early, job.tardy);
    const Cost hi = std::max(job.early, job.tardy);
    if (j == 0 || lo < min_pen) min_pen = lo;
    if (j == 0 || hi > max_pen) max_pen = hi;
  }
  if (min_pen > 0) {
    features.spread_bucket =
        Log2Bucket(static_cast<std::uint64_t>(max_pen / min_pen));
  }
  return features;
}

std::uint64_t FeatureKey(const InstanceFeatures& features) {
  return (static_cast<std::uint64_t>(features.n_bucket) << 16) |
         (static_cast<std::uint64_t>(features.h_bucket) << 8) |
         static_cast<std::uint64_t>(features.spread_bucket);
}

BanditPrior& BanditPrior::Global() {
  static BanditPrior prior;
  return prior;
}

BanditPrior::Arm* BanditPrior::FindArm(std::uint64_t key,
                                       std::string_view engine) {
  for (Arm& arm : arms_) {
    if (arm.key == key && arm.engine == engine) return &arm;
  }
  return nullptr;
}

const BanditPrior::Arm* BanditPrior::FindArm(std::uint64_t key,
                                             std::string_view engine) const {
  for (const Arm& arm : arms_) {
    if (arm.key == key && arm.engine == engine) return &arm;
  }
  return nullptr;
}

std::vector<std::string> BanditPrior::Rank(
    const InstanceFeatures& features,
    std::vector<std::string> candidates) const {
  const std::uint64_t key = FeatureKey(features);
  std::vector<double> score(candidates.size(), 1.0);
  {
    const std::scoped_lock lock(mutex_);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (const Arm* arm = FindArm(key, candidates[i]);
          arm != nullptr && arm->stats.plays > 0) {
        score[i] = static_cast<double>(arm->stats.wins) /
                   static_cast<double>(arm->stats.plays);
      }
    }
  }
  std::vector<std::size_t> order(candidates.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return score[a] > score[b];
                   });
  std::vector<std::string> ranked;
  ranked.reserve(candidates.size());
  for (const std::size_t i : order) {
    ranked.push_back(std::move(candidates[i]));
  }
  return ranked;
}

void BanditPrior::RecordWin(const InstanceFeatures& features,
                            std::string_view winner,
                            const std::vector<std::string>& contenders) {
  const std::uint64_t key = FeatureKey(features);
  const std::scoped_lock lock(mutex_);
  for (const std::string& name : contenders) {
    Arm* arm = FindArm(key, name);
    if (arm == nullptr) {
      arms_.push_back(Arm{key, name, {}});
      arm = &arms_.back();
    }
    ++arm->stats.plays;
    if (name == winner) ++arm->stats.wins;
  }
}

ArmStats BanditPrior::Stats(const InstanceFeatures& features,
                            std::string_view engine) const {
  const std::scoped_lock lock(mutex_);
  const Arm* arm = FindArm(FeatureKey(features), engine);
  return arm == nullptr ? ArmStats{} : arm->stats;
}

}  // namespace cdd::portfolio

#include "parallel/detail.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "core/eval_raw.hpp"
#include "core/eval_simd.hpp"
#include "cudasim/atomics.hpp"
#include "parallel/kernels_raw.hpp"

namespace cdd::par::detail {

std::vector<JobId> MakeInitialSequences(std::uint32_t ensemble,
                                        std::int32_t n, std::uint64_t seed,
                                        const Sequence* base) {
  std::vector<JobId> host(static_cast<std::size_t>(ensemble) * n);
  for (std::uint32_t t = 0; t < ensemble; ++t) {
    JobId* row = host.data() + static_cast<std::size_t>(t) * n;
    rng::Philox4x32 rng =
        raw::MakeStream(seed, /*generation=*/0, raw::RngPhase::kInit, t);
    if (base == nullptr) {
      for (std::int32_t i = 0; i < n; ++i) row[i] = i;
      FisherYates(std::span<JobId>(row, static_cast<std::size_t>(n)), rng);
    } else {
      for (std::int32_t i = 0; i < n; ++i) row[i] = (*base)[i];
      if (t > 0) {
        std::uint32_t positions[8];
        JobId values[8];
        raw::PerturbRaw(row, n, 4, rng, positions, values);
      }
    }
  }
  return host;
}

void LaunchFitness(sim::Device& device, const DeviceProblem& problem,
                   const LaunchConfig& config, const CandidatePoolView& pool,
                   const char* kernel_name, PenaltyMemory memory) {
  const std::int32_t n = problem.n();
  const Time d = problem.due_date();
  const bool controllable = problem.controllable();
  const Time* proc = problem.proc();
  const Time* min_proc = problem.min_proc();
  const Cost* g_alpha = problem.alpha();
  const Cost* g_beta = problem.beta();
  const Cost* gamma = problem.gamma();

  const std::size_t shared_bytes = problem.shared_bytes();
  const bool use_shared =
      memory == PenaltyMemory::kShared &&
      shared_bytes <= device.properties().shared_mem_per_block;

  sim::LaunchOptions opts;
  opts.name = kernel_name;
  opts.cooperative = use_shared;  // the barrier guards the staging phase
  opts.shared_bytes = use_shared ? shared_bytes : 0;

  // Each block evaluates its own slice of the ensemble through the
  // dispatched batch evaluator (SIMD when the host supports it) straight
  // into the device-resident costs/pinned columns: thread 0 of the block
  // runs the batch kernel over the block's rows (SIMD within the block,
  // blocks across host workers under the host-parallel exec backend).
  // The kernel threads below charge exactly the memory traffic a
  // per-thread fused evaluation performs — the modeled device timing is
  // unchanged, and the results are bit-identical regardless of slicing
  // or exec backend because every evaluator computes exact integers
  // row-independently.
  assert(pool.current() &&
         "LaunchFitness: stale CandidatePoolView (pool swapped buffers)");

  // Staging model: pageable host pools (kHost/kNuma) bounce their rows to
  // the device before the kernel and their results back after it; pinned
  // host pools are DMA-able in place and device-resident pools are
  // already there, so neither fires a transfer.  The copies are modeled
  // (the simulator shares one address space); what matters is that the
  // H2D/D2H events and their modeled time land on the device ledger
  // exactly when a real GPU would pay them.
  const core::PoolTransferCost transfer = pool.transfer_cost();
  if (transfer.device_staging) {
    device.RecordH2D(static_cast<std::size_t>(pool.count) * pool.stride *
                     sizeof(JobId));
  }
  device.Launch(
      config.grid(), config.block(), opts, [=](sim::ThreadCtx& t) {
        if (t.linear_thread() == 0) {
          // Block-sliced evaluation: rows are disjoint per block, so
          // concurrent blocks never touch the same costs/pinned entries.
          const std::uint64_t first =
              static_cast<std::uint64_t>(t.linear_block()) *
              t.block_dim.count();
          if (first < pool.count) {
            const auto slice = static_cast<std::int32_t>(
                std::min<std::uint64_t>(t.block_dim.count(),
                                        pool.count - first));
            const JobId* rows =
                pool.seqs + first * static_cast<std::uint64_t>(pool.stride);
            std::int32_t* pin =
                pool.pinned == nullptr ? nullptr : pool.pinned + first;
            if (controllable) {
              cdd::raw::EvalUcddcpBatchDispatch(
                  n, d, rows, pool.stride, slice, proc, min_proc, g_alpha,
                  g_beta, gamma, pool.costs + first, pin);
            } else {
              cdd::raw::EvalCddBatchDispatch(n, d, rows, pool.stride,
                                             slice, proc, g_alpha, g_beta,
                                             pool.costs + first, pin);
            }
          }
        }
        if (use_shared) {
          // Cooperative staging: linear block => disjoint strided writes,
          // then one barrier before anyone reads (Section VI-A).
          Cost* s_alpha = t.shared_as<Cost>();
          Cost* s_beta = s_alpha + n;
          const auto tpb = static_cast<std::int32_t>(t.block_dim.count());
          for (std::int32_t i =
                   static_cast<std::int32_t>(t.linear_thread());
               i < n; i += tpb) {
            s_alpha[i] = g_alpha[i];
            s_beta[i] = g_beta[i];
          }
          t.syncthreads();
          t.charge(static_cast<std::uint64_t>(n) / t.block_dim.count() +
                   1);
        }
        const std::uint64_t tid = t.global_thread();
        if (tid >= pool.count) return;
        // Charge split: sequence/processing-time traffic is always global;
        // the two penalty streams go through the selected memory path.
        std::uint64_t other_units;
        std::uint64_t penalty_units;
        if (controllable) {
          other_units = 3 * static_cast<std::uint64_t>(n);
          penalty_units = 2 * static_cast<std::uint64_t>(n);
        } else {
          other_units = static_cast<std::uint64_t>(n);
          penalty_units = 2 * static_cast<std::uint64_t>(n);
        }
        t.charge(other_units);
        switch (memory) {
          case PenaltyMemory::kShared:
            if (use_shared) {
              t.charge_shared(penalty_units);
            } else {
              t.charge(penalty_units);  // fell back to global
            }
            break;
          case PenaltyMemory::kTexture:
            t.charge_texture(penalty_units);
            break;
          case PenaltyMemory::kGlobal:
            t.charge(penalty_units);
            break;
        }
        // costs/pinned were written by thread 0's slice evaluation above.
      });

  if (transfer.device_staging) {
    std::size_t result_bytes = pool.count * sizeof(Cost);
    if (pool.pinned != nullptr) {
      result_bytes += pool.count * sizeof(std::int32_t);
    }
    device.RecordD2H(result_bytes);
  }
}

void LaunchReduction(sim::Device& device, const LaunchConfig& config,
                     const Cost* costs, std::int64_t* packed_best,
                     const char* kernel_name, ReductionKind kind) {
  const std::uint32_t ensemble = config.ensemble();

  if (kind == ReductionKind::kAtomic) {
    // The paper's variant: every thread fires one atomicMin; contention is
    // serialized in L2 (modeled as per-thread work).
    sim::LaunchOptions opts;
    opts.name = kernel_name;
    device.Launch(config.grid(), config.block(), opts,
                  [=](sim::ThreadCtx& t) {
                    const std::uint64_t tid = t.global_thread();
                    if (tid >= ensemble) return;
                    sim::AtomicMin(
                        packed_best,
                        raw::PackCostThread(
                            costs[tid], static_cast<std::uint32_t>(tid)));
                    t.charge(2);
                    // Same-address atomics serialize in L2 ("the full
                    // process results in a sequential execution order",
                    // Section VI-D).  Thread 0 carries the queue's
                    // critical path so the latency bound of the timing
                    // model sees the serialization (~1/8 work unit per
                    // queued atomic).
                    if (tid == 0) t.charge(ensemble / 8 + 1);
                  });
    return;
  }

  // Tree variant: stage keys in shared memory, fold pairwise behind
  // barriers (log2(blockDim) rounds), one atomic per *block*.
  sim::LaunchOptions opts;
  opts.name = kernel_name;
  opts.cooperative = true;
  opts.shared_bytes = config.block_size * sizeof(std::int64_t);
  device.Launch(
      config.grid(), config.block(), opts, [=](sim::ThreadCtx& t) {
        std::int64_t* keys = t.shared_as<std::int64_t>();
        const std::uint32_t lt = t.linear_thread();
        const auto tpb = static_cast<std::uint32_t>(t.block_dim.count());
        const std::uint64_t tid = t.global_thread();
        keys[lt] = tid < ensemble
                       ? raw::PackCostThread(
                             costs[tid], static_cast<std::uint32_t>(tid))
                       : std::numeric_limits<std::int64_t>::max();
        t.syncthreads();
        // Round stride up to a power of two so odd block sizes fold
        // correctly (reads beyond tpb are guarded).
        std::uint32_t stride = 1;
        while (stride < tpb) stride <<= 1;
        for (stride >>= 1; stride > 0; stride >>= 1) {
          if (lt < stride && lt + stride < tpb) {
            keys[lt] = std::min(keys[lt], keys[lt + stride]);
          }
          t.syncthreads();
          t.charge_shared(1);
        }
        if (lt == 0) {
          sim::AtomicMin(packed_best, keys[0]);
          t.charge(2);
        }
      });
}

Sequence DownloadRow(const sim::DeviceBuffer<JobId>& seqs, std::int32_t n,
                     std::uint32_t thread) {
  Sequence row(static_cast<std::size_t>(n));
  seqs.CopyToHost(std::span<JobId>(row),
                  static_cast<std::size_t>(thread) * n);
  return row;
}

}  // namespace cdd::par::detail

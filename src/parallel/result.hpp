#pragma once
/// \file result.hpp
/// \brief Result record of one GPU-parallel metaheuristic run.

#include <vector>

#include "core/sequence.hpp"
#include "core/types.hpp"

namespace cdd::par {

/// Outcome of a parallel run on the simulated device.
struct GpuRunResult {
  Sequence best;                   ///< best sequence found by the ensemble
  Cost best_cost = kInfiniteCost;  ///< its objective value
  std::uint64_t evaluations = 0;   ///< fitness evaluations across all threads

  /// Modeled device time (kernels + host<->device transfers) of this run —
  /// the "GPU runtime incorporating all the memory transfers" the paper's
  /// speed-ups are computed from.
  double device_seconds = 0.0;
  /// Host wall-clock spent simulating (diagnostic only; not a GPU time).
  double wall_seconds = 0.0;
  /// True when the run was cut short by its StopToken (checked between
  /// generations); `best` is the ensemble best of the generations that ran.
  bool stopped = false;

  /// Best-known cost after every `trajectory_stride` generations (empty
  /// unless requested).
  std::vector<Cost> trajectory;
  /// Synchronous SA only: mean Hamming distance of the ensemble to the
  /// broadcast state at each temperature level (diversity diagnostic for
  /// the premature-convergence ablation).
  std::vector<double> diversity;
};

}  // namespace cdd::par

#pragma once
/// \file device_problem.hpp
/// \brief Device-resident problem data (the H2D uploads of Figure 9).
///
/// The instance is flattened to structure-of-arrays and copied to device
/// global memory once per solver run: processing times, earliness/tardiness
/// penalties, and for UCDDCP additionally the minimum processing times and
/// compression penalties.  The due date and job count travel through
/// constant memory "to benefit from its broadcast mechanism" (Section VI).

#include <cstdint>

#include "core/instance.hpp"
#include "cudasim/memory.hpp"

namespace cdd::par {

/// Instance data living on a simulated device.
class DeviceProblem {
 public:
  DeviceProblem(sim::Device& device, const Instance& instance);

  std::int32_t n() const { return n_; }
  Time due_date() const { return d_.value(); }
  bool controllable() const { return controllable_; }

  const Time* proc() const { return proc_.data(); }
  const Time* min_proc() const { return min_proc_.data(); }
  const Cost* alpha() const { return alpha_.data(); }
  const Cost* beta() const { return beta_.data(); }
  const Cost* gamma() const { return gamma_.data(); }

  /// Bytes needed to stage alpha and beta into block shared memory (the
  /// fitness kernel's layout: alpha[0..n) then beta[0..n)).
  std::size_t shared_bytes() const {
    return 2 * static_cast<std::size_t>(n_) * sizeof(Cost);
  }

  /// Upper bound on any sequence cost of this instance; used to seed
  /// reduction buffers and to verify that packed (cost, thread) reduction
  /// keys cannot overflow.
  Cost cost_upper_bound() const { return cost_bound_; }

 private:
  std::int32_t n_;
  bool controllable_;
  Cost cost_bound_;
  sim::DeviceBuffer<Time> proc_;
  sim::DeviceBuffer<Time> min_proc_;
  sim::DeviceBuffer<Cost> alpha_;
  sim::DeviceBuffer<Cost> beta_;
  sim::DeviceBuffer<Cost> gamma_;
  sim::ConstantBuffer<Time> d_;
  sim::ConstantBuffer<std::int32_t> n_const_;
};

}  // namespace cdd::par

#pragma once
/// \file kernels_raw.hpp
/// \brief Allocation-free "device function" helpers shared by the parallel
/// kernels: per-thread perturbation, crossovers on raw arrays, and the
/// packed keys of the atomic-min reduction.

#include <cstdint>

#include "core/sequence.hpp"
#include "core/types.hpp"
#include "rng/philox.hpp"

namespace cdd::par::raw {

/// Number of reserved RNG phases per generation (perturbation, acceptance,
/// dpso-update).  Stream ids are ((generation * kRngPhases + phase) << 32)
/// | thread, so every (generation, phase, thread) triple owns a private
/// Philox stream: consumption never overlaps and a thread's stream sequence
/// is independent of the ensemble size (the inclusion property tested in
/// tests/parallel).
inline constexpr std::uint64_t kRngPhases = 4;

enum class RngPhase : std::uint64_t {
  kInit = 0,
  kPerturb = 1,
  kAccept = 2,
  kDpsoUpdate = 3,
};

/// Philox stream for (seed, generation, phase, thread).
inline rng::Philox4x32 MakeStream(std::uint64_t seed,
                                  std::uint64_t generation, RngPhase phase,
                                  std::uint32_t thread) {
  const std::uint64_t stream =
      ((generation * kRngPhases + static_cast<std::uint64_t>(phase)) << 32) |
      thread;
  return rng::Philox4x32(seed, stream);
}

/// Partial Fisher–Yates on a raw sequence; \p positions and \p values are
/// per-thread scratch of at least \p pert elements (the kernels use small
/// stack arrays).
inline void PerturbRaw(JobId* seq, std::int32_t n, std::uint32_t pert,
                       rng::Philox4x32& rng, std::uint32_t* positions,
                       JobId* values) {
  if (n < 2 || pert < 2) return;
  if (pert > static_cast<std::uint32_t>(n)) {
    pert = static_cast<std::uint32_t>(n);
  }
  std::uint32_t chosen = 0;
  while (chosen < pert) {
    const std::uint32_t p =
        cdd::UniformBelow(rng, static_cast<std::uint32_t>(n));
    bool duplicate = false;
    for (std::uint32_t k = 0; k < chosen; ++k) {
      if (positions[k] == p) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) positions[chosen++] = p;
  }
  for (std::uint32_t k = 0; k < pert; ++k) values[k] = seq[positions[k]];
  for (std::uint32_t i = pert; i > 1; --i) {
    const std::uint32_t j = cdd::UniformBelow(rng, i);
    const JobId tmp = values[i - 1];
    values[i - 1] = values[j];
    values[j] = tmp;
  }
  for (std::uint32_t k = 0; k < pert; ++k) seq[positions[k]] = values[k];
}

/// One-point crossover on raw arrays.  \p used is n bytes of per-thread
/// scratch; \p child must not alias the parents.
inline void OnePointCrossoverRaw(std::int32_t n, const JobId* p1,
                                 const JobId* p2, std::uint32_t cut,
                                 JobId* child, std::uint8_t* used) {
  for (std::int32_t i = 0; i < n; ++i) used[i] = 0;
  for (std::uint32_t k = 0; k < cut; ++k) {
    child[k] = p1[k];
    used[p1[k]] = 1;
  }
  std::int32_t write = static_cast<std::int32_t>(cut);
  for (std::int32_t i = 0; i < n && write < n; ++i) {
    if (!used[p2[i]]) child[write++] = p2[i];
  }
}

/// Two-point crossover on raw arrays: child keeps p1[a..b), the remaining
/// positions (0..a) then [b..n) are filled with p2's leftover jobs in order.
inline void TwoPointCrossoverRaw(std::int32_t n, const JobId* p1,
                                 const JobId* p2, std::uint32_t a,
                                 std::uint32_t b, JobId* child,
                                 std::uint8_t* used) {
  for (std::int32_t i = 0; i < n; ++i) used[i] = 0;
  for (std::uint32_t k = a; k < b; ++k) {
    child[k] = p1[k];
    used[p1[k]] = 1;
  }
  std::int32_t write = 0;
  for (std::int32_t i = 0; i < n; ++i) {
    if (used[p2[i]]) continue;
    if (write == static_cast<std::int32_t>(a)) {
      write = static_cast<std::int32_t>(b);
    }
    if (write >= n) break;
    child[write++] = p2[i];
  }
}

/// Random swap of two distinct positions (DPSO's F1 operator).
inline void SwapRaw(JobId* seq, std::int32_t n, rng::Philox4x32& rng) {
  if (n < 2) return;
  const std::uint32_t i =
      cdd::UniformBelow(rng, static_cast<std::uint32_t>(n));
  std::uint32_t j =
      cdd::UniformBelow(rng, static_cast<std::uint32_t>(n - 1));
  if (j >= i) ++j;
  const JobId tmp = seq[i];
  seq[i] = seq[j];
  seq[j] = tmp;
}

// --- packed (cost, thread) reduction keys --------------------------------
// The reduction kernel performs one atomicMin per thread on a 64-bit key
// (cost in the high bits, thread id in the low 20), mirroring the paper's
// single atomic minimization in L2 (Section VI-D).  The cost must fit in
// 43 bits; DeviceProblem::cost_upper_bound() is checked against this at
// solver construction.

inline constexpr int kThreadBits = 20;
inline constexpr std::uint64_t kThreadMask = (1ull << kThreadBits) - 1;
inline constexpr Cost kMaxPackableCost = Cost{1} << 42;

inline std::int64_t PackCostThread(Cost cost, std::uint32_t thread) {
  return static_cast<std::int64_t>(
      (static_cast<std::uint64_t>(cost) << kThreadBits) |
      (thread & kThreadMask));
}
inline Cost UnpackCost(std::int64_t packed) {
  return static_cast<Cost>(static_cast<std::uint64_t>(packed) >>
                           kThreadBits);
}
inline std::uint32_t UnpackThread(std::int64_t packed) {
  return static_cast<std::uint32_t>(static_cast<std::uint64_t>(packed) &
                                    kThreadMask);
}

}  // namespace cdd::par::raw

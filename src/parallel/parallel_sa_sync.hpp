#pragma once
/// \file parallel_sa_sync.hpp
/// \brief Synchronous GPU-parallel Simulated Annealing (Section V-B,
/// Figure 8) — implemented for the async-vs-sync ablation.
///
/// Every thread simulates a Markov chain of fixed length M at a constant
/// temperature; after each temperature level the ensemble's best current
/// state is reduced and broadcast to every thread as the next level's
/// starting state.  The paper rejects this variant because of premature
/// convergence; RunParallelSaSync exposes a per-level diversity metric so
/// bench_ablation_sync_vs_async can show exactly that collapse.

#include <cstdint>
#include <memory>

#include "core/instance.hpp"
#include "core/stop_token.hpp"
#include "cudasim/device.hpp"
#include "meta/engine.hpp"
#include "meta/sa.hpp"  // NeighborhoodMode
#include "parallel/launch_config.hpp"
#include "parallel/result.hpp"

namespace cdd::par {

/// Parameters of the synchronous parallel SA.
struct ParallelSaSyncParams {
  LaunchConfig config{};
  std::uint32_t temperature_levels = 100;  ///< outer iterations t (Fig 8)
  std::uint32_t chain_length = 10;         ///< Markov chain length M
  double mu = 0.88;
  std::uint32_t pert = 4;
  meta::NeighborhoodMode neighborhood =
      meta::NeighborhoodMode::kSwapWithPeriodicShuffle;
  std::uint32_t shuffle_period = 10;
  double initial_temperature = 0.0;  ///< <= 0: Salamon rule
  std::uint64_t temp_samples = 5000;
  std::uint64_t seed = 1;
  /// Record the ensemble's mean Hamming distance to the broadcast state at
  /// every temperature level into GpuRunResult::diversity.
  bool record_diversity = false;
  /// Cooperative cancellation, polled between temperature levels.
  StopToken stop{};
};

/// Runs the synchronous parallel SA.
GpuRunResult RunParallelSaSync(sim::Device& device, const Instance& instance,
                               const ParallelSaSyncParams& params);

/// Creates a resumable synchronous parallel-SA engine on \p device (not
/// owned).  Step units are temperature levels (each a full M-length chain
/// plus the reduce/broadcast exchange — the natural pause point of Fig 8).
std::unique_ptr<meta::Engine> MakeParallelSaSyncEngine(
    sim::Device& device, const Instance& instance,
    const ParallelSaSyncParams& params);

}  // namespace cdd::par

#pragma once
/// \file parallel_dpso.hpp
/// \brief Asynchronous GPU-parallel Discrete PSO (Sections VI-E, VII).
///
/// The swarm lives in device global memory, one particle per simulated CUDA
/// thread.  Each generation launches: the position-update kernel (Pan et
/// al.'s F1/F2/F3 composition with per-thread Philox streams), the fitness
/// kernel shared with SA, a particle-best update kernel, the atomic-min
/// reduction, and a swarm-best publish kernel — then synchronizes, mirroring
/// the SA pipeline as the paper describes ("the parallelization approach
/// remains the same as for SA").

#include <cstdint>
#include <memory>

#include "core/instance.hpp"
#include "core/stop_token.hpp"
#include "cudasim/device.hpp"
#include "meta/engine.hpp"
#include "parallel/launch_config.hpp"
#include "parallel/result.hpp"

namespace cdd::par {

/// Parameters of the parallel DPSO (defaults mirror the paper's setup:
/// same geometry and generation counts as SA).
struct ParallelDpsoParams {
  LaunchConfig config{};
  std::uint64_t generations = 1000;
  double w = 0.8;   ///< probability of the swap operator F1
  double c1 = 0.8;  ///< probability of the one-point crossover F2
  double c2 = 0.8;  ///< probability of the two-point crossover F3
  /// Seed the ensemble from the V-shape constructive heuristic instead of
  /// uniform random permutations (thread 0 exact, others diversified).
  bool vshape_init = false;
  std::uint64_t seed = 1;
  std::uint32_t trajectory_stride = 0;
  /// Cooperative cancellation, polled between generations.
  StopToken stop{};
};

/// Runs the asynchronous parallel DPSO for \p instance on \p device.
GpuRunResult RunParallelDpso(sim::Device& device, const Instance& instance,
                             const ParallelDpsoParams& params);

/// Creates a resumable parallel-DPSO engine on \p device (not owned).
/// Step units are generations; a checkpoint snapshots the swarm buffers.
std::unique_ptr<meta::Engine> MakeParallelDpsoEngine(
    sim::Device& device, const Instance& instance,
    const ParallelDpsoParams& params);

}  // namespace cdd::par

#include "parallel/parallel_sa_sync.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>

#include "cudasim/atomics.hpp"
#include "cudasim/memory.hpp"
#include "meta/objective.hpp"
#include "meta/temperature.hpp"
#include "parallel/detail.hpp"
#include "parallel/device_problem.hpp"
#include "parallel/kernels_raw.hpp"

namespace cdd::par {

namespace {
constexpr std::uint32_t kMaxPert = 32;
}

GpuRunResult RunParallelSaSync(sim::Device& device, const Instance& instance,
                               const ParallelSaSyncParams& params) {
  const auto t_start = std::chrono::steady_clock::now();
  const double clock_at_start = device.sim_time_s();

  params.config.Validate(device);
  if (params.pert > kMaxPert) {
    throw std::invalid_argument("RunParallelSaSync: pert exceeds 32");
  }
  const std::uint32_t ensemble = params.config.ensemble();

  const meta::SequenceObjective objective =
      meta::SequenceObjective::ForInstance(instance);
  const double t0 =
      params.initial_temperature > 0.0
          ? params.initial_temperature
          : meta::InitialTemperature(objective, params.temp_samples,
                                     params.seed);

  DeviceProblem problem(device, instance);
  if (problem.cost_upper_bound() >= raw::kMaxPackableCost) {
    throw std::invalid_argument(
        "RunParallelSaSync: instance costs exceed the packed key range");
  }
  const std::int32_t n = problem.n();

  sim::DeviceBuffer<JobId> curr(device,
                                static_cast<std::size_t>(ensemble) * n);
  sim::DeviceBuffer<JobId> cand(device,
                                static_cast<std::size_t>(ensemble) * n);
  sim::DeviceBuffer<JobId> broadcast(device, static_cast<std::size_t>(n));
  sim::DeviceBuffer<Cost> curr_cost(device, ensemble);
  sim::DeviceBuffer<Cost> cand_cost(device, ensemble);
  sim::DeviceBuffer<std::int64_t> packed_level(device, 1);
  sim::DeviceBuffer<std::int64_t> packed_best(device, 1);
  sim::DeviceBuffer<std::int64_t> distance_sum(device, 1);
  packed_best.Fill(raw::PackCostThread(problem.cost_upper_bound(), 0));

  {
    const std::vector<JobId> init =
        detail::MakeInitialSequences(ensemble, n, params.seed);
    curr.CopyFromHost(init);
  }

  GpuRunResult result;
  const CandidatePoolView curr_pool =
      detail::DeviceView(curr.data(), curr_cost.data(), n, ensemble);
  const CandidatePoolView cand_pool =
      detail::DeviceView(cand.data(), cand_cost.data(), n, ensemble);
  detail::LaunchFitness(device, problem, params.config, curr_pool,
                        "sync_fitness");
  result.evaluations += ensemble;

  const std::uint64_t seed = params.seed;
  const std::uint32_t pert = params.pert;
  JobId* d_curr = curr.data();
  JobId* d_cand = cand.data();
  JobId* d_bcast = broadcast.data();
  Cost* d_curr_cost = curr_cost.data();
  Cost* d_cand_cost = cand_cost.data();
  std::int64_t* d_packed_level = packed_level.data();
  std::int64_t* d_packed_best = packed_best.data();
  std::int64_t* d_distance = distance_sum.data();
  const Cost bound = problem.cost_upper_bound();

  for (std::uint32_t level = 0; level < params.temperature_levels; ++level) {
    if (params.stop.stop_requested()) {
      result.stopped = true;
      break;
    }
    const double temp = std::max(
        t0 * std::pow(params.mu, static_cast<double>(level)), 1e-300);

    // --- constant-temperature Markov chain of length M --------------------
    for (std::uint32_t m = 0; m < params.chain_length; ++m) {
      const std::uint64_t g =
          static_cast<std::uint64_t>(level) * params.chain_length + m + 1;
      const bool shuffle_now =
          params.neighborhood ==
              meta::NeighborhoodMode::kShuffleEveryIteration ||
          (g - 1) % std::max(params.shuffle_period, 1u) == 0;
      {
        sim::LaunchOptions opts;
        opts.name = "sync_perturbation";
        device.Launch(
            params.config.grid(), params.config.block(), opts,
            [=](sim::ThreadCtx& t) {
              const std::uint64_t tid = t.global_thread();
              if (tid >= ensemble) return;
              const JobId* src = d_curr + tid * n;
              JobId* dst = d_cand + tid * n;
              for (std::int32_t i = 0; i < n; ++i) dst[i] = src[i];
              rng::Philox4x32 rng =
                  raw::MakeStream(seed, g, raw::RngPhase::kPerturb,
                                  static_cast<std::uint32_t>(tid));
              if (shuffle_now) {
                std::uint32_t positions[kMaxPert];
                JobId values[kMaxPert];
                raw::PerturbRaw(dst, n, pert, rng, positions, values);
                t.charge(static_cast<std::uint64_t>(n) + 8 * pert);
              } else {
                raw::SwapRaw(dst, n, rng);
                t.charge(static_cast<std::uint64_t>(n) + 2);
              }
            });
      }
      detail::LaunchFitness(device, problem, params.config, cand_pool,
                            "sync_fitness");
      result.evaluations += ensemble;
      {
        sim::LaunchOptions opts;
        opts.name = "sync_acceptance";
        device.Launch(
            params.config.grid(), params.config.block(), opts,
            [=](sim::ThreadCtx& t) {
              const std::uint64_t tid = t.global_thread();
              if (tid >= ensemble) return;
              rng::Philox4x32 rng =
                  raw::MakeStream(seed, g, raw::RngPhase::kAccept,
                                  static_cast<std::uint32_t>(tid));
              const Cost e = d_curr_cost[tid];
              const Cost e_new = d_cand_cost[tid];
              const double accept =
                  std::exp(static_cast<double>(e - e_new) / temp);
              if (accept >= static_cast<double>(rng.NextUniform())) {
                JobId* cur = d_curr + tid * n;
                const JobId* cnd = d_cand + tid * n;
                for (std::int32_t i = 0; i < n; ++i) cur[i] = cnd[i];
                d_curr_cost[tid] = e_new;
                t.charge(static_cast<std::uint64_t>(n));
              }
              t.charge(4);
            });
      }
      device.Synchronize();
    }

    // --- reduce the level's best current state ----------------------------
    packed_level.Fill(raw::PackCostThread(bound, 0));
    detail::LaunchReduction(device, params.config, d_curr_cost,
                            d_packed_level, "sync_reduction");
    {
      // The winning thread publishes its state for the broadcast.
      sim::LaunchOptions opts;
      opts.name = "sync_select";
      device.Launch(params.config.grid(), params.config.block(), opts,
                    [=](sim::ThreadCtx& t) {
                      const std::uint64_t tid = t.global_thread();
                      if (tid >= ensemble) return;
                      const std::int64_t packed = *d_packed_level;
                      if (raw::UnpackThread(packed) != tid) return;
                      const JobId* src = d_curr + tid * n;
                      for (std::int32_t i = 0; i < n; ++i) {
                        d_bcast[i] = src[i];
                      }
                      sim::AtomicMin(d_packed_best, packed);
                      t.charge(static_cast<std::uint64_t>(n));
                    });
    }

    // --- optional diversity metric (before states are overwritten) --------
    if (params.record_diversity) {
      distance_sum.Fill(0);
      sim::LaunchOptions opts;
      opts.name = "sync_diversity";
      device.Launch(params.config.grid(), params.config.block(), opts,
                    [=](sim::ThreadCtx& t) {
                      const std::uint64_t tid = t.global_thread();
                      if (tid >= ensemble) return;
                      const JobId* mine = d_curr + tid * n;
                      std::int64_t dist = 0;
                      for (std::int32_t i = 0; i < n; ++i) {
                        dist += (mine[i] != d_bcast[i]) ? 1 : 0;
                      }
                      sim::AtomicAdd(d_distance, dist);
                      t.charge(static_cast<std::uint64_t>(n));
                    });
      std::int64_t total = 0;
      distance_sum.CopyToHost(std::span<std::int64_t>(&total, 1));
      result.diversity.push_back(static_cast<double>(total) /
                                 static_cast<double>(ensemble));
    }

    // --- broadcast s_min to every thread (Fig 8's state exchange) ---------
    {
      sim::LaunchOptions opts;
      opts.name = "sync_broadcast";
      device.Launch(params.config.grid(), params.config.block(), opts,
                    [=](sim::ThreadCtx& t) {
                      const std::uint64_t tid = t.global_thread();
                      if (tid >= ensemble) return;
                      const Cost best = raw::UnpackCost(*d_packed_level);
                      JobId* cur = d_curr + tid * n;
                      for (std::int32_t i = 0; i < n; ++i) {
                        cur[i] = d_bcast[i];
                      }
                      d_curr_cost[tid] = best;
                      t.charge(static_cast<std::uint64_t>(n));
                    });
    }
    device.Synchronize();

    // Track the best-ever broadcast state on the host: later levels can
    // regress (metropolis accepts uphill moves), so the final broadcast is
    // not necessarily the best one seen.
    std::int64_t level_packed = 0;
    packed_level.CopyToHost(std::span<std::int64_t>(&level_packed, 1));
    const Cost level_cost = raw::UnpackCost(level_packed);
    if (level_cost < result.best_cost) {
      result.best_cost = level_cost;
      Sequence state(static_cast<std::size_t>(n));
      broadcast.CopyToHost(std::span<JobId>(state));
      result.best = std::move(state);
    }
  }

  result.device_seconds = device.sim_time_s() - clock_at_start;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    t_start)
          .count();
  return result;
}

}  // namespace cdd::par

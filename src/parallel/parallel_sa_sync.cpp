#include "parallel/parallel_sa_sync.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "cudasim/atomics.hpp"
#include "cudasim/memory.hpp"
#include "meta/objective.hpp"
#include "meta/temperature.hpp"
#include "parallel/detail.hpp"
#include "parallel/device_problem.hpp"
#include "parallel/kernels_raw.hpp"

namespace cdd::par {

namespace {
constexpr std::uint32_t kMaxPert = 32;

using Clock = std::chrono::steady_clock;

/// State at a temperature-level boundary.  Every level ends with the
/// broadcast that overwrites all current states, so curr/curr_cost (plus
/// the host-tracked best and the AtomicMin accumulator) are the whole
/// ensemble state; cand and the per-level buffers are scratch.  The
/// temperature is a pure function of the level index — no accumulator.
struct ParallelSaSyncCheckpoint final : meta::EngineCheckpoint {
  std::vector<JobId> curr;
  std::vector<Cost> curr_cost;
  std::int64_t packed_best = 0;
  std::uint32_t next_level = 0;
  GpuRunResult result;
  meta::StepStatus status = meta::StepStatus::kRunning;
  double elapsed = 0.0;
  double consumed_device = 0.0;
};

double ValidateAndResolveT0(sim::Device& device, const Instance& instance,
                            const ParallelSaSyncParams& params) {
  params.config.Validate(device);
  if (params.pert > kMaxPert) {
    throw std::invalid_argument("RunParallelSaSync: pert exceeds 32");
  }
  const meta::SequenceObjective objective =
      meta::SequenceObjective::ForInstance(instance);
  return params.initial_temperature > 0.0
             ? params.initial_temperature
             : meta::InitialTemperature(objective, params.temp_samples,
                                        params.seed);
}

struct SaSyncDeviceState {
  DeviceProblem problem;
  sim::DeviceBuffer<JobId> curr;
  sim::DeviceBuffer<JobId> cand;
  sim::DeviceBuffer<JobId> broadcast;
  sim::DeviceBuffer<Cost> curr_cost;
  sim::DeviceBuffer<Cost> cand_cost;
  sim::DeviceBuffer<std::int64_t> packed_level;
  sim::DeviceBuffer<std::int64_t> packed_best;
  sim::DeviceBuffer<std::int64_t> distance_sum;

  SaSyncDeviceState(sim::Device& device, const Instance& instance,
                    std::uint32_t ensemble)
      : problem(device, instance),
        curr(device, static_cast<std::size_t>(ensemble) * problem.n()),
        cand(device, static_cast<std::size_t>(ensemble) * problem.n()),
        broadcast(device, static_cast<std::size_t>(problem.n())),
        curr_cost(device, ensemble),
        cand_cost(device, ensemble),
        packed_level(device, 1),
        packed_best(device, 1),
        distance_sum(device, 1) {}
};

class ParallelSaSyncEngine final : public meta::Engine {
 public:
  ParallelSaSyncEngine(sim::Device& device, const Instance& instance,
                       const ParallelSaSyncParams& params)
      : device_(device),
        params_(params),
        clock_at_start_(device.sim_time_s()),
        t0_(ValidateAndResolveT0(device, instance, params)) {
    const auto t_start = Clock::now();
    const std::uint32_t ensemble = params_.config.ensemble();

    state_ = std::make_unique<SaSyncDeviceState>(device_, instance,
                                                 ensemble);
    if (state_->problem.cost_upper_bound() >= raw::kMaxPackableCost) {
      throw std::invalid_argument(
          "RunParallelSaSync: instance costs exceed the packed key range");
    }
    const std::int32_t n = state_->problem.n();
    state_->packed_best.Fill(
        raw::PackCostThread(state_->problem.cost_upper_bound(), 0));

    {
      const std::vector<JobId> init =
          detail::MakeInitialSequences(ensemble, n, params_.seed);
      state_->curr.CopyFromHost(init);
    }

    const CandidatePoolView curr_pool = detail::DeviceView(
        state_->curr.data(), state_->curr_cost.data(), n, ensemble);
    detail::LaunchFitness(device_, state_->problem, params_.config,
                          curr_pool, "sync_fitness");
    result_.evaluations += ensemble;

    if (params_.temperature_levels == 0) status_ = meta::StepStatus::kDone;
    elapsed_ += std::chrono::duration<double>(Clock::now() - t_start).count();
  }

  meta::StepStatus Step(std::uint64_t units) override {
    if (status_ != meta::StepStatus::kRunning || units == 0) return status_;
    const auto t_start = Clock::now();
    const std::uint32_t ensemble = params_.config.ensemble();
    const std::int32_t n = state_->problem.n();
    const std::uint64_t seed = params_.seed;
    const std::uint32_t pert = params_.pert;
    JobId* d_curr = state_->curr.data();
    JobId* d_cand = state_->cand.data();
    JobId* d_bcast = state_->broadcast.data();
    Cost* d_curr_cost = state_->curr_cost.data();
    Cost* d_cand_cost = state_->cand_cost.data();
    std::int64_t* d_packed_level = state_->packed_level.data();
    std::int64_t* d_packed_best = state_->packed_best.data();
    std::int64_t* d_distance = state_->distance_sum.data();
    const Cost bound = state_->problem.cost_upper_bound();
    const CandidatePoolView cand_pool =
        detail::DeviceView(d_cand, d_cand_cost, n, ensemble);

    const std::uint32_t last =
        level_ + static_cast<std::uint32_t>(std::min<std::uint64_t>(
                     units, params_.temperature_levels - level_));
    for (; level_ < last; ++level_) {
      const std::uint32_t level = level_;
      if (params_.stop.stop_requested()) {
        result_.stopped = true;
        status_ = meta::StepStatus::kStopped;
        break;
      }
      const double temp = std::max(
          t0_ * std::pow(params_.mu, static_cast<double>(level)), 1e-300);

      // --- constant-temperature Markov chain of length M ------------------
      for (std::uint32_t m = 0; m < params_.chain_length; ++m) {
        const std::uint64_t g =
            static_cast<std::uint64_t>(level) * params_.chain_length + m + 1;
        const bool shuffle_now =
            params_.neighborhood ==
                meta::NeighborhoodMode::kShuffleEveryIteration ||
            (g - 1) % std::max(params_.shuffle_period, 1u) == 0;
        {
          sim::LaunchOptions opts;
          opts.name = "sync_perturbation";
          device_.Launch(
              params_.config.grid(), params_.config.block(), opts,
              [=](sim::ThreadCtx& t) {
                const std::uint64_t tid = t.global_thread();
                if (tid >= ensemble) return;
                const JobId* src = d_curr + tid * n;
                JobId* dst = d_cand + tid * n;
                for (std::int32_t i = 0; i < n; ++i) dst[i] = src[i];
                rng::Philox4x32 rng =
                    raw::MakeStream(seed, g, raw::RngPhase::kPerturb,
                                    static_cast<std::uint32_t>(tid));
                if (shuffle_now) {
                  std::uint32_t positions[kMaxPert];
                  JobId values[kMaxPert];
                  raw::PerturbRaw(dst, n, pert, rng, positions, values);
                  t.charge(static_cast<std::uint64_t>(n) + 8 * pert);
                } else {
                  raw::SwapRaw(dst, n, rng);
                  t.charge(static_cast<std::uint64_t>(n) + 2);
                }
              });
        }
        detail::LaunchFitness(device_, state_->problem, params_.config,
                              cand_pool, "sync_fitness");
        result_.evaluations += ensemble;
        {
          sim::LaunchOptions opts;
          opts.name = "sync_acceptance";
          device_.Launch(
              params_.config.grid(), params_.config.block(), opts,
              [=](sim::ThreadCtx& t) {
                const std::uint64_t tid = t.global_thread();
                if (tid >= ensemble) return;
                rng::Philox4x32 rng =
                    raw::MakeStream(seed, g, raw::RngPhase::kAccept,
                                    static_cast<std::uint32_t>(tid));
                const Cost e = d_curr_cost[tid];
                const Cost e_new = d_cand_cost[tid];
                const double accept =
                    std::exp(static_cast<double>(e - e_new) / temp);
                if (accept >= static_cast<double>(rng.NextUniform())) {
                  JobId* cur = d_curr + tid * n;
                  const JobId* cnd = d_cand + tid * n;
                  for (std::int32_t i = 0; i < n; ++i) cur[i] = cnd[i];
                  d_curr_cost[tid] = e_new;
                  t.charge(static_cast<std::uint64_t>(n));
                }
                t.charge(4);
              });
        }
        device_.Synchronize();
      }

      // --- reduce the level's best current state --------------------------
      state_->packed_level.Fill(raw::PackCostThread(bound, 0));
      detail::LaunchReduction(device_, params_.config, d_curr_cost,
                              d_packed_level, "sync_reduction");
      {
        // The winning thread publishes its state for the broadcast.
        sim::LaunchOptions opts;
        opts.name = "sync_select";
        device_.Launch(params_.config.grid(), params_.config.block(), opts,
                       [=](sim::ThreadCtx& t) {
                         const std::uint64_t tid = t.global_thread();
                         if (tid >= ensemble) return;
                         const std::int64_t packed = *d_packed_level;
                         if (raw::UnpackThread(packed) != tid) return;
                         const JobId* src = d_curr + tid * n;
                         for (std::int32_t i = 0; i < n; ++i) {
                           d_bcast[i] = src[i];
                         }
                         sim::AtomicMin(d_packed_best, packed);
                         t.charge(static_cast<std::uint64_t>(n));
                       });
      }

      // --- optional diversity metric (before states are overwritten) ------
      if (params_.record_diversity) {
        state_->distance_sum.Fill(0);
        sim::LaunchOptions opts;
        opts.name = "sync_diversity";
        device_.Launch(params_.config.grid(), params_.config.block(), opts,
                       [=](sim::ThreadCtx& t) {
                         const std::uint64_t tid = t.global_thread();
                         if (tid >= ensemble) return;
                         const JobId* mine = d_curr + tid * n;
                         std::int64_t dist = 0;
                         for (std::int32_t i = 0; i < n; ++i) {
                           dist += (mine[i] != d_bcast[i]) ? 1 : 0;
                         }
                         sim::AtomicAdd(d_distance, dist);
                         t.charge(static_cast<std::uint64_t>(n));
                       });
        std::int64_t total = 0;
        state_->distance_sum.CopyToHost(std::span<std::int64_t>(&total, 1));
        result_.diversity.push_back(static_cast<double>(total) /
                                    static_cast<double>(ensemble));
      }

      // --- broadcast s_min to every thread (Fig 8's state exchange) -------
      {
        sim::LaunchOptions opts;
        opts.name = "sync_broadcast";
        device_.Launch(params_.config.grid(), params_.config.block(), opts,
                       [=](sim::ThreadCtx& t) {
                         const std::uint64_t tid = t.global_thread();
                         if (tid >= ensemble) return;
                         const Cost best =
                             raw::UnpackCost(*d_packed_level);
                         JobId* cur = d_curr + tid * n;
                         for (std::int32_t i = 0; i < n; ++i) {
                           cur[i] = d_bcast[i];
                         }
                         d_curr_cost[tid] = best;
                         t.charge(static_cast<std::uint64_t>(n));
                       });
      }
      device_.Synchronize();

      // Track the best-ever broadcast state on the host: later levels can
      // regress (metropolis accepts uphill moves), so the final broadcast
      // is not necessarily the best one seen.
      std::int64_t level_packed = 0;
      state_->packed_level.CopyToHost(
          std::span<std::int64_t>(&level_packed, 1));
      const Cost level_cost = raw::UnpackCost(level_packed);
      if (level_cost < result_.best_cost) {
        result_.best_cost = level_cost;
        Sequence state(static_cast<std::size_t>(n));
        state_->broadcast.CopyToHost(std::span<JobId>(state));
        result_.best = std::move(state);
      }
    }
    if (status_ == meta::StepStatus::kRunning &&
        level_ == params_.temperature_levels) {
      status_ = meta::StepStatus::kDone;
    }
    elapsed_ += std::chrono::duration<double>(Clock::now() - t_start).count();
    return status_;
  }

  std::uint64_t Remaining() const override {
    return status_ == meta::StepStatus::kRunning
               ? params_.temperature_levels - level_
               : 0;
  }

  Cost BestCost() const override { return result_.best_cost; }

  std::unique_ptr<meta::EngineCheckpoint> Checkpoint() const override {
    auto cp = std::make_unique<ParallelSaSyncCheckpoint>();
    cp->curr.assign(state_->curr.data(),
                    state_->curr.data() + state_->curr.size());
    cp->curr_cost.assign(state_->curr_cost.data(),
                         state_->curr_cost.data() + state_->curr_cost.size());
    cp->packed_best = *state_->packed_best.data();
    cp->next_level = level_;
    cp->result = result_;
    cp->status = status_;
    cp->elapsed = elapsed_;
    cp->consumed_device = device_.sim_time_s() - clock_at_start_;
    return cp;
  }

  void Restore(const meta::EngineCheckpoint& checkpoint) override {
    const auto* cp =
        dynamic_cast<const ParallelSaSyncCheckpoint*>(&checkpoint);
    if (cp == nullptr || cp->curr.size() != state_->curr.size()) {
      throw std::invalid_argument("ParallelSaSyncEngine: foreign checkpoint");
    }
    std::copy(cp->curr.begin(), cp->curr.end(), state_->curr.data());
    std::copy(cp->curr_cost.begin(), cp->curr_cost.end(),
              state_->curr_cost.data());
    *state_->packed_best.data() = cp->packed_best;
    level_ = cp->next_level;
    result_ = cp->result;
    status_ = cp->status;
    elapsed_ = cp->elapsed;
    clock_at_start_ = device_.sim_time_s() - cp->consumed_device;
  }

  meta::EngineOutput Finish() override {
    const GpuRunResult gpu = FinishGpu();
    meta::EngineOutput out;
    out.result.best = gpu.best;
    out.result.best_cost = gpu.best_cost;
    out.result.evaluations = gpu.evaluations;
    out.result.wall_seconds = gpu.wall_seconds;
    out.result.stopped = gpu.stopped;
    out.result.trajectory = gpu.trajectory;
    out.device_seconds = gpu.device_seconds;
    return out;
  }

  GpuRunResult FinishGpu() {
    GpuRunResult result = result_;
    result.device_seconds = device_.sim_time_s() - clock_at_start_;
    result.wall_seconds = elapsed_;
    return result;
  }

 private:
  sim::Device& device_;
  ParallelSaSyncParams params_;
  double clock_at_start_;
  double t0_;
  std::unique_ptr<SaSyncDeviceState> state_;
  std::uint32_t level_ = 0;  ///< next temperature level to run
  GpuRunResult result_;
  meta::StepStatus status_ = meta::StepStatus::kRunning;
  double elapsed_ = 0.0;
};

}  // namespace

std::unique_ptr<meta::Engine> MakeParallelSaSyncEngine(
    sim::Device& device, const Instance& instance,
    const ParallelSaSyncParams& params) {
  return std::make_unique<ParallelSaSyncEngine>(device, instance, params);
}

GpuRunResult RunParallelSaSync(sim::Device& device, const Instance& instance,
                               const ParallelSaSyncParams& params) {
  ParallelSaSyncEngine engine(device, instance, params);
  engine.Step(meta::kStepAll);
  return engine.FinishGpu();
}

}  // namespace cdd::par

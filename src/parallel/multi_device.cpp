#include "parallel/multi_device.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <thread>
#include <vector>

#include "cudasim/exec/backend.hpp"

namespace cdd::par {

MultiDeviceResult RunParallelSaMultiDevice(
    std::span<sim::Device* const> devices, const Instance& instance,
    const ParallelSaParams& params) {
  if (devices.empty()) {
    throw std::invalid_argument(
        "RunParallelSaMultiDevice: no devices supplied");
  }
  for (sim::Device* device : devices) {
    if (device == nullptr) {
      throw std::invalid_argument(
          "RunParallelSaMultiDevice: null device pointer");
    }
  }

  // Each device's run is fully independent (distinct Device, distinct
  // seed stream), so under the host-parallel exec backend the fleet runs
  // concurrently — one host thread per device, each of which additionally
  // fans its blocks out over the shared exec pool.  Results land in a
  // device-indexed slot and the reduction below walks them in device
  // order, so the winner (ties break toward the lowest device index) is
  // identical to the serial fleet loop.
  std::vector<GpuRunResult> runs(devices.size());
  const auto run_one = [&](std::size_t i) {
    ParallelSaParams mine = params;
    mine.seed = params.seed + i * kDeviceSeedStride;
    runs[i] = RunParallelSa(*devices[i], instance, mine);
  };
  if (sim::exec::ActiveExecBackend() ==
          sim::exec::ExecBackend::kHostParallel &&
      devices.size() > 1) {
    std::vector<std::exception_ptr> errors(devices.size());
    std::vector<std::thread> threads;
    threads.reserve(devices.size());
    for (std::size_t i = 0; i < devices.size(); ++i) {
      threads.emplace_back([&, i] {
        try {
          run_one(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    for (const std::exception_ptr& error : errors) {
      // Lowest device index first: the surfaced error is deterministic.
      if (error) std::rethrow_exception(error);
    }
  } else {
    for (std::size_t i = 0; i < devices.size(); ++i) run_one(i);
  }

  MultiDeviceResult result;
  result.best.best_cost = kInfiniteCost;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const GpuRunResult& run = runs[i];
    result.fleet_seconds =
        std::max(result.fleet_seconds, run.device_seconds);
    result.total_device_seconds += run.device_seconds;
    result.best.evaluations += run.evaluations;
    if (run.best_cost < result.best.best_cost) {
      // Keep the winner's sequence/cost and timing diagnostics.
      const std::uint64_t evals = result.best.evaluations;
      result.best = run;
      result.best.evaluations = evals;
      result.winning_device = i;
    }
  }
  result.best.device_seconds = result.fleet_seconds;
  return result;
}

}  // namespace cdd::par

#include "parallel/multi_device.hpp"

#include <algorithm>
#include <stdexcept>

namespace cdd::par {

MultiDeviceResult RunParallelSaMultiDevice(
    std::span<sim::Device* const> devices, const Instance& instance,
    const ParallelSaParams& params) {
  if (devices.empty()) {
    throw std::invalid_argument(
        "RunParallelSaMultiDevice: no devices supplied");
  }
  MultiDeviceResult result;
  result.best.best_cost = kInfiniteCost;
  for (std::size_t i = 0; i < devices.size(); ++i) {
    if (devices[i] == nullptr) {
      throw std::invalid_argument(
          "RunParallelSaMultiDevice: null device pointer");
    }
    ParallelSaParams mine = params;
    mine.seed = params.seed + i * kDeviceSeedStride;
    const GpuRunResult run =
        RunParallelSa(*devices[i], instance, mine);
    result.fleet_seconds =
        std::max(result.fleet_seconds, run.device_seconds);
    result.total_device_seconds += run.device_seconds;
    result.best.evaluations += run.evaluations;
    if (run.best_cost < result.best.best_cost) {
      // Keep the winner's sequence/cost and timing diagnostics.
      const std::uint64_t evals = result.best.evaluations;
      result.best = run;
      result.best.evaluations = evals;
      result.winning_device = i;
    }
  }
  result.best.device_seconds = result.fleet_seconds;
  return result;
}

}  // namespace cdd::par

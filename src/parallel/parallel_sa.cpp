#include "parallel/parallel_sa.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>

#include "core/vshape.hpp"
#include "cudasim/memory.hpp"
#include "meta/objective.hpp"
#include "meta/temperature.hpp"
#include "parallel/detail.hpp"
#include "parallel/device_problem.hpp"
#include "parallel/kernels_raw.hpp"
#include "trace/tracer.hpp"

namespace cdd::par {

namespace {
constexpr std::uint32_t kMaxPert = 32;
}

GpuRunResult RunParallelSa(sim::Device& device, const Instance& instance,
                           const ParallelSaParams& params) {
  CDD_TRACE_SPAN("par.sa");
  const auto t_start = std::chrono::steady_clock::now();
  const double clock_at_start = device.sim_time_s();

  params.config.Validate(device);
  if (params.pert > kMaxPert) {
    throw std::invalid_argument(
        "RunParallelSa: pert exceeds the kernel's scratch capacity (32)");
  }
  const std::uint32_t ensemble = params.config.ensemble();
  if (ensemble > (1u << raw::kThreadBits)) {
    throw std::invalid_argument(
        "RunParallelSa: ensemble exceeds packed-key thread capacity");
  }

  // --- host-side setup ----------------------------------------------------
  // Initial temperature via the Salamon rule (Section VI) — host work, as
  // in the paper.
  const meta::SequenceObjective objective =
      meta::SequenceObjective::ForInstance(instance);
  const double t0 =
      params.initial_temperature > 0.0
          ? params.initial_temperature
          : meta::InitialTemperature(objective, params.temp_samples,
                                     params.seed);

  // --- device-side setup (the uploads of Figure 9) ------------------------
  DeviceProblem problem(device, instance);
  if (problem.cost_upper_bound() >= raw::kMaxPackableCost) {
    throw std::invalid_argument(
        "RunParallelSa: instance costs exceed the packed reduction key "
        "range");
  }
  const std::int32_t n = problem.n();

  sim::DeviceBuffer<JobId> curr(device,
                                static_cast<std::size_t>(ensemble) * n);
  sim::DeviceBuffer<JobId> cand(device,
                                static_cast<std::size_t>(ensemble) * n);
  sim::DeviceBuffer<JobId> best_seq(device,
                                    static_cast<std::size_t>(ensemble) * n);
  sim::DeviceBuffer<Cost> curr_cost(device, ensemble);
  sim::DeviceBuffer<Cost> cand_cost(device, ensemble);
  sim::DeviceBuffer<Cost> best_cost(device, ensemble);
  sim::DeviceBuffer<std::int64_t> packed_best(device, 1);
  packed_best.Fill(raw::PackCostThread(problem.cost_upper_bound(), 0));

  {
    Sequence vseed;
    if (params.vshape_init) vseed = VShapeSeed(instance);
    const std::vector<JobId> init = detail::MakeInitialSequences(
        ensemble, n, params.seed, params.vshape_init ? &vseed : nullptr);
    curr.CopyFromHost(init);
    best_seq.CopyFromHost(init);
  }

  GpuRunResult result;

  // Pool views over the device buffers: same row geometry the host
  // engines evaluate through (stride == n — rows are dense on device).
  // kDevice-tagged, so the fitness launches consume them without staging.
  const CandidatePoolView curr_pool =
      detail::DeviceView(curr.data(), curr_cost.data(), n, ensemble);
  const CandidatePoolView cand_pool =
      detail::DeviceView(cand.data(), cand_cost.data(), n, ensemble);

  // Initial fitness of the uploaded ensemble.
  detail::LaunchFitness(device, problem, params.config, curr_pool,
                        "sa_fitness", params.penalty_memory);
  result.evaluations += ensemble;
  {
    // Seed the per-thread bests from the initial states.
    Cost* d_curr_cost = curr_cost.data();
    Cost* d_best_cost = best_cost.data();
    sim::LaunchOptions opts;
    opts.name = "sa_seed_best";
    device.Launch(params.config.grid(), params.config.block(), opts,
                  [=](sim::ThreadCtx& t) {
                    const std::uint64_t tid = t.global_thread();
                    if (tid >= ensemble) return;
                    d_best_cost[tid] = d_curr_cost[tid];
                    t.charge(1);
                  });
  }

  const std::uint64_t seed = params.seed;
  const std::uint32_t pert = params.pert;
  JobId* d_curr = curr.data();
  JobId* d_cand = cand.data();
  JobId* d_best = best_seq.data();
  Cost* d_curr_cost = curr_cost.data();
  Cost* d_cand_cost = cand_cost.data();
  Cost* d_best_cost = best_cost.data();

  double temperature = t0;
  for (std::uint64_t g = 1; g <= params.generations; ++g) {
    if (params.stop.stop_requested()) {
      result.stopped = true;
      break;
    }
    // --- kernel 1: perturbation (Section VI-B) ---------------------------
    // A cheap swap most generations; the Pert-sized Fisher-Yates shuffle
    // "after every 10 SA iterations" (configurable; see NeighborhoodMode).
    const bool shuffle_now =
        params.neighborhood ==
            meta::NeighborhoodMode::kShuffleEveryIteration ||
        (g - 1) % std::max(params.shuffle_period, 1u) == 0;
    {
      sim::LaunchOptions opts;
      opts.name = "sa_perturbation";
      device.Launch(
          params.config.grid(), params.config.block(), opts,
          [=](sim::ThreadCtx& t) {
            const std::uint64_t tid = t.global_thread();
            if (tid >= ensemble) return;
            const JobId* src = d_curr + tid * n;
            JobId* dst = d_cand + tid * n;
            for (std::int32_t i = 0; i < n; ++i) dst[i] = src[i];
            rng::Philox4x32 rng =
                raw::MakeStream(seed, g, raw::RngPhase::kPerturb,
                                static_cast<std::uint32_t>(tid));
            if (shuffle_now) {
              std::uint32_t positions[kMaxPert];
              JobId values[kMaxPert];
              raw::PerturbRaw(dst, n, pert, rng, positions, values);
              t.charge(static_cast<std::uint64_t>(n) + 8 * pert);
            } else {
              raw::SwapRaw(dst, n, rng);
              t.charge(static_cast<std::uint64_t>(n) + 2);
            }
          });
    }

    // --- kernel 2: fitness (Section VI-A) --------------------------------
    detail::LaunchFitness(device, problem, params.config, cand_pool,
                          "sa_fitness", params.penalty_memory);
    result.evaluations += ensemble;

    // --- kernel 3: acceptance (Section VI-C) ------------------------------
    {
      const double temp = std::max(temperature, 1e-300);
      sim::LaunchOptions opts;
      opts.name = "sa_acceptance";
      device.Launch(
          params.config.grid(), params.config.block(), opts,
          [=](sim::ThreadCtx& t) {
            const std::uint64_t tid = t.global_thread();
            if (tid >= ensemble) return;
            rng::Philox4x32 rng =
                raw::MakeStream(seed, g, raw::RngPhase::kAccept,
                                static_cast<std::uint32_t>(tid));
            const Cost e = d_curr_cost[tid];
            const Cost e_new = d_cand_cost[tid];
            const double accept =
                std::exp(static_cast<double>(e - e_new) / temp);
            if (accept >= static_cast<double>(rng.NextUniform())) {
              JobId* cur = d_curr + tid * n;
              const JobId* cnd = d_cand + tid * n;
              for (std::int32_t i = 0; i < n; ++i) cur[i] = cnd[i];
              d_curr_cost[tid] = e_new;
              if (e_new < d_best_cost[tid]) {
                d_best_cost[tid] = e_new;
                JobId* bst = d_best + tid * n;
                for (std::int32_t i = 0; i < n; ++i) bst[i] = cnd[i];
                t.charge(static_cast<std::uint64_t>(n));
              }
              t.charge(static_cast<std::uint64_t>(n));
            }
            t.charge(4);
          });
    }

    // --- kernel 4: reduction (Section VI-D) -------------------------------
    detail::LaunchReduction(device, params.config, d_best_cost,
                            packed_best.data(), "sa_reduction",
                            params.reduction);

    // All four launches are queued; the host fences once per generation.
    device.Synchronize();

    temperature *= params.mu;

    if (params.trajectory_stride > 0 &&
        (g - 1) % params.trajectory_stride == 0) {
      std::int64_t packed = 0;
      packed_best.CopyToHost(std::span<std::int64_t>(&packed, 1));
      result.trajectory.push_back(raw::UnpackCost(packed));
      CDD_TRACE_COUNTER("psa.best_cost", result.trajectory.back());
    }
  }

  // --- download the winner (Figure 9's single D2H of results) -------------
  std::int64_t packed = 0;
  packed_best.CopyToHost(std::span<std::int64_t>(&packed, 1));
  result.best_cost = raw::UnpackCost(packed);
  result.best = detail::DownloadRow(best_seq, n, raw::UnpackThread(packed));

  result.device_seconds = device.sim_time_s() - clock_at_start;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    t_start)
          .count();
  return result;
}

}  // namespace cdd::par

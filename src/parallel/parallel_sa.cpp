#include "parallel/parallel_sa.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/vshape.hpp"
#include "cudasim/memory.hpp"
#include "meta/objective.hpp"
#include "meta/temperature.hpp"
#include "parallel/detail.hpp"
#include "parallel/device_problem.hpp"
#include "parallel/kernels_raw.hpp"
#include "trace/tracer.hpp"

namespace cdd::par {

namespace {
constexpr std::uint32_t kMaxPert = 32;

using Clock = std::chrono::steady_clock;

/// Host snapshot of the device-resident SA state at a generation boundary.
/// Device "memory" is simulated host memory, so the snapshot is a plain
/// copy that charges no modeled transfer time: a checkpoint is host
/// bookkeeping, not part of the modeled run.  cand/cand_cost are
/// per-generation scratch (fully rewritten before being read) and need no
/// saving.  Per-generation Philox streams are derived statelessly from
/// (seed, generation, phase, thread), so no RNG state is captured either.
struct ParallelSaCheckpoint final : meta::EngineCheckpoint {
  std::vector<JobId> curr;
  std::vector<JobId> best_seq;
  std::vector<Cost> curr_cost;
  std::vector<Cost> best_cost;
  std::int64_t packed_best = 0;
  std::uint64_t next_generation = 1;
  double temperature = 0.0;
  GpuRunResult result;
  meta::StepStatus status = meta::StepStatus::kRunning;
  double elapsed = 0.0;
  double consumed_device = 0.0;
};

/// Validates the launch configuration before any device allocation and
/// resolves the initial temperature on the host (Salamon rule, Section VI)
/// — the same order of operations the run-to-completion path used.
double ValidateAndResolveT0(sim::Device& device, const Instance& instance,
                            const ParallelSaParams& params) {
  params.config.Validate(device);
  if (params.pert > kMaxPert) {
    throw std::invalid_argument(
        "RunParallelSa: pert exceeds the kernel's scratch capacity (32)");
  }
  if (params.config.ensemble() > (1u << raw::kThreadBits)) {
    throw std::invalid_argument(
        "RunParallelSa: ensemble exceeds packed-key thread capacity");
  }
  const meta::SequenceObjective objective =
      meta::SequenceObjective::ForInstance(instance);
  return params.initial_temperature > 0.0
             ? params.initial_temperature
             : meta::InitialTemperature(objective, params.temp_samples,
                                        params.seed);
}

/// Device-resident run state: the uploads of Figure 9 plus the ensemble
/// buffers.  Grouped so the engine can build it after validation with the
/// original upload-then-allocate order.
struct SaDeviceState {
  DeviceProblem problem;
  sim::DeviceBuffer<JobId> curr;
  sim::DeviceBuffer<JobId> cand;
  sim::DeviceBuffer<JobId> best_seq;
  sim::DeviceBuffer<Cost> curr_cost;
  sim::DeviceBuffer<Cost> cand_cost;
  sim::DeviceBuffer<Cost> best_cost;
  sim::DeviceBuffer<std::int64_t> packed_best;

  SaDeviceState(sim::Device& device, const Instance& instance,
                std::uint32_t ensemble)
      : problem(device, instance),
        curr(device, static_cast<std::size_t>(ensemble) * problem.n()),
        cand(device, static_cast<std::size_t>(ensemble) * problem.n()),
        best_seq(device, static_cast<std::size_t>(ensemble) * problem.n()),
        curr_cost(device, ensemble),
        cand_cost(device, ensemble),
        best_cost(device, ensemble),
        packed_best(device, 1) {}
};

class ParallelSaEngine final : public meta::Engine {
 public:
  ParallelSaEngine(sim::Device& device, const Instance& instance,
                   const ParallelSaParams& params)
      : device_(device),
        params_(params),
        clock_at_start_(device.sim_time_s()),
        t0_(ValidateAndResolveT0(device, instance, params)),
        temperature_(t0_) {
    const auto t_start = Clock::now();
    const std::uint32_t ensemble = params_.config.ensemble();

    // --- device-side setup (the uploads of Figure 9) ----------------------
    state_ = std::make_unique<SaDeviceState>(device_, instance, ensemble);
    if (state_->problem.cost_upper_bound() >= raw::kMaxPackableCost) {
      throw std::invalid_argument(
          "RunParallelSa: instance costs exceed the packed reduction key "
          "range");
    }
    const std::int32_t n = state_->problem.n();
    state_->packed_best.Fill(
        raw::PackCostThread(state_->problem.cost_upper_bound(), 0));

    {
      Sequence vseed;
      if (params_.vshape_init) vseed = VShapeSeed(instance);
      const std::vector<JobId> init = detail::MakeInitialSequences(
          ensemble, n, params_.seed, params_.vshape_init ? &vseed : nullptr);
      state_->curr.CopyFromHost(init);
      state_->best_seq.CopyFromHost(init);
    }

    // Pool views over the device buffers: same row geometry the host
    // engines evaluate through (stride == n — rows are dense on device).
    // kDevice-tagged, so the fitness launches consume them without staging.
    const CandidatePoolView curr_pool = detail::DeviceView(
        state_->curr.data(), state_->curr_cost.data(), n, ensemble);

    // Initial fitness of the uploaded ensemble.
    detail::LaunchFitness(device_, state_->problem, params_.config,
                          curr_pool, "sa_fitness", params_.penalty_memory);
    result_.evaluations += ensemble;
    {
      // Seed the per-thread bests from the initial states.
      Cost* d_curr_cost = state_->curr_cost.data();
      Cost* d_best_cost = state_->best_cost.data();
      sim::LaunchOptions opts;
      opts.name = "sa_seed_best";
      device_.Launch(params_.config.grid(), params_.config.block(), opts,
                     [=](sim::ThreadCtx& t) {
                       const std::uint64_t tid = t.global_thread();
                       if (tid >= ensemble) return;
                       d_best_cost[tid] = d_curr_cost[tid];
                       t.charge(1);
                     });
    }
    if (params_.generations == 0) status_ = meta::StepStatus::kDone;
    elapsed_ += std::chrono::duration<double>(Clock::now() - t_start).count();
  }

  meta::StepStatus Step(std::uint64_t units) override {
    if (status_ != meta::StepStatus::kRunning || units == 0) return status_;
    finish_cache_.reset();
    CDD_TRACE_SPAN("par.sa");
    const auto t_start = Clock::now();
    const std::uint32_t ensemble = params_.config.ensemble();
    const std::int32_t n = state_->problem.n();
    const std::uint64_t seed = params_.seed;
    const std::uint32_t pert = params_.pert;
    JobId* d_curr = state_->curr.data();
    JobId* d_cand = state_->cand.data();
    JobId* d_best = state_->best_seq.data();
    Cost* d_curr_cost = state_->curr_cost.data();
    Cost* d_cand_cost = state_->cand_cost.data();
    Cost* d_best_cost = state_->best_cost.data();
    const CandidatePoolView cand_pool =
        detail::DeviceView(d_cand, d_cand_cost, n, ensemble);

    const std::uint64_t last =
        g_ - 1 +
        std::min<std::uint64_t>(units, params_.generations - (g_ - 1));
    for (; g_ <= last; ++g_) {
      const std::uint64_t g = g_;
      if (params_.stop.stop_requested()) {
        result_.stopped = true;
        status_ = meta::StepStatus::kStopped;
        break;
      }
      // --- kernel 1: perturbation (Section VI-B) -------------------------
      // A cheap swap most generations; the Pert-sized Fisher-Yates shuffle
      // "after every 10 SA iterations" (configurable; see NeighborhoodMode).
      const bool shuffle_now =
          params_.neighborhood ==
              meta::NeighborhoodMode::kShuffleEveryIteration ||
          (g - 1) % std::max(params_.shuffle_period, 1u) == 0;
      {
        sim::LaunchOptions opts;
        opts.name = "sa_perturbation";
        device_.Launch(
            params_.config.grid(), params_.config.block(), opts,
            [=](sim::ThreadCtx& t) {
              const std::uint64_t tid = t.global_thread();
              if (tid >= ensemble) return;
              const JobId* src = d_curr + tid * n;
              JobId* dst = d_cand + tid * n;
              for (std::int32_t i = 0; i < n; ++i) dst[i] = src[i];
              rng::Philox4x32 rng =
                  raw::MakeStream(seed, g, raw::RngPhase::kPerturb,
                                  static_cast<std::uint32_t>(tid));
              if (shuffle_now) {
                std::uint32_t positions[kMaxPert];
                JobId values[kMaxPert];
                raw::PerturbRaw(dst, n, pert, rng, positions, values);
                t.charge(static_cast<std::uint64_t>(n) + 8 * pert);
              } else {
                raw::SwapRaw(dst, n, rng);
                t.charge(static_cast<std::uint64_t>(n) + 2);
              }
            });
      }

      // --- kernel 2: fitness (Section VI-A) ------------------------------
      detail::LaunchFitness(device_, state_->problem, params_.config,
                            cand_pool, "sa_fitness",
                            params_.penalty_memory);
      result_.evaluations += ensemble;

      // --- kernel 3: acceptance (Section VI-C) ---------------------------
      {
        const double temp = std::max(temperature_, 1e-300);
        sim::LaunchOptions opts;
        opts.name = "sa_acceptance";
        device_.Launch(
            params_.config.grid(), params_.config.block(), opts,
            [=](sim::ThreadCtx& t) {
              const std::uint64_t tid = t.global_thread();
              if (tid >= ensemble) return;
              rng::Philox4x32 rng =
                  raw::MakeStream(seed, g, raw::RngPhase::kAccept,
                                  static_cast<std::uint32_t>(tid));
              const Cost e = d_curr_cost[tid];
              const Cost e_new = d_cand_cost[tid];
              const double accept =
                  std::exp(static_cast<double>(e - e_new) / temp);
              if (accept >= static_cast<double>(rng.NextUniform())) {
                JobId* cur = d_curr + tid * n;
                const JobId* cnd = d_cand + tid * n;
                for (std::int32_t i = 0; i < n; ++i) cur[i] = cnd[i];
                d_curr_cost[tid] = e_new;
                if (e_new < d_best_cost[tid]) {
                  d_best_cost[tid] = e_new;
                  JobId* bst = d_best + tid * n;
                  for (std::int32_t i = 0; i < n; ++i) bst[i] = cnd[i];
                  t.charge(static_cast<std::uint64_t>(n));
                }
                t.charge(static_cast<std::uint64_t>(n));
              }
              t.charge(4);
            });
      }

      // --- kernel 4: reduction (Section VI-D) ----------------------------
      detail::LaunchReduction(device_, params_.config, d_best_cost,
                              state_->packed_best.data(), "sa_reduction",
                              params_.reduction);

      // All four launches are queued; the host fences once per generation.
      device_.Synchronize();

      temperature_ *= params_.mu;

      if (params_.trajectory_stride > 0 &&
          (g - 1) % params_.trajectory_stride == 0) {
        std::int64_t packed = 0;
        state_->packed_best.CopyToHost(std::span<std::int64_t>(&packed, 1));
        result_.trajectory.push_back(raw::UnpackCost(packed));
        CDD_TRACE_COUNTER("psa.best_cost", result_.trajectory.back());
      }
    }
    if (status_ == meta::StepStatus::kRunning &&
        g_ > params_.generations) {
      status_ = meta::StepStatus::kDone;
    }
    elapsed_ += std::chrono::duration<double>(Clock::now() - t_start).count();
    return status_;
  }

  std::uint64_t Remaining() const override {
    return status_ == meta::StepStatus::kRunning
               ? params_.generations - (g_ - 1)
               : 0;
  }

  Cost BestCost() const override {
    // packed_best already holds the ensemble minimum (kernel 4 keeps it
    // current every generation); reading it is host bookkeeping.
    return raw::UnpackCost(*state_->packed_best.data());
  }

  std::unique_ptr<meta::EngineCheckpoint> Checkpoint() const override {
    auto cp = std::make_unique<ParallelSaCheckpoint>();
    CopyOut(state_->curr, cp->curr);
    CopyOut(state_->best_seq, cp->best_seq);
    CopyOut(state_->curr_cost, cp->curr_cost);
    CopyOut(state_->best_cost, cp->best_cost);
    cp->packed_best = *state_->packed_best.data();
    cp->next_generation = g_;
    cp->temperature = temperature_;
    cp->result = result_;
    cp->status = status_;
    cp->elapsed = elapsed_;
    cp->consumed_device = device_.sim_time_s() - clock_at_start_;
    return cp;
  }

  void Restore(const meta::EngineCheckpoint& checkpoint) override {
    const auto* cp = dynamic_cast<const ParallelSaCheckpoint*>(&checkpoint);
    if (cp == nullptr || cp->curr.size() != state_->curr.size()) {
      throw std::invalid_argument("ParallelSaEngine: foreign checkpoint");
    }
    CopyIn(cp->curr, state_->curr);
    CopyIn(cp->best_seq, state_->best_seq);
    CopyIn(cp->curr_cost, state_->curr_cost);
    CopyIn(cp->best_cost, state_->best_cost);
    *state_->packed_best.data() = cp->packed_best;
    g_ = cp->next_generation;
    temperature_ = cp->temperature;
    result_ = cp->result;
    status_ = cp->status;
    elapsed_ = cp->elapsed;
    // Device time consumed after the checkpoint was speculative work that
    // the restore discards; rebase the start mark so Finish reports the
    // checkpoint's consumption plus whatever runs from here on.
    clock_at_start_ = device_.sim_time_s() - cp->consumed_device;
    finish_cache_.reset();
  }

  meta::EngineOutput Finish() override {
    const GpuRunResult gpu = FinishGpu();
    meta::EngineOutput out;
    out.result.best = gpu.best;
    out.result.best_cost = gpu.best_cost;
    out.result.evaluations = gpu.evaluations;
    out.result.wall_seconds = gpu.wall_seconds;
    out.result.stopped = gpu.stopped;
    out.result.trajectory = gpu.trajectory;
    out.device_seconds = gpu.device_seconds;
    return out;
  }

  /// Full GPU result including the modeled clock (what RunParallelSa
  /// returns).  Downloads the winner — Figure 9's single D2H.  Memoized
  /// until the next Step/Restore so repeated Finish calls stay idempotent
  /// (a second call must not charge a second modeled transfer).
  GpuRunResult FinishGpu() {
    if (finish_cache_) return *finish_cache_;
    const auto t_start = Clock::now();
    GpuRunResult result = result_;
    std::int64_t packed = 0;
    state_->packed_best.CopyToHost(std::span<std::int64_t>(&packed, 1));
    result.best_cost = raw::UnpackCost(packed);
    result.best = detail::DownloadRow(state_->best_seq,
                                      state_->problem.n(),
                                      raw::UnpackThread(packed));
    result.device_seconds = device_.sim_time_s() - clock_at_start_;
    result.wall_seconds =
        elapsed_ +
        std::chrono::duration<double>(Clock::now() - t_start).count();
    finish_cache_ = result;
    return result;
  }

 private:
  template <typename T>
  static void CopyOut(const sim::DeviceBuffer<T>& buffer,
                      std::vector<T>& host) {
    host.assign(buffer.data(), buffer.data() + buffer.size());
  }
  template <typename T>
  static void CopyIn(const std::vector<T>& host,
                     sim::DeviceBuffer<T>& buffer) {
    std::copy(host.begin(), host.end(), buffer.data());
  }

  sim::Device& device_;
  ParallelSaParams params_;
  double clock_at_start_;
  double t0_;
  double temperature_;
  std::unique_ptr<SaDeviceState> state_;
  std::uint64_t g_ = 1;  ///< next generation to run (1-based, Figure 7)
  GpuRunResult result_;
  meta::StepStatus status_ = meta::StepStatus::kRunning;
  double elapsed_ = 0.0;
  std::optional<GpuRunResult> finish_cache_;
};

}  // namespace

std::unique_ptr<meta::Engine> MakeParallelSaEngine(
    sim::Device& device, const Instance& instance,
    const ParallelSaParams& params) {
  return std::make_unique<ParallelSaEngine>(device, instance, params);
}

GpuRunResult RunParallelSa(sim::Device& device, const Instance& instance,
                           const ParallelSaParams& params) {
  ParallelSaEngine engine(device, instance, params);
  engine.Step(meta::kStepAll);
  return engine.FinishGpu();
}

}  // namespace cdd::par

#pragma once
/// \file multi_device.hpp
/// \brief Multi-GPU ensemble SA — scaling the paper's approach the way its
/// related work does (Chakroun et al. [1] combine multiple compute
/// resources for branch and bound).
///
/// The asynchronous ensemble is embarrassingly parallel across devices:
/// each device runs an independent sub-ensemble (decorrelated by a
/// device-indexed seed), results reduce on the host, and because the
/// devices run concurrently the modeled time of the fleet is the *maximum*
/// of the per-device times, not the sum.

#include <span>

#include "parallel/parallel_sa.hpp"

namespace cdd::par {

/// Result of a multi-device run.
struct MultiDeviceResult {
  GpuRunResult best;            ///< overall winner across devices
  std::size_t winning_device = 0;
  double fleet_seconds = 0.0;   ///< max over the devices (concurrent)
  double total_device_seconds = 0.0;  ///< sum (for energy-style accounting)
};

/// Runs the asynchronous parallel SA on every device in \p devices with
/// the same per-device configuration.  Device i uses seed
/// params.seed + i * kDeviceSeedStride, so adding devices never perturbs
/// the existing ones' results (fleet quality is monotone in fleet size).
MultiDeviceResult RunParallelSaMultiDevice(
    std::span<sim::Device* const> devices, const Instance& instance,
    const ParallelSaParams& params);

inline constexpr std::uint64_t kDeviceSeedStride = 0x9e3779b97f4a7c15ULL;

}  // namespace cdd::par

#include "parallel/device_problem.hpp"

#include <algorithm>
#include <vector>

namespace cdd::par {

DeviceProblem::DeviceProblem(sim::Device& device, const Instance& instance)
    : n_(static_cast<std::int32_t>(instance.size())),
      controllable_(instance.problem() == Problem::kUcddcp),
      cost_bound_(0),
      proc_(device, instance.size()),
      min_proc_(device, instance.size()),
      alpha_(device, instance.size()),
      beta_(device, instance.size()),
      gamma_(device, instance.size()),
      d_(device, 1),
      n_const_(device, 1) {
  if (instance.problem() == Problem::kCddcp) {
    throw std::invalid_argument(
        "DeviceProblem: the fitness kernels implement the O(n) algorithms, "
        "which do not cover the restricted controllable problem; use the "
        "serial metaheuristics with lp::MakeLpObjective instead");
  }
  instance.Validate();

  std::vector<Time> proc;
  std::vector<Time> min_proc;
  std::vector<Cost> alpha;
  std::vector<Cost> beta;
  std::vector<Cost> gamma;
  proc.reserve(instance.size());
  for (const Job& j : instance.jobs()) {
    proc.push_back(j.proc);
    min_proc.push_back(j.min_proc);
    alpha.push_back(j.early);
    beta.push_back(j.tardy);
    gamma.push_back(j.compress);
  }

  proc_.CopyFromHost(proc);
  min_proc_.CopyFromHost(min_proc);
  alpha_.CopyFromHost(alpha);
  beta_.CopyFromHost(beta);
  if (controllable_) {
    gamma_.CopyFromHost(gamma);
  } else {
    gamma_.Fill(0);
  }
  d_.Set(instance.due_date());
  n_const_.Set(n_);

  // Worst case: every job maximally early (horizon = d) or maximally tardy
  // (horizon = sum P), plus full compression penalties.
  const Time horizon =
      std::max(instance.due_date(), instance.total_processing_time()) +
      instance.total_processing_time();
  for (const Job& j : instance.jobs()) {
    cost_bound_ += std::max(j.early, j.tardy) * horizon +
                   j.compress * (j.proc - j.min_proc);
  }
}

}  // namespace cdd::par

#include "parallel/parallel_dpso.hpp"

#include <chrono>
#include <stdexcept>

#include "cudasim/atomics.hpp"
#include "core/vshape.hpp"
#include "cudasim/memory.hpp"
#include "parallel/detail.hpp"
#include "parallel/device_problem.hpp"
#include "parallel/kernels_raw.hpp"
#include "trace/tracer.hpp"

namespace cdd::par {

GpuRunResult RunParallelDpso(sim::Device& device, const Instance& instance,
                             const ParallelDpsoParams& params) {
  CDD_TRACE_SPAN("par.dpso");
  const auto t_start = std::chrono::steady_clock::now();
  const double clock_at_start = device.sim_time_s();

  params.config.Validate(device);
  const std::uint32_t ensemble = params.config.ensemble();
  if (ensemble > (1u << raw::kThreadBits)) {
    throw std::invalid_argument(
        "RunParallelDpso: ensemble exceeds packed-key thread capacity");
  }

  DeviceProblem problem(device, instance);
  if (problem.cost_upper_bound() >= raw::kMaxPackableCost) {
    throw std::invalid_argument(
        "RunParallelDpso: instance costs exceed the packed key range");
  }
  const std::int32_t n = problem.n();

  // Swarm state: positions, particle bests, swarm best, plus per-thread
  // "local memory" scratch for the crossovers.
  sim::DeviceBuffer<JobId> pos(device,
                               static_cast<std::size_t>(ensemble) * n);
  sim::DeviceBuffer<JobId> pbest(device,
                                 static_cast<std::size_t>(ensemble) * n);
  sim::DeviceBuffer<JobId> child(device,
                                 static_cast<std::size_t>(ensemble) * n);
  sim::DeviceBuffer<std::uint8_t> used(
      device, static_cast<std::size_t>(ensemble) * n);
  sim::DeviceBuffer<JobId> gbest(device, static_cast<std::size_t>(n));
  sim::DeviceBuffer<Cost> pos_cost(device, ensemble);
  sim::DeviceBuffer<Cost> pbest_cost(device, ensemble);
  sim::DeviceBuffer<std::int64_t> packed_best(device, 1);
  packed_best.Fill(raw::PackCostThread(problem.cost_upper_bound(), 0));

  {
    Sequence vseed;
    if (params.vshape_init) vseed = VShapeSeed(instance);
    const std::vector<JobId> init = detail::MakeInitialSequences(
        ensemble, n, params.seed, params.vshape_init ? &vseed : nullptr);
    pos.CopyFromHost(init);
    pbest.CopyFromHost(init);
  }

  GpuRunResult result;

  const std::uint64_t seed = params.seed;
  const double w = params.w;
  const double c1 = params.c1;
  const double c2 = params.c2;
  JobId* d_pos = pos.data();
  JobId* d_pbest = pbest.data();
  JobId* d_child = child.data();
  std::uint8_t* d_used = used.data();
  JobId* d_gbest = gbest.data();
  Cost* d_pos_cost = pos_cost.data();
  Cost* d_pbest_cost = pbest_cost.data();
  std::int64_t* d_packed = packed_best.data();

  // Positions as a device-side candidate pool (dense rows, stride == n).
  const CandidatePoolView pos_pool =
      detail::DeviceView(d_pos, d_pos_cost, n, ensemble);

  // Initial fitness, particle bests and swarm best.
  detail::LaunchFitness(device, problem, params.config, pos_pool,
                        "dpso_fitness");
  result.evaluations += ensemble;
  {
    sim::LaunchOptions opts;
    opts.name = "dpso_pbest_update";
    device.Launch(params.config.grid(), params.config.block(), opts,
                  [=](sim::ThreadCtx& t) {
                    const std::uint64_t tid = t.global_thread();
                    if (tid >= ensemble) return;
                    d_pbest_cost[tid] = d_pos_cost[tid];
                    t.charge(1);
                  });
  }
  detail::LaunchReduction(device, params.config, d_pbest_cost, d_packed,
                          "dpso_reduction");
  const auto publish_gbest = [&]() {
    sim::LaunchOptions opts;
    opts.name = "dpso_gbest_publish";
    device.Launch(params.config.grid(), params.config.block(), opts,
                  [=](sim::ThreadCtx& t) {
                    const std::uint64_t tid = t.global_thread();
                    if (tid >= ensemble) return;
                    // Exactly one thread matches the packed key's id.
                    const std::int64_t packed = *d_packed;
                    if (raw::UnpackThread(packed) != tid) return;
                    if (d_pbest_cost[tid] != raw::UnpackCost(packed)) return;
                    const JobId* src = d_pbest + tid * n;
                    for (std::int32_t i = 0; i < n; ++i) d_gbest[i] = src[i];
                    t.charge(static_cast<std::uint64_t>(n));
                  });
  };
  publish_gbest();
  device.Synchronize();

  for (std::uint64_t g = 1; g <= params.generations; ++g) {
    if (params.stop.stop_requested()) {
      result.stopped = true;
      break;
    }
    // --- position update: Eq. (3) -----------------------------------------
    {
      sim::LaunchOptions opts;
      opts.name = "dpso_update";
      device.Launch(
          params.config.grid(), params.config.block(), opts,
          [=](sim::ThreadCtx& t) {
            const std::uint64_t tid = t.global_thread();
            if (tid >= ensemble) return;
            JobId* mine = d_pos + tid * n;
            JobId* scratch = d_child + tid * n;
            std::uint8_t* marks = d_used + tid * n;
            rng::Philox4x32 rng =
                raw::MakeStream(seed, g, raw::RngPhase::kDpsoUpdate,
                                static_cast<std::uint32_t>(tid));
            // w (+) F1: swap velocity.
            if (rng.NextUniform() < w) {
              raw::SwapRaw(mine, n, rng);
              t.charge(2);
            }
            // c1 (+) F2: one-point crossover with the particle best.
            if (rng.NextUniform() < c1) {
              const std::uint32_t cut = cdd::UniformBelow(
                  rng, static_cast<std::uint32_t>(n) + 1);
              raw::OnePointCrossoverRaw(n, mine, d_pbest + tid * n, cut,
                                        scratch, marks);
              for (std::int32_t i = 0; i < n; ++i) mine[i] = scratch[i];
              t.charge(3 * static_cast<std::uint64_t>(n));
            }
            // c2 (+) F3: two-point crossover with the swarm best.
            if (rng.NextUniform() < c2) {
              std::uint32_t a = cdd::UniformBelow(
                  rng, static_cast<std::uint32_t>(n) + 1);
              std::uint32_t b = cdd::UniformBelow(
                  rng, static_cast<std::uint32_t>(n) + 1);
              if (a > b) {
                const std::uint32_t tmp = a;
                a = b;
                b = tmp;
              }
              raw::TwoPointCrossoverRaw(n, mine, d_gbest, a, b, scratch,
                                        marks);
              for (std::int32_t i = 0; i < n; ++i) mine[i] = scratch[i];
              t.charge(3 * static_cast<std::uint64_t>(n));
            }
            t.charge(4);
          });
    }

    // --- fitness -----------------------------------------------------------
    detail::LaunchFitness(device, problem, params.config, pos_pool,
                          "dpso_fitness");
    result.evaluations += ensemble;

    // --- particle bests ----------------------------------------------------
    {
      sim::LaunchOptions opts;
      opts.name = "dpso_pbest_update";
      device.Launch(params.config.grid(), params.config.block(), opts,
                    [=](sim::ThreadCtx& t) {
                      const std::uint64_t tid = t.global_thread();
                      if (tid >= ensemble) return;
                      if (d_pos_cost[tid] < d_pbest_cost[tid]) {
                        d_pbest_cost[tid] = d_pos_cost[tid];
                        const JobId* src = d_pos + tid * n;
                        JobId* dst = d_pbest + tid * n;
                        for (std::int32_t i = 0; i < n; ++i) dst[i] = src[i];
                        t.charge(static_cast<std::uint64_t>(n));
                      }
                      t.charge(2);
                    });
    }

    // --- swarm best (reduction + publish) ----------------------------------
    detail::LaunchReduction(device, params.config, d_pbest_cost, d_packed,
                            "dpso_reduction");
    publish_gbest();
    device.Synchronize();

    if (params.trajectory_stride > 0 &&
        (g - 1) % params.trajectory_stride == 0) {
      std::int64_t packed = 0;
      packed_best.CopyToHost(std::span<std::int64_t>(&packed, 1));
      result.trajectory.push_back(raw::UnpackCost(packed));
      CDD_TRACE_COUNTER("pdpso.best_cost", result.trajectory.back());
    }
  }

  std::int64_t packed = 0;
  packed_best.CopyToHost(std::span<std::int64_t>(&packed, 1));
  result.best_cost = raw::UnpackCost(packed);
  result.best = detail::DownloadRow(pbest, n, raw::UnpackThread(packed));

  result.device_seconds = device.sim_time_s() - clock_at_start;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    t_start)
          .count();
  return result;
}

}  // namespace cdd::par

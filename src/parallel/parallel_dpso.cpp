#include "parallel/parallel_dpso.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <stdexcept>
#include <utility>

#include "cudasim/atomics.hpp"
#include "core/vshape.hpp"
#include "cudasim/memory.hpp"
#include "parallel/detail.hpp"
#include "parallel/device_problem.hpp"
#include "parallel/kernels_raw.hpp"
#include "trace/tracer.hpp"

namespace cdd::par {
namespace {

using Clock = std::chrono::steady_clock;

/// Host snapshot of the swarm at a generation boundary.  child/used are
/// per-thread crossover scratch (rewritten before read) and are skipped;
/// per-generation Philox streams are stateless in (seed, generation).
struct ParallelDpsoCheckpoint final : meta::EngineCheckpoint {
  std::vector<JobId> pos;
  std::vector<JobId> pbest;
  std::vector<JobId> gbest;
  std::vector<Cost> pos_cost;
  std::vector<Cost> pbest_cost;
  std::int64_t packed_best = 0;
  std::uint64_t next_generation = 1;
  GpuRunResult result;
  meta::StepStatus status = meta::StepStatus::kRunning;
  double elapsed = 0.0;
  double consumed_device = 0.0;
};

void ValidateConfig(sim::Device& device, const ParallelDpsoParams& params) {
  params.config.Validate(device);
  if (params.config.ensemble() > (1u << raw::kThreadBits)) {
    throw std::invalid_argument(
        "RunParallelDpso: ensemble exceeds packed-key thread capacity");
  }
}

/// Swarm state: positions, particle bests, swarm best, plus per-thread
/// "local memory" scratch for the crossovers.
struct DpsoDeviceState {
  DeviceProblem problem;
  sim::DeviceBuffer<JobId> pos;
  sim::DeviceBuffer<JobId> pbest;
  sim::DeviceBuffer<JobId> child;
  sim::DeviceBuffer<std::uint8_t> used;
  sim::DeviceBuffer<JobId> gbest;
  sim::DeviceBuffer<Cost> pos_cost;
  sim::DeviceBuffer<Cost> pbest_cost;
  sim::DeviceBuffer<std::int64_t> packed_best;

  DpsoDeviceState(sim::Device& device, const Instance& instance,
                  std::uint32_t ensemble)
      : problem(device, instance),
        pos(device, static_cast<std::size_t>(ensemble) * problem.n()),
        pbest(device, static_cast<std::size_t>(ensemble) * problem.n()),
        child(device, static_cast<std::size_t>(ensemble) * problem.n()),
        used(device, static_cast<std::size_t>(ensemble) * problem.n()),
        gbest(device, static_cast<std::size_t>(problem.n())),
        pos_cost(device, ensemble),
        pbest_cost(device, ensemble),
        packed_best(device, 1) {}
};

class ParallelDpsoEngine final : public meta::Engine {
 public:
  ParallelDpsoEngine(sim::Device& device, const Instance& instance,
                     const ParallelDpsoParams& params)
      : device_(device),
        params_(params),
        clock_at_start_(device.sim_time_s()) {
    const auto t_start = Clock::now();
    ValidateConfig(device_, params_);
    const std::uint32_t ensemble = params_.config.ensemble();

    state_ = std::make_unique<DpsoDeviceState>(device_, instance, ensemble);
    if (state_->problem.cost_upper_bound() >= raw::kMaxPackableCost) {
      throw std::invalid_argument(
          "RunParallelDpso: instance costs exceed the packed key range");
    }
    const std::int32_t n = state_->problem.n();
    state_->packed_best.Fill(
        raw::PackCostThread(state_->problem.cost_upper_bound(), 0));

    {
      Sequence vseed;
      if (params_.vshape_init) vseed = VShapeSeed(instance);
      const std::vector<JobId> init = detail::MakeInitialSequences(
          ensemble, n, params_.seed, params_.vshape_init ? &vseed : nullptr);
      state_->pos.CopyFromHost(init);
      state_->pbest.CopyFromHost(init);
    }

    Cost* d_pos_cost = state_->pos_cost.data();
    Cost* d_pbest_cost = state_->pbest_cost.data();

    // Positions as a device-side candidate pool (dense rows, stride == n).
    const CandidatePoolView pos_pool =
        detail::DeviceView(state_->pos.data(), d_pos_cost, n, ensemble);

    // Initial fitness, particle bests and swarm best.
    detail::LaunchFitness(device_, state_->problem, params_.config,
                          pos_pool, "dpso_fitness");
    result_.evaluations += ensemble;
    {
      sim::LaunchOptions opts;
      opts.name = "dpso_pbest_update";
      device_.Launch(params_.config.grid(), params_.config.block(), opts,
                     [=](sim::ThreadCtx& t) {
                       const std::uint64_t tid = t.global_thread();
                       if (tid >= ensemble) return;
                       d_pbest_cost[tid] = d_pos_cost[tid];
                       t.charge(1);
                     });
    }
    detail::LaunchReduction(device_, params_.config, d_pbest_cost,
                            state_->packed_best.data(), "dpso_reduction");
    PublishGbest();
    device_.Synchronize();

    if (params_.generations == 0) status_ = meta::StepStatus::kDone;
    elapsed_ += std::chrono::duration<double>(Clock::now() - t_start).count();
  }

  meta::StepStatus Step(std::uint64_t units) override {
    if (status_ != meta::StepStatus::kRunning || units == 0) return status_;
    finish_cache_.reset();
    CDD_TRACE_SPAN("par.dpso");
    const auto t_start = Clock::now();
    const std::uint32_t ensemble = params_.config.ensemble();
    const std::int32_t n = state_->problem.n();
    const std::uint64_t seed = params_.seed;
    const double w = params_.w;
    const double c1 = params_.c1;
    const double c2 = params_.c2;
    JobId* d_pos = state_->pos.data();
    JobId* d_pbest = state_->pbest.data();
    JobId* d_child = state_->child.data();
    std::uint8_t* d_used = state_->used.data();
    JobId* d_gbest = state_->gbest.data();
    Cost* d_pos_cost = state_->pos_cost.data();
    Cost* d_pbest_cost = state_->pbest_cost.data();
    const CandidatePoolView pos_pool =
        detail::DeviceView(d_pos, d_pos_cost, n, ensemble);

    const std::uint64_t last =
        g_ - 1 +
        std::min<std::uint64_t>(units, params_.generations - (g_ - 1));
    for (; g_ <= last; ++g_) {
      const std::uint64_t g = g_;
      if (params_.stop.stop_requested()) {
        result_.stopped = true;
        status_ = meta::StepStatus::kStopped;
        break;
      }
      // --- position update: Eq. (3) --------------------------------------
      {
        sim::LaunchOptions opts;
        opts.name = "dpso_update";
        device_.Launch(
            params_.config.grid(), params_.config.block(), opts,
            [=](sim::ThreadCtx& t) {
              const std::uint64_t tid = t.global_thread();
              if (tid >= ensemble) return;
              JobId* mine = d_pos + tid * n;
              JobId* scratch = d_child + tid * n;
              std::uint8_t* marks = d_used + tid * n;
              rng::Philox4x32 rng =
                  raw::MakeStream(seed, g, raw::RngPhase::kDpsoUpdate,
                                  static_cast<std::uint32_t>(tid));
              // w (+) F1: swap velocity.
              if (rng.NextUniform() < w) {
                raw::SwapRaw(mine, n, rng);
                t.charge(2);
              }
              // c1 (+) F2: one-point crossover with the particle best.
              if (rng.NextUniform() < c1) {
                const std::uint32_t cut = cdd::UniformBelow(
                    rng, static_cast<std::uint32_t>(n) + 1);
                raw::OnePointCrossoverRaw(n, mine, d_pbest + tid * n, cut,
                                          scratch, marks);
                for (std::int32_t i = 0; i < n; ++i) mine[i] = scratch[i];
                t.charge(3 * static_cast<std::uint64_t>(n));
              }
              // c2 (+) F3: two-point crossover with the swarm best.
              if (rng.NextUniform() < c2) {
                std::uint32_t a = cdd::UniformBelow(
                    rng, static_cast<std::uint32_t>(n) + 1);
                std::uint32_t b = cdd::UniformBelow(
                    rng, static_cast<std::uint32_t>(n) + 1);
                if (a > b) {
                  const std::uint32_t tmp = a;
                  a = b;
                  b = tmp;
                }
                raw::TwoPointCrossoverRaw(n, mine, d_gbest, a, b, scratch,
                                          marks);
                for (std::int32_t i = 0; i < n; ++i) mine[i] = scratch[i];
                t.charge(3 * static_cast<std::uint64_t>(n));
              }
              t.charge(4);
            });
      }

      // --- fitness --------------------------------------------------------
      detail::LaunchFitness(device_, state_->problem, params_.config,
                            pos_pool, "dpso_fitness");
      result_.evaluations += ensemble;

      // --- particle bests -------------------------------------------------
      {
        sim::LaunchOptions opts;
        opts.name = "dpso_pbest_update";
        device_.Launch(params_.config.grid(), params_.config.block(), opts,
                      [=](sim::ThreadCtx& t) {
                        const std::uint64_t tid = t.global_thread();
                        if (tid >= ensemble) return;
                        if (d_pos_cost[tid] < d_pbest_cost[tid]) {
                          d_pbest_cost[tid] = d_pos_cost[tid];
                          const JobId* src = d_pos + tid * n;
                          JobId* dst = d_pbest + tid * n;
                          for (std::int32_t i = 0; i < n; ++i) {
                            dst[i] = src[i];
                          }
                          t.charge(static_cast<std::uint64_t>(n));
                        }
                        t.charge(2);
                      });
      }

      // --- swarm best (reduction + publish) -------------------------------
      detail::LaunchReduction(device_, params_.config, d_pbest_cost,
                              state_->packed_best.data(), "dpso_reduction");
      PublishGbest();
      device_.Synchronize();

      if (params_.trajectory_stride > 0 &&
          (g - 1) % params_.trajectory_stride == 0) {
        std::int64_t packed = 0;
        state_->packed_best.CopyToHost(std::span<std::int64_t>(&packed, 1));
        result_.trajectory.push_back(raw::UnpackCost(packed));
        CDD_TRACE_COUNTER("pdpso.best_cost", result_.trajectory.back());
      }
    }
    if (status_ == meta::StepStatus::kRunning &&
        g_ > params_.generations) {
      status_ = meta::StepStatus::kDone;
    }
    elapsed_ += std::chrono::duration<double>(Clock::now() - t_start).count();
    return status_;
  }

  std::uint64_t Remaining() const override {
    return status_ == meta::StepStatus::kRunning
               ? params_.generations - (g_ - 1)
               : 0;
  }

  Cost BestCost() const override {
    return raw::UnpackCost(*state_->packed_best.data());
  }

  std::unique_ptr<meta::EngineCheckpoint> Checkpoint() const override {
    auto cp = std::make_unique<ParallelDpsoCheckpoint>();
    CopyOut(state_->pos, cp->pos);
    CopyOut(state_->pbest, cp->pbest);
    CopyOut(state_->gbest, cp->gbest);
    CopyOut(state_->pos_cost, cp->pos_cost);
    CopyOut(state_->pbest_cost, cp->pbest_cost);
    cp->packed_best = *state_->packed_best.data();
    cp->next_generation = g_;
    cp->result = result_;
    cp->status = status_;
    cp->elapsed = elapsed_;
    cp->consumed_device = device_.sim_time_s() - clock_at_start_;
    return cp;
  }

  void Restore(const meta::EngineCheckpoint& checkpoint) override {
    const auto* cp =
        dynamic_cast<const ParallelDpsoCheckpoint*>(&checkpoint);
    if (cp == nullptr || cp->pos.size() != state_->pos.size()) {
      throw std::invalid_argument("ParallelDpsoEngine: foreign checkpoint");
    }
    CopyIn(cp->pos, state_->pos);
    CopyIn(cp->pbest, state_->pbest);
    CopyIn(cp->gbest, state_->gbest);
    CopyIn(cp->pos_cost, state_->pos_cost);
    CopyIn(cp->pbest_cost, state_->pbest_cost);
    *state_->packed_best.data() = cp->packed_best;
    g_ = cp->next_generation;
    result_ = cp->result;
    status_ = cp->status;
    elapsed_ = cp->elapsed;
    clock_at_start_ = device_.sim_time_s() - cp->consumed_device;
    finish_cache_.reset();
  }

  meta::EngineOutput Finish() override {
    const GpuRunResult gpu = FinishGpu();
    meta::EngineOutput out;
    out.result.best = gpu.best;
    out.result.best_cost = gpu.best_cost;
    out.result.evaluations = gpu.evaluations;
    out.result.wall_seconds = gpu.wall_seconds;
    out.result.stopped = gpu.stopped;
    out.result.trajectory = gpu.trajectory;
    out.device_seconds = gpu.device_seconds;
    return out;
  }

  /// Memoized until the next Step/Restore so repeated Finish calls stay
  /// idempotent (a second call must not charge a second modeled D2H).
  GpuRunResult FinishGpu() {
    if (finish_cache_) return *finish_cache_;
    const auto t_start = Clock::now();
    GpuRunResult result = result_;
    std::int64_t packed = 0;
    state_->packed_best.CopyToHost(std::span<std::int64_t>(&packed, 1));
    result.best_cost = raw::UnpackCost(packed);
    result.best = detail::DownloadRow(state_->pbest, state_->problem.n(),
                                      raw::UnpackThread(packed));
    result.device_seconds = device_.sim_time_s() - clock_at_start_;
    result.wall_seconds =
        elapsed_ +
        std::chrono::duration<double>(Clock::now() - t_start).count();
    finish_cache_ = result;
    return result;
  }

 private:
  void PublishGbest() {
    const std::uint32_t ensemble = params_.config.ensemble();
    const std::int32_t n = state_->problem.n();
    JobId* d_pbest = state_->pbest.data();
    JobId* d_gbest = state_->gbest.data();
    Cost* d_pbest_cost = state_->pbest_cost.data();
    std::int64_t* d_packed = state_->packed_best.data();
    sim::LaunchOptions opts;
    opts.name = "dpso_gbest_publish";
    device_.Launch(params_.config.grid(), params_.config.block(), opts,
                   [=](sim::ThreadCtx& t) {
                     const std::uint64_t tid = t.global_thread();
                     if (tid >= ensemble) return;
                     // Exactly one thread matches the packed key's id.
                     const std::int64_t packed = *d_packed;
                     if (raw::UnpackThread(packed) != tid) return;
                     if (d_pbest_cost[tid] != raw::UnpackCost(packed)) {
                       return;
                     }
                     const JobId* src = d_pbest + tid * n;
                     for (std::int32_t i = 0; i < n; ++i) {
                       d_gbest[i] = src[i];
                     }
                     t.charge(static_cast<std::uint64_t>(n));
                   });
  }

  template <typename T>
  static void CopyOut(const sim::DeviceBuffer<T>& buffer,
                      std::vector<T>& host) {
    host.assign(buffer.data(), buffer.data() + buffer.size());
  }
  template <typename T>
  static void CopyIn(const std::vector<T>& host,
                     sim::DeviceBuffer<T>& buffer) {
    std::copy(host.begin(), host.end(), buffer.data());
  }

  sim::Device& device_;
  ParallelDpsoParams params_;
  double clock_at_start_;
  std::unique_ptr<DpsoDeviceState> state_;
  std::uint64_t g_ = 1;
  GpuRunResult result_;
  meta::StepStatus status_ = meta::StepStatus::kRunning;
  double elapsed_ = 0.0;
  std::optional<GpuRunResult> finish_cache_;
};

}  // namespace

std::unique_ptr<meta::Engine> MakeParallelDpsoEngine(
    sim::Device& device, const Instance& instance,
    const ParallelDpsoParams& params) {
  return std::make_unique<ParallelDpsoEngine>(device, instance, params);
}

GpuRunResult RunParallelDpso(sim::Device& device, const Instance& instance,
                             const ParallelDpsoParams& params) {
  ParallelDpsoEngine engine(device, instance, params);
  engine.Step(meta::kStepAll);
  return engine.FinishGpu();
}

}  // namespace cdd::par

#pragma once
/// \file detail.hpp
/// \brief Internals shared by the parallel solvers (fitness kernel,
/// ensemble initialization, reduction helpers).  Not part of the public API.

#include <cstdint>
#include <vector>

#include "core/candidate_pool.hpp"
#include "core/sequence.hpp"
#include "cudasim/device.hpp"
#include "cudasim/memory.hpp"
#include "parallel/device_problem.hpp"
#include "parallel/launch_config.hpp"

namespace cdd::par::detail {

/// Fills \p host with `ensemble` initial sequences of length n, one per
/// thread, drawn from the thread's private init stream.  The layout is
/// row-major: thread t owns host[t*n .. t*n + n).
///
/// Without \p base every row is an independent uniform permutation (the
/// paper's default).  With \p base (e.g. the V-shape constructive seed),
/// thread 0 keeps it verbatim and every other thread gets it diversified
/// by a small Fisher-Yates shuffle from its own stream — "the initial
/// configuration ... can be the same or different for all chains"
/// (Section V-A).
std::vector<JobId> MakeInitialSequences(std::uint32_t ensemble,
                                        std::int32_t n, std::uint64_t seed,
                                        const Sequence* base = nullptr);

/// Builds a kDevice-tagged CandidatePoolView over raw device buffers
/// (dense rows, stride == n) — the geometry LaunchFitness consumes.  The
/// tag keeps device views exempt from the host pools' buffer-generation
/// staleness check and tells the transfer-cost model no H2D staging is
/// needed (the rows are already resident).
inline CandidatePoolView DeviceView(JobId* seqs, Cost* costs,
                                    std::int32_t n, std::uint32_t count) {
  CandidatePoolView view;
  view.seqs = seqs;
  view.costs = costs;
  view.n = n;
  view.stride = n;
  view.count = count;
  view.backend = core::PoolBackend::kDevice;
  return view;
}

/// Where the fitness kernel reads the per-unit penalties from.
/// kShared is the paper's choice (Section VI-A); kTexture is its stated
/// future work (Section IX); kGlobal is the unoptimized baseline.
enum class PenaltyMemory { kShared, kGlobal, kTexture };

/// Launches the fitness kernel of Section VI-A over the rows of \p pool —
/// the same CandidatePoolView geometry the host engines batch through,
/// normally built over device buffers via DeviceView (thread t evaluates
/// pool.row(t) into pool.costs[t]; pool.pinned may be null).  Penalty
/// reads go through cooperative shared-memory staging (where they fit),
/// read-only texture fetches, or direct global loads, per \p memory.
///
/// Transfer accounting: the view's backend tag decides whether the launch
/// models staging copies.  kDevice and kPinned views are consumed in
/// place (zero-copy — resident or DMA-able); pageable host views (kHost,
/// kNuma) charge one H2D for the rows before the kernel and one D2H for
/// the results after it, metered on \p device like every other transfer.
void LaunchFitness(sim::Device& device, const DeviceProblem& problem,
                   const LaunchConfig& config, const CandidatePoolView& pool,
                   const char* kernel_name,
                   PenaltyMemory memory = PenaltyMemory::kShared);

/// How the best-of-ensemble reduction is implemented.
/// kAtomic is the paper's choice: "an atomic minimization function ...
/// inside the L2-Cache, which provides a good performance although the
/// full process results in a sequential execution order" (Section VI-D).
/// kTree is the canonical CUDA alternative: a shared-memory tree reduction
/// per block behind barriers, then one atomic per block.
enum class ReductionKind { kAtomic, kTree };

/// Launches the reduction kernel of Section VI-D: folds the packed
/// (costs[t], t) keys of all threads into *packed_best.
void LaunchReduction(sim::Device& device, const LaunchConfig& config,
                     const Cost* costs, std::int64_t* packed_best,
                     const char* kernel_name,
                     ReductionKind kind = ReductionKind::kAtomic);

/// Downloads the winning thread's row from a row-major sequence buffer.
Sequence DownloadRow(const sim::DeviceBuffer<JobId>& seqs, std::int32_t n,
                     std::uint32_t thread);

}  // namespace cdd::par::detail

#pragma once
/// \file parallel_sa.hpp
/// \brief Asynchronous GPU-parallel Simulated Annealing — the paper's main
/// algorithm (Sections V-A, VI, Figures 7, 9, 10).
///
/// Every simulated CUDA thread runs an independent SA chain (Algorithm 1).
/// One generation launches four kernels in order:
///   1. perturbation — candidate = partial Fisher–Yates of the current
///      sequence (per-thread Philox stream),
///   2. fitness      — stages alpha/beta into block shared memory behind a
///      __syncthreads barrier, then evaluates the candidate with the O(n)
///      algorithm of Section IV,
///   3. acceptance   — metropolis rule at the generation's temperature,
///      tracking each thread's personal best,
///   4. reduction    — atomicMin over packed (cost, thread) keys,
/// followed by a device synchronize.  Instance data is uploaded once before
/// the loop and only the winning sequence is downloaded at the end (Fig 9).

#include <cstdint>
#include <memory>

#include "core/instance.hpp"
#include "cudasim/device.hpp"
#include "meta/engine.hpp"
#include "meta/sa.hpp"  // NeighborhoodMode
#include "parallel/detail.hpp"  // PenaltyMemory
#include "parallel/launch_config.hpp"
#include "parallel/result.hpp"

namespace cdd::par {

/// Parameters of the asynchronous parallel SA (defaults = the paper's).
struct ParallelSaParams {
  LaunchConfig config{};            ///< 4 blocks x 192 threads
  std::uint64_t generations = 1000; ///< SA_1000 / SA_5000 of Section VIII
  double mu = 0.88;                 ///< exponential cooling rate
  std::uint32_t pert = 4;           ///< perturbation size
  meta::NeighborhoodMode neighborhood =
      meta::NeighborhoodMode::kSwapWithPeriodicShuffle;
  std::uint32_t shuffle_period = 10;  ///< Section VI-B's "every 10"
  /// Initial temperature; <= 0 applies the Salamon rule (stddev of
  /// `temp_samples` random sequences) on the host before upload.
  double initial_temperature = 0.0;
  std::uint64_t temp_samples = 5000;
  /// Seed the ensemble from the V-shape constructive heuristic instead of
  /// uniform random permutations (thread 0 exact, others diversified).
  bool vshape_init = false;
  /// Memory path of the fitness kernel's penalty reads (Section VI-A
  /// default: shared; Section IX future work: texture).
  detail::PenaltyMemory penalty_memory = detail::PenaltyMemory::kShared;
  /// Reduction implementation (Section VI-D default: atomicMin).
  detail::ReductionKind reduction = detail::ReductionKind::kAtomic;
  std::uint64_t seed = 1;
  std::uint32_t trajectory_stride = 0;
  /// Cooperative cancellation, polled between generations (each generation
  /// is a full 4-kernel ensemble launch, so the poll is negligible).
  StopToken stop{};
};

/// Runs the asynchronous parallel SA for \p instance on \p device.
/// Works for both problems: the fitness kernel dispatches to the CDD or
/// UCDDCP O(n) evaluator according to Instance::problem().
GpuRunResult RunParallelSa(sim::Device& device, const Instance& instance,
                           const ParallelSaParams& params);

/// Creates a resumable parallel-SA engine on \p device (not owned; one
/// engine per device at a time).  Step units are generations; a checkpoint
/// snapshots the ensemble buffers on the host without charging modeled
/// transfer time.  Per-generation Philox streams are stateless in
/// (seed, generation), so resumes replay bit-identically.
std::unique_ptr<meta::Engine> MakeParallelSaEngine(
    sim::Device& device, const Instance& instance,
    const ParallelSaParams& params);

}  // namespace cdd::par

#pragma once
/// \file launch_config.hpp
/// \brief Grid/block geometry of the parallel metaheuristics.
///
/// The paper settles on 4 blocks x 192 threads = 768 chains after sweeping
/// block sizes (Section VIII; bench_ablation_blocksize regenerates the
/// sweep).  Linear one-dimensional geometry is used throughout "to avoid
/// race conditions" when staging penalties into shared memory.

#include <cstdint>

#include "cudasim/device.hpp"

namespace cdd::par {

/// One-dimensional launch geometry; ensemble size = blocks * block_size.
struct LaunchConfig {
  std::uint32_t blocks = 4;        ///< grid size G = (blocks, 1, 1)
  std::uint32_t block_size = 192;  ///< B = (block_size, 1, 1)

  std::uint32_t ensemble() const { return blocks * block_size; }
  sim::Dim3 grid() const { return {blocks, 1, 1}; }
  sim::Dim3 block() const { return {block_size, 1, 1}; }

  /// Geometry for a requested ensemble size: grid = ceil(N / N_B), matching
  /// the paper's allocation rule (Section VI).  The resulting ensemble is
  /// rounded up to a whole number of blocks.
  static LaunchConfig ForEnsemble(std::uint32_t ensemble,
                                  std::uint32_t block_size = 192) {
    LaunchConfig cfg;
    cfg.block_size = block_size == 0 ? 1 : block_size;
    cfg.blocks = (ensemble + cfg.block_size - 1) / cfg.block_size;
    if (cfg.blocks == 0) cfg.blocks = 1;
    return cfg;
  }

  /// Throws sim::GpuError when the geometry exceeds the device's limits.
  void Validate(const sim::Device& device) const {
    device.ValidateLaunch(grid(), block(), 0);
  }
};

}  // namespace cdd::par

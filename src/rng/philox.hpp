#pragma once
/// \file philox.hpp
/// \brief Philox4x32-10 counter-based random number generator.
///
/// Philox (Salmon et al., SC'11) is the algorithm behind cuRAND's default
/// XORWOW alternative `CURAND_RNG_PSEUDO_PHILOX4_32_10` and the natural
/// choice for a CUDA-style runtime: a generator is just a (key, counter)
/// pair, so every simulated GPU thread owns an independent stream derived
/// from (seed, thread id) with zero shared state — exactly how the paper's
/// kernels consume cuRAND sequences (Sections VI-B, VI-C).
///
/// Being counter-based also makes runs bit-for-bit reproducible regardless
/// of how the simulator schedules blocks, which the determinism tests rely
/// on.

#include <array>
#include <cstdint>
#include <limits>

namespace cdd::rng {

/// SplitMix64 — tiny mixing generator used to expand seeds (Vigna).
/// Satisfies std::uniform_random_bit_generator.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast general-purpose host-side generator (Blackman &
/// Vigna).  Used by the serial CPU baselines where stream independence per
/// thread is not needed.  Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 mix(seed);
    for (auto& s : state_) s = mix();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Equivalent to 2^128 calls; used to give worker threads disjoint
  /// subsequences.
  void LongJump();

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Philox4x32-10 block function: encrypts a 128-bit counter under a 64-bit
/// key producing four 32-bit outputs.  Exposed for the test vectors.
std::array<std::uint32_t, 4> Philox4x32Block(
    std::array<std::uint32_t, 4> counter, std::array<std::uint32_t, 2> key);

/// \brief Philox4x32-10 stream generator.
///
/// Constructed from (seed, stream): the seed keys the cipher, the stream id
/// (e.g. the simulated GPU thread index) is baked into the high counter
/// words, so all streams of one seed are provably disjoint.  Satisfies
/// std::uniform_random_bit_generator with 32-bit output.
class Philox4x32 {
 public:
  using result_type = std::uint32_t;

  explicit Philox4x32(std::uint64_t seed, std::uint64_t stream = 0)
      : key_{static_cast<std::uint32_t>(seed),
             static_cast<std::uint32_t>(seed >> 32)},
        counter_{0, 0, static_cast<std::uint32_t>(stream),
                 static_cast<std::uint32_t>(stream >> 32)} {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    if (index_ == 4) {
      block_ = Philox4x32Block(counter_, key_);
      AdvanceCounter();
      index_ = 0;
    }
    return block_[index_++];
  }

  /// Jumps to absolute position \p n in the stream (counts 32-bit outputs).
  /// O(1): counter-based generators are randomly addressable.
  void Seek(std::uint64_t n) {
    counter_[0] = static_cast<std::uint32_t>(n / 4);
    counter_[1] = static_cast<std::uint32_t>((n / 4) >> 32);
    block_ = Philox4x32Block(counter_, key_);
    AdvanceCounter();
    index_ = static_cast<unsigned>(n % 4);
  }

  /// cuRAND-style conversion: 32-bit integer to float in (0, 1].
  /// The paper normalizes cuRAND integers into [0,1] for the metropolis
  /// test; this matches curand_uniform's convention of excluding 0 so that
  /// log()/division by the result stay safe.
  static float ToUniformFloat(std::uint32_t v) {
    return (static_cast<float>(v) + 1.0f) * (1.0f / 4294967296.0f);
  }

  /// Next uniform float in (0, 1].
  float NextUniform() { return ToUniformFloat((*this)()); }

 private:
  void AdvanceCounter() {
    if (++counter_[0] == 0 && ++counter_[1] == 0 && ++counter_[2] == 0) {
      ++counter_[3];
    }
  }

  std::array<std::uint32_t, 2> key_;
  std::array<std::uint32_t, 4> counter_;
  std::array<std::uint32_t, 4> block_{};
  unsigned index_ = 4;
};

}  // namespace cdd::rng

#include "rng/philox.hpp"

namespace cdd::rng {
namespace {

constexpr std::uint32_t kPhiloxM0 = 0xD2511F53u;
constexpr std::uint32_t kPhiloxM1 = 0xCD9E8D57u;
constexpr std::uint32_t kPhiloxW0 = 0x9E3779B9u;  // golden ratio
constexpr std::uint32_t kPhiloxW1 = 0xBB67AE85u;  // sqrt(3) - 1

inline std::uint32_t MulHi(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(a) * b) >> 32);
}

}  // namespace

std::array<std::uint32_t, 4> Philox4x32Block(
    std::array<std::uint32_t, 4> ctr, std::array<std::uint32_t, 2> key) {
  for (int round = 0; round < 10; ++round) {
    const std::uint32_t hi0 = MulHi(kPhiloxM0, ctr[0]);
    const std::uint32_t lo0 = kPhiloxM0 * ctr[0];
    const std::uint32_t hi1 = MulHi(kPhiloxM1, ctr[2]);
    const std::uint32_t lo1 = kPhiloxM1 * ctr[2];
    ctr = {hi1 ^ ctr[1] ^ key[0], lo1, hi0 ^ ctr[3] ^ key[1], lo0};
    key[0] += kPhiloxW0;
    key[1] += kPhiloxW1;
  }
  return ctr;
}

void Xoshiro256::LongJump() {
  static constexpr std::uint64_t kJump[] = {
      0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL, 0x77710069854ee241ULL,
      0x39109bb02acbe635ULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (const std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      (*this)();
    }
  }
  state_ = {s0, s1, s2, s3};
}

}  // namespace cdd::rng

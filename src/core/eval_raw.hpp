#pragma once
/// \file eval_raw.hpp
/// \brief Allocation-free O(n) sequence evaluators on raw arrays.
///
/// These are the library's equivalent of CUDA `__device__` functions: every
/// GPU-simulator kernel thread calls them directly on device buffers, and the
/// host-side convenience wrappers in eval_cdd.hpp / eval_ucddcp.hpp call the
/// very same code.  Keeping one implementation guarantees that the parallel
/// metaheuristics optimize exactly the objective the serial baselines and the
/// oracles see.
///
/// Algorithmic background (Section IV of the paper):
///  * EvalCdd implements the linear algorithm of Lässig et al. [7]: start the
///    schedule at t = 0 without idle time (Cheng & Kahlbacher [9]), then
///    repeatedly shift the whole block right to the next breakpoint — a
///    completion time coinciding with the due date (Hall et al. [10]) — while
///    the right derivative of the piecewise-linear cost is negative
///    (Theorem 1).
///  * EvalUcddcp implements the linear algorithm of Awasthi et al. [8]:
///    solve the CDD relaxation to fix the due-date position r (Property 1),
///    then decide each job's compression independently — a tardy job is
///    compressed to its minimum iff the suffix sum of tardiness unit
///    penalties exceeds its compression penalty, an early job iff the prefix
///    sum of earliness unit penalties of its predecessors does (Property 2
///    makes compression all-or-nothing).
///
/// Both functions are noexcept, perform no allocation and touch each input
/// element O(1) times.
///
/// Batched evaluation (the generation hot path): EvalCddFused folds the
/// second pass of EvalCdd into the breakpoint walk — the objective is
/// piecewise linear in the start time s with integral slope pl - pe, so the
/// cost at the chosen offset is the s = 0 cost plus slope x distance per
/// segment, bit-identical to the two-pass result in exact integer
/// arithmetic.  EvalCddBatch / EvalUcddcpBatch run the fused evaluator over
/// B stride-aligned sequences of one candidate pool while the instance
/// arrays stay cache-resident, with no per-candidate dispatch.

#include <cstdint>

#include "core/types.hpp"

namespace cdd::raw {

/// Result of evaluating a fixed job sequence.
struct EvalResult {
  Cost cost = 0;    ///< optimal objective value for this sequence.
  Time offset = 0;  ///< start time of the first job in the optimal schedule.
  /// 0-based *position* (index into the sequence) of the job whose
  /// completion time equals the due date, or -1 when the optimal schedule
  /// starts at t=0 with no job finishing exactly at d.
  std::int32_t pinned = -1;
};

/// \brief Optimal schedule cost of sequence \p seq for the CDD problem.
///
/// \param n      number of jobs (>= 1)
/// \param d      common due date (>= 0)
/// \param seq    permutation of {0..n-1}; seq[k] is processed k-th
/// \param proc   P_i, indexed by job id
/// \param alpha  earliness unit penalties, indexed by job id
/// \param beta   tardiness unit penalties, indexed by job id
inline EvalResult EvalCdd(std::int32_t n, Time d, const JobId* seq,
                          const Time* proc, const Cost* alpha,
                          const Cost* beta) noexcept {
  // Pass 1: left-aligned schedule (s = 0).  tau = last position whose
  // completion time is <= d; pe / pl = unit-penalty mass left / right of d.
  Time c = 0;
  Time prefix_tau = 0;
  std::int32_t tau = -1;
  Cost pe = 0;
  Cost pl = 0;
  for (std::int32_t i = 0; i < n; ++i) {
    const JobId j = seq[i];
    c += proc[j];
    if (c <= d) {
      tau = i;
      prefix_tau = c;
      pe += alpha[j];
    } else {
      pl += beta[j];
    }
  }

  Time offset = 0;
  std::int32_t pinned = -1;
  if (tau >= 0) {
    if (prefix_tau < d) {
      // Not at a breakpoint.  Slide right to the first breakpoint only if
      // the cost is strictly decreasing there (right derivative pl-pe < 0).
      if (pl < pe) {
        offset = d - prefix_tau;
        pinned = tau;
      }
    } else {
      pinned = tau;  // s = 0 already has job tau finishing at d.
    }
    // Crossing loop: while making the pinned job tardy strictly improves
    // the cost (Theorem 1 Case 2), shift right by its processing time so
    // that the previous job completes at d.
    while (pinned > 0) {
      const JobId j = seq[pinned];
      const Cost pl_next = pl + beta[j];
      const Cost pe_next = pe - alpha[j];
      if (pl_next < pe_next) {
        offset += proc[j];
        pl = pl_next;
        pe = pe_next;
        --pinned;
      } else {
        break;
      }
    }
  }

  // Pass 2: evaluate the objective at the chosen offset.
  Cost cost = 0;
  c = offset;
  for (std::int32_t i = 0; i < n; ++i) {
    const JobId j = seq[i];
    c += proc[j];
    cost += (c <= d) ? alpha[j] * (d - c) : beta[j] * (c - d);
  }
  return {cost, offset, pinned};
}

/// \brief Optimal schedule cost of sequence \p seq for the UCDDCP problem.
///
/// Precondition: d >= sum(proc) (unrestricted case); callers that cannot
/// guarantee this should use Instance::Validate() first.  When no job is
/// pinned at the due date (possible only when every earliness penalty is
/// zero) compression can never pay off and the CDD cost is returned.
///
/// \param minproc  M_i, minimum processing times, indexed by job id
/// \param gamma    gamma_i, compression unit penalties, indexed by job id
/// \param x_out    optional (may be nullptr): receives the chosen reduction
///                 X_i per *job id*; all n entries are written.
inline EvalResult EvalUcddcp(std::int32_t n, Time d, const JobId* seq,
                             const Time* proc, const Time* minproc,
                             const Cost* alpha, const Cost* beta,
                             const Cost* gamma, Time* x_out = nullptr) noexcept {
  const EvalResult base = EvalCdd(n, d, seq, proc, alpha, beta);
  if (x_out != nullptr) {
    for (std::int32_t i = 0; i < n; ++i) x_out[i] = 0;
  }
  const std::int32_t r = base.pinned;
  if (r < 0) {
    return base;  // degenerate: no pinned job => no profitable compression.
  }

  Cost cost = 0;
  Time compressed_before_d = 0;  // sum of (P_k - X_k) over positions <= r

  // Tardy side: walk positions n-1 .. r+1 keeping the suffix sum of beta.
  // The tardiness of the job at position k is the sum of the effective
  // processing times of positions r+1..k, so one unit of compression of
  // position k saves `sb` (the beta-mass at or after k) and costs gamma.
  Cost sb = 0;
  for (std::int32_t i = n - 1; i > r; --i) {
    const JobId j = seq[i];
    sb += beta[j];
    const Time reducible = proc[j] - minproc[j];
    const Time x = (sb > gamma[j]) ? reducible : Time{0};
    cost += (proc[j] - x) * sb + gamma[j] * x;
    if (x_out != nullptr) x_out[j] = x;
  }

  // Early side: walk positions 0 .. r keeping the prefix sum of alpha of
  // strictly preceding jobs.  Compressing position k moves every earlier
  // job right toward d, saving `pa` per unit.
  Cost pa = 0;
  for (std::int32_t i = 0; i <= r; ++i) {
    const JobId j = seq[i];
    const Time reducible = proc[j] - minproc[j];
    const Time x = (pa > gamma[j]) ? reducible : Time{0};
    cost += (proc[j] - x) * pa + gamma[j] * x;
    compressed_before_d += proc[j] - x;
    if (x_out != nullptr) x_out[j] = x;
    pa += alpha[j];
  }

  return {cost, d - compressed_before_d, r};
}

/// \brief Single-pass variant of EvalCdd (bit-identical results).
///
/// Computes the s = 0 cost during the tau/pe/pl scan, then follows the
/// breakpoint walk of Theorem 1 accumulating slope x distance instead of
/// re-scanning the sequence: cost(s) is piecewise linear with right
/// derivative pl - pe, every quantity is integral, so the folded sum equals
/// the explicit second pass exactly.  This is the row evaluator behind the
/// batched entry points below and the simulator's fitness kernel; EvalCdd
/// keeps the literal two-pass shape of Lässig et al. as the reference.
inline EvalResult EvalCddFused(std::int32_t n, Time d, const JobId* seq,
                               const Time* proc, const Cost* alpha,
                               const Cost* beta) noexcept {
  Time c = 0;
  Time prefix_tau = 0;
  std::int32_t tau = -1;
  Cost pe = 0;
  Cost pl = 0;
  Cost cost = 0;  // objective of the left-aligned schedule (s = 0)
  for (std::int32_t i = 0; i < n; ++i) {
    const JobId j = seq[i];
    c += proc[j];
    if (c <= d) {
      tau = i;
      prefix_tau = c;
      pe += alpha[j];
      cost += alpha[j] * (d - c);
    } else {
      pl += beta[j];
      cost += beta[j] * (c - d);
    }
  }

  Time offset = 0;
  std::int32_t pinned = -1;
  if (tau >= 0) {
    if (prefix_tau < d) {
      // Slide right to the first breakpoint only while strictly improving;
      // no job crosses d on the way, so the slope pl - pe is constant.
      if (pl < pe) {
        offset = d - prefix_tau;
        cost += offset * (pl - pe);
        pinned = tau;
      }
    } else {
      pinned = tau;
    }
    while (pinned > 0) {
      const JobId j = seq[pinned];
      const Cost pl_next = pl + beta[j];
      const Cost pe_next = pe - alpha[j];
      if (pl_next < pe_next) {
        // Job `pinned` is tardy over the whole shift, so the slope on this
        // segment is pl_next - pe_next (negative by the branch condition).
        offset += proc[j];
        cost += proc[j] * (pl_next - pe_next);
        pl = pl_next;
        pe = pe_next;
        --pinned;
      } else {
        break;
      }
    }
  }
  return {cost, offset, pinned};
}

/// \brief Evaluates \p batch sequences of a stride-aligned SoA pool against
/// the CDD objective: row b lives at seqs[b*stride .. b*stride + n).
///
/// Writes costs[b] for every row; \p pinned and \p offsets are optional
/// parallel outputs.  The instance arrays are read once per row with no
/// per-candidate dispatch — this is the generation hot path shared by the
/// serial metaheuristics, the host ensembles and the service.
inline void EvalCddBatch(std::int32_t n, Time d, const JobId* seqs,
                         std::int32_t stride, std::int32_t batch,
                         const Time* proc, const Cost* alpha,
                         const Cost* beta, Cost* costs,
                         std::int32_t* pinned = nullptr,
                         Time* offsets = nullptr) noexcept {
  for (std::int32_t b = 0; b < batch; ++b) {
    const EvalResult r = EvalCddFused(
        n, d, seqs + static_cast<std::size_t>(b) * stride, proc, alpha,
        beta);
    costs[b] = r.cost;
    if (pinned != nullptr) pinned[b] = r.pinned;
    if (offsets != nullptr) offsets[b] = r.offset;
  }
}

/// Single-pass-base variant of EvalUcddcp (bit-identical results): the CDD
/// relaxation is solved by EvalCddFused, the compression decisions are the
/// unchanged Property 2 walks.
inline EvalResult EvalUcddcpFused(std::int32_t n, Time d, const JobId* seq,
                                  const Time* proc, const Time* minproc,
                                  const Cost* alpha, const Cost* beta,
                                  const Cost* gamma,
                                  Time* x_out = nullptr) noexcept {
  const EvalResult base = EvalCddFused(n, d, seq, proc, alpha, beta);
  if (x_out != nullptr) {
    for (std::int32_t i = 0; i < n; ++i) x_out[i] = 0;
  }
  const std::int32_t r = base.pinned;
  if (r < 0) {
    return base;
  }

  Cost cost = 0;
  Time compressed_before_d = 0;

  Cost sb = 0;
  for (std::int32_t i = n - 1; i > r; --i) {
    const JobId j = seq[i];
    sb += beta[j];
    const Time reducible = proc[j] - minproc[j];
    const Time x = (sb > gamma[j]) ? reducible : Time{0};
    cost += (proc[j] - x) * sb + gamma[j] * x;
    if (x_out != nullptr) x_out[j] = x;
  }

  Cost pa = 0;
  for (std::int32_t i = 0; i <= r; ++i) {
    const JobId j = seq[i];
    const Time reducible = proc[j] - minproc[j];
    const Time x = (pa > gamma[j]) ? reducible : Time{0};
    cost += (proc[j] - x) * pa + gamma[j] * x;
    compressed_before_d += proc[j] - x;
    if (x_out != nullptr) x_out[j] = x;
    pa += alpha[j];
  }

  return {cost, d - compressed_before_d, r};
}

/// --- Parallel machines & early work ------------------------------------
///
/// An m-machine candidate is a permutation row plus m-1 ascending split
/// positions in [0, n]: machine k runs the contiguous slice
/// [splits[k-1], splits[k]) of the row (splits[-1] = 0, splits[m-1] = n),
/// in row order, as its own single-machine schedule.  Slices may be empty
/// — an idle machine contributes zero cost.  The splits of row b live at
/// splits[b*(m-1) .. b*(m-1) + m-1) in the pool's splits array.
///
/// EvalCddMachines evaluates the paper's total-penalty objective per
/// machine with the fused O(n) evaluator — each machine chooses its own
/// optimal start offset independently, so the sum of per-slice optima is
/// the optimal cost of the assignment+order encoded by the row.
///
/// EvalEarlyWork evaluates the late-work objective of arXiv:2007.12388:
/// every machine starts at t = 0 with no idle time, the work a machine
/// processes after d is max(0, L_k - d) where L_k is its load, and the
/// returned cost is the total late work (minimizing it maximizes total
/// early work, since the loads sum to a constant).  Order within a
/// machine cannot change its load, so the objective is a function of the
/// assignment alone — the search effectively explores set partitions.

/// Total-penalty cost of an m-machine candidate (see the block comment).
/// With m == 1 (splits may then be nullptr) this is exactly EvalCddFused.
inline EvalResult EvalCddMachines(std::int32_t n, std::int32_t m, Time d,
                                  const JobId* seq,
                                  const std::int32_t* splits,
                                  const Time* proc, const Cost* alpha,
                                  const Cost* beta) noexcept {
  if (m <= 1) return EvalCddFused(n, d, seq, proc, alpha, beta);
  Cost cost = 0;
  std::int32_t begin = 0;
  for (std::int32_t k = 0; k < m; ++k) {
    const std::int32_t end = (k + 1 < m) ? splits[k] : n;
    if (end > begin) {
      cost += EvalCddFused(end - begin, d, seq + begin, proc, alpha, beta)
                  .cost;
    }
    begin = end;
  }
  // The per-machine offsets/pinned positions do not fold into one scalar;
  // multi-machine results report cost only.
  return {cost, 0, -1};
}

/// Late-work cost of an m-machine candidate (see the block comment).
/// Also defined for m == 1: the whole row is one machine's load.
inline EvalResult EvalEarlyWork(std::int32_t n, std::int32_t m, Time d,
                                const JobId* seq, const std::int32_t* splits,
                                const Time* proc) noexcept {
  Cost cost = 0;
  std::int32_t begin = 0;
  for (std::int32_t k = 0; k < m; ++k) {
    const std::int32_t end = (k + 1 < m) ? splits[k] : n;
    Time load = 0;
    for (std::int32_t i = begin; i < end; ++i) load += proc[seq[i]];
    if (load > d) cost += load - d;
    begin = end;
  }
  return {cost, 0, -1};
}

/// Batched total-penalty evaluation of m-machine rows: row b pairs
/// seqs[b*stride ..) with splits[b*(m-1) ..).  With m == 1 this is
/// EvalCddBatch (splits may be nullptr).
inline void EvalCddMachinesBatch(std::int32_t n, std::int32_t m, Time d,
                                 const JobId* seqs, std::int32_t stride,
                                 const std::int32_t* splits,
                                 std::int32_t batch, const Time* proc,
                                 const Cost* alpha, const Cost* beta,
                                 Cost* costs,
                                 std::int32_t* pinned = nullptr,
                                 Time* offsets = nullptr) noexcept {
  if (m <= 1) {
    EvalCddBatch(n, d, seqs, stride, batch, proc, alpha, beta, costs,
                 pinned, offsets);
    return;
  }
  for (std::int32_t b = 0; b < batch; ++b) {
    const EvalResult r = EvalCddMachines(
        n, m, d, seqs + static_cast<std::size_t>(b) * stride,
        splits + static_cast<std::size_t>(b) * (m - 1), proc, alpha, beta);
    costs[b] = r.cost;
    if (pinned != nullptr) pinned[b] = r.pinned;
    if (offsets != nullptr) offsets[b] = r.offset;
  }
}

/// Batched late-work evaluation of m-machine rows (layout as above;
/// m == 1 rows need no splits array).
inline void EvalEarlyWorkBatch(std::int32_t n, std::int32_t m, Time d,
                               const JobId* seqs, std::int32_t stride,
                               const std::int32_t* splits,
                               std::int32_t batch, const Time* proc,
                               Cost* costs, std::int32_t* pinned = nullptr,
                               Time* offsets = nullptr) noexcept {
  for (std::int32_t b = 0; b < batch; ++b) {
    const EvalResult r = EvalEarlyWork(
        n, m, d, seqs + static_cast<std::size_t>(b) * stride,
        m > 1 ? splits + static_cast<std::size_t>(b) * (m - 1) : nullptr,
        proc);
    costs[b] = r.cost;
    if (pinned != nullptr) pinned[b] = r.pinned;
    if (offsets != nullptr) offsets[b] = r.offset;
  }
}

/// Batched UCDDCP evaluation over a stride-aligned SoA pool; see
/// EvalCddBatch for the layout contract.
inline void EvalUcddcpBatch(std::int32_t n, Time d, const JobId* seqs,
                            std::int32_t stride, std::int32_t batch,
                            const Time* proc, const Time* minproc,
                            const Cost* alpha, const Cost* beta,
                            const Cost* gamma, Cost* costs,
                            std::int32_t* pinned = nullptr,
                            Time* offsets = nullptr) noexcept {
  for (std::int32_t b = 0; b < batch; ++b) {
    const EvalResult r = EvalUcddcpFused(
        n, d, seqs + static_cast<std::size_t>(b) * stride, proc, minproc,
        alpha, beta, gamma);
    costs[b] = r.cost;
    if (pinned != nullptr) pinned[b] = r.pinned;
    if (offsets != nullptr) offsets[b] = r.offset;
  }
}

}  // namespace cdd::raw

#pragma once
/// \file schedule.hpp
/// \brief Fully materialized schedules: who runs when, and at what cost.
///
/// The evaluators in eval_cdd.hpp / eval_ucddcp.hpp only return the optimal
/// cost of a sequence; a Schedule additionally records the completion time
/// and compression of every job so that examples, tests and visualisation
/// can inspect the Gantt structure (Figures 1-6 of the paper).

#include <span>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "core/sequence.hpp"
#include "core/types.hpp"

namespace cdd {

/// A concrete schedule for an Instance, single- or multi-machine.
///
/// All vectors are indexed by *position* k (processing order), not job id:
/// order[k] is the job processed k-th, completion[k] its completion time and
/// compression[k] the reduction X applied to its processing time.
///
/// Multi-machine schedules (Instance::machines() > 1) additionally carry
/// `machine[k]`, the machine running position k; positions of one machine
/// are contiguous and ascending in k (the per-machine V-shape sequence),
/// and completion times are ordered *within* a machine, not globally.  An
/// empty `machine` vector means the single-machine layout (machine 0
/// everywhere).
struct Schedule {
  Sequence order;
  std::vector<Time> completion;
  std::vector<Time> compression;
  std::vector<std::int32_t> machine;

  std::size_t size() const { return order.size(); }

  /// Machine of position \p k (0 when the vector is absent).
  std::int32_t machine_of(std::size_t k) const {
    return machine.empty() ? 0 : machine[k];
  }
};

/// Start time of the job at position \p k (completion minus effective
/// processing time P - X of the job scheduled there).
Time StartTime(const Instance& instance, const Schedule& schedule,
               std::size_t k);

/// Objective value (1) / (2) of an explicit schedule, computed from first
/// principles (max(0, d-C), max(0, C-d), gamma*X).  This is intentionally
/// independent of the O(n) evaluators so tests can cross-check them.
Cost EvaluateSchedule(const Instance& instance, const Schedule& schedule);

/// \brief Checks feasibility of \p schedule for \p instance and throws
/// std::invalid_argument on the first violation:
///  * order is a permutation of the jobs,
///  * 0 <= X_i <= P_i - M_i,
///  * completion times strictly ordered with no overlap:
///    C_k >= C_{k-1} + (P - X) and C_0 >= P - X (machine starts at t >= 0).
/// CDD optimality additionally implies *no idle time*; pass
/// \p require_no_idle to enforce equality in the spacing constraints.
void ValidateSchedule(const Instance& instance, const Schedule& schedule,
                      bool require_no_idle = false);

/// \brief Materializes a multi-machine schedule from a permutation plus the
/// (machines()-1) ascending split positions of the candidate encoding (see
/// eval_raw.hpp): machine k runs the slice [splits[k-1], splits[k]) of
/// \p seq.  Under the total-penalty objective each machine's slice starts
/// at its slice-optimal offset (EvalCddFused); under early work every
/// machine starts at time zero.  Works for machines() == 1 with an empty
/// \p splits span.
Schedule BuildMachineSchedule(const Instance& instance,
                              std::span<const JobId> seq,
                              std::span<const std::int32_t> splits);

/// Renders a small ASCII Gantt chart of the schedule with the due date
/// marked, mirroring Figures 1-6 of the paper.  Intended for the examples;
/// schedules wider than \p max_width time units are scaled down.
std::string RenderGantt(const Instance& instance, const Schedule& schedule,
                        std::size_t max_width = 100);

}  // namespace cdd

#pragma once
/// \file sequence.hpp
/// \brief Job sequences (permutations) and the perturbation primitives used
/// by every metaheuristic in the library.
///
/// A sequence assigns machine positions to jobs: sequence[k] is the id of
/// the job processed k-th.  The paper's neighbourhood operator (Section VI-B)
/// picks `Pert` positions uniformly at random and shuffles the jobs found
/// there with the Fisher–Yates algorithm while every other job keeps its
/// position; that operator is PartialFisherYates() below.

#include <concepts>
#include <cstdint>
#include <random>  // std::uniform_random_bit_generator
#include <span>
#include <vector>

#include "core/types.hpp"

namespace cdd {

/// A job sequence; element k is the job processed k-th on the machine.
using Sequence = std::vector<JobId>;

/// Returns the identity sequence (0, 1, ..., n-1).
Sequence IdentitySequence(std::size_t n);

/// True iff \p seq is a permutation of {0, ..., n-1}.
bool IsPermutation(std::span<const JobId> seq);

/// Throws std::invalid_argument unless IsPermutation(seq) and seq.size()==n.
void ValidateSequence(std::span<const JobId> seq, std::size_t n);

/// Uniformly random integer in [0, bound) from a 64-bit generator, using
/// Lemire's multiply-shift rejection-free mapping (bias is below 2^-32 for
/// every bound that occurs here; the statistical tests in tests/rng cover
/// this helper).
template <std::uniform_random_bit_generator Rng>
inline std::uint32_t UniformBelow(Rng& rng, std::uint32_t bound) {
  const std::uint64_t x = static_cast<std::uint32_t>(rng());
  return static_cast<std::uint32_t>((x * bound) >> 32);
}

/// Fisher–Yates shuffle of the whole range (Cormen et al. [14]).
template <std::uniform_random_bit_generator Rng>
inline void FisherYates(std::span<JobId> seq, Rng& rng) {
  for (std::size_t i = seq.size(); i > 1; --i) {
    const std::uint32_t j = UniformBelow(rng, static_cast<std::uint32_t>(i));
    std::swap(seq[i - 1], seq[j]);
  }
}

/// Returns a uniformly random permutation of {0, ..., n-1}.
template <std::uniform_random_bit_generator Rng>
inline Sequence RandomSequence(std::size_t n, Rng& rng) {
  Sequence seq = IdentitySequence(n);
  FisherYates(std::span<JobId>(seq), rng);
  return seq;
}

/// \brief The paper's perturbation operator: choose \p pert distinct
/// positions uniformly at random and shuffle the jobs at those positions
/// (Fisher–Yates on the selected sub-sequence); all other jobs stay put.
///
/// \p scratch must provide at least \p pert elements of JobId storage and
/// \p pert elements of position storage; the overload below allocates.
/// With pert >= seq.size() this degenerates to a full shuffle.
template <std::uniform_random_bit_generator Rng>
inline void PartialFisherYates(std::span<JobId> seq, std::uint32_t pert,
                               Rng& rng, std::span<std::uint32_t> positions,
                               std::span<JobId> values) {
  const auto n = static_cast<std::uint32_t>(seq.size());
  if (n < 2 || pert < 2) return;
  if (pert > n) pert = n;
  // Floyd's algorithm would avoid the retry loop, but pert is tiny (4 in the
  // paper) so rejection sampling of distinct positions is cheap and keeps
  // the RNG stream layout identical to the GPU kernel implementation.
  std::uint32_t chosen = 0;
  while (chosen < pert) {
    const std::uint32_t p = UniformBelow(rng, n);
    bool duplicate = false;
    for (std::uint32_t k = 0; k < chosen; ++k) {
      if (positions[k] == p) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) positions[chosen++] = p;
  }
  for (std::uint32_t k = 0; k < pert; ++k) values[k] = seq[positions[k]];
  FisherYates(values.subspan(0, pert), rng);
  for (std::uint32_t k = 0; k < pert; ++k) seq[positions[k]] = values[k];
}

/// Allocating convenience overload of PartialFisherYates().
template <std::uniform_random_bit_generator Rng>
inline void PartialFisherYates(std::span<JobId> seq, std::uint32_t pert,
                               Rng& rng) {
  std::vector<std::uint32_t> positions(pert);
  std::vector<JobId> values(pert);
  PartialFisherYates(seq, pert, rng, std::span<std::uint32_t>(positions),
                     std::span<JobId>(values));
}

/// Swaps two distinct random positions (the F1 "velocity" operator of the
/// DPSO, Section VII).  No-op for n < 2.
template <std::uniform_random_bit_generator Rng>
inline void RandomSwap(std::span<JobId> seq, Rng& rng) {
  const auto n = static_cast<std::uint32_t>(seq.size());
  if (n < 2) return;
  const std::uint32_t i = UniformBelow(rng, n);
  std::uint32_t j = UniformBelow(rng, n - 1);
  if (j >= i) ++j;
  std::swap(seq[i], seq[j]);
}

/// Number of positions at which two sequences differ (used by the
/// diversity diagnostics of the sync-vs-async ablation).
std::size_t HammingDistance(std::span<const JobId> a,
                            std::span<const JobId> b);

}  // namespace cdd

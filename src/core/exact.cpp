#include "core/exact.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <string>

#include "core/reference_eval.hpp"

namespace cdd {

ExactLimitError::ExactLimitError(std::string_view solver, std::size_t n,
                                 std::size_t limit)
    : std::invalid_argument(std::string(solver) + ": n=" + std::to_string(n) +
                            " exceeds the exact-tier limit " +
                            std::to_string(limit)),
      n_(n),
      limit_(limit) {}

namespace {

constexpr std::size_t kBruteForceLimit = 10;

ExactResult BruteForce(const Instance& instance, std::string_view name,
                       const std::function<Cost(std::span<const JobId>)>&
                           evaluate) {
  if (instance.size() > kBruteForceLimit) {
    throw ExactLimitError(name, instance.size(), kBruteForceLimit);
  }
  Sequence seq = IdentitySequence(instance.size());
  ExactResult best;
  do {
    const Cost cost = evaluate(seq);
    if (cost < best.cost) {
      best.cost = cost;
      best.sequence = seq;
    }
  } while (std::next_permutation(seq.begin(), seq.end()));
  return best;
}

}  // namespace

ExactResult BruteForceCdd(const Instance& instance) {
  return BruteForce(instance, "BruteForceCdd",
                    [&](std::span<const JobId> seq) {
                      return ReferenceCddCost(instance, seq);
                    });
}

ExactResult BruteForceUcddcp(const Instance& instance) {
  return BruteForce(instance, "BruteForceUcddcp",
                    [&](std::span<const JobId> seq) {
                      return ReferenceUcddcpCost(instance, seq);
                    });
}

ExactResult ExactVShapeCdd(const Instance& instance) {
  if (!instance.is_unrestricted()) {
    throw std::invalid_argument(
        "ExactVShapeCdd: only valid for unrestricted instances");
  }
  const std::size_t n = instance.size();
  constexpr std::size_t kVShapeLimit = 24;
  if (n > kVShapeLimit) {
    throw ExactLimitError("ExactVShapeCdd", n, kVShapeLimit);
  }

  // Global ratio orders.  Early side: nonincreasing P/alpha (ties broken by
  // id for determinism); comparing a/b vs c/d as a*d vs c*b keeps integers.
  Sequence early_order = IdentitySequence(n);
  std::sort(early_order.begin(), early_order.end(),
            [&](JobId a, JobId b) {
              const Job& ja = instance.job(static_cast<std::size_t>(a));
              const Job& jb = instance.job(static_cast<std::size_t>(b));
              const Cost lhs = ja.proc * jb.early;
              const Cost rhs = jb.proc * ja.early;
              return lhs != rhs ? lhs > rhs : a < b;
            });
  // Tardy side: nondecreasing P/beta.
  Sequence tardy_order = IdentitySequence(n);
  std::sort(tardy_order.begin(), tardy_order.end(),
            [&](JobId a, JobId b) {
              const Job& ja = instance.job(static_cast<std::size_t>(a));
              const Job& jb = instance.job(static_cast<std::size_t>(b));
              const Cost lhs = ja.proc * jb.tardy;
              const Cost rhs = jb.proc * ja.tardy;
              return lhs != rhs ? lhs < rhs : a < b;
            });

  ExactResult best;
  Sequence candidate(n);
  const std::uint32_t limit = 1u << n;
  for (std::uint32_t mask = 0; mask < limit; ++mask) {
    // Bit set => job is on the early side (completes at or before d).
    std::size_t pos = 0;
    for (const JobId id : early_order) {
      if (mask & (1u << id)) candidate[pos++] = id;
    }
    for (const JobId id : tardy_order) {
      if (!(mask & (1u << id))) candidate[pos++] = id;
    }
    // Last early job completes exactly at d; evaluate directly.
    const Time d = instance.due_date();
    Time sum_early = 0;
    for (std::size_t k = 0; k < n; ++k) {
      const JobId id = candidate[k];
      if (mask & (1u << id)) {
        sum_early += instance.job(static_cast<std::size_t>(id)).proc;
      }
    }
    Cost cost = 0;
    Time c = d - sum_early;
    for (std::size_t k = 0; k < n; ++k) {
      const Job& job =
          instance.job(static_cast<std::size_t>(candidate[k]));
      c += job.proc;
      cost += job.early * std::max<Time>(0, d - c);
      cost += job.tardy * std::max<Time>(0, c - d);
    }
    if (cost < best.cost) {
      best.cost = cost;
      best.sequence = candidate;
    }
  }
  return best;
}

}  // namespace cdd

#pragma once
/// \file eval_cdd.hpp
/// \brief Instance-level interface to the O(n) CDD sequence evaluator
/// (Lässig et al. [7]) — layer (ii) of the paper's two-layered approach.

#include <span>

#include "core/candidate_pool.hpp"
#include "core/eval_raw.hpp"
#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "core/sequence.hpp"

namespace cdd {

/// \brief Reusable evaluator for one instance.
///
/// Flattens the instance into structure-of-arrays form once so that every
/// Evaluate() call is a pure O(n) scan with no indirection through Job
/// structs — the same memory layout the GPU-simulator kernels use.
class CddEvaluator {
 public:
  explicit CddEvaluator(const Instance& instance);

  /// Optimal cost of \p seq.  Does not validate the permutation (hot path);
  /// use ValidateSequence() at call sites that consume external input.
  Cost Evaluate(std::span<const JobId> seq) const;

  /// Optimal cost plus the schedule geometry (offset / pinned position).
  raw::EvalResult EvaluateDetailed(std::span<const JobId> seq) const;

  /// Evaluates every live row of \p pool in one raw::EvalCddBatch call,
  /// filling pool.costs() and pool.pinned().
  void EvaluateBatch(CandidatePool& pool) const;

  /// Materializes the optimal schedule of \p seq (for reporting and tests).
  Schedule BuildSchedule(std::span<const JobId> seq) const;

  std::size_t size() const { return proc_.size(); }
  Time due_date() const { return due_date_; }

  const Time* proc_data() const { return proc_.data(); }
  const Cost* alpha_data() const { return alpha_.data(); }
  const Cost* beta_data() const { return beta_.data(); }

 private:
  Time due_date_;
  std::vector<Time> proc_;
  std::vector<Cost> alpha_;
  std::vector<Cost> beta_;
};

/// One-shot convenience wrapper (validates the sequence).
Cost EvaluateCddSequence(const Instance& instance, std::span<const JobId> seq);

}  // namespace cdd

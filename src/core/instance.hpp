#pragma once
/// \file instance.hpp
/// \brief Problem instances for the CDD and UCDDCP scheduling problems.
///
/// An Instance bundles the per-job data of Section II of the paper:
///   P_i     processing time of job i
///   M_i     minimum (fully compressed) processing time of job i   (UCDDCP)
///   alpha_i earliness penalty per time unit
///   beta_i  tardiness penalty per time unit
///   gamma_i compression penalty per time unit                     (UCDDCP)
/// together with the common due date d.
///
/// The same struct serves both problems: a CDD instance simply ignores
/// M and gamma (conventionally M_i = P_i, gamma_i = 0).

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace cdd {

/// Per-job data of a single job.
struct Job {
  Time proc = 0;      ///< P_i  — nominal processing time.
  Time min_proc = 0;  ///< M_i  — minimum processing time (== proc for CDD).
  Cost early = 0;     ///< alpha_i — earliness penalty per time unit.
  Cost tardy = 0;     ///< beta_i  — tardiness penalty per time unit.
  Cost compress = 0;  ///< gamma_i — compression penalty per time unit.

  friend bool operator==(const Job&, const Job&) = default;
};

/// Which problem variant an instance describes.
enum class Problem {
  kCdd,     ///< Common Due-Date problem, objective (1).
  kUcddcp,  ///< Unrestricted CDD with Controllable Processing Times, obj (2).
  /// The *restricted* controllable case (d may be < sum P_i) the paper's
  /// introduction motivates; outside the O(n) algorithm's scope, solvable
  /// through lp::LpSequenceEvaluator (the generic layer (ii)).
  kCddcp,
};

/// Which objective the solvers minimize over an instance's schedules.
enum class ScheduleObjective {
  /// Weighted earliness/tardiness (+ compression) penalties — objective
  /// (1)/(2) of the source paper.  The default everywhere.
  kTotalPenalty,
  /// Late-work minimization, the complement of early-work maximization on
  /// identical parallel machines with a common due date (Györgyi & Kis;
  /// arXiv:2007.12388): cost = sum over machines of max(0, L_k - d) where
  /// L_k is machine k's load.  Maximizing total early work
  /// sum_k min(L_k, d) is equivalent since sum_k L_k is constant.
  /// Per-job penalties are ignored; only P_i and d matter.
  kEarlyWork,
};

/// \brief A complete problem instance.
///
/// Invariants (checked by Validate()):
///  * n >= 1, d >= 0
///  * P_i >= 1, 0 <= M_i <= P_i
///  * alpha_i, beta_i >= 0, gamma_i >= 0
///  * for Problem::kUcddcp additionally d >= sum(P_i) ("unrestricted").
class Instance {
 public:
  Instance() = default;

  /// Builds an instance from parallel arrays.  \p min_proc and \p compress
  /// may be empty, in which case M_i = P_i and gamma_i = 0 (pure CDD data).
  Instance(Problem problem, Time due_date, std::vector<Time> proc,
           std::vector<Cost> early, std::vector<Cost> tardy,
           std::vector<Time> min_proc = {}, std::vector<Cost> compress = {});

  /// Builds an instance from a job list.
  Instance(Problem problem, Time due_date, std::vector<Job> jobs);

  Problem problem() const { return problem_; }
  Time due_date() const { return due_date_; }
  /// Number of identical parallel machines (1 = the source paper's
  /// single-machine setting; >1 follows arXiv:1405.1234 / 2007.12388).
  std::int32_t machines() const { return machines_; }
  /// Objective minimized over this instance's schedules.
  ScheduleObjective objective() const { return objective_; }
  std::size_t size() const { return jobs_.size(); }
  const Job& job(std::size_t i) const { return jobs_[i]; }
  const std::vector<Job>& jobs() const { return jobs_; }

  /// Sum of the nominal processing times of all jobs.
  Time total_processing_time() const;

  /// Sum of the minimum processing times of all jobs.
  Time total_min_processing_time() const;

  /// True when the due date cannot constrain the schedule from the left,
  /// i.e. d >= sum(P_i).  This is the precondition of the UCDDCP O(n)
  /// algorithm (Section IV-B of the paper).
  bool is_unrestricted() const;

  /// Restrictiveness factor h = d / sum(P_i) used by the OR-library
  /// benchmark generator (h in {0.2, 0.4, 0.6, 0.8}).
  double restrictiveness() const;

  /// Returns a copy with the due date replaced (used by the benchmark
  /// harness to sweep h on a fixed job set).
  Instance with_due_date(Time d) const;

  /// Returns a copy spread over \p m identical parallel machines.
  /// Validate() then requires m >= 1, a kCdd problem, and m <= n.
  Instance with_machines(std::int32_t m) const;

  /// Returns a copy minimizing \p objective.  kEarlyWork requires a kCdd
  /// problem (compression has no early-work semantics).
  Instance with_objective(ScheduleObjective objective) const;

  /// Returns a CDD view of this instance (drops compressibility).
  Instance as_cdd() const;

  /// \brief Checks all invariants; throws std::invalid_argument on the first
  /// violation with a message naming the offending job.
  void Validate() const;

  /// Human-readable one-line summary ("CDD n=50 d=241 h=0.4").
  std::string Summary() const;

  friend bool operator==(const Instance&, const Instance&) = default;

 private:
  Problem problem_ = Problem::kCdd;
  Time due_date_ = 0;
  std::int32_t machines_ = 1;
  ScheduleObjective objective_ = ScheduleObjective::kTotalPenalty;
  std::vector<Job> jobs_;
};

}  // namespace cdd

#include "core/eval_cdd.hpp"

#include "core/eval_simd.hpp"

namespace cdd {

CddEvaluator::CddEvaluator(const Instance& instance)
    : due_date_(instance.due_date()) {
  const std::size_t n = instance.size();
  proc_.reserve(n);
  alpha_.reserve(n);
  beta_.reserve(n);
  for (const Job& j : instance.jobs()) {
    proc_.push_back(j.proc);
    alpha_.push_back(j.early);
    beta_.push_back(j.tardy);
  }
}

Cost CddEvaluator::Evaluate(std::span<const JobId> seq) const {
  return raw::EvalCdd(static_cast<std::int32_t>(seq.size()), due_date_,
                      seq.data(), proc_.data(), alpha_.data(), beta_.data())
      .cost;
}

raw::EvalResult CddEvaluator::EvaluateDetailed(
    std::span<const JobId> seq) const {
  return raw::EvalCdd(static_cast<std::int32_t>(seq.size()), due_date_,
                      seq.data(), proc_.data(), alpha_.data(), beta_.data());
}

void CddEvaluator::EvaluateBatch(CandidatePool& pool) const {
  const CandidatePoolView v = pool.view();
  raw::EvalCddBatchDispatch(v.n, due_date_, v.seqs, v.stride,
                            static_cast<std::int32_t>(v.count), proc_.data(),
                            alpha_.data(), beta_.data(), v.costs, v.pinned);
}

Schedule CddEvaluator::BuildSchedule(std::span<const JobId> seq) const {
  const raw::EvalResult r = EvaluateDetailed(seq);
  Schedule s;
  s.order.assign(seq.begin(), seq.end());
  s.completion.resize(seq.size());
  s.compression.assign(seq.size(), 0);
  Time c = r.offset;
  for (std::size_t k = 0; k < seq.size(); ++k) {
    c += proc_[static_cast<std::size_t>(seq[k])];
    s.completion[k] = c;
  }
  return s;
}

Cost EvaluateCddSequence(const Instance& instance,
                         std::span<const JobId> seq) {
  ValidateSequence(seq, instance.size());
  return CddEvaluator(instance).Evaluate(seq);
}

}  // namespace cdd

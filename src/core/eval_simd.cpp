#include "core/eval_simd.hpp"

#include <algorithm>
#include <vector>

#include "core/cpu_features.hpp"
#include "core/eval_raw.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CDD_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define CDD_SIMD_NEON 1
#endif

namespace cdd::raw {

namespace {

// ---------------------------------------------------------------------------
// Portable lane-transposed kernels (the compile-time NEON backend).
//
// One lane per candidate, outer loop over sequence positions.  Every lane
// update is a branch-free select on exactly the condition the scalar
// EvalCddFused evaluates, so the per-lane arithmetic is the scalar
// algorithm verbatim — the compiler maps the K-wide inner loops onto
// Advanced SIMD on aarch64 and onto whatever the host offers elsewhere.
// ---------------------------------------------------------------------------

template <int K>
void CddLanesPortable(std::int32_t n, Time d, const JobId* seqs,
                      const std::int64_t* row_off, const Time* proc,
                      const Cost* alpha, const Cost* beta, Cost* cost_out,
                      std::int64_t* pinned_out, Time* offset_out) noexcept {
  Time c[K] = {};
  Time prefix_tau[K] = {};
  std::int64_t tau[K];
  Cost pe[K] = {};
  Cost pl[K] = {};
  Cost cost[K] = {};
  for (int k = 0; k < K; ++k) tau[k] = -1;

  for (std::int32_t i = 0; i < n; ++i) {
    for (int k = 0; k < K; ++k) {
      const JobId j = seqs[row_off[k] + i];
      const Time pj = proc[j];
      const Cost aj = alpha[j];
      const Cost bj = beta[j];
      c[k] += pj;
      const bool early = c[k] <= d;
      tau[k] = early ? i : tau[k];
      prefix_tau[k] = early ? c[k] : prefix_tau[k];
      pe[k] += early ? aj : Cost{0};
      pl[k] += early ? Cost{0} : bj;
      cost[k] += early ? aj * (d - c[k]) : bj * (c[k] - d);
    }
  }

  Time offset[K] = {};
  std::int64_t pinned[K];
  bool active[K];
  bool any = false;
  for (int k = 0; k < K; ++k) {
    const bool has_tau = tau[k] >= 0;
    const bool slide = has_tau && prefix_tau[k] < d && pl[k] < pe[k];
    const bool at_bp = has_tau && prefix_tau[k] >= d;
    offset[k] = slide ? d - prefix_tau[k] : Time{0};
    cost[k] += slide ? offset[k] * (pl[k] - pe[k]) : Cost{0};
    pinned[k] = (slide || at_bp) ? tau[k] : std::int64_t{-1};
    active[k] = pinned[k] > 0;
    any = any || active[k];
  }

  // Crossing loop of Theorem 1 with masked lane retirement: a lane leaves
  // the walk exactly when its scalar counterpart would break.
  while (any) {
    any = false;
    for (int k = 0; k < K; ++k) {
      if (!active[k]) continue;
      const JobId j = seqs[row_off[k] + pinned[k]];
      const Cost pl_next = pl[k] + beta[j];
      const Cost pe_next = pe[k] - alpha[j];
      if (pl_next < pe_next) {
        const Time pj = proc[j];
        offset[k] += pj;
        cost[k] += pj * (pl_next - pe_next);
        pl[k] = pl_next;
        pe[k] = pe_next;
        --pinned[k];
        active[k] = pinned[k] > 0;
      } else {
        active[k] = false;
      }
      any = any || active[k];
    }
  }

  for (int k = 0; k < K; ++k) {
    cost_out[k] = cost[k];
    pinned_out[k] = pinned[k];
    offset_out[k] = offset[k];
  }
}

template <int K>
void UcddcpLanesPortable(std::int32_t n, Time d, const JobId* seqs,
                         const std::int64_t* row_off, const Time* proc,
                         const Time* minproc, const Cost* alpha,
                         const Cost* beta, const Cost* gamma, Cost* cost_out,
                         std::int64_t* pinned_out,
                         Time* offset_out) noexcept {
  Cost base_cost[K];
  std::int64_t r[K];
  Time base_offset[K];
  CddLanesPortable<K>(n, d, seqs, row_off, proc, alpha, beta, base_cost, r,
                      base_offset);

  Cost cost[K] = {};
  Time compressed[K] = {};
  Cost sb[K] = {};
  Cost pa[K] = {};

  // The per-lane crossings r[k] bound the walk phases: for i > rmax every
  // participating lane is on the tardy side, for i <= rmin every one is
  // on the early side.  Those two long scans run *dense* — the only lane
  // test left is the loop-invariant participation check — and only the
  // short mixed band between rmin and rmax pays the per-position test.
  // Lanes with no pinned job (r < 0) never enter either walk.
  std::int64_t rmin = n;
  std::int64_t rmax = -1;
  for (int k = 0; k < K; ++k) {
    if (r[k] >= 0) {
      rmin = std::min(rmin, r[k]);
      rmax = std::max(rmax, r[k]);
    }
  }

  // Tardy side (Property 2 suffix walk): lane k participates while
  // i > r[k].  Dense phase first, then the mixed band.
  std::int32_t i = n - 1;
  for (; rmax >= 0 && i > rmax; --i) {
    for (int k = 0; k < K; ++k) {
      if (r[k] < 0) continue;
      const JobId j = seqs[row_off[k] + i];
      sb[k] += beta[j];
      const Time reducible = proc[j] - minproc[j];
      const Time x = (sb[k] > gamma[j]) ? reducible : Time{0};
      cost[k] += (proc[j] - x) * sb[k] + gamma[j] * x;
    }
  }
  for (; i >= 1; --i) {
    bool any = false;
    for (int k = 0; k < K; ++k) {
      if (r[k] < 0 || i <= r[k]) continue;
      any = true;
      const JobId j = seqs[row_off[k] + i];
      sb[k] += beta[j];
      const Time reducible = proc[j] - minproc[j];
      const Time x = (sb[k] > gamma[j]) ? reducible : Time{0};
      cost[k] += (proc[j] - x) * sb[k] + gamma[j] * x;
    }
    if (!any) break;
  }

  // Early side (prefix walk): lane k participates while i <= r[k].
  std::int32_t e = 0;
  for (; e <= rmin && e < n; ++e) {
    for (int k = 0; k < K; ++k) {
      if (r[k] < 0) continue;
      const JobId j = seqs[row_off[k] + e];
      const Time reducible = proc[j] - minproc[j];
      const Time x = (pa[k] > gamma[j]) ? reducible : Time{0};
      cost[k] += (proc[j] - x) * pa[k] + gamma[j] * x;
      compressed[k] += proc[j] - x;
      pa[k] += alpha[j];
    }
  }
  for (; e < n; ++e) {
    bool any = false;
    for (int k = 0; k < K; ++k) {
      if (r[k] < 0 || e > r[k]) continue;
      any = true;
      const JobId j = seqs[row_off[k] + e];
      const Time reducible = proc[j] - minproc[j];
      const Time x = (pa[k] > gamma[j]) ? reducible : Time{0};
      cost[k] += (proc[j] - x) * pa[k] + gamma[j] * x;
      compressed[k] += proc[j] - x;
      pa[k] += alpha[j];
    }
    if (!any) break;
  }

  for (int k = 0; k < K; ++k) {
    const bool part = r[k] >= 0;
    cost_out[k] = part ? cost[k] : base_cost[k];
    offset_out[k] = part ? d - compressed[k] : base_offset[k];
    pinned_out[k] = r[k];
  }
}

/// Lanes per group in the portable kernels: 2x64-bit matches one NEON
/// vector register (and keeps the x86 test build honest about what the
/// aarch64 build executes).
constexpr int kPortableLanes = 2;

template <int K>
void StoreLanes(const Cost* cost, const std::int64_t* pinned,
                const Time* offset, std::int32_t b, Cost* costs,
                std::int32_t* pinned_out, Time* offsets_out) noexcept {
  for (int k = 0; k < K; ++k) {
    costs[b + k] = cost[k];
    if (pinned_out != nullptr) {
      pinned_out[b + k] = static_cast<std::int32_t>(pinned[k]);
    }
    if (offsets_out != nullptr) offsets_out[b + k] = offset[k];
  }
}

#if defined(CDD_SIMD_X86)

// ---------------------------------------------------------------------------
// AVX2 kernels: 4 candidates per vector, 64-bit lanes.
//
// Two structural facts make the hot loop cheap:
//
//  * The completion time c only grows, so the early/tardy condition is
//    monotone per lane.  The position scan therefore splits into an
//    all-early phase, a short mixed phase around the due-date crossing,
//    and an all-tardy phase — the two long phases carry no masks, no
//    blends, and touch only the fields they need.
//  * With 16-bit instance fields and 31-bit field sums (see Packable)
//    every partial sum — c, pe, pl, |c - d|, the walk prefixes — stays
//    below 2^31, so every product is one vpmuludq (32x32 -> 64, exact).
//
// Each phase reads one 32-bit packed word per lane and step,
// (alpha << 16) | proc in the early phase and (beta << 16) | proc in the
// tardy phase, assembled with plain scalar loads: vpgather is microcoded
// on most production x86 cores (and slowed further by the Downfall
// mitigation), four independent loads are not.  The breakpoint slide and
// Theorem-1 crossing walk run scalar per lane — they touch a handful of
// positions, and scalarizing them removes the masked-lane machinery from
// the kernel entirely.
// ---------------------------------------------------------------------------

constexpr std::int64_t kFieldLimit = std::int64_t{1} << 16;
constexpr std::int64_t kSumLimit = std::int64_t{1} << 31;

/// The AVX2 kernels require every instance field to fit 16 bits and every
/// field sum (and d) to fit 31 bits — see the block comment above.  Every
/// benchmark family is orders of magnitude inside these bounds (P_i <= 20,
/// penalties <= 15); wider instances take the scalar batch, which is
/// bit-identical anyway.
bool Packable(std::int32_t n, Time d, const Time* proc, const Cost* alpha,
              const Cost* beta) noexcept {
  if (d < 0 || d >= kSumLimit) return false;
  std::int64_t sp = 0;
  std::int64_t sa = 0;
  std::int64_t sb = 0;
  for (std::int32_t j = 0; j < n; ++j) {
    if (proc[j] < 0 || proc[j] >= kFieldLimit) return false;
    if (alpha[j] < 0 || alpha[j] >= kFieldLimit) return false;
    if (beta[j] < 0 || beta[j] >= kFieldLimit) return false;
    sp += proc[j];
    sa += alpha[j];
    sb += beta[j];
  }
  return sp < kSumLimit && sa < kSumLimit && sb < kSumLimit;
}

bool Packable2(std::int32_t n, const Time* minproc,
               const Cost* gamma) noexcept {
  for (std::int32_t j = 0; j < n; ++j) {
    if (minproc[j] < 0 || minproc[j] >= kFieldLimit) return false;
    if (gamma[j] < 0 || gamma[j] >= kFieldLimit) return false;
  }
  return true;
}

/// (alpha << 16) | proc, one 32-bit word per job id — everything an
/// early-phase step touches in one load.
const std::uint32_t* PackEarly32(std::int32_t n, const Time* proc,
                                 const Cost* alpha) {
  static thread_local std::vector<std::uint32_t> scratch;
  scratch.resize(static_cast<std::size_t>(n));
  for (std::int32_t j = 0; j < n; ++j) {
    scratch[static_cast<std::size_t>(j)] =
        static_cast<std::uint32_t>((alpha[j] << 16) | proc[j]);
  }
  return scratch.data();
}

/// (beta << 16) | proc, one 32-bit word per job id (tardy-phase data).
const std::uint32_t* PackTardy32(std::int32_t n, const Time* proc,
                                 const Cost* beta) {
  static thread_local std::vector<std::uint32_t> scratch;
  scratch.resize(static_cast<std::size_t>(n));
  for (std::int32_t j = 0; j < n; ++j) {
    scratch[static_cast<std::size_t>(j)] =
        static_cast<std::uint32_t>((beta[j] << 16) | proc[j]);
  }
  return scratch.data();
}

/// (gamma << 16) | minproc, one word per job id (UCDDCP compression data).
const std::uint32_t* PackCompression32(std::int32_t n, const Time* minproc,
                                       const Cost* gamma) {
  static thread_local std::vector<std::uint32_t> scratch;
  scratch.resize(static_cast<std::size_t>(n));
  for (std::int32_t j = 0; j < n; ++j) {
    scratch[static_cast<std::size_t>(j)] =
        static_cast<std::uint32_t>((gamma[j] << 16) | minproc[j]);
  }
  return scratch.data();
}

/// Four packed words — one per candidate lane — zero-extended into the
/// 64-bit lanes.
__attribute__((target("avx2"))) inline __m256i Lanes32(
    const std::uint32_t* pack, JobId j0, JobId j1, JobId j2,
    JobId j3) noexcept {
  return _mm256_cvtepu32_epi64(
      _mm_setr_epi32(static_cast<int>(pack[j0]), static_cast<int>(pack[j1]),
                     static_cast<int>(pack[j2]),
                     static_cast<int>(pack[j3])));
}

/// Resumable per-group walk state: the EvalCddFused kernel split into its
/// phases so 8-candidate processing can software-pipeline two 4-lane
/// groups through the long scans (two independent dependency chains per
/// step) while keeping every per-lane operation — order included —
/// identical to the single-group kernel, i.e. bit-identical results.
struct CddGroupState {
  const JobId* r0;
  const JobId* r1;
  const JobId* r2;
  const JobId* r3;
  __m256i c;
  __m256i pe;
  __m256i pl;
  __m256i cost;
  __m256i tau;
  __m256i prefix_tau;
  bool entered_mixed;
  std::int32_t i;
};

__attribute__((target("avx2"))) inline CddGroupState CddGroupInit(
    const JobId* seqs, std::int64_t row0, std::int64_t stride) noexcept {
  CddGroupState s;
  s.r0 = seqs + row0;
  s.r1 = s.r0 + stride;
  s.r2 = s.r1 + stride;
  s.r3 = s.r2 + stride;
  s.c = _mm256_setzero_si256();
  s.pe = _mm256_setzero_si256();
  s.pl = _mm256_setzero_si256();
  s.cost = _mm256_setzero_si256();
  s.tau = _mm256_setzero_si256();
  s.prefix_tau = _mm256_setzero_si256();
  s.entered_mixed = false;
  s.i = 0;
  return s;
}

/// All-early phase: runs until the first lane's completion time would
/// cross d; that position is left uncommitted for the mixed phase.
__attribute__((target("avx2"))) inline void CddAllEarlyPhase(
    CddGroupState& s, std::int32_t n, __m256i vd, __m256i low16,
    const std::uint32_t* packE) noexcept {
  while (s.i < n) {
    const __m256i w =
        Lanes32(packE, s.r0[s.i], s.r1[s.i], s.r2[s.i], s.r3[s.i]);
    const __m256i pj = _mm256_and_si256(w, low16);
    const __m256i aj = _mm256_srli_epi64(w, 16);
    const __m256i c_next = _mm256_add_epi64(s.c, pj);
    if (_mm256_movemask_pd(_mm256_castsi256_pd(
            _mm256_cmpgt_epi64(c_next, vd))) != 0) {
      break;
    }
    s.c = c_next;
    s.pe = _mm256_add_epi64(s.pe, aj);
    s.cost = _mm256_add_epi64(
        s.cost, _mm256_mul_epu32(aj, _mm256_sub_epi64(vd, c_next)));
    ++s.i;
  }
}

/// Mixed phase: lanes cross d at different positions, so the early/tardy
/// split is a mask.  tau counts the early steps (monotone, so a masked
/// increment replaces the blend) and prefix_tau tracks c over them.
__attribute__((target("avx2"))) inline void CddMixedPhase(
    CddGroupState& s, std::int32_t n, __m256i vd, __m256i low16,
    __m256i neg1, const std::uint32_t* packE,
    const std::uint32_t* packT) noexcept {
  if (s.i >= n) return;
  s.entered_mixed = true;
  s.tau = _mm256_set1_epi64x(s.i - 1);
  s.prefix_tau = s.c;
  while (s.i < n) {
    const __m256i wE =
        Lanes32(packE, s.r0[s.i], s.r1[s.i], s.r2[s.i], s.r3[s.i]);
    const __m256i wT =
        Lanes32(packT, s.r0[s.i], s.r1[s.i], s.r2[s.i], s.r3[s.i]);
    const __m256i pj = _mm256_and_si256(wE, low16);
    const __m256i aj = _mm256_srli_epi64(wE, 16);
    const __m256i bj = _mm256_srli_epi64(wT, 16);
    s.c = _mm256_add_epi64(s.c, pj);
    const __m256i tardy = _mm256_cmpgt_epi64(s.c, vd);
    const __m256i early = _mm256_xor_si256(tardy, neg1);
    s.tau = _mm256_sub_epi64(s.tau, early);  // tau += 1 in early lanes
    s.prefix_tau =
        _mm256_add_epi64(s.prefix_tau, _mm256_and_si256(early, pj));
    s.pe = _mm256_add_epi64(s.pe, _mm256_and_si256(early, aj));
    s.pl = _mm256_add_epi64(s.pl, _mm256_and_si256(tardy, bj));
    // dist = |c - d| via conditional negate: t in tardy lanes, -t early.
    const __m256i t = _mm256_sub_epi64(s.c, vd);
    const __m256i dist =
        _mm256_sub_epi64(_mm256_xor_si256(t, early), early);
    const __m256i pen = _mm256_blendv_epi8(aj, bj, tardy);
    s.cost = _mm256_add_epi64(s.cost, _mm256_mul_epu32(pen, dist));
    ++s.i;
    if (_mm256_movemask_pd(_mm256_castsi256_pd(tardy)) == 0xf) break;
  }
}

/// One all-tardy position: tardiness is monotone, so no lane re-enters.
__attribute__((target("avx2"))) inline void CddTardyStep(
    CddGroupState& s, __m256i vd, __m256i low16,
    const std::uint32_t* packT) noexcept {
  const __m256i w =
      Lanes32(packT, s.r0[s.i], s.r1[s.i], s.r2[s.i], s.r3[s.i]);
  const __m256i pj = _mm256_and_si256(w, low16);
  const __m256i bj = _mm256_srli_epi64(w, 16);
  s.c = _mm256_add_epi64(s.c, pj);
  s.pl = _mm256_add_epi64(s.pl, bj);
  s.cost = _mm256_add_epi64(
      s.cost, _mm256_mul_epu32(bj, _mm256_sub_epi64(s.c, vd)));
  ++s.i;
}

/// Breakpoint slide and Theorem-1 crossing walk, scalar per lane — the
/// arithmetic is EvalCddFused's tail verbatim, so results stay
/// bit-identical.
__attribute__((target("avx2"))) inline void CddGroupFinish(
    const CddGroupState& s, std::int32_t n, Time d,
    const std::uint32_t* packE, const std::uint32_t* packT, __m256i& cost_v,
    __m256i& offset_v, __m256i& pinned_v) noexcept {
  alignas(32) std::int64_t pe_a[4];
  alignas(32) std::int64_t pl_a[4];
  alignas(32) std::int64_t cost_a[4];
  alignas(32) std::int64_t tau_a[4];
  alignas(32) std::int64_t pt_a[4];
  alignas(32) std::int64_t pin_a[4];
  alignas(32) std::int64_t off_a[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(pe_a), s.pe);
  _mm256_store_si256(reinterpret_cast<__m256i*>(pl_a), s.pl);
  _mm256_store_si256(reinterpret_cast<__m256i*>(cost_a), s.cost);
  if (s.entered_mixed) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(tau_a), s.tau);
    _mm256_store_si256(reinterpret_cast<__m256i*>(pt_a), s.prefix_tau);
  } else {
    // Every position stayed early in every lane: tau is the last index
    // and prefix_tau the full completion time.
    _mm256_store_si256(reinterpret_cast<__m256i*>(pt_a), s.c);
    for (int k = 0; k < 4; ++k) tau_a[k] = n - 1;
  }

  const JobId* rows[4] = {s.r0, s.r1, s.r2, s.r3};
  for (int k = 0; k < 4; ++k) {
    Cost cost_k = cost_a[k];
    Cost pe_k = pe_a[k];
    Cost pl_k = pl_a[k];
    std::int64_t pinned = -1;
    Time offset = 0;
    if (tau_a[k] >= 0) {
      const bool slide = pt_a[k] < d && pl_k < pe_k;
      if (slide) {
        offset = d - pt_a[k];
        cost_k += offset * (pl_k - pe_k);
      }
      if (slide || pt_a[k] >= d) pinned = tau_a[k];
    }
    while (pinned > 0) {
      const JobId j = rows[k][pinned];
      const Cost aj = static_cast<Cost>(packE[j] >> 16);
      const Cost bj = static_cast<Cost>(packT[j] >> 16);
      const Cost pl_next = pl_k + bj;
      const Cost pe_next = pe_k - aj;
      if (pl_next >= pe_next) break;
      const Time pj = static_cast<Time>(packE[j] & 0xffff);
      offset += pj;
      cost_k += pj * (pl_next - pe_next);
      pl_k = pl_next;
      pe_k = pe_next;
      --pinned;
    }
    cost_a[k] = cost_k;
    pin_a[k] = pinned;
    off_a[k] = offset;
  }
  cost_v = _mm256_load_si256(reinterpret_cast<const __m256i*>(cost_a));
  pinned_v = _mm256_load_si256(reinterpret_cast<const __m256i*>(pin_a));
  offset_v = _mm256_load_si256(reinterpret_cast<const __m256i*>(off_a));
}

/// The EvalCddFused walk over 4 lanes; leaves the per-lane cost, offset
/// and pinned position in the output vectors.
__attribute__((target("avx2"))) inline void CddLanesAvx2(
    std::int32_t n, Time d, const JobId* seqs, std::int64_t row0,
    std::int64_t stride, const std::uint32_t* packE,
    const std::uint32_t* packT, __m256i& cost_v, __m256i& offset_v,
    __m256i& pinned_v) noexcept {
  const __m256i vd = _mm256_set1_epi64x(d);
  const __m256i neg1 = _mm256_set1_epi64x(-1);
  const __m256i low16 = _mm256_set1_epi64x(0xffff);
  CddGroupState s = CddGroupInit(seqs, row0, stride);
  CddAllEarlyPhase(s, n, vd, low16, packE);
  CddMixedPhase(s, n, vd, low16, neg1, packE, packT);
  while (s.i < n) CddTardyStep(s, vd, low16, packT);
  CddGroupFinish(s, n, d, packE, packT, cost_v, offset_v, pinned_v);
}

/// The EvalCddFused walk over 8 lanes as two interleaved 4-lane groups.
/// The long scans carry both groups per iteration: the all-early phase
/// advances them in lockstep while neither crosses d, the all-tardy phase
/// pairs one step of each (the groups sit at independent positions after
/// their mixed phases).  Interleaving only reorders operations *between*
/// groups — per-lane order is untouched — so the result is bit-identical
/// to two CddLanesAvx2 calls.
__attribute__((target("avx2"))) inline void CddLanes8Avx2(
    std::int32_t n, Time d, const JobId* seqs, std::int64_t row0,
    std::int64_t stride, const std::uint32_t* packE,
    const std::uint32_t* packT, __m256i cost_v[2], __m256i offset_v[2],
    __m256i pinned_v[2]) noexcept {
  const __m256i vd = _mm256_set1_epi64x(d);
  const __m256i neg1 = _mm256_set1_epi64x(-1);
  const __m256i low16 = _mm256_set1_epi64x(0xffff);
  CddGroupState a = CddGroupInit(seqs, row0, stride);
  CddGroupState b = CddGroupInit(seqs, row0 + 4 * stride, stride);

  // Interleaved all-early phase: both groups walk the same position until
  // either would cross d; the groups then finish their early phases (the
  // non-crossing one may still have early positions left) independently.
  while (a.i < n) {
    const std::int32_t i = a.i;
    const __m256i wa = Lanes32(packE, a.r0[i], a.r1[i], a.r2[i], a.r3[i]);
    const __m256i wb = Lanes32(packE, b.r0[i], b.r1[i], b.r2[i], b.r3[i]);
    const __m256i pja = _mm256_and_si256(wa, low16);
    const __m256i pjb = _mm256_and_si256(wb, low16);
    const __m256i aja = _mm256_srli_epi64(wa, 16);
    const __m256i ajb = _mm256_srli_epi64(wb, 16);
    const __m256i cna = _mm256_add_epi64(a.c, pja);
    const __m256i cnb = _mm256_add_epi64(b.c, pjb);
    const int cross_a = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpgt_epi64(cna, vd)));
    const int cross_b = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpgt_epi64(cnb, vd)));
    if ((cross_a | cross_b) != 0) break;
    a.c = cna;
    a.pe = _mm256_add_epi64(a.pe, aja);
    a.cost = _mm256_add_epi64(
        a.cost, _mm256_mul_epu32(aja, _mm256_sub_epi64(vd, cna)));
    ++a.i;
    b.c = cnb;
    b.pe = _mm256_add_epi64(b.pe, ajb);
    b.cost = _mm256_add_epi64(
        b.cost, _mm256_mul_epu32(ajb, _mm256_sub_epi64(vd, cnb)));
    ++b.i;
  }
  CddAllEarlyPhase(a, n, vd, low16, packE);
  CddAllEarlyPhase(b, n, vd, low16, packE);

  // Mixed phases are short (a handful of positions around d) — no
  // interleave needed.
  CddMixedPhase(a, n, vd, low16, neg1, packE, packT);
  CddMixedPhase(b, n, vd, low16, neg1, packE, packT);

  // Interleaved all-tardy phase at independent positions.
  while (a.i < n && b.i < n) {
    CddTardyStep(a, vd, low16, packT);
    CddTardyStep(b, vd, low16, packT);
  }
  while (a.i < n) CddTardyStep(a, vd, low16, packT);
  while (b.i < n) CddTardyStep(b, vd, low16, packT);

  CddGroupFinish(a, n, d, packE, packT, cost_v[0], offset_v[0],
                 pinned_v[0]);
  CddGroupFinish(b, n, d, packE, packT, cost_v[1], offset_v[1],
                 pinned_v[1]);
}

__attribute__((target("avx2"))) inline void Store4Avx2(
    __m256i cost, __m256i pinned, __m256i offset, std::int32_t b,
    Cost* costs, std::int32_t* pinned_out, Time* offsets_out) noexcept {
  alignas(32) std::int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), cost);
  StoreLanes<4>(lanes, lanes, lanes, 0, costs + b, nullptr, nullptr);
  if (pinned_out != nullptr) {
    alignas(32) std::int64_t p[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(p), pinned);
    for (int k = 0; k < 4; ++k) {
      pinned_out[b + k] = static_cast<std::int32_t>(p[k]);
    }
  }
  if (offsets_out != nullptr) {
    alignas(32) std::int64_t o[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(o), offset);
    for (int k = 0; k < 4; ++k) offsets_out[b + k] = o[k];
  }
}

__attribute__((target("avx2"))) void EvalCddGroupAvx2(
    std::int32_t n, Time d, const JobId* seqs, std::int64_t row0,
    std::int64_t stride, const std::uint32_t* packE,
    const std::uint32_t* packT, std::int32_t b, Cost* costs,
    std::int32_t* pinned_out, Time* offsets_out) noexcept {
  __m256i cost;
  __m256i offset;
  __m256i pinned;
  CddLanesAvx2(n, d, seqs, row0, stride, packE, packT, cost, offset,
               pinned);
  Store4Avx2(cost, pinned, offset, b, costs, pinned_out, offsets_out);
}

__attribute__((target("avx2"))) void EvalCddGroup8Avx2(
    std::int32_t n, Time d, const JobId* seqs, std::int64_t row0,
    std::int64_t stride, const std::uint32_t* packE,
    const std::uint32_t* packT, std::int32_t b, Cost* costs,
    std::int32_t* pinned_out, Time* offsets_out) noexcept {
  __m256i cost[2];
  __m256i offset[2];
  __m256i pinned[2];
  CddLanes8Avx2(n, d, seqs, row0, stride, packE, packT, cost, offset,
                pinned);
  Store4Avx2(cost[0], pinned[0], offset[0], b, costs, pinned_out,
             offsets_out);
  Store4Avx2(cost[1], pinned[1], offset[1], b + 4, costs, pinned_out,
             offsets_out);
}

/// The Property-2 suffix/prefix walks applied on top of the CDD
/// relaxation result of one 4-lane group (base_cost/base_offset/r from a
/// CddLanes* kernel).
__attribute__((target("avx2"))) void UcddcpTailAvx2(
    std::int32_t n, Time d, const JobId* seqs, std::int64_t row0,
    std::int64_t stride, const std::uint32_t* packE,
    const std::uint32_t* packT, const std::uint32_t* packC, std::int32_t b,
    __m256i base_cost, __m256i base_offset, __m256i r, Cost* costs,
    std::int32_t* pinned_out, Time* offsets_out) noexcept {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i neg1 = _mm256_set1_epi64x(-1);
  const __m256i low16 = _mm256_set1_epi64x(0xffff);
  const __m256i vd = _mm256_set1_epi64x(d);
  // Lanes with no pinned job keep the CDD relaxation result verbatim.
  const __m256i part = _mm256_cmpgt_epi64(r, neg1);
  if (_mm256_movemask_epi8(part) == 0) {
    Store4Avx2(base_cost, r, base_offset, b, costs, pinned_out,
               offsets_out);
    return;
  }

  const JobId* rows[4] = {seqs + row0, seqs + row0 + stride,
                          seqs + row0 + 2 * stride,
                          seqs + row0 + 3 * stride};

  __m256i cost = zero;
  __m256i compressed = zero;
  __m256i sb = zero;
  __m256i pa = zero;

  // Lane operands come from guarded scalar loads: inactive lanes read
  // nothing and see zero packed words.
  alignas(32) std::int64_t w1[4];
  alignas(32) std::int64_t w2[4];

  // The per-lane crossings bound the walk phases exactly as in the CDD
  // kernel's early/mixed/tardy split: for i > rmax every participating
  // lane is on the tardy side and for i <= rmin every one is on the
  // early side, so the activity mask is the loop-invariant `part` —
  // those dense ranges skip the per-position broadcast/compare/movemask.
  // Only the mixed band (rmin, rmax] pays the per-position test.
  alignas(32) std::int64_t rl[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(rl), r);
  const int pm = _mm256_movemask_pd(_mm256_castsi256_pd(part));
  std::int32_t rmin = n;
  std::int32_t rmax = -1;
  for (int k = 0; k < 4; ++k) {
    if (((pm >> k) & 1) != 0) {
      rmin = std::min(rmin, static_cast<std::int32_t>(rl[k]));
      rmax = std::max(rmax, static_cast<std::int32_t>(rl[k]));
    }
  }

  // Tardy side: lane active while i > r (Property 2 suffix walk).
  // Dense phase first (act == part for i > rmax), then the mixed band.
  std::int32_t i = n - 1;
  for (; i > rmax; --i) {
    for (int k = 0; k < 4; ++k) {
      if (((pm >> k) & 1) != 0) {
        const JobId j = rows[k][i];
        w1[k] = packT[j];
        w2[k] = packC[j];
      } else {
        w1[k] = 0;
        w2[k] = 0;
      }
    }
    const __m256i packed1 =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(w1));
    const __m256i packed2 =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(w2));
    const __m256i pj = _mm256_and_si256(packed1, low16);
    const __m256i bj = _mm256_srli_epi64(packed1, 16);
    const __m256i mj = _mm256_and_si256(packed2, low16);
    const __m256i gj = _mm256_srli_epi64(packed2, 16);
    sb = _mm256_add_epi64(sb, _mm256_and_si256(part, bj));
    const __m256i reducible = _mm256_sub_epi64(pj, mj);
    const __m256i x =
        _mm256_and_si256(_mm256_cmpgt_epi64(sb, gj), reducible);
    const __m256i term =
        _mm256_add_epi64(_mm256_mul_epu32(_mm256_sub_epi64(pj, x), sb),
                         _mm256_mul_epu32(gj, x));
    cost = _mm256_add_epi64(cost, _mm256_and_si256(part, term));
  }
  for (; i >= 1; --i) {
    const __m256i vi = _mm256_set1_epi64x(i);
    const __m256i act =
        _mm256_and_si256(part, _mm256_cmpgt_epi64(vi, r));
    const int am = _mm256_movemask_pd(_mm256_castsi256_pd(act));
    if (am == 0) break;
    for (int k = 0; k < 4; ++k) {
      if (((am >> k) & 1) != 0) {
        const JobId j = rows[k][i];
        w1[k] = packT[j];
        w2[k] = packC[j];
      } else {
        w1[k] = 0;
        w2[k] = 0;
      }
    }
    const __m256i packed1 =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(w1));
    const __m256i packed2 =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(w2));
    const __m256i pj = _mm256_and_si256(packed1, low16);
    const __m256i bj = _mm256_srli_epi64(packed1, 16);
    const __m256i mj = _mm256_and_si256(packed2, low16);
    const __m256i gj = _mm256_srli_epi64(packed2, 16);
    sb = _mm256_add_epi64(sb, _mm256_and_si256(act, bj));
    const __m256i reducible = _mm256_sub_epi64(pj, mj);
    const __m256i x =
        _mm256_and_si256(_mm256_cmpgt_epi64(sb, gj), reducible);
    const __m256i term =
        _mm256_add_epi64(_mm256_mul_epu32(_mm256_sub_epi64(pj, x), sb),
                         _mm256_mul_epu32(gj, x));
    cost = _mm256_add_epi64(cost, _mm256_and_si256(act, term));
  }

  // Early side: lane active while i <= r (Property 2 prefix walk).
  // Dense phase first (act == part for i <= rmin), then the mixed band.
  std::int32_t e = 0;
  for (; e <= rmin && e < n; ++e) {
    for (int k = 0; k < 4; ++k) {
      if (((pm >> k) & 1) != 0) {
        const JobId j = rows[k][e];
        w1[k] = packE[j];
        w2[k] = packC[j];
      } else {
        w1[k] = 0;
        w2[k] = 0;
      }
    }
    const __m256i packed1 =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(w1));
    const __m256i packed2 =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(w2));
    const __m256i pj = _mm256_and_si256(packed1, low16);
    const __m256i aj = _mm256_srli_epi64(packed1, 16);
    const __m256i mj = _mm256_and_si256(packed2, low16);
    const __m256i gj = _mm256_srli_epi64(packed2, 16);
    const __m256i reducible = _mm256_sub_epi64(pj, mj);
    const __m256i x =
        _mm256_and_si256(_mm256_cmpgt_epi64(pa, gj), reducible);
    const __m256i pmx = _mm256_sub_epi64(pj, x);
    const __m256i term = _mm256_add_epi64(_mm256_mul_epu32(pmx, pa),
                                          _mm256_mul_epu32(gj, x));
    cost = _mm256_add_epi64(cost, _mm256_and_si256(part, term));
    compressed = _mm256_add_epi64(compressed, _mm256_and_si256(part, pmx));
    pa = _mm256_add_epi64(pa, _mm256_and_si256(part, aj));
  }
  for (; e < n; ++e) {
    const __m256i vi = _mm256_set1_epi64x(e);
    const __m256i act =
        _mm256_andnot_si256(_mm256_cmpgt_epi64(vi, r), part);
    const int am = _mm256_movemask_pd(_mm256_castsi256_pd(act));
    if (am == 0) break;
    for (int k = 0; k < 4; ++k) {
      if (((am >> k) & 1) != 0) {
        const JobId j = rows[k][e];
        w1[k] = packE[j];
        w2[k] = packC[j];
      } else {
        w1[k] = 0;
        w2[k] = 0;
      }
    }
    const __m256i packed1 =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(w1));
    const __m256i packed2 =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(w2));
    const __m256i pj = _mm256_and_si256(packed1, low16);
    const __m256i aj = _mm256_srli_epi64(packed1, 16);
    const __m256i mj = _mm256_and_si256(packed2, low16);
    const __m256i gj = _mm256_srli_epi64(packed2, 16);
    const __m256i reducible = _mm256_sub_epi64(pj, mj);
    const __m256i x =
        _mm256_and_si256(_mm256_cmpgt_epi64(pa, gj), reducible);
    const __m256i pmx = _mm256_sub_epi64(pj, x);
    const __m256i term = _mm256_add_epi64(_mm256_mul_epu32(pmx, pa),
                                          _mm256_mul_epu32(gj, x));
    cost = _mm256_add_epi64(cost, _mm256_and_si256(act, term));
    compressed = _mm256_add_epi64(compressed, _mm256_and_si256(act, pmx));
    pa = _mm256_add_epi64(pa, _mm256_and_si256(act, aj));
  }

  const __m256i out_cost = _mm256_blendv_epi8(base_cost, cost, part);
  const __m256i out_offset = _mm256_blendv_epi8(
      base_offset, _mm256_sub_epi64(vd, compressed), part);
  Store4Avx2(out_cost, r, out_offset, b, costs, pinned_out, offsets_out);
}

__attribute__((target("avx2"))) void EvalUcddcpGroupAvx2(
    std::int32_t n, Time d, const JobId* seqs, std::int64_t row0,
    std::int64_t stride, const std::uint32_t* packE,
    const std::uint32_t* packT, const std::uint32_t* packC, std::int32_t b,
    Cost* costs, std::int32_t* pinned_out, Time* offsets_out) noexcept {
  __m256i base_cost;
  __m256i base_offset;
  __m256i r;
  CddLanesAvx2(n, d, seqs, row0, stride, packE, packT, base_cost,
               base_offset, r);
  UcddcpTailAvx2(n, d, seqs, row0, stride, packE, packT, packC, b,
                 base_cost, base_offset, r, costs, pinned_out, offsets_out);
}

/// 8-candidate UCDDCP group: the CDD relaxation (where the long all-early
/// and all-tardy scans live) runs through the interleaved two-group
/// kernel; the short Property-2 walks then finish each group in turn.
__attribute__((target("avx2"))) void EvalUcddcpGroup8Avx2(
    std::int32_t n, Time d, const JobId* seqs, std::int64_t row0,
    std::int64_t stride, const std::uint32_t* packE,
    const std::uint32_t* packT, const std::uint32_t* packC, std::int32_t b,
    Cost* costs, std::int32_t* pinned_out, Time* offsets_out) noexcept {
  __m256i base_cost[2];
  __m256i base_offset[2];
  __m256i r[2];
  CddLanes8Avx2(n, d, seqs, row0, stride, packE, packT, base_cost,
                base_offset, r);
  UcddcpTailAvx2(n, d, seqs, row0, stride, packE, packT, packC, b,
                 base_cost[0], base_offset[0], r[0], costs, pinned_out,
                 offsets_out);
  UcddcpTailAvx2(n, d, seqs, row0 + 4 * stride, stride, packE, packT,
                 packC, b + 4, base_cost[1], base_offset[1], r[1], costs,
                 pinned_out, offsets_out);
}

#endif  // CDD_SIMD_X86

void PortableLanesCddDriver(std::int32_t n, Time d, const JobId* seqs,
                            std::int32_t stride, std::int32_t batch,
                            const Time* proc, const Cost* alpha,
                            const Cost* beta, Cost* costs,
                            std::int32_t* pinned,
                            Time* offsets) noexcept {
  constexpr int K = kPortableLanes;
  std::int32_t b = 0;
  for (; b + K <= batch; b += K) {
    std::int64_t row_off[K];
    Cost cost[K];
    std::int64_t pin[K];
    Time off[K];
    for (int k = 0; k < K; ++k) {
      row_off[k] = static_cast<std::int64_t>(b + k) * stride;
    }
    CddLanesPortable<K>(n, d, seqs, row_off, proc, alpha, beta, cost, pin,
                        off);
    StoreLanes<K>(cost, pin, off, b, costs, pinned, offsets);
  }
  for (; b < batch; ++b) {
    const EvalResult r = EvalCddFused(
        n, d, seqs + static_cast<std::size_t>(b) * stride, proc, alpha,
        beta);
    costs[b] = r.cost;
    if (pinned != nullptr) pinned[b] = r.pinned;
    if (offsets != nullptr) offsets[b] = r.offset;
  }
}

void PortableLanesUcddcpDriver(std::int32_t n, Time d, const JobId* seqs,
                               std::int32_t stride, std::int32_t batch,
                               const Time* proc, const Time* minproc,
                               const Cost* alpha, const Cost* beta,
                               const Cost* gamma, Cost* costs,
                               std::int32_t* pinned,
                               Time* offsets) noexcept {
  constexpr int K = kPortableLanes;
  std::int32_t b = 0;
  for (; b + K <= batch; b += K) {
    std::int64_t row_off[K];
    Cost cost[K];
    std::int64_t pin[K];
    Time off[K];
    for (int k = 0; k < K; ++k) {
      row_off[k] = static_cast<std::int64_t>(b + k) * stride;
    }
    UcddcpLanesPortable<K>(n, d, seqs, row_off, proc, minproc, alpha, beta,
                           gamma, cost, pin, off);
    StoreLanes<K>(cost, pin, off, b, costs, pinned, offsets);
  }
  for (; b < batch; ++b) {
    const EvalResult r = EvalUcddcpFused(
        n, d, seqs + static_cast<std::size_t>(b) * stride, proc, minproc,
        alpha, beta, gamma);
    costs[b] = r.cost;
    if (pinned != nullptr) pinned[b] = r.pinned;
    if (offsets != nullptr) offsets[b] = r.offset;
  }
}

}  // namespace

bool SimdBatchCompiledIn() noexcept {
#if defined(CDD_SIMD_X86) || defined(CDD_SIMD_NEON)
  return true;
#else
  return false;
#endif
}

bool SimdBatchAvailable() noexcept {
#if defined(CDD_SIMD_X86)
  return core::HostCpuFeatures().avx2;
#elif defined(CDD_SIMD_NEON)
  return true;
#else
  return false;
#endif
}

const char* SimdBatchIsa() noexcept {
#if defined(CDD_SIMD_X86)
  return core::HostCpuFeatures().avx2 ? "avx2" : "none";
#elif defined(CDD_SIMD_NEON)
  return "neon";
#else
  return "none";
#endif
}

void EvalCddBatchSimd(std::int32_t n, Time d, const JobId* seqs,
                      std::int32_t stride, std::int32_t batch,
                      const Time* proc, const Cost* alpha, const Cost* beta,
                      Cost* costs, std::int32_t* pinned,
                      Time* offsets) noexcept {
#if defined(CDD_SIMD_X86)
  if (core::HostCpuFeatures().avx2 && Packable(n, d, proc, alpha, beta)) {
    const std::uint32_t* packE = PackEarly32(n, proc, alpha);
    const std::uint32_t* packT = PackTardy32(n, proc, beta);
    std::int32_t b = 0;
    for (; b + 8 <= batch; b += 8) {  // interleaved two-group fast path
      EvalCddGroup8Avx2(n, d, seqs, static_cast<std::int64_t>(b) * stride,
                        stride, packE, packT, b, costs, pinned, offsets);
    }
    for (; b + 4 <= batch; b += 4) {
      EvalCddGroupAvx2(n, d, seqs, static_cast<std::int64_t>(b) * stride,
                       stride, packE, packT, b, costs, pinned, offsets);
    }
    for (; b < batch; ++b) {  // scalar tail
      const EvalResult r = EvalCddFused(
          n, d, seqs + static_cast<std::size_t>(b) * stride, proc, alpha,
          beta);
      costs[b] = r.cost;
      if (pinned != nullptr) pinned[b] = r.pinned;
      if (offsets != nullptr) offsets[b] = r.offset;
    }
    return;
  }
#elif defined(CDD_SIMD_NEON)
  PortableLanesCddDriver(n, d, seqs, stride, batch, proc, alpha, beta,
                         costs, pinned, offsets);
  return;
#endif
  EvalCddBatch(n, d, seqs, stride, batch, proc, alpha, beta, costs, pinned,
               offsets);
}

void EvalUcddcpBatchSimd(std::int32_t n, Time d, const JobId* seqs,
                         std::int32_t stride, std::int32_t batch,
                         const Time* proc, const Time* minproc,
                         const Cost* alpha, const Cost* beta,
                         const Cost* gamma, Cost* costs,
                         std::int32_t* pinned, Time* offsets) noexcept {
#if defined(CDD_SIMD_X86)
  if (core::HostCpuFeatures().avx2 && Packable(n, d, proc, alpha, beta) &&
      Packable2(n, minproc, gamma)) {
    const std::uint32_t* packE = PackEarly32(n, proc, alpha);
    const std::uint32_t* packT = PackTardy32(n, proc, beta);
    const std::uint32_t* packC = PackCompression32(n, minproc, gamma);
    std::int32_t b = 0;
    for (; b + 8 <= batch; b += 8) {  // interleaved two-group fast path
      EvalUcddcpGroup8Avx2(n, d, seqs,
                           static_cast<std::int64_t>(b) * stride, stride,
                           packE, packT, packC, b, costs, pinned, offsets);
    }
    for (; b + 4 <= batch; b += 4) {
      EvalUcddcpGroupAvx2(n, d, seqs,
                          static_cast<std::int64_t>(b) * stride, stride,
                          packE, packT, packC, b, costs, pinned, offsets);
    }
    for (; b < batch; ++b) {  // scalar tail
      const EvalResult r = EvalUcddcpFused(
          n, d, seqs + static_cast<std::size_t>(b) * stride, proc, minproc,
          alpha, beta, gamma);
      costs[b] = r.cost;
      if (pinned != nullptr) pinned[b] = r.pinned;
      if (offsets != nullptr) offsets[b] = r.offset;
    }
    return;
  }
#elif defined(CDD_SIMD_NEON)
  PortableLanesUcddcpDriver(n, d, seqs, stride, batch, proc, minproc,
                            alpha, beta, gamma, costs, pinned, offsets);
  return;
#endif
  EvalUcddcpBatch(n, d, seqs, stride, batch, proc, minproc, alpha, beta,
                  gamma, costs, pinned, offsets);
}

void EvalCddBatchPortableLanes(std::int32_t n, Time d, const JobId* seqs,
                               std::int32_t stride, std::int32_t batch,
                               const Time* proc, const Cost* alpha,
                               const Cost* beta, Cost* costs,
                               std::int32_t* pinned,
                               Time* offsets) noexcept {
  PortableLanesCddDriver(n, d, seqs, stride, batch, proc, alpha, beta,
                         costs, pinned, offsets);
}

void EvalUcddcpBatchPortableLanes(std::int32_t n, Time d, const JobId* seqs,
                                  std::int32_t stride, std::int32_t batch,
                                  const Time* proc, const Time* minproc,
                                  const Cost* alpha, const Cost* beta,
                                  const Cost* gamma, Cost* costs,
                                  std::int32_t* pinned,
                                  Time* offsets) noexcept {
  PortableLanesUcddcpDriver(n, d, seqs, stride, batch, proc, minproc,
                            alpha, beta, gamma, costs, pinned, offsets);
}

void EvalCddBatchDispatch(std::int32_t n, Time d, const JobId* seqs,
                          std::int32_t stride, std::int32_t batch,
                          const Time* proc, const Cost* alpha,
                          const Cost* beta, Cost* costs,
                          std::int32_t* pinned, Time* offsets) noexcept {
  if (core::ActiveEvalBackend() == core::EvalBackend::kSimd) {
    EvalCddBatchSimd(n, d, seqs, stride, batch, proc, alpha, beta, costs,
                     pinned, offsets);
  } else {
    EvalCddBatch(n, d, seqs, stride, batch, proc, alpha, beta, costs,
                 pinned, offsets);
  }
}

void EvalUcddcpBatchDispatch(std::int32_t n, Time d, const JobId* seqs,
                             std::int32_t stride, std::int32_t batch,
                             const Time* proc, const Time* minproc,
                             const Cost* alpha, const Cost* beta,
                             const Cost* gamma, Cost* costs,
                             std::int32_t* pinned, Time* offsets) noexcept {
  if (core::ActiveEvalBackend() == core::EvalBackend::kSimd) {
    EvalUcddcpBatchSimd(n, d, seqs, stride, batch, proc, minproc, alpha,
                        beta, gamma, costs, pinned, offsets);
  } else {
    EvalUcddcpBatch(n, d, seqs, stride, batch, proc, minproc, alpha, beta,
                    gamma, costs, pinned, offsets);
  }
}

void EvalCddMachinesBatchDispatch(std::int32_t n, std::int32_t m, Time d,
                                  const JobId* seqs, std::int32_t stride,
                                  const std::int32_t* splits,
                                  std::int32_t batch, const Time* proc,
                                  const Cost* alpha, const Cost* beta,
                                  Cost* costs, std::int32_t* pinned,
                                  Time* offsets) noexcept {
  // Lane-per-candidate SIMD pairs position i of several rows; with per-row
  // splits the machine boundary of lane 0 may fall mid-slice of lane 1, so
  // the lanes would straddle machines.  Multi-machine batches therefore
  // take the scalar batch under every CDD_EVAL_BACKEND value — results are
  // bit-identical across backends by construction (pinned by test).
  // Single-machine batches keep the full SIMD dispatch.
  if (m <= 1) {
    EvalCddBatchDispatch(n, d, seqs, stride, batch, proc, alpha, beta,
                         costs, pinned, offsets);
    return;
  }
  EvalCddMachinesBatch(n, m, d, seqs, stride, splits, batch, proc, alpha,
                       beta, costs, pinned, offsets);
}

void EvalEarlyWorkBatchDispatch(std::int32_t n, std::int32_t m, Time d,
                                const JobId* seqs, std::int32_t stride,
                                const std::int32_t* splits,
                                std::int32_t batch, const Time* proc,
                                Cost* costs, std::int32_t* pinned,
                                Time* offsets) noexcept {
  // Late work is a per-machine load sum — memory-bound, no breakpoint
  // walk to vectorize — so the scalar batch is the only build; the
  // dispatch entry point exists for call-site symmetry and so the
  // CDD_EVAL_BACKEND cross-replay in CI covers this objective too.
  EvalEarlyWorkBatch(n, m, d, seqs, stride, splits, batch, proc, costs,
                     pinned, offsets);
}

}  // namespace cdd::raw

#pragma once
/// \file eval_simd.hpp
/// \brief Lane-per-candidate SIMD builds of the batched sequence evaluators.
///
/// EvalCddBatch / EvalUcddcpBatch walk one candidate row at a time; this
/// header provides the transposed variants: position i of 4 (AVX2) or 2
/// (NEON / portable) candidate rows is processed per step, with one lane
/// per candidate.  The per-row state of EvalCddFused — completion time `c`,
/// the penalty masses `pe` / `pl`, the running cost and the tau/prefix_tau
/// bookkeeping — becomes a per-lane accumulator, the `c <= d` branch
/// becomes a lane mask, and the crossing loop of Theorem 1 retires lanes
/// individually: a lane drops out of the walk the moment its scalar
/// counterpart would have broken (masked retirement in the portable
/// kernels, a short scalar per-lane walk in the AVX2 build).  Rows
/// beyond the last full lane group go through the scalar fused
/// evaluator (the "scalar tail").
///
/// Bit-identity: every quantity is an exact 64-bit integer and the lane
/// math performs the same additions, subtractions, comparisons and
/// products as EvalCddFused in the same order per lane, so the SIMD
/// results equal the scalar results bit for bit on every input (the
/// eval_batch tests pin SIMD == scalar == fused == LP-oracle).
///
/// Backend layers:
///  * x86-64: AVX2 kernels (4x64-bit lanes, phase-split scan, scalar-load
///    row assembly), compiled with a function-level target attribute and
///    guarded by the cpuid probe of core/cpu_features.hpp — the binary
///    runs on any x86-64 host.  Instances whose fields do not fit 16 bits
///    or whose field sums (or d) do not fit 31 bits (far beyond every
///    benchmark family) fall back to the scalar batch; results are
///    identical either way.
///  * aarch64: the portable lane-transposed kernels below, selected at
///    compile time (Advanced SIMD is baseline) and auto-vectorized.
///  * anything else: the scalar batch evaluators.
///
/// Call sites use the *Dispatch entry points, which resolve the backend
/// exactly once per process via core::ActiveEvalBackend() (environment
/// override CDD_EVAL_BACKEND=simd|scalar, then the CPU probe).
///
/// Preconditions (shared with the scalar evaluators of eval_raw.hpp, and
/// unchecked here — violating them yields meaningless costs, not UB
/// diagnostics):
///  * every row seqs[b*stride .. b*stride+n) is a permutation of [0, n);
///  * stride >= n (rows may be padded, e.g. CandidatePool's 64-byte
///    stride);
///  * the UCDDCP evaluators implement the *unrestricted* O(n) algorithm
///    and require d >= sum(P_i); restricted instances must be rejected at
///    the boundary (serve::ValidateRequestInstance does) before any batch
///    call;
///  * `pinned` / `offsets` may be null when the caller does not want
///    those outputs; when non-null they hold `batch` entries.
///
/// Thread-safety: all entry points are pure functions of their arguments
/// with no shared mutable state — concurrent calls are safe as long as
/// their output ranges (costs/pinned/offsets) do not overlap.  The
/// dispatch resolution itself is a thread-safe one-time initialization.

#include <cstdint>

#include "core/types.hpp"

namespace cdd::raw {

/// True when this binary carries a SIMD build of the batch evaluators
/// (x86-64 AVX2 or the aarch64 portable-lane kernels).
bool SimdBatchCompiledIn() noexcept;

/// True when the SIMD build is compiled in *and* the executing host can
/// run it (cpuid AVX2 on x86-64; always on aarch64 when compiled in).
bool SimdBatchAvailable() noexcept;

/// Name of the SIMD instruction set in use: "avx2", "neon" or "none".
const char* SimdBatchIsa() noexcept;

/// SIMD build of raw::EvalCddBatch (identical signature and results).
/// Falls back to the scalar batch when SimdBatchAvailable() is false.
void EvalCddBatchSimd(std::int32_t n, Time d, const JobId* seqs,
                      std::int32_t stride, std::int32_t batch,
                      const Time* proc, const Cost* alpha, const Cost* beta,
                      Cost* costs, std::int32_t* pinned = nullptr,
                      Time* offsets = nullptr) noexcept;

/// SIMD build of raw::EvalUcddcpBatch (identical signature and results).
void EvalUcddcpBatchSimd(std::int32_t n, Time d, const JobId* seqs,
                         std::int32_t stride, std::int32_t batch,
                         const Time* proc, const Time* minproc,
                         const Cost* alpha, const Cost* beta,
                         const Cost* gamma, Cost* costs,
                         std::int32_t* pinned = nullptr,
                         Time* offsets = nullptr) noexcept;

/// The portable lane-transposed kernels behind the aarch64 (NEON) build,
/// compiled on every platform so the transposition itself is unit-tested
/// everywhere, not only on ARM hosts.
void EvalCddBatchPortableLanes(std::int32_t n, Time d, const JobId* seqs,
                               std::int32_t stride, std::int32_t batch,
                               const Time* proc, const Cost* alpha,
                               const Cost* beta, Cost* costs,
                               std::int32_t* pinned = nullptr,
                               Time* offsets = nullptr) noexcept;

void EvalUcddcpBatchPortableLanes(std::int32_t n, Time d, const JobId* seqs,
                                  std::int32_t stride, std::int32_t batch,
                                  const Time* proc, const Time* minproc,
                                  const Cost* alpha, const Cost* beta,
                                  const Cost* gamma, Cost* costs,
                                  std::int32_t* pinned = nullptr,
                                  Time* offsets = nullptr) noexcept;

/// Generation hot-path entry points: run the backend selected once per
/// process by core::ActiveEvalBackend().  Every engine-facing batch call
/// (meta::SequenceObjective, the instance evaluators, the simulator
/// fitness kernel) routes through these.
void EvalCddBatchDispatch(std::int32_t n, Time d, const JobId* seqs,
                          std::int32_t stride, std::int32_t batch,
                          const Time* proc, const Cost* alpha,
                          const Cost* beta, Cost* costs,
                          std::int32_t* pinned = nullptr,
                          Time* offsets = nullptr) noexcept;

void EvalUcddcpBatchDispatch(std::int32_t n, Time d, const JobId* seqs,
                             std::int32_t stride, std::int32_t batch,
                             const Time* proc, const Time* minproc,
                             const Cost* alpha, const Cost* beta,
                             const Cost* gamma, Cost* costs,
                             std::int32_t* pinned = nullptr,
                             Time* offsets = nullptr) noexcept;

/// Dispatch entry point of raw::EvalCddMachinesBatch.  Multi-machine rows
/// (m > 1) always take the scalar batch: lane-per-candidate SIMD would
/// straddle machine boundaries that differ per row, so the SIMD backend
/// deliberately falls back — results are bit-identical under every
/// CDD_EVAL_BACKEND value.  m == 1 routes to the full single-machine
/// dispatch (SIMD when available).
void EvalCddMachinesBatchDispatch(std::int32_t n, std::int32_t m, Time d,
                                  const JobId* seqs, std::int32_t stride,
                                  const std::int32_t* splits,
                                  std::int32_t batch, const Time* proc,
                                  const Cost* alpha, const Cost* beta,
                                  Cost* costs,
                                  std::int32_t* pinned = nullptr,
                                  Time* offsets = nullptr) noexcept;

/// Dispatch entry point of raw::EvalEarlyWorkBatch (scalar on every
/// backend; see the .cpp note).
void EvalEarlyWorkBatchDispatch(std::int32_t n, std::int32_t m, Time d,
                                const JobId* seqs, std::int32_t stride,
                                const std::int32_t* splits,
                                std::int32_t batch, const Time* proc,
                                Cost* costs, std::int32_t* pinned = nullptr,
                                Time* offsets = nullptr) noexcept;

}  // namespace cdd::raw

#include "core/instance.hpp"

#include <numeric>
#include <sstream>

namespace cdd {

Instance::Instance(Problem problem, Time due_date, std::vector<Time> proc,
                   std::vector<Cost> early, std::vector<Cost> tardy,
                   std::vector<Time> min_proc, std::vector<Cost> compress)
    : problem_(problem), due_date_(due_date) {
  const std::size_t n = proc.size();
  if (early.size() != n || tardy.size() != n ||
      (!min_proc.empty() && min_proc.size() != n) ||
      (!compress.empty() && compress.size() != n)) {
    throw std::invalid_argument("Instance: parallel arrays differ in length");
  }
  jobs_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    jobs_[i].proc = proc[i];
    jobs_[i].min_proc = min_proc.empty() ? proc[i] : min_proc[i];
    jobs_[i].early = early[i];
    jobs_[i].tardy = tardy[i];
    jobs_[i].compress = compress.empty() ? Cost{0} : compress[i];
  }
}

Instance::Instance(Problem problem, Time due_date, std::vector<Job> jobs)
    : problem_(problem), due_date_(due_date), jobs_(std::move(jobs)) {}

Time Instance::total_processing_time() const {
  return std::accumulate(jobs_.begin(), jobs_.end(), Time{0},
                         [](Time acc, const Job& j) { return acc + j.proc; });
}

Time Instance::total_min_processing_time() const {
  return std::accumulate(
      jobs_.begin(), jobs_.end(), Time{0},
      [](Time acc, const Job& j) { return acc + j.min_proc; });
}

bool Instance::is_unrestricted() const {
  return due_date_ >= total_processing_time();
}

double Instance::restrictiveness() const {
  const Time total = total_processing_time();
  return total == 0 ? 0.0
                    : static_cast<double>(due_date_) /
                          static_cast<double>(total);
}

Instance Instance::with_due_date(Time d) const {
  Instance copy = *this;
  copy.due_date_ = d;
  return copy;
}

Instance Instance::with_machines(std::int32_t m) const {
  Instance copy = *this;
  copy.machines_ = m;
  return copy;
}

Instance Instance::with_objective(ScheduleObjective objective) const {
  Instance copy = *this;
  copy.objective_ = objective;
  return copy;
}

Instance Instance::as_cdd() const {
  Instance copy = *this;
  copy.problem_ = Problem::kCdd;
  for (Job& j : copy.jobs_) {
    j.min_proc = j.proc;
    j.compress = 0;
  }
  return copy;
}

void Instance::Validate() const {
  if (jobs_.empty()) {
    throw std::invalid_argument("Instance: no jobs");
  }
  if (due_date_ < 0) {
    throw std::invalid_argument("Instance: negative due date");
  }
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const Job& j = jobs_[i];
    std::ostringstream at;
    at << " (job " << i << ")";
    if (j.proc < 1) {
      throw std::invalid_argument("Instance: processing time < 1" + at.str());
    }
    if (j.min_proc < 0 || j.min_proc > j.proc) {
      throw std::invalid_argument(
          "Instance: minimum processing time outside [0, P_i]" + at.str());
    }
    if (j.early < 0 || j.tardy < 0 || j.compress < 0) {
      throw std::invalid_argument("Instance: negative penalty" + at.str());
    }
  }
  if (problem_ == Problem::kUcddcp && !is_unrestricted()) {
    throw std::invalid_argument(
        "Instance: UCDDCP requires d >= sum(P_i) (unrestricted case); use "
        "Problem::kCddcp for the restricted controllable problem");
  }
  if (machines_ < 1) {
    throw std::invalid_argument("Instance: machines must be >= 1");
  }
  if (machines_ > 1) {
    if (problem_ != Problem::kCdd) {
      throw std::invalid_argument(
          "Instance: parallel machines are defined for the CDD problem "
          "only (controllable processing times stay single-machine)");
    }
    if (static_cast<std::size_t>(machines_) > jobs_.size()) {
      throw std::invalid_argument(
          "Instance: more machines than jobs (m must be <= n)");
    }
  }
  if (objective_ == ScheduleObjective::kEarlyWork &&
      problem_ != Problem::kCdd) {
    throw std::invalid_argument(
        "Instance: the early-work objective is defined for CDD job data "
        "only (compression has no early-work semantics)");
  }
}

std::string Instance::Summary() const {
  std::ostringstream os;
  const char* name = "CDD";
  if (problem_ == Problem::kUcddcp) name = "UCDDCP";
  if (problem_ == Problem::kCddcp) name = "CDDCP";
  os << name << " n=" << size()
     << " d=" << due_date_;
  if (machines_ > 1) os << " m=" << machines_;
  os << " h=";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", restrictiveness());
  os << buf;
  if (objective_ == ScheduleObjective::kEarlyWork) os << " obj=early-work";
  return os.str();
}

}  // namespace cdd

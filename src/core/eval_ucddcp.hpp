#pragma once
/// \file eval_ucddcp.hpp
/// \brief Instance-level interface to the O(n) UCDDCP sequence evaluator
/// (Awasthi et al. [8]).

#include <span>

#include "core/candidate_pool.hpp"
#include "core/eval_raw.hpp"
#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "core/sequence.hpp"

namespace cdd {

/// Reusable O(n) evaluator for the Unrestricted Common Due-Date problem with
/// Controllable Processing Times.  Requires an unrestricted instance
/// (d >= sum P_i); the constructor enforces this.
class UcddcpEvaluator {
 public:
  explicit UcddcpEvaluator(const Instance& instance);

  /// Optimal cost of \p seq (completion times *and* compressions optimal).
  Cost Evaluate(std::span<const JobId> seq) const;

  /// Optimal cost plus schedule geometry.
  raw::EvalResult EvaluateDetailed(std::span<const JobId> seq) const;

  /// Evaluates every live row of \p pool in one raw::EvalUcddcpBatch call,
  /// filling pool.costs() and pool.pinned().
  void EvaluateBatch(CandidatePool& pool) const;

  /// Materializes the optimal compressed schedule of \p seq.
  Schedule BuildSchedule(std::span<const JobId> seq) const;

  std::size_t size() const { return proc_.size(); }
  Time due_date() const { return due_date_; }

  const Time* proc_data() const { return proc_.data(); }
  const Time* min_proc_data() const { return min_proc_.data(); }
  const Cost* alpha_data() const { return alpha_.data(); }
  const Cost* beta_data() const { return beta_.data(); }
  const Cost* gamma_data() const { return gamma_.data(); }

 private:
  Time due_date_;
  std::vector<Time> proc_;
  std::vector<Time> min_proc_;
  std::vector<Cost> alpha_;
  std::vector<Cost> beta_;
  std::vector<Cost> gamma_;
};

/// One-shot convenience wrapper (validates the sequence).
Cost EvaluateUcddcpSequence(const Instance& instance,
                            std::span<const JobId> seq);

}  // namespace cdd

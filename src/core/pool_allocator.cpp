#include "core/pool_allocator.hpp"

#include <cstdlib>
#include <map>
#include <mutex>
#include <new>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#define CDD_HAVE_MLOCK 1
#else
#define CDD_HAVE_MLOCK 0
#endif

#if defined(CDD_HAVE_NUMA) && __has_include(<numa.h>)
#include <numa.h>
#else
#undef CDD_HAVE_NUMA
#endif

namespace cdd::core {

namespace {

void* AlignedAllocate(std::size_t bytes, std::size_t alignment) {
  return ::operator new(bytes, std::align_val_t(alignment),
                        std::nothrow);
}

void AlignedDeallocate(void* ptr, std::size_t alignment) {
  ::operator delete(ptr, std::align_val_t(alignment));
}

void CountAllocation(std::size_t bytes) {
  GlobalPoolStats().allocations.fetch_add(1, std::memory_order_relaxed);
  GlobalPoolStats().bytes.fetch_add(bytes, std::memory_order_relaxed);
}

/// Live pinned-host ranges, keyed by base pointer (the simulator's
/// cudaHostRegister ledger).  Queries walk the map under a mutex — this
/// is a handoff-time check, never a per-candidate one.
class PinnedRegistry {
 public:
  void Add(const void* ptr, std::size_t bytes) {
    const std::scoped_lock lock(mutex_);
    ranges_[ptr] = bytes;
  }
  void Remove(const void* ptr) {
    const std::scoped_lock lock(mutex_);
    ranges_.erase(ptr);
  }
  bool Contains(const void* ptr) const {
    const std::scoped_lock lock(mutex_);
    auto it = ranges_.upper_bound(ptr);
    if (it == ranges_.begin()) return false;
    --it;
    const auto* base = static_cast<const char*>(it->first);
    return static_cast<const char*>(ptr) < base + it->second;
  }

 private:
  mutable std::mutex mutex_;
  std::map<const void*, std::size_t> ranges_;
};

PinnedRegistry& Pinned() {
  static PinnedRegistry registry;
  return registry;
}

/// kHost: pageable 64-byte-aligned host memory.
class HostAllocator final : public PoolAllocator {
 public:
  void* Allocate(std::size_t bytes, std::size_t alignment) override {
    void* ptr = AlignedAllocate(bytes, alignment);
    if (ptr == nullptr) {
      GlobalPoolStats().failures.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    CountAllocation(bytes);
    return ptr;
  }
  void Deallocate(void* ptr, std::size_t) override {
    AlignedDeallocate(ptr, 64);
  }
  PoolBackend backend() const override { return PoolBackend::kHost; }
};

/// kPinned: host memory that is mlock()ed (best effort) and registered in
/// the pinned ledger so transfer paths treat it as DMA-able.
class PinnedHostAllocator final : public PoolAllocator {
 public:
  void* Allocate(std::size_t bytes, std::size_t alignment) override {
    void* ptr = AlignedAllocate(bytes, alignment);
    if (ptr == nullptr) {
      GlobalPoolStats().failures.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
#if CDD_HAVE_MLOCK
    if (bytes > 0 && ::mlock(ptr, bytes) != 0) {
      // RLIMIT_MEMLOCK or platform refusal: keep the allocation (the
      // backend contract is placement + transfer model, not a hard lock
      // guarantee) and record the degradation.
      GlobalPoolStats().pinned_degraded.fetch_add(
          1, std::memory_order_relaxed);
    }
#else
    GlobalPoolStats().pinned_degraded.fetch_add(1,
                                                std::memory_order_relaxed);
#endif
    Pinned().Add(ptr, bytes);
    CountAllocation(bytes);
    return ptr;
  }
  void Deallocate(void* ptr, std::size_t bytes) override {
    Pinned().Remove(ptr);
#if CDD_HAVE_MLOCK
    if (bytes > 0) ::munlock(ptr, bytes);
#else
    (void)bytes;
#endif
    AlignedDeallocate(ptr, 64);
  }
  PoolBackend backend() const override { return PoolBackend::kPinned; }
};

/// kDevice: simulated device-resident memory.  Physically host RAM (the
/// simulator has no other kind), but accounted in a device-footprint
/// counter and tagged so the transfer-cost model charges *host* access,
/// not kernel access.
class DeviceResidentAllocator final : public PoolAllocator {
 public:
  void* Allocate(std::size_t bytes, std::size_t alignment) override {
    void* ptr = AlignedAllocate(bytes, alignment);
    if (ptr == nullptr) {
      GlobalPoolStats().failures.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    resident_.fetch_add(bytes, std::memory_order_relaxed);
    CountAllocation(bytes);
    return ptr;
  }
  void Deallocate(void* ptr, std::size_t bytes) override {
    resident_.fetch_sub(bytes, std::memory_order_relaxed);
    AlignedDeallocate(ptr, 64);
  }
  PoolBackend backend() const override { return PoolBackend::kDevice; }

  std::size_t resident_bytes() const {
    return resident_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::size_t> resident_{0};
};

/// kNuma: numa_alloc_local() when libnuma is linked; otherwise aligned
/// host memory faulted in by the allocating thread (first-touch places
/// the pages on that thread's node under the kernel's default policy).
class NumaAllocator final : public PoolAllocator {
 public:
  void* Allocate(std::size_t bytes, std::size_t alignment) override {
#ifdef CDD_HAVE_NUMA
    if (numa_available() >= 0 && bytes > 0) {
      // numa_alloc_local returns page-aligned memory, which satisfies any
      // cache-line alignment request.
      void* ptr = numa_alloc_local(bytes);
      if (ptr == nullptr) {
        GlobalPoolStats().failures.fetch_add(1,
                                             std::memory_order_relaxed);
        return nullptr;
      }
      CountAllocation(bytes);
      return ptr;
    }
#endif
    void* ptr = AlignedAllocate(bytes, alignment);
    if (ptr == nullptr) {
      GlobalPoolStats().failures.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    // First-touch: fault every page in from this (the allocating) thread
    // so a NUMA kernel places them on the local node.  The pool zero-fills
    // its arrays right after construction anyway; touching here keeps the
    // placement guarantee even if that ever changes.
    auto* bytes_ptr = static_cast<volatile char*>(ptr);
    for (std::size_t off = 0; off < bytes; off += 4096) {
      bytes_ptr[off] = 0;
    }
    CountAllocation(bytes);
    return ptr;
  }
  void Deallocate(void* ptr, std::size_t bytes) override {
#ifdef CDD_HAVE_NUMA
    if (numa_available() >= 0 && bytes > 0) {
      numa_free(ptr, bytes);
      return;
    }
#endif
    (void)bytes;
    AlignedDeallocate(ptr, 64);
  }
  PoolBackend backend() const override { return PoolBackend::kNuma; }
};

DeviceResidentAllocator& DeviceSingleton() {
  static DeviceResidentAllocator allocator;
  return allocator;
}

PoolBackend ResolveBackend() {
  if (const char* env = std::getenv("CDD_POOL_BACKEND")) {
    PoolBackend backend;
    if (ParsePoolBackend(env, &backend)) return backend;
    // Unknown value: fall through to the default rather than crash a
    // service over a typo (same policy as CDD_EVAL_BACKEND).
  }
  return PoolBackend::kHost;
}

}  // namespace

std::string_view ToString(PoolBackend backend) {
  switch (backend) {
    case PoolBackend::kHost:
      return "host";
    case PoolBackend::kPinned:
      return "pinned";
    case PoolBackend::kDevice:
      return "device";
    case PoolBackend::kNuma:
      return "numa";
  }
  return "host";
}

bool ParsePoolBackend(std::string_view name, PoolBackend* out) {
  if (name == "host") {
    *out = PoolBackend::kHost;
  } else if (name == "pinned") {
    *out = PoolBackend::kPinned;
  } else if (name == "device") {
    *out = PoolBackend::kDevice;
  } else if (name == "numa") {
    *out = PoolBackend::kNuma;
  } else {
    return false;
  }
  return true;
}

PoolTransferCost TransferCost(PoolBackend backend) {
  switch (backend) {
    case PoolBackend::kHost:
    case PoolBackend::kNuma:
      // Pageable memory: kernels cannot DMA it directly, so device access
      // stages through a bounce buffer; host access is free.
      return {/*host_staging=*/false, /*device_staging=*/true};
    case PoolBackend::kPinned:
      // Page-locked and registered: DMA-able from both sides.
      return {/*host_staging=*/false, /*device_staging=*/false};
    case PoolBackend::kDevice:
      // Resident on the device: kernels read it in place; the host pays.
      return {/*host_staging=*/true, /*device_staging=*/false};
  }
  return {};
}

PoolAllocStats& GlobalPoolStats() {
  static PoolAllocStats stats;
  return stats;
}

PoolAllocator& PoolAllocatorFor(PoolBackend backend) {
  static HostAllocator host;
  static PinnedHostAllocator pinned;
  static NumaAllocator numa;
  switch (backend) {
    case PoolBackend::kPinned:
      return pinned;
    case PoolBackend::kDevice:
      return DeviceSingleton();
    case PoolBackend::kNuma:
      return numa;
    case PoolBackend::kHost:
      break;
  }
  return host;
}

PoolBackend ActivePoolBackend() {
  static const PoolBackend backend = ResolveBackend();
  return backend;
}

PoolAllocator& ActivePoolAllocator() {
  return PoolAllocatorFor(ActivePoolBackend());
}

bool IsPinnedHost(const void* ptr) { return Pinned().Contains(ptr); }

std::size_t DeviceResidentBytes() {
  return DeviceSingleton().resident_bytes();
}

bool NumaAvailable() {
#ifdef CDD_HAVE_NUMA
  return numa_available() >= 0;
#else
  return false;
#endif
}

}  // namespace cdd::core

#pragma once
/// \file hash.hpp
/// \brief Deterministic 64-bit hashing of problem instances.
///
/// The serve layer deduplicates solve requests through a result cache keyed
/// by (instance, engine, parameters).  That key must be stable across runs,
/// processes and platforms, so it cannot be std::hash (unspecified) — it is
/// built from fixed-width integer arithmetic only: an FNV-1a accumulation
/// over every field of the instance, with a SplitMix64 finalizer to spread
/// the low entropy of small integer fields across all 64 bits.

#include <cstdint>

#include "core/instance.hpp"

namespace cdd {

/// FNV-1a offset basis — the seed of an incremental hash chain.
inline constexpr std::uint64_t kHashSeed = 0xcbf29ce484222325ULL;

/// Folds one 64-bit word into an FNV-1a style accumulator and finalizes
/// with the SplitMix64 mixer.  Deterministic across platforms.
std::uint64_t HashCombine(std::uint64_t h, std::uint64_t value);

/// Folds a byte string (e.g. an engine name) into the accumulator.
std::uint64_t HashBytes(std::uint64_t h, const void* data, std::size_t size);

/// Hash of every semantically relevant field of \p instance: problem kind,
/// due date, job count and each job's (P, M, alpha, beta, gamma).  Two
/// instances compare equal iff all those fields match, so
/// a == b implies HashInstance(a) == HashInstance(b).
std::uint64_t HashInstance(const Instance& instance);

}  // namespace cdd

#include "core/schedule.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace cdd {

Time StartTime(const Instance& instance, const Schedule& schedule,
               std::size_t k) {
  const Job& job = instance.job(static_cast<std::size_t>(schedule.order[k]));
  const Time x = schedule.compression.empty() ? Time{0}
                                              : schedule.compression[k];
  return schedule.completion[k] - (job.proc - x);
}

Cost EvaluateSchedule(const Instance& instance, const Schedule& schedule) {
  const Time d = instance.due_date();
  Cost cost = 0;
  for (std::size_t k = 0; k < schedule.size(); ++k) {
    const Job& job = instance.job(static_cast<std::size_t>(schedule.order[k]));
    const Time c = schedule.completion[k];
    const Time x =
        schedule.compression.empty() ? Time{0} : schedule.compression[k];
    cost += job.early * std::max<Time>(0, d - c);
    cost += job.tardy * std::max<Time>(0, c - d);
    cost += job.compress * x;
  }
  return cost;
}

void ValidateSchedule(const Instance& instance, const Schedule& schedule,
                      bool require_no_idle) {
  const std::size_t n = instance.size();
  ValidateSequence(schedule.order, n);
  if (schedule.completion.size() != n) {
    throw std::invalid_argument("schedule: completion array length mismatch");
  }
  if (!schedule.compression.empty() && schedule.compression.size() != n) {
    throw std::invalid_argument("schedule: compression array length mismatch");
  }
  Time prev_completion = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const Job& job = instance.job(static_cast<std::size_t>(schedule.order[k]));
    const Time x =
        schedule.compression.empty() ? Time{0} : schedule.compression[k];
    if (x < 0 || x > job.proc - job.min_proc) {
      std::ostringstream os;
      os << "schedule: compression " << x << " outside [0, "
         << (job.proc - job.min_proc) << "] at position " << k;
      throw std::invalid_argument(os.str());
    }
    const Time effective = job.proc - x;
    const Time earliest = prev_completion + effective;
    if (schedule.completion[k] < earliest) {
      std::ostringstream os;
      os << "schedule: job at position " << k << " completes at "
         << schedule.completion[k] << " but cannot finish before " << earliest;
      throw std::invalid_argument(os.str());
    }
    if (require_no_idle && k > 0 && schedule.completion[k] != earliest) {
      std::ostringstream os;
      os << "schedule: idle time before position " << k;
      throw std::invalid_argument(os.str());
    }
    prev_completion = schedule.completion[k];
  }
}

std::string RenderGantt(const Instance& instance, const Schedule& schedule,
                        std::size_t max_width) {
  const std::size_t n = schedule.size();
  if (n == 0) return "(empty schedule)\n";
  const Time horizon =
      std::max(instance.due_date(), schedule.completion.back()) + 1;
  const double scale =
      horizon > static_cast<Time>(max_width)
          ? static_cast<double>(max_width) / static_cast<double>(horizon)
          : 1.0;
  const auto col = [&](Time t) {
    return static_cast<std::size_t>(static_cast<double>(t) * scale);
  };

  std::ostringstream os;
  std::string lane(col(horizon) + 1, '.');
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t from = col(StartTime(instance, schedule, k));
    const std::size_t to = col(schedule.completion[k]);
    const char glyph = static_cast<char>('A' + (schedule.order[k] % 26));
    for (std::size_t c = from; c < std::max(to, from + 1); ++c) {
      lane[c] = glyph;
    }
  }
  const std::size_t dcol = col(instance.due_date());
  os << lane << "\n";
  std::string marker(dcol, ' ');
  os << marker << "^ d=" << instance.due_date() << "\n";
  for (std::size_t k = 0; k < n && k < 26; ++k) {
    os << static_cast<char>('A' + (schedule.order[k] % 26)) << "=job"
       << schedule.order[k] << " C=" << schedule.completion[k];
    if (!schedule.compression.empty() && schedule.compression[k] > 0) {
      os << " X=" << schedule.compression[k];
    }
    os << (k + 1 == n ? "\n" : "  ");
  }
  return os.str();
}

}  // namespace cdd

#include "core/schedule.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "core/eval_raw.hpp"

namespace cdd {

Time StartTime(const Instance& instance, const Schedule& schedule,
               std::size_t k) {
  const Job& job = instance.job(static_cast<std::size_t>(schedule.order[k]));
  const Time x = schedule.compression.empty() ? Time{0}
                                              : schedule.compression[k];
  return schedule.completion[k] - (job.proc - x);
}

Cost EvaluateSchedule(const Instance& instance, const Schedule& schedule) {
  const Time d = instance.due_date();
  Cost cost = 0;
  if (instance.objective() == ScheduleObjective::kEarlyWork) {
    // Late work Y_j = min(P_j - X_j, max(0, C_j - d)): the part of each
    // job executed after the due date.  Summed per job this is the
    // first-principles form; on idle-free start-at-zero machines it
    // telescopes to max(0, load - d) per machine (the evaluator's form).
    for (std::size_t k = 0; k < schedule.size(); ++k) {
      const Job& job =
          instance.job(static_cast<std::size_t>(schedule.order[k]));
      const Time x =
          schedule.compression.empty() ? Time{0} : schedule.compression[k];
      const Time effective = job.proc - x;
      cost += std::min<Time>(effective,
                             std::max<Time>(0, schedule.completion[k] - d));
    }
    return cost;
  }
  for (std::size_t k = 0; k < schedule.size(); ++k) {
    const Job& job = instance.job(static_cast<std::size_t>(schedule.order[k]));
    const Time c = schedule.completion[k];
    const Time x =
        schedule.compression.empty() ? Time{0} : schedule.compression[k];
    cost += job.early * std::max<Time>(0, d - c);
    cost += job.tardy * std::max<Time>(0, c - d);
    cost += job.compress * x;
  }
  return cost;
}

void ValidateSchedule(const Instance& instance, const Schedule& schedule,
                      bool require_no_idle) {
  const std::size_t n = instance.size();
  ValidateSequence(schedule.order, n);
  if (schedule.completion.size() != n) {
    throw std::invalid_argument("schedule: completion array length mismatch");
  }
  if (!schedule.compression.empty() && schedule.compression.size() != n) {
    throw std::invalid_argument("schedule: compression array length mismatch");
  }
  const std::int32_t m = instance.machines();
  if (!schedule.machine.empty() && schedule.machine.size() != n) {
    throw std::invalid_argument("schedule: machine array length mismatch");
  }
  Time prev_completion = 0;
  std::int32_t prev_machine = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const Job& job = instance.job(static_cast<std::size_t>(schedule.order[k]));
    const std::int32_t mk = schedule.machine_of(k);
    if (mk < 0 || mk >= m) {
      std::ostringstream os;
      os << "schedule: machine " << mk << " outside [0, " << m
         << ") at position " << k;
      throw std::invalid_argument(os.str());
    }
    if (mk < prev_machine) {
      std::ostringstream os;
      os << "schedule: machine assignment not contiguous at position " << k;
      throw std::invalid_argument(os.str());
    }
    if (mk > prev_machine) {
      prev_completion = 0;  // a fresh machine starts its own timeline at 0
      prev_machine = mk;
    }
    const Time x =
        schedule.compression.empty() ? Time{0} : schedule.compression[k];
    if (x < 0 || x > job.proc - job.min_proc) {
      std::ostringstream os;
      os << "schedule: compression " << x << " outside [0, "
         << (job.proc - job.min_proc) << "] at position " << k;
      throw std::invalid_argument(os.str());
    }
    const Time effective = job.proc - x;
    const Time earliest = prev_completion + effective;
    if (schedule.completion[k] < earliest) {
      std::ostringstream os;
      os << "schedule: job at position " << k << " completes at "
         << schedule.completion[k] << " but cannot finish before " << earliest;
      throw std::invalid_argument(os.str());
    }
    const bool first_on_machine =
        k == 0 || schedule.machine_of(k - 1) != mk;
    if (require_no_idle && !first_on_machine &&
        schedule.completion[k] != earliest) {
      std::ostringstream os;
      os << "schedule: idle time before position " << k;
      throw std::invalid_argument(os.str());
    }
    prev_completion = schedule.completion[k];
  }
}

Schedule BuildMachineSchedule(const Instance& instance,
                              std::span<const JobId> seq,
                              std::span<const std::int32_t> splits) {
  const std::size_t n = instance.size();
  const std::int32_t m = instance.machines();
  ValidateSequence(seq, n);
  if (splits.size() != static_cast<std::size_t>(m - 1)) {
    throw std::invalid_argument(
        "BuildMachineSchedule: splits length must be machines-1");
  }
  std::vector<Time> proc(n);
  std::vector<Cost> alpha(n);
  std::vector<Cost> beta(n);
  for (std::size_t j = 0; j < n; ++j) {
    const Job& job = instance.job(j);
    proc[j] = job.proc;
    alpha[j] = job.early;
    beta[j] = job.tardy;
  }

  Schedule s;
  s.order.assign(seq.begin(), seq.end());
  s.completion.resize(n);
  s.compression.assign(n, 0);
  if (m > 1) s.machine.resize(n);

  std::int32_t begin = 0;
  for (std::int32_t k = 0; k < m; ++k) {
    const std::int32_t end =
        k + 1 < m ? splits[static_cast<std::size_t>(k)]
                  : static_cast<std::int32_t>(n);
    if (end < begin || end > static_cast<std::int32_t>(n)) {
      throw std::invalid_argument(
          "BuildMachineSchedule: splits not ascending within [0, n]");
    }
    Time c = 0;
    if (instance.objective() == ScheduleObjective::kTotalPenalty &&
        end > begin) {
      c = raw::EvalCddFused(end - begin, instance.due_date(),
                            seq.data() + begin, proc.data(), alpha.data(),
                            beta.data())
              .offset;
    }
    for (std::int32_t p = begin; p < end; ++p) {
      c += proc[static_cast<std::size_t>(seq[static_cast<std::size_t>(p)])];
      s.completion[static_cast<std::size_t>(p)] = c;
      if (m > 1) s.machine[static_cast<std::size_t>(p)] = k;
    }
    begin = end;
  }
  return s;
}

std::string RenderGantt(const Instance& instance, const Schedule& schedule,
                        std::size_t max_width) {
  const std::size_t n = schedule.size();
  if (n == 0) return "(empty schedule)\n";
  const Time horizon =
      std::max(instance.due_date(), schedule.completion.back()) + 1;
  const double scale =
      horizon > static_cast<Time>(max_width)
          ? static_cast<double>(max_width) / static_cast<double>(horizon)
          : 1.0;
  const auto col = [&](Time t) {
    return static_cast<std::size_t>(static_cast<double>(t) * scale);
  };

  std::ostringstream os;
  std::string lane(col(horizon) + 1, '.');
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t from = col(StartTime(instance, schedule, k));
    const std::size_t to = col(schedule.completion[k]);
    const char glyph = static_cast<char>('A' + (schedule.order[k] % 26));
    for (std::size_t c = from; c < std::max(to, from + 1); ++c) {
      lane[c] = glyph;
    }
  }
  const std::size_t dcol = col(instance.due_date());
  os << lane << "\n";
  std::string marker(dcol, ' ');
  os << marker << "^ d=" << instance.due_date() << "\n";
  for (std::size_t k = 0; k < n && k < 26; ++k) {
    os << static_cast<char>('A' + (schedule.order[k] % 26)) << "=job"
       << schedule.order[k] << " C=" << schedule.completion[k];
    if (!schedule.compression.empty() && schedule.compression[k] > 0) {
      os << " X=" << schedule.compression[k];
    }
    os << (k + 1 == n ? "\n" : "  ");
  }
  return os.str();
}

}  // namespace cdd

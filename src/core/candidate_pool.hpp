#pragma once
/// \file candidate_pool.hpp
/// \brief Generation-batched candidate storage for the evaluation hot path.
///
/// Every engine of the library evaluates a generation of candidate
/// sequences at a time — a swarm, an offspring cohort, an SA step's single
/// neighbour, or a simulated ensemble.  CandidatePool gives all of them one
/// bookkeeping idiom: a structure-of-arrays block of B stride-aligned
/// sequence rows plus parallel costs[B] / pinned[B] result arrays, filled
/// by a single EvalCddBatch / EvalUcddcpBatch call per generation (see
/// meta::SequenceObjective::EvaluateBatch).
///
/// Layout contract:
///  * row b occupies seqs[b*stride .. b*stride + n); stride rounds n up to
///    a 64-byte multiple so rows never share a cache line,
///  * rows are perturbed in place (the spans returned by row() are
///    writable) — engines copy a parent in, mutate, and evaluate without
///    per-candidate allocation,
///  * the pool double-buffers its sequence storage: engines that build
///    generation g+1 from generation g (selection, elitism) write survivors
///    into the shadow rows and flip with SwapBuffers(), an O(1) exchange.
///
/// The pool is a plain value type: no allocation after construction, no
/// virtual dispatch, movable, and the raw view() is trivially copyable so
/// the cudasim fitness kernel can consume the same geometry for device
/// buffers.
///
/// View invalidation rule: SwapBuffers() exchanges the live and shadow
/// sequence storage, so every CandidatePoolView taken before the swap
/// points at what are now the *shadow* rows.  A view is valid only until
/// the next SwapBuffers() on its pool; engines that hold one across a swap
/// must re-fetch it with view().  Each swap bumps a buffer-generation
/// counter recorded by view(); CandidatePoolView::current() reports
/// staleness, row() asserts it in debug builds, and views built over
/// device buffers (no owning pool) are exempt.

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "core/types.hpp"

namespace cdd {

/// Non-owning view of a stride-aligned candidate pool.  Trivially copyable
/// by design: the GPU-simulator kernels capture it by value, host code
/// builds it over CandidatePool storage or over device buffers.
struct CandidatePoolView {
  JobId* seqs = nullptr;          ///< row b at seqs[b*stride]
  Cost* costs = nullptr;          ///< per-row objective values
  std::int32_t* pinned = nullptr; ///< optional per-row pinned positions
  std::int32_t n = 0;             ///< jobs per sequence
  std::int32_t stride = 0;        ///< row pitch in elements (>= n)
  std::uint32_t count = 0;        ///< number of live rows
  /// Buffer generation of the owning pool when this view was taken; stale
  /// after the pool's next SwapBuffers() (see the file comment).
  std::uint32_t generation = 0;
  /// The owning pool's live generation counter, or nullptr for views over
  /// device buffers / raw storage, which never go stale.
  const std::uint32_t* pool_generation = nullptr;

  /// False exactly when the owning pool swapped buffers after this view
  /// was taken, i.e. when seqs now aliases the shadow rows.
  bool current() const {
    return pool_generation == nullptr || *pool_generation == generation;
  }

  JobId* row(std::uint32_t b) const {
    assert(current() && "stale CandidatePoolView: pool swapped buffers");
    return seqs + static_cast<std::size_t>(b) * stride;
  }
};

/// Owning, reusable candidate pool (see file comment for the layout).
class CandidatePool {
 public:
  /// Elements per cache line; stride is rounded up to this so adjacent
  /// rows never false-share.
  static constexpr std::size_t kRowAlign = 64 / sizeof(JobId);

  /// Pool for sequences of \p n jobs with room for \p capacity rows.
  CandidatePool(std::size_t n, std::size_t capacity);

  std::size_t n() const { return n_; }
  std::size_t stride() const { return stride_; }
  std::size_t capacity() const { return capacity_; }
  /// Number of live rows appended since the last Clear().
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == capacity_; }

  /// Forgets all live rows (storage is retained).
  void Clear() { size_ = 0; }

  /// Claims the next row and copies \p src into it; returns the row index.
  std::size_t Append(std::span<const JobId> src);

  /// Claims the next row uninitialized (callers fill it in place).
  std::size_t AppendUninitialized();

  /// Writable view of live row \p b (exactly n elements).
  std::span<JobId> row(std::size_t b) {
    return {seqs_.data() + b * stride_, n_};
  }
  std::span<const JobId> row(std::size_t b) const {
    return {seqs_.data() + b * stride_, n_};
  }

  /// Writable view of shadow row \p b — the other half of the generation
  /// double buffer.  Selection-style engines write survivors here and flip.
  std::span<JobId> shadow_row(std::size_t b) {
    return {shadow_.data() + b * stride_, n_};
  }

  /// O(1) exchange of live and shadow sequence storage.  Costs and pinned
  /// arrays describe whatever was evaluated last and are not swapped.
  /// Invalidates every outstanding view (see the file comment): the swap
  /// bumps the buffer generation, so stale views fail current() and the
  /// debug assert in CandidatePoolView::row().
  void SwapBuffers() {
    seqs_.swap(shadow_);
    ++generation_;
  }

  /// Buffer generation: bumped once per SwapBuffers().  Views record the
  /// value at creation; a mismatch marks the view stale.
  std::uint32_t generation() const { return generation_; }

  /// Per-row results of the last EvaluateBatch over this pool.
  std::span<Cost> costs() { return {costs_.data(), size_}; }
  std::span<const Cost> costs() const { return {costs_.data(), size_}; }
  std::span<std::int32_t> pinned() { return {pinned_.data(), size_}; }
  std::span<const std::int32_t> pinned() const {
    return {pinned_.data(), size_};
  }

  /// Raw view over the live rows (the batch evaluators' input).  Valid
  /// until the next SwapBuffers() on this pool; re-fetch after a swap.
  CandidatePoolView view() {
    return {seqs_.data(),
            costs_.data(),
            pinned_.data(),
            static_cast<std::int32_t>(n_),
            static_cast<std::int32_t>(stride_),
            static_cast<std::uint32_t>(size_),
            generation_,
            &generation_};
  }

 private:
  std::size_t n_;
  std::size_t stride_;
  std::size_t capacity_;
  std::size_t size_ = 0;
  std::uint32_t generation_ = 0;
  std::vector<JobId> seqs_;
  std::vector<JobId> shadow_;
  std::vector<Cost> costs_;
  std::vector<std::int32_t> pinned_;
};

}  // namespace cdd

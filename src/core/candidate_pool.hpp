#pragma once
/// \file candidate_pool.hpp
/// \brief Generation-batched candidate storage for the evaluation hot path.
///
/// Every engine of the library evaluates a generation of candidate
/// sequences at a time — a swarm, an offspring cohort, an SA step's single
/// neighbour, or a simulated ensemble.  CandidatePool gives all of them one
/// bookkeeping idiom: a structure-of-arrays block of B stride-aligned
/// sequence rows plus parallel costs[B] / pinned[B] result arrays, filled
/// by a single EvalCddBatch / EvalUcddcpBatch call per generation (see
/// meta::SequenceObjective::EvaluateBatch).
///
/// Layout contract:
///  * row b occupies seqs[b*stride .. b*stride + n); stride rounds n up to
///    a 64-byte multiple so rows never share a cache line,
///  * rows are perturbed in place (the spans returned by row() are
///    writable) — engines copy a parent in, mutate, and evaluate without
///    per-candidate allocation,
///  * the pool double-buffers its sequence storage: engines that build
///    generation g+1 from generation g (selection, elitism) write survivors
///    into the shadow rows and flip with SwapBuffers(), an O(1) exchange.
///
/// Memory model (PR 6): the pool does not own vectors; it borrows one
/// contiguous block from a core::PoolAllocator — pageable host, pinned
/// host, simulated-device-resident, or NUMA first-touch (see
/// pool_allocator.hpp).  The backend changes *placement and transfer
/// cost*, never layout or results: stride, alignment and contents are
/// identical across backends, so every engine trajectory is bit-identical
/// under any CDD_POOL_BACKEND value.  If the requested allocator fails,
/// construction falls back to the default host backend (recorded in
/// core::GlobalPoolStats().fallbacks; backend() then reports kHost) and
/// only throws std::bad_alloc when the host allocator fails too.
///
/// Thread-safety: a CandidatePool is a single-owner object — exactly one
/// thread may mutate it (Append/Clear/SwapBuffers/row writes) at a time,
/// and EvaluateBatch readers must be the same thread or externally
/// synchronized.  Distinct pools are fully independent: the serve layer
/// allocates one pool per request and lends it to the engine running on
/// that worker, so pools never cross threads concurrently.
///
/// View invalidation rule: SwapBuffers() exchanges the live and shadow
/// sequence storage, so every CandidatePoolView taken before the swap
/// points at what are now the *shadow* rows.  A view is valid only until
/// the next SwapBuffers() on its pool; engines that hold one across a swap
/// must re-fetch it with view().  Each swap bumps a buffer-generation
/// counter recorded by view(); CandidatePoolView::current() reports
/// staleness, row() asserts it in debug builds.  Two kinds of views are
/// exempt (always current()): views built over raw device buffers (no
/// owning pool, pool_generation == nullptr) and views whose backend is
/// kDevice — device-resident pools are consumed by simulated kernels that
/// capture the view by value and never observe a host-side swap.

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>

#include "core/pool_allocator.hpp"
#include "core/types.hpp"

namespace cdd {

/// Non-owning view of a stride-aligned candidate pool.  Trivially copyable
/// by design: the GPU-simulator kernels capture it by value, host code
/// builds it over CandidatePool storage or over device buffers.
///
/// A view never outlives its storage — holders must not use one after the
/// owning pool (or device buffer) is destroyed; current() only detects
/// buffer *swaps*, not lifetime.
struct CandidatePoolView {
  JobId* seqs = nullptr;          ///< row b at seqs[b*stride]
  Cost* costs = nullptr;          ///< per-row objective values
  std::int32_t* pinned = nullptr; ///< optional per-row pinned positions
  /// Per-row machine split positions (machines-1 ascending values per row,
  /// row b at splits[b*(machines-1)]); nullptr for single-machine pools.
  std::int32_t* splits = nullptr;
  std::int32_t n = 0;             ///< jobs per sequence
  std::int32_t stride = 0;        ///< row pitch in elements (>= n)
  std::int32_t machines = 1;      ///< machines per candidate (>= 1)
  std::uint32_t count = 0;        ///< number of live rows
  /// Buffer generation of the owning pool when this view was taken; stale
  /// after the pool's next SwapBuffers() (see the file comment).
  std::uint32_t generation = 0;
  /// The owning pool's live generation counter, or nullptr for views over
  /// device buffers / raw storage, which never go stale.
  const std::uint32_t* pool_generation = nullptr;
  /// Where the viewed storage lives; drives the transfer-cost model on
  /// every handoff (serve -> engine, host -> LaunchFitness).  Views built
  /// over raw sim::DeviceBuffer storage must tag themselves kDevice.
  core::PoolBackend backend = core::PoolBackend::kHost;

  /// False exactly when the owning pool swapped buffers after this view
  /// was taken, i.e. when seqs now aliases the shadow rows.  Device-backed
  /// views are exempt (see the file comment) and always report true.
  bool current() const {
    return backend == core::PoolBackend::kDevice ||
           pool_generation == nullptr || *pool_generation == generation;
  }

  /// What a handoff of this view costs each side (see pool_allocator.hpp).
  core::PoolTransferCost transfer_cost() const {
    return core::TransferCost(backend);
  }

  JobId* row(std::uint32_t b) const {
    assert(current() && "stale CandidatePoolView: pool swapped buffers");
    return seqs + static_cast<std::size_t>(b) * stride;
  }
};

/// Owning, reusable candidate pool (see file comment for the layout).
/// Movable, non-copyable: the storage block belongs to exactly one pool.
class CandidatePool {
 public:
  /// Elements per cache line; stride is rounded up to this so adjacent
  /// rows never false-share.
  static constexpr std::size_t kRowAlign = 64 / sizeof(JobId);

  /// Pool for sequences of \p n jobs with room for \p capacity rows,
  /// backed by the process's active allocator (CDD_POOL_BACKEND).
  /// \p machines > 1 additionally reserves machines-1 split positions per
  /// row (the m-machine candidate encoding of eval_raw.hpp), double
  /// buffered alongside the sequence rows.
  /// Preconditions: n >= 1 and machines >= 1 (throws std::invalid_argument
  /// otherwise); capacity 0 is clamped to 1 — a pool always holds at least
  /// one row.
  CandidatePool(std::size_t n, std::size_t capacity,
                std::size_t machines = 1);

  /// Same, backed by an explicit allocator (the serve layer passes the
  /// allocator its ServiceConfig selected).  If \p allocator fails, falls
  /// back to the host backend — see the file comment.
  CandidatePool(std::size_t n, std::size_t capacity,
                core::PoolAllocator& allocator, std::size_t machines = 1);

  ~CandidatePool();

  CandidatePool(CandidatePool&& other) noexcept;
  CandidatePool& operator=(CandidatePool&& other) noexcept;
  CandidatePool(const CandidatePool&) = delete;
  CandidatePool& operator=(const CandidatePool&) = delete;

  std::size_t n() const { return n_; }
  std::size_t stride() const { return stride_; }
  std::size_t capacity() const { return capacity_; }
  /// Machines per candidate (1 = plain permutation rows, no splits).
  std::size_t machines() const { return machines_; }
  /// Number of live rows appended since the last Clear().
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == capacity_; }

  /// The backend actually backing this pool's storage.  Equals the
  /// requested allocator's backend unless allocation fell back to kHost.
  core::PoolBackend backend() const { return backend_; }

  /// Forgets all live rows (storage is retained).
  void Clear() { size_ = 0; }

  /// Claims the next row and copies \p src into it; returns the row index.
  /// Throws std::invalid_argument on length mismatch, std::length_error
  /// when full.
  std::size_t Append(std::span<const JobId> src);

  /// Claims the next row uninitialized (callers fill it in place).
  std::size_t AppendUninitialized();

  /// Writable view of live row \p b (exactly n elements).
  std::span<JobId> row(std::size_t b) { return {seqs_ + b * stride_, n_}; }
  std::span<const JobId> row(std::size_t b) const {
    return {seqs_ + b * stride_, n_};
  }

  /// Writable view of shadow row \p b — the other half of the generation
  /// double buffer.  Selection-style engines write survivors here and flip.
  std::span<JobId> shadow_row(std::size_t b) {
    return {shadow_ + b * stride_, n_};
  }

  /// Machine split positions of live row \p b (machines-1 elements,
  /// ascending, in [0, n]; see eval_raw.hpp).  Empty for single-machine
  /// pools.
  std::span<std::int32_t> splits_row(std::size_t b) {
    return {splits_ + b * (machines_ - 1), machines_ - 1};
  }
  std::span<const std::int32_t> splits_row(std::size_t b) const {
    return {splits_ + b * (machines_ - 1), machines_ - 1};
  }

  /// Shadow half of the splits double buffer (parallel to shadow_row).
  std::span<std::int32_t> shadow_splits_row(std::size_t b) {
    return {shadow_splits_ + b * (machines_ - 1), machines_ - 1};
  }

  /// O(1) exchange of live and shadow sequence storage (and, for
  /// multi-machine pools, the splits storage — a row and its splits always
  /// travel together).  Costs and pinned arrays describe whatever was
  /// evaluated last and are not swapped.
  /// Invalidates every outstanding view (see the file comment): the swap
  /// bumps the buffer generation, so stale views fail current() and the
  /// debug assert in CandidatePoolView::row().
  void SwapBuffers() {
    std::swap(seqs_, shadow_);
    std::swap(splits_, shadow_splits_);
    ++generation_;
  }

  /// Buffer generation: bumped once per SwapBuffers().  Views record the
  /// value at creation; a mismatch marks the view stale.
  std::uint32_t generation() const { return generation_; }

  /// Per-row results of the last EvaluateBatch over this pool.
  std::span<Cost> costs() { return {costs_, size_}; }
  std::span<const Cost> costs() const { return {costs_, size_}; }
  std::span<std::int32_t> pinned() { return {pinned_, size_}; }
  std::span<const std::int32_t> pinned() const { return {pinned_, size_}; }

  /// Raw view over the live rows (the batch evaluators' input).  Valid
  /// until the next SwapBuffers() on this pool; re-fetch after a swap.
  /// The view carries this pool's backend tag.
  CandidatePoolView view() {
    return {seqs_,
            costs_,
            pinned_,
            splits_,
            static_cast<std::int32_t>(n_),
            static_cast<std::int32_t>(stride_),
            static_cast<std::int32_t>(machines_),
            static_cast<std::uint32_t>(size_),
            generation_,
            &generation_,
            backend_};
  }

 private:
  void Release() noexcept;

  std::size_t n_ = 0;
  std::size_t stride_ = 0;
  std::size_t capacity_ = 0;
  std::size_t machines_ = 1;
  std::size_t size_ = 0;
  std::uint32_t generation_ = 0;
  core::PoolBackend backend_ = core::PoolBackend::kHost;
  /// The allocator that owns block_ (a process-lifetime singleton or a
  /// caller-owned injected allocator that must outlive the pool).
  core::PoolAllocator* allocator_ = nullptr;
  void* block_ = nullptr;
  std::size_t block_bytes_ = 0;
  JobId* seqs_ = nullptr;
  JobId* shadow_ = nullptr;
  Cost* costs_ = nullptr;
  std::int32_t* pinned_ = nullptr;
  std::int32_t* splits_ = nullptr;         ///< nullptr when machines_ == 1
  std::int32_t* shadow_splits_ = nullptr;  ///< nullptr when machines_ == 1
};

/// Borrow-or-own helper for the serve layer's zero-copy pool handoff: an
/// engine asks for (n, capacity); if the lent pool fits (same n, enough
/// capacity) it is Clear()ed and borrowed in place — no allocation, no
/// copy — otherwise the lease owns a private pool from the active
/// allocator.  Pass nullptr when nothing was lent.
class PoolLease {
 public:
  PoolLease(CandidatePool* lent, std::size_t n, std::size_t capacity,
            std::size_t machines = 1) {
    if (lent != nullptr && lent->n() == n && lent->machines() == machines &&
        lent->capacity() >= std::max<std::size_t>(capacity, 1)) {
      lent->Clear();
      pool_ = lent;
    } else {
      owned_.emplace(n, capacity, machines);
      pool_ = &*owned_;
    }
  }

  PoolLease(const PoolLease&) = delete;
  PoolLease& operator=(const PoolLease&) = delete;

  CandidatePool& operator*() { return *pool_; }
  CandidatePool* operator->() { return pool_; }

  /// True when the lease runs on the lent pool (the zero-copy path).
  bool borrowed() const { return !owned_.has_value(); }

 private:
  CandidatePool* pool_ = nullptr;
  std::optional<CandidatePool> owned_;
};

}  // namespace cdd

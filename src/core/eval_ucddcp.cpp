#include "core/eval_ucddcp.hpp"

#include <stdexcept>

#include "core/eval_simd.hpp"

namespace cdd {

UcddcpEvaluator::UcddcpEvaluator(const Instance& instance)
    : due_date_(instance.due_date()) {
  if (!instance.is_unrestricted()) {
    throw std::invalid_argument(
        "UcddcpEvaluator: instance is restricted (d < sum P_i); the O(n) "
        "algorithm of Awasthi et al. requires the unrestricted case");
  }
  const std::size_t n = instance.size();
  proc_.reserve(n);
  min_proc_.reserve(n);
  alpha_.reserve(n);
  beta_.reserve(n);
  gamma_.reserve(n);
  for (const Job& j : instance.jobs()) {
    proc_.push_back(j.proc);
    min_proc_.push_back(j.min_proc);
    alpha_.push_back(j.early);
    beta_.push_back(j.tardy);
    gamma_.push_back(j.compress);
  }
}

Cost UcddcpEvaluator::Evaluate(std::span<const JobId> seq) const {
  return raw::EvalUcddcp(static_cast<std::int32_t>(seq.size()), due_date_,
                         seq.data(), proc_.data(), min_proc_.data(),
                         alpha_.data(), beta_.data(), gamma_.data())
      .cost;
}

raw::EvalResult UcddcpEvaluator::EvaluateDetailed(
    std::span<const JobId> seq) const {
  return raw::EvalUcddcp(static_cast<std::int32_t>(seq.size()), due_date_,
                         seq.data(), proc_.data(), min_proc_.data(),
                         alpha_.data(), beta_.data(), gamma_.data());
}

void UcddcpEvaluator::EvaluateBatch(CandidatePool& pool) const {
  const CandidatePoolView v = pool.view();
  raw::EvalUcddcpBatchDispatch(v.n, due_date_, v.seqs, v.stride,
                               static_cast<std::int32_t>(v.count),
                               proc_.data(), min_proc_.data(), alpha_.data(),
                               beta_.data(), gamma_.data(), v.costs,
                               v.pinned);
}

Schedule UcddcpEvaluator::BuildSchedule(std::span<const JobId> seq) const {
  const auto n = static_cast<std::int32_t>(seq.size());
  std::vector<Time> x(seq.size());
  const raw::EvalResult r =
      raw::EvalUcddcp(n, due_date_, seq.data(), proc_.data(),
                      min_proc_.data(), alpha_.data(), beta_.data(),
                      gamma_.data(), x.data());
  Schedule s;
  s.order.assign(seq.begin(), seq.end());
  s.completion.resize(seq.size());
  s.compression.resize(seq.size());
  Time c = r.offset;
  for (std::size_t k = 0; k < seq.size(); ++k) {
    const auto j = static_cast<std::size_t>(seq[k]);
    s.compression[k] = x[j];
    c += proc_[j] - x[j];
    s.completion[k] = c;
  }
  return s;
}

Cost EvaluateUcddcpSequence(const Instance& instance,
                            std::span<const JobId> seq) {
  ValidateSequence(seq, instance.size());
  return UcddcpEvaluator(instance).Evaluate(seq);
}

}  // namespace cdd

#pragma once
/// \file stop_token.hpp
/// \brief Cooperative cancellation for long-running solver loops.
///
/// A StopSource owns a stop flag and an optional monotonic deadline; a
/// StopToken is a cheap non-owning view of one source that the
/// metaheuristic loops poll every few iterations.  Engines never consume
/// randomness when polling, so a run that finishes without being stopped
/// is bit-identical to the same run without a token — cancellation only
/// ever truncates, it never perturbs.
///
/// The serve layer (src/serve) creates one source per in-flight request to
/// implement per-request deadlines and shutdown-time cancellation; the
/// token is threaded through SaParams/DpsoParams/... so every engine of
/// the library honors it.
///
/// Not std::stop_token: that type cannot express a deadline, and polling
/// it is not guaranteed wait-free.  This one is two relaxed atomic loads.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

namespace cdd {

class StopSource;

/// Non-owning view of a StopSource (or of nothing: a default-constructed
/// token never requests a stop).  Copyable; must not outlive its source.
class StopToken {
 public:
  StopToken() = default;

  /// True when the source was stopped explicitly or its deadline passed.
  bool stop_requested() const;

  /// True when this token is attached to a source at all.
  bool stop_possible() const { return source_ != nullptr; }

 private:
  friend class StopSource;
  explicit StopToken(const StopSource* source) : source_(source) {}
  const StopSource* source_ = nullptr;
};

/// Owner of a stop flag plus an optional steady-clock deadline.
/// RequestStop / stop_requested are thread-safe; SetDeadline and Reset
/// must not race with each other (one controlling thread).
class StopSource {
 public:
  using Clock = std::chrono::steady_clock;

  StopSource() = default;
  explicit StopSource(Clock::time_point deadline) { SetDeadline(deadline); }

  StopSource(const StopSource&) = delete;
  StopSource& operator=(const StopSource&) = delete;

  /// Requests a stop; every token of this source observes it.
  void RequestStop() { stopped_.store(true, std::memory_order_relaxed); }

  /// Arms (or re-arms) the deadline.
  void SetDeadline(Clock::time_point deadline) {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }

  /// Clears the flag and the deadline so the source can be reused for the
  /// next request (serve worker slots do this between jobs).
  void Reset() {
    stopped_.store(false, std::memory_order_relaxed);
    deadline_ns_.store(kNoDeadline, std::memory_order_relaxed);
  }

  bool stop_requested() const {
    if (stopped_.load(std::memory_order_relaxed)) return true;
    const std::int64_t deadline =
        deadline_ns_.load(std::memory_order_relaxed);
    return deadline != kNoDeadline &&
           Clock::now().time_since_epoch().count() >= deadline;
  }

  /// A token viewing this source; valid only while the source lives.
  StopToken token() const { return StopToken(this); }

 private:
  static constexpr std::int64_t kNoDeadline =
      std::numeric_limits<std::int64_t>::max();

  std::atomic<bool> stopped_{false};
  std::atomic<std::int64_t> deadline_ns_{kNoDeadline};
};

inline bool StopToken::stop_requested() const {
  return source_ != nullptr && source_->stop_requested();
}

/// How often the serial metaheuristic loops poll their StopToken, in
/// iterations.  Polling reads a clock, so the stride keeps the overhead
/// invisible next to an O(n) objective evaluation.
inline constexpr std::uint64_t kStopCheckStride = 64;

}  // namespace cdd

#pragma once
/// \file vshape.hpp
/// \brief V-shape structure: checker and constructive seed heuristic.
///
/// Classic structural result for common due-date problems: there is an
/// optimal schedule in which the jobs completing at or before d appear in
/// nonincreasing order of P_i/alpha_i and the jobs completing after d in
/// nondecreasing order of P_i/beta_i (the Gantt chart looks like a "V"
/// around the due date).  The exact solver in exact.hpp exploits it; the
/// property tests verify it on exact optima; VShapeSeed() uses it to build
/// good initial sequences for the metaheuristics.

#include <span>

#include "core/instance.hpp"
#include "core/sequence.hpp"

namespace cdd {

/// True iff \p seq is V-shaped around due-date position \p pinned
/// (0-based position of the job completing at d; -1 treats every job as
/// tardy).  Ratio comparisons are done in exact integer cross-products.
bool IsVShaped(const Instance& instance, std::span<const JobId> seq,
               std::int32_t pinned);

/// Convenience overload: determines the pinned position with the O(n) CDD
/// evaluator first.
bool IsVShaped(const Instance& instance, std::span<const JobId> seq);

/// Constructive heuristic: assigns each job to the early side when
/// alpha_i <= beta_i (being early is cheaper), orders both sides by their
/// ratio rules and concatenates.  Used to seed metaheuristics; never worse
/// than random in practice and extremely cheap (O(n log n)).
Sequence VShapeSeed(const Instance& instance);

}  // namespace cdd

#include "core/candidate_pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace cdd {

namespace {

std::size_t RoundUpToRowAlign(std::size_t n) {
  const std::size_t a = CandidatePool::kRowAlign;
  return ((std::max<std::size_t>(n, 1) + a - 1) / a) * a;
}

}  // namespace

CandidatePool::CandidatePool(std::size_t n, std::size_t capacity)
    : n_(n),
      stride_(RoundUpToRowAlign(n)),
      capacity_(std::max<std::size_t>(capacity, 1)),
      seqs_(stride_ * capacity_, 0),
      shadow_(stride_ * capacity_, 0),
      costs_(capacity_, 0),
      pinned_(capacity_, -1) {
  if (n == 0) {
    throw std::invalid_argument("CandidatePool: n must be >= 1");
  }
}

std::size_t CandidatePool::Append(std::span<const JobId> src) {
  if (src.size() != n_) {
    throw std::invalid_argument(
        "CandidatePool::Append: sequence length mismatch");
  }
  const std::size_t b = AppendUninitialized();
  std::copy(src.begin(), src.end(), seqs_.data() + b * stride_);
  return b;
}

std::size_t CandidatePool::AppendUninitialized() {
  if (size_ == capacity_) {
    throw std::length_error("CandidatePool: capacity exhausted");
  }
  return size_++;
}

}  // namespace cdd
